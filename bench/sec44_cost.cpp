// §4.4 reproduction: implementation cost of the extended mechanism — the
// LUs Table's delay/energy vs the register files, the energy balance of
// shrinking the files, and the storage cost (Alpha 21264 example).
#include <cstdio>

#include "common/table.hpp"
#include "power/rixner.hpp"
#include "power/storage_cost.hpp"

int main() {
  using namespace erel::power;
  const RixnerModel m;

  std::printf("=== Sec 4.4: LUs Table vs register files (0.18um model) ===\n");
  const RfGeometry lus = RixnerModel::lus_table();
  std::printf(
      "LUs Table geometry: %u entries x %u bits, %u ports (32R + 24W for an "
      "8-way machine)\n",
      lus.registers, lus.word_bits, lus.ports);
  std::printf("LUs Table access time: %.3f ns (paper: 0.98 ns)\n",
              m.access_time_ns(lus));
  std::printf("LUs Table energy:      %.1f pJ (paper: 193.2 pJ)\n",
              m.energy_pj(lus));
  std::printf(
      "delay vs smallest int file (P=40): %.1f%% lower (paper: 26%%)\n",
      100.0 * (1.0 - m.access_time_ns(lus) /
                         m.access_time_ns(RixnerModel::int_file(40))));
  std::printf(
      "energy vs least demanding file:    %.1f%% of it (paper: 20%%)\n",
      100.0 * m.energy_pj(lus) / m.energy_pj(RixnerModel::int_file(40)));

  std::printf("\n=== energy balance of iso-IPC file shrinking ===\n");
  const double e_conv = m.energy_pj(RixnerModel::int_file(64)) +
                        m.energy_pj(RixnerModel::fp_file(79));
  const double e_early = m.energy_pj(RixnerModel::int_file(56)) +
                         m.energy_pj(RixnerModel::fp_file(72)) +
                         2.0 * m.energy_pj(lus);
  std::printf("E_conv (RF64int + RF79fp)              = %.0f pJ\n", e_conv);
  std::printf("E_early (RF56int + RF72fp + 2xLUsT)    = %.0f pJ\n", e_early);
  std::printf("balance: %.1f%% (paper: neutral, 3850 vs 3851 pJ)\n",
              100.0 * (e_early / e_conv - 1.0));

  std::printf("\n=== storage cost of the extended mechanism ===\n");
  const ExtendedCostParams alpha;  // the paper's Alpha 21264 example
  const ExtendedCost cost = extended_mechanism_cost(alpha);
  erel::TextTable t({"structure", "bits", "bytes"});
  t.add_row({"PRid (3 ids x ROS)", std::to_string(cost.prid_bits),
             erel::TextTable::num(cost.prid_bits / 8.0, 0)});
  t.add_row({"RwC0..RwC20 (3b x ROS x 21)", std::to_string(cost.rwc_bits),
             erel::TextTable::num(cost.rwc_bits / 8.0, 0)});
  t.add_row({"RwNS1..RwNS20 (P bits x 20)", std::to_string(cost.rwns_bits),
             erel::TextTable::num(cost.rwns_bits / 8.0, 0)});
  t.add_row({"RelQue total", std::to_string(cost.relque_total_bits()),
             erel::TextTable::num(cost.relque_total_bits() / 8.0, 0)});
  t.add_row({"LUs Tables (int+fp)", std::to_string(cost.lus_bits),
             erel::TextTable::num(cost.lus_bytes(), 0)});
  std::printf("%s", t.to_string().c_str());
  std::printf(
      "RelQue storage: %.2f KB (paper: \"about 1.22 KBytes\"); LUs Tables "
      "%.0f B (paper: \"around 128B\").\n",
      cost.relque_kbytes(), cost.lus_bytes());
  return 0;
}
