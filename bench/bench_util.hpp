// Shared helpers for the table/figure reproduction binaries.
#pragma once

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "harness/harness.hpp"
#include "workloads/workloads.hpp"

namespace erel::benchutil {

struct SweepKey {
  std::string workload;
  core::PolicyKind policy;
  unsigned phys;
  bool operator<(const SweepKey& other) const {
    return std::tie(workload, policy, phys) <
           std::tie(other.workload, other.policy, other.phys);
  }
};

using SweepResults = std::map<SweepKey, sim::SimStats>;

/// Runs workloads x policies x sizes in parallel and indexes the results.
inline SweepResults run_sweep(const std::vector<std::string>& names,
                              const std::vector<core::PolicyKind>& policies,
                              const std::vector<unsigned>& sizes) {
  std::vector<harness::RunSpec> specs;
  for (const std::string& w : names)
    for (const core::PolicyKind policy : policies)
      for (const unsigned p : sizes)
        specs.push_back({w, harness::experiment_config(policy, p), "", {}});
  const auto results = harness::run_all(specs);
  SweepResults out;
  std::size_t i = 0;
  for (const std::string& w : names)
    for (const core::PolicyKind policy : policies)
      for (const unsigned p : sizes)
        out[{w, policy, p}] = results[i++].stats;
  return out;
}

inline std::vector<std::string> int_names() {
  std::vector<std::string> names;
  for (const auto& w : workloads::registry())
    if (!w.is_fp) names.push_back(w.name);
  return names;
}

inline std::vector<std::string> fp_names() {
  std::vector<std::string> names;
  for (const auto& w : workloads::registry())
    if (w.is_fp) names.push_back(w.name);
  return names;
}

/// Harmonic-mean IPC over a workload subset at one (policy, size) point.
inline double hmean_ipc(const SweepResults& results,
                        const std::vector<std::string>& names,
                        core::PolicyKind policy, unsigned phys) {
  std::vector<double> ipcs;
  for (const std::string& w : names)
    ipcs.push_back(results.at({w, policy, phys}).ipc());
  return harness::harmonic_mean(ipcs);
}

}  // namespace erel::benchutil
