// Shared helpers for the table/figure reproduction binaries: workload
// subsets and the `benchutil::cli` option parser every sweep binary uses.
//
// The sweep binaries themselves are thin: they declare a
// harness::Experiment, run it (optionally sampled, optionally against the
// on-disk result cache) and format the paper's tables from the typed
// harness::ResultSet. The old benchutil::run_sweep / SweepKey glue —
// which paired specs to results by replaying the construction loops — is
// gone; see harness/experiment.hpp.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "harness/experiment.hpp"
#include "power/probe.hpp"
#include "workloads/workloads.hpp"

namespace erel::benchutil {

inline std::vector<std::string> int_names() {
  std::vector<std::string> names;
  for (const auto& w : workloads::registry())
    if (!w.is_fp) names.push_back(w.name);
  return names;
}

inline std::vector<std::string> fp_names() {
  std::vector<std::string> names;
  for (const auto& w : workloads::registry())
    if (w.is_fp) names.push_back(w.name);
  return names;
}

namespace cli {

/// Options common to every sweep binary. `--smoke` shrinks the grid (two
/// short kernels, few sizes, small sampling windows) so CI can execute the
/// binaries end-to-end on every PR instead of only compiling them.
/// Positional arguments name a workload subset (registry kernels or
/// "trace:<path>"); unknown names are rejected with a usage message.
struct Options {
  unsigned threads = 0;  // --threads=N     harness pool (0 = hardware)
  bool sample = false;   // --sample        checkpointed interval sampling
  sim::Placement placement =
      sim::Placement::kStratified;  // --placement=periodic|random|stratified
  double target_ci = 0.0;           // --target-ci=X   CI-driven stopping
  std::uint64_t sample_period = 0;  // --sample-period=N   (0 = auto)
  std::uint64_t sample_warmup = 0;  // --sample-warmup=N   (0 = auto)
  std::uint64_t sample_detail = 0;  // --sample-detail=N   (0 = auto)
  std::string csv_path;             // --csv=PATH      ResultSet CSV sink
  std::string json_path;            // --json=PATH     ResultSet JSON sink
  std::string cache_dir;            // --cache-dir=PATH  result cache
  std::string server;               // --server=HOST:PORT  ereld daemon
  unsigned server_timeout_ms = 0;   // --server-timeout-ms=N  call deadline
  unsigned server_retries =         // --server-retries=N  per-cell budget
      harness::RemoteOptions{}.retries;
  bool smoke = false;               // --smoke         tiny CI grid
  bool power = false;               // --power         RixnerProbe columns
  std::uint64_t irq_period = 0;     // --irq-period=N  device period rewrite
  std::string timeseries_path;      // --timeseries=PATH  per-stride CSV
  std::uint64_t stride = 0;         // --stride=N      channel stride (cycles)
  std::vector<core::PolicyKind> policies =
      core::all_policies();         // --policies=a,b,c subset filter
  std::vector<std::string> positional;

  /// Attaches the probes the flags ask for (--power) to an experiment.
  void add_probes(harness::Experiment& exp) const {
    if (power)
      exp.probe("power",
                [] { return std::make_unique<power::RixnerProbe>(); });
  }

  /// Channel stride honoring --stride and --smoke.
  [[nodiscard]] std::uint64_t stat_stride() const {
    return stride != 0 ? stride : (smoke ? 500 : 1000);
  }

  /// Sampling parameters sized for the grid: registry kernels run a few
  /// hundred thousand instructions, so the full-scale defaults already
  /// yield only a handful of units; --smoke shrinks the windows further.
  [[nodiscard]] sim::SamplingConfig sampling_config() const {
    sim::SamplingConfig s;
    s.period = sample_period ? sample_period : (smoke ? 30'000 : 100'000);
    s.warmup = sample_warmup ? sample_warmup : (smoke ? 1'000 : 2'000);
    s.detail = sample_detail ? sample_detail : (smoke ? 5'000 : 10'000);
    s.placement = placement;
    s.target_ci = target_ci;
    return s;
  }

  [[nodiscard]] harness::RunOptions run_options() const {
    harness::RunOptions opts;
    opts.threads = threads;
    opts.cache_dir = cache_dir;
    opts.server = server;
    if (server_timeout_ms != 0) {
      opts.remote.connect_timeout_ms = server_timeout_ms;
      opts.remote.call_timeout_ms = server_timeout_ms;
    }
    opts.remote.retries = server_retries;
    return opts;
  }

  // Workload subsets honoring positional selection, --smoke and
  // --irq-period. Trace workloads ("trace:<path>") have no register class,
  // so they appear in workload_names() but in neither per-class subset.
  [[nodiscard]] std::vector<std::string> int_names() const {
    if (!positional.empty())
      return apply_irq_period(class_subset(/*fp=*/false), /*append=*/true);
    return apply_irq_period(
        smoke ? std::vector<std::string>{"li"} : benchutil::int_names(),
        /*append=*/true);
  }
  [[nodiscard]] std::vector<std::string> fp_names() const {
    if (!positional.empty())
      return apply_irq_period(class_subset(/*fp=*/true), /*append=*/false);
    return apply_irq_period(
        smoke ? std::vector<std::string>{"swim"} : benchutil::fp_names(),
        /*append=*/false);
  }
  [[nodiscard]] std::vector<std::string> workload_names() const {
    if (!positional.empty()) return apply_irq_period(positional, true);
    if (!smoke) return apply_irq_period(workloads::workload_names(), true);
    return apply_irq_period({"li", "swim"}, true);
  }

 private:
  /// --irq-period=N sweep axis: rewrites the interrupt kernels in `names`
  /// to "timer@N" / "echo@N" (any existing @suffix is replaced); with
  /// `append`, a selection containing no interrupt kernel gains both, so
  /// `--smoke --irq-period=350` exercises them without naming them. The
  /// interrupt kernels are integer-class, hence append=false for the FP
  /// subset.
  [[nodiscard]] std::vector<std::string> apply_irq_period(
      std::vector<std::string> names, bool append) const {
    if (irq_period == 0) return names;
    const std::string suffix = "@" + std::to_string(irq_period);
    bool any = false;
    for (std::string& name : names) {
      const std::string base = name.substr(0, name.find('@'));
      if (base == "timer" || base == "echo") {
        name = base + suffix;
        any = true;
      }
    }
    if (append && !any) {
      names.push_back("timer" + suffix);
      names.push_back("echo" + suffix);
    }
    return names;
  }

  [[nodiscard]] std::vector<std::string> class_subset(bool fp) const {
    std::vector<std::string> names;
    for (const std::string& name : positional) {
      const workloads::Workload* w = workloads::find_workload(name);
      if (w != nullptr && w->is_fp == fp) names.push_back(name);
    }
    return names;
  }
};

inline void usage(const char* argv0) {
  std::printf(
      "usage: %s [options] [workload...]\n"
      "  workload...        subset of registry kernels / trace:<path>\n"
      "                     (default: the full set; see --list-workloads)\n"
      "  --threads=N        harness pool workers (0 = hardware default)\n"
      "  --sample           checkpointed interval sampling per cell\n"
      "  --placement=MODE   periodic|random|stratified (default stratified)\n"
      "  --target-ci=X      stop sampling at 95%% CI half-width <= X\n"
      "  --sample-period=N  --sample-warmup=N  --sample-detail=N\n"
      "  --policies=A,B     policy subset (conv,basic,extended)\n"
      "  --power            RixnerProbe energy/ED^2 metric columns\n"
      "  --irq-period=N     device period for the interrupt kernels\n"
      "                     (rewrites timer/echo to timer@N/echo@N and adds\n"
      "                     them to selections that lack them; N >= 32)\n"
      "  --timeseries=PATH  per-stride occupancy channel CSV (fig3)\n"
      "  --stride=N         channel stride in cycles (default 1000)\n"
      "  --csv=PATH         write the ResultSet as CSV\n"
      "  --json=PATH        write the ResultSet as JSON\n"
      "  --cache-dir=PATH   reuse/store per-cell results on disk\n"
      "  --server=HOST:PORT route cells through an experiment daemon "
      "(ereld)\n"
      "  --server-timeout-ms=N per-call deadline on the daemon path\n"
      "  --server-retries=N    re-dispatch budget per cell (default 3)\n"
      "  --smoke            tiny grid (CI: execute, don't just compile)\n"
      "  --list-workloads   print the workload registry and exit\n"
      "  --list-policies    print the release policies and exit\n",
      argv0);
}

inline void list_workloads() {
  std::printf("workloads (name / class / description):\n");
  for (const auto& w : workloads::registry())
    std::printf("  %-10s %-4s %s\n", w.name.c_str(), w.is_fp ? "fp" : "int",
                w.description.c_str());
  std::printf(
      "  timer@N, echo@N the interrupt kernels at device period N (N >= 32)\n"
      "  trace:<path>    replay the program embedded in a recorded trace\n");
}

inline void list_policies() {
  std::printf("release policies (accepted by --policies):\n");
  std::printf("  conv       conventional release at redefiner commit\n");
  std::printf("  basic      early release via the Last-Uses Table (sec 3)\n");
  std::printf("  extended   + speculative NVs via the Release Queue (sec 4)\n");
  std::printf("aliases: conventional, ext\n");
}

inline Options parse(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    const auto value = [&](std::string_view flag) -> std::string {
      // "--flag=value" or "--flag value".
      if (arg.size() > flag.size() && arg[flag.size()] == '=')
        return std::string(arg.substr(flag.size() + 1));
      if (i + 1 < argc) return argv[++i];
      std::fprintf(stderr, "%s: missing value for %.*s\n", argv[0],
                   static_cast<int>(flag.size()), flag.data());
      std::exit(2);
    };
    const auto matches = [&](std::string_view flag) {
      return arg == flag ||
             (arg.size() > flag.size() && arg.substr(0, flag.size()) == flag &&
              arg[flag.size()] == '=');
    };
    if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      std::exit(0);
    } else if (arg == "--list-workloads") {
      list_workloads();
      std::exit(0);
    } else if (arg == "--list-policies") {
      list_policies();
      std::exit(0);
    } else if (arg == "--sample") {
      opts.sample = true;
    } else if (arg == "--smoke") {
      opts.smoke = true;
    } else if (arg == "--power") {
      opts.power = true;
    } else if (matches("--irq-period")) {
      opts.irq_period =
          std::strtoull(value("--irq-period").c_str(), nullptr, 10);
      if (opts.irq_period < 32) {
        std::fprintf(stderr,
                     "%s: --irq-period must be >= 32 (shorter periods "
                     "re-enter the interrupt handler before it returns)\n",
                     argv[0]);
        std::exit(2);
      }
    } else if (matches("--timeseries")) {
      opts.timeseries_path = value("--timeseries");
    } else if (matches("--stride")) {
      opts.stride = std::strtoull(value("--stride").c_str(), nullptr, 10);
    } else if (matches("--threads")) {
      opts.threads = static_cast<unsigned>(
          std::strtoul(value("--threads").c_str(), nullptr, 10));
    } else if (matches("--placement")) {
      opts.placement = sim::parse_placement(value("--placement"));
    } else if (matches("--target-ci")) {
      opts.target_ci = std::strtod(value("--target-ci").c_str(), nullptr);
    } else if (matches("--sample-period")) {
      opts.sample_period =
          std::strtoull(value("--sample-period").c_str(), nullptr, 10);
    } else if (matches("--sample-warmup")) {
      opts.sample_warmup =
          std::strtoull(value("--sample-warmup").c_str(), nullptr, 10);
    } else if (matches("--sample-detail")) {
      opts.sample_detail =
          std::strtoull(value("--sample-detail").c_str(), nullptr, 10);
    } else if (matches("--csv")) {
      opts.csv_path = value("--csv");
    } else if (matches("--json")) {
      opts.json_path = value("--json");
    } else if (matches("--cache-dir")) {
      opts.cache_dir = value("--cache-dir");
    } else if (matches("--server-timeout-ms")) {
      opts.server_timeout_ms = static_cast<unsigned>(
          std::strtoul(value("--server-timeout-ms").c_str(), nullptr, 10));
    } else if (matches("--server-retries")) {
      opts.server_retries = static_cast<unsigned>(
          std::strtoul(value("--server-retries").c_str(), nullptr, 10));
    } else if (matches("--server")) {
      opts.server = value("--server");
    } else if (matches("--policies")) {
      opts.policies.clear();
      std::string list = value("--policies");
      std::size_t start = 0;
      while (start <= list.size()) {
        std::size_t comma = list.find(',', start);
        if (comma == std::string::npos) comma = list.size();
        if (comma > start) {
          const std::string name = list.substr(start, comma - start);
          const std::optional<core::PolicyKind> kind =
              core::try_parse_policy(name);
          if (!kind) {
            std::fprintf(stderr,
                         "%s: unknown policy '%s' (see --list-policies)\n",
                         argv[0], name.c_str());
            usage(argv[0]);
            std::exit(2);
          }
          opts.policies.push_back(*kind);
        }
        start = comma + 1;
      }
      if (opts.policies.empty()) {
        std::fprintf(stderr, "%s: --policies needs at least one policy\n",
                     argv[0]);
        std::exit(2);
      }
    } else if (arg.size() >= 2 && arg.substr(0, 2) == "--") {
      std::fprintf(stderr, "%s: unknown option %s\n", argv[0], argv[i]);
      usage(argv[0]);
      std::exit(2);
    } else {
      opts.positional.push_back(std::string(arg));
    }
  }
  // Validate workload selections up front: a typo should produce a usage
  // message here, not an abort deep inside workloads::workload().
  for (const std::string& name : opts.positional) {
    if (workloads::is_trace_workload(name)) continue;
    if (workloads::find_workload(name) == nullptr) {
      std::fprintf(stderr, "%s: unknown workload '%s' (see --list-workloads)\n",
                   argv[0], name.c_str());
      usage(argv[0]);
      std::exit(2);
    }
  }
  return opts;
}

/// Post-run chores shared by every binary: sink files and the cache
/// provenance line the CI gate greps for.
inline void finish(const harness::ResultSet& rs, const Options& opts) {
  if (!opts.csv_path.empty()) {
    rs.write_csv(opts.csv_path);
    std::printf("wrote CSV %s (%zu cells)\n", opts.csv_path.c_str(), rs.size());
  }
  if (!opts.json_path.empty()) {
    rs.write_json(opts.json_path);
    std::printf("wrote JSON %s (%zu cells)\n", opts.json_path.c_str(),
                rs.size());
  }
  if (!opts.cache_dir.empty() || !opts.server.empty()) {
    // "hits" counts cells served without fresh simulation anywhere: local
    // cache files and warm daemon-cache replies both arrive from_cache.
    const std::string where =
        !opts.server.empty()
            ? (!opts.cache_dir.empty()
                   ? "server " + opts.server + ", dir " + opts.cache_dir
                   : "server " + opts.server)
            : "dir " + opts.cache_dir;
    std::printf("cache: %zu hits, %zu simulated (%s)\n", rs.cache_hits(),
                rs.simulated(), where.c_str());
  }
}

}  // namespace cli
}  // namespace erel::benchutil
