// Figure 10 reproduction: per-benchmark IPC for conventional / basic /
// extended with very tight 48+48 register files, plus harmonic means.
// Shared sweep CLI: --threads, --csv/--json, --cache-dir, --policies,
// --smoke, --sample.
#include <cstdio>

#include "common/table.hpp"
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace erel;
  using core::PolicyKind;

  const auto opts = benchutil::cli::parse(argc, argv);
  constexpr unsigned kPhys = 48;

  harness::Experiment exp;
  exp.workloads(opts.workload_names()).policies(opts.policies).phys_regs(
      {kPhys});
  if (opts.sample) exp.sampling(opts.sampling_config());
  opts.add_probes(exp);
  const harness::ResultSet rs = exp.run(opts.run_options());

  const PolicyKind baseline = opts.policies.front();
  std::printf("=== Figure 10: IPC with 48+48 registers ===\n");
  for (const bool fp : {false, true}) {
    const auto names = fp ? opts.fp_names() : opts.int_names();
    if (names.empty()) continue;
    std::printf("\n-- %s --\n", fp ? "FP" : "Integer");

    std::vector<std::string> header = {"benchmark"};
    for (const PolicyKind pk : opts.policies)
      header.push_back(std::string(core::policy_name(pk)));
    for (std::size_t k = 1; k < opts.policies.size(); ++k)
      header.push_back(std::string(core::policy_name(opts.policies[k])) +
                       " speedup");
    TextTable t(std::move(header));

    for (const auto& name : names) {
      std::vector<std::string> row = {name};
      const double base = rs.ipc({name, baseline, kPhys, ""});
      for (const PolicyKind pk : opts.policies)
        row.push_back(TextTable::num(rs.ipc({name, pk, kPhys, ""})));
      for (std::size_t k = 1; k < opts.policies.size(); ++k)
        row.push_back(TextTable::speedup_pct(
            rs.ipc({name, opts.policies[k], kPhys, ""}), base));
      t.add_row(std::move(row));
    }

    std::vector<std::string> hm_row = {"Hm"};
    for (const PolicyKind pk : opts.policies)
      hm_row.push_back(TextTable::num(rs.hmean_ipc(names, pk, kPhys)));
    for (std::size_t k = 1; k < opts.policies.size(); ++k)
      hm_row.push_back(TextTable::pct(
          rs.speedup_vs(names, opts.policies[k], baseline, kPhys)));
    t.add_row(std::move(hm_row));
    std::printf("%s", t.to_string().c_str());
  }
  // --power: register-file energy + ED^2 per benchmark and policy
  // (power::RixnerProbe metric columns; also in the --csv/--json sinks).
  if (opts.power) {
    std::printf("\n=== Register-file energy (RixnerProbe, --power) ===\n");
    std::vector<std::string> header = {"benchmark"};
    for (const PolicyKind pk : opts.policies) {
      header.push_back(std::string(core::policy_name(pk)) + " E(nJ)");
      header.push_back(std::string(core::policy_name(pk)) + " ED2");
    }
    TextTable t(std::move(header));
    for (const auto& name : opts.workload_names()) {
      std::vector<std::string> row = {name};
      for (const PolicyKind pk : opts.policies) {
        const auto& e = rs.at({name, pk, kPhys, ""});
        row.push_back(
            TextTable::num(e.metric("power/energy_nj").value_or(0.0), 1));
        row.push_back(
            TextTable::num(e.metric("power/ed2").value_or(0.0), 0));
      }
      t.add_row(std::move(row));
    }
    std::printf("%s", t.to_string().c_str());
    if (opts.sample)
      std::printf(
          "note: sampled cells charge only their measured windows, and\n"
          "confidence-driven stopping can measure a different number of\n"
          "windows per cell — compare energy per instruction, not columns\n"
          "of absolutes (per-cell counts are in --csv/--json).\n");
  }

  std::printf(
      "\npaper (48+48): basic ~6%% FP speedup, negligible for int;\n"
      "extended ~8%% FP / ~5%% int. Expect the same ordering here with\n"
      "magnitudes shifted by our workload substitution.\n");
  benchutil::cli::finish(rs, opts);
  return 0;
}
