// Figure 10 reproduction: per-benchmark IPC for conventional / basic /
// extended with very tight 48+48 register files, plus harmonic means.
#include <cstdio>

#include "common/table.hpp"
#include "bench_util.hpp"

int main() {
  using namespace erel;
  using core::PolicyKind;
  using benchutil::SweepKey;

  const std::vector<PolicyKind> policies = {
      PolicyKind::Conventional, PolicyKind::Basic, PolicyKind::Extended};
  const auto results =
      benchutil::run_sweep(workloads::workload_names(), policies, {48});

  std::printf("=== Figure 10: IPC with 48+48 registers ===\n");
  for (const bool fp : {false, true}) {
    const auto names = fp ? benchutil::fp_names() : benchutil::int_names();
    std::printf("\n-- %s --\n", fp ? "FP" : "Integer");
    TextTable t({"benchmark", "conv", "basic", "extended", "basic speedup",
                 "extended speedup"});
    for (const auto& name : names) {
      const double conv =
          results.at(SweepKey{name, PolicyKind::Conventional, 48}).ipc();
      const double basic =
          results.at(SweepKey{name, PolicyKind::Basic, 48}).ipc();
      const double ext =
          results.at(SweepKey{name, PolicyKind::Extended, 48}).ipc();
      t.add_row({name, TextTable::num(conv), TextTable::num(basic),
                 TextTable::num(ext), TextTable::pct(basic / conv - 1.0),
                 TextTable::pct(ext / conv - 1.0)});
    }
    const double conv_hm =
        benchutil::hmean_ipc(results, names, PolicyKind::Conventional, 48);
    const double basic_hm =
        benchutil::hmean_ipc(results, names, PolicyKind::Basic, 48);
    const double ext_hm =
        benchutil::hmean_ipc(results, names, PolicyKind::Extended, 48);
    t.add_row({"Hm", TextTable::num(conv_hm), TextTable::num(basic_hm),
               TextTable::num(ext_hm), TextTable::pct(basic_hm / conv_hm - 1.0),
               TextTable::pct(ext_hm / conv_hm - 1.0)});
    std::printf("%s", t.to_string().c_str());
  }
  std::printf(
      "\npaper (48+48): basic ~6%% FP speedup, negligible for int;\n"
      "extended ~8%% FP / ~5%% int. Expect the same ordering here with\n"
      "magnitudes shifted by our workload substitution.\n");
  return 0;
}
