// Figure 10 reproduction: per-benchmark IPC for conventional / basic /
// extended with very tight 48+48 register files, plus harmonic means.
// Shared sweep CLI: --threads, --csv/--json, --cache-dir, --policies,
// --smoke, --sample.
#include <cstdio>

#include "common/table.hpp"
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace erel;
  using core::PolicyKind;

  const auto opts = benchutil::cli::parse(argc, argv);
  constexpr unsigned kPhys = 48;

  harness::Experiment exp;
  exp.workloads(opts.workload_names()).policies(opts.policies).phys_regs(
      {kPhys});
  if (opts.sample) exp.sampling(opts.sampling_config());
  const harness::ResultSet rs = exp.run(opts.run_options());

  const PolicyKind baseline = opts.policies.front();
  std::printf("=== Figure 10: IPC with 48+48 registers ===\n");
  for (const bool fp : {false, true}) {
    const auto names = fp ? opts.fp_names() : opts.int_names();
    if (names.empty()) continue;
    std::printf("\n-- %s --\n", fp ? "FP" : "Integer");

    std::vector<std::string> header = {"benchmark"};
    for (const PolicyKind pk : opts.policies)
      header.push_back(std::string(core::policy_name(pk)));
    for (std::size_t k = 1; k < opts.policies.size(); ++k)
      header.push_back(std::string(core::policy_name(opts.policies[k])) +
                       " speedup");
    TextTable t(std::move(header));

    for (const auto& name : names) {
      std::vector<std::string> row = {name};
      const double base = rs.ipc({name, baseline, kPhys, ""});
      for (const PolicyKind pk : opts.policies)
        row.push_back(TextTable::num(rs.ipc({name, pk, kPhys, ""})));
      for (std::size_t k = 1; k < opts.policies.size(); ++k)
        row.push_back(TextTable::speedup_pct(
            rs.ipc({name, opts.policies[k], kPhys, ""}), base));
      t.add_row(std::move(row));
    }

    std::vector<std::string> hm_row = {"Hm"};
    for (const PolicyKind pk : opts.policies)
      hm_row.push_back(TextTable::num(rs.hmean_ipc(names, pk, kPhys)));
    for (std::size_t k = 1; k < opts.policies.size(); ++k)
      hm_row.push_back(TextTable::pct(
          rs.speedup_vs(names, opts.policies[k], baseline, kPhys)));
    t.add_row(std::move(hm_row));
    std::printf("%s", t.to_string().c_str());
  }
  std::printf(
      "\npaper (48+48): basic ~6%% FP speedup, negligible for int;\n"
      "extended ~8%% FP / ~5%% int. Expect the same ordering here with\n"
      "magnitudes shifted by our workload substitution.\n");
  benchutil::cli::finish(rs, opts);
  return 0;
}
