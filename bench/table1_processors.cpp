// Table 1 reproduction: out-of-order processors with merged register files,
// plus the paper's loose/tight classification computed from P, L and N
// ("loose" iff P >= L + N, §2).
#include <cstdio>

#include "common/table.hpp"
#include "isa/isa.hpp"

namespace {

struct Processor {
  const char* name;
  unsigned phys_int;
  const char* ports_int;
  unsigned phys_fp;
  const char* ports_fp;
  unsigned reorder;
  const char* reorder_name;
  unsigned logical;  // ISA integer registers
};

const Processor kProcessors[] = {
    {"MIPS R10K", 64, "7R 3W", 64, "5R 3W", 32, "Active List", 32},
    {"MIPS R12K", 64, "7R 3W", 64, "5R 3W", 48, "Active List", 32},
    {"Alpha 21264", 80, "2x(4R 6W)", 72, "6R 4W", 80, "In-Flight Window", 32},
    {"Intel P4", 128, "n.a.", 128, "n.a.", 126, "Reorder Buffer", 8},
};

const char* classify(unsigned phys, unsigned logical, unsigned reorder) {
  return phys >= logical + reorder ? "loose" : "tight";
}

}  // namespace

int main() {
  std::printf(
      "=== Table 1: out-of-order processors with merged register files ===\n");
  erel::TextTable t({"processor", "P int", "T int", "P fp", "T fp", "N",
                     "reorder structure", "L", "int file"});
  for (const Processor& p : kProcessors) {
    t.add_row({p.name, std::to_string(p.phys_int), p.ports_int,
               std::to_string(p.phys_fp), p.ports_fp,
               std::to_string(p.reorder), p.reorder_name,
               std::to_string(p.logical),
               classify(p.phys_int, p.logical, p.reorder)});
  }
  std::printf("%s", t.to_string().c_str());
  std::printf(
      "\nnotes: R10K never stalls for lack of registers (P = L + N);\n"
      "R12K/21264 can stall on long branch-free sequences (P < L + N);\n"
      "P4 is loose unless in-flight flag registers are renamed (paper, Sec 2).\n");
  std::printf(
      "\nsimulated processor (this repo): L=%u+%u logical, N=128, "
      "P swept 40-160 per class -> tight for P<160, loose at P=160.\n",
      erel::isa::kNumLogicalRegs, erel::isa::kNumLogicalRegs);
  return 0;
}
