// Component microbenchmarks (google-benchmark): throughput of the simulator
// building blocks, plus end-to-end simulation speed in instructions/second.
#include <benchmark/benchmark.h>

#include "arch/arch_state.hpp"
#include "asmkit/assembler.hpp"
#include "branch/gshare.hpp"
#include "common/bits.hpp"
#include "core/free_list.hpp"
#include "core/lus_table.hpp"
#include "core/release_queue.hpp"
#include "mem/hierarchy.hpp"
#include "sim/simulator.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace erel;

void BM_GsharePredictResolve(benchmark::State& state) {
  branch::Gshare gshare(18);
  Xorshift rng(1);
  std::uint64_t pc = 0x10000;
  for (auto _ : state) {
    std::uint32_t cp;
    const bool pred = gshare.predict(pc, &cp);
    const bool actual = rng.chance(0.7);
    gshare.resolve(pc, cp, actual, pred != actual);
    if (pred != actual) gshare.repair(cp, actual);
    pc += 4;
    if (pc > 0x20000) pc = 0x10000;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GsharePredictResolve);

void BM_CacheAccess(benchmark::State& state) {
  mem::MemoryHierarchy hierarchy{mem::HierarchyConfig{}};
  Xorshift rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hierarchy.dload(rng.below(1u << 20) & ~7ull));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess);

void BM_FreeListAllocRelease(benchmark::State& state) {
  core::FreeList fl(160, 32);
  for (auto _ : state) {
    const core::PhysReg p = fl.allocate();
    fl.release(p);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FreeListAllocRelease);

void BM_LusTableRecordLookup(benchmark::State& state) {
  core::LUsTable lus;
  core::InstSeq seq = 1;
  for (auto _ : state) {
    lus.record_use(seq % 32, seq, core::UseKind::Src1);
    benchmark::DoNotOptimize(lus.lookup((seq + 7) % 32));
    ++seq;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LusTableRecordLookup);

void BM_ReleaseQueueCycle(benchmark::State& state) {
  // One branch level with a scheduling, confirmed each round.
  core::InstSeq seq = 1;
  for (auto _ : state) {
    core::ReleaseQueue q;
    q.push_level(seq);
    q.schedule_committed(static_cast<core::PhysReg>(40 + seq % 8));
    q.schedule_inflight(seq + 1, core::kRel1);
    q.on_lu_commit(seq + 1, 50, 51, 52);
    benchmark::DoNotOptimize(q.confirm(seq));
    seq += 3;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReleaseQueueCycle);

void BM_Assembler(benchmark::State& state) {
  const std::string source = workloads::workload("compress").source;
  for (auto _ : state) {
    benchmark::DoNotOptimize(asmkit::assemble(source));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(source.size()));
}
BENCHMARK(BM_Assembler);

void BM_FunctionalSimulator(benchmark::State& state) {
  const arch::Program program = workloads::assemble_workload("go");
  for (auto _ : state) {
    arch::ArchState arch(program);
    arch.run();
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(
                                arch.instructions_executed()));
  }
}
BENCHMARK(BM_FunctionalSimulator)->Unit(benchmark::kMillisecond);

void BM_TimingSimulator(benchmark::State& state) {
  // End-to-end cycle-level simulation speed (committed instructions/s),
  // extended policy, oracle off.
  const arch::Program program = workloads::assemble_workload("go");
  sim::SimConfig config;
  config.policy = static_cast<core::PolicyKind>(state.range(0));
  config.phys_int = config.phys_fp = 64;
  config.check_oracle = false;
  for (auto _ : state) {
    pipeline::Core core(config, program);
    const sim::SimStats stats = core.run();
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(stats.committed));
  }
}
BENCHMARK(BM_TimingSimulator)
    ->Arg(0)  // conventional
    ->Arg(1)  // basic
    ->Arg(2)  // extended
    ->Unit(benchmark::kMillisecond);

void BM_TimingSimulatorWithOracle(benchmark::State& state) {
  const arch::Program program = workloads::assemble_workload("go");
  sim::SimConfig config;
  config.policy = core::PolicyKind::Extended;
  config.phys_int = config.phys_fp = 64;
  config.check_oracle = true;
  for (auto _ : state) {
    pipeline::Core core(config, program);
    const sim::SimStats stats = core.run();
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(stats.committed));
  }
}
BENCHMARK(BM_TimingSimulatorWithOracle)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
