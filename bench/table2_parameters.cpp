// Table 2 reproduction: the simulated processor's parameters (and a check
// that the defaults in SimConfig are exactly the paper's).
#include <cstdio>

#include "sim/simulator.hpp"

int main() {
  erel::sim::SimConfig config;  // defaults == Table 2
  std::printf("=== Table 2: processor parameters (simulator defaults) ===\n");
  std::printf("%s", erel::sim::describe_config(config).c_str());
  return 0;
}
