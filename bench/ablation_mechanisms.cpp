// Ablation study (beyond the paper's headline results): which design choices
// of the extended mechanism matter?
//   1. RelQue depth (max pending branches 4 / 8 / 20): conditional releases
//      need branch coverage.
//   2. Basic-without-reuse vs basic (how much of the basic win is the
//      register-reuse optimization vs early release per se) — approximated
//      by comparing against extended, which never reuses.
//   3. LSQ store->load forwarding contribution (memory substrate ablation):
//      shrink the LSQ to throttle it.
// Ablations 1 and 3 sweep a non-register axis via Experiment::vary(), the
// declarative hook for arbitrary SimConfig mutators.
// Shared sweep CLI: --threads, --csv/--json, --cache-dir, --smoke.
#include <cstdio>

#include "common/table.hpp"
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace erel;
  using core::PolicyKind;

  const auto opts = benchutil::cli::parse(argc, argv);
  const auto int_names = opts.int_names();
  const auto fp_names = opts.fp_names();

  // The three ablations are separate sweeps; their keys never collide
  // (different variants / phys points), so the sinks and the cache
  // provenance line report them as one combined ResultSet.
  harness::ResultSet combined;
  const auto absorb = [&combined](const harness::ResultSet& rs) {
    for (const harness::ExpEntry& e : rs.entries()) combined.add(e);
  };

  // --- 1. checkpoint budget / RelQue depth ---
  std::printf("=== ablation 1: pending-branch budget (extended, 48+48) ===\n");
  {
    std::vector<harness::Experiment::AxisPoint> depths;
    for (const unsigned depth : {4u, 8u, 20u})
      depths.push_back({std::to_string(depth),
                        [depth](sim::SimConfig& config) {
                          config.max_pending_branches = depth;
                        }});
    const harness::ResultSet rs = harness::Experiment()
                                      .workloads(opts.workload_names())
                                      .policies({PolicyKind::Extended})
                                      .phys_regs({48})
                                      .vary("maxbr", depths)
                                      .run(opts.run_options());
    absorb(rs);
    TextTable t({"max pending branches", "int Hm IPC", "FP Hm IPC"});
    for (const std::string& variant : rs.variants()) {
      t.add_row({variant.substr(variant.find('=') + 1),
                 TextTable::num(
                     rs.hmean_ipc(int_names, PolicyKind::Extended, 48, variant)),
                 TextTable::num(
                     rs.hmean_ipc(fp_names, PolicyKind::Extended, 48, variant))});
    }
    std::printf("%s", t.to_string().c_str());
  }

  // --- 2. release-channel mix per policy ---
  std::printf(
      "\n=== ablation 2: where do releases happen? (48+48, per class) ===\n");
  {
    const harness::ResultSet rs = harness::Experiment()
                                      .workloads(opts.workload_names())
                                      .policies(core::all_policies())
                                      .phys_regs({48})
                                      .run(opts.run_options());
    absorb(rs);
    TextTable t({"policy", "class", "conventional", "early@LU", "immediate",
                 "reuse", "branch-confirm", "fallback"});
    for (const PolicyKind policy : core::all_policies()) {
      for (int cls = 0; cls < 2; ++cls) {
        core::PolicyStats sum;
        for (const auto& w : opts.workload_names()) {
          const auto& ps = rs.stats({w, policy, 48, ""}).policy_stats[cls];
          sum.conventional_releases += ps.conventional_releases;
          sum.early_commit_releases += ps.early_commit_releases;
          sum.immediate_releases += ps.immediate_releases;
          sum.reuses += ps.reuses;
          sum.branch_confirm_releases += ps.branch_confirm_releases;
          sum.fallback_conventional += ps.fallback_conventional;
        }
        t.add_row({std::string(core::policy_name(policy)),
                   cls == 0 ? "int" : "fp",
                   std::to_string(sum.conventional_releases),
                   std::to_string(sum.early_commit_releases),
                   std::to_string(sum.immediate_releases),
                   std::to_string(sum.reuses),
                   std::to_string(sum.branch_confirm_releases),
                   std::to_string(sum.fallback_conventional)});
      }
    }
    std::printf("%s", t.to_string().c_str());
  }

  // --- 3. LSQ capacity (memory substrate) ---
  std::printf("\n=== ablation 3: LSQ size (extended, 64+64) ===\n");
  {
    std::vector<harness::Experiment::AxisPoint> lsq_sizes;
    for (const unsigned lsq : {16u, 32u, 64u})
      lsq_sizes.push_back({std::to_string(lsq), [lsq](sim::SimConfig& config) {
                             config.lsq_size = lsq;
                           }});
    const harness::ResultSet rs = harness::Experiment()
                                      .workloads(opts.workload_names())
                                      .policies({PolicyKind::Extended})
                                      .phys_regs({64})
                                      .vary("lsq", lsq_sizes)
                                      .run(opts.run_options());
    absorb(rs);
    TextTable t({"LSQ entries", "int Hm IPC", "FP Hm IPC"});
    for (const std::string& variant : rs.variants()) {
      t.add_row({variant.substr(variant.find('=') + 1),
                 TextTable::num(
                     rs.hmean_ipc(int_names, PolicyKind::Extended, 64, variant)),
                 TextTable::num(
                     rs.hmean_ipc(fp_names, PolicyKind::Extended, 64, variant))});
    }
    std::printf("%s", t.to_string().c_str());
  }
  benchutil::cli::finish(combined, opts);
  return 0;
}
