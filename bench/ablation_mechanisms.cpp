// Ablation study (beyond the paper's headline results): which design choices
// of the extended mechanism matter?
//   1. RelQue depth (max pending branches 4 / 8 / 20): conditional releases
//      need branch coverage.
//   2. Basic-without-reuse vs basic (how much of the basic win is the
//      register-reuse optimization vs early release per se) — approximated
//      by comparing against extended, which never reuses.
//   3. LSQ store->load forwarding contribution (memory substrate ablation):
//      shrink the LSQ to throttle it.
#include <cstdio>

#include "common/table.hpp"
#include "bench_util.hpp"

int main() {
  using namespace erel;
  using core::PolicyKind;

  // --- 1. checkpoint budget / RelQue depth ---
  std::printf("=== ablation 1: pending-branch budget (extended, 48+48) ===\n");
  {
    TextTable t({"max pending branches", "int Hm IPC", "FP Hm IPC"});
    for (const unsigned depth : {4u, 8u, 20u}) {
      std::vector<harness::RunSpec> specs;
      for (const auto& w : workloads::workload_names()) {
        auto config = harness::experiment_config(PolicyKind::Extended, 48);
        config.max_pending_branches = depth;
        specs.push_back({w, config, "", {}});
      }
      const auto results = harness::run_all(specs);
      std::vector<double> int_ipc, fp_ipc;
      for (std::size_t i = 0; i < results.size(); ++i) {
        const bool fp =
            workloads::workload(results[i].spec.workload).is_fp;
        (fp ? fp_ipc : int_ipc).push_back(results[i].stats.ipc());
      }
      t.add_row({std::to_string(depth),
                 TextTable::num(harness::harmonic_mean(int_ipc)),
                 TextTable::num(harness::harmonic_mean(fp_ipc))});
    }
    std::printf("%s", t.to_string().c_str());
  }

  // --- 2. release-channel mix per policy ---
  std::printf(
      "\n=== ablation 2: where do releases happen? (48+48, per class) ===\n");
  {
    const auto results = benchutil::run_sweep(
        workloads::workload_names(),
        {PolicyKind::Conventional, PolicyKind::Basic, PolicyKind::Extended},
        {48});
    TextTable t({"policy", "class", "conventional", "early@LU", "immediate",
                 "reuse", "branch-confirm", "fallback"});
    for (const PolicyKind policy :
         {PolicyKind::Conventional, PolicyKind::Basic, PolicyKind::Extended}) {
      for (int cls = 0; cls < 2; ++cls) {
        core::PolicyStats sum;
        for (const auto& w : workloads::workload_names()) {
          const auto& ps =
              results.at(benchutil::SweepKey{w, policy, 48}).policy_stats[cls];
          sum.conventional_releases += ps.conventional_releases;
          sum.early_commit_releases += ps.early_commit_releases;
          sum.immediate_releases += ps.immediate_releases;
          sum.reuses += ps.reuses;
          sum.branch_confirm_releases += ps.branch_confirm_releases;
          sum.fallback_conventional += ps.fallback_conventional;
        }
        t.add_row({std::string(core::policy_name(policy)),
                   cls == 0 ? "int" : "fp",
                   std::to_string(sum.conventional_releases),
                   std::to_string(sum.early_commit_releases),
                   std::to_string(sum.immediate_releases),
                   std::to_string(sum.reuses),
                   std::to_string(sum.branch_confirm_releases),
                   std::to_string(sum.fallback_conventional)});
      }
    }
    std::printf("%s", t.to_string().c_str());
  }

  // --- 3. LSQ capacity (memory substrate) ---
  std::printf("\n=== ablation 3: LSQ size (extended, 64+64) ===\n");
  {
    TextTable t({"LSQ entries", "int Hm IPC", "FP Hm IPC"});
    for (const unsigned lsq : {16u, 32u, 64u}) {
      std::vector<harness::RunSpec> specs;
      for (const auto& w : workloads::workload_names()) {
        auto config = harness::experiment_config(PolicyKind::Extended, 64);
        config.lsq_size = lsq;
        specs.push_back({w, config, "", {}});
      }
      const auto results = harness::run_all(specs);
      std::vector<double> int_ipc, fp_ipc;
      for (const auto& r : results) {
        const bool fp = workloads::workload(r.spec.workload).is_fp;
        (fp ? fp_ipc : int_ipc).push_back(r.stats.ipc());
      }
      t.add_row({std::to_string(lsq),
                 TextTable::num(harness::harmonic_mean(int_ipc)),
                 TextTable::num(harness::harmonic_mean(fp_ipc))});
    }
    std::printf("%s", t.to_string().c_str());
  }
  return 0;
}
