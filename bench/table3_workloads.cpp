// Table 3 reproduction: the benchmark inventory with *measured* dynamic
// instruction counts (the paper lists 47M-2231M for full SPEC95 runs; our
// kernels are scaled-down analogues, see DESIGN.md).
#include <cstdio>

#include "arch/arch_state.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "workloads/workloads.hpp"

int main() {
  using namespace erel;
  const auto& all = workloads::registry();
  std::vector<std::uint64_t> counts(all.size());
  ThreadPool pool;
  parallel_for(pool, all.size(), [&](std::size_t i) {
    arch::ArchState state(workloads::assemble_workload(all[i].name));
    state.run();
    counts[i] = state.instructions_executed();
  });

  std::printf("=== Table 3: workloads (SPEC95 analogues) ===\n");
  TextTable t({"class", "application", "inputs (analogue)", "exec inst"});
  for (std::size_t i = 0; i < all.size(); ++i) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.2fM",
                  static_cast<double>(counts[i]) / 1e6);
    t.add_row({all[i].is_fp ? "FP" : "int", all[i].name, all[i].input, buf});
  }
  std::printf("%s", t.to_string().c_str());
  std::printf(
      "\npaper inputs for reference: compress 40000 e 2231 (170M), gcc\n"
      "genrecog.i (145M), go 9 9 (146M), li 7 queens (243M), perl scrabbl.in\n"
      "(47M); mgrid test (169M), tomcatv test (191M), applu train (398M),\n"
      "swim train (431M), hydro2d test (472M). Our kernels run ~300-1000x\n"
      "shorter; every kernel self-checks against the functional oracle.\n");
  return 0;
}
