// §3.3 reproduction: the basic mechanism's speedup over conventional at
// 64+64, 48+48 and 40+40 registers (paper: FP ~3%/6%/9%, int negligible
// except very tight files where it reaches ~5%).
#include <cstdio>

#include "common/table.hpp"
#include "bench_util.hpp"

int main() {
  using namespace erel;
  using core::PolicyKind;

  const std::vector<unsigned> sizes = {64, 48, 40};
  const auto results = benchutil::run_sweep(
      workloads::workload_names(),
      {PolicyKind::Conventional, PolicyKind::Basic}, sizes);

  std::printf("=== Sec 3.3: basic mechanism speedup over conventional ===\n");
  TextTable t({"registers", "int Hm conv", "int Hm basic", "int speedup",
               "FP Hm conv", "FP Hm basic", "FP speedup"});
  for (const unsigned p : sizes) {
    const double iconv = benchutil::hmean_ipc(results, benchutil::int_names(),
                                              PolicyKind::Conventional, p);
    const double ibasic = benchutil::hmean_ipc(results, benchutil::int_names(),
                                               PolicyKind::Basic, p);
    const double fconv = benchutil::hmean_ipc(results, benchutil::fp_names(),
                                              PolicyKind::Conventional, p);
    const double fbasic = benchutil::hmean_ipc(results, benchutil::fp_names(),
                                               PolicyKind::Basic, p);
    t.add_row({std::to_string(p), TextTable::num(iconv),
               TextTable::num(ibasic), TextTable::pct(ibasic / iconv - 1.0),
               TextTable::num(fconv), TextTable::num(fbasic),
               TextTable::pct(fbasic / fconv - 1.0)});
  }
  std::printf("%s", t.to_string().c_str());
  std::printf(
      "\npaper: ~3%% FP @64, ~6%% FP @48, and @40 both types gain (5%% int,\n"
      "9%% FP); integer speedup negligible at 64/48.\n");
  return 0;
}
