// §3.3 reproduction: the basic mechanism's speedup over conventional at
// 64+64, 48+48 and 40+40 registers (paper: FP ~3%/6%/9%, int negligible
// except very tight files where it reaches ~5%).
// Shared sweep CLI: --threads, --csv/--json, --cache-dir, --smoke, --sample.
#include <cstdio>

#include "common/table.hpp"
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace erel;
  using core::PolicyKind;

  const auto opts = benchutil::cli::parse(argc, argv);
  const std::vector<unsigned> sizes =
      opts.smoke ? std::vector<unsigned>{48} : std::vector<unsigned>{64, 48, 40};

  harness::Experiment exp;
  exp.workloads(opts.workload_names())
      .policies({PolicyKind::Conventional, PolicyKind::Basic})
      .phys_regs(sizes);
  if (opts.sample) exp.sampling(opts.sampling_config());
  const harness::ResultSet rs = exp.run(opts.run_options());

  const auto int_names = opts.int_names();
  const auto fp_names = opts.fp_names();
  std::printf("=== Sec 3.3: basic mechanism speedup over conventional ===\n");
  TextTable t({"registers", "int Hm conv", "int Hm basic", "int speedup",
               "FP Hm conv", "FP Hm basic", "FP speedup"});
  for (const unsigned p : sizes) {
    t.add_row(
        {std::to_string(p),
         TextTable::num(rs.hmean_ipc(int_names, PolicyKind::Conventional, p)),
         TextTable::num(rs.hmean_ipc(int_names, PolicyKind::Basic, p)),
         TextTable::pct(rs.speedup_vs(int_names, PolicyKind::Basic,
                                      PolicyKind::Conventional, p)),
         TextTable::num(rs.hmean_ipc(fp_names, PolicyKind::Conventional, p)),
         TextTable::num(rs.hmean_ipc(fp_names, PolicyKind::Basic, p)),
         TextTable::pct(rs.speedup_vs(fp_names, PolicyKind::Basic,
                                      PolicyKind::Conventional, p))});
  }
  std::printf("%s", t.to_string().c_str());
  std::printf(
      "\npaper: ~3%% FP @64, ~6%% FP @48, and @40 both types gain (5%% int,\n"
      "9%% FP); integer speedup negligible at 64/48.\n");
  benchutil::cli::finish(rs, opts);
  return 0;
}
