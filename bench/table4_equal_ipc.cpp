// Table 4 reproduction: register file sizes giving equal IPC — how many
// registers the extended mechanism saves at iso-performance (paper: 12.5%
// and 11.1% for int codes, 7.2% and 8.9% for FP codes).
// Shared sweep CLI: --threads, --csv/--json, --cache-dir, --smoke, --sample.
#include <cstdio>

#include <algorithm>

#include "common/table.hpp"
#include "bench_util.hpp"

namespace {

using erel::core::PolicyKind;

/// IPC curve as (size, hmean) points, ascending.
struct Curve {
  std::vector<unsigned> sizes;
  std::vector<double> ipc;

  /// Smallest (possibly fractional, linearly interpolated) size achieving at
  /// least `target` IPC; returns 0 when the curve never reaches it.
  [[nodiscard]] double size_for(double target) const {
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      if (ipc[i] >= target) {
        if (i == 0) return sizes[0];
        const double frac =
            (target - ipc[i - 1]) / std::max(1e-12, ipc[i] - ipc[i - 1]);
        return sizes[i - 1] + frac * (sizes[i] - sizes[i - 1]);
      }
    }
    return 0;
  }

  [[nodiscard]] double ipc_at(unsigned size) const {
    for (std::size_t i = 0; i < sizes.size(); ++i)
      if (sizes[i] == size) return ipc[i];
    return 0;
  }
};

}  // namespace

int main(int argc, char** argv) {
  using namespace erel;

  const auto opts = benchutil::cli::parse(argc, argv);

  // A finer grid than Figure 11 so the interpolation is meaningful; the
  // smoke grid keeps the 40..64 tight region where the savings live.
  std::vector<unsigned> sizes;
  if (opts.smoke) {
    for (unsigned p = 40; p <= 64; p += 8) sizes.push_back(p);
  } else {
    for (unsigned p = 40; p <= 112; p += 4) sizes.push_back(p);
  }

  harness::Experiment exp;
  exp.workloads(opts.workload_names())
      .policies({PolicyKind::Conventional, PolicyKind::Extended})
      .phys_regs(sizes);
  if (opts.sample) exp.sampling(opts.sampling_config());
  const harness::ResultSet rs = exp.run(opts.run_options());

  std::printf("=== Table 4: register file sizes giving equal IPC ===\n");
  for (const bool fp : {true, false}) {
    const auto names = fp ? opts.fp_names() : opts.int_names();
    if (names.empty()) continue;
    Curve conv, ext;
    for (const unsigned p : sizes) {
      conv.sizes.push_back(p);
      conv.ipc.push_back(rs.hmean_ipc(names, PolicyKind::Conventional, p));
      ext.sizes.push_back(p);
      ext.ipc.push_back(rs.hmean_ipc(names, PolicyKind::Extended, p));
    }
    std::printf("\n-- %s codes --\n", fp ? "FP" : "int");
    TextTable t({"conv size", "conv IPC", "extended size (same IPC)",
                 "saved", "saved %"});
    // Reference sizes roughly where the paper's examples sit.
    for (const unsigned ref : {64u, 72u, 80u}) {
      const double target = conv.ipc_at(ref);
      if (target <= 0) continue;
      const double needed = ext.size_for(target);
      if (needed <= 0) continue;
      t.add_row({std::to_string(ref), TextTable::num(target),
                 TextTable::num(needed, 1), TextTable::num(ref - needed, 1),
                 TextTable::pct((ref - needed) / ref)});
    }
    std::printf("%s", t.to_string().c_str());
  }
  std::printf(
      "\npaper: FP 69->64 (7.2%%) and 79->72 (8.9%%); int 64->56 (12.5%%)\n"
      "and 72->64 (11.1%%). Expect savings of the same order wherever the\n"
      "conv curve is still climbing (tight region).\n");
  benchutil::cli::finish(rs, opts);
  return 0;
}
