// Acceptance bench for checkpointed sampled simulation: on a long-running
// looped kernel (>= 10M committed instructions), interval sampling with
// functional warming must reproduce the full detailed-simulation IPC within
// 3% while running at least 5x faster (wall clock), and sharding the
// sampling units across worker threads must (a) reproduce the serial
// SampleRecords bit-for-bit and (b) on a machine with >= 4 cores, deliver a
// further >= 2x wall-clock speedup over serial sampling.
//
//   $ ./sampled_speedup [sweeps] [threads] [placement]
//     sweeps     go-kernel board sweeps        (default 2400, ~10.6M insts)
//     threads    sharded-run worker threads    (default min(hw, 8))
//     placement  periodic|random|stratified    (default stratified)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "asmkit/assembler.hpp"
#include "common/table.hpp"
#include "sim/sampling.hpp"
#include "sim/simulator.hpp"
#include "workloads/workloads.hpp"

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace erel;

  const unsigned sweeps =
      argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 2400;
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const unsigned threads =
      argc > 2 ? static_cast<unsigned>(std::max(1, std::atoi(argv[2])))
               : std::min(hw, 8u);
  const sim::Placement placement =
      argc > 3 ? sim::parse_placement(argv[3]) : sim::Placement::kStratified;

  std::printf("assembling go(%u) — board scanning, data-dependent branches\n",
              sweeps);
  const arch::Program program =
      asmkit::assemble(workloads::kernel_go(sweeps));

  sim::SimConfig config;
  config.policy = core::PolicyKind::Extended;
  config.phys_int = config.phys_fp = 64;
  config.check_oracle = false;

  std::printf("full detailed simulation...\n");
  auto t0 = std::chrono::steady_clock::now();
  const sim::SimStats full = sim::Simulator(config).run(program);
  const double full_seconds = seconds_since(t0);

  sim::SamplingConfig sampling;
  sampling.period = 500'000;
  sampling.warmup = 20'000;
  sampling.detail = 50'000;
  sampling.placement = placement;
  sampling.seed = 42;
  sampling.threads = 1;
  std::printf(
      "serial sampled simulation (period=%llu, warmup=%llu, detail=%llu, "
      "placement=%s, functional warming on)...\n",
      static_cast<unsigned long long>(sampling.period),
      static_cast<unsigned long long>(sampling.warmup),
      static_cast<unsigned long long>(sampling.detail),
      std::string(sim::placement_name(placement)).c_str());
  t0 = std::chrono::steady_clock::now();
  const sim::SampledStats serial =
      sim::SampledSimulator(config, sampling).run(program);
  const double serial_seconds = seconds_since(t0);

  std::printf("sharded sampled simulation (%u threads)...\n", threads);
  sampling.threads = threads;
  t0 = std::chrono::steady_clock::now();
  const sim::SampledStats sharded =
      sim::SampledSimulator(config, sampling).run(program);
  const double sharded_seconds = seconds_since(t0);

  const double ipc_err =
      full.ipc() == 0.0 ? 0.0
                        : (serial.estimate.ipc() - full.ipc()) / full.ipc();
  const double speedup =
      serial_seconds == 0.0 ? 0.0 : full_seconds / serial_seconds;
  const double shard_speedup =
      sharded_seconds == 0.0 ? 0.0 : serial_seconds / sharded_seconds;

  std::printf("\n=== full vs. serial vs. sharded sampled simulation ===\n");
  TextTable t({"metric", "full", "serial sampled", "sharded sampled"});
  t.add_row({"instructions", std::to_string(full.committed),
             std::to_string(serial.total_instructions),
             std::to_string(sharded.total_instructions)});
  t.add_row({"IPC", TextTable::num(full.ipc(), 4),
             TextTable::num(serial.estimate.ipc(), 4),
             TextTable::num(sharded.estimate.ipc(), 4)});
  t.add_row({"IPC 95% CI", "-", TextTable::num(serial.ipc_ci95, 4),
             TextTable::num(sharded.ipc_ci95, 4)});
  t.add_row({"wall seconds", TextTable::num(full_seconds, 2),
             TextTable::num(serial_seconds, 2),
             TextTable::num(sharded_seconds, 2)});
  t.add_row({"samples", "-", std::to_string(serial.samples.size()),
             std::to_string(sharded.samples.size())});
  t.add_row({"detail fraction", "100%",
             TextTable::pct(serial.detail_fraction(), 1),
             TextTable::pct(sharded.detail_fraction(), 1)});
  std::printf("%s\n", t.to_string().c_str());
  std::printf("%s", sim::format_sampled_stats(sharded).c_str());

  const bool ipc_ok = ipc_err > -0.03 && ipc_err < 0.03;
  const bool speed_ok = speedup >= 5.0;
  const bool long_enough = full.committed >= 10'000'000;
  // Bit-for-bit determinism: sharding must only reorder work, never results.
  const bool deterministic = serial.samples == sharded.samples &&
                             serial.ipc_ci95 == sharded.ipc_ci95 &&
                             serial.estimate.cycles == sharded.estimate.cycles;
  // The thread-scaling floor only binds where the hardware can express it.
  const bool scaling_applies = threads >= 4 && hw >= 4;
  const bool scaling_ok = !scaling_applies || shard_speedup >= 2.0;

  std::printf("\nIPC error       %+.2f%%  [%s] (tolerance 3%%)\n",
              100.0 * ipc_err, ipc_ok ? "PASS" : "FAIL");
  std::printf("sampled speedup %.1fx  [%s] (floor 5x over full detail)\n",
              speedup, speed_ok ? "PASS" : "FAIL");
  std::printf("run length      %llu committed  [%s] (floor 10M)\n",
              static_cast<unsigned long long>(full.committed),
              long_enough ? "PASS" : "FAIL");
  std::printf("determinism     serial == sharded  [%s] (bit-for-bit)\n",
              deterministic ? "PASS" : "FAIL");
  if (scaling_applies) {
    std::printf("shard speedup   %.1fx on %u threads  [%s] (floor 2x)\n",
                shard_speedup, threads, scaling_ok ? "PASS" : "FAIL");
  } else {
    std::printf(
        "shard speedup   %.1fx on %u threads  [SKIP] (< 4 threads or < 4 "
        "cores: floor not binding)\n",
        shard_speedup, threads);
  }
  return ipc_ok && speed_ok && long_enough && deterministic && scaling_ok
             ? 0
             : 1;
}
