// Acceptance bench for checkpointed sampled simulation: on a long-running
// looped kernel (>= 10M committed instructions), interval sampling with
// functional warming must reproduce the full detailed-simulation IPC within
// 3% while running at least 5x faster (wall clock).
//
//   $ ./sampled_speedup [sweeps]   # default 2400 go sweeps (~10.6M insts)
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "asmkit/assembler.hpp"
#include "common/table.hpp"
#include "sim/sampling.hpp"
#include "sim/simulator.hpp"
#include "workloads/workloads.hpp"

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace erel;

  const unsigned sweeps =
      argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 2400;
  std::printf("assembling go(%u) — board scanning, data-dependent branches\n",
              sweeps);
  const arch::Program program =
      asmkit::assemble(workloads::kernel_go(sweeps));

  sim::SimConfig config;
  config.policy = core::PolicyKind::Extended;
  config.phys_int = config.phys_fp = 64;
  config.check_oracle = false;

  std::printf("full detailed simulation...\n");
  auto t0 = std::chrono::steady_clock::now();
  const sim::SimStats full = sim::Simulator(config).run(program);
  const double full_seconds = seconds_since(t0);

  sim::SamplingConfig sampling;
  sampling.period = 1'000'000;
  sampling.warmup = 20'000;
  sampling.detail = 30'000;
  std::printf(
      "sampled simulation (period=%llu, warmup=%llu, detail=%llu, "
      "functional warming on)...\n",
      static_cast<unsigned long long>(sampling.period),
      static_cast<unsigned long long>(sampling.warmup),
      static_cast<unsigned long long>(sampling.detail));
  t0 = std::chrono::steady_clock::now();
  const sim::SampledStats sampled =
      sim::SampledSimulator(config, sampling).run(program);
  const double sampled_seconds = seconds_since(t0);

  const double ipc_err =
      full.ipc() == 0.0 ? 0.0
                        : (sampled.estimate.ipc() - full.ipc()) / full.ipc();
  const double speedup =
      sampled_seconds == 0.0 ? 0.0 : full_seconds / sampled_seconds;

  std::printf("\n=== sampled vs. full detailed simulation ===\n");
  TextTable t({"metric", "full", "sampled"});
  t.add_row({"instructions", std::to_string(full.committed),
             std::to_string(sampled.total_instructions)});
  t.add_row({"IPC", TextTable::num(full.ipc(), 4),
             TextTable::num(sampled.estimate.ipc(), 4)});
  t.add_row({"wall seconds", TextTable::num(full_seconds, 2),
             TextTable::num(sampled_seconds, 2)});
  t.add_row({"samples", "-", std::to_string(sampled.samples.size())});
  t.add_row({"detail fraction", "100%",
             TextTable::pct(sampled.detail_fraction(), 1)});
  std::printf("%s\n", t.to_string().c_str());
  std::printf("%s", sim::format_sampled_stats(sampled).c_str());

  const bool ipc_ok = ipc_err > -0.03 && ipc_err < 0.03;
  const bool speed_ok = speedup >= 5.0;
  const bool long_enough = full.committed >= 10'000'000;
  std::printf("\nIPC error    %+.2f%%  [%s] (tolerance 3%%)\n",
              100.0 * ipc_err, ipc_ok ? "PASS" : "FAIL");
  std::printf("speedup      %.1fx  [%s] (floor 5x)\n", speedup,
              speed_ok ? "PASS" : "FAIL");
  std::printf("run length   %llu committed  [%s] (floor 10M)\n",
              static_cast<unsigned long long>(full.committed),
              long_enough ? "PASS" : "FAIL");
  return ipc_ok && speed_ok && long_enough ? 0 : 1;
}
