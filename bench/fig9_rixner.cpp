// Figure 9 reproduction: access time (a) and energy per access (b) of the
// integer / FP register files and the LUs Table as the number of registers
// grows from 40 to 160 (Rixner-style model, 0.18 um).
#include <cstdio>

#include "common/table.hpp"
#include "power/rixner.hpp"

int main() {
  using erel::power::RixnerModel;
  const RixnerModel model;

  std::printf("=== Figure 9a: access time (ns) vs number of registers ===\n");
  erel::TextTable time({"registers", "INT (T=44)", "FP (T=50)", "LUsT"});
  const double lus_time = model.access_time_ns(RixnerModel::lus_table());
  for (unsigned p = 40; p <= 160; p += 8) {
    time.add_row({std::to_string(p),
                  erel::TextTable::num(
                      model.access_time_ns(RixnerModel::int_file(p)), 3),
                  erel::TextTable::num(
                      model.access_time_ns(RixnerModel::fp_file(p)), 3),
                  erel::TextTable::num(lus_time, 3)});
  }
  std::printf("%s", time.to_string().c_str());
  std::printf("paper anchor: LUs Table = 0.98 ns; model gives %.3f ns\n",
              lus_time);
  std::printf(
      "paper anchor: LUs Table 26%% below the 40-entry int file; model: "
      "%.1f%%\n\n",
      100.0 * (1.0 - lus_time /
                         model.access_time_ns(RixnerModel::int_file(40))));

  std::printf("=== Figure 9b: energy per access (pJ) vs registers ===\n");
  erel::TextTable energy({"registers", "INT (T=44)", "FP (T=50)", "LUsT"});
  const double lus_energy = model.energy_pj(RixnerModel::lus_table());
  for (unsigned p = 40; p <= 160; p += 8) {
    energy.add_row(
        {std::to_string(p),
         erel::TextTable::num(model.energy_pj(RixnerModel::int_file(p)), 1),
         erel::TextTable::num(model.energy_pj(RixnerModel::fp_file(p)), 1),
         erel::TextTable::num(lus_energy, 1)});
  }
  std::printf("%s", energy.to_string().c_str());
  std::printf("paper anchor: LUs Table = 193.2 pJ; model gives %.1f pJ\n",
              lus_energy);

  // §4.4 energy-balance comparison.
  const double e_conv = model.energy_pj(RixnerModel::int_file(64)) +
                        model.energy_pj(RixnerModel::fp_file(79));
  const double e_early = model.energy_pj(RixnerModel::int_file(56)) +
                         model.energy_pj(RixnerModel::fp_file(72)) +
                         2.0 * lus_energy;
  std::printf(
      "\nSec 4.4 energy balance: conv(RF64int+RF79fp) = %.0f pJ, "
      "early(RF56int+RF72fp+2xLUsT) = %.0f pJ (paper: 3850 vs 3851)\n",
      e_conv, e_early);
  return 0;
}
