// Figure 3 reproduction: average number of Allocated registers in the
// Empty / Ready / Idle states under conventional renaming, with a tight
// 96+96 register file (L=32, N=128) — integer registers for integer
// programs, FP registers for FP programs.
// Shared sweep CLI: --threads, --csv/--json, --cache-dir, --smoke.
//
// --timeseries=PATH additionally re-runs each workload with the
// Instrumentation API's fixed-stride occupancy channels enabled
// (SimConfig::stat_stride, --stride to override) and writes the per-stride
// Empty/Ready/Idle decomposition as CSV — the paper's Figure 3 as a curve
// over time instead of run averages. Channel runs bypass the result cache
// (channels live in the core's StatRegistry, not in cached cells).
#include <cstdio>
#include <fstream>

#include "common/log.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "bench_util.hpp"
#include "sim/simulator.hpp"

namespace {

void write_timeseries(const erel::benchutil::cli::Options& opts,
                      unsigned phys) {
  using namespace erel;
  const std::uint64_t stride = opts.stat_stride();
  const std::vector<std::string> names = opts.workload_names();
  // One channel run per workload, sharded over the harness pool (channel
  // runs bypass the result cache, so this is the expensive part).
  std::vector<std::string> blocks(names.size());
  ThreadPool pool(opts.threads);
  parallel_for(pool, names.size(), [&](std::size_t i) {
    const std::string& name = names[i];
    sim::SimConfig cfg =
        harness::experiment_config(core::PolicyKind::Conventional, phys);
    cfg.stat_stride = stride;
    auto core = sim::Simulator(cfg).make_core(
        workloads::assemble_workload(name));
    (void)core->run();
    const sim::StatRegistry& reg = core->registry();
    for (const char* cls : {"int", "fp"}) {
      const std::string base = std::string("channel/occupancy/") + cls + '/';
      const auto* empty = reg.find_channel(base + "empty");
      const auto* ready = reg.find_channel(base + "ready");
      const auto* idle = reg.find_channel(base + "idle");
      EREL_CHECK(empty && ready && idle, "occupancy channels missing for ",
                 name);
      for (std::size_t k = 0; k < empty->points.size(); ++k) {
        char row[256];
        std::snprintf(row, sizeof row, "%s,%s,%zu,%llu,%.6f,%.6f,%.6f\n",
                      name.c_str(), cls, k,
                      static_cast<unsigned long long>(k * stride),
                      empty->points[k], ready->points[k], idle->points[k]);
        blocks[i] += row;
      }
    }
  });
  std::string out = "workload,class,bucket,start_cycle,empty,ready,idle\n";
  for (const std::string& block : blocks) out += block;
  std::ofstream file(opts.timeseries_path, std::ios::trunc);
  EREL_CHECK(file.good(), "cannot open '", opts.timeseries_path, "'");
  file << out;
  file.flush();
  EREL_CHECK(file.good(), "short write to '", opts.timeseries_path, "'");
  std::printf("wrote occupancy time series %s (stride %llu cycles)\n",
              opts.timeseries_path.c_str(),
              static_cast<unsigned long long>(stride));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace erel;
  using core::PolicyKind;

  const auto opts = benchutil::cli::parse(argc, argv);
  constexpr unsigned kPhys = 96;

  const harness::ResultSet rs = harness::Experiment()
                                    .workloads(opts.workload_names())
                                    .policies({PolicyKind::Conventional})
                                    .phys_regs({kPhys})
                                    .run(opts.run_options());

  std::printf(
      "=== Figure 3: allocated registers by state, conventional renaming "
      "(P=96 per class) ===\n");
  for (const bool fp : {false, true}) {
    const auto names = fp ? opts.fp_names() : opts.int_names();
    if (names.empty()) continue;
    std::printf("\n-- %s programs (%s registers) --\n",
                fp ? "floating point" : "integer", fp ? "FP" : "integer");
    TextTable t({"benchmark", "empty", "ready", "idle", "allocated",
                 "idle inflation"});
    double sum_empty = 0, sum_ready = 0, sum_idle = 0;
    for (const auto& name : names) {
      const auto& stats = rs.stats({name, PolicyKind::Conventional, kPhys, ""});
      const core::Occupancy& occ = stats.occupancy[fp ? 1 : 0];
      sum_empty += occ.avg_empty;
      sum_ready += occ.avg_ready;
      sum_idle += occ.avg_idle;
      t.add_row({name, TextTable::num(occ.avg_empty, 1),
                 TextTable::num(occ.avg_ready, 1),
                 TextTable::num(occ.avg_idle, 1),
                 TextTable::num(occ.avg_allocated(), 1),
                 TextTable::pct(occ.avg_idle /
                                (occ.avg_empty + occ.avg_ready))});
    }
    const double n = static_cast<double>(names.size());
    t.add_row({"Amean", TextTable::num(sum_empty / n, 1),
               TextTable::num(sum_ready / n, 1),
               TextTable::num(sum_idle / n, 1),
               TextTable::num((sum_empty + sum_ready + sum_idle) / n, 1),
               TextTable::pct(sum_idle / (sum_empty + sum_ready))});
    std::printf("%s", t.to_string().c_str());
  }
  std::printf(
      "\npaper: the Idle state inflates used registers by 45.8%% (int) and\n"
      "16.8%% (FP). Our kernels reproduce the premise (a large Idle share\n"
      "for every program); the int-vs-FP asymmetry depends on SPEC code\n"
      "shapes we approximate only loosely (see EXPERIMENTS.md).\n");
  if (!opts.timeseries_path.empty()) write_timeseries(opts, kPhys);
  benchutil::cli::finish(rs, opts);
  return 0;
}
