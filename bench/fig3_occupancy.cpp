// Figure 3 reproduction: average number of Allocated registers in the
// Empty / Ready / Idle states under conventional renaming, with a tight
// 96+96 register file (L=32, N=128) — integer registers for integer
// programs, FP registers for FP programs.
// Shared sweep CLI: --threads, --csv/--json, --cache-dir, --smoke.
#include <cstdio>

#include "common/table.hpp"
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace erel;
  using core::PolicyKind;

  const auto opts = benchutil::cli::parse(argc, argv);
  constexpr unsigned kPhys = 96;

  const harness::ResultSet rs = harness::Experiment()
                                    .workloads(opts.workload_names())
                                    .policies({PolicyKind::Conventional})
                                    .phys_regs({kPhys})
                                    .run(opts.run_options());

  std::printf(
      "=== Figure 3: allocated registers by state, conventional renaming "
      "(P=96 per class) ===\n");
  for (const bool fp : {false, true}) {
    const auto names = fp ? opts.fp_names() : opts.int_names();
    if (names.empty()) continue;
    std::printf("\n-- %s programs (%s registers) --\n",
                fp ? "floating point" : "integer", fp ? "FP" : "integer");
    TextTable t({"benchmark", "empty", "ready", "idle", "allocated",
                 "idle inflation"});
    double sum_empty = 0, sum_ready = 0, sum_idle = 0;
    for (const auto& name : names) {
      const auto& stats = rs.stats({name, PolicyKind::Conventional, kPhys, ""});
      const core::Occupancy& occ = stats.occupancy[fp ? 1 : 0];
      sum_empty += occ.avg_empty;
      sum_ready += occ.avg_ready;
      sum_idle += occ.avg_idle;
      t.add_row({name, TextTable::num(occ.avg_empty, 1),
                 TextTable::num(occ.avg_ready, 1),
                 TextTable::num(occ.avg_idle, 1),
                 TextTable::num(occ.avg_allocated(), 1),
                 TextTable::pct(occ.avg_idle /
                                (occ.avg_empty + occ.avg_ready))});
    }
    const double n = static_cast<double>(names.size());
    t.add_row({"Amean", TextTable::num(sum_empty / n, 1),
               TextTable::num(sum_ready / n, 1),
               TextTable::num(sum_idle / n, 1),
               TextTable::num((sum_empty + sum_ready + sum_idle) / n, 1),
               TextTable::pct(sum_idle / (sum_empty + sum_ready))});
    std::printf("%s", t.to_string().c_str());
  }
  std::printf(
      "\npaper: the Idle state inflates used registers by 45.8%% (int) and\n"
      "16.8%% (FP). Our kernels reproduce the premise (a large Idle share\n"
      "for every program); the int-vs-FP asymmetry depends on SPEC code\n"
      "shapes we approximate only loosely (see EXPERIMENTS.md).\n");
  benchutil::cli::finish(rs, opts);
  return 0;
}
