// Figure 11 reproduction: harmonic-mean IPC vs physical register file size
// (40..160 per class) for the three policies, integer and FP program sets.
// Also prints the per-size speedups the paper quotes in §5.1.
#include <cstdio>

#include "common/table.hpp"
#include "bench_util.hpp"

int main() {
  using namespace erel;
  using core::PolicyKind;

  const std::vector<PolicyKind> policies = {
      PolicyKind::Conventional, PolicyKind::Basic, PolicyKind::Extended};
  const auto& sizes = harness::register_sweep_sizes();
  const auto results =
      benchutil::run_sweep(workloads::workload_names(), policies, sizes);

  std::printf(
      "=== Figure 11: harmonic-mean IPC vs number of physical registers "
      "===\n");
  for (const bool fp : {false, true}) {
    const auto names = fp ? benchutil::fp_names() : benchutil::int_names();
    std::printf("\n-- %s --\n", fp ? "FP" : "Integer");
    TextTable t({"registers", "conv", "basic", "extended", "basic speedup",
                 "extended speedup"});
    for (const unsigned p : sizes) {
      const double conv =
          benchutil::hmean_ipc(results, names, PolicyKind::Conventional, p);
      const double basic =
          benchutil::hmean_ipc(results, names, PolicyKind::Basic, p);
      const double ext =
          benchutil::hmean_ipc(results, names, PolicyKind::Extended, p);
      t.add_row({std::to_string(p), TextTable::num(conv),
                 TextTable::num(basic), TextTable::num(ext),
                 TextTable::pct(basic / conv - 1.0),
                 TextTable::pct(ext / conv - 1.0)});
    }
    std::printf("%s", t.to_string().c_str());
  }

  // Per-benchmark highlights the paper calls out (§5.1).
  std::printf("\n-- paper-highlighted points --\n");
  const auto point = [&](const char* w, PolicyKind pk, unsigned p) {
    return results.at(benchutil::SweepKey{w, pk, p}).ipc();
  };
  for (const unsigned p : {40u, 56u, 88u}) {
    std::printf("tomcatv @%3u: extended/conv = %+.1f%% (paper: +16/+12/+8%%)\n",
                p, 100.0 * (point("tomcatv", PolicyKind::Extended, p) /
                                point("tomcatv", PolicyKind::Conventional, p) -
                            1.0));
  }
  std::printf("hydro2d @ 40: extended/conv = %+.1f%% (paper: +12%%)\n",
              100.0 * (point("hydro2d", PolicyKind::Extended, 40) /
                           point("hydro2d", PolicyKind::Conventional, 40) -
                       1.0));
  std::printf(
      "\npaper shape: FP gains 10%%->2%% over 40..104 then fade to loose;\n"
      "int gains only for very tight files (40..64), extended > basic,\n"
      "with basic ~= extended for FP codes.\n");
  return 0;
}
