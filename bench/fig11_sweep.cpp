// Figure 11 reproduction: harmonic-mean IPC vs physical register file size
// (40..160 per class) for the release policies, integer and FP program
// sets, plus the per-size speedups the paper quotes in §5.1.
//
// Shared sweep CLI (bench_util.hpp): --threads, --csv/--json, --cache-dir,
// --policies, --smoke. With --sample every cell runs under checkpointed
// interval sampling (stratified placement by default, --target-ci for
// confidence-driven stopping) — the one-flag path to paper-scale sweeps —
// and the tables gain per-policy 95% CI columns. Under --sample --smoke a
// full-detail reference sweep also runs (cheap at smoke scale) and a
// sampled-vs-full delta column is printed next to the CIs.
#include <cstdio>
#include <optional>

#include "common/table.hpp"
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace erel;
  using core::PolicyKind;

  const auto opts = benchutil::cli::parse(argc, argv);
  const std::vector<unsigned> sizes = opts.smoke
                                          ? std::vector<unsigned>{48, 96}
                                          : harness::register_sweep_sizes();

  harness::Experiment exp;
  exp.workloads(opts.workload_names())
      .policies(opts.policies)
      .phys_regs(sizes);
  if (opts.sample) exp.sampling(opts.sampling_config());
  opts.add_probes(exp);
  const harness::ResultSet rs = exp.run(opts.run_options());

  // Full-detail reference for the sampled-vs-full columns; at paper scale
  // run once without --sample into the same --cache-dir instead.
  std::optional<harness::ResultSet> full;
  if (opts.sample && opts.smoke) {
    harness::Experiment ref;
    ref.workloads(opts.workload_names())
        .policies(opts.policies)
        .phys_regs(sizes);
    full = ref.run(opts.run_options());
  }

  std::printf(
      "=== Figure 11: harmonic-mean IPC vs number of physical registers "
      "===%s\n",
      opts.sample ? " (sampled)" : "");
  const PolicyKind baseline = opts.policies.front();
  for (const bool fp : {false, true}) {
    const auto names = fp ? opts.fp_names() : opts.int_names();
    if (names.empty()) continue;
    std::printf("\n-- %s --\n", fp ? "FP" : "Integer");

    std::vector<std::string> header = {"registers"};
    for (const PolicyKind pk : opts.policies) {
      header.push_back(std::string(core::policy_name(pk)));
      if (opts.sample) header.push_back("±ci95");
      if (full) header.push_back("Δ vs full");
    }
    for (std::size_t k = 1; k < opts.policies.size(); ++k)
      header.push_back(std::string(core::policy_name(opts.policies[k])) +
                       " speedup");
    TextTable t(std::move(header));

    for (const unsigned p : sizes) {
      std::vector<std::string> row = {std::to_string(p)};
      for (const PolicyKind pk : opts.policies) {
        const double h = rs.hmean_ipc(names, pk, p);
        row.push_back(TextTable::num(h));
        if (opts.sample)
          row.push_back(TextTable::num(rs.hmean_ipc_ci95(names, pk, p), 4));
        if (full)
          row.push_back(
              TextTable::speedup_pct(h, full->hmean_ipc(names, pk, p)));
      }
      for (std::size_t k = 1; k < opts.policies.size(); ++k)
        row.push_back(
            TextTable::pct(rs.speedup_vs(names, opts.policies[k], baseline, p)));
      t.add_row(std::move(row));
    }
    std::printf("%s", t.to_string().c_str());
  }

  // --power: total register-file energy and summed ED^2 per size/policy
  // over the whole workload set (per-workload values land in --csv/--json).
  if (opts.power) {
    std::printf(
        "\n=== Register-file energy vs size (RixnerProbe, --power) ===\n");
    std::vector<std::string> header = {"registers"};
    for (const PolicyKind pk : opts.policies) {
      header.push_back(std::string(core::policy_name(pk)) + " sumE(nJ)");
      header.push_back(std::string(core::policy_name(pk)) + " sumED2");
    }
    TextTable t(std::move(header));
    for (const unsigned p : sizes) {
      std::vector<std::string> row = {std::to_string(p)};
      for (const PolicyKind pk : opts.policies) {
        double energy = 0.0, ed2 = 0.0;
        for (const auto& name : opts.workload_names()) {
          const auto& e = rs.at({name, pk, p, ""});
          energy += e.metric("power/energy_nj").value_or(0.0);
          ed2 += e.metric("power/ed2").value_or(0.0);
        }
        row.push_back(TextTable::num(energy, 1));
        row.push_back(TextTable::num(ed2, 0));
      }
      t.add_row(std::move(row));
    }
    std::printf("%s", t.to_string().c_str());
    if (opts.sample)
      std::printf(
          "note: sampled cells charge only their measured windows, and\n"
          "confidence-driven stopping can measure a different number of\n"
          "windows per cell — compare energy per instruction, not columns\n"
          "of absolutes (per-cell counts are in --csv/--json).\n");
  }

  // Per-benchmark highlights the paper calls out (§5.1) — only meaningful
  // on the full grid with the full workload set.
  const auto have = [&](const char* w, PolicyKind pk, unsigned p) {
    return rs.contains({w, pk, p, ""});
  };
  if (have("tomcatv", PolicyKind::Extended, 40) &&
      have("tomcatv", PolicyKind::Conventional, 40)) {
    std::printf("\n-- paper-highlighted points --\n");
    const auto point = [&](const char* w, PolicyKind pk, unsigned p) {
      return rs.ipc({w, pk, p, ""});
    };
    for (const unsigned p : {40u, 56u, 88u}) {
      if (!have("tomcatv", PolicyKind::Extended, p)) continue;
      std::printf(
          "tomcatv @%3u: extended/conv = %s (paper: +16/+12/+8%%)\n", p,
          TextTable::speedup_pct(point("tomcatv", PolicyKind::Extended, p),
                                 point("tomcatv", PolicyKind::Conventional, p))
              .c_str());
    }
    if (have("hydro2d", PolicyKind::Extended, 40)) {
      std::printf(
          "hydro2d @ 40: extended/conv = %s (paper: +12%%)\n",
          TextTable::speedup_pct(point("hydro2d", PolicyKind::Extended, 40),
                                 point("hydro2d", PolicyKind::Conventional, 40))
              .c_str());
    }
    std::printf(
        "\npaper shape: FP gains 10%%->2%% over 40..104 then fade to loose;\n"
        "int gains only for very tight files (40..64), extended > basic,\n"
        "with basic ~= extended for FP codes.\n");
  }

  benchutil::cli::finish(rs, opts);
  if (full && !opts.cache_dir.empty())
    std::printf("reference cache: %zu hits, %zu simulated\n",
                full->cache_hits(), full->simulated());
  return 0;
}
