// Simulator throughput benchmark: the canonical data point for the perf
// trajectory (BENCH_sim_throughput.json).
//
// For every kernel in the suite it measures
//   - functional MIPS, fast engine   (DecodedProgram + page-pointer TLB)
//   - functional MIPS, legacy engine (per-step byte fetch + decode, page-map
//     lookups — the pre-decode-cache engine, for an honest speedup claim)
//   - full-pipeline KIPS with and without the decode cache (oracle on, the
//     default verification configuration)
// and emits a machine-readable JSON report plus a human-readable table.
//
// JSON schema (BENCH_sim_throughput.json, schema_version 1):
//   { "benchmark": "sim_throughput", "schema_version": 1, "smoke": bool,
//     "kernels": [ { "name", "func_instructions", "func_mips_fast",
//                    "func_mips_legacy", "func_speedup",
//                    "pipeline_instructions", "pipeline_kips_fast",
//                    "pipeline_kips_legacy", "pipeline_speedup" }, ... ],
//     "aggregate": { "func_mips_fast_hmean", "func_mips_legacy_hmean",
//                    "func_speedup", "pipeline_kips_fast_hmean",
//                    "pipeline_kips_legacy_hmean", "pipeline_speedup" } }
//
// --smoke shrinks the suite/caps so CI can execute the binary on every PR;
// in that mode any non-positive throughput value fails the run (exit 1).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "arch/arch_state.hpp"
#include "arch/decoded_program.hpp"
#include "pipeline/core.hpp"
#include "sim/config.hpp"
#include "workloads/workloads.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct KernelResult {
  std::string name;
  std::uint64_t func_insts = 0;
  double func_mips_fast = 0.0;
  double func_mips_legacy = 0.0;
  std::uint64_t pipe_insts = 0;
  double pipe_kips_fast = 0.0;
  double pipe_kips_legacy = 0.0;

  [[nodiscard]] double func_speedup() const {
    return func_mips_legacy > 0.0 ? func_mips_fast / func_mips_legacy : 0.0;
  }
  [[nodiscard]] double pipe_speedup() const {
    return pipe_kips_legacy > 0.0 ? pipe_kips_fast / pipe_kips_legacy : 0.0;
  }
};

/// Functional-oracle throughput. Repeats whole runs (fresh ArchState each
/// time — architectural state mutates) until `min_seconds` of measured work
/// accumulates, so short kernels still time meaningfully.
double measure_functional(const erel::arch::Program& program,
                          const erel::arch::DecodedProgram* decoded,
                          bool tlb_enabled, std::uint64_t max_steps,
                          double min_seconds, std::uint64_t* insts_out) {
  std::uint64_t total_insts = 0;
  double total_seconds = 0.0;
  do {
    erel::arch::ArchState state(program, decoded);
    state.memory().set_tlb_enabled(tlb_enabled);
    const Clock::time_point start = Clock::now();
    state.run(max_steps == 0 ? ~std::uint64_t{0} : max_steps);
    total_seconds += seconds_since(start);
    total_insts += state.instructions_executed();
  } while (total_seconds < min_seconds);
  if (insts_out != nullptr) *insts_out = total_insts;
  return total_seconds > 0.0
             ? static_cast<double>(total_insts) / total_seconds / 1e6
             : 0.0;
}

/// Full detailed-pipeline throughput (oracle co-simulation on — the
/// configuration every verification run pays for).
double measure_pipeline(const erel::arch::Program& program, bool fast_path,
                        std::uint64_t max_instructions,
                        std::uint64_t* insts_out) {
  erel::sim::SimConfig config;
  config.fast_path = fast_path;
  config.max_instructions = max_instructions;
  erel::pipeline::Core core(config, program);
  const Clock::time_point start = Clock::now();
  const erel::sim::SimStats stats = core.run();
  const double elapsed = seconds_since(start);
  if (insts_out != nullptr) *insts_out = stats.committed;
  return elapsed > 0.0 ? static_cast<double>(stats.committed) / elapsed / 1e3
                       : 0.0;
}

double hmean(const std::vector<KernelResult>& results,
             double KernelResult::*field) {
  double denom = 0.0;
  for (const KernelResult& r : results) {
    if (r.*field <= 0.0) return 0.0;
    denom += 1.0 / (r.*field);
  }
  return results.empty() ? 0.0 : static_cast<double>(results.size()) / denom;
}

void write_json(const std::string& path, const std::vector<KernelResult>& rs,
                bool smoke) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f,
               "{\n  \"benchmark\": \"sim_throughput\",\n"
               "  \"schema_version\": 1,\n  \"smoke\": %s,\n"
               "  \"kernels\": [\n",
               smoke ? "true" : "false");
  for (std::size_t i = 0; i < rs.size(); ++i) {
    const KernelResult& r = rs[i];
    std::fprintf(
        f,
        "    {\"name\": \"%s\", \"func_instructions\": %llu, "
        "\"func_mips_fast\": %.3f, \"func_mips_legacy\": %.3f, "
        "\"func_speedup\": %.3f, \"pipeline_instructions\": %llu, "
        "\"pipeline_kips_fast\": %.3f, \"pipeline_kips_legacy\": %.3f, "
        "\"pipeline_speedup\": %.3f}%s\n",
        r.name.c_str(), static_cast<unsigned long long>(r.func_insts),
        r.func_mips_fast, r.func_mips_legacy, r.func_speedup(),
        static_cast<unsigned long long>(r.pipe_insts), r.pipe_kips_fast,
        r.pipe_kips_legacy, r.pipe_speedup(),
        i + 1 < rs.size() ? "," : "");
  }
  const double ff = hmean(rs, &KernelResult::func_mips_fast);
  const double fl = hmean(rs, &KernelResult::func_mips_legacy);
  const double pf = hmean(rs, &KernelResult::pipe_kips_fast);
  const double pl = hmean(rs, &KernelResult::pipe_kips_legacy);
  std::fprintf(f,
               "  ],\n  \"aggregate\": {\"func_mips_fast_hmean\": %.3f, "
               "\"func_mips_legacy_hmean\": %.3f, \"func_speedup\": %.3f, "
               "\"pipeline_kips_fast_hmean\": %.3f, "
               "\"pipeline_kips_legacy_hmean\": %.3f, "
               "\"pipeline_speedup\": %.3f}\n}\n",
               ff, fl, fl > 0.0 ? ff / fl : 0.0, pf, pl,
               pl > 0.0 ? pf / pl : 0.0);
  std::fclose(f);
}

void usage(const char* argv0) {
  std::printf(
      "usage: %s [options] [workload...]\n"
      "  workload...            subset of registry kernels (default: all"
      " ten)\n"
      "  --json=PATH            JSON report path (default"
      " BENCH_sim_throughput.json)\n"
      "  --func-insts=N         cap functional runs at N instructions"
      " (0 = to HALT)\n"
      "  --pipeline-insts=N     detailed-pipeline instructions per kernel\n"
      "  --min-seconds=X        minimum measured time per functional"
      " engine\n"
      "  --smoke                tiny CI gate: short caps, li+swim only,\n"
      "                         fails on any non-positive throughput\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_sim_throughput.json";
  std::uint64_t func_insts = 0;        // 0 = run to HALT
  std::uint64_t pipeline_insts = 0;    // 0 = mode default
  double min_seconds = -1.0;           // <0 = mode default
  std::vector<std::string> names;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto value = [&arg](std::string_view flag) {
      return std::string(arg.substr(flag.size() + 1));
    };
    if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (arg == "--smoke") {
      smoke = true;
    } else if (arg.starts_with("--json=")) {
      json_path = value("--json");
    } else if (arg.starts_with("--func-insts=")) {
      func_insts = std::strtoull(value("--func-insts").c_str(), nullptr, 10);
    } else if (arg.starts_with("--pipeline-insts=")) {
      pipeline_insts =
          std::strtoull(value("--pipeline-insts").c_str(), nullptr, 10);
    } else if (arg.starts_with("--min-seconds=")) {
      min_seconds = std::strtod(value("--min-seconds").c_str(), nullptr);
    } else if (arg.starts_with("--")) {
      std::fprintf(stderr, "%s: unknown option %s\n", argv[0], argv[i]);
      usage(argv[0]);
      return 2;
    } else {
      names.emplace_back(arg);
    }
  }
  for (const std::string& name : names) {
    if (erel::workloads::find_workload(name) == nullptr) {
      std::fprintf(stderr, "%s: unknown workload '%s'\n", argv[0],
                   name.c_str());
      usage(argv[0]);
      return 2;
    }
  }
  if (names.empty())
    names = smoke ? std::vector<std::string>{"li", "swim"}
                  : erel::workloads::workload_names();
  if (smoke) {
    if (func_insts == 0) func_insts = 200'000;
    if (pipeline_insts == 0) pipeline_insts = 10'000;
    if (min_seconds < 0.0) min_seconds = 0.0;
  } else {
    if (pipeline_insts == 0) pipeline_insts = 30'000;
    if (min_seconds < 0.0) min_seconds = 0.25;
  }

  std::vector<KernelResult> results;
  for (const std::string& name : names) {
    const erel::arch::Program program =
        erel::workloads::assemble_workload(name);
    const erel::arch::DecodedProgram decoded(program);
    KernelResult r;
    r.name = name;
    r.func_mips_fast = measure_functional(program, &decoded,
                                          /*tlb_enabled=*/true, func_insts,
                                          min_seconds, &r.func_insts);
    r.func_mips_legacy =
        measure_functional(program, nullptr, /*tlb_enabled=*/false,
                           func_insts, min_seconds, nullptr);
    r.pipe_kips_fast = measure_pipeline(program, /*fast_path=*/true,
                                        pipeline_insts, &r.pipe_insts);
    r.pipe_kips_legacy =
        measure_pipeline(program, /*fast_path=*/false, pipeline_insts,
                         nullptr);
    results.push_back(r);
    std::printf("%-10s func %8.1f MIPS (legacy %6.1f, %4.2fx)   "
                "pipeline %7.1f KIPS (legacy %6.1f, %4.2fx)\n",
                r.name.c_str(), r.func_mips_fast, r.func_mips_legacy,
                r.func_speedup(), r.pipe_kips_fast, r.pipe_kips_legacy,
                r.pipe_speedup());
  }

  const double ff = hmean(results, &KernelResult::func_mips_fast);
  const double fl = hmean(results, &KernelResult::func_mips_legacy);
  const double pf = hmean(results, &KernelResult::pipe_kips_fast);
  const double pl = hmean(results, &KernelResult::pipe_kips_legacy);
  std::printf("\nhmean      func %8.1f MIPS (legacy %6.1f, %4.2fx)   "
              "pipeline %7.1f KIPS (legacy %6.1f, %4.2fx)\n",
              ff, fl, fl > 0.0 ? ff / fl : 0.0, pf, pl,
              pl > 0.0 ? pf / pl : 0.0);

  write_json(json_path, results, smoke);
  std::printf("wrote %s (%zu kernels)\n", json_path.c_str(), results.size());

  if (smoke) {
    for (const KernelResult& r : results) {
      if (r.func_mips_fast <= 0.0 || r.func_mips_legacy <= 0.0 ||
          r.pipe_kips_fast <= 0.0 || r.pipe_kips_legacy <= 0.0) {
        std::fprintf(stderr, "smoke FAIL: non-positive throughput for %s\n",
                     r.name.c_str());
        return 1;
      }
    }
    std::printf("smoke OK: all throughputs positive\n");
  }
  return 0;
}
