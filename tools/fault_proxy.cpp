// fault_proxy — the deterministic fault-injecting loopback forwarder
// (src/net/fault.hpp) as a standalone binary, for chaos CI and manual
// poking at a live ereld.
//
//   ereld --port=7431 --cache-dir=cache
//   fault_proxy --upstream=127.0.0.1:7431 --port=7432 --seed=3
//   fig11_sweep --server=127.0.0.1:7432 ...   # sweep through the faults
//
// Every accepted connection suffers the fault the seed assigns to its
// accept index (drop, stall, short writes, blackhole, or nothing), so a
// failing chaos run is reproduced exactly by re-running with the same
// seed. Prints one "faultproxy: listening on HOST:PORT" line once bound
// (scripts parse it — ephemeral --port=0 is allowed) and forwards until
// SIGINT or SIGTERM.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <poll.h>
#include <unistd.h>

#include "net/fault.hpp"

namespace {

// Signal flag; the main thread sleeps in ppoll-style chunks and checks it.
volatile std::sig_atomic_t g_stop = 0;

void handle_signal(int) { g_stop = 1; }

void usage(const char* argv0) {
  std::printf(
      "usage: %s --upstream=HOST:PORT [options]\n"
      "  --upstream=HOST:PORT  forward target (required)\n"
      "  --host=ADDR           bind address (default 127.0.0.1)\n"
      "  --port=N              listen port (default 0 = ephemeral)\n"
      "  --seed=N              fault-plan seed (default 0)\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  std::string upstream;
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::uint64_t seed = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* flag) -> std::string {
      const std::size_t len = std::strlen(flag);
      if (arg.size() > len && arg[len] == '=') return arg.substr(len + 1);
      if (i + 1 < argc) return argv[++i];
      std::fprintf(stderr, "%s: missing value for %s\n", argv[0], flag);
      std::exit(2);
    };
    const auto matches = [&](const char* flag) {
      const std::size_t len = std::strlen(flag);
      return arg == flag ||
             (arg.size() > len && arg.compare(0, len, flag) == 0 &&
              arg[len] == '=');
    };
    if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (matches("--upstream")) {
      upstream = value("--upstream");
    } else if (matches("--host")) {
      host = value("--host");
    } else if (matches("--port")) {
      port = static_cast<std::uint16_t>(
          std::strtoul(value("--port").c_str(), nullptr, 10));
    } else if (matches("--seed")) {
      seed = std::strtoull(value("--seed").c_str(), nullptr, 10);
    } else {
      std::fprintf(stderr, "%s: unknown option %s\n", argv[0], argv[i]);
      usage(argv[0]);
      return 2;
    }
  }

  const std::size_t colon = upstream.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == upstream.size()) {
    std::fprintf(stderr, "%s: --upstream must be HOST:PORT\n", argv[0]);
    usage(argv[0]);
    return 2;
  }
  const std::string up_host = upstream.substr(0, colon);
  const auto up_port = static_cast<std::uint16_t>(
      std::strtoul(upstream.c_str() + colon + 1, nullptr, 10));

  erel::net::FaultProxy proxy(up_host, up_port, erel::net::FaultPlan(seed),
                              host, port);
  if (!proxy.valid()) {
    std::fprintf(stderr, "faultproxy: cannot listen on %s:%u: %s\n",
                 host.c_str(), unsigned{port}, proxy.error().c_str());
    return 1;
  }
  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  proxy.start();

  std::printf("faultproxy: listening on %s:%u (upstream %s:%u, seed %llu)\n",
              host.c_str(), unsigned{proxy.port()}, up_host.c_str(),
              unsigned{up_port}, static_cast<unsigned long long>(seed));
  std::fflush(stdout);  // scripts wait for this line before connecting

  while (g_stop == 0) poll(nullptr, 0, 200);
  proxy.stop();

  std::printf("faultproxy: %llu connection(s) proxied\n",
              static_cast<unsigned long long>(proxy.accepted()));
  return 0;
}
