// erel-lint: project-specific static invariant checker (docs/lint.md).
//
// Scans the repository's own sources and enforces the determinism
// contracts the experiment harness rests on: fingerprint field coverage,
// wire-protocol completeness, deterministic-TU hygiene, logging
// discipline, stat-path naming. Exit status 1 on any finding, so CI can
// gate on it directly:
//
//   erel_lint [--root=PATH] [--report=PATH] [--list-rules]
//
//   --root=PATH     repository root (default: ., then ..,../.. fallback so
//                   `build/erel_lint` works out of the box)
//   --report=PATH   additionally write the findings to a file (CI artifact)
//   --list-rules    print the rule catalog and exit
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>

#include "lint/rules.hpp"

namespace {

constexpr const char* kRuleCatalog =
    "fingerprint-coverage  config fields all reach canonical_fields()\n"
    "protocol-complete     MsgType enumerators handled + tested; "
    "encode/decode pairs\n"
    "nondet-source         no randomness/wall-clock in deterministic TUs\n"
    "nondet-container      no unordered containers in deterministic TUs\n"
    "raw-stdio             library code routes output through common/log\n"
    "stat-path             registry paths lowercase, '/'-separated, "
    "duplicate-free\n";

/// `.` when run from the repo root, else walk up (the binary usually lives
/// in build/).
std::string detect_root(const std::string& hint) {
  namespace fs = std::filesystem;
  if (!hint.empty()) return hint;
  for (const char* candidate : {".", "..", "../.."}) {
    if (fs::exists(fs::path(candidate) / "src" / "sim" / "config.hpp"))
      return candidate;
  }
  return ".";
}

}  // namespace

int main(int argc, char** argv) {
  std::string root_arg;
  std::string report_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--root=", 0) == 0) {
      root_arg = arg.substr(7);
    } else if (arg.rfind("--report=", 0) == 0) {
      report_path = arg.substr(9);
    } else if (arg == "--list-rules") {
      std::fputs(kRuleCatalog, stdout);
      return 0;
    } else {
      std::fprintf(stderr,
                   "usage: erel_lint [--root=PATH] [--report=PATH] "
                   "[--list-rules]\n");
      return 2;
    }
  }

  const std::string root = detect_root(root_arg);
  std::string error;
  const auto findings = erel::lint::lint_repository(root, &error);
  if (!findings) {
    std::fprintf(stderr, "erel_lint: %s\n", error.c_str());
    return 2;
  }

  const std::string report = erel::lint::format_findings(*findings);
  if (!report_path.empty()) {
    std::ofstream out(report_path);
    out << report;
    if (findings->empty()) out << "erel_lint: clean\n";
  }
  if (findings->empty()) {
    std::printf("erel_lint: clean (root %s)\n", root.c_str());
    return 0;
  }
  std::fputs(report.c_str(), stdout);
  std::printf("erel_lint: %zu finding%s\n", findings->size(),
              findings->size() == 1 ? "" : "s");
  return 1;
}
