// ereld — the experiment daemon (src/service/daemon.hpp) as a standalone
// binary.
//
//   ereld --port=7431 --cache-dir=results-cache --workers=8
//   fig11_sweep --server=127.0.0.1:7431 ...        # any sweep binary
//   ereld --stop 127.0.0.1:7431                    # clean shutdown
//
// The daemon listens on localhost by default (it executes simulation
// requests; exposing it beyond the machine is an explicit --host choice),
// prints one "ereld: listening on HOST:PORT" line once bound (scripts
// parse it — ephemeral --port=0 is allowed), and serves until SIGINT,
// SIGTERM, or a kShutdown frame from `ereld --stop`.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "service/client.hpp"
#include "service/daemon.hpp"

namespace {

erel::service::ExperimentDaemon* g_daemon = nullptr;

void handle_signal(int) {
  if (g_daemon != nullptr) g_daemon->stop();  // atomic store + pipe write
}

void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "       %s --stop HOST:PORT\n"
      "  --host=ADDR          bind address (default 127.0.0.1)\n"
      "  --port=N             listen port (default 0 = ephemeral)\n"
      "  --cache-dir=PATH     on-disk result cache (default: none)\n"
      "  --workers=N          simulation workers (0 = hardware default)\n"
      "  --tick-ms=N          subscriber push cadence (default 25)\n"
      "  --snapshot-cycles=N  registry snapshot interval (default 10000)\n"
      "  --max-queue=N        cells queued-or-running before kBusy (0 = off)\n"
      "  --max-cache-bytes=N  result-cache LRU byte budget (0 = unlimited)\n"
      "  --busy-retry-ms=N    retry hint carried in kBusy (default 50)\n"
      "  --stop HOST:PORT     ask a running daemon to shut down\n",
      argv0, argv0);
}

int stop_daemon(const std::string& endpoint) {
  erel::service::RemoteClient client;
  if (!client.connect(endpoint)) {
    std::fprintf(stderr, "ereld: cannot reach %s: %s\n", endpoint.c_str(),
                 client.error().c_str());
    return 1;
  }
  if (!client.shutdown_server()) {
    std::fprintf(stderr, "ereld: %s did not acknowledge shutdown\n",
                 endpoint.c_str());
    return 1;
  }
  std::printf("ereld: %s stopped\n", endpoint.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  erel::service::ExperimentDaemon::Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* flag) -> std::string {
      const std::size_t len = std::strlen(flag);
      if (arg.size() > len && arg[len] == '=') return arg.substr(len + 1);
      if (i + 1 < argc) return argv[++i];
      std::fprintf(stderr, "%s: missing value for %s\n", argv[0], flag);
      std::exit(2);
    };
    const auto matches = [&](const char* flag) {
      const std::size_t len = std::strlen(flag);
      return arg == flag ||
             (arg.size() > len && arg.compare(0, len, flag) == 0 &&
              arg[len] == '=');
    };
    if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (matches("--stop")) {
      return stop_daemon(value("--stop"));
    } else if (matches("--host")) {
      opts.host = value("--host");
    } else if (matches("--port")) {
      opts.port = static_cast<std::uint16_t>(
          std::strtoul(value("--port").c_str(), nullptr, 10));
    } else if (matches("--cache-dir")) {
      opts.cache_dir = value("--cache-dir");
    } else if (matches("--workers")) {
      opts.workers = static_cast<unsigned>(
          std::strtoul(value("--workers").c_str(), nullptr, 10));
    } else if (matches("--tick-ms")) {
      opts.tick_ms = static_cast<unsigned>(
          std::strtoul(value("--tick-ms").c_str(), nullptr, 10));
    } else if (matches("--snapshot-cycles")) {
      opts.snapshot_interval_cycles =
          std::strtoull(value("--snapshot-cycles").c_str(), nullptr, 10);
    } else if (matches("--max-queue")) {
      opts.max_queue = static_cast<std::size_t>(
          std::strtoull(value("--max-queue").c_str(), nullptr, 10));
    } else if (matches("--max-cache-bytes")) {
      opts.max_cache_bytes =
          std::strtoull(value("--max-cache-bytes").c_str(), nullptr, 10);
    } else if (matches("--busy-retry-ms")) {
      opts.busy_retry_ms = static_cast<unsigned>(
          std::strtoul(value("--busy-retry-ms").c_str(), nullptr, 10));
    } else {
      std::fprintf(stderr, "%s: unknown option %s\n", argv[0], argv[i]);
      usage(argv[0]);
      return 2;
    }
  }

  erel::service::ExperimentDaemon daemon(opts);
  if (!daemon.valid()) {
    std::fprintf(stderr, "ereld: cannot listen on %s:%u: %s\n",
                 opts.host.c_str(), unsigned{opts.port},
                 daemon.error().c_str());
    return 1;
  }
  g_daemon = &daemon;
  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  std::printf("ereld: listening on %s:%u\n", opts.host.c_str(),
              unsigned{daemon.port()});
  std::fflush(stdout);  // scripts wait for this line before connecting
  daemon.run();

  const erel::service::DaemonStats stats = daemon.stats();
  std::printf(
      "ereld: served %llu requests (%llu cache hits, %llu simulated, "
      "%llu deduped, %llu errors, %llu busy, %llu cancelled), "
      "%llu updates pushed, %llu evicted, %llu quarantined, "
      "%llu client(s) dropped\n",
      static_cast<unsigned long long>(stats.requests),
      static_cast<unsigned long long>(stats.cache_hits),
      static_cast<unsigned long long>(stats.simulated),
      static_cast<unsigned long long>(stats.deduped),
      static_cast<unsigned long long>(stats.errors),
      static_cast<unsigned long long>(stats.busy),
      static_cast<unsigned long long>(stats.cancelled),
      static_cast<unsigned long long>(stats.updates),
      static_cast<unsigned long long>(stats.evicted),
      static_cast<unsigned long long>(stats.quarantined),
      static_cast<unsigned long long>(stats.dropped_clients));
  return 0;
}
