// The Experiment API v2 layer: builder materialization, typed ResultSet
// (aggregates, CSV/JSON sinks), config fingerprinting, and the on-disk
// result cache (hit / miss-then-resume).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>

#include "common/table.hpp"
#include "harness/experiment.hpp"
#include "harness/fingerprint.hpp"
#include "harness/harness.hpp"
#include "harness/results.hpp"
#include "power/probe.hpp"
#include "workloads/workloads.hpp"

namespace erel {
namespace {

namespace fs = std::filesystem;
using core::PolicyKind;

/// Tiny base config: capped run so the cache tests simulate milliseconds.
sim::SimConfig tiny_config() {
  sim::SimConfig config;
  config.check_oracle = false;
  config.max_instructions = 20'000;
  return config;
}

/// Self-cleaning unique temp directory per test.
struct TempDir {
  fs::path path;
  TempDir() {
    path = fs::temp_directory_path() /
           ("erel-test-" +
            std::to_string(
                ::testing::UnitTest::GetInstance()->random_seed()) +
            "-" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  [[nodiscard]] std::string str() const { return path.string(); }
};

// ---------------------------------------------------------------------------
// Materialization
// ---------------------------------------------------------------------------

TEST(Experiment, MaterializesCrossProductInDocumentedOrder) {
  const auto cells = harness::Experiment()
                         .workloads({"li", "swim"})
                         .policies({PolicyKind::Conventional,
                                    PolicyKind::Extended})
                         .phys_regs({40, 48})
                         .materialize();
  ASSERT_EQ(cells.size(), 8u);
  // Workloads outermost, then policies, then sizes.
  EXPECT_EQ(cells[0].key,
            (harness::ExpKey{"li", PolicyKind::Conventional, 40, ""}));
  EXPECT_EQ(cells[1].key,
            (harness::ExpKey{"li", PolicyKind::Conventional, 48, ""}));
  EXPECT_EQ(cells[2].key,
            (harness::ExpKey{"li", PolicyKind::Extended, 40, ""}));
  EXPECT_EQ(cells[3].key,
            (harness::ExpKey{"li", PolicyKind::Extended, 48, ""}));
  EXPECT_EQ(cells[4].key,
            (harness::ExpKey{"swim", PolicyKind::Conventional, 40, ""}));
  EXPECT_EQ(cells[7].key,
            (harness::ExpKey{"swim", PolicyKind::Extended, 48, ""}));
  // Specs carry the mutated config and a structured tag.
  EXPECT_EQ(cells[3].spec.config.policy, PolicyKind::Extended);
  EXPECT_EQ(cells[3].spec.config.phys_int, 48u);
  EXPECT_EQ(cells[3].spec.config.phys_fp, 48u);
  EXPECT_EQ(cells[3].spec.tag, "li/extended/48");
}

TEST(Experiment, VaryAxesCrossMultiplyIntoVariantLabels) {
  const auto cells =
      harness::Experiment()
          .workloads({"li"})
          .vary("ros", {{"64", [](sim::SimConfig& c) { c.ros_size = 64; }},
                        {"128", [](sim::SimConfig& c) { c.ros_size = 128; }}})
          .vary("lsq", {{"32", [](sim::SimConfig& c) { c.lsq_size = 32; }}})
          .materialize();
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[0].key.variant, "ros=64,lsq=32");
  EXPECT_EQ(cells[1].key.variant, "ros=128,lsq=32");
  EXPECT_EQ(cells[0].spec.config.ros_size, 64u);
  EXPECT_EQ(cells[0].spec.config.lsq_size, 32u);
  EXPECT_EQ(cells[1].spec.config.ros_size, 128u);
}

TEST(Experiment, DefaultsKeepBaseConfigAxes) {
  sim::SimConfig base = tiny_config();
  base.policy = PolicyKind::Basic;
  base.phys_int = base.phys_fp = 72;
  const auto cells =
      harness::Experiment().base(base).workloads({"li"}).materialize();
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].key.policy, PolicyKind::Basic);
  EXPECT_EQ(cells[0].key.phys, 72u);
  EXPECT_EQ(cells[0].spec.config.phys_fp, 72u);
}

TEST(Experiment, SamplingRidesAlongOnEveryCell) {
  sim::SamplingConfig sampling;
  sampling.period = 50'000;
  const auto cells = harness::Experiment()
                         .workloads({"li"})
                         .sampling(sampling)
                         .materialize();
  ASSERT_EQ(cells.size(), 1u);
  ASSERT_TRUE(cells[0].spec.sampling.has_value());
  EXPECT_EQ(cells[0].spec.sampling->period, 50'000u);
}

// ---------------------------------------------------------------------------
// Policy name round-trip (CLI parser / JSON sink dependency)
// ---------------------------------------------------------------------------

TEST(PolicyName, RoundTripsThroughParse) {
  for (const PolicyKind kind : core::all_policies())
    EXPECT_EQ(core::parse_policy(core::policy_name(kind)), kind);
}

TEST(PolicyName, AcceptsLongAliases) {
  EXPECT_EQ(core::parse_policy("conventional"), PolicyKind::Conventional);
  EXPECT_EQ(core::parse_policy("ext"), PolicyKind::Extended);
}

TEST(PolicyName, TryParseReturnsNulloptInsteadOfAborting) {
  EXPECT_EQ(core::try_parse_policy("basic"), PolicyKind::Basic);
  EXPECT_EQ(core::try_parse_policy("bogus"), std::nullopt);
  EXPECT_EQ(core::try_parse_policy(""), std::nullopt);
}

TEST(Workloads, FindWorkloadReturnsNullptrOnUnknownNames) {
  EXPECT_NE(workloads::find_workload("li"), nullptr);
  EXPECT_EQ(workloads::find_workload("li")->name, "li");
  EXPECT_EQ(workloads::find_workload("no-such-kernel"), nullptr);
}

// ---------------------------------------------------------------------------
// Fingerprints
// ---------------------------------------------------------------------------

TEST(Fingerprint, StableForEqualConfigs) {
  const sim::SimConfig a = tiny_config();
  const sim::SimConfig b = tiny_config();
  EXPECT_EQ(harness::fingerprint_cell("li", a, {}).value,
            harness::fingerprint_cell("li", b, {}).value);
}

TEST(Fingerprint, AnyFieldChangeChangesTheHash) {
  const sim::SimConfig base = tiny_config();
  const std::uint64_t ref = harness::fingerprint_cell("li", base, {}).value;

  const auto mutated = [&](auto&& mutate) {
    sim::SimConfig c = base;
    mutate(c);
    return harness::fingerprint_cell("li", c, {}).value;
  };
  EXPECT_NE(mutated([](sim::SimConfig& c) { c.policy = PolicyKind::Basic; }),
            ref);
  EXPECT_NE(mutated([](sim::SimConfig& c) { c.phys_int = 41; }), ref);
  EXPECT_NE(mutated([](sim::SimConfig& c) { c.phys_fp = 41; }), ref);
  EXPECT_NE(mutated([](sim::SimConfig& c) { c.ros_size = 64; }), ref);
  EXPECT_NE(mutated([](sim::SimConfig& c) { c.lsq_size = 32; }), ref);
  EXPECT_NE(mutated([](sim::SimConfig& c) { c.commit_width = 4; }), ref);
  EXPECT_NE(mutated([](sim::SimConfig& c) { c.max_pending_branches = 8; }),
            ref);
  EXPECT_NE(mutated([](sim::SimConfig& c) { c.ghr_bits = 12; }), ref);
  EXPECT_NE(mutated([](sim::SimConfig& c) { c.fetch.width = 4; }), ref);
  EXPECT_NE(mutated([](sim::SimConfig& c) { c.fus.int_alu = 2; }), ref);
  EXPECT_NE(
      mutated([](sim::SimConfig& c) { c.memory.l1d.size_bytes = 1024; }),
      ref);
  EXPECT_NE(mutated([](sim::SimConfig& c) { c.memory.memory_latency = 99; }),
            ref);
  EXPECT_NE(mutated([](sim::SimConfig& c) { c.max_cycles = 123; }), ref);
  EXPECT_NE(mutated([](sim::SimConfig& c) { c.max_instructions = 1; }), ref);
  EXPECT_NE(mutated([](sim::SimConfig& c) { c.check_oracle = true; }), ref);
  EXPECT_NE(mutated([](sim::SimConfig& c) { c.flush_period = 7; }), ref);
}

/// Every canonical SimConfig field set to a value distinct from its
/// default (cache names stay fixed: they are key labels, not values).
sim::SimConfig maximally_non_default_config() {
  sim::SimConfig config;
  config.policy = PolicyKind::Basic;
  config.phys_int = 41;
  config.phys_fp = 43;
  config.ros_size = 129;
  config.lsq_size = 65;
  config.decode_width = 7;
  config.issue_width = 6;
  config.commit_width = 5;
  config.max_pending_branches = 21;
  config.ghr_bits = 11;
  config.fetch.width = 9;
  config.fetch.max_blocks_per_cycle = 3;
  config.fetch.buffer_capacity = 17;
  config.fus.int_alu = 1;
  config.fus.int_mul = 2;
  config.fus.fp_alu = 3;
  config.fus.fp_mul = 5;
  config.fus.fp_div = 6;
  config.fus.ld_st = 7;
  config.memory.l1i = {"L1I", 64 * 1024, 4, 128, 2};
  config.memory.l1d = {"L1D", 16 * 1024, 8, 32, 3};
  config.memory.l2 = {"L2", 2048 * 1024, 16, 256, 13};
  config.memory.memory_latency = 51;
  config.max_cycles = 123'456'789;
  config.max_instructions = 42;
  config.check_oracle = false;
  config.flush_period = 9;
  return config;
}

TEST(CanonicalFields, MaximallyNonDefaultConfigRoundTrips) {
  // append_canonical_fields -> config_from_canonical_fields must be the
  // identity on every serialized field, even when all of them differ from
  // the defaults the parser starts from.
  const sim::SimConfig config = maximally_non_default_config();
  std::string text;
  sim::append_canonical_fields(config, text);

  std::map<std::string, std::string, std::less<>> fields;
  std::istringstream lines(text);
  for (std::string line; std::getline(lines, line);) {
    const std::size_t eq = line.find('=');
    ASSERT_NE(eq, std::string::npos) << line;
    EXPECT_TRUE(fields.emplace(line.substr(0, eq), line.substr(eq + 1)).second)
        << "duplicate canonical field " << line;
  }
  const auto back = sim::config_from_canonical_fields(fields);
  ASSERT_TRUE(back.has_value());

  std::string text2;
  sim::append_canonical_fields(*back, text2);
  EXPECT_EQ(text, text2);

  // Strictness both ways: a missing field and an unknown field are each a
  // parse failure, not a silently defaulted config.
  auto missing = fields;
  missing.erase("ghr_bits");
  EXPECT_FALSE(sim::config_from_canonical_fields(missing).has_value());
  auto extra = fields;
  extra.emplace("no_such_field", "1");
  EXPECT_FALSE(sim::config_from_canonical_fields(extra).has_value());
}

TEST(CanonicalFields, SingleFieldDifferencesNeverShareAFingerprint) {
  // One mutation per canonical field; all resulting fingerprints must be
  // pairwise distinct (and distinct from the base). A collision here means
  // two different machines would share a cache entry.
  using Mutation = std::pair<const char*, void (*)(sim::SimConfig&)>;
  const std::vector<Mutation> mutations = {
      {"policy", [](sim::SimConfig& c) { c.policy = PolicyKind::Extended; }},
      {"phys_int", [](sim::SimConfig& c) { ++c.phys_int; }},
      {"phys_fp", [](sim::SimConfig& c) { ++c.phys_fp; }},
      {"ros_size", [](sim::SimConfig& c) { ++c.ros_size; }},
      {"lsq_size", [](sim::SimConfig& c) { ++c.lsq_size; }},
      {"decode_width", [](sim::SimConfig& c) { ++c.decode_width; }},
      {"issue_width", [](sim::SimConfig& c) { ++c.issue_width; }},
      {"commit_width", [](sim::SimConfig& c) { ++c.commit_width; }},
      {"max_pending_branches",
       [](sim::SimConfig& c) { ++c.max_pending_branches; }},
      {"ghr_bits", [](sim::SimConfig& c) { ++c.ghr_bits; }},
      {"fetch.width", [](sim::SimConfig& c) { ++c.fetch.width; }},
      {"fetch.max_blocks_per_cycle",
       [](sim::SimConfig& c) { ++c.fetch.max_blocks_per_cycle; }},
      {"fetch.buffer_capacity",
       [](sim::SimConfig& c) { ++c.fetch.buffer_capacity; }},
      {"fus.int_alu", [](sim::SimConfig& c) { ++c.fus.int_alu; }},
      {"fus.int_mul", [](sim::SimConfig& c) { ++c.fus.int_mul; }},
      {"fus.fp_alu", [](sim::SimConfig& c) { ++c.fus.fp_alu; }},
      {"fus.fp_mul", [](sim::SimConfig& c) { ++c.fus.fp_mul; }},
      {"fus.fp_div", [](sim::SimConfig& c) { ++c.fus.fp_div; }},
      {"fus.ld_st", [](sim::SimConfig& c) { ++c.fus.ld_st; }},
      {"memory.L1I.size_bytes",
       [](sim::SimConfig& c) { c.memory.l1i.size_bytes *= 2; }},
      {"memory.L1I.associativity",
       [](sim::SimConfig& c) { ++c.memory.l1i.associativity; }},
      {"memory.L1I.line_bytes",
       [](sim::SimConfig& c) { c.memory.l1i.line_bytes *= 2; }},
      {"memory.L1I.hit_latency",
       [](sim::SimConfig& c) { ++c.memory.l1i.hit_latency; }},
      {"memory.L1D.size_bytes",
       [](sim::SimConfig& c) { c.memory.l1d.size_bytes *= 2; }},
      {"memory.L1D.associativity",
       [](sim::SimConfig& c) { ++c.memory.l1d.associativity; }},
      {"memory.L1D.line_bytes",
       [](sim::SimConfig& c) { c.memory.l1d.line_bytes *= 2; }},
      {"memory.L1D.hit_latency",
       [](sim::SimConfig& c) { ++c.memory.l1d.hit_latency; }},
      {"memory.L2.size_bytes",
       [](sim::SimConfig& c) { c.memory.l2.size_bytes *= 2; }},
      {"memory.L2.associativity",
       [](sim::SimConfig& c) { ++c.memory.l2.associativity; }},
      {"memory.L2.line_bytes",
       [](sim::SimConfig& c) { c.memory.l2.line_bytes *= 2; }},
      {"memory.L2.hit_latency",
       [](sim::SimConfig& c) { ++c.memory.l2.hit_latency; }},
      {"memory.memory_latency",
       [](sim::SimConfig& c) { ++c.memory.memory_latency; }},
      {"max_cycles", [](sim::SimConfig& c) { ++c.max_cycles; }},
      {"max_instructions", [](sim::SimConfig& c) { ++c.max_instructions; }},
      {"check_oracle",
       [](sim::SimConfig& c) { c.check_oracle = !c.check_oracle; }},
      {"flush_period", [](sim::SimConfig& c) { ++c.flush_period; }},
  };

  const sim::SimConfig base = maximally_non_default_config();
  std::map<std::uint64_t, const char*> seen;
  seen.emplace(harness::fingerprint_cell("li", base, {}).value, "<base>");
  for (const auto& [name, mutate] : mutations) {
    sim::SimConfig c = base;
    mutate(c);
    const std::uint64_t fp = harness::fingerprint_cell("li", c, {}).value;
    const auto [it, inserted] = seen.emplace(fp, name);
    EXPECT_TRUE(inserted) << "fingerprint collision: " << name << " vs "
                          << it->second;
  }
  EXPECT_EQ(seen.size(), mutations.size() + 1);
}

TEST(Fingerprint, WorkloadIdentityAndSamplingMatter) {
  const sim::SimConfig config = tiny_config();
  const std::uint64_t li = harness::fingerprint_cell("li", config, {}).value;
  EXPECT_NE(harness::fingerprint_cell("go", config, {}).value, li);

  sim::SamplingConfig sampling;
  const std::uint64_t sampled =
      harness::fingerprint_cell("li", config, sampling).value;
  EXPECT_NE(sampled, li);
  sim::SamplingConfig other = sampling;
  other.period = sampling.period + 1;
  EXPECT_NE(harness::fingerprint_cell("li", config, other).value, sampled);
  other = sampling;
  other.seed = 99;
  EXPECT_NE(harness::fingerprint_cell("li", config, other).value, sampled);
}

TEST(Fingerprint, ThreadCountNeverChangesTheHash) {
  // Sharding is bit-identical to serial, so the cache must serve both.
  const sim::SimConfig config = tiny_config();
  sim::SamplingConfig serial;
  serial.threads = 1;
  sim::SamplingConfig sharded = serial;
  sharded.threads = 8;
  EXPECT_EQ(harness::fingerprint_cell("li", config, serial).value,
            harness::fingerprint_cell("li", config, sharded).value);
}

TEST(Fingerprint, CallbacksAreNotFingerprintable) {
  sim::SimConfig config = tiny_config();
  EXPECT_TRUE(harness::fingerprintable("li", config));
  sim::SimConfig config2 = tiny_config();
  config2.policy_factory = [](core::RC, core::RegFileState& rf,
                              core::PipelineHooks& hooks) {
    return core::make_policy(PolicyKind::Conventional, rf, hooks);
  };
  EXPECT_FALSE(harness::fingerprintable("li", config2));
  // Unknown workload names are likewise uncacheable instead of fatal.
  EXPECT_FALSE(harness::fingerprintable("no-such-kernel", config));
}

TEST(Fingerprint, ProbeNamesExtendTheHash) {
  // Declaring probes separates cache entries (cells must carry their
  // metrics), while the no-probe hash stays the historical one.
  const sim::SimConfig config = tiny_config();
  const auto bare = harness::fingerprint_cell("li", config, std::nullopt);
  const auto with_probe =
      harness::fingerprint_cell("li", config, std::nullopt, {"power"});
  EXPECT_NE(bare.value, with_probe.value);
  EXPECT_EQ(bare.value,
            harness::fingerprint_cell("li", config, std::nullopt, {}).value);
  EXPECT_NE(
      with_probe.value,
      harness::fingerprint_cell("li", config, std::nullopt, {"other"}).value);
}

// ---------------------------------------------------------------------------
// Cache entry serialization round-trip
// ---------------------------------------------------------------------------

harness::ExpEntry fake_entry() {
  harness::ExpEntry e;
  e.key = {"li", PolicyKind::Extended, 48, "lsq=32"};
  e.stats.cycles = 12345;
  e.stats.committed = 6789;
  e.stats.halted = true;
  e.stats.branches.cond_branches = 42;
  e.stats.branches.cond_mispredicts = 7;
  e.stats.stalls.free_list_empty = 11;
  e.stats.policy_stats[0].reuses = 3;
  e.stats.policy_stats[1].early_commit_releases = 5;
  e.stats.occupancy[0].avg_idle = 12.625;
  e.stats.occupancy[1].avg_ready = 0.1;  // not exactly representable
  e.stats.squash_released[1] = 9;
  e.stats.l1d.accesses = 1000;
  e.stats.l1d.misses = 31;
  sim::SampledStats s;
  s.estimate = e.stats;
  s.cpi_mean = 1.23456789012345e-1;
  s.ipc_ci95 = 0.0421;
  s.total_instructions = 999999;
  s.units_planned = 12;
  s.degenerate_windows = 1;
  s.samples = {{0, 100, 200}, {5000, 100, 150}};
  e.sampled = std::move(s);
  e.metrics = {{"power/energy_nj", 1234.5625}, {"power/ed2", 0.1}};
  return e;
}

TEST(ResultCache, SerializedEntryRoundTripsBitExactly) {
  const harness::ExpEntry e = fake_entry();
  const std::string text = harness::serialize_entry(e, "00ff00ff00ff00ff");
  const auto back = harness::parse_entry(text, "00ff00ff00ff00ff", e.key);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->from_cache);
  EXPECT_EQ(back->key, e.key);
  EXPECT_EQ(back->stats.cycles, e.stats.cycles);
  EXPECT_EQ(back->stats.committed, e.stats.committed);
  EXPECT_EQ(back->stats.halted, e.stats.halted);
  EXPECT_EQ(back->stats.branches.cond_mispredicts, 7u);
  EXPECT_EQ(back->stats.policy_stats[0].reuses, 3u);
  EXPECT_EQ(back->stats.policy_stats[1].early_commit_releases, 5u);
  EXPECT_EQ(back->stats.occupancy[0].avg_idle, 12.625);
  EXPECT_EQ(back->stats.occupancy[1].avg_ready, 0.1);  // %.17g: bit-exact
  EXPECT_EQ(back->stats.squash_released[1], 9u);
  EXPECT_EQ(back->stats.l1d.misses, 31u);
  ASSERT_TRUE(back->sampled.has_value());
  EXPECT_EQ(back->sampled->cpi_mean, e.sampled->cpi_mean);
  EXPECT_EQ(back->sampled->ipc_ci95, e.sampled->ipc_ci95);
  EXPECT_EQ(back->sampled->total_instructions, 999999u);
  EXPECT_EQ(back->sampled->units_planned, 12u);
  EXPECT_EQ(back->sampled->samples, e.sampled->samples);
  // Open probe metrics round-trip in order, bit-exactly (%.17g doubles).
  EXPECT_EQ(back->metrics, e.metrics);
  EXPECT_EQ(back->metric("power/energy_nj").value_or(0.0), 1234.5625);
  EXPECT_EQ(back->metric("power/ed2").value_or(0.0), 0.1);
  EXPECT_FALSE(back->metric("no/such").has_value());
}

TEST(ResultCache, CorruptMetricIsAMiss) {
  const harness::ExpEntry e = fake_entry();
  const std::string good = harness::serialize_entry(e, "00ff00ff00ff00ff");
  std::string text = good;
  const std::string from = "metric.power/energy_nj 1234.5625";
  const std::size_t pos = text.find(from);
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, from.size(), "metric.power/energy_nj 12x4.5625");
  EXPECT_FALSE(harness::parse_entry(text, "00ff00ff00ff00ff", e.key));
}

TEST(ResultCache, RejectsMismatchesAndTruncation) {
  const harness::ExpEntry e = fake_entry();
  const std::string text = harness::serialize_entry(e, "00ff00ff00ff00ff");
  // Wrong fingerprint (collision / renamed file).
  EXPECT_FALSE(harness::parse_entry(text, "deadbeefdeadbeef", e.key));
  // Wrong key (same fingerprint file, different expected cell).
  harness::ExpKey other = e.key;
  other.phys = 40;
  EXPECT_FALSE(harness::parse_entry(text, "00ff00ff00ff00ff", other));
  // Truncated write (no "end" marker).
  EXPECT_FALSE(harness::parse_entry(text.substr(0, text.size() / 2),
                                    "00ff00ff00ff00ff", e.key));
  // Garbage.
  EXPECT_FALSE(harness::parse_entry("not a cache file", "00", e.key));
}

TEST(ResultCache, VariantLabelAliasIsAHitNotAThrash) {
  // Two vary() labelings can mutate a config into identical values (e.g.
  // "maxbr=20" vs the default). Equal fingerprints imply identical stats,
  // so the entry must serve both keys — rekeyed to the expected cell —
  // instead of the two sweeps evicting each other's entries forever.
  const harness::ExpEntry e = fake_entry();  // stored variant: "lsq=32"
  const std::string text = harness::serialize_entry(e, "00ff00ff00ff00ff");
  harness::ExpKey alias = e.key;
  alias.variant = "";
  const auto hit = harness::parse_entry(text, "00ff00ff00ff00ff", alias);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->key, alias);  // carries the expected key, not the stored one
  EXPECT_EQ(hit->stats.cycles, e.stats.cycles);
}

TEST(ResultCache, CorruptValueIsAMissNotAWrongNumber) {
  const harness::ExpEntry e = fake_entry();
  const std::string good = harness::serialize_entry(e, "00ff00ff00ff00ff");
  const auto corrupt = [&](const std::string& from, const std::string& to) {
    std::string text = good;
    const std::size_t pos = text.find(from);
    EXPECT_NE(pos, std::string::npos) << from;
    text.replace(pos, from.size(), to);
    return harness::parse_entry(text, "00ff00ff00ff00ff", e.key);
  };
  // Bit-flip inside an integer: must reject, not parse the prefix.
  EXPECT_FALSE(corrupt("stats.cycles 12345", "stats.cycles 1x345"));
  // Garbage double (12.625 renders exactly under %.17g).
  EXPECT_FALSE(corrupt("stats.int.avg_idle 12.625", "stats.int.avg_idle abc"));
  // Garbage bool.
  EXPECT_FALSE(corrupt("stats.halted 1", "stats.halted yes"));
  // Control: untouched text still parses.
  EXPECT_TRUE(harness::parse_entry(good, "00ff00ff00ff00ff", e.key));
}

// ---------------------------------------------------------------------------
// End-to-end cache behaviour
// ---------------------------------------------------------------------------

TEST(ResultCache, MissThenHitThenResume) {
  TempDir dir;
  const auto build = [&](std::vector<unsigned> sizes) {
    harness::Experiment exp;
    exp.base(tiny_config()).workloads({"li"}).policies(
        {PolicyKind::Conventional}).phys_regs(std::move(sizes));
    return exp;
  };

  // Cold: everything simulates.
  const harness::ResultSet first =
      build({48, 96}).run({.threads = 2, .cache_dir = dir.str()});
  EXPECT_EQ(first.size(), 2u);
  EXPECT_EQ(first.cache_hits(), 0u);
  EXPECT_EQ(first.simulated(), 2u);

  // Warm rerun: zero re-simulations, identical stats.
  const harness::ResultSet second =
      build({48, 96}).run({.threads = 2, .cache_dir = dir.str()});
  EXPECT_EQ(second.cache_hits(), 2u);
  EXPECT_EQ(second.simulated(), 0u);
  for (const unsigned p : {48u, 96u}) {
    const harness::ExpKey key{"li", PolicyKind::Conventional, p, ""};
    EXPECT_EQ(second.stats(key).cycles, first.stats(key).cycles);
    EXPECT_EQ(second.stats(key).committed, first.stats(key).committed);
  }

  // Grown grid (interrupted-sweep resume): only the new cell simulates.
  const harness::ResultSet third =
      build({48, 96, 64}).run({.threads = 2, .cache_dir = dir.str()});
  EXPECT_EQ(third.size(), 3u);
  EXPECT_EQ(third.cache_hits(), 2u);
  EXPECT_EQ(third.simulated(), 1u);
}

TEST(ResultCache, CorruptEntryIsAMissNotAWrongResult) {
  TempDir dir;
  harness::Experiment exp;
  exp.base(tiny_config()).workloads({"li"}).phys_regs({48});
  const harness::ResultSet first = exp.run({.cache_dir = dir.str()});
  EXPECT_EQ(first.simulated(), 1u);

  // Truncate every cache entry mid-file.
  for (const auto& f : fs::directory_iterator(dir.path)) {
    std::ifstream in(f.path(), std::ios::binary);
    std::stringstream buf;
    buf << in.rdbuf();
    in.close();
    std::ofstream out(f.path(), std::ios::binary | std::ios::trunc);
    out << buf.str().substr(0, buf.str().size() / 3);
  }
  const harness::ResultSet again = exp.run({.cache_dir = dir.str()});
  EXPECT_EQ(again.cache_hits(), 0u);
  EXPECT_EQ(again.simulated(), 1u);
}

TEST(ResultCache, SampledRunsCacheWithCI) {
  TempDir dir;
  sim::SimConfig config;
  config.check_oracle = false;
  sim::SamplingConfig sampling;
  sampling.period = 30'000;
  sampling.warmup = 1'000;
  sampling.detail = 5'000;
  sampling.placement = sim::Placement::kStratified;
  harness::Experiment exp;
  exp.base(config).workloads({"li"}).phys_regs({64}).sampling(sampling);

  const harness::ResultSet first = exp.run({.cache_dir = dir.str()});
  ASSERT_TRUE(first.entries()[0].sampled.has_value());
  EXPECT_EQ(first.simulated(), 1u);

  const harness::ResultSet second = exp.run({.cache_dir = dir.str()});
  EXPECT_EQ(second.cache_hits(), 1u);
  ASSERT_TRUE(second.entries()[0].sampled.has_value());
  EXPECT_EQ(second.entries()[0].sampled->samples,
            first.entries()[0].sampled->samples);
  EXPECT_EQ(second.entries()[0].sampled->ipc_ci95,
            first.entries()[0].sampled->ipc_ci95);
  EXPECT_EQ(second.entries()[0].stats.cycles, first.entries()[0].stats.cycles);
}

// ---------------------------------------------------------------------------
// ResultSet aggregates and sinks
// ---------------------------------------------------------------------------

harness::ResultSet run_small_grid() {
  harness::Experiment exp;
  exp.base(tiny_config())
      .workloads({"li", "go"})
      .policies({PolicyKind::Conventional, PolicyKind::Extended})
      .phys_regs({48});
  harness::RunOptions opts;
  opts.threads = 4;
  return exp.run(opts);
}

TEST(ResultSet, HmeanMatchesHarnessHarmonicMean) {
  const harness::ResultSet rs = run_small_grid();
  const std::vector<std::string> names = {"li", "go"};
  const double ipc_li = rs.ipc({"li", PolicyKind::Conventional, 48, ""});
  const double ipc_go = rs.ipc({"go", PolicyKind::Conventional, 48, ""});
  const double expect = harness::harmonic_mean({{ipc_li, ipc_go}});
  EXPECT_NEAR(rs.hmean_ipc(names, PolicyKind::Conventional, 48), expect,
              1e-12);
  EXPECT_GT(expect, 0.0);
}

TEST(ResultSet, SlicesReportAxesInFirstSeenOrder) {
  const harness::ResultSet rs = run_small_grid();
  EXPECT_EQ(rs.workloads(), (std::vector<std::string>{"li", "go"}));
  EXPECT_EQ(rs.policies(), (std::vector<PolicyKind>{
                               PolicyKind::Conventional,
                               PolicyKind::Extended}));
  EXPECT_EQ(rs.phys_sizes(), (std::vector<unsigned>{48}));
  EXPECT_EQ(rs.variants(), (std::vector<std::string>{""}));
}

TEST(ResultSet, CsvRoundTripsKeysAndValues) {
  TempDir dir;
  const harness::ResultSet rs = run_small_grid();
  const std::string path = (dir.path / "out.csv").string();
  rs.write_csv(path);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line.substr(0, 29), "workload,policy,phys,variant,");
  std::size_t rows = 0;
  while (std::getline(in, line)) {
    // cells are simple (no quoting needed): split on commas.
    std::vector<std::string> cols;
    std::stringstream ss(line);
    std::string col;
    while (std::getline(ss, col, ',')) cols.push_back(col);
    ASSERT_EQ(cols.size(), 13u) << line;
    const harness::ExpKey key{
        cols[0], core::parse_policy(cols[1]),
        static_cast<unsigned>(std::stoul(cols[2])), cols[3]};
    ASSERT_TRUE(rs.contains(key)) << key.to_string();
    EXPECT_EQ(cols[4], "full");
    EXPECT_EQ(std::stoull(cols[6]), rs.stats(key).committed);
    EXPECT_EQ(std::stoull(cols[7]), rs.stats(key).cycles);
    EXPECT_DOUBLE_EQ(std::stod(cols[8]), rs.ipc(key));  // %.17g: exact
    ++rows;
  }
  EXPECT_EQ(rows, rs.size());
}

TEST(ResultSet, JsonSinkEmitsEveryCellWithStats) {
  TempDir dir;
  const harness::ResultSet rs = run_small_grid();
  const std::string path = (dir.path / "out.json").string();
  rs.write_json(path);

  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string json = buf.str();
  // Structural sanity: balanced braces/brackets, schema marker, all keys.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
  EXPECT_NE(json.find("\"schema\": \"erel-resultset-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"workload\": \"li\""), std::string::npos);
  EXPECT_NE(json.find("\"workload\": \"go\""), std::string::npos);
  EXPECT_NE(json.find("\"policy\": \"extended\""), std::string::npos);
  EXPECT_NE(json.find("\"stalls.free_list_empty\""), std::string::npos);
  char committed[64];
  std::snprintf(committed, sizeof committed, "\"committed\": %llu",
                static_cast<unsigned long long>(
                    rs.entries()[0].stats.committed));
  EXPECT_NE(json.find(committed), std::string::npos);
}

TEST(ResultSet, ProbeMetricsFlowThroughSinksAndCache) {
  TempDir dir;
  const auto build = [&] {
    harness::Experiment exp;
    exp.base(tiny_config())
        .workloads({"li"})
        .policies({PolicyKind::Extended})
        .phys_regs({48})
        .probe("power",
               [] { return std::make_unique<power::RixnerProbe>(); });
    return exp;
  };
  const harness::ResultSet rs =
      build().run({.threads = 1, .cache_dir = dir.str()});
  ASSERT_EQ(rs.size(), 1u);
  const harness::ExpEntry& e = rs.entries()[0];
  ASSERT_TRUE(e.metric("power/energy_nj").has_value());
  EXPECT_GT(*e.metric("power/energy_nj"), 0.0);
  ASSERT_TRUE(e.metric("power/ed2").has_value());
  const double cycles = static_cast<double>(e.stats.cycles);
  EXPECT_NEAR(*e.metric("power/ed2"),
              *e.metric("power/energy_nj") * cycles * cycles,
              1e-9 * *e.metric("power/ed2"));
  EXPECT_EQ(rs.metric_names(),
            (std::vector<std::string>{"power/energy_nj", "power/ed2"}));

  // The CSV sink gains the open metric columns, in metric_names() order.
  const std::string csv_path = (dir.path / "metrics.csv").string();
  rs.write_csv(csv_path);
  std::ifstream csv(csv_path);
  std::string header, row;
  ASSERT_TRUE(std::getline(csv, header));
  EXPECT_NE(header.find(",power/energy_nj,power/ed2"), std::string::npos);
  ASSERT_TRUE(std::getline(csv, row));
  char rendered[64];
  std::snprintf(rendered, sizeof rendered, "%.17g",
                *e.metric("power/energy_nj"));
  EXPECT_NE(row.find(rendered), std::string::npos);

  // The JSON sink carries a per-cell metrics object.
  const std::string json_path = (dir.path / "metrics.json").string();
  rs.write_json(json_path);
  std::stringstream buf;
  buf << std::ifstream(json_path).rdbuf();
  EXPECT_NE(buf.str().find("\"metrics\""), std::string::npos);
  EXPECT_NE(buf.str().find("\"power/energy_nj\": "), std::string::npos);

  // Warm rerun: the cache hit restores the metrics bit-exactly.
  const harness::ResultSet warm =
      build().run({.threads = 1, .cache_dir = dir.str()});
  EXPECT_EQ(warm.cache_hits(), 1u);
  EXPECT_EQ(warm.entries()[0].metrics, e.metrics);

  // A sweep without the probe must not be served the probed entry (the
  // probe name is part of the fingerprint).
  harness::Experiment bare;
  bare.base(tiny_config())
      .workloads({"li"})
      .policies({PolicyKind::Extended})
      .phys_regs({48});
  const harness::ResultSet rs2 =
      bare.run({.threads = 1, .cache_dir = dir.str()});
  EXPECT_EQ(rs2.cache_hits(), 0u);
  EXPECT_TRUE(rs2.entries()[0].metrics.empty());
}

TEST(ResultSet, DuplicateCellIsFatal) {
  harness::ResultSet rs;
  harness::ExpEntry e;
  e.key = {"li", PolicyKind::Conventional, 48, ""};
  rs.add(e);
  EXPECT_DEATH(rs.add(e), "duplicate");
}

TEST(ResultSet, MissingCellIsFatalWithCoordinates) {
  const harness::ResultSet rs;
  EXPECT_DEATH((void)rs.ipc({"li", PolicyKind::Conventional, 48, ""}),
               "li/conv/48");
}

// ---------------------------------------------------------------------------
// TextTable degenerate-series guards
// ---------------------------------------------------------------------------

TEST(TextTable, NonFiniteRendersAsNA) {
  EXPECT_EQ(TextTable::pct(std::numeric_limits<double>::infinity()), "n/a");
  EXPECT_EQ(TextTable::pct(std::numeric_limits<double>::quiet_NaN()), "n/a");
  EXPECT_EQ(TextTable::num(std::numeric_limits<double>::infinity()), "n/a");
  EXPECT_EQ(TextTable::pct(0.125), "12.5%");
}

TEST(TextTable, SpeedupGuardsZeroBaseline) {
  EXPECT_EQ(TextTable::speedup_pct(1.5, 0.0), "n/a");
  EXPECT_EQ(TextTable::speedup_pct(0.0, 1.5), "n/a");
  EXPECT_EQ(TextTable::speedup_pct(1.2, 1.0), "20.0%");
}

TEST(ResultSet, SpeedupVsZeroBaselineIsNaNNotInf) {
  // A ResultSet with a zero-IPC cell: hmean collapses to 0 and speedups
  // must come out NaN (rendered "n/a"), never inf.
  harness::ResultSet rs;
  harness::ExpEntry conv;
  conv.key = {"li", PolicyKind::Conventional, 48, ""};
  conv.stats.cycles = 100;
  conv.stats.committed = 0;  // IPC 0
  rs.add(conv);
  harness::ExpEntry ext;
  ext.key = {"li", PolicyKind::Extended, 48, ""};
  ext.stats.cycles = 100;
  ext.stats.committed = 50;
  rs.add(ext);
  const double s = rs.speedup_vs({"li"}, PolicyKind::Extended,
                                 PolicyKind::Conventional, 48);
  EXPECT_TRUE(std::isnan(s));
  EXPECT_EQ(TextTable::pct(s), "n/a");
  EXPECT_EQ(rs.hmean_ipc({"li"}, PolicyKind::Conventional, 48), 0.0);
}

}  // namespace
}  // namespace erel
