// LUs Table semantics (paper §3.1/§3.2): last-use recording, C-bit commit
// updates (including on checkpoint copies), architectural reset.
#include <gtest/gtest.h>

#include "core/lus_table.hpp"

namespace erel::core {
namespace {

TEST(LUsTable, InitialStateIsArchitecturalCommitted) {
  LUsTable t;
  for (unsigned r = 0; r < isa::kNumLogicalRegs; ++r) {
    EXPECT_EQ(t.lookup(r).kind, UseKind::Arch);
    EXPECT_TRUE(t.lookup(r).committed);
    EXPECT_EQ(t.lookup(r).seq, kNoSeq);
  }
}

TEST(LUsTable, RecordUseOverwritesInProgramOrder) {
  LUsTable t;
  t.record_use(4, 100, UseKind::Src1);
  t.record_use(4, 101, UseKind::Src2);
  t.record_use(4, 102, UseKind::Dst);
  const LUsEntry& e = t.lookup(4);
  EXPECT_EQ(e.seq, 102u);
  EXPECT_EQ(e.kind, UseKind::Dst);
  EXPECT_FALSE(e.committed);
}

TEST(LUsTable, CommitSetsCOnMatchingEntriesOnly) {
  LUsTable t;
  t.record_use(1, 100, UseKind::Src1);
  t.record_use(2, 100, UseKind::Src2);  // same instruction, two registers
  t.record_use(3, 101, UseKind::Dst);
  t.on_commit(100);
  EXPECT_TRUE(t.lookup(1).committed);
  EXPECT_TRUE(t.lookup(2).committed);
  EXPECT_FALSE(t.lookup(3).committed);
}

TEST(LUsTable, CommitUpdateReachesCheckpointCopies) {
  LUsTable t;
  t.record_use(5, 200, UseKind::Src1);
  LUsTable::Snapshot checkpoint = t.snapshot();
  t.record_use(5, 201, UseKind::Src1);  // younger use in the working copy
  // Instruction 200 commits: both copies must see C=1 where they still
  // reference 200 (paper: "extended to all LUs Table copies").
  t.on_commit(200);
  LUsTable::update_commit_in(checkpoint, 200);
  EXPECT_TRUE(checkpoint[5].committed);
  EXPECT_FALSE(t.lookup(5).committed);  // working copy points to 201
}

TEST(LUsTable, RestoreBringsBackOlderLastUses) {
  LUsTable t;
  t.record_use(7, 300, UseKind::Dst);
  const LUsTable::Snapshot snap = t.snapshot();
  t.record_use(7, 350, UseKind::Src2);  // wrong-path use
  t.restore(snap);
  EXPECT_EQ(t.lookup(7).seq, 300u);
  EXPECT_EQ(t.lookup(7).kind, UseKind::Dst);
}

TEST(LUsTable, ResetArchitecturalClearsEverything) {
  LUsTable t;
  t.record_use(0, 1, UseKind::Src1);
  t.record_use(31, 2, UseKind::Dst);
  t.reset_architectural();
  EXPECT_EQ(t.lookup(0).kind, UseKind::Arch);
  EXPECT_TRUE(t.lookup(31).committed);
}

TEST(LUsTable, RelBitMapping) {
  EXPECT_EQ(rel_bit_for(UseKind::Src1), kRel1);
  EXPECT_EQ(rel_bit_for(UseKind::Src2), kRel2);
  EXPECT_EQ(rel_bit_for(UseKind::Dst), kRelD);
  EXPECT_EQ(rel_bit_for(UseKind::Arch), 0);
}

}  // namespace
}  // namespace erel::core
