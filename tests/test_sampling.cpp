// Checkpointed interval sampling: the sampled IPC estimate tracks the full
// detailed simulation, instruction counts stay exact, error bars populate,
// and the harness runs sampled specs transparently.
#include <gtest/gtest.h>

#include "harness/harness.hpp"
#include "sim/sampling.hpp"
#include "sim/simulator.hpp"
#include "workloads/workloads.hpp"

namespace erel {
namespace {

sim::SimConfig test_config() {
  sim::SimConfig config;
  config.policy = core::PolicyKind::Extended;
  config.phys_int = config.phys_fp = 64;
  config.check_oracle = false;
  return config;
}

sim::SamplingConfig test_sampling() {
  sim::SamplingConfig s;
  s.period = 20'000;
  s.warmup = 2'000;
  s.detail = 5'000;
  return s;
}

TEST(Sampling, SampledIpcMatchesFullDetailedRun) {
  const arch::Program program = workloads::assemble_workload("li");
  const sim::SimConfig config = test_config();
  const sim::SimStats full = sim::Simulator(config).run(program);
  ASSERT_TRUE(full.halted);

  const sim::SampledStats sampled =
      sim::SampledSimulator(config, test_sampling()).run(program);
  ASSERT_GT(sampled.samples.size(), 1u);
  // The functional master executes every instruction (the detailed commit
  // count excludes the non-retiring HALT, the functional count includes it).
  EXPECT_EQ(sampled.total_instructions, full.committed + 1);
  EXPECT_TRUE(sampled.estimate.halted);
  EXPECT_NEAR(sampled.estimate.ipc(), full.ipc(), 0.10 * full.ipc());
  EXPECT_LT(sampled.detail_fraction(), 0.5);
}

TEST(Sampling, ErrorBarsArePopulated) {
  const arch::Program program = workloads::assemble_workload("li");
  const sim::SampledStats sampled =
      sim::SampledSimulator(test_config(), test_sampling()).run(program);
  ASSERT_GT(sampled.samples.size(), 1u);
  EXPECT_GT(sampled.ipc_mean, 0.0);
  EXPECT_GT(sampled.cpi_mean, 0.0);
  EXPECT_GE(sampled.ipc_stddev, 0.0);
  EXPECT_GT(sampled.ipc_stderr, 0.0);
  EXPECT_DOUBLE_EQ(sampled.ipc_ci95, 1.96 * sampled.ipc_stderr);
  EXPECT_EQ(sampled.measured_instructions,
            [&] {
              std::uint64_t sum = 0;
              for (const auto& s : sampled.samples) sum += s.instructions;
              return sum;
            }());
  const std::string report = sim::format_sampled_stats(sampled);
  EXPECT_NE(report.find("IPC estimate"), std::string::npos);
}

TEST(Sampling, MaxSamplesCapStillCountsEveryInstruction) {
  const arch::Program program = workloads::assemble_workload("li");
  sim::SamplingConfig s = test_sampling();
  s.max_samples = 2;
  const sim::SampledStats capped =
      sim::SampledSimulator(test_config(), s).run(program);
  EXPECT_LE(capped.samples.size(), 2u);

  const sim::SampledStats uncapped =
      sim::SampledSimulator(test_config(), test_sampling()).run(program);
  EXPECT_EQ(capped.total_instructions, uncapped.total_instructions);
}

TEST(Sampling, MeasuredWindowCountersAccumulate) {
  const arch::Program program = workloads::assemble_workload("li");
  const sim::SampledStats sampled =
      sim::SampledSimulator(test_config(), test_sampling()).run(program);
  EXPECT_EQ(sampled.measured.committed, sampled.detailed_instructions);
  EXPECT_GT(sampled.measured.cycles, 0u);
  EXPECT_GT(sampled.measured.branches.cond_branches, 0u);
  EXPECT_GT(sampled.measured.l1d.accesses, 0u);
}

TEST(Sampling, HarnessRunsSampledSpecs) {
  harness::RunSpec full_spec{
      "li", harness::experiment_config(core::PolicyKind::Extended, 64),
      "full", std::nullopt};
  harness::RunSpec sampled_spec = full_spec;
  sampled_spec.tag = "sampled";
  sampled_spec.sampling = test_sampling();
  const auto results = harness::run_all({full_spec, sampled_spec}, 2);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_FALSE(results[0].sampled.has_value());
  ASSERT_TRUE(results[1].sampled.has_value());
  EXPECT_EQ(results[1].stats.committed,
            results[1].sampled->estimate.committed);
  EXPECT_NEAR(results[1].stats.ipc(), results[0].stats.ipc(),
              0.10 * results[0].stats.ipc());
}

TEST(Sampling, OracleCheckedSamplingWorks) {
  // check_oracle on: every committed instruction in every detailed window is
  // co-validated against the restored functional state.
  const arch::Program program = workloads::assemble_workload("li");
  sim::SimConfig config = test_config();
  config.check_oracle = true;
  const sim::SampledStats sampled =
      sim::SampledSimulator(config, test_sampling()).run(program);
  EXPECT_GT(sampled.samples.size(), 0u);
  EXPECT_TRUE(sampled.estimate.halted);
}

TEST(SamplingDeathTest, PeriodMustExceedWindow) {
  sim::SamplingConfig s;
  s.period = 1000;
  s.warmup = 800;
  s.detail = 300;
  EXPECT_DEATH(sim::SampledSimulator(test_config(), s), "period");
}

}  // namespace
}  // namespace erel
