// Checkpointed interval sampling: the sampled IPC estimate tracks the full
// detailed simulation, instruction counts stay exact, error bars populate,
// and the harness runs sampled specs transparently.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "harness/harness.hpp"
#include "sim/sampling.hpp"
#include "sim/simulator.hpp"
#include "workloads/workloads.hpp"

namespace erel {
namespace {

sim::SimConfig test_config() {
  sim::SimConfig config;
  config.policy = core::PolicyKind::Extended;
  config.phys_int = config.phys_fp = 64;
  config.check_oracle = false;
  return config;
}

sim::SamplingConfig test_sampling() {
  sim::SamplingConfig s;
  s.period = 20'000;
  s.warmup = 2'000;
  s.detail = 5'000;
  return s;
}

TEST(Sampling, SampledIpcMatchesFullDetailedRun) {
  const arch::Program program = workloads::assemble_workload("li");
  const sim::SimConfig config = test_config();
  const sim::SimStats full = sim::Simulator(config).run(program);
  ASSERT_TRUE(full.halted);

  const sim::SampledStats sampled =
      sim::SampledSimulator(config, test_sampling()).run(program);
  ASSERT_GT(sampled.samples.size(), 1u);
  // The functional master executes every instruction (the detailed commit
  // count excludes the non-retiring HALT, the functional count includes it).
  EXPECT_EQ(sampled.total_instructions, full.committed + 1);
  EXPECT_TRUE(sampled.estimate.halted);
  EXPECT_NEAR(sampled.estimate.ipc(), full.ipc(), 0.10 * full.ipc());
  EXPECT_LT(sampled.detail_fraction(), 0.5);
}

TEST(Sampling, ErrorBarsArePopulated) {
  const arch::Program program = workloads::assemble_workload("li");
  const sim::SampledStats sampled =
      sim::SampledSimulator(test_config(), test_sampling()).run(program);
  ASSERT_GT(sampled.samples.size(), 1u);
  EXPECT_GT(sampled.ipc_mean, 0.0);
  EXPECT_GT(sampled.cpi_mean, 0.0);
  EXPECT_GE(sampled.ipc_stddev, 0.0);
  EXPECT_GT(sampled.ipc_stderr, 0.0);
  EXPECT_DOUBLE_EQ(sampled.ipc_ci95, 1.96 * sampled.ipc_stderr);
  EXPECT_EQ(sampled.measured_instructions,
            [&] {
              std::uint64_t sum = 0;
              for (const auto& s : sampled.samples) sum += s.instructions;
              return sum;
            }());
  const std::string report = sim::format_sampled_stats(sampled);
  EXPECT_NE(report.find("IPC estimate"), std::string::npos);
}

TEST(Sampling, MaxSamplesCapStillCountsEveryInstruction) {
  const arch::Program program = workloads::assemble_workload("li");
  sim::SamplingConfig s = test_sampling();
  s.max_samples = 2;
  const sim::SampledStats capped =
      sim::SampledSimulator(test_config(), s).run(program);
  EXPECT_LE(capped.samples.size(), 2u);

  const sim::SampledStats uncapped =
      sim::SampledSimulator(test_config(), test_sampling()).run(program);
  EXPECT_EQ(capped.total_instructions, uncapped.total_instructions);
}

TEST(Sampling, MeasuredWindowCountersAccumulate) {
  const arch::Program program = workloads::assemble_workload("li");
  const sim::SampledStats sampled =
      sim::SampledSimulator(test_config(), test_sampling()).run(program);
  EXPECT_EQ(sampled.measured.committed, sampled.detailed_instructions);
  EXPECT_GT(sampled.measured.cycles, 0u);
  EXPECT_GT(sampled.measured.branches.cond_branches, 0u);
  EXPECT_GT(sampled.measured.l1d.accesses, 0u);
  // Policy counters and occupancy now merge too (registry-based merging):
  // `measured` is exactly the SimStats view of the merged registry.
  EXPECT_GT(sampled.measured.policy_stats[0].early_commit_releases, 0u);
  EXPECT_GT(sampled.measured.occupancy[0].avg_allocated(), 0.0);
  const sim::SimStats view = sim::materialize_sim_stats(sampled.registry);
  EXPECT_EQ(view.cycles, sampled.measured.cycles);
  EXPECT_EQ(view.committed, sampled.measured.committed);
  EXPECT_EQ(view.stalls.free_list_empty,
            sampled.measured.stalls.free_list_empty);
  EXPECT_EQ(view.policy_stats[0].early_commit_releases,
            sampled.measured.policy_stats[0].early_commit_releases);
}

TEST(Sampling, ProbesAttachPerWindowAndMergeThroughTheRegistry) {
  // A probe that counts commits into its own registry entry: each window
  // runs a fresh instance, the merged registry sums them, and the total
  // must equal the merged measured commit count.
  struct CommitCounter final : sim::Probe {
    sim::StatRegistry::Counter* commits = nullptr;
    void on_run_begin(const sim::SimConfig&,
                      sim::StatRegistry& reg) override {
      commits = &reg.counter("test/commits");
    }
    void on_commit(const sim::CommitEvent&) override { ++*commits; }
  };
  const std::vector<sim::ProbeSpec> probes = {
      {"commit-counter", [] { return std::make_unique<CommitCounter>(); }}};

  const arch::Program program = workloads::assemble_workload("li");
  sim::SamplingConfig s = test_sampling();
  s.threads = 1;
  const sim::SampledStats serial =
      sim::SampledSimulator(test_config(), s).run(program, probes);
  ASSERT_GT(serial.samples.size(), 1u);
  EXPECT_EQ(serial.registry.counter_value("test/commits"),
            serial.measured.committed);

  // Sharded probes stay per-window (race-free) and merge bit-identically.
  s.threads = 4;
  const sim::SampledStats sharded =
      sim::SampledSimulator(test_config(), s).run(program, probes);
  EXPECT_EQ(serial.registry, sharded.registry);
}

TEST(Sampling, HarnessRunsSampledSpecs) {
  harness::RunSpec full_spec{
      "li", harness::experiment_config(core::PolicyKind::Extended, 64),
      "full", std::nullopt, {}};
  harness::RunSpec sampled_spec = full_spec;
  sampled_spec.tag = "sampled";
  sampled_spec.sampling = test_sampling();
  const auto results = harness::run_all({full_spec, sampled_spec}, 2);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_FALSE(results[0].sampled.has_value());
  ASSERT_TRUE(results[1].sampled.has_value());
  EXPECT_EQ(results[1].stats.committed,
            results[1].sampled->estimate.committed);
  EXPECT_NEAR(results[1].stats.ipc(), results[0].stats.ipc(),
              0.10 * results[0].stats.ipc());
}

TEST(Sampling, OracleCheckedSamplingWorks) {
  // check_oracle on: every committed instruction in every detailed window is
  // co-validated against the restored functional state.
  const arch::Program program = workloads::assemble_workload("li");
  sim::SimConfig config = test_config();
  config.check_oracle = true;
  const sim::SampledStats sampled =
      sim::SampledSimulator(config, test_sampling()).run(program);
  EXPECT_GT(sampled.samples.size(), 0u);
  EXPECT_TRUE(sampled.estimate.halted);
}

void expect_stats_identical(const sim::SampledStats& a,
                            const sim::SampledStats& b) {
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    EXPECT_EQ(a.samples[i], b.samples[i]) << "sample " << i;
  }
  EXPECT_EQ(a.total_instructions, b.total_instructions);
  EXPECT_EQ(a.measured_instructions, b.measured_instructions);
  EXPECT_EQ(a.detailed_instructions, b.detailed_instructions);
  EXPECT_EQ(a.estimate.cycles, b.estimate.cycles);
  // Bit-for-bit, not approximately: the merge is deterministic.
  EXPECT_EQ(a.cpi_mean, b.cpi_mean);
  EXPECT_EQ(a.ipc_ci95, b.ipc_ci95);
  // Every registry metric — counters, occupancy integral accumulators,
  // distributions, channels — must merge bit-identically, not just IPC.
  EXPECT_EQ(a.registry, b.registry);
}

TEST(SamplingPlacement, SameSeedReproducesIdenticalSamples) {
  const arch::Program program = workloads::assemble_workload("li");
  for (const auto placement :
       {sim::Placement::kRandom, sim::Placement::kStratified}) {
    sim::SamplingConfig s = test_sampling();
    s.placement = placement;
    s.seed = 1234;
    const sim::SampledStats a =
        sim::SampledSimulator(test_config(), s).run(program);
    const sim::SampledStats b =
        sim::SampledSimulator(test_config(), s).run(program);
    ASSERT_GT(a.samples.size(), 1u)
        << sim::placement_name(placement);
    expect_stats_identical(a, b);
  }
}

TEST(SamplingPlacement, StratifiedStaysInsideItsInterval) {
  const arch::Program program = workloads::assemble_workload("li");
  sim::SamplingConfig s = test_sampling();
  s.placement = sim::Placement::kStratified;
  s.seed = 7;
  const sim::SampledStats stats =
      sim::SampledSimulator(test_config(), s).run(program);
  ASSERT_GT(stats.samples.size(), 1u);
  const std::uint64_t window = s.warmup + s.detail;
  std::uint64_t interval = 0;
  for (const auto& sample : stats.samples) {
    // One unit per period, placed so the window cannot cross into the next
    // interval. Intervals with no sample (program ended) cannot occur here.
    EXPECT_GE(sample.start_instruction, interval * s.period);
    EXPECT_LE(sample.start_instruction, (interval + 1) * s.period - window);
    ++interval;
  }
}

TEST(SamplingPlacement, DifferentSeedsMoveTheUnits) {
  const arch::Program program = workloads::assemble_workload("li");
  sim::SamplingConfig s = test_sampling();
  s.placement = sim::Placement::kStratified;
  s.seed = 1;
  const sim::SampledStats a =
      sim::SampledSimulator(test_config(), s).run(program);
  s.seed = 2;
  const sim::SampledStats b =
      sim::SampledSimulator(test_config(), s).run(program);
  ASSERT_GT(a.samples.size(), 2u);
  ASSERT_EQ(a.samples.size(), b.samples.size());
  bool any_moved = false;
  for (std::size_t i = 0; i < a.samples.size(); ++i)
    any_moved |= a.samples[i].start_instruction !=
                 b.samples[i].start_instruction;
  EXPECT_TRUE(any_moved);
}

TEST(SamplingPlacement, ParseAndNameRoundTrip) {
  for (const auto placement :
       {sim::Placement::kPeriodic, sim::Placement::kRandom,
        sim::Placement::kStratified}) {
    EXPECT_EQ(sim::parse_placement(sim::placement_name(placement)),
              placement);
  }
}

TEST(SamplingSharded, MatchesSerialBitForBit) {
  const arch::Program program = workloads::assemble_workload("li");
  for (const auto placement :
       {sim::Placement::kPeriodic, sim::Placement::kStratified}) {
    sim::SamplingConfig s = test_sampling();
    s.placement = placement;
    s.seed = 99;
    s.threads = 1;
    const sim::SampledStats serial =
        sim::SampledSimulator(test_config(), s).run(program);
    s.threads = 4;
    const sim::SampledStats sharded =
        sim::SampledSimulator(test_config(), s).run(program);
    ASSERT_GT(serial.samples.size(), 1u);
    expect_stats_identical(serial, sharded);
  }
}

TEST(SamplingSharded, HarnessRunsShardedSpecs) {
  harness::RunSpec spec{
      "li", harness::experiment_config(core::PolicyKind::Extended, 64),
      "sharded", test_sampling(), {}};
  spec.sampling->placement = sim::Placement::kStratified;
  spec.sampling->threads = 2;
  const auto results = harness::run_all({spec}, 1);
  ASSERT_EQ(results.size(), 1u);
  ASSERT_TRUE(results[0].sampled.has_value());
  EXPECT_GT(results[0].sampled->samples.size(), 1u);
}

TEST(SamplingStopping, TargetCiStopsBeforeMeasuringEveryUnit) {
  const arch::Program program = workloads::assemble_workload("li");
  sim::SamplingConfig s;
  s.period = 10'000;  // small enough to plan well over one CI batch of units
  s.warmup = 1'000;
  s.detail = 2'000;
  s.placement = sim::Placement::kStratified;
  s.seed = 5;
  const sim::SampledStats all =
      sim::SampledSimulator(test_config(), s).run(program);
  ASSERT_GT(all.units_planned, 9u) << "workload too short for this test";

  s.target_ci = 1e6;  // any 2-sample batch satisfies this
  const sim::SampledStats stopped =
      sim::SampledSimulator(test_config(), s).run(program);
  EXPECT_LT(stopped.samples.size(), all.samples.size());
  EXPECT_LE(stopped.samples.size(), 8u);  // one CI batch
  // The planning pass still sweeps the whole program: counts stay exact.
  EXPECT_EQ(stopped.total_instructions, all.total_instructions);
  EXPECT_EQ(stopped.units_planned, all.units_planned);
}

TEST(SamplingStopping, UnreachableTargetMeasuresEveryPlannedUnit) {
  const arch::Program program = workloads::assemble_workload("li");
  sim::SamplingConfig s = test_sampling();
  s.placement = sim::Placement::kStratified;
  s.seed = 5;
  s.target_ci = 1e-15;  // never satisfied on a real workload
  const sim::SampledStats stats =
      sim::SampledSimulator(test_config(), s).run(program);
  EXPECT_EQ(stats.samples.size(), stats.units_planned);
  EXPECT_GT(stats.ipc_ci95, 1e-15);
}

TEST(SamplingStopping, MaxSamplesStaysAHardCap) {
  const arch::Program program = workloads::assemble_workload("li");
  sim::SamplingConfig s = test_sampling();
  s.target_ci = 1e-15;  // wants every unit...
  s.max_samples = 3;    // ...but the cap wins
  const sim::SampledStats stats =
      sim::SampledSimulator(test_config(), s).run(program);
  EXPECT_LE(stats.samples.size(), 3u);
  EXPECT_EQ(stats.units_planned, 3u);

  const sim::SampledStats uncapped =
      sim::SampledSimulator(test_config(), test_sampling()).run(program);
  EXPECT_EQ(stats.total_instructions, uncapped.total_instructions);
}

TEST(SamplingStopping, CiStoppingIsThreadCountInvariant) {
  const arch::Program program = workloads::assemble_workload("li");
  sim::SamplingConfig s = test_sampling();
  s.placement = sim::Placement::kStratified;
  s.seed = 11;
  s.target_ci = 0.05;
  s.threads = 1;
  const sim::SampledStats serial =
      sim::SampledSimulator(test_config(), s).run(program);
  s.threads = 3;
  const sim::SampledStats sharded =
      sim::SampledSimulator(test_config(), s).run(program);
  expect_stats_identical(serial, sharded);
}

TEST(Sampling, TinyCycleLimitCannotPoisonTheEstimate) {
  // Windows whose warm-up runs into max_cycles must never contribute
  // infinite per-sample IPC to the mean (degenerate windows are dropped).
  const arch::Program program = workloads::assemble_workload("li");
  sim::SimConfig config = test_config();
  config.max_cycles = 64;
  const sim::SampledStats stats =
      sim::SampledSimulator(config, test_sampling()).run(program);
  EXPECT_TRUE(std::isfinite(stats.estimate.ipc()));
  EXPECT_TRUE(std::isfinite(stats.ipc_mean));
  for (const auto& sample : stats.samples) {
    EXPECT_GT(sample.cycles, 0u);
    EXPECT_TRUE(std::isfinite(sample.ipc()));
  }
}

TEST(SamplingDeathTest, PeriodMustExceedWindow) {
  sim::SamplingConfig s;
  s.period = 1000;
  s.warmup = 800;
  s.detail = 300;
  EXPECT_DEATH(sim::SampledSimulator(test_config(), s), "period");
}

}  // namespace
}  // namespace erel
