// Decoded-engine equivalence suite: the functional fast path (decode-once
// DecodedProgram + page-pointer TLB) must be observationally identical to
// the byte-accurate legacy engine — bit-identical commit streams and
// registry metrics on every kernel, for full and sampled runs. These tests
// are the license for SimConfig::fast_path to default on and stay out of
// the result-cache fingerprint.
#include <gtest/gtest.h>

#include <cstdio>
#include <vector>

#include "arch/arch_state.hpp"
#include "arch/checkpoint.hpp"
#include "arch/decoded_program.hpp"
#include "asmkit/assembler.hpp"
#include "pipeline/core.hpp"
#include "sim/sampling.hpp"
#include "workloads/workloads.hpp"

namespace erel {
namespace {

/// Commit-stream recorder: the POD prefix of every CommitEvent, in order.
struct CommitRecorder final : sim::Probe {
  struct Rec {
    std::uint64_t seq, pc, dispatch, issue, complete, commit;
    std::uint32_t encoding;
    bool operator==(const Rec&) const = default;
  };
  std::vector<Rec> stream;

  void on_commit(const sim::CommitEvent& ev) override {
    stream.push_back({ev.seq, ev.pc, ev.dispatch_cycle, ev.issue_cycle,
                      ev.complete_cycle, ev.commit_cycle, ev.encoding});
  }
};

sim::SimConfig smoke_config(bool fast_path) {
  sim::SimConfig config;
  config.max_instructions = 20'000;
  config.fast_path = fast_path;
  return config;
}

TEST(FastPathEquivalence, FullRunsAreBitIdenticalOnAllKernels) {
  for (const std::string& name : workloads::workload_names()) {
    SCOPED_TRACE(name);
    const arch::Program program = workloads::assemble_workload(name);

    CommitRecorder fast_rec;
    pipeline::Core fast(smoke_config(/*fast_path=*/true), program);
    fast.attach_probe(&fast_rec);
    const sim::SimStats fast_stats = fast.run();

    CommitRecorder legacy_rec;
    pipeline::Core legacy(smoke_config(/*fast_path=*/false), program);
    legacy.attach_probe(&legacy_rec);
    const sim::SimStats legacy_stats = legacy.run();

    EXPECT_EQ(fast_stats.cycles, legacy_stats.cycles);
    EXPECT_EQ(fast_stats.committed, legacy_stats.committed);
    EXPECT_EQ(fast_rec.stream.size(), legacy_rec.stream.size());
    EXPECT_TRUE(fast_rec.stream == legacy_rec.stream);
    // Every registry metric — counters, occupancy integrals, cache stats —
    // must match bit-for-bit, not just the SimStats view.
    EXPECT_TRUE(fast.registry() == legacy.registry());
  }
}

TEST(FastPathEquivalence, SampledRunsAreBitIdenticalOnAllKernels) {
  sim::SamplingConfig sampling;
  sampling.period = 30'000;
  sampling.warmup = 1'000;
  sampling.detail = 4'000;
  sampling.max_samples = 6;
  sampling.placement = sim::Placement::kStratified;
  sampling.seed = 42;
  for (const std::string& name : workloads::workload_names()) {
    SCOPED_TRACE(name);
    const arch::Program program = workloads::assemble_workload(name);

    sim::SimConfig fast_cfg;
    fast_cfg.fast_path = true;
    const sim::SampledStats fast =
        sim::SampledSimulator(fast_cfg, sampling).run(program);

    sim::SimConfig legacy_cfg;
    legacy_cfg.fast_path = false;
    const sim::SampledStats legacy =
        sim::SampledSimulator(legacy_cfg, sampling).run(program);

    EXPECT_EQ(fast.total_instructions, legacy.total_instructions);
    EXPECT_EQ(fast.units_planned, legacy.units_planned);
    EXPECT_TRUE(fast.samples == legacy.samples);
    EXPECT_EQ(fast.estimate.cycles, legacy.estimate.cycles);
    EXPECT_EQ(fast.measured.committed, legacy.measured.committed);
    EXPECT_EQ(fast.measured.cycles, legacy.measured.cycles);
    EXPECT_TRUE(fast.registry == legacy.registry);
  }
}

TEST(FastPathEquivalence, DecodedRecordsMatchByteDecode) {
  for (const std::string& name : workloads::workload_names()) {
    const arch::Program program = workloads::assemble_workload(name);
    const arch::DecodedProgram decoded(program);
    ASSERT_EQ(decoded.size(), program.code.size());
    for (std::size_t i = 0; i < program.code.size(); ++i) {
      const std::uint64_t pc = program.code_base + 4 * i;
      ASSERT_TRUE(decoded.contains(pc));
      const arch::MicroOp& mop = decoded.at(pc);
      const isa::DecodedInst inst = isa::decode(program.code[i]);
      EXPECT_EQ(isa::encode(mop.inst), isa::encode(inst));
      EXPECT_EQ(mop.kind, arch::DecodedProgram::kind_of(inst));
      EXPECT_EQ(mop.has_dst, inst.has_dst());
      EXPECT_EQ(mop.mem_bytes, inst.mem_bytes());
    }
    EXPECT_FALSE(decoded.contains(program.code_base - 4));
    EXPECT_FALSE(decoded.contains(program.code_end()));
    EXPECT_FALSE(decoded.contains(program.code_base + 2));  // unaligned
  }
}

/// A program that overwrites the `addi r3, r0, 1` at label `patch` with
/// `addi r3, r0, 7` before (architecturally) executing it. The replacement
/// encoding is computed here and embedded in the data segment.
arch::Program self_modifying_program() {
  isa::DecodedInst repl;
  repl.op = isa::Opcode::ADDI;
  repl.rd = 3;
  repl.rs1 = 0;
  repl.imm = 7;
  const std::uint32_t word = isa::encode(repl);
  char src[512];
  std::snprintf(src, sizeof src, R"(
main:
  la   r2, patch
  la   r6, newword
  lw   r7, 0(r6)       ; the replacement word (addi r3, r0, 7)
  sw   r7, 0(r2)       ; patch the code image
patch:
  addi r3, r0, 1
  halt

.data
newword:
  .word %u
)",
                static_cast<unsigned>(word));
  return asmkit::assemble(src);
}

/// Self-modifying code: a store into the code image must flip the decoded
/// engine back to byte-accurate execution — both engines end in the same
/// architectural state, and the dirtied image is reported.
TEST(FastPathEquivalence, StoreIntoCodeImageFallsBackByteAccurately) {
  const arch::Program patched = self_modifying_program();
  const arch::DecodedProgram decoded(patched);
  arch::ArchState fast(patched, &decoded);
  arch::ArchState legacy(patched);
  fast.run(100);
  legacy.run(100);
  EXPECT_TRUE(fast.halted());
  EXPECT_TRUE(legacy.halted());
  EXPECT_TRUE(fast.code_dirtied());
  EXPECT_EQ(fast.int_reg(3), 7u) << "patched instruction must execute";
  for (unsigned r = 0; r < isa::kNumLogicalRegs; ++r) {
    EXPECT_EQ(fast.int_reg(r), legacy.int_reg(r)) << "r" << r;
  }
  EXPECT_EQ(fast.pc(), legacy.pc());
  EXPECT_EQ(fast.instructions_executed(), legacy.instructions_executed());
}

/// The same self-modifying program through the full pipeline: the committed
/// store detaches decoded fetch (Core::phase_commit), and whatever the
/// fetch-ahead timing yields, the fast and legacy engines must agree
/// bit-for-bit. The oracle is off: I-fetch is architecturally incoherent
/// with stores in this pipeline (by design, identically in both engines),
/// so the in-order oracle can legitimately disagree with a fetched-early
/// stale instruction.
TEST(FastPathEquivalence, PipelineStoreIntoCodeImageStaysEquivalent) {
  const arch::Program patched = self_modifying_program();
  sim::SimConfig config;
  config.max_instructions = 100;
  config.check_oracle = false;

  config.fast_path = true;
  CommitRecorder fast_rec;
  pipeline::Core fast(config, patched);
  fast.attach_probe(&fast_rec);
  const sim::SimStats fast_stats = fast.run();

  config.fast_path = false;
  CommitRecorder legacy_rec;
  pipeline::Core legacy(config, patched);
  legacy.attach_probe(&legacy_rec);
  const sim::SimStats legacy_stats = legacy.run();

  EXPECT_EQ(fast_stats.cycles, legacy_stats.cycles);
  EXPECT_EQ(fast_stats.committed, legacy_stats.committed);
  EXPECT_TRUE(fast_rec.stream == legacy_rec.stream);
  EXPECT_TRUE(fast.registry() == legacy.registry());
  EXPECT_EQ(fast.arch_reg(core::RC::Int, 3), legacy.arch_reg(core::RC::Int, 3));
}

/// Resuming from a checkpoint that carries self-modified code: the static
/// decode cache is stale against the restored image, so the core must
/// detect the mismatch and execute byte-accurately — the patched
/// instruction (r3 = 7) must commit, on both engines, oracle on.
TEST(FastPathEquivalence, CheckpointWithModifiedCodeResumesByteAccurately) {
  const arch::Program patched = self_modifying_program();
  arch::ArchState state(patched);  // byte-accurate master
  while (!state.halted()) {
    if (state.step().is_store) break;  // the patch landed
  }
  ASSERT_FALSE(state.halted());
  const arch::Checkpoint ckpt = arch::capture(state);

  for (const bool fast_path : {true, false}) {
    SCOPED_TRACE(fast_path ? "fast" : "legacy");
    sim::SimConfig config;
    config.max_instructions = 100;
    config.fast_path = fast_path;
    pipeline::Core core(config, patched, ckpt);
    (void)core.run();
    EXPECT_TRUE(core.halted());
    EXPECT_EQ(core.arch_reg(core::RC::Int, 3), 7u)
        << "stale decoded record executed instead of the patched word";
  }
}

/// I-side cache-access events: fetch emits one event per line charged, so
/// the event count must equal the l1i access counter, and D-side events
/// keep is_ifetch false.
TEST(FastPathEquivalence, FetchEmitsIsideCacheAccessEvents) {
  struct AccessCounter final : sim::Probe {
    std::uint64_t iside = 0, dside = 0;
    void on_cache_access(const sim::CacheAccessEvent& ev) override {
      if (ev.is_ifetch) ++iside;
      else ++dside;
    }
  };
  sim::SimConfig config = smoke_config(/*fast_path=*/true);
  const arch::Program program = workloads::assemble_workload("li");

  AccessCounter counter;
  pipeline::Core core(config, program);
  core.attach_probe(&counter);
  const sim::SimStats stats = core.run();
  EXPECT_GT(counter.iside, 0u);
  EXPECT_GT(counter.dside, 0u);
  EXPECT_EQ(counter.iside, stats.l1i.accesses);

  // Attaching the probe must not change results (golden pin guards the
  // zero-probe path; this guards the probed one).
  pipeline::Core plain(config, program);
  const sim::SimStats plain_stats = plain.run();
  EXPECT_EQ(stats.cycles, plain_stats.cycles);
  EXPECT_EQ(stats.committed, plain_stats.committed);
}

}  // namespace
}  // namespace erel
