// MapTable / IOMT: identity reset, snapshot/restore, stale bits.
#include <gtest/gtest.h>

#include "core/map_table.hpp"

namespace erel::core {
namespace {

TEST(MapTable, IdentityInitialization) {
  MapTable mt;
  for (unsigned r = 0; r < isa::kNumLogicalRegs; ++r) {
    EXPECT_EQ(mt.get(r).phys, r);
    EXPECT_FALSE(mt.get(r).stale);
  }
}

TEST(MapTable, SetInstallsFreshMapping) {
  MapTable mt;
  mt.set(5, 77);
  EXPECT_EQ(mt.get(5).phys, 77);
  EXPECT_FALSE(mt.get(5).stale);
}

TEST(MapTable, SetClearsStale) {
  MapTable mt;
  mt.mark_stale(5);
  EXPECT_TRUE(mt.get(5).stale);
  mt.set(5, 40);
  EXPECT_FALSE(mt.get(5).stale);
}

TEST(MapTable, SnapshotRestoreRoundTrip) {
  MapTable mt;
  mt.set(1, 50);
  mt.set(2, 51);
  mt.mark_stale(2);
  const MapTable::Snapshot snap = mt.snapshot();
  mt.set(1, 60);
  mt.set(2, 61);
  mt.set(3, 62);
  mt.restore(snap);
  EXPECT_EQ(mt.get(1).phys, 50);
  EXPECT_EQ(mt.get(2).phys, 51);
  EXPECT_TRUE(mt.get(2).stale);
  EXPECT_EQ(mt.get(3).phys, 3);
}

TEST(MapTable, SnapshotIsByValue) {
  MapTable mt;
  const MapTable::Snapshot snap = mt.snapshot();
  mt.set(0, 99);
  EXPECT_EQ(snap[0].phys, 0);  // unaffected by later mutation
}

}  // namespace
}  // namespace erel::core
