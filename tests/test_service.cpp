// The experiment daemon (src/service/): loopback sweeps bit-identical to
// local runs, warm-cache serving, in-flight dedupe across concurrent
// clients, live channel subscriptions, and graceful degradation when the
// daemon is unreachable or refuses a cell.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/fingerprint.hpp"
#include "harness/results.hpp"
#include "service/client.hpp"
#include "service/daemon.hpp"

namespace erel {
namespace {

namespace fs = std::filesystem;
using core::PolicyKind;

sim::SimConfig tiny_config() {
  sim::SimConfig config;
  config.check_oracle = false;
  config.max_instructions = 20'000;
  return config;
}

struct TempDir {
  fs::path path;
  TempDir() {
    path = fs::temp_directory_path() /
           ("erel-service-" +
            std::to_string(
                ::testing::UnitTest::GetInstance()->random_seed()) +
            "-" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  [[nodiscard]] std::string str() const { return path.string(); }
};

/// A daemon on an ephemeral loopback port, serving from a fresh temp cache
/// until the fixture dies.
struct DaemonFixture {
  TempDir cache;
  std::unique_ptr<service::ExperimentDaemon> daemon;
  std::thread loop;

  explicit DaemonFixture(service::ExperimentDaemon::Options opts = {}) {
    opts.cache_dir = cache.str() + "/daemon-cache";
    daemon = std::make_unique<service::ExperimentDaemon>(opts);
    EXPECT_TRUE(daemon->valid()) << daemon->error();
    loop = std::thread([this] { daemon->run(); });
  }
  ~DaemonFixture() {
    daemon->stop();
    loop.join();
  }

  [[nodiscard]] std::string endpoint() const {
    return "127.0.0.1:" + std::to_string(daemon->port());
  }
};

harness::Experiment small_sweep() {
  harness::Experiment exp;
  exp.base(tiny_config())
      .workloads({"li"})
      .policies({PolicyKind::Conventional, PolicyKind::Extended})
      .phys_regs({40, 48});
  return exp;
}

/// Canonical per-cell text under a fixed fingerprint: equal strings mean
/// bit-identical stats, sampled detail, and metrics.
std::string entry_text(const harness::ExpEntry& entry) {
  return harness::serialize_entry(entry, "comparefp0000000");
}

// ---------------------------------------------------------------------------

TEST(Service, DaemonServedSweepIsBitIdenticalToLocal) {
  DaemonFixture fixture;
  const harness::Experiment exp = small_sweep();

  const harness::ResultSet local = exp.run({.threads = 2});
  const harness::ResultSet remote =
      exp.run({.threads = 2, .server = fixture.endpoint()});

  ASSERT_EQ(remote.size(), local.size());
  for (const harness::ExpEntry& want : local.entries()) {
    const harness::ExpEntry& got = remote.at(want.key);
    EXPECT_EQ(entry_text(got), entry_text(want)) << want.key.to_string();
    EXPECT_FALSE(got.from_cache);  // cold daemon: freshly simulated
  }
  const service::DaemonStats stats = fixture.daemon->stats();
  EXPECT_EQ(stats.simulated, local.size());
  EXPECT_EQ(stats.errors, 0u);
}

TEST(Service, SecondSweepIsServedFromTheWarmDaemonCache) {
  DaemonFixture fixture;
  const harness::Experiment exp = small_sweep();

  const harness::ResultSet cold =
      exp.run({.threads = 2, .server = fixture.endpoint()});
  EXPECT_EQ(cold.cache_hits(), 0u);
  const harness::ResultSet warm =
      exp.run({.threads = 2, .server = fixture.endpoint()});

  EXPECT_EQ(warm.size(), cold.size());
  EXPECT_EQ(warm.cache_hits(), warm.size());  // "N hits, 0 simulated"
  EXPECT_EQ(warm.simulated(), 0u);
  for (const harness::ExpEntry& want : cold.entries())
    EXPECT_EQ(entry_text(warm.at(want.key)), entry_text(want));

  const service::DaemonStats stats = fixture.daemon->stats();
  EXPECT_EQ(stats.simulated, cold.size());  // nothing re-simulated
  EXPECT_EQ(stats.cache_hits, warm.size());
}

TEST(Service, ConcurrentClientsOnOverlappingCellsSimulateEachCellOnce) {
  DaemonFixture fixture;
  const harness::Experiment exp = small_sweep();
  const std::size_t cells = exp.materialize().size();

  // Two clients race the same sweep; every duplicated fingerprint must be
  // simulated exactly once (joined in flight or served from the cache the
  // first client just filled — both are one simulation).
  harness::ResultSet a, b;
  std::thread ta([&] {
    a = exp.run({.threads = 2, .server = fixture.endpoint()});
  });
  std::thread tb([&] {
    b = exp.run({.threads = 2, .server = fixture.endpoint()});
  });
  ta.join();
  tb.join();

  ASSERT_EQ(a.size(), cells);
  ASSERT_EQ(b.size(), cells);
  for (const harness::ExpEntry& want : a.entries())
    EXPECT_EQ(entry_text(b.at(want.key)), entry_text(want));

  const service::DaemonStats stats = fixture.daemon->stats();
  EXPECT_EQ(stats.requests, 2 * cells);
  EXPECT_EQ(stats.simulated, cells);
  EXPECT_EQ(stats.deduped + stats.cache_hits, cells);
  EXPECT_EQ(stats.errors, 0u);
}

TEST(Service, PipelinedDuplicateRequestsJoinTheInFlightCell) {
  DaemonFixture fixture;

  sim::SimConfig config = tiny_config();
  config.max_instructions = 150'000;  // long enough to overlap
  service::CellRequest request;
  request.key = harness::ExpKey{"li", config.policy, config.phys_int, ""};
  request.workload = "li";
  request.config = config;
  request.fingerprint_hex =
      harness::fingerprint_cell("li", config, std::nullopt).hex();

  service::RemoteClient first, second;
  ASSERT_TRUE(first.connect(fixture.endpoint())) << first.error();
  ASSERT_TRUE(second.connect(fixture.endpoint())) << second.error();
  request.id = 1;
  ASSERT_TRUE(first.send_cell(request));
  request.id = 2;
  ASSERT_TRUE(second.send_cell(request));

  const auto r1 = first.await(1);
  const auto r2 = second.await(2);
  ASSERT_TRUE(r1.has_value());
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(r1->entry_text, r2->entry_text);  // byte-identical entries

  const service::DaemonStats stats = fixture.daemon->stats();
  EXPECT_EQ(stats.simulated, 1u);
  EXPECT_EQ(stats.deduped + stats.cache_hits, 1u);
}

TEST(Service, SubscriberReceivesMidRunUpdatesBeforeTheFinalResult) {
  service::ExperimentDaemon::Options opts;
  opts.tick_ms = 1;
  opts.snapshot_interval_cycles = 200;
  DaemonFixture fixture(opts);

  sim::SimConfig config = tiny_config();
  config.max_instructions = 150'000;
  config.stat_stride = 250;  // the commit channel needs a stride
  service::CellRequest request;
  request.id = 5;
  request.key = harness::ExpKey{"li", config.policy, config.phys_int, ""};
  request.workload = "li";
  request.config = config;
  request.fingerprint_hex =
      harness::fingerprint_cell("li", config, std::nullopt).hex();
  request.stat_stride = config.stat_stride;

  service::RemoteClient client;
  ASSERT_TRUE(client.connect(fixture.endpoint())) << client.error();

  std::size_t mid_run_updates = 0;
  bool saw_final = false;
  std::vector<double> assembled;
  client.set_update_handler([&](const service::UpdateMsg& update) {
    EXPECT_EQ(update.channel, "channel/commit/committed");
    EXPECT_EQ(update.first, assembled.size());  // contiguous slices
    assembled.insert(assembled.end(), update.points.begin(),
                     update.points.end());
    if (update.final_update)
      saw_final = true;
    else
      ++mid_run_updates;
    EXPECT_FALSE(saw_final && !update.final_update) << "update after final";
  });

  // Subscribe before the cell exists: the daemon remembers it and attaches
  // it when the matching kRunCell arrives.
  ASSERT_TRUE(client.subscribe(request.fingerprint_hex,
                               "channel/commit/committed"));
  ASSERT_TRUE(client.send_cell(request));
  const auto result = client.await(5);
  ASSERT_TRUE(result.has_value());

  // Frames are ordered per connection, so by the time the result arrived
  // every update (including the final slice) was already delivered.
  EXPECT_GE(mid_run_updates, 2u) << "no live pushes while simulating";
  EXPECT_TRUE(saw_final);
  EXPECT_FALSE(assembled.empty());

  // The assembled series is the run's committed-per-stride channel: its sum
  // is the run's committed instruction count.
  const auto entry = harness::parse_entry(result->entry_text,
                                          request.fingerprint_hex,
                                          request.key);
  ASSERT_TRUE(entry.has_value());
  double committed = 0;
  for (const double p : assembled) committed += p;
  EXPECT_EQ(static_cast<std::uint64_t>(committed), entry->stats.committed);
}

TEST(Service, UnreachableServerFallsBackToLocalSimulation) {
  const harness::Experiment exp = small_sweep();
  // Nothing listens on port 1; the sweep must still complete locally.
  const harness::ResultSet rs =
      exp.run({.threads = 2, .server = "127.0.0.1:1"});
  ASSERT_EQ(rs.size(), 4u);
  EXPECT_EQ(rs.cache_hits(), 0u);
  const harness::ResultSet local = exp.run({.threads = 2});
  for (const harness::ExpEntry& want : local.entries())
    EXPECT_EQ(entry_text(rs.at(want.key)), entry_text(want));
}

TEST(Service, DaemonRefusesMismatchedFingerprintsAndUnknownProbes) {
  DaemonFixture fixture;
  service::RemoteClient client;
  ASSERT_TRUE(client.connect(fixture.endpoint())) << client.error();

  service::CellRequest request;
  request.id = 9;
  request.key = harness::ExpKey{"li", core::PolicyKind::Conventional,
                                tiny_config().phys_int, ""};
  request.workload = "li";
  request.config = tiny_config();
  request.fingerprint_hex = "00000000deadbeef";  // not this cell's hash
  ASSERT_TRUE(client.send_cell(request));
  std::string why;
  EXPECT_FALSE(client.await(9, &why).has_value());
  EXPECT_NE(why.find("fingerprint mismatch"), std::string::npos) << why;

  request.id = 10;
  request.fingerprint_hex =
      harness::fingerprint_cell("li", request.config, std::nullopt,
                                {"mystery"})
          .hex();
  request.probe_names = {"mystery"};
  ASSERT_TRUE(client.send_cell(request));
  EXPECT_FALSE(client.await(10, &why).has_value());
  EXPECT_NE(why.find("unknown probe"), std::string::npos) << why;

  const service::DaemonStats stats = fixture.daemon->stats();
  EXPECT_EQ(stats.errors, 2u);
  EXPECT_EQ(stats.simulated, 0u);
}

TEST(Service, StatsAndShutdownRoundTrip) {
  auto fixture = std::make_unique<DaemonFixture>();
  service::RemoteClient client;
  ASSERT_TRUE(client.connect(fixture->endpoint())) << client.error();
  const auto stats = client.stats();
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->requests, 0u);
  EXPECT_TRUE(client.shutdown_server());  // daemon closes cleanly
  fixture.reset();                        // run() already returned; joins
}

}  // namespace
}  // namespace erel
