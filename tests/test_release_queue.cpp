// Release Queue (paper §4.2): level push, conditional scheduling, LU-commit
// migration (RwC -> RwNS), out-of-order confirmation merging, misprediction
// clearing, and the population bound.
#include <gtest/gtest.h>

#include "core/release_queue.hpp"

namespace erel::core {
namespace {

TEST(ReleaseQueue, OldestConfirmReleasesRwns) {
  ReleaseQueue q;
  q.push_level(10);
  q.schedule_committed(40);
  q.schedule_committed(41);
  const auto result = q.confirm(10);
  EXPECT_EQ(result.release_now.size(), 2u);
  EXPECT_TRUE(result.to_rwc0.empty());
  EXPECT_EQ(q.num_levels(), 0u);
}

TEST(ReleaseQueue, OldestConfirmMovesRwcToRwc0) {
  ReleaseQueue q;
  q.push_level(10);
  q.schedule_inflight(/*lu=*/5, kRel1 | kRelD);
  const auto result = q.confirm(10);
  EXPECT_TRUE(result.release_now.empty());
  ASSERT_EQ(result.to_rwc0.size(), 1u);
  EXPECT_EQ(result.to_rwc0[0].first, 5u);
  EXPECT_EQ(result.to_rwc0[0].second, kRel1 | kRelD);
}

TEST(ReleaseQueue, MiddleConfirmMergesDownward) {
  ReleaseQueue q;
  q.push_level(10);
  q.schedule_committed(40);
  q.push_level(20);
  q.schedule_committed(41);
  q.schedule_inflight(7, kRel2);
  // Branch 20 (second-oldest) confirms: its content merges into level 10.
  const auto mid = q.confirm(20);
  EXPECT_TRUE(mid.release_now.empty());
  EXPECT_TRUE(mid.to_rwc0.empty());
  EXPECT_EQ(q.num_levels(), 1u);
  // Now the oldest confirms and everything drains.
  const auto oldest = q.confirm(10);
  EXPECT_EQ(oldest.release_now.size(), 2u);
  ASSERT_EQ(oldest.to_rwc0.size(), 1u);
  EXPECT_EQ(oldest.to_rwc0[0].second, kRel2);
}

TEST(ReleaseQueue, OutOfOrderConfirmationOfYoungest) {
  ReleaseQueue q;
  q.push_level(10);
  q.push_level(20);
  q.push_level(30);
  q.schedule_committed(50);  // lands in level 30 (TAIL)
  const auto r30 = q.confirm(30);  // youngest confirms first
  EXPECT_TRUE(r30.release_now.empty());
  EXPECT_EQ(q.num_levels(), 2u);
  q.confirm(20);
  const auto r10 = q.confirm(10);
  EXPECT_EQ(r10.release_now.size(), 1u);
  EXPECT_EQ(r10.release_now[0], 50);
}

TEST(ReleaseQueue, LuCommitConvertsBitsUsingPrid) {
  ReleaseQueue q;
  q.push_level(10);
  q.schedule_inflight(/*lu=*/5, kRel1);
  q.push_level(20);
  q.schedule_inflight(/*lu=*/5, kRel2);  // same LU in another level
  q.on_lu_commit(5, /*p1=*/60, /*p2=*/61, /*pd=*/62);
  // Both levels now hold decoded registers; confirm in order and collect.
  q.confirm(20);  // merges 61 into level 10
  const auto result = q.confirm(10);
  ASSERT_EQ(result.release_now.size(), 2u);
  EXPECT_TRUE((result.release_now[0] == 60 && result.release_now[1] == 61) ||
              (result.release_now[0] == 61 && result.release_now[1] == 60));
  EXPECT_TRUE(result.to_rwc0.empty());
}

TEST(ReleaseQueue, MispredictDropsLevelAndYounger) {
  ReleaseQueue q;
  q.push_level(10);
  q.schedule_committed(40);
  q.push_level(20);
  q.schedule_committed(41);
  q.push_level(30);
  q.schedule_committed(42);
  q.mispredict(20);
  EXPECT_EQ(q.num_levels(), 1u);
  EXPECT_TRUE(q.has_level(10));
  EXPECT_FALSE(q.has_level(20));
  EXPECT_FALSE(q.has_level(30));
  const auto result = q.confirm(10);
  ASSERT_EQ(result.release_now.size(), 1u);
  EXPECT_EQ(result.release_now[0], 40);
}

TEST(ReleaseQueue, PopulationCountsBothKinds) {
  ReleaseQueue q;
  q.push_level(10);
  q.schedule_committed(40);
  q.schedule_inflight(5, kRel1 | kRel2 | kRelD);
  EXPECT_EQ(q.total_scheduled(), 4u);
  q.clear();
  EXPECT_EQ(q.total_scheduled(), 0u);
  EXPECT_EQ(q.num_levels(), 0u);
}

TEST(ReleaseQueueDeath, ScheduleWithoutLevelAborts) {
  ReleaseQueue q;
  EXPECT_DEATH(q.schedule_committed(40), "no pending branch");
}

TEST(ReleaseQueueDeath, DuplicateSchedulingAborts) {
  ReleaseQueue q;
  q.push_level(10);
  q.schedule_inflight(5, kRel1);
  EXPECT_DEATH(q.schedule_inflight(5, kRel1), "duplicate");
}

TEST(ReleaseQueueDeath, OutOfOrderPushAborts) {
  ReleaseQueue q;
  q.push_level(20);
  EXPECT_DEATH(q.push_level(10), "decode order");
}

TEST(ReleaseQueueDeath, ConfirmUnknownAborts) {
  ReleaseQueue q;
  EXPECT_DEATH(q.confirm(99), "unknown");
}

}  // namespace
}  // namespace erel::core
