// End-to-end pipeline behaviour on small programs: throughput bounds,
// dependence latencies, branch recovery, structural stalls, memory timing.
#include <gtest/gtest.h>

#include <string>

#include "asmkit/assembler.hpp"
#include "common/bits.hpp"
#include "sim/simulator.hpp"

namespace erel {
namespace {

sim::SimConfig base_config() {
  sim::SimConfig config;
  config.policy = core::PolicyKind::Extended;
  config.phys_int = 160;
  config.phys_fp = 160;
  config.check_oracle = true;
  return config;
}

sim::SimStats run_src(const std::string& src,
                      sim::SimConfig config = base_config()) {
  return sim::Simulator(config).run(asmkit::assemble(src));
}

TEST(Pipeline, IndependentOpsApproachIssueWidth) {
  const auto stats = run_src(R"(
main:
  li r5, 2000
loop:
  addi r10, r10, 1
  addi r11, r11, 1
  addi r12, r12, 1
  addi r13, r13, 1
  addi r14, r14, 1
  addi r15, r15, 1
  addi r5, r5, -1
  bnez r5, loop
  halt
)");
  EXPECT_GT(stats.ipc(), 6.0);
  EXPECT_TRUE(stats.halted);
}

TEST(Pipeline, SerialChainBoundByUnitLatency) {
  const auto stats = run_src(R"(
main:
  li r5, 2000
loop:
  addi r10, r10, 1
  addi r10, r10, 1
  addi r10, r10, 1
  addi r10, r10, 1
  addi r10, r10, 1
  addi r10, r10, 1
  addi r5, r5, -1
  bnez r5, loop
  halt
)");
  // Six serial 1-cycle ops per iteration: ~8/6 IPC upper bound.
  EXPECT_GT(stats.ipc(), 1.1);
  EXPECT_LT(stats.ipc(), 1.45);
}

TEST(Pipeline, FpMulChainBoundByLatency) {
  const auto stats = run_src(R"(
main:
  li r5, 1000
  la r3, one
  fld f1, 0(r3)
loop:
  fmul f2, f2, f1
  addi r5, r5, -1
  bnez r5, loop
  halt
.data
one: .double 1.0
)");
  // The fmul chain (4 cycles) dominates: 3 instructions / 4 cycles.
  EXPECT_GT(stats.ipc(), 0.65);
  EXPECT_LT(stats.ipc(), 0.85);
}

TEST(Pipeline, PredictableBranchesCostLittle) {
  const auto stats = run_src(R"(
main:
  li r5, 5000
loop:
  addi r5, r5, -1
  bnez r5, loop
  halt
)");
  EXPECT_GT(stats.branches.cond_accuracy(), 0.98);
}

TEST(Pipeline, DataDependentBranchesMispredict) {
  // Branch on a pseudo-random bit: ~50% mispredict no matter the predictor.
  const auto stats = run_src(R"(
main:
  li r5, 4000
  li r6, 12345
  li r20, 1103515245
loop:
  mul  r6, r6, r20
  addi r6, r6, 4321
  slli r6, r6, 32
  srli r6, r6, 32
  srli r7, r6, 16
  andi r7, r7, 1
  beqz r7, skip
  addi r8, r8, 1
skip:
  addi r5, r5, -1
  bnez r5, loop
  halt
)");
  // An 18-bit gshare partially memorizes short LCG cycles, so accuracy is
  // not coin-flip level — but far below the >98% of predictable loops.
  EXPECT_LT(stats.branches.cond_accuracy(), 0.95);
  EXPECT_GT(stats.branches.cond_mispredicts, 300u);
  EXPECT_TRUE(stats.halted);  // recovery works under heavy misprediction
}

TEST(Pipeline, MispredictionRecoveryPreservesResults) {
  // Alternating data-dependent branches with state updates on both paths;
  // the oracle (enabled) validates every commit.
  const auto stats = run_src(R"(
main:
  li r5, 2000
  li r6, 99
  li r9, 0
loop:
  mul  r6, r6, r6
  addi r6, r6, 7
  slli r6, r6, 48
  srli r6, r6, 48
  andi r7, r6, 3
  beqz r7, path_a
  addi r9, r9, 2
  b    join
path_a:
  addi r9, r9, 5
join:
  addi r5, r5, -1
  bnez r5, loop
  halt
)");
  EXPECT_TRUE(stats.halted);
}

TEST(Pipeline, CallReturnUsesRas) {
  const auto stats = run_src(R"(
main:
  li r2, 0x200000
  li r5, 1500
loop:
  call leaf
  addi r5, r5, -1
  bnez r5, loop
  halt
leaf:
  addi r10, r10, 1
  ret
)");
  EXPECT_TRUE(stats.halted);
  // Returns predicted via the RAS: very few indirect mispredicts.
  EXPECT_GT(stats.branches.indirect_jumps, 1400u);
  EXPECT_LT(stats.branches.indirect_mispredicts,
            stats.branches.indirect_jumps / 10);
}

TEST(Pipeline, LoadUseLatencyVisible) {
  const auto with_loads = run_src(R"(
main:
  li r5, 2000
  la r3, buf
loop:
  ld   r10, 0(r3)
  addi r10, r10, 1
  sd   r10, 0(r3)
  addi r5, r5, -1
  bnez r5, loop
  halt
.data
buf: .space 8
)");
  EXPECT_TRUE(with_loads.halted);
  // The ld -> addi -> sd -> ld chain through memory serializes iterations
  // (store-to-load forwarding keeps it at ~2 cycles per turn, still far
  // below the 8-wide machine's independent-op throughput).
  EXPECT_LT(with_loads.ipc(), 3.0);
}

TEST(Pipeline, StoreLoadForwardingEndToEnd) {
  // The reload of a just-stored value must come from the LSQ and match.
  const auto stats = run_src(R"(
main:
  la  r3, buf
  li  r4, 1000
loop:
  sd  r4, 0(r3)
  ld  r6, 0(r3)
  add r7, r7, r6
  addi r4, r4, -1
  bnez r4, loop
  halt
.data
buf: .space 8
)");
  EXPECT_TRUE(stats.halted);  // oracle checks all forwarded values
}

TEST(Pipeline, TightRegisterFileCausesRenameStalls) {
  sim::SimConfig tight = base_config();
  tight.policy = core::PolicyKind::Conventional;
  tight.phys_int = 36;
  const auto stats = run_src(R"(
main:
  li r5, 500
loop:
  addi r10, r10, 1
  addi r11, r11, 1
  addi r12, r12, 1
  addi r13, r13, 1
  addi r14, r14, 1
  addi r15, r15, 1
  addi r16, r16, 1
  addi r17, r17, 1
  addi r5, r5, -1
  bnez r5, loop
  halt
)",
                             tight);
  EXPECT_GT(stats.stalls.free_list_empty, 100u);
  EXPECT_TRUE(stats.halted);
}

TEST(Pipeline, ColdCachesCostCycles) {
  // Stream over 256KB: misses in L1 (32KB), mostly hits in L2.
  const auto stats = run_src(R"(
main:
  la  r3, big
  li  r4, 32768
loop:
  ld  r6, 0(r3)
  add r7, r7, r6
  addi r3, r3, 8
  addi r4, r4, -1
  bnez r4, loop
  halt
.data
big: .space 262144
)");
  EXPECT_GT(stats.l1d.misses, 3000u);
  EXPECT_TRUE(stats.halted);
}

TEST(Pipeline, ArchRegReadback) {
  sim::Simulator simulator(base_config());
  auto core = simulator.make_core(asmkit::assemble(R"(
main:
  li   r7, 1234
  la   r3, val
  fld  f2, 0(r3)
  halt
.data
val: .double 6.25
)"));
  core->run();
  EXPECT_EQ(core->arch_reg(core::RC::Int, 7), 1234u);
  EXPECT_EQ(u2f(core->arch_reg(core::RC::Fp, 2)), 6.25);
  EXPECT_TRUE(core->conservation_holds());
}

TEST(Pipeline, MaxInstructionLimitStopsEarly) {
  sim::SimConfig config = base_config();
  config.max_instructions = 100;
  const auto stats = run_src(R"(
main:
loop:
  addi r3, r3, 1
  b loop
)",
                             config);
  EXPECT_FALSE(stats.halted);
  EXPECT_GE(stats.committed, 100u);
  EXPECT_LT(stats.committed, 140u);  // overshoot bounded by commit width
}

TEST(Pipeline, RosWrapsManyTimes) {
  // > 128 * 30 instructions: the ROS ring must wrap cleanly.
  const auto stats = run_src(R"(
main:
  li r5, 1000
loop:
  addi r10, r10, 1
  addi r11, r11, 1
  addi r12, r12, 1
  addi r5, r5, -1
  bnez r5, loop
  halt
)");
  EXPECT_GT(stats.committed, 5000u);
  EXPECT_TRUE(stats.halted);
}

TEST(Pipeline, DeepRecursionExercisesCheckpointPressure) {
  sim::SimConfig config = base_config();
  config.max_pending_branches = 4;  // tiny checkpoint stack
  const auto stats = run_src(R"(
main:
  li r2, 0x200000
  li r5, 600
loop:
  andi r7, r5, 7
  beqz r7, even
  addi r9, r9, 1
  b next
even:
  addi r9, r9, 3
next:
  addi r5, r5, -1
  bnez r5, loop
  halt
)",
                             config);
  EXPECT_TRUE(stats.halted);
  EXPECT_GT(stats.stalls.checkpoints_full, 0u);
}

}  // namespace
}  // namespace erel
