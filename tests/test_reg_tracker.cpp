// RegTracker: version lifecycle, occupancy attribution (Empty/Ready/Idle —
// the Figure 2/3 semantics) and the read-after-release safety check.
#include <gtest/gtest.h>

#include "core/reg_state.hpp"

namespace erel::core {
namespace {

TEST(RegTracker, OccupancySpansMatchFigure2) {
  RegTracker t(8);
  // Version in p3: allocated @10, written @15, definer commits @20, last
  // consumer commits @30, released @50 (the NV commit).
  t.on_alloc(3, /*logical=*/1, 10);
  t.on_write(3, 15);
  t.on_definer_commit(3, 20);
  t.on_consumer_commit(3, t.token(3), 30);
  t.on_release(3, 50, /*squashed=*/false);
  t.finalize(100);
  const Occupancy occ = t.occupancy(100);
  EXPECT_DOUBLE_EQ(occ.avg_empty * 100, 5.0);   // 10..15
  EXPECT_DOUBLE_EQ(occ.avg_ready * 100, 15.0);  // 15..30
  EXPECT_DOUBLE_EQ(occ.avg_idle * 100, 20.0);   // 30..50
}

TEST(RegTracker, NeverWrittenVersionIsAllEmpty) {
  RegTracker t(8);
  t.on_alloc(2, 0, 10);
  t.on_release(2, 40, /*squashed=*/true);
  t.finalize(100);
  EXPECT_DOUBLE_EQ(t.occupancy(100).avg_empty * 100, 30.0);
  EXPECT_DOUBLE_EQ(t.occupancy(100).avg_idle, 0.0);
}

TEST(RegTracker, SquashedWrittenVersionCountsReadyNotIdle) {
  RegTracker t(8);
  t.on_alloc(2, 0, 10);
  t.on_write(2, 20);
  t.on_release(2, 40, /*squashed=*/true);
  t.finalize(100);
  EXPECT_DOUBLE_EQ(t.occupancy(100).avg_empty * 100, 10.0);
  EXPECT_DOUBLE_EQ(t.occupancy(100).avg_ready * 100, 20.0);
  EXPECT_DOUBLE_EQ(t.occupancy(100).avg_idle, 0.0);
}

TEST(RegTracker, DefinerOnlyVersionIdlesFromDefinerCommit) {
  RegTracker t(8);
  t.on_alloc(4, 0, 0);
  t.on_write(4, 5);
  t.on_definer_commit(4, 8);
  t.on_release(4, 28, false);  // no consumers: idle from 8 to 28
  t.finalize(50);
  EXPECT_DOUBLE_EQ(t.occupancy(50).avg_idle * 50, 20.0);
}

TEST(RegTracker, FinalizeAttributesLiveVersions) {
  RegTracker t(8);
  t.on_alloc(5, 0, 10);
  t.on_write(5, 12);
  t.on_definer_commit(5, 14);
  t.finalize(44);
  // Idle from 14 to 44.
  EXPECT_DOUBLE_EQ(t.occupancy(44).avg_idle * 44, 30.0);
}

TEST(RegTracker, TokensChangePerVersion) {
  RegTracker t(8);
  t.on_alloc(6, 0, 0);
  const std::uint32_t tok1 = t.token(6);
  t.on_release(6, 5, false);
  t.on_alloc(6, 1, 10);
  EXPECT_NE(t.token(6), tok1);
  EXPECT_EQ(t.logical_of(6), 1);
}

TEST(RegTracker, ReuseEndsOldVersionWithoutFreeing) {
  RegTracker t(8);
  t.on_alloc(7, 2, 0);
  t.on_write(7, 3);
  t.on_definer_commit(7, 5);
  const std::uint32_t tok_old = t.token(7);
  const unsigned count = t.allocated_count();
  t.on_reuse(7, 2, 20);
  EXPECT_EQ(t.allocated_count(), count);
  EXPECT_TRUE(t.is_allocated(7));
  EXPECT_NE(t.token(7), tok_old);
  t.finalize(30);
  // Old version idle 5..20; new version empty 20..30.
  EXPECT_DOUBLE_EQ(t.occupancy(30).avg_idle * 30, 15.0);
}

TEST(RegTracker, ArchitecturalInitHoldsAllLogicalRegs) {
  RegTracker t(48);
  t.init_architectural(32);
  EXPECT_EQ(t.allocated_count(), 32u);
  EXPECT_TRUE(t.is_allocated(0));
  EXPECT_FALSE(t.is_allocated(32));
}

TEST(RegTrackerDeath, ReadOfReleasedVersionAborts) {
  RegTracker t(8);
  t.on_alloc(3, 0, 0);
  const std::uint32_t tok = t.token(3);
  t.on_write(3, 1);
  t.on_release(3, 5, false);
  t.on_alloc(3, 1, 6);  // recycled
  EXPECT_DEATH(t.on_consumer_commit(3, tok, 10), "released register");
}

TEST(RegTrackerDeath, DoubleAllocAborts) {
  RegTracker t(8);
  t.on_alloc(3, 0, 0);
  EXPECT_DEATH(t.on_alloc(3, 0, 1), "live register");
}

TEST(RegTrackerDeath, ReleaseOfFreeAborts) {
  RegTracker t(8);
  EXPECT_DEATH(t.on_release(3, 0, false), "free register");
}

TEST(RegFileState, AllocWriteReleaseCycle) {
  RegFileState rf(RC::Int, 40);
  const PhysReg p = rf.alloc(5, 10);
  EXPECT_FALSE(rf.ready[p]);
  rf.write_value(p, 1234, 12);
  EXPECT_TRUE(rf.ready[p]);
  EXPECT_EQ(rf.value[p], 1234u);
  rf.map.set(5, p);
  rf.release(p, 20, false);
  EXPECT_TRUE(rf.free_list.is_free(p));
}

TEST(RegFileState, ReleaseOfArchitecturalVersionSetsIomtStale) {
  RegFileState rf(RC::Int, 40);
  const PhysReg p = rf.alloc(7, 0);
  rf.write_value(p, 1, 1);
  rf.tracker.on_definer_commit(p, 2);
  rf.iomt.set(7, p);  // version becomes architectural
  rf.release(p, 10, false);  // early release before the NV commits
  EXPECT_TRUE(rf.iomt.get(7).stale);
}

TEST(RegFileState, ReleaseOfNonArchitecturalVersionLeavesIomtAlone) {
  RegFileState rf(RC::Int, 40);
  const PhysReg p = rf.alloc(7, 0);
  rf.write_value(p, 1, 1);
  rf.release(p, 10, true);
  EXPECT_FALSE(rf.iomt.get(7).stale);
}

}  // namespace
}  // namespace erel::core
