// LSQ: conservative disambiguation, store->load forwarding (full cover,
// partial overlap, sub-word extraction), commit order, squash.
#include <gtest/gtest.h>

#include "pipeline/lsq.hpp"

namespace erel::pipeline {
namespace {

TEST(Lsq, LoadWithNoOlderStoresGoesToMemory) {
  Lsq lsq(8);
  lsq.push(1, /*is_store=*/false, 8);
  lsq.set_address(1, 0x1000, false);
  EXPECT_EQ(lsq.query_load(1, nullptr), LoadStatus::Memory);
}

TEST(Lsq, LoadWaitsForUnknownOlderStoreAddress) {
  Lsq lsq(8);
  lsq.push(1, true, 8);
  lsq.push(2, false, 8);
  lsq.set_address(2, 0x2000, false);
  // Store address unknown: the paper's conservative rule blocks the load.
  EXPECT_EQ(lsq.query_load(2, nullptr), LoadStatus::Wait);
  lsq.set_address(1, 0x1000, false);  // disjoint
  EXPECT_EQ(lsq.query_load(2, nullptr), LoadStatus::Memory);
}

TEST(Lsq, FullCoverForwardsWhenDataReady) {
  Lsq lsq(8);
  lsq.push(1, true, 8);
  lsq.push(2, false, 8);
  lsq.set_address(1, 0x1000, false);
  lsq.set_address(2, 0x1000, false);
  EXPECT_EQ(lsq.query_load(2, nullptr), LoadStatus::Wait);  // data not ready
  lsq.set_store_data(1, 0xdeadbeefcafef00dull);
  std::uint64_t value = 0;
  EXPECT_EQ(lsq.query_load(2, &value), LoadStatus::Forward);
  EXPECT_EQ(value, 0xdeadbeefcafef00dull);
}

TEST(Lsq, SubWordForwardExtractsBytes) {
  Lsq lsq(8);
  lsq.push(1, true, 8);
  lsq.set_address(1, 0x1000, false);
  lsq.set_store_data(1, 0x8877665544332211ull);
  // Byte load from the middle of the stored dword.
  lsq.push(2, false, 1);
  lsq.set_address(2, 0x1003, false);
  std::uint64_t value = 0;
  EXPECT_EQ(lsq.query_load(2, &value), LoadStatus::Forward);
  EXPECT_EQ(value, 0x44u);
  // Word load from the upper half.
  lsq.push(3, false, 4);
  lsq.set_address(3, 0x1004, false);
  EXPECT_EQ(lsq.query_load(3, &value), LoadStatus::Forward);
  EXPECT_EQ(value, 0x88776655u);
}

TEST(Lsq, PartialOverlapWaits) {
  Lsq lsq(8);
  lsq.push(1, true, 1);           // byte store
  lsq.set_address(1, 0x1002, false);
  lsq.set_store_data(1, 0xAB);
  lsq.push(2, false, 8);          // dword load covering the byte
  lsq.set_address(2, 0x1000, false);
  EXPECT_EQ(lsq.query_load(2, nullptr), LoadStatus::Wait);
  // Once the store commits (leaves the queue) the load may read memory.
  lsq.pop_commit(1);
  EXPECT_EQ(lsq.query_load(2, nullptr), LoadStatus::Memory);
}

TEST(Lsq, YoungestOverlappingStoreWins) {
  Lsq lsq(8);
  lsq.push(1, true, 8);
  lsq.set_address(1, 0x1000, false);
  lsq.set_store_data(1, 0x1111111111111111ull);
  lsq.push(2, true, 8);
  lsq.set_address(2, 0x1000, false);
  lsq.set_store_data(2, 0x2222222222222222ull);
  lsq.push(3, false, 8);
  lsq.set_address(3, 0x1000, false);
  std::uint64_t value = 0;
  EXPECT_EQ(lsq.query_load(3, &value), LoadStatus::Forward);
  EXPECT_EQ(value, 0x2222222222222222ull);
}

TEST(Lsq, YoungerStoresDoNotAffectLoad) {
  Lsq lsq(8);
  lsq.push(1, false, 8);
  lsq.push(2, true, 8);  // younger store, address unknown
  lsq.set_address(1, 0x1000, false);
  EXPECT_EQ(lsq.query_load(1, nullptr), LoadStatus::Memory);
}

TEST(Lsq, PartiallyCoveringYoungestWithFullCoverBehind) {
  Lsq lsq(8);
  lsq.push(1, true, 8);  // full cover, older
  lsq.set_address(1, 0x1000, false);
  lsq.set_store_data(1, ~0ull);
  lsq.push(2, true, 1);  // partial, youngest overlapping
  lsq.set_address(2, 0x1001, false);
  lsq.set_store_data(2, 0);
  lsq.push(3, false, 8);
  lsq.set_address(3, 0x1000, false);
  // The youngest overlapping store only partially covers: must wait.
  EXPECT_EQ(lsq.query_load(3, nullptr), LoadStatus::Wait);
}

TEST(Lsq, CommitPopsInProgramOrder) {
  Lsq lsq(4);
  lsq.push(1, true, 8);
  lsq.push(2, false, 4);
  lsq.set_address(1, 0x1000, false);
  lsq.set_store_data(1, 7);
  const LsqEntry store = lsq.pop_commit(1);
  EXPECT_TRUE(store.is_store);
  EXPECT_EQ(store.addr, 0x1000u);
  EXPECT_EQ(store.data, 7u);
  EXPECT_EQ(lsq.size(), 1u);
}

TEST(Lsq, SquashDropsYoungerEntries) {
  Lsq lsq(8);
  lsq.push(1, true, 8);
  lsq.push(2, false, 8);
  lsq.push(3, true, 8);
  lsq.squash_after(1);
  EXPECT_EQ(lsq.size(), 1u);
  lsq.push(5, false, 8);  // new seq after squash
  EXPECT_EQ(lsq.size(), 2u);
}

TEST(Lsq, FullnessTracking) {
  Lsq lsq(2);
  lsq.push(1, false, 8);
  EXPECT_FALSE(lsq.full());
  lsq.push(2, false, 8);
  EXPECT_TRUE(lsq.full());
}

TEST(LsqDeath, CommitOrderViolationAborts) {
  Lsq lsq(4);
  lsq.push(1, false, 8);
  lsq.push(2, false, 8);
  EXPECT_DEATH(lsq.pop_commit(2), "commit order");
}

}  // namespace
}  // namespace erel::pipeline
