// Rixner delay/energy model: monotonicity, the paper's calibration anchors
// (Figure 9, §4.4), and the extended-mechanism storage-cost calculator
// (whose Alpha 21264 example the paper quotes as "about 1.22 KBytes").
#include <gtest/gtest.h>

#include <vector>

#include "power/probe.hpp"
#include "power/rixner.hpp"
#include "power/storage_cost.hpp"
#include "sim/simulator.hpp"
#include "workloads/workloads.hpp"

namespace erel::power {
namespace {

TEST(Rixner, DelayMonotonicInRegisters) {
  const RixnerModel m;
  double prev = 0;
  for (unsigned p = 40; p <= 160; p += 8) {
    const double t = m.access_time_ns(RixnerModel::int_file(p));
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(Rixner, DelayMonotonicInPortsAndWidth) {
  const RixnerModel m;
  EXPECT_GT(m.access_time_ns({64, 50, 64}), m.access_time_ns({64, 44, 64}));
  EXPECT_GT(m.access_time_ns({64, 44, 64}), m.access_time_ns({64, 44, 32}));
}

TEST(Rixner, EnergyMonotonic) {
  const RixnerModel m;
  EXPECT_GT(m.energy_pj({80, 44, 64}), m.energy_pj({40, 44, 64}));
  EXPECT_GT(m.energy_pj({64, 50, 64}), m.energy_pj({64, 44, 64}));
  EXPECT_GT(m.energy_pj({64, 44, 64}), m.energy_pj({64, 44, 9}));
}

TEST(Rixner, LusTableAnchors) {
  const RixnerModel m;
  // Paper §4.4 / Figure 9: 0.98 ns and 193.2 pJ for the 32x9b, 56-port
  // LUs Table.
  EXPECT_NEAR(m.access_time_ns(RixnerModel::lus_table()), 0.98, 0.01);
  EXPECT_NEAR(m.energy_pj(RixnerModel::lus_table()), 193.2, 2.0);
}

TEST(Rixner, LusTableFasterThanSmallestIntFile) {
  const RixnerModel m;
  // Paper: "a 26% less than that of the smaller integer file".
  const double lus = m.access_time_ns(RixnerModel::lus_table());
  const double int40 = m.access_time_ns(RixnerModel::int_file(40));
  EXPECT_NEAR(1.0 - lus / int40, 0.26, 0.03);
}

TEST(Rixner, FpFileSlowerThanIntAtEqualSize) {
  const RixnerModel m;  // Tfp = 50 > Tint = 44
  for (unsigned p = 40; p <= 160; p += 24) {
    EXPECT_GT(m.access_time_ns(RixnerModel::fp_file(p)),
              m.access_time_ns(RixnerModel::int_file(p)));
  }
}

TEST(Rixner, EnergyBalanceRoughlyNeutral) {
  // §4.4: E(RF64int)+E(RF79fp) vs E(RF56int)+E(RF72fp)+2 LUs Tables.
  const RixnerModel m;
  const double conv = m.energy_pj(RixnerModel::int_file(64)) +
                      m.energy_pj(RixnerModel::fp_file(79));
  const double early = m.energy_pj(RixnerModel::int_file(56)) +
                       m.energy_pj(RixnerModel::fp_file(72)) +
                       2.0 * m.energy_pj(RixnerModel::lus_table());
  // The paper reports 3850 vs 3851 pJ (neutral); our calibration lands
  // within a few percent, slightly favouring early release.
  EXPECT_NEAR(early / conv, 1.0, 0.05);
}

TEST(StorageCost, PaperAlphaExampleIs1_22KB) {
  // Paper §4.4: ROS=80, 8-bit ids, 152 physical regs, 20 pending branches
  // -> "about 1.22 KBytes".
  const ExtendedCost cost = extended_mechanism_cost(ExtendedCostParams{});
  EXPECT_EQ(cost.prid_bits, 3u * 8u * 80u);
  EXPECT_EQ(cost.rwc_bits, 3u * 80u * 21u);
  EXPECT_EQ(cost.rwns_bits, 152u * 20u);
  EXPECT_NEAR(cost.relque_kbytes(), 1.22, 0.01);
}

TEST(StorageCost, LusTablesAreTiny) {
  const ExtendedCost cost = extended_mechanism_cost(ExtendedCostParams{});
  // 2 tables x 32 entries x (7-bit ROSid + 2 Kind + 1 C) = 80 bytes; the
  // paper rounds generously to "around 128B".
  EXPECT_EQ(cost.lus_bits, 2u * 32u * 10u);
  EXPECT_LE(cost.lus_bytes(), 128.0);
}

TEST(StorageCost, ScalesWithParameters) {
  ExtendedCostParams big;
  big.ros_size = 128;
  big.max_pending_branches = 20;
  big.total_phys_regs = 192;
  const ExtendedCost small = extended_mechanism_cost(ExtendedCostParams{});
  const ExtendedCost large = extended_mechanism_cost(big);
  EXPECT_GT(large.relque_total_bits(), small.relque_total_bits());
}

// ---------------------------------------------------------------------------
// RixnerProbe: the first built-in consumer of the probe API.
// ---------------------------------------------------------------------------

sim::SimConfig probe_config(core::PolicyKind policy) {
  sim::SimConfig config;
  config.policy = policy;
  config.phys_int = config.phys_fp = 64;
  config.check_oracle = false;
  config.max_instructions = 15'000;
  return config;
}

TEST(RixnerProbe, ExportsEnergyAndEd2) {
  const arch::Program program = workloads::assemble_workload("li");
  const sim::SimConfig config = probe_config(core::PolicyKind::Extended);
  RixnerProbe probe;
  auto core2 = sim::Simulator(config).make_core(program);
  core2->attach_probe(&probe);
  const sim::SimStats stats = core2->run();
  std::vector<sim::Metric> metrics;
  probe.export_metrics(config, core2->registry(), metrics);
  ASSERT_EQ(metrics.size(), 2u);
  EXPECT_EQ(metrics[0].name, "power/energy_nj");
  EXPECT_GT(metrics[0].value, 0.0);
  EXPECT_EQ(metrics[1].name, "power/ed2");
  const double cycles = static_cast<double>(stats.cycles);
  EXPECT_NEAR(metrics[1].value, metrics[0].value * cycles * cycles,
              1e-9 * metrics[1].value);
  // Per-operand access counts: every commit reads <= 2 and writes <= 1.
  const sim::StatRegistry& reg = core2->registry();
  const std::uint64_t reads = reg.counter_value("power/rf_reads/int") +
                              reg.counter_value("power/rf_reads/fp");
  const std::uint64_t writes = reg.counter_value("power/rf_writes/int") +
                               reg.counter_value("power/rf_writes/fp");
  EXPECT_GT(reads, 0u);
  EXPECT_GT(writes, 0u);
  EXPECT_LE(reads, 2 * stats.committed);
  EXPECT_LE(writes, stats.committed);
  // Extended policy charges the LUs Table.
  EXPECT_GT(reg.counter_value("power/lus_accesses"), 0u);
}

TEST(RixnerProbe, WrongPathTrafficIsCountedSeparately) {
  // The timer kernel's interrupt deliveries and IRET flushes squash
  // sequential-path work every few hundred instructions, so wrong-path
  // rename/RF traffic must show up — and stay out of the headline
  // committed-work counters (reads <= 2 and writes <= 1 per commit still
  // hold exactly).
  const arch::Program program = workloads::assemble_workload("timer");
  const sim::SimConfig config = probe_config(core::PolicyKind::Extended);
  RixnerProbe probe;
  auto core = sim::Simulator(config).make_core(program);
  core->attach_probe(&probe);
  const sim::SimStats stats = core->run();
  ASSERT_GT(stats.committed, 10'000u);

  const sim::StatRegistry& reg = core->registry();
  EXPECT_GT(reg.counter_value("power/wrongpath_renames"), 0u);
  const std::uint64_t wp_reads =
      reg.counter_value("power/wrongpath_rf_reads/int") +
      reg.counter_value("power/wrongpath_rf_reads/fp");
  const std::uint64_t wp_writes =
      reg.counter_value("power/wrongpath_rf_writes/int") +
      reg.counter_value("power/wrongpath_rf_writes/fp");
  EXPECT_GT(wp_reads, 0u);
  EXPECT_GT(wp_writes, 0u);
  EXPECT_GT(reg.counter_value("power/wrongpath_lus_accesses"), 0u);
  const std::uint64_t reads = reg.counter_value("power/rf_reads/int") +
                              reg.counter_value("power/rf_reads/fp");
  const std::uint64_t writes = reg.counter_value("power/rf_writes/int") +
                               reg.counter_value("power/rf_writes/fp");
  EXPECT_LE(reads, 2 * stats.committed);
  EXPECT_LE(writes, stats.committed);
}

TEST(RixnerProbe, ConventionalPolicyHasNoLusTraffic) {
  const arch::Program program = workloads::assemble_workload("li");
  const sim::SimConfig config = probe_config(core::PolicyKind::Conventional);
  RixnerProbe probe;
  auto core = sim::Simulator(config).make_core(program);
  core->attach_probe(&probe);
  (void)core->run();
  EXPECT_EQ(core->registry().counter_value("power/lus_accesses"), 0u);
  std::vector<sim::Metric> conv_metrics;
  probe.export_metrics(config, core->registry(), conv_metrics);
  ASSERT_EQ(conv_metrics.size(), 2u);
  EXPECT_GT(conv_metrics[0].value, 0.0);
}

}  // namespace
}  // namespace erel::power
