// FreeList: FIFO order, conservation, double-free / double-alloc aborts.
#include <gtest/gtest.h>

#include "core/free_list.hpp"

namespace erel::core {
namespace {

TEST(FreeList, InitialSizeExcludesArchitecturalRegs) {
  FreeList fl(96, 32);
  EXPECT_EQ(fl.size(), 64u);
  EXPECT_EQ(fl.capacity(), 96u);
  EXPECT_FALSE(fl.is_free(0));
  EXPECT_FALSE(fl.is_free(31));
  EXPECT_TRUE(fl.is_free(32));
}

TEST(FreeList, AllocatesInFifoOrder) {
  FreeList fl(40, 32);
  EXPECT_EQ(fl.allocate(), 32);
  EXPECT_EQ(fl.allocate(), 33);
  fl.release(32);
  EXPECT_EQ(fl.allocate(), 34);  // FIFO: released reg goes to the tail
  EXPECT_EQ(fl.allocate(), 35);
  EXPECT_EQ(fl.allocate(), 36);
  EXPECT_EQ(fl.allocate(), 37);
  EXPECT_EQ(fl.allocate(), 38);
  EXPECT_EQ(fl.allocate(), 39);
  EXPECT_EQ(fl.allocate(), 32);  // wrapped to the released one
  EXPECT_TRUE(fl.empty());
}

TEST(FreeList, ReleaseMakesAvailableAgain) {
  FreeList fl(34, 32);
  const PhysReg a = fl.allocate();
  const PhysReg b = fl.allocate();
  EXPECT_TRUE(fl.empty());
  fl.release(b);
  fl.release(a);
  EXPECT_EQ(fl.size(), 2u);
  EXPECT_EQ(fl.allocate(), b);
  EXPECT_EQ(fl.allocate(), a);
}

TEST(FreeList, StressConservation) {
  FreeList fl(64, 32);
  std::vector<PhysReg> held;
  unsigned rng = 12345;
  for (int step = 0; step < 10000; ++step) {
    rng = rng * 1103515245 + 12345;
    if ((rng >> 16) % 2 == 0 && !fl.empty()) {
      held.push_back(fl.allocate());
    } else if (!held.empty()) {
      const std::size_t idx = (rng >> 20) % held.size();
      fl.release(held[idx]);
      held.erase(held.begin() + static_cast<std::ptrdiff_t>(idx));
    }
    ASSERT_EQ(fl.size() + held.size(), 32u);
  }
}

TEST(FreeListDeath, DoubleReleaseAborts) {
  FreeList fl(40, 32);
  const PhysReg p = fl.allocate();
  fl.release(p);
  EXPECT_DEATH(fl.release(p), "double release");
}

TEST(FreeListDeath, ReleaseOfNeverAllocatedFreeRegAborts) {
  FreeList fl(40, 32);
  EXPECT_DEATH(fl.release(35), "double release");
}

TEST(FreeListDeath, AllocateFromEmptyAborts) {
  FreeList fl(33, 32);
  fl.allocate();
  EXPECT_DEATH(fl.allocate(), "empty free list");
}

TEST(FreeListDeath, BogusRegisterAborts) {
  FreeList fl(40, 32);
  EXPECT_DEATH(fl.release(100), "bogus");
}

}  // namespace
}  // namespace erel::core
