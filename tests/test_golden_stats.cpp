// Golden pin: the SimStats view materialized from the StatRegistry must be
// value-identical to the pre-refactor (closed-struct) implementation. The
// table below was captured from the seed tree *before* the Instrumentation
// API v2 refactor: all ten kernels at smoke scale (max_instructions =
// 20000, oracle off) under conv/96 and extended/64. Every field of every
// cell is pinned — counters exactly, occupancy averages to 1e-12 relative
// (they are double divisions of exactly-reproduced integrals).
//
// If this test fails, the observation-layer refactor changed simulated
// results; fix the regression, do not re-capture the table.
#include <gtest/gtest.h>

#include "harness/harness.hpp"
#include "sim/simulator.hpp"
#include "workloads/workloads.hpp"

namespace erel {
namespace {

struct GoldenValues {
  std::uint64_t cycles, committed;
  std::uint64_t cond_branches, cond_mispredicts;
  std::uint64_t indirect_jumps, indirect_mispredicts;
  std::uint64_t ros_full, lsq_full, checkpoints_full, free_list_empty;
  std::uint64_t flushes_injected, icache_stall_cycles;
  std::uint64_t policy_int[8];
  std::uint64_t policy_fp[8];
  double occ_int[3];
  double occ_fp[3];
  std::uint64_t squash_released[2];
  std::uint64_t l1i[3], l1d[3], l2[3];
};

struct GoldenCell {
  const char* workload;
  const char* policy;
  unsigned phys;
  GoldenValues v;
};

const GoldenCell kGolden[] = {
{"compress", "conv", 96,
 {17040ull, 20006ull, 5233ull, 1011ull, 0ull, 0ull,
  0ull, 0ull, 0ull, 9268ull, 0ull, 142ull,
  {16163ull, 0ull, 0ull, 0ull, 0ull, 0ull, 0ull, 0ull},
  {0ull, 0ull, 0ull, 0ull, 0ull, 0ull, 0ull, 0ull},
  {37.197124413145538, 17.404518779342723, 25.042488262910798}, {0, 0, 32},
  41781ull, 0ull,
  {15363ull, 7ull, 0ull}, {1281ull, 21ull, 0ull}, {28ull, 25ull, 0ull}}},
{"compress", "extended", 64,
 {17040ull, 20006ull, 3752ull, 1005ull, 0ull, 0ull,
  0ull, 0ull, 0ull, 12158ull, 0ull, 142ull,
  {0ull, 12848ull, 1502ull, 0ull, 1815ull, 36442ull, 0ull, 0ull},
  {0ull, 0ull, 0ull, 0ull, 0ull, 0ull, 0ull, 0ull},
  {21.925469483568076, 13.57400234741784, 23.358274647887324}, {0, 0, 32},
  23833ull, 0ull,
  {11741ull, 7ull, 0ull}, {1281ull, 21ull, 0ull}, {28ull, 25ull, 0ull}}},
{"gcc", "conv", 96,
 {18228ull, 20004ull, 5842ull, 2002ull, 1778ull, 699ull,
  0ull, 0ull, 0ull, 2620ull, 0ull, 462ull,
  {16613ull, 0ull, 0ull, 0ull, 0ull, 0ull, 0ull, 0ull},
  {0ull, 0ull, 0ull, 0ull, 0ull, 0ull, 0ull, 0ull},
  {23.712804476629362, 19.220923853412334, 22.03439763001975}, {0, 0, 32},
  44020ull, 0ull,
  {26723ull, 16ull, 0ull}, {2726ull, 9ull, 0ull}, {25ull, 17ull, 0ull}}},
{"gcc", "extended", 64,
 {18390ull, 20004ull, 4580ull, 1752ull, 1786ull, 699ull,
  0ull, 0ull, 0ull, 7561ull, 0ull, 462ull,
  {0ull, 11713ull, 2186ull, 0ull, 2716ull, 37779ull, 0ull, 0ull},
  {0ull, 0ull, 0ull, 0ull, 0ull, 0ull, 0ull, 0ull},
  {17.134855899945624, 17.159923871669385, 19.389559543230018}, {0, 0, 32},
  26920ull, 0ull,
  {21282ull, 16ull, 0ull}, {2612ull, 9ull, 0ull}, {25ull, 17ull, 0ull}}},
{"go", "conv", 96,
 {12216ull, 20006ull, 8151ull, 1930ull, 0ull, 0ull,
  0ull, 0ull, 0ull, 1810ull, 0ull, 87ull,
  {13706ull, 0ull, 0ull, 0ull, 0ull, 0ull, 0ull, 0ull},
  {0ull, 0ull, 0ull, 0ull, 0ull, 0ull, 0ull, 0ull},
  {18.355435494433529, 13.456859855926654, 24.993287491814016}, {0, 0, 32},
  29504ull, 0ull,
  {14798ull, 8ull, 0ull}, {5190ull, 6ull, 0ull}, {14ull, 10ull, 0ull}}},
{"go", "extended", 64,
 {12245ull, 20006ull, 7677ull, 1923ull, 0ull, 0ull,
  0ull, 0ull, 0ull, 2961ull, 0ull, 87ull,
  {0ull, 9897ull, 1532ull, 0ull, 2280ull, 34456ull, 0ull, 0ull},
  {0ull, 0ull, 0ull, 0ull, 0ull, 0ull, 0ull, 0ull},
  {13.796488362596978, 12.100775826868109, 23.656349530420581}, {0, 0, 32},
  23882ull, 0ull,
  {13234ull, 8ull, 0ull}, {5187ull, 6ull, 0ull}, {14ull, 10ull, 0ull}}},
{"li", "conv", 96,
 {14295ull, 20002ull, 6250ull, 2348ull, 259ull, 0ull,
  0ull, 0ull, 0ull, 0ull, 0ull, 274ull,
  {12876ull, 0ull, 0ull, 0ull, 0ull, 0ull, 0ull, 0ull},
  {0ull, 0ull, 0ull, 0ull, 0ull, 0ull, 0ull, 0ull},
  {9.5738370059461353, 13.338579923050018, 22.627771948233647}, {0, 0, 32},
  45384ull, 0ull,
  {22143ull, 7ull, 0ull}, {8439ull, 4ull, 0ull}, {11ull, 8ull, 0ull}}},
{"li", "extended", 64,
 {14295ull, 20002ull, 6250ull, 2348ull, 259ull, 0ull,
  0ull, 0ull, 0ull, 60ull, 0ull, 274ull,
  {0ull, 6317ull, 2381ull, 0ull, 4182ull, 54659ull, 0ull, 0ull},
  {0ull, 0ull, 0ull, 0ull, 0ull, 0ull, 0ull, 0ull},
  {9.552221056313396, 13.338230150402239, 21.447219307450158}, {0, 0, 32},
  45299ull, 0ull,
  {22135ull, 7ull, 0ull}, {8439ull, 4ull, 0ull}, {11ull, 8ull, 0ull}}},
{"perl", "conv", 96,
 {16750ull, 20001ull, 1835ull, 604ull, 0ull, 0ull,
  0ull, 0ull, 0ull, 14137ull, 0ull, 86ull,
  {16645ull, 0ull, 0ull, 0ull, 0ull, 0ull, 0ull, 0ull},
  {0ull, 0ull, 0ull, 0ull, 0ull, 0ull, 0ull, 0ull},
  {34.944000000000003, 35.811223880597012, 22.397313432835819}, {0, 0, 32},
  8911ull, 0ull,
  {7505ull, 10ull, 0ull}, {1678ull, 42ull, 0ull}, {52ull, 47ull, 0ull}}},
{"perl", "extended", 64,
 {16782ull, 20001ull, 1739ull, 556ull, 0ull, 0ull,
  0ull, 0ull, 0ull, 14593ull, 0ull, 95ull,
  {0ull, 16632ull, 13ull, 0ull, 0ull, 8284ull, 0ull, 0ull},
  {0ull, 0ull, 0ull, 0ull, 0ull, 0ull, 0ull, 0ull},
  {17.373316648790372, 23.939995232987727, 22.086163746871648}, {0, 0, 32},
  2684ull, 0ull,
  {6453ull, 9ull, 0ull}, {1678ull, 42ull, 0ull}, {51ull, 47ull, 0ull}}},
{"mgrid", "conv", 96,
 {16818ull, 20000ull, 1674ull, 19ull, 0ull, 0ull,
  0ull, 0ull, 0ull, 14931ull, 0ull, 151ull,
  {11671ull, 0ull, 0ull, 0ull, 0ull, 0ull, 0ull, 0ull},
  {4999ull, 0ull, 0ull, 0ull, 0ull, 0ull, 0ull, 0ull},
  {49.750743251278394, 17.655428707337375, 27.91277202996789}, {27.788857176834345, 3.1817100725413248, 29.125163515281248},
  222ull, 18ull,
  {5079ull, 7ull, 0ull}, {1669ull, 209ull, 0ull}, {216ull, 213ull, 0ull}}},
{"mgrid", "extended", 64,
 {16818ull, 20000ull, 1669ull, 19ull, 0ull, 0ull,
  0ull, 0ull, 0ull, 14961ull, 0ull, 151ull,
  {0ull, 11664ull, 7ull, 0ull, 0ull, 6719ull, 0ull, 0ull},
  {0ull, 4995ull, 5ull, 0ull, 0ull, 2ull, 0ull, 0ull},
  {23.664050422166728, 12.81591152336782, 27.014092044238318}, {13.073492686407421, 3.1817100725413248, 29.010167677488404},
  119ull, 2ull,
  {5056ull, 7ull, 0ull}, {1669ull, 209ull, 0ull}, {216ull, 213ull, 0ull}}},
{"tomcatv", "conv", 96,
 {16818ull, 20000ull, 1674ull, 19ull, 0ull, 0ull,
  0ull, 0ull, 0ull, 14931ull, 0ull, 151ull,
  {11671ull, 0ull, 0ull, 0ull, 0ull, 0ull, 0ull, 0ull},
  {4999ull, 0ull, 0ull, 0ull, 0ull, 0ull, 0ull, 0ull},
  {49.749197288619335, 17.654536805803307, 27.91277202996789}, {27.790581519800213, 3.1817100725413248, 29.125163515281248},
  193ull, 35ull,
  {5080ull, 7ull, 0ull}, {1669ull, 209ull, 0ull}, {216ull, 213ull, 0ull}}},
{"tomcatv", "extended", 64,
 {16818ull, 20000ull, 1669ull, 19ull, 0ull, 0ull,
  0ull, 0ull, 0ull, 14960ull, 0ull, 151ull,
  {0ull, 11664ull, 7ull, 0ull, 0ull, 6713ull, 0ull, 0ull},
  {0ull, 4995ull, 5ull, 0ull, 0ull, 11ull, 0ull, 0ull},
  {23.663931501962182, 12.81549530265192, 27.014092044238318}, {13.074206207634678, 3.1817100725413248, 29.010167677488404},
  113ull, 11ull,
  {5057ull, 7ull, 0ull}, {1669ull, 209ull, 0ull}, {216ull, 213ull, 0ull}}},
{"applu", "conv", 96,
 {8310ull, 20001ull, 1566ull, 100ull, 0ull, 0ull,
  0ull, 0ull, 0ull, 5909ull, 0ull, 260ull,
  {12530ull, 0ull, 0ull, 0ull, 0ull, 0ull, 0ull, 0ull},
  {4308ull, 0ull, 0ull, 0ull, 0ull, 0ull, 0ull, 0ull},
  {22.815884476534297, 46.981227436823104, 23.183152827918171}, {16.579422382671481, 11.164500601684717, 26.705655836341759},
  968ull, 247ull,
  {4023ull, 21ull, 0ull}, {2526ull, 5ull, 0ull}, {26ull, 16ull, 0ull}}},
{"applu", "extended", 64,
 {9832ull, 20001ull, 1562ull, 100ull, 0ull, 0ull,
  0ull, 0ull, 0ull, 7872ull, 0ull, 265ull,
  {0ull, 12142ull, 86ull, 0ull, 305ull, 8251ull, 0ull, 0ull},
  {0ull, 4041ull, 87ull, 0ull, 181ull, 1781ull, 0ull, 0ull},
  {12.521460537021969, 30.060923515052888, 20.164056143205858}, {9.2722742066720905, 7.9223962571196092, 25.265561432058583},
  761ull, 121ull,
  {4005ull, 21ull, 0ull}, {2596ull, 5ull, 0ull}, {26ull, 16ull, 0ull}}},
{"swim", "conv", 96,
 {16818ull, 20000ull, 1674ull, 19ull, 0ull, 0ull,
  0ull, 0ull, 0ull, 14931ull, 0ull, 151ull,
  {11671ull, 0ull, 0ull, 0ull, 0ull, 0ull, 0ull, 0ull},
  {4999ull, 0ull, 0ull, 0ull, 0ull, 0ull, 0ull, 0ull},
  {49.749197288619335, 17.654536805803307, 27.91277202996789}, {27.790581519800213, 3.1817100725413248, 29.125163515281248},
  193ull, 35ull,
  {5080ull, 7ull, 0ull}, {1669ull, 209ull, 0ull}, {216ull, 213ull, 0ull}}},
{"swim", "extended", 64,
 {16818ull, 20000ull, 1669ull, 19ull, 0ull, 0ull,
  0ull, 0ull, 0ull, 14960ull, 0ull, 151ull,
  {0ull, 11664ull, 7ull, 0ull, 0ull, 6713ull, 0ull, 0ull},
  {0ull, 4995ull, 5ull, 0ull, 0ull, 11ull, 0ull, 0ull},
  {23.663931501962182, 12.81549530265192, 27.014092044238318}, {13.074206207634678, 3.1817100725413248, 29.010167677488404},
  113ull, 11ull,
  {5057ull, 7ull, 0ull}, {1669ull, 209ull, 0ull}, {216ull, 213ull, 0ull}}},
{"hydro2d", "conv", 96,
 {16818ull, 20000ull, 1674ull, 19ull, 0ull, 0ull,
  0ull, 0ull, 0ull, 14931ull, 0ull, 151ull,
  {11671ull, 0ull, 0ull, 0ull, 0ull, 0ull, 0ull, 0ull},
  {4999ull, 0ull, 0ull, 0ull, 0ull, 0ull, 0ull, 0ull},
  {49.749197288619335, 17.654536805803307, 27.91277202996789}, {27.790581519800213, 3.1817100725413248, 29.125163515281248},
  193ull, 35ull,
  {5080ull, 7ull, 0ull}, {1669ull, 209ull, 0ull}, {216ull, 213ull, 0ull}}},
{"hydro2d", "extended", 64,
 {16818ull, 20000ull, 1669ull, 19ull, 0ull, 0ull,
  0ull, 0ull, 0ull, 14960ull, 0ull, 151ull,
  {0ull, 11664ull, 7ull, 0ull, 0ull, 6713ull, 0ull, 0ull},
  {0ull, 4995ull, 5ull, 0ull, 0ull, 11ull, 0ull, 0ull},
  {23.663931501962182, 12.81549530265192, 27.014092044238318}, {13.074206207634678, 3.1817100725413248, 29.010167677488404},
  113ull, 11ull,
  {5057ull, 7ull, 0ull}, {1669ull, 209ull, 0ull}, {216ull, 213ull, 0ull}}},
};

void expect_policy_stats(const core::PolicyStats& got,
                         const std::uint64_t (&want)[8], const char* what) {
  EXPECT_EQ(got.conventional_releases, want[0]) << what;
  EXPECT_EQ(got.early_commit_releases, want[1]) << what;
  EXPECT_EQ(got.immediate_releases, want[2]) << what;
  EXPECT_EQ(got.reuses, want[3]) << what;
  EXPECT_EQ(got.branch_confirm_releases, want[4]) << what;
  EXPECT_EQ(got.conditional_schedulings, want[5]) << what;
  EXPECT_EQ(got.fallback_conventional, want[6]) << what;
  EXPECT_EQ(got.stale_suppressed, want[7]) << what;
}

void expect_occupancy(const core::Occupancy& got, const double (&want)[3],
                      const char* what) {
  EXPECT_NEAR(got.avg_empty, want[0], 1e-12 * (1.0 + want[0])) << what;
  EXPECT_NEAR(got.avg_ready, want[1], 1e-12 * (1.0 + want[1])) << what;
  EXPECT_NEAR(got.avg_idle, want[2], 1e-12 * (1.0 + want[2])) << what;
}

void expect_cache(const mem::CacheStats& got, const std::uint64_t (&want)[3],
                  const char* what) {
  EXPECT_EQ(got.accesses, want[0]) << what;
  EXPECT_EQ(got.misses, want[1]) << what;
  EXPECT_EQ(got.writebacks, want[2]) << what;
}

TEST(GoldenStats, SimStatsViewMatchesPreRefactorNumbers) {
  for (const GoldenCell& cell : kGolden) {
    SCOPED_TRACE(std::string(cell.workload) + "/" + cell.policy + "/" +
                 std::to_string(cell.phys));
    sim::SimConfig config = harness::experiment_config(
        core::parse_policy(cell.policy), cell.phys);
    config.max_instructions = 20'000;
    const sim::SimStats s = sim::Simulator(config).run(
        workloads::assemble_workload(cell.workload));
    const GoldenValues& g = cell.v;
    EXPECT_EQ(s.cycles, g.cycles);
    EXPECT_EQ(s.committed, g.committed);
    EXPECT_EQ(s.branches.cond_branches, g.cond_branches);
    EXPECT_EQ(s.branches.cond_mispredicts, g.cond_mispredicts);
    EXPECT_EQ(s.branches.indirect_jumps, g.indirect_jumps);
    EXPECT_EQ(s.branches.indirect_mispredicts, g.indirect_mispredicts);
    EXPECT_EQ(s.stalls.ros_full, g.ros_full);
    EXPECT_EQ(s.stalls.lsq_full, g.lsq_full);
    EXPECT_EQ(s.stalls.checkpoints_full, g.checkpoints_full);
    EXPECT_EQ(s.stalls.free_list_empty, g.free_list_empty);
    EXPECT_EQ(s.flushes_injected, g.flushes_injected);
    EXPECT_EQ(s.icache_stall_cycles, g.icache_stall_cycles);
    expect_policy_stats(s.policy_stats[0], g.policy_int, "policy int");
    expect_policy_stats(s.policy_stats[1], g.policy_fp, "policy fp");
    expect_occupancy(s.occupancy[0], g.occ_int, "occupancy int");
    expect_occupancy(s.occupancy[1], g.occ_fp, "occupancy fp");
    EXPECT_EQ(s.squash_released[0], g.squash_released[0]);
    EXPECT_EQ(s.squash_released[1], g.squash_released[1]);
    expect_cache(s.l1i, g.l1i, "l1i");
    expect_cache(s.l1d, g.l1d, "l1d");
    expect_cache(s.l2, g.l2, "l2");
  }
}

}  // namespace
}  // namespace erel
