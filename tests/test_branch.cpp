// Branch prediction: gshare training and history repair, BTB replacement,
// RAS checkpointing.
#include <gtest/gtest.h>

#include "branch/btb.hpp"
#include "branch/gshare.hpp"
#include "branch/ras.hpp"

namespace erel::branch {
namespace {

TEST(Gshare, LearnsAlwaysTaken) {
  Gshare g(8);
  const std::uint64_t pc = 0x10000;
  std::uint32_t cp = 0;
  // Train: resolve taken repeatedly, repairing history on mispredicts the
  // way the pipeline does (speculative updates are otherwise corrupted).
  for (int i = 0; i < 64; ++i) {
    const bool pred = g.predict(pc, &cp);
    const bool miss = pred != true;
    g.resolve(pc, cp, /*taken=*/true, miss);
    if (miss) g.repair(cp, true);
  }
  EXPECT_TRUE(g.predict(pc, &cp));
  EXPECT_GT(g.stats().accuracy(), 0.8);
}

TEST(Gshare, LearnsAlternatingPatternThroughHistory) {
  Gshare g(8);
  const std::uint64_t pc = 0x20000;
  std::uint32_t cp = 0;
  int mispredicts_late = 0;
  for (int i = 0; i < 400; ++i) {
    const bool actual = (i % 2) == 0;
    const bool pred = g.predict(pc, &cp);
    const bool miss = pred != actual;
    g.resolve(pc, cp, actual, miss);
    if (miss) g.repair(cp, actual);
    if (miss && i >= 300) ++mispredicts_late;
  }
  // With history the alternating pattern becomes fully predictable.
  EXPECT_EQ(mispredicts_late, 0);
}

TEST(Gshare, SpeculativeHistoryShiftsOnPredict) {
  Gshare g(8);
  std::uint32_t cp = 0;
  const std::uint32_t before = g.history();
  const bool pred = g.predict(0x30000, &cp);
  EXPECT_EQ(cp, before);
  EXPECT_EQ(g.history() & 1u, pred ? 1u : 0u);
}

TEST(Gshare, RepairRestoresCheckpointPlusOutcome) {
  Gshare g(8);
  std::uint32_t cp = 0;
  g.predict(0x40000, &cp);
  for (int i = 0; i < 5; ++i) {
    std::uint32_t junk;
    g.predict(0x40100 + 4 * i, &junk);  // wrong-path history pollution
  }
  g.repair(cp, /*actual_taken=*/true);
  EXPECT_EQ(g.history(), ((cp << 1) | 1u) & 0xFFu);
  g.restore_history(cp);
  EXPECT_EQ(g.history(), cp & 0xFFu);
}

TEST(Gshare, CountersTrainAtCheckpointIndex) {
  Gshare g(8);
  std::uint32_t cp = 0;
  const std::uint64_t pc = 0x5000;
  const bool pred = g.predict(pc, &cp);
  const std::uint8_t before = g.counter_at(pc, cp);
  g.resolve(pc, cp, /*taken=*/true, pred != true);
  EXPECT_EQ(g.counter_at(pc, cp), before < 3 ? before + 1 : 3);
}

TEST(Btb, RemembersLastTarget) {
  Btb btb(64, 4);
  EXPECT_FALSE(btb.lookup(0x1000).has_value());
  btb.update(0x1000, 0x2000);
  EXPECT_EQ(btb.lookup(0x1000).value(), 0x2000u);
  btb.update(0x1000, 0x3000);
  EXPECT_EQ(btb.lookup(0x1000).value(), 0x3000u);
}

TEST(Btb, SetConflictEvictsLru) {
  Btb btb(8, 2);  // 4 sets x 2 ways; same set stride = 16 bytes of pc
  btb.update(0x1000, 0xA);
  btb.update(0x1010, 0xB);
  (void)btb.lookup(0x1000);    // refresh A (no LRU update: const)
  btb.update(0x1020, 0xC);     // evicts B? lookup() is const -> LRU moves
  // Lookups don't update LRU in this model; B was older than A anyway.
  EXPECT_TRUE(btb.lookup(0x1020).has_value());
  EXPECT_EQ(btb.lookup(0x1000).has_value() +
                btb.lookup(0x1010).has_value() +
                btb.lookup(0x1020).has_value(),
            2);
}

TEST(Ras, CallReturnNesting) {
  Ras ras(8);
  ras.push(0x100);
  ras.push(0x200);
  ras.push(0x300);
  EXPECT_EQ(ras.pop(), 0x300u);
  EXPECT_EQ(ras.pop(), 0x200u);
  ras.push(0x400);
  EXPECT_EQ(ras.pop(), 0x400u);
  EXPECT_EQ(ras.pop(), 0x100u);
}

TEST(Ras, UnderflowReturnsZero) {
  Ras ras(4);
  EXPECT_EQ(ras.pop(), 0u);
}

TEST(Ras, OverflowWrapsKeepingNewest) {
  Ras ras(2);
  ras.push(0x1);
  ras.push(0x2);
  ras.push(0x3);  // overwrites 0x1 (circular)
  EXPECT_EQ(ras.pop(), 0x3u);
  EXPECT_EQ(ras.pop(), 0x2u);
  // The deepest entry was overwritten: the circular stack returns the
  // clobbering value — a wrong-but-harmless prediction, as in hardware.
  EXPECT_EQ(ras.pop(), 0x3u);
}

TEST(Ras, CheckpointRepairsTopEntry) {
  Ras ras(8);
  ras.push(0x100);
  const Ras::Checkpoint cp = ras.checkpoint();
  // Wrong path: pop then push garbage.
  EXPECT_EQ(ras.pop(), 0x100u);
  ras.push(0xBAD);
  ras.push(0xBAD2);
  ras.restore(cp);
  EXPECT_EQ(ras.pop(), 0x100u);
}

}  // namespace
}  // namespace erel::branch
