// End-to-end workload validation: every kernel runs to completion under
// every release policy with the functional oracle comparing each committed
// instruction (PC, destination value, memory effects). Any early-release
// bug — a register freed too early, reused too early, released twice —
// surfaces here as an oracle divergence or a FreeList/RegTracker abort.
#include <gtest/gtest.h>

#include "arch/arch_state.hpp"
#include "asmkit/assembler.hpp"
#include "sim/simulator.hpp"
#include "workloads/workloads.hpp"

namespace erel {
namespace {

using core::PolicyKind;

struct Case {
  std::string workload;
  PolicyKind policy;
  unsigned phys;
};

std::string case_name(const testing::TestParamInfo<Case>& info) {
  return info.param.workload + "_" +
         std::string(core::policy_name(info.param.policy)) + "_p" +
         std::to_string(info.param.phys);
}

class WorkloadOracle : public testing::TestWithParam<Case> {};

TEST_P(WorkloadOracle, MatchesFunctionalSimulation) {
  const Case& c = GetParam();
  sim::SimConfig config;
  config.policy = c.policy;
  config.phys_int = c.phys;
  config.phys_fp = c.phys;
  config.check_oracle = true;

  const arch::Program program = workloads::assemble_workload(c.workload);
  sim::Simulator simulator(config);
  auto core = simulator.make_core(program);
  const sim::SimStats stats = core->run();

  EXPECT_TRUE(stats.halted) << "did not reach HALT";
  EXPECT_GT(stats.committed, 10'000u) << "suspiciously short run";
  EXPECT_TRUE(core->conservation_holds());

  // The committed memory image must equal the oracle's final image at the
  // result block.
  arch::ArchState reference(program);
  reference.run();
  ASSERT_TRUE(reference.halted());
  const std::uint64_t result_addr = program.symbols.at("result");
  for (unsigned off = 0; off < 16; off += 8) {
    EXPECT_EQ(core->memory().read_u64(result_addr + off),
              reference.memory().read_u64(result_addr + off))
        << "result word at offset " << off;
  }
}

std::vector<Case> all_cases() {
  std::vector<Case> cases;
  for (const std::string& name : workloads::workload_names()) {
    for (const PolicyKind policy :
         {PolicyKind::Conventional, PolicyKind::Basic, PolicyKind::Extended}) {
      cases.push_back({name, policy, 64});
    }
  }
  // Very tight and loose register files for a subset (full cross product
  // would slow the suite): the recursion-heavy and highest-pressure kernels.
  for (const char* name : {"li", "tomcatv", "compress", "mgrid"}) {
    for (const PolicyKind policy :
         {PolicyKind::Conventional, PolicyKind::Basic, PolicyKind::Extended}) {
      cases.push_back({name, policy, 40});
      cases.push_back({name, policy, 160});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadOracle,
                         testing::ValuesIn(all_cases()), case_name);

// The li kernel has an independently known answer: 8 queens has exactly 92
// solutions.
TEST(WorkloadSemantics, EightQueensHas92Solutions) {
  const arch::Program program =
      asmkit::assemble(workloads::kernel_li(8));
  arch::ArchState state(program);
  state.run();
  ASSERT_TRUE(state.halted());
  EXPECT_EQ(state.memory().read_u64(program.symbols.at("result")), 92u);
}

TEST(WorkloadSemantics, SixQueensHas4Solutions) {
  const arch::Program program = asmkit::assemble(workloads::kernel_li(6));
  arch::ArchState state(program);
  state.run();
  ASSERT_TRUE(state.halted());
  EXPECT_EQ(state.memory().read_u64(program.symbols.at("result")), 4u);
}

// Checksums must be non-trivial (a kernel that loops without computing
// would store zero).
TEST(WorkloadSemantics, AllChecksumsNonZero) {
  for (const std::string& name : workloads::workload_names()) {
    const arch::Program program = workloads::assemble_workload(name);
    arch::ArchState state(program);
    state.run(200'000'000);
    ASSERT_TRUE(state.halted()) << name << " did not halt";
    EXPECT_NE(state.memory().read_u64(program.symbols.at("result")), 0u)
        << name;
  }
}

// Dynamic instruction counts should sit in the intended band (Table 3
// analogue, scaled down ~300-1000x).
TEST(WorkloadSemantics, DynamicLengthsInBand) {
  for (const std::string& name : workloads::workload_names()) {
    const arch::Program program = workloads::assemble_workload(name);
    arch::ArchState state(program);
    state.run(200'000'000);
    ASSERT_TRUE(state.halted()) << name;
    EXPECT_GT(state.instructions_executed(), 100'000u) << name;
    EXPECT_LT(state.instructions_executed(), 5'000'000u) << name;
  }
}

}  // namespace
}  // namespace erel
