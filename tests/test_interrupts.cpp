// Interrupt / device-model suite: the dev::Machine determinism contract.
//
// The device is clocked by retired instructions, so every engine that
// retires the same instruction stream must observe the same device — and
// deliver interrupts at the same instruction boundaries. These tests pin
// exactly that: the detailed pipeline (all three release policies), the
// decoded functional fast path, sampled-sharded runs and checkpoint-resumed
// runs all produce bit-identical commit streams on the interrupt kernels,
// and trap state survives checkpoint serialization.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "arch/arch_state.hpp"
#include "arch/checkpoint.hpp"
#include "arch/decoded_program.hpp"
#include "dev/machine.hpp"
#include "pipeline/core.hpp"
#include "sim/sampling.hpp"
#include "sim/simulator.hpp"
#include "trace/checkpoint_io.hpp"
#include "workloads/workloads.hpp"

namespace erel {
namespace {

/// One functional step: enough to identify an instruction boundary.
struct RefStep {
  std::uint64_t pc = 0;
  bool operator==(const RefStep&) const = default;
};

/// Byte-accurate functional reference: the committed-pc stream (HALT
/// excluded — the detailed core never retires it) plus the final state.
std::vector<RefStep> reference_stream(arch::ArchState& state) {
  std::vector<RefStep> stream;
  while (!state.halted()) stream.push_back({state.step().pc});
  // Drop the HALT (the functional engine counts it, the detailed core
  // stops without retiring it).
  if (!stream.empty()) stream.pop_back();
  return stream;
}

std::vector<RefStep> reference_stream(const arch::Program& program) {
  arch::ArchState state(program);
  return reference_stream(state);
}

struct CommitRecorder final : sim::Probe {
  std::vector<RefStep> stream;
  std::vector<std::uint32_t> encodings;
  void on_commit(const sim::CommitEvent& ev) override {
    stream.push_back({ev.pc});
    encodings.push_back(ev.encoding);
  }
};

sim::SimConfig irq_config(core::PolicyKind policy) {
  sim::SimConfig config;
  config.policy = policy;
  config.phys_int = config.phys_fp = 48;  // pressure: squashes matter
  config.check_oracle = true;
  return config;
}

std::uint64_t result_word(const arch::ArchState& state,
                          const arch::Program& program, unsigned offset) {
  return state.memory().read(program.symbols.at("result") + offset, 8);
}

TEST(Interrupts, TimerKernelBehavesFunctionally) {
  const arch::Program program = workloads::assemble_workload("timer");
  arch::ArchState state(program);
  state.run(20'000'000);
  ASSERT_TRUE(state.halted());
  EXPECT_GT(state.instructions_executed(), 100'000u);
  EXPECT_LT(state.instructions_executed(), 5'000'000u);
  EXPECT_NE(result_word(state, program, 0), 0u);  // checksum<<1|1
  const std::uint64_t handler_ticks = result_word(state, program, 8);
  const std::uint64_t device_ticks = result_word(state, program, 16);
  EXPECT_GT(handler_ticks, 100u);  // ~196k insts / period 400
  EXPECT_EQ(handler_ticks, device_ticks);  // no tick lost or duplicated
}

TEST(Interrupts, EchoKernelBehavesFunctionally) {
  const arch::Program program = workloads::assemble_workload("echo");
  arch::ArchState state(program);
  state.run(20'000'000);
  ASSERT_TRUE(state.halted());
  EXPECT_GT(state.instructions_executed(), 100'000u);
  EXPECT_LT(state.instructions_executed(), 5'000'000u);
  EXPECT_NE(result_word(state, program, 0), 0u);  // tx checksum<<1|1
  const std::uint64_t tx_count = result_word(state, program, 8);
  const std::uint64_t echoes = result_word(state, program, 16);
  EXPECT_GE(tx_count, 256u);  // the spin loop waits for 256 echoes
  EXPECT_EQ(tx_count, echoes);
}

TEST(Interrupts, FastPathMatchesByteAccurateFunctional) {
  for (const char* name : {"timer", "echo", "timer@123", "echo@97"}) {
    SCOPED_TRACE(name);
    const arch::Program program = workloads::assemble_workload(name);
    arch::ArchState byte_state(program);
    const std::vector<RefStep> byte_stream =
        reference_stream(byte_state);

    const arch::DecodedProgram decoded(program);
    arch::ArchState fast_state(program, &decoded);
    const std::vector<RefStep> fast_stream =
        reference_stream(fast_state);

    ASSERT_EQ(byte_stream, fast_stream);
    EXPECT_EQ(byte_state.instructions_executed(),
              fast_state.instructions_executed());
    for (unsigned r = 0; r < isa::kNumLogicalRegs; ++r)
      EXPECT_EQ(byte_state.int_reg(r), fast_state.int_reg(r)) << "r" << r;
    EXPECT_TRUE(byte_state.device() == fast_state.device());
  }
}

TEST(Interrupts, PipelineCommitStreamMatchesFunctionalAllPolicies) {
  for (const char* name : {"timer", "echo"}) {
    const arch::Program program = workloads::assemble_workload(name);
    const std::vector<RefStep> reference = reference_stream(program);
    ASSERT_GT(reference.size(), 10'000u);

    for (const core::PolicyKind policy : core::all_policies()) {
      SCOPED_TRACE(std::string(name) + "/" +
                   std::string(core::policy_name(policy)));
      CommitRecorder rec;
      const sim::SimStats stats =
          sim::Simulator(irq_config(policy)).run(program, {&rec});
      EXPECT_TRUE(stats.halted);
      EXPECT_EQ(rec.stream, reference);
    }
  }
}

TEST(Interrupts, SampledShardedRegistriesAreBitIdentical) {
  const arch::Program program = workloads::assemble_workload("timer");
  sim::SamplingConfig s;
  s.period = 30'000;
  s.warmup = 2'000;
  s.detail = 6'000;

  sim::SimConfig config = irq_config(core::PolicyKind::Extended);
  s.threads = 1;
  const sim::SampledStats serial =
      sim::SampledSimulator(config, s).run(program);
  ASSERT_GT(serial.samples.size(), 1u);
  EXPECT_TRUE(serial.estimate.halted);

  s.threads = 3;
  const sim::SampledStats sharded =
      sim::SampledSimulator(config, s).run(program);
  EXPECT_EQ(serial.registry, sharded.registry);
  EXPECT_EQ(serial.total_instructions, sharded.total_instructions);
  EXPECT_EQ(serial.estimate.cycles, sharded.estimate.cycles);
}

TEST(Interrupts, CheckpointResumeMidHandlerCommitsIdenticalTail) {
  const arch::Program program = workloads::assemble_workload("timer");
  const std::uint64_t handler_pc = program.symbols.at("timer_isr");

  // Walk the reference until execution is inside the interrupt handler
  // (past its first instruction, so trap state — saved EPC, masked MIE —
  // is live), well into the run.
  arch::ArchState master(program);
  const std::vector<RefStep> reference = reference_stream(program);
  std::uint64_t skip = 0;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    if (i > 50'000 && reference[i].pc == handler_pc + 4) {
      skip = i;  // boundary before instruction i: mid-handler
      break;
    }
  }
  ASSERT_GT(skip, 0u) << "no handler activation found after 50k insts";
  master.run(skip);
  ASSERT_FALSE(master.halted());
  const arch::Checkpoint ckpt = arch::capture(master);
  ASSERT_FALSE(ckpt.dev.empty());  // trap state travels with the checkpoint

  for (const core::PolicyKind policy : core::all_policies()) {
    SCOPED_TRACE(core::policy_name(policy));
    CommitRecorder rec;
    pipeline::Core core(irq_config(policy), program, ckpt);
    core.attach_probe(&rec);
    const sim::SimStats stats = core.run();
    EXPECT_TRUE(stats.halted);
    ASSERT_EQ(rec.stream.size(), reference.size() - skip);
    for (std::size_t i = 0; i < rec.stream.size(); ++i) {
      ASSERT_EQ(rec.stream[i].pc, reference[skip + i].pc) << "commit " << i;
    }
  }
}

TEST(Interrupts, TrapStateCheckpointRoundTrips) {
  const arch::Program program = workloads::assemble_workload("echo");
  arch::ArchState state(program);
  state.run(100'000);
  ASSERT_FALSE(state.halted());
  const arch::Checkpoint ckpt = arch::capture(state);
  ASSERT_FALSE(ckpt.dev.empty());

  // Serialization round-trip (checkpoint format v2: device words section).
  const std::string path = testing::TempDir() + "irq_ckpt.erck";
  trace::save_checkpoint(path, ckpt);
  const arch::Checkpoint loaded = trace::load_checkpoint(path);
  std::remove(path.c_str());
  EXPECT_TRUE(loaded == ckpt);

  // A state restored from the round-tripped checkpoint finishes the run
  // exactly like the original: same stream, same device, same results.
  std::vector<RefStep> expected;
  while (!state.halted()) expected.push_back({state.step().pc});

  arch::ArchState resumed(program);
  arch::restore(loaded, resumed);
  std::vector<RefStep> actual;
  while (!resumed.halted()) actual.push_back({resumed.step().pc});
  EXPECT_EQ(actual, expected);
  EXPECT_TRUE(resumed.device() == state.device());
  EXPECT_EQ(result_word(resumed, program, 0), result_word(state, program, 0));
  EXPECT_EQ(result_word(resumed, program, 8), result_word(state, program, 8));
}

TEST(Interrupts, ParameterizedNamesResolveAndRejectGarbage) {
  // Valid: any decimal period >= 32, cached with stable addresses.
  const workloads::Workload* w = workloads::find_workload("timer@123");
  ASSERT_NE(w, nullptr);
  EXPECT_EQ(w->name, "timer@123");
  EXPECT_FALSE(w->is_fp);
  EXPECT_EQ(w, workloads::find_workload("timer@123"));  // same node
  EXPECT_NE(workloads::find_workload("echo@5000"), nullptr);

  // Rejected: missing/zero/too-short/non-numeric periods, unknown bases.
  for (const char* bad : {"timer@", "timer@0", "timer@5", "timer@31",
                          "timer@12x", "timer@-40", "nosuch@50", "@400",
                          "timer@99999999999"}) {
    SCOPED_TRACE(bad);
    EXPECT_EQ(workloads::find_workload(bad), nullptr);
  }

  // The registry itself still resolves, and unknown plain names still fail.
  EXPECT_NE(workloads::find_workload("timer"), nullptr);
  EXPECT_EQ(workloads::find_workload("timerx"), nullptr);
}

TEST(Interrupts, DeviceModelBasics) {
  // MMIO range classification.
  EXPECT_TRUE(dev::Machine::is_mmio(dev::Machine::kMmioBase));
  EXPECT_TRUE(
      dev::Machine::is_mmio(dev::Machine::kMmioBase + dev::Machine::kMmioBytes - 1));
  EXPECT_FALSE(dev::Machine::is_mmio(dev::Machine::kMmioBase - 1));
  EXPECT_FALSE(
      dev::Machine::is_mmio(dev::Machine::kMmioBase + dev::Machine::kMmioBytes));
  EXPECT_FALSE(dev::Machine::is_mmio(0));

  // A reset device is quiet (no events, nothing deliverable) and stays so
  // under sync; the first MMIO write arms it.
  dev::Machine m;
  EXPECT_TRUE(m.quiet());
  m.sync(1'000'000);
  EXPECT_FALSE(m.deliverable());

  // Program the PIT: vector, mask, reload, enable — then an event is due
  // exactly one period after the arming write's boundary.
  m.write(dev::Machine::kMmioBase + dev::Machine::kIntcVector, 0x4000, 8, 10);
  m.write(dev::Machine::kMmioBase + dev::Machine::kIntcMask, 1, 8, 10);
  m.write(dev::Machine::kMmioBase + dev::Machine::kPitReload, 100, 8, 10);
  m.write(dev::Machine::kMmioBase + dev::Machine::kIntcEnable, 1, 8, 10);
  EXPECT_FALSE(m.quiet());
  EXPECT_EQ(m.next_event(), 110u);
  m.sync(109);
  EXPECT_FALSE(m.deliverable());
  m.sync(110);
  ASSERT_TRUE(m.deliverable());
  EXPECT_EQ(m.deliver(0x1234), 0x4000u);
  EXPECT_EQ(m.epc(), 0x1234u);
  EXPECT_FALSE(m.deliverable());  // MIE masked during the handler
  EXPECT_EQ(m.iret(), 0x1234u);

  // Save/load round-trip preserves equality; load({}) resets.
  const std::vector<std::uint64_t> words = m.save();
  dev::Machine copy;
  copy.load(words);
  EXPECT_TRUE(copy == m);
  copy.load({});
  EXPECT_TRUE(copy == dev::Machine{});
}

}  // namespace
}  // namespace erel
