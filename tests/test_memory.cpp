// SparseMemory: paging, zero-fill, block writes, alignment.
#include <gtest/gtest.h>

#include "arch/memory.hpp"
#include "common/bits.hpp"

namespace erel::arch {
namespace {

TEST(SparseMemory, ReadsZeroBeforeAnyWrite) {
  SparseMemory mem;
  EXPECT_EQ(mem.read_u64(0x1000), 0u);
  EXPECT_EQ(mem.read_u8(0xdeadbee0), 0u);
  EXPECT_EQ(mem.resident_pages(), 0u);  // reads must not materialize pages
}

TEST(SparseMemory, WriteReadRoundTripAllSizes) {
  SparseMemory mem;
  mem.write(0x100, 0xAB, 1);
  mem.write(0x102, 0xBEEF, 2);
  mem.write(0x104, 0xCAFEBABE, 4);
  mem.write(0x108, 0x0123456789abcdefull, 8);
  EXPECT_EQ(mem.read(0x100, 1), 0xABu);
  EXPECT_EQ(mem.read(0x102, 2), 0xBEEFu);
  EXPECT_EQ(mem.read(0x104, 4), 0xCAFEBABEu);
  EXPECT_EQ(mem.read(0x108, 8), 0x0123456789abcdefull);
}

TEST(SparseMemory, ByteWritesComposeLittleEndian) {
  SparseMemory mem;
  for (unsigned i = 0; i < 8; ++i) mem.write(0x200 + i, 0x10 + i, 1);
  EXPECT_EQ(mem.read_u64(0x200), 0x1716151413121110ull);
}

TEST(SparseMemory, NarrowWriteLeavesNeighborsIntact) {
  SparseMemory mem;
  mem.write(0x300, ~0ull, 8);
  mem.write(0x302, 0, 2);
  EXPECT_EQ(mem.read_u64(0x300), 0xFFFFFFFF0000FFFFull);
}

TEST(SparseMemory, BlockWriteSpansPages) {
  SparseMemory mem;
  std::vector<std::uint8_t> bytes(SparseMemory::kPageBytes + 64);
  for (std::size_t i = 0; i < bytes.size(); ++i)
    bytes[i] = static_cast<std::uint8_t>(i);
  const std::uint64_t base = SparseMemory::kPageBytes - 32;  // crosses a page
  mem.write_block(base, bytes);
  EXPECT_EQ(mem.resident_pages(), 3u);
  for (std::size_t i = 0; i < bytes.size(); ++i)
    ASSERT_EQ(mem.read_u8(base + i), bytes[i]) << i;
}

TEST(SparseMemory, DistinctPagesAreIndependent) {
  SparseMemory mem;
  mem.write(0x0, 0x11, 1);
  mem.write(SparseMemory::kPageBytes, 0x22, 1);
  EXPECT_EQ(mem.read_u8(0x0), 0x11u);
  EXPECT_EQ(mem.read_u8(SparseMemory::kPageBytes), 0x22u);
  EXPECT_EQ(mem.resident_pages(), 2u);
}

TEST(SparseMemoryDeath, UnalignedAccessAborts) {
  SparseMemory mem;
  EXPECT_DEATH((void)mem.read(0x101, 8), "unaligned");
  EXPECT_DEATH(mem.write(0x102, 0, 4), "unaligned");
}

// --- page-pointer cache (software TLB) -----------------------------------

TEST(SparseMemoryTlb, ConflictingSlotsStayCoherent) {
  // Pages whose indexes differ by the TLB slot count map to the same
  // direct-mapped slot; ping-ponging between them must always read the
  // right page.
  SparseMemory mem;
  const std::uint64_t a = 0;
  const std::uint64_t b = 64 * SparseMemory::kPageBytes;   // same slot as a
  const std::uint64_t c = 128 * SparseMemory::kPageBytes;  // same slot again
  mem.write(a, 0xAAAAAAAAull, 4);
  mem.write(b, 0xBBBBBBBBull, 4);
  mem.write(c, 0xCCCCCCCCull, 4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(mem.read(a, 4), 0xAAAAAAAAull);
    EXPECT_EQ(mem.read(b, 4), 0xBBBBBBBBull);
    EXPECT_EQ(mem.read(c, 4), 0xCCCCCCCCull);
  }
}

TEST(SparseMemoryTlb, AbsentPageReadIsNotCachedStale) {
  // A read of an untouched page returns 0 and must not cache "absent":
  // when a later write materializes the page, reads must see it.
  SparseMemory mem;
  EXPECT_EQ(mem.read(0x4000, 8), 0u);
  EXPECT_EQ(mem.resident_pages(), 0u);
  mem.write(0x4000, 0x1234, 8);
  EXPECT_EQ(mem.read(0x4000, 8), 0x1234u);
}

TEST(SparseMemoryTlb, ClearInvalidatesCachedPointers) {
  SparseMemory mem;
  mem.write(0x1000, 0xFF, 1);
  EXPECT_EQ(mem.read_u8(0x1000), 0xFFu);  // TLB now holds the page
  mem.clear();
  EXPECT_EQ(mem.resident_pages(), 0u);
  EXPECT_EQ(mem.read_u8(0x1000), 0u);  // must not read through a stale slot
  mem.write(0x1000, 0x42, 1);
  EXPECT_EQ(mem.read_u8(0x1000), 0x42u);
}

TEST(SparseMemoryTlb, DisabledTlbIsEquivalent) {
  SparseMemory fast;
  SparseMemory slow;
  slow.set_tlb_enabled(false);
  Xorshift rng(7);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t addr = (rng.next() % (1u << 20)) & ~std::uint64_t{7};
    if (rng.chance(0.5)) {
      const std::uint64_t v = rng.next();
      fast.write(addr, v, 8);
      slow.write(addr, v, 8);
    } else {
      EXPECT_EQ(fast.read(addr, 8), slow.read(addr, 8)) << addr;
    }
  }
  EXPECT_EQ(fast.resident_pages(), slow.resident_pages());
}

TEST(SparseMemoryTlb, SnapshotMatchesPageBases) {
  SparseMemory mem;
  mem.write(5 * SparseMemory::kPageBytes, 1, 1);
  mem.write(1 * SparseMemory::kPageBytes, 2, 1);
  mem.write(9 * SparseMemory::kPageBytes, 3, 1);
  const auto snapshot = mem.pages_snapshot();
  const auto bases = mem.page_bases();
  ASSERT_EQ(snapshot.size(), bases.size());
  for (std::size_t i = 0; i < bases.size(); ++i) {
    EXPECT_EQ(snapshot[i].first, bases[i]);
    EXPECT_EQ(snapshot[i].second, mem.page_data(bases[i]));
  }
}

}  // namespace
}  // namespace erel::arch
