// SparseMemory: paging, zero-fill, block writes, alignment.
#include <gtest/gtest.h>

#include "arch/memory.hpp"

namespace erel::arch {
namespace {

TEST(SparseMemory, ReadsZeroBeforeAnyWrite) {
  SparseMemory mem;
  EXPECT_EQ(mem.read_u64(0x1000), 0u);
  EXPECT_EQ(mem.read_u8(0xdeadbee0), 0u);
  EXPECT_EQ(mem.resident_pages(), 0u);  // reads must not materialize pages
}

TEST(SparseMemory, WriteReadRoundTripAllSizes) {
  SparseMemory mem;
  mem.write(0x100, 0xAB, 1);
  mem.write(0x102, 0xBEEF, 2);
  mem.write(0x104, 0xCAFEBABE, 4);
  mem.write(0x108, 0x0123456789abcdefull, 8);
  EXPECT_EQ(mem.read(0x100, 1), 0xABu);
  EXPECT_EQ(mem.read(0x102, 2), 0xBEEFu);
  EXPECT_EQ(mem.read(0x104, 4), 0xCAFEBABEu);
  EXPECT_EQ(mem.read(0x108, 8), 0x0123456789abcdefull);
}

TEST(SparseMemory, ByteWritesComposeLittleEndian) {
  SparseMemory mem;
  for (unsigned i = 0; i < 8; ++i) mem.write(0x200 + i, 0x10 + i, 1);
  EXPECT_EQ(mem.read_u64(0x200), 0x1716151413121110ull);
}

TEST(SparseMemory, NarrowWriteLeavesNeighborsIntact) {
  SparseMemory mem;
  mem.write(0x300, ~0ull, 8);
  mem.write(0x302, 0, 2);
  EXPECT_EQ(mem.read_u64(0x300), 0xFFFFFFFF0000FFFFull);
}

TEST(SparseMemory, BlockWriteSpansPages) {
  SparseMemory mem;
  std::vector<std::uint8_t> bytes(SparseMemory::kPageBytes + 64);
  for (std::size_t i = 0; i < bytes.size(); ++i)
    bytes[i] = static_cast<std::uint8_t>(i);
  const std::uint64_t base = SparseMemory::kPageBytes - 32;  // crosses a page
  mem.write_block(base, bytes);
  EXPECT_EQ(mem.resident_pages(), 3u);
  for (std::size_t i = 0; i < bytes.size(); ++i)
    ASSERT_EQ(mem.read_u8(base + i), bytes[i]) << i;
}

TEST(SparseMemory, DistinctPagesAreIndependent) {
  SparseMemory mem;
  mem.write(0x0, 0x11, 1);
  mem.write(SparseMemory::kPageBytes, 0x22, 1);
  EXPECT_EQ(mem.read_u8(0x0), 0x11u);
  EXPECT_EQ(mem.read_u8(SparseMemory::kPageBytes), 0x22u);
  EXPECT_EQ(mem.resident_pages(), 2u);
}

TEST(SparseMemoryDeath, UnalignedAccessAborts) {
  SparseMemory mem;
  EXPECT_DEATH((void)mem.read(0x101, 8), "unaligned");
  EXPECT_DEATH(mem.write(0x102, 0, 4), "unaligned");
}

}  // namespace
}  // namespace erel::arch
