// Assembler: syntax, label resolution, pseudo-instruction expansion, data
// directives and error reporting.
#include <gtest/gtest.h>

#include "arch/arch_state.hpp"
#include "asmkit/assembler.hpp"
#include "common/bits.hpp"
#include "isa/isa.hpp"

namespace erel::asmkit {
namespace {

using arch::Program;
using isa::DecodedInst;
using isa::Opcode;

DecodedInst inst_at(const Program& p, std::size_t index) {
  return isa::decode(p.code.at(index));
}

TEST(Assembler, BasicInstructionForms) {
  const Program p = assemble(R"(
main:
  add  r3, r4, r5
  addi r6, r7, -42
  lui  r8, 100
  ld   r9, 16(r10)
  sd   r11, -8(r12)
  fadd f1, f2, f3
  fabs f4, f5
  feq  r13, f6, f7
  halt
)");
  EXPECT_EQ(p.code.size(), 9u);
  DecodedInst i0 = inst_at(p, 0);
  EXPECT_EQ(i0.op, Opcode::ADD);
  EXPECT_EQ(i0.rd, 3);
  EXPECT_EQ(i0.rs1, 4);
  EXPECT_EQ(i0.rs2, 5);
  DecodedInst i1 = inst_at(p, 1);
  EXPECT_EQ(i1.op, Opcode::ADDI);
  EXPECT_EQ(i1.imm, -42);
  DecodedInst i3 = inst_at(p, 3);
  EXPECT_EQ(i3.op, Opcode::LD);
  EXPECT_EQ(i3.rd, 9);
  EXPECT_EQ(i3.rs1, 10);
  EXPECT_EQ(i3.imm, 16);
  DecodedInst i4 = inst_at(p, 4);
  EXPECT_EQ(i4.op, Opcode::SD);
  EXPECT_EQ(i4.rs1, 12);
  EXPECT_EQ(i4.rs2, 11);
  EXPECT_EQ(i4.imm, -8);
  DecodedInst i7 = inst_at(p, 7);
  EXPECT_EQ(i7.op, Opcode::FEQ);
  EXPECT_EQ(i7.rd, 13);
}

TEST(Assembler, BranchOffsetsResolveForwardAndBackward) {
  const Program p = assemble(R"(
top:
  addi r3, r3, 1
  beq  r3, r4, done
  b    top
done:
  halt
)");
  const DecodedInst beq = inst_at(p, 1);
  EXPECT_EQ(beq.op, Opcode::BEQ);
  EXPECT_EQ(beq.imm, 2);  // two instructions forward
  const DecodedInst jump = inst_at(p, 2);
  EXPECT_EQ(jump.op, Opcode::JAL);
  EXPECT_EQ(jump.rd, 0);
  EXPECT_EQ(jump.imm, -2);
}

TEST(Assembler, PseudoExpansions) {
  const Program p = assemble(R"(
  nop
  mv   r3, r4
  not  r5, r6
  neg  r7, r8
  ret
  call helper
helper:
  beqz r9, helper
  bnez r10, helper
  bgt  r3, r4, helper
  halt
)");
  EXPECT_EQ(inst_at(p, 0).op, Opcode::ADDI);   // nop
  EXPECT_EQ(inst_at(p, 1).op, Opcode::ADDI);   // mv
  EXPECT_EQ(inst_at(p, 2).op, Opcode::XORI);   // not
  EXPECT_EQ(inst_at(p, 2).imm, -1);
  EXPECT_EQ(inst_at(p, 3).op, Opcode::SUB);    // neg: sub rd, r0, rs
  EXPECT_EQ(inst_at(p, 3).rs1, 0);
  const DecodedInst ret = inst_at(p, 4);
  EXPECT_EQ(ret.op, Opcode::JALR);
  EXPECT_EQ(ret.rd, 0);
  EXPECT_EQ(ret.rs1, 1);
  const DecodedInst call = inst_at(p, 5);
  EXPECT_EQ(call.op, Opcode::JAL);
  EXPECT_EQ(call.rd, 1);
  const DecodedInst bgt = inst_at(p, 8);
  EXPECT_EQ(bgt.op, Opcode::BLT);  // operands swapped
  EXPECT_EQ(bgt.rs1, 4);
  EXPECT_EQ(bgt.rs2, 3);
}

TEST(Assembler, LiExpansionSizes) {
  // Small, 32-bit, and full 64-bit constants; each must load exactly.
  const std::int64_t values[] = {0,           42,         -42,
                                 8191,        -8192,      8192,
                                 0x12345678,  -0x1234567, INT64_C(0x123456789abcdef0),
                                 -1,          INT64_C(-0x7edcba9876543210)};
  for (const std::int64_t v : values) {
    const Program p =
        assemble("main:\n  li r3, " + std::to_string(v) + "\n  halt\n");
    arch::ArchState state(p);
    state.run();
    EXPECT_EQ(state.int_reg(3), static_cast<std::uint64_t>(v)) << v;
  }
}

TEST(Assembler, LaLoadsDataAddresses) {
  const Program p = assemble(R"(
main:
  la r3, buf
  la r4, second
  halt
.data
buf:    .space 24
second: .word 7
)");
  arch::ArchState state(p);
  state.run();
  EXPECT_EQ(state.int_reg(3), arch::kDefaultDataBase);
  EXPECT_EQ(state.int_reg(4), arch::kDefaultDataBase + 24);
}

TEST(Assembler, DataDirectives) {
  const Program p = assemble(R"(
main:
  halt
.data
w:   .word 1, 2, 3
d:   .dword 0x123456789abcdef0
f:   .double 1.5, -2.25
sp:  .space 5
al:  .align 8
fill:.fill 4, 0xab
     .align 8
ptr: .dword w
)");
  arch::ArchState state(p);
  const auto& mem = state.memory();
  const std::uint64_t base = arch::kDefaultDataBase;
  EXPECT_EQ(mem.read_u32(base), 1u);
  EXPECT_EQ(mem.read_u32(base + 4), 2u);
  EXPECT_EQ(mem.read_u32(base + 8), 3u);
  // The .dword at base+12 is intentionally unaligned in the image; compose
  // it from byte reads (the aligned accessors enforce natural alignment).
  std::uint64_t dword = 0;
  for (unsigned i = 0; i < 8; ++i)
    dword |= static_cast<std::uint64_t>(mem.read_u8(base + 12 + i)) << (8 * i);
  EXPECT_EQ(dword, 0x123456789abcdef0ull);
  auto read_unaligned_u64 = [&mem](std::uint64_t addr) {
    std::uint64_t v = 0;
    for (unsigned i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(mem.read_u8(addr + i)) << (8 * i);
    return v;
  };
  EXPECT_EQ(u2f(read_unaligned_u64(base + 20)), 1.5);
  EXPECT_EQ(u2f(read_unaligned_u64(base + 28)), -2.25);
  // .space 5 then .align 8: fill starts at the next 8-byte boundary.
  EXPECT_EQ(p.symbols.at("fill") % 8, 0u);
  EXPECT_EQ(mem.read_u8(p.symbols.at("fill")), 0xabu);
  EXPECT_EQ(mem.read_u64(p.symbols.at("ptr")), p.symbols.at("w"));
}

TEST(Assembler, CommentsAndBlankLines) {
  const Program p = assemble(R"(
# full-line comment
main:   ; another comment style
  addi r3, r3, 1   // trailing comment

  halt
)");
  EXPECT_EQ(p.code.size(), 2u);
}

TEST(Assembler, EntryPointDefaultsAndMain) {
  const Program with_main = assemble("  nop\nmain:\n  halt\n");
  EXPECT_EQ(with_main.entry, with_main.code_base + 4);
  const Program no_main = assemble("start_here:\n  halt\n");
  EXPECT_EQ(no_main.entry, no_main.code_base);
}

TEST(Assembler, RegisterAliases) {
  const Program p = assemble("main:\n  add r3, zero, ra\n  mv sp, r3\n  halt\n");
  EXPECT_EQ(inst_at(p, 0).rs1, 0);
  EXPECT_EQ(inst_at(p, 0).rs2, 1);
  EXPECT_EQ(inst_at(p, 1).rd, 2);
}

// ---- error paths: the assembler must report, not crash ----

TEST(AssemblerErrors, UnknownMnemonic) {
  EXPECT_THROW(assemble("  frobnicate r1, r2\n"), AsmError);
}

TEST(AssemblerErrors, UndefinedLabel) {
  EXPECT_THROW(assemble("  beq r1, r2, nowhere\n  halt\n"), AsmError);
}

TEST(AssemblerErrors, DuplicateLabel) {
  EXPECT_THROW(assemble("a:\n  nop\na:\n  halt\n"), AsmError);
}

TEST(AssemblerErrors, ImmediateOutOfRange) {
  EXPECT_THROW(assemble("  addi r1, r2, 9000\n"), AsmError);
  EXPECT_THROW(assemble("  addi r1, r2, -9000\n"), AsmError);
}

TEST(AssemblerErrors, WrongRegisterClass) {
  EXPECT_THROW(assemble("  add r1, f2, r3\n"), AsmError);
  EXPECT_THROW(assemble("  fadd f1, r2, f3\n"), AsmError);
}

TEST(AssemblerErrors, BadRegisterNumber) {
  EXPECT_THROW(assemble("  add r1, r2, r32\n"), AsmError);
}

TEST(AssemblerErrors, WrongOperandCount) {
  EXPECT_THROW(assemble("  add r1, r2\n"), AsmError);
  EXPECT_THROW(assemble("  halt r1\n"), AsmError);
}

TEST(AssemblerErrors, InstructionInDataSection) {
  EXPECT_THROW(assemble(".data\n  add r1, r2, r3\n"), AsmError);
}

TEST(AssemblerErrors, DataDirectiveInText) {
  EXPECT_THROW(assemble("  .word 5\n"), AsmError);
}

TEST(AssemblerErrors, BadMemOperand) {
  EXPECT_THROW(assemble("  ld r1, r2\n"), AsmError);
}

TEST(AssemblerErrors, ReportsMultipleErrorsWithLineNumbers) {
  try {
    assemble("  bogus1 r1\n  nop\n  bogus2 r2\n");
    FAIL() << "expected AsmError";
  } catch (const AsmError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 1"), std::string::npos) << what;
    EXPECT_NE(what.find("line 3"), std::string::npos) << what;
  }
}

}  // namespace
}  // namespace erel::asmkit
