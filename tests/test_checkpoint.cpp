// Architectural checkpoints: memory/register capture+restore, serialization,
// and the determinism guarantee sampled simulation rests on — a detailed
// core resumed from a checkpoint commits the identical instruction stream an
// uninterrupted run commits from that point on.
#include <gtest/gtest.h>

#include <cstdio>
#include <vector>

#include "arch/arch_state.hpp"
#include "arch/checkpoint.hpp"
#include "asmkit/assembler.hpp"
#include "pipeline/core.hpp"
#include "sim/simulator.hpp"
#include "trace/checkpoint_io.hpp"
#include "workloads/workloads.hpp"

namespace erel {
namespace {

TEST(Checkpoint, MemoryCaptureRestore) {
  arch::SparseMemory mem;
  mem.write(0x1000, 0x1122334455667788ull, 8);
  mem.write(0x7fff000, 0xabcd, 2);
  arch::Checkpoint ckpt;
  arch::capture_memory(mem, ckpt);
  EXPECT_EQ(ckpt.pages.size(), 2u);

  mem.write(0x1000, 0, 8);          // clobber
  mem.write(0x900000, 42, 4);       // extra page that must disappear
  arch::restore_memory(ckpt, mem);
  EXPECT_EQ(mem.read(0x1000, 8), 0x1122334455667788ull);
  EXPECT_EQ(mem.read(0x7fff000, 2), 0xabcdu);
  EXPECT_EQ(mem.read(0x900000, 4), 0u);
  EXPECT_EQ(mem.resident_pages(), 2u);
}

TEST(Checkpoint, ArchStateResumeIsDeterministic) {
  const arch::Program program = workloads::assemble_workload("li");
  arch::ArchState reference(program);
  reference.run(1000);
  ASSERT_FALSE(reference.halted());
  const arch::Checkpoint ckpt = arch::capture(reference);
  EXPECT_EQ(ckpt.icount, 1000u);

  // Continue the reference, recording its PC stream to completion.
  std::vector<std::uint64_t> expected;
  while (!reference.halted()) expected.push_back(reference.step().pc);

  // A fresh state restored from the checkpoint replays it exactly.
  arch::ArchState resumed(program);
  arch::restore(ckpt, resumed);
  EXPECT_EQ(resumed.pc(), ckpt.pc);
  EXPECT_EQ(resumed.instructions_executed(), 1000u);
  std::vector<std::uint64_t> actual;
  while (!resumed.halted()) actual.push_back(resumed.step().pc);
  EXPECT_EQ(actual, expected);
  EXPECT_EQ(resumed.instructions_executed(), reference.instructions_executed());
  for (unsigned r = 0; r < isa::kNumLogicalRegs; ++r) {
    EXPECT_EQ(resumed.int_reg(r), reference.int_reg(r));
    EXPECT_EQ(resumed.fp_reg(r), reference.fp_reg(r));
  }
}

namespace {

/// Probe recording commit events (the successor of the old config.trace
/// hook); the inst/rec pointers die with the callback, so they are nulled.
struct CommitRecorder final : sim::Probe {
  std::vector<sim::CommitEvent>& out;
  explicit CommitRecorder(std::vector<sim::CommitEvent>& o) : out(o) {}
  void on_commit(const sim::CommitEvent& ev) override {
    sim::CommitEvent copy = ev;
    copy.inst = nullptr;
    copy.rec = nullptr;
    out.push_back(copy);
  }
};

}  // namespace

TEST(Checkpoint, CoreResumeCommitsIdenticalStream) {
  const arch::Program program = workloads::assemble_workload("li");
  sim::SimConfig config;
  config.policy = core::PolicyKind::Extended;
  config.phys_int = config.phys_fp = 48;
  config.check_oracle = true;

  // Uninterrupted detailed run.
  std::vector<sim::CommitEvent> full;
  {
    CommitRecorder recorder(full);
    sim::Simulator(config).run(program, {&recorder});
  }
  constexpr std::uint64_t kSkip = 5000;
  ASSERT_GT(full.size(), kSkip);

  // Functional fast-forward to kSkip instructions, then a detailed core
  // resumed from the checkpoint. check_oracle stays on: every committed
  // value is co-validated against the restored functional state.
  arch::ArchState master(program);
  master.run(kSkip);
  const arch::Checkpoint ckpt = arch::capture(master);

  std::vector<sim::CommitEvent> resumed;
  CommitRecorder recorder(resumed);
  pipeline::Core core(config, program, ckpt);
  core.attach_probe(&recorder);
  const sim::SimStats stats = core.run();
  EXPECT_TRUE(stats.halted);

  // The resumed commit stream is exactly the uninterrupted run's tail.
  ASSERT_EQ(resumed.size(), full.size() - kSkip);
  for (std::size_t i = 0; i < resumed.size(); ++i) {
    EXPECT_EQ(resumed[i].pc, full[kSkip + i].pc) << "commit " << i;
    EXPECT_EQ(resumed[i].encoding, full[kSkip + i].encoding) << "commit " << i;
  }
}

TEST(Checkpoint, ResumedCoreReadsCheckpointedRegisters) {
  // A program whose tail stores registers defined before the checkpoint:
  // the resumed core must observe the checkpointed values, not zeros.
  const arch::Program program = asmkit::assemble(R"(
main:
  li   r5, 1234
  li   r6, 5678
  add  r7, r5, r6
  la   r8, result
  sd   r7, 0(r8)
  halt
.data
result: .dword 0
)");
  arch::ArchState master(program);
  master.run(3);  // past the defining instructions, before the store
  const arch::Checkpoint ckpt = arch::capture(master);

  sim::SimConfig config;
  config.check_oracle = true;
  pipeline::Core core(config, program, ckpt);
  core.run();
  const std::uint64_t result_addr = program.symbols.at("result");
  EXPECT_EQ(core.memory().read(result_addr, 8), 1234u + 5678u);
}

TEST(Checkpoint, SerializationRoundTrips) {
  const std::string path = testing::TempDir() + "ckpt.erck";
  const arch::Program program = workloads::assemble_workload("compress");
  arch::ArchState state(program);
  state.run(2500);
  const arch::Checkpoint ckpt = arch::capture(state);
  trace::save_checkpoint(path, ckpt);
  const arch::Checkpoint loaded = trace::load_checkpoint(path);
  EXPECT_TRUE(loaded == ckpt);
  std::remove(path.c_str());
}

TEST(Checkpoint, HaltedStateRoundTrips) {
  const arch::Program program = asmkit::assemble("main:\n  li r1, 1\n  halt\n");
  arch::ArchState state(program);
  state.run();
  ASSERT_TRUE(state.halted());
  const arch::Checkpoint ckpt = arch::capture(state);
  EXPECT_TRUE(ckpt.halted);

  arch::ArchState resumed(program);
  arch::restore(ckpt, resumed);
  EXPECT_TRUE(resumed.halted());
  const arch::StepInfo info = resumed.step();  // frozen
  EXPECT_TRUE(info.halted);
  EXPECT_EQ(resumed.int_reg(1), 1u);
}

}  // namespace
}  // namespace erel
