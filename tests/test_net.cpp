// The framed-message layer (src/net/) and the daemon wire protocol
// (service/protocol.hpp): frame round-trips incl. the size limits,
// truncated/garbage rejection, every message type's encode/decode, and a
// loopback socket round-trip.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "net/frame.hpp"
#include "net/socket.hpp"
#include "service/protocol.hpp"

namespace erel {
namespace {

using net::Frame;
using net::FrameDecoder;

Frame decode_one(const std::string& bytes) {
  FrameDecoder decoder;
  decoder.feed(bytes);
  Frame frame;
  EXPECT_EQ(decoder.next(frame), FrameDecoder::Status::kFrame);
  return frame;
}

// ---------------------------------------------------------------------------
// Frames
// ---------------------------------------------------------------------------

TEST(Frame, RoundTripsTypedPayload) {
  const Frame in{42, "hello, wire"};
  const Frame out = decode_one(net::encode_frame(in));
  EXPECT_EQ(out.type, 42);
  EXPECT_EQ(out.payload, "hello, wire");
}

TEST(Frame, RoundTripsZeroLengthPayload) {
  const Frame out = decode_one(net::encode_frame(Frame{7, ""}));
  EXPECT_EQ(out.type, 7);
  EXPECT_TRUE(out.payload.empty());
}

TEST(Frame, RoundTripsMaxSizePayload) {
  std::string big(net::kMaxFramePayload, '\0');
  for (std::size_t i = 0; i < big.size(); i += 4096)
    big[i] = static_cast<char>(i * 31);
  const Frame out = decode_one(net::encode_frame(Frame{1, big}));
  EXPECT_EQ(out.payload.size(), net::kMaxFramePayload);
  EXPECT_EQ(out.payload, big);
}

TEST(Frame, RoundTripsBinaryPayloadBytes) {
  std::string payload;
  for (int i = 0; i < 256; ++i) payload.push_back(static_cast<char>(i));
  EXPECT_EQ(decode_one(net::encode_frame(Frame{3, payload})).payload, payload);
}

TEST(Frame, DecoderReassemblesByteAtATime) {
  const std::string bytes = net::encode_frame(Frame{9, "split me"});
  FrameDecoder decoder;
  Frame frame;
  for (std::size_t i = 0; i + 1 < bytes.size(); ++i) {
    decoder.feed(std::string_view(&bytes[i], 1));
    EXPECT_EQ(decoder.next(frame), FrameDecoder::Status::kNeedMore);
    EXPECT_TRUE(decoder.mid_frame());
  }
  decoder.feed(std::string_view(&bytes[bytes.size() - 1], 1));
  ASSERT_EQ(decoder.next(frame), FrameDecoder::Status::kFrame);
  EXPECT_EQ(frame.payload, "split me");
  EXPECT_FALSE(decoder.mid_frame());
}

TEST(Frame, DecoderDrainsBackToBackFrames) {
  FrameDecoder decoder;
  decoder.feed(net::encode_frame(Frame{1, "a"}) +
               net::encode_frame(Frame{2, "bb"}));
  Frame frame;
  ASSERT_EQ(decoder.next(frame), FrameDecoder::Status::kFrame);
  EXPECT_EQ(frame.type, 1);
  ASSERT_EQ(decoder.next(frame), FrameDecoder::Status::kFrame);
  EXPECT_EQ(frame.payload, "bb");
  EXPECT_EQ(decoder.next(frame), FrameDecoder::Status::kNeedMore);
}

TEST(Frame, TruncatedFrameIsNeedMoreNotError) {
  const std::string bytes = net::encode_frame(Frame{5, "truncated"});
  FrameDecoder decoder;
  decoder.feed(bytes.substr(0, bytes.size() - 3));
  Frame frame;
  EXPECT_EQ(decoder.next(frame), FrameDecoder::Status::kNeedMore);
  EXPECT_TRUE(decoder.mid_frame());  // EOF here would be a torn connection
}

TEST(Frame, GarbageMagicPoisonsTheDecoder) {
  FrameDecoder decoder;
  decoder.feed("GET / HTTP/1.1\r\n\r\n");
  Frame frame;
  EXPECT_EQ(decoder.next(frame), FrameDecoder::Status::kError);
  EXPECT_TRUE(decoder.poisoned());
  // Feeding valid bytes afterwards cannot resynchronize a poisoned stream.
  decoder.feed(net::encode_frame(Frame{1, "late"}));
  EXPECT_EQ(decoder.next(frame), FrameDecoder::Status::kError);
}

TEST(Frame, OversizeLengthHeaderIsRejected) {
  std::string bytes = net::encode_frame(Frame{1, "x"});
  // Rewrite the length field (bytes 5..8, little-endian) to max+1.
  const std::uint32_t bad = net::kMaxFramePayload + 1;
  for (int i = 0; i < 4; ++i)
    bytes[5 + i] = static_cast<char>((bad >> (8 * i)) & 0xff);
  FrameDecoder decoder;
  decoder.feed(bytes);
  Frame frame;
  EXPECT_EQ(decoder.next(frame), FrameDecoder::Status::kError);
}

// ---------------------------------------------------------------------------
// Endpoints and loopback sockets
// ---------------------------------------------------------------------------

TEST(Endpoint, ParsesHostColonPort) {
  const auto ep = net::parse_endpoint("127.0.0.1:7431");
  ASSERT_TRUE(ep.has_value());
  EXPECT_EQ(ep->first, "127.0.0.1");
  EXPECT_EQ(ep->second, 7431);
}

TEST(Endpoint, RejectsMalformedSpecs) {
  EXPECT_FALSE(net::parse_endpoint("nohost"));
  EXPECT_FALSE(net::parse_endpoint(":7431"));
  EXPECT_FALSE(net::parse_endpoint("host:"));
  EXPECT_FALSE(net::parse_endpoint("host:0"));
  EXPECT_FALSE(net::parse_endpoint("host:70000"));
  EXPECT_FALSE(net::parse_endpoint("host:12x"));
}

TEST(Socket, LoopbackFrameRoundTripAndCleanEof) {
  net::Listener listener("127.0.0.1", 0);
  ASSERT_TRUE(listener.valid()) << listener.error();
  ASSERT_NE(listener.port(), 0);

  std::thread server([&listener] {
    net::Socket peer = listener.accept_client();
    ASSERT_TRUE(peer.valid());
    const std::optional<Frame> frame = peer.recv_frame();
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->type, 11);
    ASSERT_TRUE(peer.send_frame(Frame{12, "pong:" + frame->payload}));
    // Destructor closes: the client should observe a clean EOF.
  });

  std::string error;
  net::Socket client = net::connect_to("127.0.0.1", listener.port(), &error);
  ASSERT_TRUE(client.valid()) << error;
  ASSERT_TRUE(client.send_frame(Frame{11, "ping"}));
  const std::optional<Frame> reply = client.recv_frame();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->payload, "pong:ping");
  bool clean_eof = false;
  EXPECT_FALSE(client.recv_frame(&clean_eof).has_value());
  EXPECT_TRUE(clean_eof);
  server.join();
}

// ---------------------------------------------------------------------------
// Protocol payloads: every message type round-trips
// ---------------------------------------------------------------------------

service::CellRequest sample_request() {
  service::CellRequest request;
  request.id = 17;
  request.key = harness::ExpKey{"li", core::PolicyKind::Extended, 48,
                                "ros=64,lsq=32"};
  request.workload = "li";
  request.fingerprint_hex = "0123456789abcdef";
  request.config.policy = core::PolicyKind::Extended;
  request.config.phys_int = request.config.phys_fp = 48;
  request.config.max_instructions = 20'000;
  request.config.check_oracle = false;
  request.probe_names = {"power"};
  request.stat_stride = 500;
  return request;
}

TEST(Protocol, CellRequestRoundTrips) {
  const service::CellRequest in = sample_request();
  const auto out = service::decode_cell_request(service::encode_cell_request(in));
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->id, in.id);
  EXPECT_EQ(out->key, in.key);
  EXPECT_EQ(out->workload, in.workload);
  EXPECT_EQ(out->fingerprint_hex, in.fingerprint_hex);
  EXPECT_EQ(out->probe_names, in.probe_names);
  EXPECT_EQ(out->stat_stride, in.stat_stride);
  EXPECT_FALSE(out->sampling.has_value());
  // The canonical rendering is the fingerprint input: identical rendering
  // means the decoded config is the same cell.
  std::string canon_in, canon_out;
  sim::append_canonical_fields(in.config, canon_in);
  sim::append_canonical_fields(out->config, canon_out);
  EXPECT_EQ(canon_in, canon_out);
}

TEST(Protocol, CellRequestRoundTripsSamplingAndEmptyVariant) {
  service::CellRequest in = sample_request();
  in.key.variant.clear();
  in.probe_names.clear();
  sim::SamplingConfig sampling;
  sampling.period = 30'000;
  sampling.warmup = 1'000;
  sampling.detail = 5'000;
  sampling.placement = sim::Placement::kStratified;
  sampling.target_ci = 0.015;
  in.sampling = sampling;
  const auto out = service::decode_cell_request(service::encode_cell_request(in));
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->key, in.key);
  ASSERT_TRUE(out->sampling.has_value());
  std::string canon_in, canon_out;
  sim::append_canonical_fields(*in.sampling, canon_in);
  sim::append_canonical_fields(*out->sampling, canon_out);
  EXPECT_EQ(canon_in, canon_out);  // includes the %a-rendered target_ci
}

TEST(Protocol, CellRequestRejectsMalformedPayloads) {
  const std::string good = service::encode_cell_request(sample_request());
  EXPECT_FALSE(service::decode_cell_request(""));
  EXPECT_FALSE(service::decode_cell_request("erel-cell v1\nend\n"));
  EXPECT_FALSE(service::decode_cell_request("erel-cell v2\n" +
                                            good.substr(good.find('\n') + 1)));
  // Truncation: no "end" terminator.
  EXPECT_FALSE(service::decode_cell_request(good.substr(0, good.size() - 4)));
  // Unknown lines are rejected, never skipped.
  std::string unknown = good;
  unknown.insert(unknown.find("end\n"), "mystery_field 7\n");
  EXPECT_FALSE(service::decode_cell_request(unknown));
  // Duplicated singleton field.
  std::string dup = good;
  dup.insert(dup.find("end\n"), "id 99\n");
  EXPECT_FALSE(service::decode_cell_request(dup));
  // Corrupt config field value.
  std::string bad_cfg = good;
  const std::size_t pos = bad_cfg.find("cfg.phys_int=");
  bad_cfg.replace(pos, std::string("cfg.phys_int=48").size(),
                  "cfg.phys_int=-48");
  EXPECT_FALSE(service::decode_cell_request(bad_cfg));
}

TEST(Protocol, ResultAndErrorRoundTrip) {
  const service::ResultMsg msg{23, true, "erel-result v1\n...entry...\nend\n"};
  const auto out = service::decode_result(service::encode_result(msg));
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->id, 23u);
  EXPECT_TRUE(out->cached);
  EXPECT_EQ(out->entry_text, msg.entry_text);
  EXPECT_FALSE(service::decode_result("id 1\n"));          // no entry text
  EXPECT_FALSE(service::decode_result("cached 1\nid 1\nx"));  // wrong order

  const service::ErrorMsg err{7, "fingerprint mismatch: details here"};
  const auto err_out = service::decode_error(service::encode_error(err));
  ASSERT_TRUE(err_out.has_value());
  EXPECT_EQ(err_out->id, 7u);
  EXPECT_EQ(err_out->message, err.message);
}

TEST(Protocol, SubscribeAndUpdateRoundTrip) {
  const service::SubscribeMsg sub{"0123456789abcdef", "channel/commit/committed"};
  const auto sub_out = service::decode_subscribe(service::encode_subscribe(sub));
  ASSERT_TRUE(sub_out.has_value());
  EXPECT_EQ(sub_out->fingerprint_hex, sub.fingerprint_hex);
  EXPECT_EQ(sub_out->channel, sub.channel);
  EXPECT_FALSE(service::decode_subscribe("fp abc\n"));  // missing channel

  service::UpdateMsg update{"0123456789abcdef", "channel/commit/committed",
                            500, 12, true,
                            {0.0, 1.5, -3.25, 0.1, 1e-17, 123456.75}};
  const auto out = service::decode_update(service::encode_update(update));
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->fingerprint_hex, update.fingerprint_hex);
  EXPECT_EQ(out->channel, update.channel);
  EXPECT_EQ(out->stride, 500u);
  EXPECT_EQ(out->first, 12u);
  EXPECT_TRUE(out->final_update);
  EXPECT_EQ(out->points, update.points);  // %.17g: bit-exact doubles

  service::UpdateMsg empty = update;
  empty.points.clear();
  empty.final_update = false;
  const auto empty_out = service::decode_update(service::encode_update(empty));
  ASSERT_TRUE(empty_out.has_value());
  EXPECT_TRUE(empty_out->points.empty());
  EXPECT_FALSE(empty_out->final_update);

  // A short point list (count promises more than present) is truncation.
  std::string torn = service::encode_update(update);
  torn.resize(torn.rfind('\n', torn.size() - 2));
  EXPECT_FALSE(service::decode_update(torn));
}

TEST(Protocol, EveryMsgTypeHasAName) {
  // One assertion per enumerator: adding a MsgType without extending
  // msg_type_name() (and this test) is an erel-lint protocol-complete
  // finding, so new message types can't land half-wired.
  using service::MsgType;
  using service::msg_type_name;
  EXPECT_EQ(msg_type_name(MsgType::kHello), "hello");
  EXPECT_EQ(msg_type_name(MsgType::kRunCell), "run_cell");
  EXPECT_EQ(msg_type_name(MsgType::kResult), "result");
  EXPECT_EQ(msg_type_name(MsgType::kError), "error");
  EXPECT_EQ(msg_type_name(MsgType::kSubscribe), "subscribe");
  EXPECT_EQ(msg_type_name(MsgType::kUpdate), "update");
  EXPECT_EQ(msg_type_name(MsgType::kPing), "ping");
  EXPECT_EQ(msg_type_name(MsgType::kPong), "pong");
  EXPECT_EQ(msg_type_name(MsgType::kStats), "stats");
  EXPECT_EQ(msg_type_name(MsgType::kStatsReply), "stats_reply");
  EXPECT_EQ(msg_type_name(MsgType::kShutdown), "shutdown");
  EXPECT_EQ(msg_type_name(MsgType::kCancel), "cancel");
  EXPECT_EQ(msg_type_name(MsgType::kBusy), "busy");
  EXPECT_EQ(msg_type_name(static_cast<MsgType>(0)), "unknown");
  EXPECT_EQ(msg_type_name(static_cast<MsgType>(200)), "unknown");

  // Names are distinct (they appear in error messages; two tags sharing a
  // name would make those messages ambiguous).
  std::vector<std::string_view> names;
  for (std::uint8_t raw = 1; raw <= 13; ++raw)
    names.push_back(msg_type_name(static_cast<MsgType>(raw)));
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::adjacent_find(names.begin(), names.end()), names.end());
}

TEST(Protocol, DaemonStatsRoundTrip) {
  const service::DaemonStats stats{100, 40, 55, 5,  2, 3, 77,
                                   1,   9,  4,  11, 6, 2};
  const auto out = service::decode_stats(service::encode_stats(stats));
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, stats);
  EXPECT_FALSE(service::decode_stats("requests 1\n"));       // missing fields
  EXPECT_FALSE(service::decode_stats(
      service::encode_stats(stats) + "extra 1\n"));          // unknown field
}

TEST(Protocol, CancelAndBusyRoundTrip) {
  const service::CancelMsg cancel{42};
  const auto cancel_out =
      service::decode_cancel(service::encode_cancel(cancel));
  ASSERT_TRUE(cancel_out.has_value());
  EXPECT_EQ(cancel_out->id, 42u);
  EXPECT_FALSE(service::decode_cancel(""));                  // missing id
  EXPECT_FALSE(service::decode_cancel("id 1\nid 2\n"));      // duplicate
  EXPECT_FALSE(service::decode_cancel("id 1\nextra 0\n"));   // trailing junk

  const service::BusyMsg busy{42, 250};
  const auto busy_out = service::decode_busy(service::encode_busy(busy));
  ASSERT_TRUE(busy_out.has_value());
  EXPECT_EQ(busy_out->id, 42u);
  EXPECT_EQ(busy_out->retry_ms, 250u);
  EXPECT_FALSE(service::decode_busy("id 1\n"));              // missing hint
  EXPECT_FALSE(service::decode_busy("retry_ms 10\nid 1\n")); // wrong order
}

}  // namespace
}  // namespace erel
