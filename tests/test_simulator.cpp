// Simulator facade and configuration description; disassembler round-trips
// over whole workload programs.
#include <gtest/gtest.h>

#include "asmkit/assembler.hpp"
#include "isa/isa.hpp"
#include "sim/simulator.hpp"
#include "workloads/workloads.hpp"

namespace erel {
namespace {

TEST(Simulator, DescribeContainsTable2Lines) {
  const std::string text = sim::describe_config(sim::SimConfig{});
  for (const char* fragment :
       {"8 instructions (up to 2 taken branches)",
        "18-bit gshare, speculative updates, up to 20 pending branches",
        "128 entries", "8 simple int (1)",
        "64 entries with store-load forwarding",
        "unbounded size, 50-cycle access"}) {
    EXPECT_NE(text.find(fragment), std::string::npos) << fragment;
  }
}

TEST(Simulator, FormatStatsContainsHeadlineNumbers) {
  sim::SimConfig config;
  config.policy = core::PolicyKind::Extended;
  config.phys_int = config.phys_fp = 48;
  const sim::SimStats stats =
      sim::Simulator(config).run(workloads::assemble_workload("go"));
  const std::string report = sim::format_stats(stats);
  EXPECT_NE(report.find("IPC"), std::string::npos);
  EXPECT_NE(report.find("halted"), std::string::npos);
  EXPECT_NE(report.find("early@LU"), std::string::npos);
  EXPECT_NE(report.find("occupancy"), std::string::npos);
  EXPECT_NE(report.find(std::to_string(stats.committed)), std::string::npos);
}

TEST(Simulator, FacadeRunsToCompletion) {
  sim::SimConfig config;
  config.policy = core::PolicyKind::Extended;
  config.phys_int = config.phys_fp = 48;
  const sim::SimStats stats =
      sim::Simulator(config).run(workloads::assemble_workload("li"));
  EXPECT_TRUE(stats.halted);
  EXPECT_GT(stats.ipc(), 0.5);
}

TEST(Simulator, MakeCoreIsIndependentPerCall) {
  sim::SimConfig config;
  config.phys_int = config.phys_fp = 48;
  sim::Simulator simulator(config);
  const arch::Program program = workloads::assemble_workload("go");
  auto a = simulator.make_core(program);
  auto b = simulator.make_core(program);
  a->tick();
  a->tick();
  EXPECT_EQ(b->cycle(), 0u);  // cores share nothing
}

// Disassemble every instruction of every workload and re-assemble simple
// R/I-format lines to validate the text form (branch/jump targets render as
// absolute addresses, so full re-assembly is checked structurally instead).
TEST(Disassembler, AllWorkloadInstructionsRender) {
  for (const auto& name : workloads::workload_names()) {
    const arch::Program program = workloads::assemble_workload(name);
    for (std::size_t i = 0; i < program.code.size(); ++i) {
      const auto inst = isa::decode(program.code[i]);
      ASSERT_NE(inst.op, isa::Opcode::ILLEGAL)
          << name << " @" << i << ": illegal encoding in program image";
      const std::string text =
          isa::disassemble(inst, program.code_base + 4 * i);
      EXPECT_FALSE(text.empty());
      EXPECT_EQ(text.rfind(std::string(inst.info().mnemonic), 0), 0u) << text;
    }
  }
}

TEST(Disassembler, EncodeDecodeDisasmStableForAllWorkloads) {
  // decode(encode(decode(w))) == decode(w) for every instruction word of
  // every kernel: the binary format is a fixed point.
  for (const auto& name : workloads::workload_names()) {
    const arch::Program program = workloads::assemble_workload(name);
    for (const std::uint32_t word : program.code) {
      const auto inst = isa::decode(word);
      EXPECT_EQ(isa::encode(inst), word);
    }
  }
}

TEST(Workloads, RegistryIsCompleteAndNamed) {
  const auto& names = workloads::workload_names();
  EXPECT_EQ(names.size(), 12u);
  unsigned fp = 0;
  for (const auto& name : names) fp += workloads::workload(name).is_fp;
  EXPECT_EQ(fp, 5u);
  EXPECT_EQ(names.front(), "compress");
  EXPECT_EQ(names.back(), "echo");
}

TEST(Workloads, KernelGeneratorsScale) {
  // Smaller scales assemble and run to completion too (used by quick CI
  // configurations and by the fuzz harness).
  const arch::Program small = asmkit::assemble(workloads::kernel_go(5));
  arch::ArchState state(small);
  state.run(10'000'000);
  EXPECT_TRUE(state.halted());
  const arch::Program large = asmkit::assemble(workloads::kernel_go(40));
  arch::ArchState state2(large);
  state2.run(50'000'000);
  EXPECT_TRUE(state2.halted());
  EXPECT_GT(state2.instructions_executed(), state.instructions_executed());
}

}  // namespace
}  // namespace erel
