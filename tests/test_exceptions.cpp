// Precise-exception recovery (§4.3): the interrupt-injection mode flushes
// the whole pipeline at a commit boundary and re-executes from the head PC.
// Under early release the architectural mapping may point at a freed
// register; the stale-bit machinery must keep execution exact (the oracle
// verifies every committed instruction) with no double releases or leaks.
#include <gtest/gtest.h>

#include "asmkit/assembler.hpp"
#include "sim/simulator.hpp"
#include "workloads/workloads.hpp"

namespace erel {
namespace {

using core::PolicyKind;

struct FlushCase {
  std::string workload;
  PolicyKind policy;
  unsigned phys;
  std::uint64_t period;
};

std::string case_name(const testing::TestParamInfo<FlushCase>& info) {
  return info.param.workload + "_" +
         std::string(core::policy_name(info.param.policy)) + "_p" +
         std::to_string(info.param.phys) + "_f" +
         std::to_string(info.param.period);
}

class FlushInjection : public testing::TestWithParam<FlushCase> {};

TEST_P(FlushInjection, OracleExactUnderRepeatedFlushes) {
  const FlushCase& c = GetParam();
  sim::SimConfig config;
  config.policy = c.policy;
  config.phys_int = c.phys;
  config.phys_fp = c.phys;
  config.check_oracle = true;  // every commit compared against the oracle
  config.flush_period = c.period;
  config.max_instructions = 120'000;  // keep the suite fast
  sim::Simulator simulator(config);
  auto core = simulator.make_core(workloads::assemble_workload(c.workload));
  const sim::SimStats stats = core->run();
  EXPECT_GT(stats.flushes_injected, 10u);
  EXPECT_TRUE(core->conservation_holds());
  EXPECT_GT(stats.committed, 50'000u);
}

std::vector<FlushCase> flush_cases() {
  std::vector<FlushCase> cases;
  for (const PolicyKind policy :
       {PolicyKind::Conventional, PolicyKind::Basic, PolicyKind::Extended}) {
    // compress: branchy + memory; tomcatv: FP pressure; li: recursion.
    cases.push_back({"compress", policy, 48, 997});
    cases.push_back({"tomcatv", policy, 48, 1009});
    cases.push_back({"li", policy, 40, 499});
  }
  // Very frequent flushes on a very tight file: worst case for stale bits.
  cases.push_back({"compress", PolicyKind::Extended, 40, 101});
  cases.push_back({"tomcatv", PolicyKind::Basic, 40, 151});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Matrix, FlushInjection,
                         testing::ValuesIn(flush_cases()), case_name);

TEST(FlushSemantics, FlushedRunMatchesUnflushedResults) {
  // The same program with and without injected flushes must produce the
  // same memory image (flushes change timing, never architecture).
  const arch::Program program = workloads::assemble_workload("go");
  sim::SimConfig config;
  config.policy = PolicyKind::Extended;
  config.phys_int = 48;
  config.phys_fp = 48;
  config.check_oracle = false;

  sim::Simulator plain(config);
  auto core_plain = plain.make_core(program);
  core_plain->run();

  config.flush_period = 313;
  sim::Simulator flushed(config);
  auto core_flushed = flushed.make_core(program);
  const auto stats = core_flushed->run();

  EXPECT_GT(stats.flushes_injected, 100u);
  const std::uint64_t result = program.symbols.at("result");
  EXPECT_EQ(core_plain->memory().read_u64(result),
            core_flushed->memory().read_u64(result));
  // Flushes cost cycles.
  EXPECT_GT(stats.cycles, core_plain->cycle());
}

TEST(FlushSemantics, StaleSuppressionsActuallyHappen) {
  // With early release + flushes, some restored mappings must be stale and
  // the policies must suppress their re-release (otherwise this run would
  // abort on a double free).
  sim::SimConfig config;
  config.policy = PolicyKind::Extended;
  config.phys_int = 48;
  config.phys_fp = 48;
  config.check_oracle = true;
  config.flush_period = 97;
  config.max_instructions = 200'000;
  const auto stats =
      sim::Simulator(config).run(workloads::assemble_workload("tomcatv"));
  EXPECT_GT(stats.policy_stats[0].stale_suppressed +
                stats.policy_stats[1].stale_suppressed,
            0u);
}

TEST(FlushSemantics, ConventionalNeedsNoStaleSuppression) {
  // Conventional release never frees before the NV commits, so a flush can
  // never expose a stale mapping.
  sim::SimConfig config;
  config.policy = PolicyKind::Conventional;
  config.phys_int = 48;
  config.phys_fp = 48;
  config.check_oracle = true;
  config.flush_period = 97;
  config.max_instructions = 200'000;
  const auto stats =
      sim::Simulator(config).run(workloads::assemble_workload("tomcatv"));
  EXPECT_EQ(stats.policy_stats[0].stale_suppressed, 0u);
  EXPECT_EQ(stats.policy_stats[1].stale_suppressed, 0u);
}

}  // namespace
}  // namespace erel
