// Fault tolerance end to end: sweeps driven through the deterministic
// fault-injecting proxy (net/fault.hpp) stay bit-identical to local runs
// under eight seeded fault plans; the daemon's admission control, kCancel,
// disconnect reaping, LRU eviction and corrupt-entry quarantine all behave
// under hostile clients; retried cells are never simulated twice.
//
// Every blocking call in here is deadline-bounded (short ClientOptions /
// RemoteOptions timeouts), so a regression that would hang a sweep fails
// this suite by timeout instead of wedging CI.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/fingerprint.hpp"
#include "harness/result_cache.hpp"
#include "harness/results.hpp"
#include "net/fault.hpp"
#include "service/client.hpp"
#include "service/daemon.hpp"

namespace erel {
namespace {

namespace fs = std::filesystem;
using core::PolicyKind;

sim::SimConfig tiny_config(std::uint64_t max_instructions = 20'000) {
  sim::SimConfig config;
  config.check_oracle = false;
  config.max_instructions = max_instructions;
  return config;
}

struct TempDir {
  fs::path path;
  TempDir() {
    path = fs::temp_directory_path() /
           ("erel-faults-" +
            std::to_string(
                ::testing::UnitTest::GetInstance()->random_seed()) +
            "-" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  [[nodiscard]] std::string str() const { return path.string(); }
};

struct DaemonFixture {
  TempDir cache;
  std::unique_ptr<service::ExperimentDaemon> daemon;
  std::thread loop;

  explicit DaemonFixture(service::ExperimentDaemon::Options opts = {}) {
    if (opts.cache_dir.empty())
      opts.cache_dir = cache.str() + "/daemon-cache";
    daemon = std::make_unique<service::ExperimentDaemon>(opts);
    EXPECT_TRUE(daemon->valid()) << daemon->error();
    loop = std::thread([this] { daemon->run(); });
  }
  ~DaemonFixture() {
    daemon->stop();
    loop.join();
  }

  [[nodiscard]] std::string endpoint() const {
    return "127.0.0.1:" + std::to_string(daemon->port());
  }

  [[nodiscard]] std::string cache_dir() const {
    return cache.str() + "/daemon-cache";
  }

  /// Polls stats() until `done` passes or ~10s elapse.
  service::DaemonStats await_stats(
      const std::function<bool(const service::DaemonStats&)>& done) {
    service::DaemonStats stats;
    for (int i = 0; i < 500; ++i) {
      stats = daemon->stats();
      if (done(stats)) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return stats;
  }
};

/// A cell request the daemon can simulate, fingerprinted the same way
/// Experiment::run would.
service::CellRequest make_request(std::uint64_t id, unsigned phys,
                                  std::uint64_t max_instructions = 20'000) {
  service::CellRequest request;
  request.id = id;
  request.workload = "li";
  request.config = tiny_config(max_instructions);
  request.config.phys_int = request.config.phys_fp = phys;
  request.key = harness::ExpKey{request.workload, request.config.policy, phys,
                                std::string()};
  request.fingerprint_hex =
      harness::fingerprint_cell(request.workload, request.config, std::nullopt)
          .hex();
  return request;
}

service::ClientOptions fast_client() {
  service::ClientOptions opts;
  opts.connect_timeout_ms = 2'000;
  opts.call_timeout_ms = 10'000;
  return opts;
}

harness::Experiment small_sweep() {
  harness::Experiment exp;
  exp.base(tiny_config()).workloads({"li"}).phys_regs({40, 48});
  return exp;
}

std::string entry_text(const harness::ExpEntry& entry) {
  return harness::serialize_entry(entry, "comparefp0000000");
}

// ---------------------------------------------------------------------------

TEST(Faults, SweepThroughFaultProxyStaysBitIdentical) {
  const harness::Experiment exp = small_sweep();
  const harness::ResultSet local = exp.run({.threads = 2});

  DaemonFixture fixture;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    net::FaultProxy proxy("127.0.0.1", fixture.daemon->port(),
                          net::FaultPlan(seed));
    ASSERT_TRUE(proxy.valid()) << proxy.error();
    proxy.start();

    harness::RunOptions opts;
    opts.threads = 2;
    opts.server = "127.0.0.1:" + std::to_string(proxy.port());
    // Tight deadlines: a blackholed connection must cost milliseconds of
    // deadline, not minutes of hang, before the sweep retries or degrades.
    opts.remote.connect_timeout_ms = 1'000;
    opts.remote.call_timeout_ms = 1'500;
    opts.remote.retries = 2;
    opts.remote.backoff_base_ms = 10;
    opts.remote.jitter_seed = seed;

    const harness::ResultSet through = exp.run(opts);
    ASSERT_EQ(through.size(), local.size()) << "seed " << seed;
    for (const harness::ExpEntry& want : local.entries()) {
      EXPECT_EQ(entry_text(through.at(want.key)), entry_text(want))
          << "seed " << seed << " " << want.key.to_string();
    }
    proxy.stop();
  }

  // No hostile schedule may corrupt the daemon's cache: atomic publishes
  // mean zero quarantined entries and zero .bad files, ever.
  EXPECT_EQ(fixture.daemon->stats().quarantined, 0u);
  for (const auto& entry : fs::directory_iterator(fixture.cache_dir()))
    EXPECT_NE(entry.path().extension(), ".bad") << entry.path();
}

TEST(Faults, BusyStormIsRefusedThenEveryCellLands) {
  service::ExperimentDaemon::Options dopts;
  dopts.workers = 1;
  dopts.max_queue = 1;
  dopts.busy_retry_ms = 20;
  DaemonFixture fixture(dopts);

  service::RemoteClient client(fast_client());
  ASSERT_TRUE(client.connect(fixture.endpoint())) << client.error();

  // A slow cell fills the only queue slot...
  const service::CellRequest slow = make_request(1, 40, 400'000);
  ASSERT_TRUE(client.send_cell(slow));
  // ...so distinct follow-ups are refused with kBusy, not queued and not
  // dropped.
  std::vector<service::CellRequest> storm;
  for (std::uint64_t id = 2; id <= 4; ++id)
    storm.push_back(make_request(id, static_cast<unsigned>(40 + 4 * id)));
  std::uint64_t refusals = 0;
  for (const service::CellRequest& request : storm) {
    std::uint64_t id = request.id;
    for (int attempt = 0;; ++attempt) {
      service::CellRequest retry = request;
      retry.id = id;
      ASSERT_TRUE(client.send_cell(retry)) << client.error();
      std::string why;
      const std::optional<service::ResultMsg> result = client.await(id, &why);
      if (result) {
        EXPECT_FALSE(result->entry_text.empty());
        break;
      }
      ASSERT_EQ(client.last_status(), service::CallStatus::kBusy)
          << why << " (attempt " << attempt << ")";
      ++refusals;
      ASSERT_LT(attempt, 400) << "cell never admitted";
      std::this_thread::sleep_for(
          std::chrono::milliseconds(client.last_busy_retry_ms()));
      id += 100;  // fresh wire id per attempt, like the harness retry loop
    }
  }
  ASSERT_TRUE(client.await(1, nullptr).has_value());  // the slow cell lands

  const service::DaemonStats stats = fixture.daemon->stats();
  EXPECT_GE(refusals, 1u);
  EXPECT_EQ(stats.busy, refusals);
  EXPECT_EQ(stats.simulated, 4u);  // every refusal was a clean no-op
  EXPECT_EQ(stats.errors, 0u);
}

TEST(Faults, DisconnectReapsOrphanedPendingCells) {
  service::ExperimentDaemon::Options dopts;
  dopts.workers = 1;
  DaemonFixture fixture(dopts);

  auto client = std::make_unique<service::RemoteClient>(fast_client());
  ASSERT_TRUE(client->connect(fixture.endpoint())) << client->error();

  // A long sampled cell (cancellation points between batches) plus two
  // queued behind the single worker.
  service::CellRequest running = make_request(1, 40, 2'000'000);
  running.sampling = sim::SamplingConfig{};
  running.sampling->period = 10'000;
  running.sampling->warmup = 1'000;
  running.sampling->detail = 4'000;
  running.fingerprint_hex =
      harness::fingerprint_cell(running.workload, running.config,
                                running.sampling)
          .hex();
  ASSERT_TRUE(client->send_cell(running));
  ASSERT_TRUE(client->send_cell(make_request(2, 44, 1'000'000)));
  ASSERT_TRUE(client->send_cell(make_request(3, 48, 1'000'000)));
  fixture.await_stats(
      [](const service::DaemonStats& s) { return s.inflight == 3; });

  // Kill the client without awaiting anything: the daemon must reap all
  // three cells — queued ones outright, the running one cooperatively.
  client.reset();

  const service::DaemonStats stats = fixture.await_stats(
      [](const service::DaemonStats& s) { return s.inflight == 0; });
  EXPECT_EQ(stats.inflight, 0u);
  EXPECT_GE(stats.cancelled, 2u);  // the running cell may have finished
  EXPECT_EQ(stats.errors, 0u);
}

TEST(Faults, CancelWithdrawsAQueuedCell) {
  service::ExperimentDaemon::Options dopts;
  dopts.workers = 1;
  DaemonFixture fixture(dopts);

  service::RemoteClient client(fast_client());
  ASSERT_TRUE(client.connect(fixture.endpoint())) << client.error();

  ASSERT_TRUE(client.send_cell(make_request(1, 40, 400'000)));
  const service::CellRequest victim = make_request(2, 44);
  ASSERT_TRUE(client.send_cell(victim));
  client.cancel(2);

  ASSERT_TRUE(client.await(1, nullptr).has_value());
  const service::DaemonStats stats = fixture.await_stats(
      [](const service::DaemonStats& s) { return s.inflight == 0; });
  EXPECT_EQ(stats.cancelled, 1u);
  EXPECT_EQ(stats.simulated, 1u);  // the victim never ran
  EXPECT_EQ(stats.errors, 0u);    // cancel acks are not error stats

  // The withdrawn cell is still perfectly runnable afterwards.
  service::CellRequest again = victim;
  again.id = 9;
  ASSERT_TRUE(client.send_cell(again));
  ASSERT_TRUE(client.await(9, nullptr).has_value());
  EXPECT_EQ(fixture.daemon->stats().simulated, 2u);
}

TEST(Faults, ResubmittedCellIsNeverSimulatedTwice) {
  service::ExperimentDaemon::Options dopts;
  dopts.workers = 1;
  DaemonFixture fixture(dopts);

  service::RemoteClient client(fast_client());
  ASSERT_TRUE(client.connect(fixture.endpoint())) << client.error();

  // The idempotency pin behind transparent reconnect resubmission: the
  // same content under a fresh wire id joins the in-flight simulation
  // (while running) or hits the cache (after), never simulates again.
  const service::CellRequest cell = make_request(1, 40, 400'000);
  service::CellRequest retry = cell;
  retry.id = 2;
  ASSERT_TRUE(client.send_cell(cell));
  ASSERT_TRUE(client.send_cell(retry));  // in-flight: dedupe join

  const std::optional<service::ResultMsg> first = client.await(1, nullptr);
  const std::optional<service::ResultMsg> second = client.await(2, nullptr);
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(first->entry_text, second->entry_text);

  service::CellRequest later = cell;
  later.id = 3;
  ASSERT_TRUE(client.send_cell(later));  // completed: cache hit
  const std::optional<service::ResultMsg> third = client.await(3, nullptr);
  ASSERT_TRUE(third.has_value());
  EXPECT_TRUE(third->cached);
  EXPECT_EQ(third->entry_text, first->entry_text);

  const service::DaemonStats stats = fixture.daemon->stats();
  EXPECT_EQ(stats.simulated, 1u);
  EXPECT_EQ(stats.deduped, 1u);
  EXPECT_EQ(stats.cache_hits, 1u);
}

TEST(Faults, CorruptCacheEntryIsQuarantinedAndResimulated) {
  DaemonFixture fixture;

  service::RemoteClient client(fast_client());
  ASSERT_TRUE(client.connect(fixture.endpoint())) << client.error();

  const service::CellRequest cell = make_request(1, 40);
  ASSERT_TRUE(client.send_cell(cell));
  const std::optional<service::ResultMsg> fresh = client.await(1, nullptr);
  ASSERT_TRUE(fresh.has_value());

  // Rot the cached entry on disk behind the daemon's back.
  const std::string path =
      harness::cache_entry_path(fixture.cache_dir(), cell.fingerprint_hex);
  {
    std::ofstream rot(path, std::ios::trunc);
    rot << "erel-result v1\nthis is not a result\n";
  }

  service::CellRequest again = cell;
  again.id = 2;
  ASSERT_TRUE(client.send_cell(again));
  const std::optional<service::ResultMsg> healed = client.await(2, nullptr);
  ASSERT_TRUE(healed.has_value());
  EXPECT_FALSE(healed->cached);  // re-simulated, not served rotten
  EXPECT_EQ(healed->entry_text, fresh->entry_text);  // and bit-identical

  const service::DaemonStats stats = fixture.daemon->stats();
  EXPECT_EQ(stats.quarantined, 1u);
  EXPECT_EQ(stats.simulated, 2u);
  EXPECT_TRUE(fs::exists(path + ".bad"));  // kept for postmortems
  // The healed entry is valid on disk again.
  EXPECT_TRUE(harness::load_cache_entry(path, cell.fingerprint_hex, cell.key)
                  .has_value());
}

TEST(Faults, LruEvictionKeepsTheByteBudget) {
  service::ExperimentDaemon::Options dopts;
  dopts.max_cache_bytes = 1;  // every store evicts everything else
  DaemonFixture fixture(dopts);

  service::RemoteClient client(fast_client());
  ASSERT_TRUE(client.connect(fixture.endpoint())) << client.error();

  for (std::uint64_t id = 1; id <= 3; ++id) {
    ASSERT_TRUE(
        client.send_cell(make_request(id, static_cast<unsigned>(36 + 4 * id))));
    ASSERT_TRUE(client.await(id, nullptr).has_value());
  }

  const service::DaemonStats stats = fixture.daemon->stats();
  EXPECT_EQ(stats.evicted, 2u);  // each store displaced its predecessor
  std::size_t files = 0;
  for (const auto& entry : fs::directory_iterator(fixture.cache_dir()))
    files += entry.path().extension() == ".erelres" ? 1 : 0;
  EXPECT_EQ(files, 1u);

  // An evicted cell is a clean miss: re-simulated, not an error.
  service::CellRequest again = make_request(9, 40);
  ASSERT_TRUE(client.send_cell(again));
  const std::optional<service::ResultMsg> result = client.await(9, nullptr);
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->cached);
  EXPECT_EQ(fixture.daemon->stats().simulated, 4u);
}

}  // namespace
}  // namespace erel
