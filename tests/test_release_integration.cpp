// Cross-policy integration properties on real workloads:
//   - early release never hurts: IPC(extended) >= IPC(basic) >= IPC(conv)
//     (within a small tolerance for second-order timing effects)
//   - register conservation holds at completion
//   - release accounting: every version allocated is released exactly once
//   - occupancy: early release shrinks the Idle component (Figure 3's point)
#include <gtest/gtest.h>

#include "asmkit/assembler.hpp"
#include "sim/simulator.hpp"
#include "workloads/workloads.hpp"

namespace erel {
namespace {

using core::PolicyKind;

sim::SimStats run_policy(const std::string& workload, PolicyKind policy,
                         unsigned phys) {
  sim::SimConfig config;
  config.policy = policy;
  config.phys_int = phys;
  config.phys_fp = phys;
  config.check_oracle = false;
  return sim::Simulator(config).run(workloads::assemble_workload(workload));
}

class PolicyOrdering
    : public testing::TestWithParam<std::tuple<std::string, unsigned>> {};

TEST_P(PolicyOrdering, EarlyReleaseNeverHurts) {
  const auto& [workload, phys] = GetParam();
  const double conv = run_policy(workload, PolicyKind::Conventional, phys).ipc();
  const double basic = run_policy(workload, PolicyKind::Basic, phys).ipc();
  const double ext = run_policy(workload, PolicyKind::Extended, phys).ipc();
  // Extra free registers can only help; allow a 2% slack for second-order
  // interactions (replacement, predictor warmup alignment).
  EXPECT_GE(basic, conv * 0.98) << workload << " P=" << phys;
  EXPECT_GE(ext, basic * 0.98) << workload << " P=" << phys;
}

INSTANTIATE_TEST_SUITE_P(
    TightAndMid, PolicyOrdering,
    testing::Combine(testing::Values("compress", "li", "tomcatv", "swim",
                                     "mgrid"),
                     testing::Values(40u, 48u, 64u, 96u)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_p" +
             std::to_string(std::get<1>(info.param));
    });

TEST(ReleaseAccounting, EveryAllocationIsReleasedOnce) {
  // At halt: allocated == architectural versions; everything else returned.
  for (const PolicyKind policy :
       {PolicyKind::Conventional, PolicyKind::Basic, PolicyKind::Extended}) {
    sim::SimConfig config;
    config.policy = policy;
    config.phys_int = 56;
    config.phys_fp = 56;
    config.check_oracle = false;
    sim::Simulator simulator(config);
    auto core = simulator.make_core(workloads::assemble_workload("go"));
    core->run();
    EXPECT_TRUE(core->conservation_holds())
        << core::policy_name(policy);
    for (const core::RC cls : {core::RC::Int, core::RC::Fp}) {
      const auto& rf = core->rename_unit().rf(cls);
      // Free + allocated == P is conservation; also the allocated set must
      // be at most the logical registers (plus stale-chain remnants are
      // impossible without exception flushes).
      EXPECT_LE(rf.tracker.allocated_count(), isa::kNumLogicalRegs);
    }
  }
}

TEST(ReleaseAccounting, ReleaseChannelsSumToVersionCount) {
  // For the extended mechanism every destination rename ends in exactly one
  // of: immediate release, RwC0 release, branch-confirm release, squash
  // release — plus the architectural versions still held at halt.
  sim::SimConfig config;
  config.policy = PolicyKind::Extended;
  config.phys_int = 64;
  config.phys_fp = 64;
  config.check_oracle = false;
  sim::Simulator simulator(config);
  auto core = simulator.make_core(workloads::assemble_workload("compress"));
  const auto stats = core->run();
  const auto& ps = stats.policy_stats[0];  // int class
  const std::uint64_t releases = ps.immediate_releases +
                                 ps.early_commit_releases +
                                 ps.branch_confirm_releases +
                                 stats.squash_released[0];
  const auto& rf = core->rename_unit().rf(core::RC::Int);
  const std::uint64_t live = rf.tracker.allocated_count();
  // allocations == releases + still-live - initial architectural set.
  // We can't count allocations directly here, but conservation plus the
  // free-list invariant already pin them; check releases happened at scale.
  EXPECT_GT(releases, 50'000u);
  EXPECT_LE(live, isa::kNumLogicalRegs);
  EXPECT_EQ(ps.conventional_releases, 0u);  // extended never uses old_pd
}

TEST(Occupancy, EarlyReleaseShrinksIdle) {
  // The paper's Figure 3 premise: conventional renaming wastes registers in
  // the Idle state; early release reclaims most of that time.
  const auto conv = run_policy("tomcatv", PolicyKind::Conventional, 96);
  const auto ext = run_policy("tomcatv", PolicyKind::Extended, 96);
  const double conv_idle = conv.occupancy[1].avg_idle;
  const double ext_idle = ext.occupancy[1].avg_idle;
  EXPECT_GT(conv_idle, 2.0);                 // idle registers exist at all
  EXPECT_LT(ext_idle, conv_idle * 0.6);      // and early release reclaims them
}

TEST(Occupancy, ComponentsSumToAllocated) {
  const auto stats = run_policy("mgrid", PolicyKind::Conventional, 96);
  for (int cls = 0; cls < 2; ++cls) {
    const auto& occ = stats.occupancy[cls];
    EXPECT_GE(occ.avg_allocated(),
              occ.avg_empty + occ.avg_ready + occ.avg_idle - 1e-9);
    EXPECT_LE(occ.avg_allocated(), 96.0 + 1e-9);
    EXPECT_GE(occ.avg_allocated(), isa::kNumLogicalRegs - 1.0);
  }
}

TEST(Occupancy, IdleInflationIsSubstantialEverywhere) {
  // Paper Figure 3's premise: under conventional renaming a large share of
  // allocated registers sit Idle (dead value, not yet released). The paper
  // reports +45.8% (int) / +16.8% (FP) used-register inflation; our kernels
  // show 30-90% for both classes (the int-vs-FP gap depends on compiled
  // SPEC code shapes we don't replicate — see EXPERIMENTS.md).
  for (const char* workload : {"gcc", "li", "swim", "mgrid"}) {
    const bool is_fp = workloads::workload(workload).is_fp;
    const auto stats = run_policy(workload, PolicyKind::Conventional, 96);
    const auto& occ = stats.occupancy[is_fp ? 1 : 0];
    const double inflation = occ.avg_idle / (occ.avg_empty + occ.avg_ready);
    EXPECT_GT(inflation, 0.25) << workload;
    EXPECT_GT(occ.avg_idle, 15.0) << workload;  // registers wasted
  }
}

TEST(ReleaseStats, BasicSchedulesAndFallsBackSensibly) {
  const auto stats = run_policy("compress", PolicyKind::Basic, 64);
  const auto& ps = stats.policy_stats[0];
  EXPECT_GT(ps.early_commit_releases + ps.reuses, 10'000u);
  // Branchy integer code must hit the Case-2 fallback often (that's why the
  // extended mechanism exists).
  EXPECT_GT(ps.fallback_conventional, 1'000u);
}

TEST(ReleaseStats, ExtendedUsesConditionalPathOnBranchyCode) {
  const auto stats = run_policy("go", PolicyKind::Extended, 64);
  const auto& ps = stats.policy_stats[0];
  EXPECT_GT(ps.conditional_schedulings, 5'000u);
  EXPECT_GT(ps.branch_confirm_releases, 1'000u);
}

TEST(ReleaseStats, ExtendedBeatsBasicOnBranchyTightInt) {
  // The paper's core claim for integer codes: the extended mechanism wins
  // where branches block the basic one (§5.1).
  const double basic = run_policy("go", PolicyKind::Basic, 40).ipc();
  const double ext = run_policy("go", PolicyKind::Extended, 40).ipc();
  EXPECT_GE(ext, basic);
}

}  // namespace
}  // namespace erel
