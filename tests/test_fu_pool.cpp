// FU pool: per-class per-cycle issue limits and the unpipelined FP divider.
#include <gtest/gtest.h>

#include "pipeline/fu_pool.hpp"

namespace erel::pipeline {
namespace {

using isa::FuClass;

TEST(FuPool, PerCycleLimitsMatchTable2) {
  FuPool pool{FuConfig{}};
  pool.begin_cycle(1);
  for (unsigned i = 0; i < 8; ++i)
    EXPECT_TRUE(pool.try_issue(FuClass::IntAlu, 1, 1));
  EXPECT_FALSE(pool.try_issue(FuClass::IntAlu, 1, 1));
  for (unsigned i = 0; i < 4; ++i)
    EXPECT_TRUE(pool.try_issue(FuClass::IntMul, 1, 7));
  EXPECT_FALSE(pool.try_issue(FuClass::IntMul, 1, 7));
  for (unsigned i = 0; i < 6; ++i)
    EXPECT_TRUE(pool.try_issue(FuClass::FpAlu, 1, 4));
  EXPECT_FALSE(pool.try_issue(FuClass::FpAlu, 1, 4));
  for (unsigned i = 0; i < 4; ++i)
    EXPECT_TRUE(pool.try_issue(FuClass::LdSt, 1, 1));
  EXPECT_FALSE(pool.try_issue(FuClass::LdSt, 1, 1));
}

TEST(FuPool, PipelinedUnitsResetEachCycle) {
  FuPool pool{FuConfig{}};
  pool.begin_cycle(1);
  for (unsigned i = 0; i < 4; ++i)
    EXPECT_TRUE(pool.try_issue(FuClass::IntMul, 1, 7));
  pool.begin_cycle(2);
  // Fully pipelined: all four multipliers accept again next cycle.
  for (unsigned i = 0; i < 4; ++i)
    EXPECT_TRUE(pool.try_issue(FuClass::IntMul, 2, 7));
}

TEST(FuPool, FpDividerIsUnpipelined) {
  FuPool pool{FuConfig{}};
  pool.begin_cycle(1);
  for (unsigned i = 0; i < 4; ++i)
    EXPECT_TRUE(pool.try_issue(FuClass::FpDiv, 1, 16));
  // All four dividers busy for 16 cycles.
  pool.begin_cycle(2);
  EXPECT_FALSE(pool.try_issue(FuClass::FpDiv, 2, 16));
  pool.begin_cycle(16);
  EXPECT_FALSE(pool.try_issue(FuClass::FpDiv, 16, 16));
  pool.begin_cycle(17);
  EXPECT_TRUE(pool.try_issue(FuClass::FpDiv, 17, 16));
}

TEST(FuPool, ControlOpsNeedNoUnit) {
  FuPool pool{FuConfig{}};
  pool.begin_cycle(1);
  for (unsigned i = 0; i < 100; ++i)
    EXPECT_TRUE(pool.try_issue(FuClass::None, 1, 1));
}

TEST(FuPool, CountsAccessor) {
  FuPool pool{FuConfig{}};
  EXPECT_EQ(pool.count(FuClass::IntAlu), 8u);
  EXPECT_EQ(pool.count(FuClass::FpDiv), 4u);
  EXPECT_EQ(pool.count(FuClass::LdSt), 4u);
}

}  // namespace
}  // namespace erel::pipeline
