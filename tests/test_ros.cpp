// Reorder structure: FIFO behaviour, wrap-around, truncation, capacity.
#include <gtest/gtest.h>

#include "pipeline/ros.hpp"

namespace erel::pipeline {
namespace {

TEST(Ros, PushPopFifo) {
  Ros ros(4);
  EXPECT_TRUE(ros.empty());
  ros.push(1).pc = 0x100;
  ros.push(2).pc = 0x104;
  EXPECT_EQ(ros.size(), 2u);
  EXPECT_EQ(ros.head().pc, 0x100u);
  ros.pop_head();
  EXPECT_EQ(ros.head().pc, 0x104u);
}

TEST(Ros, FullAtCapacity) {
  Ros ros(2);
  ros.push(1);
  ros.push(2);
  EXPECT_TRUE(ros.full());
  ros.pop_head();
  EXPECT_FALSE(ros.full());
  ros.push(3);  // slot of seq 1 recycled
  EXPECT_TRUE(ros.full());
  EXPECT_EQ(ros.at(3).seq, 3u);
}

TEST(Ros, WrapAroundPreservesEntries) {
  Ros ros(4);
  for (core::InstSeq s = 1; s <= 4; ++s) ros.push(s).pc = 0x100 + 4 * s;
  for (core::InstSeq s = 1; s <= 2; ++s) ros.pop_head();
  ros.push(5).pc = 0x200;
  ros.push(6).pc = 0x204;
  EXPECT_EQ(ros.at(3).pc, 0x10Cu);
  EXPECT_EQ(ros.at(5).pc, 0x200u);
  EXPECT_FALSE(ros.contains(2));
  EXPECT_TRUE(ros.contains(6));
}

TEST(Ros, TruncateAfterSquashesYounger) {
  Ros ros(8);
  for (core::InstSeq s = 1; s <= 6; ++s) ros.push(s);
  ros.truncate_after(3);
  EXPECT_EQ(ros.size(), 3u);
  EXPECT_TRUE(ros.contains(3));
  EXPECT_FALSE(ros.contains(4));
  // Sequence numbers restart from the boundary.
  EXPECT_EQ(ros.tail_seq(), 4u);
  ros.push(4);
  EXPECT_TRUE(ros.contains(4));
}

TEST(Ros, ClearEmptiesEverything) {
  Ros ros(4);
  ros.push(1);
  ros.push(2);
  ros.clear();
  EXPECT_TRUE(ros.empty());
  EXPECT_EQ(ros.head_seq(), ros.tail_seq());
}

TEST(Ros, PushResetsEntryState) {
  Ros ros(2);
  RosEntry& e = ros.push(1);
  e.rec.rel_bits = 0x7;
  e.state = EntryState::Completed;
  ros.pop_head();
  ros.push(2);
  ros.pop_head();
  // Seq 3 lands in the same slot as seq 1: must be pristine.
  RosEntry& fresh = ros.push(3);
  EXPECT_EQ(fresh.rec.rel_bits, 0u);
  EXPECT_EQ(fresh.state, EntryState::Dispatched);
}

TEST(RosDeath, AccessOutOfRangeAborts) {
  Ros ros(4);
  ros.push(1);
  EXPECT_DEATH(ros.at(2), "retired/absent");
  ros.pop_head();
  EXPECT_DEATH(ros.at(1), "retired/absent");
}

TEST(RosDeath, SequenceDiscontinuityAborts) {
  Ros ros(4);
  ros.push(1);
  EXPECT_DEATH(ros.push(5), "discontinuity");
}

TEST(RosDeath, PushIntoFullAborts) {
  Ros ros(1);
  ros.push(1);
  EXPECT_DEATH(ros.push(2), "full");
}

}  // namespace
}  // namespace erel::pipeline
