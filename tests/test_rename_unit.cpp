// RenameUnit: cross-class renaming, checkpoint stack management, commit
// plumbing, squash/un-reuse, exception flush — driven directly with a fake
// pipeline (complementing the policy-level tests).
#include <gtest/gtest.h>

#include <map>

#include "core/rename_unit.hpp"

namespace erel::core {
namespace {

class FakeHooks : public PipelineHooks {
 public:
  RenameRec* find_inflight(InstSeq seq) override {
    const auto it = recs.find(seq);
    return it == recs.end() ? nullptr : &it->second;
  }
  bool branch_pending_between(InstSeq lo, InstSeq hi) const override {
    for (const InstSeq b : pending)
      if (b > lo && b < hi) return true;
    return false;
  }
  InstSeq newest_pending_branch() const override {
    return pending.empty() ? kNoSeq : pending.back();
  }
  unsigned pending_branch_count() const override {
    return static_cast<unsigned>(pending.size());
  }
  std::map<InstSeq, RenameRec> recs;
  std::vector<InstSeq> pending;
};

isa::DecodedInst make_inst(isa::Opcode op, unsigned rd, unsigned rs1,
                           unsigned rs2) {
  isa::DecodedInst inst;
  inst.op = op;
  inst.rd = static_cast<std::uint8_t>(rd);
  inst.rs1 = static_cast<std::uint8_t>(rs1);
  inst.rs2 = static_cast<std::uint8_t>(rs2);
  return inst;
}

class RenameUnitTest : public testing::Test {
 protected:
  void init(PolicyKind kind, unsigned phys_int = 40, unsigned phys_fp = 40) {
    unit = std::make_unique<RenameUnit>(
        RenameConfig{phys_int, phys_fp, kind, 4, nullptr}, hooks);
  }

  RenameRec& rename(const isa::DecodedInst& inst, InstSeq seq,
                    std::uint64_t cycle = 0) {
    RenameRec& rec = hooks.recs[seq];
    rec = RenameRec{};
    EXPECT_TRUE(unit->try_rename(inst, seq, rec, cycle));
    return rec;
  }

  FakeHooks hooks;
  std::unique_ptr<RenameUnit> unit;
};

TEST_F(RenameUnitTest, MixedClassOperandsRouteToTheirFiles) {
  init(PolicyKind::Conventional);
  // fsd f3, 0(r5): int base source + fp data source, no destination.
  const auto fsd = make_inst(isa::Opcode::FSD, 0, 5, 3);
  RenameRec& rec = rename(fsd, 1);
  EXPECT_EQ(rec.c1, isa::RegClass::Int);
  EXPECT_EQ(rec.c2, isa::RegClass::Fp);
  EXPECT_EQ(rec.p1, unit->rf(RC::Int).map.get(5).phys);
  EXPECT_EQ(rec.p2, unit->rf(RC::Fp).map.get(3).phys);
  EXPECT_FALSE(rec.has_dst());
}

TEST_F(RenameUnitTest, CrossClassDestination) {
  init(PolicyKind::Conventional);
  // cvtid r7, f2: fp source, int destination.
  RenameRec& rec = rename(make_inst(isa::Opcode::CVTID, 7, 2, 0), 1);
  EXPECT_EQ(rec.cd, isa::RegClass::Int);
  EXPECT_EQ(rec.c1, isa::RegClass::Fp);
  EXPECT_EQ(unit->rf(RC::Int).map.get(7).phys, rec.pd);
  EXPECT_NE(rec.pd, rec.old_pd);
}

TEST_F(RenameUnitTest, IntR0NeverRenamed) {
  init(PolicyKind::Conventional);
  RenameRec& rec = rename(make_inst(isa::Opcode::ADDI, 0, 3, 0), 1);
  EXPECT_FALSE(rec.has_dst());
  EXPECT_EQ(unit->rf(RC::Int).map.get(0).phys, 0);
}

TEST_F(RenameUnitTest, RenameStallLeavesNoSideEffects) {
  init(PolicyKind::Conventional, /*phys_int=*/33);  // one rename register
  rename(make_inst(isa::Opcode::ADDI, 5, 3, 0), 1);
  EXPECT_TRUE(unit->rf(RC::Int).free_list.empty());
  // Second rename must fail without touching the map.
  const PhysReg before = unit->rf(RC::Int).map.get(6).phys;
  RenameRec rec;
  EXPECT_FALSE(
      unit->try_rename(make_inst(isa::Opcode::ADDI, 6, 3, 0), 2, rec, 0));
  EXPECT_EQ(unit->rf(RC::Int).map.get(6).phys, before);
  EXPECT_EQ(unit->rename_stalls(RC::Int), 1u);
}

TEST_F(RenameUnitTest, CheckpointStackDepthEnforced) {
  init(PolicyKind::Extended);
  for (InstSeq seq = 1; seq <= 4; ++seq) {
    ASSERT_TRUE(unit->can_checkpoint());
    unit->note_branch_decoded(seq);
    hooks.pending.push_back(seq);
  }
  EXPECT_FALSE(unit->can_checkpoint());
  EXPECT_EQ(unit->pending_checkpoints(), 4u);
  // Confirming the youngest (out of order) frees a slot.
  hooks.pending.pop_back();
  unit->on_branch_confirmed(4, 10);
  EXPECT_TRUE(unit->can_checkpoint());
}

TEST_F(RenameUnitTest, MispredictRestoresBothClassesAndDropsYounger) {
  init(PolicyKind::Basic);
  const PhysReg int5 = unit->rf(RC::Int).map.get(5).phys;
  const PhysReg fp3 = unit->rf(RC::Fp).map.get(3).phys;
  unit->note_branch_decoded(1);
  hooks.pending.push_back(1);
  unit->note_branch_decoded(2);
  hooks.pending.push_back(2);
  // Wrong path: redefine r5 (int) and f3 (fp).
  RenameRec& a = rename(make_inst(isa::Opcode::ADDI, 5, 3, 0), 3);
  RenameRec& b = rename(make_inst(isa::Opcode::FADD, 3, 1, 2), 4);
  EXPECT_NE(unit->rf(RC::Int).map.get(5).phys, int5);
  // Squash back to branch 1: free wrong-path destinations, restore maps.
  unit->on_squash_entry(b, 5);
  unit->on_squash_entry(a, 5);
  hooks.recs.erase(3);
  hooks.recs.erase(4);
  unit->on_branch_mispredicted(1);
  hooks.pending.clear();
  EXPECT_EQ(unit->rf(RC::Int).map.get(5).phys, int5);
  EXPECT_EQ(unit->rf(RC::Fp).map.get(3).phys, fp3);
  EXPECT_EQ(unit->pending_checkpoints(), 0u);
  // Conservation after recovery.
  EXPECT_EQ(unit->rf(RC::Int).free_list.size() +
                unit->rf(RC::Int).tracker.allocated_count(),
            40u);
}

TEST_F(RenameUnitTest, CommitUpdatesIomtAndTracksConsumers) {
  init(PolicyKind::Conventional);
  RenameRec& def = rename(make_inst(isa::Opcode::ADDI, 5, 3, 0), 1);
  unit->rf(RC::Int).write_value(def.pd, 42, 1);
  unit->on_commit(def, 1, 2);
  EXPECT_EQ(unit->rf(RC::Int).iomt.get(5).phys, def.pd);

  RenameRec& use = rename(make_inst(isa::Opcode::ADD, 6, 5, 5), 2);
  unit->rf(RC::Int).write_value(use.pd, 84, 3);
  unit->on_commit(use, 2, 4);  // consumer-commit checks pass
  EXPECT_EQ(unit->rf(RC::Int).iomt.get(6).phys, use.pd);
}

TEST_F(RenameUnitTest, SquashedReuseStaysAllocated) {
  init(PolicyKind::Basic);
  // First redefinition of r5 reuses the architectural register.
  RenameRec& nv = rename(make_inst(isa::Opcode::ADDI, 5, 3, 0), 1);
  ASSERT_TRUE(nv.reused_prev);
  const PhysReg p = nv.pd;
  unit->on_squash_entry(nv, 2);
  // The storage still backs the architectural mapping: not freed.
  EXPECT_FALSE(unit->rf(RC::Int).free_list.is_free(p));
  EXPECT_TRUE(unit->rf(RC::Int).tracker.is_allocated(p));
  EXPECT_TRUE(unit->rf(RC::Int).ready[p]);  // dead value readable
}

TEST_F(RenameUnitTest, ExceptionFlushRestoresFromIomt) {
  init(PolicyKind::Extended);
  // Commit one redefinition (architectural), leave a second in flight.
  RenameRec& first = rename(make_inst(isa::Opcode::ADDI, 5, 3, 0), 1, 1);
  unit->rf(RC::Int).write_value(first.pd, 1, 1);
  unit->on_commit(first, 1, 2);
  const PhysReg committed = first.pd;
  RenameRec& second = rename(make_inst(isa::Opcode::ADDI, 5, 3, 0), 2, 3);
  EXPECT_NE(unit->rf(RC::Int).map.get(5).phys, committed);
  // Flush: squash the in-flight one, restore the architectural map.
  unit->on_squash_entry(second, 4);
  hooks.recs.clear();
  unit->on_exception_flush(4);
  EXPECT_EQ(unit->rf(RC::Int).map.get(5).phys, committed);
  EXPECT_EQ(unit->pending_checkpoints(), 0u);
  EXPECT_EQ(unit->rf(RC::Int).free_list.size() +
                unit->rf(RC::Int).tracker.allocated_count(),
            40u);
}

namespace {
int g_counting_policy_plans = 0;
}

TEST_F(RenameUnitTest, CustomPolicyFactoryIsUsed) {
  struct CountingPolicy final : ReleasePolicy {
    using ReleasePolicy::ReleasePolicy;
    [[nodiscard]] PolicyKind kind() const override {
      return PolicyKind::Conventional;
    }
    DestPlan plan_dest(unsigned rd, InstSeq, RenameRec& rec,
                       std::uint64_t) override {
      ++g_counting_policy_plans;
      rec.old_pd = rf_.map.get(rd).phys;
      rec.rel_old = true;
      return {};
    }
  };
  g_counting_policy_plans = 0;
  RenameConfig config;
  config.phys_int = config.phys_fp = 40;
  config.policy_factory = [](RC, RegFileState& rf, PipelineHooks& hooks) {
    return std::make_unique<CountingPolicy>(rf, hooks);
  };
  unit = std::make_unique<RenameUnit>(config, hooks);
  rename(make_inst(isa::Opcode::ADDI, 5, 3, 0), 1);
  EXPECT_EQ(g_counting_policy_plans, 1);
}

}  // namespace
}  // namespace erel::core
