// protocol-complete FAIL: kGamma is never named here.
#include "enum_decl.hpp"

const char* demo_msg_name(DemoMsg m) {
  switch (m) {
    case DemoMsg::kAlpha: return "alpha";
    case DemoMsg::kBeta: return "beta";
    default: return "unknown";
  }
}
