// fingerprint-coverage FAIL: demo.strict never appears in the serializer
// (the mention outside the function body must not count as coverage).
#include "coverage_fail.hpp"

template <typename Fn>
void demo_fields(DemoConfig& demo, Fn&& f) {
  f("width", demo.width);
  f("cycles", demo.cycles);
}

bool elsewhere(const DemoConfig& demo) { return demo.strict; }
