// stat-path FAIL: uppercase component, doubled slash, and a duplicate
// registration of demo/commits.
#include <string_view>

inline constexpr std::string_view kStatDemoBad = "Demo/Cycles";

template <typename Registry>
void install(Registry& registry) {
  registry.counter("demo//commits");
  registry.counter("demo/commits");
  registry.counter("demo/commits");
}
