// fingerprint-coverage PASS: every data member is serialized.
#pragma once

struct DemoConfig {
  int width = 4;
  bool strict = false;
  unsigned long cycles;

  // Member functions and nested types are not data members.
  bool is_wide() const { return width > 8; }
  struct Nested {
    int ignored = 0;
  };
  static constexpr int kNotAMember = 3;
  using Alias = int;
};
