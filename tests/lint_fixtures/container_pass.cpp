// nondet-container PASS: ordered containers only.
#include <map>
#include <set>
#include <vector>

int total(const std::map<int, int>& m, const std::set<int>& s,
          const std::vector<int>& v) {
  int sum = 0;
  for (const auto& [k, val] : m) sum += k + val;
  for (const int x : s) sum += x;
  for (const int x : v) sum += x;
  return sum;
}
