// protocol-complete (codec leg) FAIL: encode_orphan has no decode_orphan.
#pragma once

#include <string>

struct OrphanPayload {
  int value = 0;
};

std::string encode_orphan(const OrphanPayload& payload);
