// nondet-source FAIL: randomness and wall-clock reads.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

unsigned long sample() {
  std::random_device entropy;                          // banned identifier
  const long stamp = time(nullptr);                    // banned call
  const auto tick = std::chrono::steady_clock::now();  // banned identifier
  return entropy() + static_cast<unsigned long>(stamp) +
         static_cast<unsigned long>(tick.time_since_epoch().count()) +
         static_cast<unsigned long>(rand());           // banned call
}
