// protocol-complete PASS: every DemoMsg enumerator is handled.
#include "enum_decl.hpp"

const char* demo_msg_name(DemoMsg m) {
  switch (m) {
    case DemoMsg::kAlpha: return "alpha";
    case DemoMsg::kBeta: return "beta";
    case DemoMsg::kGamma: return "gamma";
  }
  return "unknown";
}
