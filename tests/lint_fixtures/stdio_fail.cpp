// raw-stdio FAIL: direct prints from library code.
#include <cstdio>
#include <iostream>

void report(int value) {
  std::printf("value=%d\n", value);
  std::cout << "value=" << value << '\n';
  std::fputs("done\n", stderr);
}
