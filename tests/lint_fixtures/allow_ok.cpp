// Exemption PASS: each violation carries a well-formed inline directive,
// once on the line above and once trailing the offending line.
#include <unordered_map>

// erel-lint: allow(nondet-container): demo of the line-above directive form
std::unordered_map<int, int> table;

std::unordered_map<int, int> mirror;  // erel-lint: allow(nondet-container): same-line form
