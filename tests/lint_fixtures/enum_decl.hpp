// protocol-complete (enum leg) fixture declaration: three message tags.
// Mentions inside the enum body itself must not satisfy the rule.
#pragma once

enum class DemoMsg : unsigned char {
  kAlpha = 1,
  kBeta = 2,
  kGamma = 3,
};
