// stat-path PASS: lowercase '/'-separated registration literals and path
// constants; `kLabel` has no slash so the k-constant heuristic skips it.
#include <string_view>

inline constexpr std::string_view kStatDemoCycles = "demo/cycles";
inline constexpr std::string_view kChannelDemoHeat = "channel/demo/heat_2";
inline constexpr std::string_view kLabel = "Demo Label (free text)";

template <typename Registry>
void install(Registry& registry) {
  registry.counter("demo/commits");
  registry.accum("demo/occupancy/int");
}
