// fingerprint-coverage PASS: the serializer touches width, strict, cycles.
#include "coverage_pass.hpp"

template <typename Fn>
void demo_fields(DemoConfig& demo, Fn&& f) {
  f("width", demo.width);
  f("strict", demo.strict);
  f("cycles", demo.cycles);
}
