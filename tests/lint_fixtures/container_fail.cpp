// nondet-container FAIL: hash containers in a deterministic unit.
#include <string>
#include <unordered_map>
#include <unordered_set>

int lookup(const std::unordered_map<std::string, int>& index,
           const std::unordered_set<std::string>& live,
           const std::string& key) {
  if (live.count(key) == 0) return 0;
  const auto it = index.find(key);
  return it == index.end() ? 0 : it->second;
}
