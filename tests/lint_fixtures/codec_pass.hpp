// protocol-complete (codec leg) PASS: encode/decode come in a pair.
#pragma once

#include <optional>
#include <string>
#include <string_view>

struct DemoPayload {
  int value = 0;
};

std::string encode_demo(const DemoPayload& payload);
std::optional<DemoPayload> decode_demo(std::string_view text);
