// raw-stdio PASS: the banned names appear only in strings and comments.
// A real module would use EREL_WARN("...") from common/log.hpp; printf in
// this comment must not fire either.
#include <string>

std::string help_text() {
  return "diagnostics route through common/log, never printf or std::cout";
}
