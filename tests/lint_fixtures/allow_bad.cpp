// Exemption FAIL: three malformed directives, each a bad-exemption finding
// (and none of them suppresses the unordered_map violations they decorate).
#include <unordered_map>

// erel-lint: allow(no-such-rule): the rule name does not exist
std::unordered_map<int, int> first;

// erel-lint: allow(nondet-container):
std::unordered_map<int, int> second;  // empty justification above

// erel-lint: forbid(nondet-container): not an allow() directive at all
std::unordered_map<int, int> third;
