// fingerprint-coverage FAIL: `strict` is declared but never serialized.
#pragma once

struct DemoConfig {
  int width = 4;
  bool strict = false;
  unsigned long cycles;
};
