// nondet-source PASS: seeded mixing and benign look-alikes only.
//
// The scanner is token-level, so none of these may fire:
//   - `last_write_time(` is one identifier, not a call to `time(`
//   - `time` inside a string or comment: time(nullptr)
//   - `#include <ctime>` is a skipped preprocessor line
//   - `runtime` / `timer` merely contain the banned spelling
#include <ctime>
#include <cstdint>

std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  return x ^ (x >> 31);
}

std::uint64_t last_write_time(int fd);

const char* runtime_note() { return "never calls time(nullptr)"; }

std::uint64_t probe(int fd) { return last_write_time(fd) + mix(7); }
