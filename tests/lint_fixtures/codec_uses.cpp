// protocol-complete codec mention site: exercises the demo pair (but not
// encode_orphan, so the orphan codec is also "never exercised" here).
#include "codec_pass.hpp"

bool demo_round_trips(const DemoPayload& payload) {
  const auto out = decode_demo(encode_demo(payload));
  return out && out->value == payload.value;
}
