// sim::Probe event plumbing: delivery counts line up with the statistics,
// event order is deterministic across runs, registers lifecycle events
// balance, and fixed-stride channels cover the whole run.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/probe.hpp"
#include "sim/simulator.hpp"
#include "workloads/workloads.hpp"

namespace erel {
namespace {

/// Serializes every event into a text log (for determinism comparison) and
/// keeps per-kind counts.
struct EventLog final : sim::Probe {
  std::string log;
  std::uint64_t cycles = 0, renames = 0, allocs = 0, releases = 0;
  std::uint64_t commits = 0, squashes = 0, squashed_entries = 0;
  std::uint64_t branches = 0, cache_accesses = 0;
  bool ended = false;

  void on_cycle(const sim::CycleEvent&) override { ++cycles; }
  void on_rename(const sim::RenameEvent& ev) override {
    ++renames;
    log += "R" + std::to_string(ev.seq) + "@" + std::to_string(ev.cycle) +
           ";";
  }
  void on_reg_alloc(const sim::RegEvent& ev) override {
    ++allocs;
    log += "A" + std::to_string(ev.reg) + (ev.reused ? "r" : "") + ";";
  }
  void on_reg_release(const sim::RegEvent& ev) override {
    ++releases;
    log += "F" + std::to_string(ev.reg) + (ev.squashed ? "s" : "") + ";";
  }
  void on_commit(const sim::CommitEvent& ev) override {
    ++commits;
    EXPECT_NE(ev.inst, nullptr);  // live-core commit events carry pointers
    EXPECT_NE(ev.rec, nullptr);
    log += "C" + std::to_string(ev.pc) + "@" + std::to_string(ev.commit_cycle) +
           ";";
  }
  void on_squash(const sim::SquashEvent& ev) override {
    ++squashes;
    squashed_entries += ev.squashed_entries;
  }
  void on_branch_resolve(const sim::BranchEvent& ev) override {
    ++branches;
    log += "B" + std::to_string(ev.pc) + (ev.mispredicted ? "m" : "") + ";";
  }
  void on_cache_access(const sim::CacheAccessEvent&) override {
    ++cache_accesses;
  }
  void on_run_end(sim::StatRegistry&) override { ended = true; }
};

sim::SimConfig probe_config() {
  sim::SimConfig config;
  config.policy = core::PolicyKind::Extended;
  config.phys_int = config.phys_fp = 48;
  config.check_oracle = false;
  config.max_instructions = 15000;
  return config;
}

TEST(Probe, EventCountsMatchStatistics) {
  const arch::Program program = workloads::assemble_workload("li");
  EventLog log;
  const sim::SimStats stats =
      sim::Simulator(probe_config()).run(program, {&log});

  EXPECT_TRUE(log.ended);
  EXPECT_EQ(log.cycles, stats.cycles);
  EXPECT_EQ(log.commits, stats.committed);
  // Renames include wrong-path work: never fewer than commits.
  EXPECT_GE(log.renames, stats.committed);
  EXPECT_EQ(log.branches,
            stats.branches.cond_branches + stats.branches.indirect_jumps);
  EXPECT_GT(log.cache_accesses, 0u);
  // Mispredicted work exists in this kernel, so squashes must be observed.
  ASSERT_GT(stats.branches.cond_mispredicts, 0u);
  EXPECT_GT(log.squashes, 0u);
  EXPECT_GT(log.squashed_entries, 0u);
}

TEST(Probe, RegisterLifecycleEventsBalance) {
  const arch::Program program = workloads::assemble_workload("compress");
  EventLog log;
  (void)sim::Simulator(probe_config()).run(program, {&log});
  EXPECT_GT(log.allocs, 0u);
  EXPECT_GT(log.releases, 0u);
  // Every release ends a version that an observed alloc started, except the
  // initial architectural versions (never alloc-evented); at most
  // 2 * kNumLogicalRegs allocations can still be in flight at the end.
  EXPECT_GE(log.allocs + 2ull * isa::kNumLogicalRegs, log.releases);
  EXPECT_GE(log.releases + 2ull * 48, log.allocs);
}

TEST(Probe, EventOrderIsDeterministic) {
  const arch::Program program = workloads::assemble_workload("li");
  EventLog a, b;
  (void)sim::Simulator(probe_config()).run(program, {&a});
  (void)sim::Simulator(probe_config()).run(program, {&b});
  EXPECT_EQ(a.log, b.log);  // bit-identical event sequence
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.squashed_entries, b.squashed_entries);
}

TEST(Probe, FanOutDeliversToEveryProbeInAttachOrder) {
  const arch::Program program = workloads::assemble_workload("li");
  EventLog first, second;
  (void)sim::Simulator(probe_config()).run(program, {&first, &second});
  EXPECT_EQ(first.log, second.log);
  EXPECT_EQ(first.commits, second.commits);
}

TEST(Probe, ProbesCanRegisterOwnCountersInTheCoreRegistry) {
  struct StoreCounter final : sim::Probe {
    sim::StatRegistry::Counter* stores = nullptr;
    void on_run_begin(const sim::SimConfig&,
                      sim::StatRegistry& reg) override {
      stores = &reg.counter("mine/stores");
    }
    void on_cache_access(const sim::CacheAccessEvent& ev) override {
      if (ev.is_write) ++*stores;
    }
  } probe;
  const arch::Program program = workloads::assemble_workload("li");
  auto core = sim::Simulator(probe_config()).make_core(program);
  core->attach_probe(&probe);
  (void)core->run();
  EXPECT_GT(core->registry().counter_value("mine/stores"), 0u);
}

TEST(Probe, StatStrideRecordsChannelsCoveringTheRun) {
  sim::SimConfig config = probe_config();
  config.stat_stride = 512;
  const arch::Program program = workloads::assemble_workload("li");
  auto core = sim::Simulator(config).make_core(program);
  const sim::SimStats stats = core->run();

  const sim::StatRegistry& reg = core->registry();
  const std::uint64_t buckets = (stats.cycles + 511) / 512;
  const auto* commits = reg.find_channel("channel/commit/committed");
  ASSERT_NE(commits, nullptr);
  EXPECT_EQ(commits->stride, 512u);
  EXPECT_EQ(commits->points.size(), buckets);
  double committed = 0;
  for (const double p : commits->points) committed += p;
  EXPECT_DOUBLE_EQ(committed, static_cast<double>(stats.committed));

  // Occupancy channels: per-stride averages whose cycle-weighted mean must
  // reproduce the whole-run Figure 3 averages exactly.
  for (unsigned c = 0; c < 2; ++c) {
    const std::string base = std::string("channel/occupancy/") +
                             (c == 0 ? "int" : "fp") + "/";
    const auto* empty = reg.find_channel(base + "empty");
    const auto* ready = reg.find_channel(base + "ready");
    const auto* idle = reg.find_channel(base + "idle");
    ASSERT_NE(empty, nullptr);
    ASSERT_NE(ready, nullptr);
    ASSERT_NE(idle, nullptr);
    EXPECT_EQ(empty->points.size(), buckets);
    double weighted = 0;
    for (std::uint64_t k = 0; k < buckets; ++k) {
      const double covered =
          static_cast<double>(std::min<std::uint64_t>(512, stats.cycles -
                                                               k * 512));
      weighted += empty->points[k] * covered;
    }
    EXPECT_NEAR(weighted / static_cast<double>(stats.cycles),
                stats.occupancy[c].avg_empty, 1e-9);
  }

  // Channels never change the simulated results.
  const sim::SimStats plain =
      sim::Simulator(probe_config()).run(program);
  EXPECT_EQ(plain.cycles, stats.cycles);
  EXPECT_EQ(plain.committed, stats.committed);
}

}  // namespace
}  // namespace erel
