// White-box release-policy tests: a fake PipelineHooks lets us drive the
// three mechanisms through exact §2/§3/§4 scenarios without the pipeline.
#include <gtest/gtest.h>

#include <map>

#include "core/release_policy.hpp"
#include "core/types.hpp"

namespace erel::core {
namespace {

/// Minimal pipeline stand-in: a map of in-flight rename records plus an
/// explicit pending-branch list.
class FakeHooks : public PipelineHooks {
 public:
  RenameRec* find_inflight(InstSeq seq) override {
    const auto it = inflight.find(seq);
    return it == inflight.end() ? nullptr : &it->second;
  }
  bool branch_pending_between(InstSeq lo, InstSeq hi) const override {
    for (const InstSeq b : pending) {
      if (b > lo && b < hi) return true;
    }
    return false;
  }
  InstSeq newest_pending_branch() const override {
    return pending.empty() ? kNoSeq : pending.back();
  }
  unsigned pending_branch_count() const override {
    return static_cast<unsigned>(pending.size());
  }

  std::map<InstSeq, RenameRec> inflight;
  std::vector<InstSeq> pending;
};

/// Test fixture mimicking the RenameUnit's call sequence for a single-class
/// instruction stream.
class PolicyTest : public testing::Test {
 protected:
  void init(PolicyKind kind, unsigned phys = 40) {
    rf = std::make_unique<RegFileState>(RC::Int, phys);
    policy = make_policy(kind, *rf, hooks);
  }

  /// Renames "rd = op(rs1)" at `seq`; returns the record.
  RenameRec& rename(InstSeq seq, unsigned rd, int rs1 = -1,
                    std::uint64_t cycle = 0) {
    RenameRec& rec = hooks.inflight[seq];
    rec = RenameRec{};
    if (rs1 >= 0) {
      rec.r1 = static_cast<std::uint8_t>(rs1);
      rec.c1 = isa::RegClass::Int;
      rec.p1 = rf->map.get(static_cast<unsigned>(rs1)).phys;
      rec.p1_token = rf->tracker.token(rec.p1);
      policy->record_src_use(static_cast<unsigned>(rs1), seq, UseKind::Src1);
    }
    rec.rd = static_cast<std::uint8_t>(rd);
    rec.cd = isa::RegClass::Int;
    const auto plan = policy->plan_dest(rd, seq, rec, cycle);
    if (plan.reuse) {
      rec.pd = rec.old_pd;
      rec.reused_prev = true;
      rf->tracker.on_reuse(rec.pd, static_cast<std::uint8_t>(rd), cycle);
    } else {
      rec.pd = rf->alloc(static_cast<std::uint8_t>(rd), cycle);
    }
    rf->map.set(rd, rec.pd);
    policy->record_dst_use(rd, seq);
    return rec;
  }

  /// Commits `seq` in order (consumer/definer tracking + policy actions).
  void commit(InstSeq seq, std::uint64_t cycle) {
    RenameRec& rec = hooks.inflight.at(seq);
    if (rec.c1 != isa::RegClass::None)
      rf->tracker.on_consumer_commit(rec.p1, rec.p1_token, cycle);
    if (rec.cd != isa::RegClass::None) {
      rf->write_value(rec.pd, 0, cycle);  // ensure written before commit
      rf->tracker.on_definer_commit(rec.pd, cycle);
      rf->iomt.set(rec.rd, rec.pd);
    }
    policy->on_commit(rec, seq, cycle);
    hooks.inflight.erase(seq);
  }

  FakeHooks hooks;
  std::unique_ptr<RegFileState> rf;
  std::unique_ptr<ReleasePolicy> policy;
};

// ---- conventional ----

TEST_F(PolicyTest, ConventionalReleasesOldAtNvCommit) {
  init(PolicyKind::Conventional);
  const PhysReg v0 = rf->map.get(5).phys;
  RenameRec& nv = rename(1, 5);
  EXPECT_EQ(nv.old_pd, v0);
  EXPECT_TRUE(nv.rel_old);
  EXPECT_FALSE(rf->free_list.is_free(v0));
  commit(1, 10);
  EXPECT_TRUE(rf->free_list.is_free(v0));
  EXPECT_EQ(policy->stats().conventional_releases, 1u);
}

// ---- basic ----

TEST_F(PolicyTest, BasicReusesArchVersionAtStart) {
  init(PolicyKind::Basic);
  // Initial LUs entries are Arch/committed: the first redefinition reuses
  // the architectural register in place.
  const PhysReg v0 = rf->map.get(5).phys;
  RenameRec& nv = rename(1, 5);
  EXPECT_TRUE(nv.reused_prev);
  EXPECT_EQ(nv.pd, v0);
  EXPECT_EQ(policy->stats().reuses, 1u);
  EXPECT_FALSE(rf->free_list.is_free(v0));
}

TEST_F(PolicyTest, BasicSchedulesReleaseAtInFlightLu) {
  init(PolicyKind::Basic);
  RenameRec& def = rename(1, 5);           // v1 of r5
  RenameRec& lu = rename(2, 6, /*rs1=*/5); // reads r5: LU of v1
  RenameRec& nv = rename(3, 5);            // redefines r5
  EXPECT_FALSE(nv.rel_old);                // conventional path disconnected
  EXPECT_EQ(lu.rel_bits, kRel1);           // paper Figure 6b
  EXPECT_EQ(def.rel_bits, 0u);
  const PhysReg v1 = lu.p1;
  commit(1, 10);
  EXPECT_FALSE(rf->free_list.is_free(v1));
  commit(2, 11);                           // LU commits: early release
  EXPECT_TRUE(rf->free_list.is_free(v1));
  EXPECT_EQ(policy->stats().early_commit_releases, 1u);
  commit(3, 12);                           // NV commit releases nothing extra
  EXPECT_EQ(policy->stats().conventional_releases, 0u);
}

TEST_F(PolicyTest, BasicDefinerOnlyVersionUsesRelD) {
  init(PolicyKind::Basic);
  RenameRec& def = rename(1, 5);  // writes r5, no reader follows
  rename(2, 5);                   // immediate redefinition
  EXPECT_EQ(def.rel_bits, kRelD); // Figure 4b: release the definer's own pd
}

TEST_F(PolicyTest, BasicReusesAfterLuCommitted) {
  init(PolicyKind::Basic);
  rename(1, 5);
  rename(2, 6, /*rs1=*/5);
  commit(1, 10);
  commit(2, 11);
  // LU committed (C=1 via on_commit): next redefinition reuses v1 in place.
  const PhysReg v1 = rf->map.get(5).phys;
  RenameRec& nv = rename(3, 5);
  EXPECT_TRUE(nv.reused_prev);
  EXPECT_EQ(nv.pd, v1);
}

TEST_F(PolicyTest, BasicFallsBackAcrossPendingBranch) {
  init(PolicyKind::Basic);
  RenameRec& lu = rename(1, 5);   // definer = LU (no readers)
  hooks.pending.push_back(2);     // unresolved branch between LU and NV
  RenameRec& nv = rename(3, 5);
  EXPECT_TRUE(nv.rel_old);        // Case 2: conventional fallback
  EXPECT_EQ(lu.rel_bits, 0u);
  EXPECT_EQ(policy->stats().fallback_conventional, 1u);
}

TEST_F(PolicyTest, BasicBranchOlderThanLuDoesNotBlock) {
  init(PolicyKind::Basic);
  hooks.pending.push_back(1);     // pending branch older than the LU pair
  RenameRec& lu = rename(2, 5);
  RenameRec& nv = rename(3, 5);
  EXPECT_FALSE(nv.rel_old);
  EXPECT_EQ(lu.rel_bits, kRelD);  // scheduling allowed: squash is atomic
}

TEST_F(PolicyTest, BasicSelfUseSchedulesOnItself) {
  init(PolicyKind::Basic);
  rename(1, 5);
  // add r5, r5, ...: the instruction is its own previous-version LU.
  RenameRec& nv = rename(2, 5, /*rs1=*/5);
  EXPECT_EQ(nv.rel_bits, kRel1);
  EXPECT_FALSE(nv.rel_old);
  EXPECT_FALSE(nv.reused_prev);
}

TEST_F(PolicyTest, BasicStaleMappingSuppressed) {
  init(PolicyKind::Basic);
  rf->map.mark_stale(5);
  RenameRec& nv = rename(1, 5);
  EXPECT_FALSE(nv.rel_old);
  EXPECT_FALSE(nv.reused_prev);
  EXPECT_EQ(policy->stats().stale_suppressed, 1u);
}

TEST_F(PolicyTest, BasicCheckpointRestoreRevertsLastUses) {
  init(PolicyKind::Basic);
  rename(1, 5);
  rename(2, 6, /*rs1=*/5);                 // LU of r5's v1
  const PolicyCheckpoint cp = policy->make_checkpoint();
  rename(3, 7, /*rs1=*/5);                 // wrong-path younger use
  policy->restore_checkpoint(cp);
  hooks.inflight.erase(3);
  // After restore the LU of r5 is instruction 2 again.
  RenameRec& nv = rename(4, 5);
  EXPECT_FALSE(nv.rel_old);
  EXPECT_EQ(hooks.inflight.at(2).rel_bits, kRel1);
}

TEST_F(PolicyTest, BasicCommitUpdatesCheckpointCopies) {
  init(PolicyKind::Basic);
  rename(1, 5);
  rename(2, 6, /*rs1=*/5);  // instruction 2 uses r5 (src) and r6 (dst)
  rename(3, 7);
  PolicyCheckpoint cp = policy->make_checkpoint();
  policy->commit_update_checkpoint(cp, 2);
  // Every entry naming instruction 2 flips to committed; others don't.
  EXPECT_TRUE(cp.lus[5].committed);
  EXPECT_TRUE(cp.lus[6].committed);
  EXPECT_FALSE(cp.lus[7].committed);
}

TEST_F(PolicyTest, BasicExceptionFlushResetsToArch) {
  init(PolicyKind::Basic);
  rename(1, 5);
  rename(2, 6, /*rs1=*/5);
  policy->on_exception_flush();
  hooks.inflight.clear();
  // All entries back to Arch/committed: the next NV reuses immediately.
  RenameRec& nv = rename(3, 6);
  EXPECT_TRUE(nv.reused_prev);
}

// ---- extended ----

TEST_F(PolicyTest, ExtendedImmediateReleaseWhenNonSpeculative) {
  init(PolicyKind::Extended);
  rename(1, 5);
  rename(2, 6, /*rs1=*/5);
  commit(1, 10);
  commit(2, 11);
  const PhysReg v1 = rf->map.get(5).phys;
  RenameRec& nv = rename(3, 5, -1, /*cycle=*/12);
  EXPECT_FALSE(nv.reused_prev);  // extended releases instead of reusing
  EXPECT_TRUE(rf->free_list.is_free(v1));
  // Three immediate releases: the architectural versions of r5 and r6 at
  // instructions 1 and 2, plus v1 of r5 at instruction 3.
  EXPECT_EQ(policy->stats().immediate_releases, 3u);
}

TEST_F(PolicyTest, ExtendedSchedulesRwc0WhenLuInFlight) {
  init(PolicyKind::Extended);
  rename(1, 5);
  RenameRec& lu = rename(2, 6, /*rs1=*/5);
  rename(3, 5);
  EXPECT_EQ(lu.rel_bits, kRel1);
  EXPECT_EQ(policy->relque_population(), 0u);
}

TEST_F(PolicyTest, ExtendedConditionalRwnsReleaseOnConfirm) {
  init(PolicyKind::Extended);
  rename(1, 5);
  rename(2, 6, /*rs1=*/5);
  commit(1, 10);
  commit(2, 11);
  // A pending branch makes the NV speculative: decoded conditional release.
  hooks.pending.push_back(3);
  policy->on_branch_decoded(3);
  const PhysReg v1 = rf->map.get(5).phys;
  rename(4, 5);
  EXPECT_EQ(policy->relque_population(), 1u);
  EXPECT_FALSE(rf->free_list.is_free(v1));
  // Branch confirms: branch-confirm release (paper Step 6).
  hooks.pending.clear();
  policy->on_branch_confirmed(3, 20);
  EXPECT_TRUE(rf->free_list.is_free(v1));
  EXPECT_EQ(policy->stats().branch_confirm_releases, 1u);
}

TEST_F(PolicyTest, ExtendedConditionalRwcMigratesOnLuCommit) {
  init(PolicyKind::Extended);
  rename(1, 5);
  RenameRec lu_copy;
  RenameRec& lu = rename(2, 6, /*rs1=*/5);  // LU in flight
  hooks.pending.push_back(3);
  policy->on_branch_decoded(3);
  rename(4, 5);                              // speculative NV
  EXPECT_EQ(policy->relque_population(), 1u);
  EXPECT_EQ(lu.rel_bits, 0u);                // scheduling is in the RelQue
  const PhysReg v1 = lu.p1;
  commit(1, 10);
  lu_copy = lu;
  commit(2, 11);                             // LU commits: RwC -> RwNS
  EXPECT_FALSE(rf->free_list.is_free(v1));   // still conditional
  EXPECT_EQ(policy->relque_population(), 1u);
  hooks.pending.clear();
  policy->on_branch_confirmed(3, 20);
  EXPECT_TRUE(rf->free_list.is_free(v1));
}

TEST_F(PolicyTest, ExtendedMispredictDropsConditionalReleases) {
  init(PolicyKind::Extended);
  rename(1, 5);
  rename(2, 6, /*rs1=*/5);
  commit(1, 10);
  commit(2, 11);
  const PolicyCheckpoint cp = policy->make_checkpoint();
  const MapTable::Snapshot map_cp = rf->map.snapshot();
  hooks.pending.push_back(3);
  policy->on_branch_decoded(3);
  const PhysReg v1 = rf->map.get(5).phys;
  RenameRec& nv = rename(4, 5);
  // Mispredict: squash the NV, drop the scheduling, restore state.
  rf->release(nv.pd, 12, /*squashed=*/true);
  hooks.inflight.erase(4);
  rf->map.restore(map_cp);
  policy->restore_checkpoint(cp);
  policy->on_branch_mispredicted(3);
  hooks.pending.clear();
  EXPECT_EQ(policy->relque_population(), 0u);
  EXPECT_FALSE(rf->free_list.is_free(v1));   // still live
  // Re-decoded NV releases it exactly once.
  rename(5, 5, -1, 13);
  EXPECT_TRUE(rf->free_list.is_free(v1));
}

TEST_F(PolicyTest, ExtendedNestedBranchesConfirmInOrder) {
  init(PolicyKind::Extended);
  rename(1, 5);
  rename(2, 7, /*rs1=*/5);
  commit(1, 10);
  commit(2, 11);
  hooks.pending.push_back(3);
  policy->on_branch_decoded(3);
  const PhysReg v5 = rf->map.get(5).phys;
  rename(4, 5);                    // conditional on branch 3
  hooks.pending.push_back(5);
  policy->on_branch_decoded(5);
  const PhysReg v6 = rf->map.get(6).phys;  // arch version of r6
  rename(6, 6);                    // conditional on branches 3 and 5
  EXPECT_EQ(policy->relque_population(), 2u);
  // Younger branch confirms first: merge downward, nothing released.
  hooks.pending.erase(hooks.pending.begin() + 1);
  policy->on_branch_confirmed(5, 20);
  EXPECT_FALSE(rf->free_list.is_free(v6));
  EXPECT_EQ(policy->relque_population(), 2u);
  // Oldest confirms: both release.
  hooks.pending.clear();
  policy->on_branch_confirmed(3, 21);
  EXPECT_TRUE(rf->free_list.is_free(v5));
  EXPECT_TRUE(rf->free_list.is_free(v6));
}

TEST_F(PolicyTest, ExtendedNeverSetsRelOld) {
  init(PolicyKind::Extended);
  hooks.pending.push_back(1);
  policy->on_branch_decoded(1);
  RenameRec& nv = rename(2, 5);
  EXPECT_FALSE(nv.rel_old);
  hooks.pending.clear();
  policy->on_branch_mispredicted(1);
}

TEST_F(PolicyTest, ExtendedCanRenameWithEmptyFreeListViaImmediateRelease) {
  init(PolicyKind::Extended, /*phys=*/34);  // two rename registers
  // Drain the free list with a chain of in-flight redefinitions of r5
  // (each schedules at its in-flight LU and must allocate).
  rename(1, 5, -1, 1);  // releases arch r5 immediately, then allocates
  rename(2, 5, -1, 2);  // LU = 1 in flight -> RwC0 + allocate
  rename(3, 5, -1, 3);  // LU = 2 in flight -> RwC0 + allocate
  EXPECT_TRUE(rf->free_list.empty());
  // r6's architectural version is immediately releasable: rename can
  // proceed even with an empty free list.
  EXPECT_TRUE(policy->can_rename_dest(6, 4, /*self_src_use=*/false));
  // r5's previous version has an uncommitted LU: allocation required.
  EXPECT_FALSE(policy->can_rename_dest(5, 4, /*self_src_use=*/false));
  // Self-use rules the immediate path out even for r6.
  EXPECT_FALSE(policy->can_rename_dest(6, 4, /*self_src_use=*/true));
  RenameRec& nv = rename(4, 6, -1, 4);
  EXPECT_NE(nv.pd, kNoReg);
}

TEST_F(PolicyTest, BasicCanRenameWithEmptyFreeListViaReuse) {
  init(PolicyKind::Basic, /*phys=*/33);  // one rename register
  RenameRec& first = rename(1, 5);
  EXPECT_TRUE(first.reused_prev);  // arch version recycled, no allocation
  rename(2, 5);                    // LU = 1 in flight -> allocates
  EXPECT_TRUE(rf->free_list.empty());
  // r6 is still reusable in place; r5 is not (its LU is in flight).
  EXPECT_TRUE(policy->can_rename_dest(6, 3, /*self_src_use=*/false));
  EXPECT_FALSE(policy->can_rename_dest(5, 3, /*self_src_use=*/false));
  RenameRec& nv = rename(3, 6);
  EXPECT_TRUE(nv.reused_prev);
}

}  // namespace
}  // namespace erel::core
