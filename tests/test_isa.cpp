// ISA encoding round-trips (parameterized over every opcode) and execution
// semantics edge cases.
#include <gtest/gtest.h>

#include <limits>

#include "common/bits.hpp"
#include "isa/isa.hpp"
#include "isa/semantics.hpp"

namespace erel::isa {
namespace {

std::vector<Opcode> all_real_opcodes() {
  std::vector<Opcode> ops;
  for (unsigned i = 1; i < kNumOpcodes; ++i) ops.push_back(static_cast<Opcode>(i));
  return ops;
}

class EncodingRoundTrip : public testing::TestWithParam<Opcode> {};

TEST_P(EncodingRoundTrip, FieldsSurviveEncodeDecode) {
  const Opcode op = GetParam();
  const OpInfo& info = op_info(op);
  DecodedInst inst;
  inst.op = op;
  // Use distinct register numbers / a nontrivial immediate so swapped fields
  // are detected.
  switch (info.format) {
    case Format::R:
      inst.rd = 3;
      inst.rs1 = 17;
      inst.rs2 = 29;
      break;
    case Format::I:
      inst.rd = 5;
      inst.rs1 = 11;
      inst.imm = -1234;
      break;
    case Format::U:
    case Format::J:
      inst.rd = 7;
      inst.imm = -100000;
      break;
    case Format::B:
    case Format::S:
      inst.rs1 = 9;
      inst.rs2 = 23;
      inst.imm = -4321;
      break;
    case Format::N:
      break;
  }
  const DecodedInst out = decode(encode(inst));
  EXPECT_EQ(out.op, inst.op);
  EXPECT_EQ(out.rd, inst.rd);
  EXPECT_EQ(out.rs1, inst.rs1);
  EXPECT_EQ(out.rs2, inst.rs2);
  EXPECT_EQ(out.imm, inst.imm);
}

TEST_P(EncodingRoundTrip, DisassembleProducesMnemonic) {
  DecodedInst inst;
  inst.op = GetParam();
  const std::string text = disassemble(inst, 0x10000);
  EXPECT_EQ(text.rfind(std::string(op_info(GetParam()).mnemonic), 0), 0u)
      << text;
}

INSTANTIATE_TEST_SUITE_P(AllOpcodes, EncodingRoundTrip,
                         testing::ValuesIn(all_real_opcodes()),
                         [](const testing::TestParamInfo<Opcode>& info) {
                           return std::string(op_info(info.param).mnemonic);
                         });

TEST(Encoding, ImmediateExtremes) {
  DecodedInst inst;
  inst.op = Opcode::ADDI;
  for (const std::int32_t imm : {8191, -8192, 0, 1, -1}) {
    inst.imm = imm;
    EXPECT_EQ(decode(encode(inst)).imm, imm);
  }
  inst.op = Opcode::JAL;
  for (const std::int32_t imm : {262143, -262144}) {
    inst.imm = imm;
    EXPECT_EQ(decode(encode(inst)).imm, imm);
  }
}

TEST(Encoding, ZeroWordDecodesIllegal) {
  EXPECT_EQ(decode(0).op, Opcode::ILLEGAL);
}

TEST(Encoding, UnknownOpcodeFieldDecodesIllegal) {
  EXPECT_EQ(decode(0xFFu << 24).op, Opcode::ILLEGAL);
}

TEST(OpTable, OperandClassesAreConsistent) {
  for (const Opcode op : all_real_opcodes()) {
    const OpInfo& info = op_info(op);
    DecodedInst inst;
    inst.op = op;
    if (info.flags & kFlagStore) {
      EXPECT_EQ(info.dst, RegClass::None) << info.mnemonic;
      EXPECT_EQ(info.src1, RegClass::Int) << info.mnemonic;  // base
      EXPECT_NE(info.src2, RegClass::None) << info.mnemonic;  // data
      EXPECT_GT(info.mem_bytes, 0u) << info.mnemonic;
    }
    if (info.flags & kFlagLoad) {
      EXPECT_NE(info.dst, RegClass::None) << info.mnemonic;
      EXPECT_EQ(info.src1, RegClass::Int) << info.mnemonic;
      EXPECT_GT(info.mem_bytes, 0u) << info.mnemonic;
    }
    if (info.flags & kFlagCondBranch) {
      EXPECT_EQ(info.dst, RegClass::None) << info.mnemonic;
    }
  }
}

TEST(Semantics, IntegerAluBasics) {
  EXPECT_EQ(exec_alu(Opcode::ADD, 2, 3, 0), 5u);
  EXPECT_EQ(exec_alu(Opcode::SUB, 2, 3, 0), static_cast<std::uint64_t>(-1));
  EXPECT_EQ(exec_alu(Opcode::AND, 0xF0, 0x3C, 0), 0x30u);
  EXPECT_EQ(exec_alu(Opcode::OR, 0xF0, 0x0F, 0), 0xFFu);
  EXPECT_EQ(exec_alu(Opcode::XOR, 0xFF, 0x0F, 0), 0xF0u);
  EXPECT_EQ(exec_alu(Opcode::SLT, static_cast<std::uint64_t>(-1), 0, 0), 1u);
  EXPECT_EQ(exec_alu(Opcode::SLTU, static_cast<std::uint64_t>(-1), 0, 0), 0u);
}

TEST(Semantics, ShiftsMaskTheirAmount) {
  EXPECT_EQ(exec_alu(Opcode::SLL, 1, 64, 0), 1u);  // 64 & 63 == 0
  EXPECT_EQ(exec_alu(Opcode::SLL, 1, 65, 0), 2u);
  EXPECT_EQ(exec_alu(Opcode::SRA, static_cast<std::uint64_t>(-8), 1, 0),
            static_cast<std::uint64_t>(-4));
  EXPECT_EQ(exec_alu(Opcode::SRL, static_cast<std::uint64_t>(-1), 63, 0), 1u);
  EXPECT_EQ(exec_alu(Opcode::SRAI, static_cast<std::uint64_t>(-1), 0, 63),
            static_cast<std::uint64_t>(-1));
}

TEST(Semantics, LogicalImmediatesZeroExtend) {
  // ORI with a positive 13-bit value must not smear sign bits.
  EXPECT_EQ(exec_alu(Opcode::ORI, 0, 0, 0x1FFF), 0x1FFFu);
  EXPECT_EQ(exec_alu(Opcode::ANDI, ~0ull, 0, 0x1FFF), 0x1FFFu);
  // ADDI sign-extends.
  EXPECT_EQ(exec_alu(Opcode::ADDI, 10, 0, -3), 7u);
}

TEST(Semantics, DivisionEdgeCases) {
  const auto min64 =
      static_cast<std::uint64_t>(std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(exec_alu(Opcode::DIV, 7, 0, 0), static_cast<std::uint64_t>(-1));
  EXPECT_EQ(exec_alu(Opcode::REM, 7, 0, 0), 7u);
  EXPECT_EQ(exec_alu(Opcode::DIV, min64, static_cast<std::uint64_t>(-1), 0),
            min64);
  EXPECT_EQ(exec_alu(Opcode::REM, min64, static_cast<std::uint64_t>(-1), 0),
            0u);
  EXPECT_EQ(exec_alu(Opcode::DIV, static_cast<std::uint64_t>(-7), 2, 0),
            static_cast<std::uint64_t>(-3));
}

TEST(Semantics, FpArithmetic) {
  EXPECT_EQ(u2f(exec_alu(Opcode::FADD, f2u(1.5), f2u(2.25), 0)), 3.75);
  EXPECT_EQ(u2f(exec_alu(Opcode::FMUL, f2u(3.0), f2u(-2.0), 0)), -6.0);
  EXPECT_EQ(u2f(exec_alu(Opcode::FDIV, f2u(1.0), f2u(4.0), 0)), 0.25);
  EXPECT_EQ(u2f(exec_alu(Opcode::FSQRT, f2u(9.0), 0, 0)), 3.0);
  EXPECT_EQ(u2f(exec_alu(Opcode::FABS, f2u(-2.5), 0, 0)), 2.5);
  EXPECT_EQ(u2f(exec_alu(Opcode::FNEG, f2u(2.5), 0, 0)), -2.5);
  EXPECT_EQ(u2f(exec_alu(Opcode::FMIN, f2u(2.0), f2u(-3.0), 0)), -3.0);
  EXPECT_EQ(u2f(exec_alu(Opcode::FMAX, f2u(2.0), f2u(-3.0), 0)), 2.0);
}

TEST(Semantics, FpSpecialValuesAreDeterministic) {
  const std::uint64_t nan1 = exec_alu(Opcode::FSQRT, f2u(-1.0), 0, 0);
  const std::uint64_t nan2 =
      exec_alu(Opcode::FDIV, f2u(0.0), f2u(0.0), 0);
  EXPECT_EQ(nan1, 0x7ff8000000000000ull);
  EXPECT_EQ(nan2, 0x7ff8000000000000ull);
  // Division by zero yields infinity (bit-exact).
  EXPECT_EQ(u2f(exec_alu(Opcode::FDIV, f2u(1.0), f2u(0.0), 0)),
            std::numeric_limits<double>::infinity());
}

TEST(Semantics, FpComparesTreatNanAsFalse) {
  const std::uint64_t nan = 0x7ff8000000000000ull;
  EXPECT_EQ(exec_alu(Opcode::FEQ, nan, nan, 0), 0u);
  EXPECT_EQ(exec_alu(Opcode::FLT, nan, f2u(1.0), 0), 0u);
  EXPECT_EQ(exec_alu(Opcode::FLE, f2u(1.0), nan, 0), 0u);
  EXPECT_EQ(exec_alu(Opcode::FLE, f2u(1.0), f2u(1.0), 0), 1u);
}

TEST(Semantics, Conversions) {
  EXPECT_EQ(u2f(exec_alu(Opcode::CVTDI, static_cast<std::uint64_t>(-7), 0, 0)),
            -7.0);
  EXPECT_EQ(exec_alu(Opcode::CVTID, f2u(-7.9), 0, 0),
            static_cast<std::uint64_t>(-7));  // truncation toward zero
  EXPECT_EQ(exec_alu(Opcode::CVTID, 0x7ff8000000000000ull, 0, 0), 0u);  // NaN
  EXPECT_EQ(exec_alu(Opcode::CVTID, f2u(1e300), 0, 0),
            static_cast<std::uint64_t>(std::numeric_limits<std::int64_t>::max()));
}

TEST(Semantics, BranchConditions) {
  EXPECT_TRUE(branch_taken(Opcode::BEQ, 5, 5));
  EXPECT_FALSE(branch_taken(Opcode::BNE, 5, 5));
  EXPECT_TRUE(branch_taken(Opcode::BLT, static_cast<std::uint64_t>(-1), 0));
  EXPECT_FALSE(branch_taken(Opcode::BLTU, static_cast<std::uint64_t>(-1), 0));
  EXPECT_TRUE(branch_taken(Opcode::BGEU, static_cast<std::uint64_t>(-1), 0));
  EXPECT_TRUE(branch_taken(Opcode::BGE, 3, 3));
}

TEST(Semantics, LuiShiftsBy13) {
  EXPECT_EQ(exec_alu(Opcode::LUI, 0, 0, 1), 0x2000u);
  EXPECT_EQ(exec_alu(Opcode::LUI, 0, 0, -1),
            static_cast<std::uint64_t>(-8192));
}

TEST(DecodedInst, R0DestinationIsDiscarded) {
  DecodedInst inst;
  inst.op = Opcode::ADDI;
  inst.rd = 0;
  EXPECT_FALSE(inst.has_dst());
  inst.rd = 1;
  EXPECT_TRUE(inst.has_dst());
  // FP f0 is a real register.
  inst.op = Opcode::FADD;
  inst.rd = 0;
  EXPECT_TRUE(inst.has_dst());
}

}  // namespace
}  // namespace erel::isa
