// Functional (oracle) simulator semantics: control flow, memory access
// widths, call/return, and step records.
#include <gtest/gtest.h>

#include "arch/arch_state.hpp"
#include "asmkit/assembler.hpp"
#include "common/bits.hpp"

namespace erel::arch {
namespace {

ArchState run_program(const char* src) {
  ArchState state(asmkit::assemble(src));
  state.run(1'000'000);
  EXPECT_TRUE(state.halted());
  return state;
}

TEST(ArchState, StraightLineArithmetic) {
  ArchState s = run_program(R"(
main:
  li   r3, 10
  li   r4, 3
  add  r5, r3, r4
  sub  r6, r3, r4
  mul  r7, r3, r4
  div  r8, r3, r4
  rem  r9, r3, r4
  halt
)");
  EXPECT_EQ(s.int_reg(5), 13u);
  EXPECT_EQ(s.int_reg(6), 7u);
  EXPECT_EQ(s.int_reg(7), 30u);
  EXPECT_EQ(s.int_reg(8), 3u);
  EXPECT_EQ(s.int_reg(9), 1u);
}

TEST(ArchState, R0IsAlwaysZero) {
  ArchState s = run_program(R"(
main:
  addi r0, r0, 5
  add  r3, r0, r0
  halt
)");
  EXPECT_EQ(s.int_reg(0), 0u);
  EXPECT_EQ(s.int_reg(3), 0u);
}

TEST(ArchState, LoadStoreWidths) {
  ArchState s = run_program(R"(
main:
  la   r3, buf
  li   r4, 0x1234
  sd   r4, 0(r3)
  li   r5, -1
  sb   r5, 8(r3)
  sw   r4, 12(r3)
  ld   r6, 0(r3)
  lbu  r7, 8(r3)
  lw   r8, 12(r3)
  halt
.data
buf: .space 24
)");
  EXPECT_EQ(s.int_reg(6), 0x1234u);
  EXPECT_EQ(s.int_reg(7), 0xFFu);       // byte load zero-extends
  EXPECT_EQ(s.int_reg(8), 0x1234u);
}

TEST(ArchState, LwSignExtends) {
  ArchState s = run_program(R"(
main:
  la  r3, buf
  li  r4, -2
  sw  r4, 0(r3)
  lw  r5, 0(r3)
  halt
.data
buf: .space 8
)");
  EXPECT_EQ(s.int_reg(5), static_cast<std::uint64_t>(-2));
}

TEST(ArchState, FpLoadStoreRoundTrip) {
  ArchState s = run_program(R"(
main:
  la   r3, buf
  fld  f1, 0(r3)
  fadd f2, f1, f1
  fsd  f2, 8(r3)
  fld  f3, 8(r3)
  halt
.data
buf: .double 2.5, 0.0
)");
  EXPECT_EQ(u2f(s.fp_reg(3)), 5.0);
  EXPECT_EQ(u2f(s.memory().read_u64(kDefaultDataBase + 8)), 5.0);
}

TEST(ArchState, LoopExecutesExactCount) {
  ArchState s = run_program(R"(
main:
  li r3, 0
  li r4, 37
loop:
  addi r3, r3, 1
  blt  r3, r4, loop
  halt
)");
  EXPECT_EQ(s.int_reg(3), 37u);
}

TEST(ArchState, CallAndReturn) {
  ArchState s = run_program(R"(
main:
  li   r2, 0x200000
  li   r3, 5
  call double_it
  mv   r5, r3
  halt
double_it:
  add  r3, r3, r3
  ret
)");
  EXPECT_EQ(s.int_reg(5), 10u);
}

TEST(ArchState, IndirectJumpThroughTable) {
  ArchState s = run_program(R"(
main:
  la   r3, table
  ld   r4, 0(r3)
  jalr r1, r4, 0
  halt
target:
  li   r5, 99
  ret
setup:
  halt
.data
table: .dword target
)");
  EXPECT_EQ(s.int_reg(5), 99u);
}

TEST(ArchState, StepRecordsDestAndMemory) {
  ArchState s(asmkit::assemble(R"(
main:
  li r3, 7
  la r4, buf
  sd r3, 0(r4)
  ld r5, 0(r4)
  halt
.data
buf: .space 8
)"));
  StepInfo i1 = s.step();  // li (addi)
  EXPECT_TRUE(i1.has_dst);
  EXPECT_EQ(i1.dst_value, 7u);
  s.step();  // la part 1 (lui)
  s.step();  // la part 2 (ori)
  StepInfo st = s.step();  // sd
  EXPECT_TRUE(st.is_store);
  EXPECT_EQ(st.mem_addr, kDefaultDataBase);
  EXPECT_EQ(st.store_value, 7u);
  StepInfo ld = s.step();  // ld
  EXPECT_TRUE(ld.is_load);
  EXPECT_EQ(ld.dst_value, 7u);
  StepInfo halt = s.step();
  EXPECT_TRUE(halt.halted);
  EXPECT_TRUE(s.halted());
  // Further steps keep reporting halted without advancing.
  EXPECT_TRUE(s.step().halted);
}

TEST(ArchState, IllegalInstructionHaltsWithFlag) {
  // Jump into zero-filled memory: decodes as ILLEGAL.
  ArchState s(asmkit::assemble(R"(
main:
  li   r4, 0x50000
  jalr r0, r4, 0
)"));
  StepInfo info;
  for (int i = 0; i < 10 && !s.halted(); ++i) info = s.step();
  EXPECT_TRUE(s.halted());
  EXPECT_TRUE(info.illegal);
}

TEST(ArchState, UntouchedMemoryReadsZero) {
  ArchState s = run_program(R"(
main:
  li r3, 0x300000
  ld r4, 0(r3)
  halt
)");
  EXPECT_EQ(s.int_reg(4), 0u);
}

TEST(ArchState, InstructionCountMatches) {
  ArchState s(asmkit::assemble("main:\n  nop\n  nop\n  nop\n  halt\n"));
  s.run();
  // 3 nops + the halt step.
  EXPECT_EQ(s.instructions_executed(), 4u);
}

}  // namespace
}  // namespace erel::arch
