// Cache model: hit/miss behaviour, LRU replacement, write-back accounting,
// and the three-level hierarchy's latency composition.
#include <gtest/gtest.h>

#include "mem/cache.hpp"
#include "mem/hierarchy.hpp"

namespace erel::mem {
namespace {

CacheConfig tiny_cache(unsigned ways) {
  // 4 sets x ways x 64B lines.
  return {"tiny", 4u * ways * 64u, ways, 64, 1};
}

TEST(Cache, FirstAccessMissesThenHits) {
  Cache c(tiny_cache(2));
  EXPECT_FALSE(c.access(0x1000, false));
  EXPECT_TRUE(c.access(0x1000, false));
  EXPECT_TRUE(c.access(0x103F, false));  // same line
  EXPECT_FALSE(c.access(0x1040, false)); // next line
  EXPECT_EQ(c.stats().accesses, 4u);
  EXPECT_EQ(c.stats().misses, 2u);
}

TEST(Cache, LruEvictsLeastRecentlyUsed) {
  Cache c(tiny_cache(2));
  // Three lines mapping to the same set (stride = sets * line = 256).
  c.access(0x0000, false);
  c.access(0x0100, false);
  c.access(0x0000, false);   // touch line A: B becomes LRU
  c.access(0x0200, false);   // evicts B
  EXPECT_TRUE(c.contains(0x0000));
  EXPECT_FALSE(c.contains(0x0100));
  EXPECT_TRUE(c.contains(0x0200));
}

TEST(Cache, WritebackCountedOnlyForDirtyVictims) {
  Cache c(tiny_cache(1));  // direct-mapped: every conflict evicts
  c.access(0x0000, true);   // dirty
  c.access(0x0100, false);  // evicts dirty -> writeback
  EXPECT_EQ(c.stats().writebacks, 1u);
  c.access(0x0200, false);  // evicts clean -> no writeback
  EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(Cache, WriteHitMarksLineDirty) {
  Cache c(tiny_cache(1));
  c.access(0x0000, false);  // clean fill
  c.access(0x0000, true);   // dirty it
  c.access(0x0100, false);  // evict -> writeback
  EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(Cache, DistinctSetsDoNotConflict) {
  Cache c(tiny_cache(1));
  c.access(0x0000, false);
  c.access(0x0040, false);
  c.access(0x0080, false);
  c.access(0x00C0, false);
  EXPECT_TRUE(c.contains(0x0000));
  EXPECT_TRUE(c.contains(0x00C0));
}

TEST(Cache, PaperGeometriesConstruct) {
  const HierarchyConfig cfg;
  Cache l1i(cfg.l1i), l1d(cfg.l1d), l2(cfg.l2);
  EXPECT_EQ(l1i.config().line_bytes, 32u);
  EXPECT_EQ(l1d.config().line_bytes, 64u);
  EXPECT_EQ(l2.config().size_bytes, 1024u * 1024u);
}

TEST(CacheDeath, RejectsBadGeometry) {
  EXPECT_DEATH(Cache({"bad", 1000, 2, 64, 1}), "geometry");
  EXPECT_DEATH(Cache({"bad", 4096, 2, 60, 1}), "power of two");
}

TEST(Hierarchy, LatencyComposition) {
  MemoryHierarchy h{HierarchyConfig{}};
  // Cold: L1 miss + L2 miss -> 1 + 12 + 50.
  EXPECT_EQ(h.dload(0x4000), 63u);
  // Hot in both.
  EXPECT_EQ(h.dload(0x4000), 1u);
}

TEST(Hierarchy, L2HitAfterL1Eviction) {
  MemoryHierarchy h{HierarchyConfig{}};
  h.dload(0x0);
  // L1D is 32KB 2-way with 64B lines: 256 sets, stride 16KB. Touch two more
  // conflicting lines to evict the first from L1; L2 (1MB) still holds it.
  h.dload(16 * 1024);
  h.dload(32 * 1024);
  EXPECT_EQ(h.dload(0x0), 13u);  // 1 + 12, L2 hit
}

TEST(Hierarchy, IfetchUsesICache) {
  MemoryHierarchy h{HierarchyConfig{}};
  EXPECT_EQ(h.ifetch(0x10000), 63u);
  EXPECT_EQ(h.ifetch(0x10000), 1u);
  // 0x10020 is the next 32B I-line but shares the 64B L2 line: L1 miss,
  // L2 hit -> 1 + 12.
  EXPECT_EQ(h.ifetch(0x10020), 13u);
}

TEST(Hierarchy, IfetchSecondLineHitsL2) {
  MemoryHierarchy h{HierarchyConfig{}};
  h.ifetch(0x10000);                   // fills 64B line in L2
  EXPECT_EQ(h.ifetch(0x10020), 13u);   // L1I miss (32B lines), L2 hit
}

TEST(Cache, NonPowerOfTwoAssociativityIndexesCorrectly) {
  // The shift/mask index math only assumes pow2 line size and set count;
  // 3-way geometry (sets = 4) must still hit/miss per set correctly.
  Cache c({"odd", 3u * 4u * 64u, 3, 64, 1});
  // Four lines mapping to the same set (stride = sets * line = 256).
  EXPECT_FALSE(c.access(0x0000, false));
  EXPECT_FALSE(c.access(0x0100, false));
  EXPECT_FALSE(c.access(0x0200, false));
  EXPECT_TRUE(c.access(0x0000, false));   // all three ways resident
  EXPECT_TRUE(c.access(0x0100, false));
  EXPECT_TRUE(c.access(0x0200, false));
  EXPECT_FALSE(c.access(0x0300, false));  // fourth line evicts LRU (0x0000)
  EXPECT_FALSE(c.access(0x0000, false));
  EXPECT_FALSE(c.access(0x0040, false));  // different set: its own miss
  EXPECT_TRUE(c.access(0x0040, false));
}

TEST(Hierarchy, StoresUpdateDirtyState) {
  MemoryHierarchy h{HierarchyConfig{}};
  h.dstore(0x8000);
  EXPECT_EQ(h.l1d().stats().misses, 1u);
  h.dstore(0x8000);
  EXPECT_EQ(h.l1d().stats().misses, 1u);
  EXPECT_EQ(h.l1d().stats().accesses, 2u);
}

}  // namespace
}  // namespace erel::mem
