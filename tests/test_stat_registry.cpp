// sim::StatRegistry: entry kinds, hierarchical paths, merge semantics and
// the SimStats view materialization (Instrumentation API v2).
#include <gtest/gtest.h>

#include "sim/stat_registry.hpp"
#include "sim/stats.hpp"

namespace erel {
namespace {

TEST(StatRegistry, CountersCreateOnFirstUseAndPersist) {
  sim::StatRegistry reg;
  sim::StatRegistry::Counter& c = reg.counter("a/b/c");
  ++c;
  c += 41;
  EXPECT_EQ(reg.counter_value("a/b/c"), 42u);
  // Same path returns the same entry.
  EXPECT_EQ(&reg.counter("a/b/c"), &c);
  // Missing paths read as zero / nullptr, and are not created by lookups.
  EXPECT_EQ(reg.counter_value("nope"), 0u);
  EXPECT_EQ(reg.find_counter("nope"), nullptr);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(StatRegistry, DistributionTracksMoments) {
  sim::StatRegistry reg;
  sim::StatRegistry::Distribution& d = reg.distribution("lat");
  d.observe(4.0);
  d.observe(1.0);
  d.observe(7.0);
  EXPECT_EQ(d.count, 3u);
  EXPECT_DOUBLE_EQ(d.mean(), 4.0);
  EXPECT_DOUBLE_EQ(d.min, 1.0);
  EXPECT_DOUBLE_EQ(d.max, 7.0);
}

TEST(StatRegistry, ChannelKeepsStride) {
  sim::StatRegistry reg;
  sim::StatRegistry::TimeSeries& ts = reg.channel("chan/x", 1000);
  ts.push(1.5);
  ts.push(2.5);
  const sim::StatRegistry::TimeSeries* found = reg.find_channel("chan/x");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->stride, 1000u);
  ASSERT_EQ(found->points.size(), 2u);
  EXPECT_DOUBLE_EQ(found->points[1], 2.5);
}

TEST(StatRegistry, MergeSumsCombinesAndAppends) {
  sim::StatRegistry a;
  a.counter("n") += 3;
  a.accum("integral") += 1.5;
  a.distribution("d").observe(2.0);
  a.channel("ts", 10).push(1.0);
  a.counter("only_in_a") += 7;

  sim::StatRegistry b;
  b.counter("n") += 4;
  b.accum("integral") += 2.25;
  b.distribution("d").observe(6.0);
  b.channel("ts", 10).push(2.0);
  b.counter("only_in_b") += 9;

  a.merge_from(b);
  EXPECT_EQ(a.counter_value("n"), 7u);
  EXPECT_DOUBLE_EQ(a.accum_value("integral"), 3.75);
  const auto* d = a.find_distribution("d");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->count, 2u);
  EXPECT_DOUBLE_EQ(d->min, 2.0);
  EXPECT_DOUBLE_EQ(d->max, 6.0);
  const auto* ts = a.find_channel("ts");
  ASSERT_NE(ts, nullptr);
  ASSERT_EQ(ts->points.size(), 2u);  // appended in merge order
  EXPECT_DOUBLE_EQ(ts->points[0], 1.0);
  EXPECT_DOUBLE_EQ(ts->points[1], 2.0);
  EXPECT_EQ(a.counter_value("only_in_a"), 7u);
  EXPECT_EQ(a.counter_value("only_in_b"), 9u);  // copied in
}

TEST(StatRegistry, EqualityIsDeepAndOrderIndependent) {
  sim::StatRegistry a, b;
  a.counter("x") += 1;
  a.accum("y") += 0.5;
  b.accum("y") += 0.5;  // different registration order, same content
  b.counter("x") += 1;
  EXPECT_EQ(a, b);
  ++b.counter("x");
  EXPECT_NE(a, b);
}

TEST(StatRegistry, FormatTreeNestsComponents) {
  sim::StatRegistry reg;
  reg.counter("stall/ros_full") += 5;
  reg.counter("stall/lsq_full") += 2;
  reg.counter("core/cycles") += 100;
  const std::string tree = reg.format_tree();
  EXPECT_NE(tree.find("stall:"), std::string::npos);
  EXPECT_NE(tree.find("  ros_full = 5"), std::string::npos);
  EXPECT_NE(tree.find("  lsq_full = 2"), std::string::npos);
  EXPECT_NE(tree.find("core:"), std::string::npos);
}

TEST(StatRegistry, MaterializeSimStatsReadsBuiltinPaths) {
  sim::StatRegistry reg;
  reg.counter(sim::kStatCycles) += 1000;
  reg.counter(sim::kStatCommitted) += 1700;
  reg.counter(sim::kStatHalted) += 1;
  reg.counter(sim::kStatCondBranches) += 40;
  reg.counter(sim::kStatCondMispredicts) += 4;
  reg.counter(sim::kStatStallFreeList) += 13;
  reg.counter("policy/fp/reuses") += 6;
  reg.counter("regfile/int/squash_released") += 3;
  reg.accum("regfile/int/empty_integral") += 5000.0;
  reg.accum("regfile/int/ready_integral") += 2500.0;
  reg.counter("cache/l1d/accesses") += 200;
  reg.counter("cache/l1d/misses") += 20;

  const sim::SimStats s = sim::materialize_sim_stats(reg);
  EXPECT_EQ(s.cycles, 1000u);
  EXPECT_EQ(s.committed, 1700u);
  EXPECT_TRUE(s.halted);
  EXPECT_DOUBLE_EQ(s.ipc(), 1.7);
  EXPECT_EQ(s.branches.cond_branches, 40u);
  EXPECT_EQ(s.branches.cond_mispredicts, 4u);
  EXPECT_EQ(s.stalls.free_list_empty, 13u);
  EXPECT_EQ(s.policy_stats[1].reuses, 6u);
  EXPECT_EQ(s.squash_released[0], 3u);
  EXPECT_DOUBLE_EQ(s.occupancy[0].avg_empty, 5.0);
  EXPECT_DOUBLE_EQ(s.occupancy[0].avg_ready, 2.5);
  EXPECT_DOUBLE_EQ(s.occupancy[0].avg_idle, 0.0);
  EXPECT_EQ(s.l1d.accesses, 200u);
  EXPECT_DOUBLE_EQ(s.l1d.miss_rate(), 0.1);
}

// ---------------------------------------------------------------------------
// Mid-run snapshots (live observability)
// ---------------------------------------------------------------------------

TEST(StatRegistrySnapshot, PublishingNeverChangesTheFinalRegistry) {
  // Two identical mutation sequences; one publishes snapshots mid-way
  // (with a subscriber), the other never does. Snapshot-then-finalize must
  // equal finalize: publishing is a pure copy, never a mutation.
  sim::StatRegistry watched, plain;
  watched.snapshot_subscribe();
  for (sim::StatRegistry* reg : {&watched, &plain}) {
    reg->counter("core/cycles") += 100;
    reg->channel("chan/ipc", 50).push(1.5);
  }
  watched.publish_snapshot();
  for (sim::StatRegistry* reg : {&watched, &plain}) {
    reg->counter("core/cycles") += 23;
    reg->channel("chan/ipc", 50).push(2.5);
    reg->distribution("lat").observe(4.0);
  }
  watched.publish_snapshot();
  watched.snapshot_unsubscribe();
  EXPECT_EQ(watched, plain);
}

TEST(StatRegistrySnapshot, SnapshotIsTheLastPublishedConsistentCopy) {
  sim::StatRegistry reg;
  // Nothing published yet: snapshot() is an empty registry, not garbage.
  EXPECT_EQ(reg.snapshot().size(), 0u);

  reg.snapshot_subscribe();
  reg.counter("a") += 7;
  reg.publish_snapshot();
  reg.counter("a") += 1;  // post-publish mutation is not visible

  const sim::StatRegistry snap = reg.snapshot();
  EXPECT_EQ(snap.counter_value("a"), 7u);
  EXPECT_EQ(reg.counter_value("a"), 8u);
  // Repeated reads see the same published copy until the next publish.
  EXPECT_EQ(reg.snapshot().counter_value("a"), 7u);
  reg.publish_snapshot();
  EXPECT_EQ(reg.snapshot().counter_value("a"), 8u);
  reg.snapshot_unsubscribe();
}

TEST(StatRegistrySnapshot, ZeroSubscribersMakePublishANoOp) {
  sim::StatRegistry reg;
  EXPECT_FALSE(reg.snapshot_wanted());
  reg.counter("a") += 42;
  reg.publish_snapshot();  // unwatched: no copy is made
  EXPECT_EQ(reg.snapshot().size(), 0u);

  reg.snapshot_subscribe();
  EXPECT_TRUE(reg.snapshot_wanted());
  reg.publish_snapshot();
  EXPECT_EQ(reg.snapshot().counter_value("a"), 42u);
  reg.snapshot_unsubscribe();
  EXPECT_FALSE(reg.snapshot_wanted());
}

TEST(StatRegistrySnapshot, CopiesTransferEntriesButNotSubscriptions) {
  sim::StatRegistry reg;
  reg.snapshot_subscribe();
  reg.counter("a") += 1;

  sim::StatRegistry copy = reg;          // copy: entries only
  EXPECT_EQ(copy, reg);
  EXPECT_FALSE(copy.snapshot_wanted());  // the subscription stayed behind
  copy.publish_snapshot();               // therefore a no-op on the copy
  EXPECT_EQ(copy.snapshot().size(), 0u);
  EXPECT_TRUE(reg.snapshot_wanted());
  reg.snapshot_unsubscribe();
}

}  // namespace
}  // namespace erel
