// Pipeline trace callback: event ordering and stage-cycle monotonicity for
// every committed instruction.
#include <gtest/gtest.h>

#include <vector>

#include "asmkit/assembler.hpp"
#include "sim/simulator.hpp"
#include "workloads/workloads.hpp"

namespace erel {
namespace {

TEST(Trace, StageCyclesAreMonotonePerInstruction) {
  sim::SimConfig config;
  config.policy = core::PolicyKind::Extended;
  config.phys_int = config.phys_fp = 48;
  std::vector<sim::SimConfig::TraceEvent> events;
  config.trace = [&events](const sim::SimConfig::TraceEvent& ev) {
    events.push_back(ev);
  };
  const sim::SimStats stats =
      sim::Simulator(config).run(workloads::assemble_workload("li"));
  ASSERT_EQ(events.size(), stats.committed);
  std::uint64_t prev_commit = 0;
  for (const auto& ev : events) {
    EXPECT_LT(ev.dispatch_cycle, ev.issue_cycle);
    EXPECT_LT(ev.issue_cycle, ev.complete_cycle);
    EXPECT_LT(ev.complete_cycle, ev.commit_cycle);
    EXPECT_GE(ev.commit_cycle, prev_commit);  // commit is in order
    prev_commit = ev.commit_cycle;
  }
}

TEST(Trace, OnlyCommittedInstructionsAppear) {
  // Heavy misprediction: far fewer commits than fetched instructions; the
  // trace must contain exactly the committed ones (every PC architectural).
  const char* src = R"(
main:
  li r5, 500
  li r6, 777
  li r20, 1103515245
loop:
  mul  r6, r6, r20
  addi r6, r6, 4321
  slli r6, r6, 32
  srli r6, r6, 32
  andi r7, r6, 1
  beqz r7, skip
  addi r8, r8, 1
skip:
  addi r5, r5, -1
  bnez r5, loop
  halt
)";
  const arch::Program program = asmkit::assemble(src);
  sim::SimConfig config;
  config.phys_int = config.phys_fp = 48;
  std::vector<std::uint64_t> pcs;
  config.trace = [&pcs](const sim::SimConfig::TraceEvent& ev) {
    pcs.push_back(ev.pc);
  };
  sim::Simulator(config).run(program);
  // Re-execute functionally and compare PCs one by one.
  arch::ArchState reference(program);
  for (const std::uint64_t pc : pcs) {
    const arch::StepInfo info = reference.step();
    ASSERT_EQ(info.pc, pc);
  }
}

TEST(Trace, DisabledByDefault) {
  sim::SimConfig config;
  EXPECT_FALSE(static_cast<bool>(config.trace));
}

}  // namespace
}  // namespace erel
