// Commit-event probes (the successor of the old SimConfig::trace hook):
// event ordering and stage-cycle monotonicity for every committed
// instruction.
#include <gtest/gtest.h>

#include <vector>

#include "asmkit/assembler.hpp"
#include "sim/probe.hpp"
#include "sim/simulator.hpp"
#include "workloads/workloads.hpp"

namespace erel {
namespace {

struct CommitRecorder final : sim::Probe {
  std::vector<sim::CommitEvent> events;
  void on_commit(const sim::CommitEvent& ev) override {
    sim::CommitEvent copy = ev;
    copy.inst = nullptr;  // pointers are valid during the callback only
    copy.rec = nullptr;
    events.push_back(copy);
  }
};

TEST(Trace, StageCyclesAreMonotonePerInstruction) {
  sim::SimConfig config;
  config.policy = core::PolicyKind::Extended;
  config.phys_int = config.phys_fp = 48;
  CommitRecorder recorder;
  const sim::SimStats stats = sim::Simulator(config).run(
      workloads::assemble_workload("li"), {&recorder});
  ASSERT_EQ(recorder.events.size(), stats.committed);
  std::uint64_t prev_commit = 0;
  for (const auto& ev : recorder.events) {
    EXPECT_LT(ev.dispatch_cycle, ev.issue_cycle);
    EXPECT_LT(ev.issue_cycle, ev.complete_cycle);
    EXPECT_LT(ev.complete_cycle, ev.commit_cycle);
    EXPECT_GE(ev.commit_cycle, prev_commit);  // commit is in order
    prev_commit = ev.commit_cycle;
  }
}

TEST(Trace, OnlyCommittedInstructionsAppear) {
  // Heavy misprediction: far fewer commits than fetched instructions; the
  // commit events must cover exactly the committed ones (every PC
  // architectural).
  const char* src = R"(
main:
  li r5, 500
  li r6, 777
  li r20, 1103515245
loop:
  mul  r6, r6, r20
  addi r6, r6, 4321
  slli r6, r6, 32
  srli r6, r6, 32
  andi r7, r6, 1
  beqz r7, skip
  addi r8, r8, 1
skip:
  addi r5, r5, -1
  bnez r5, loop
  halt
)";
  const arch::Program program = asmkit::assemble(src);
  sim::SimConfig config;
  config.phys_int = config.phys_fp = 48;
  CommitRecorder recorder;
  sim::Simulator(config).run(program, {&recorder});
  // Re-execute functionally and compare PCs one by one.
  arch::ArchState reference(program);
  for (const auto& ev : recorder.events) {
    const arch::StepInfo info = reference.step();
    ASSERT_EQ(info.pc, ev.pc);
  }
}

TEST(Trace, ProbesDoNotChangeResults) {
  // Attaching observers must leave the simulated statistics untouched.
  const arch::Program program = workloads::assemble_workload("li");
  sim::SimConfig config;
  config.policy = core::PolicyKind::Extended;
  config.phys_int = config.phys_fp = 48;
  const sim::SimStats bare = sim::Simulator(config).run(program);
  CommitRecorder recorder;
  const sim::SimStats probed =
      sim::Simulator(config).run(program, {&recorder});
  EXPECT_EQ(bare.cycles, probed.cycles);
  EXPECT_EQ(bare.committed, probed.committed);
  EXPECT_EQ(bare.stalls.free_list_empty, probed.stalls.free_list_empty);
  EXPECT_EQ(bare.branches.cond_mispredicts, probed.branches.cond_mispredicts);
  EXPECT_EQ(recorder.events.size(), probed.committed);
}

}  // namespace
}  // namespace erel
