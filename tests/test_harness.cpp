// Harness utilities: thread pool, harmonic mean, parallel run batches.
#include <gtest/gtest.h>

#include <atomic>

#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "harness/harness.hpp"

namespace erel {
namespace {

TEST(ThreadPool, RunsEveryTask) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 1000; ++i) pool.submit([&counter] { ++counter; });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(257);
  parallel_for(pool, hits.size(), [&hits](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, WaitIdleWithNoTasksReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
}

TEST(HarmonicMean, MatchesDefinition) {
  const double values[] = {1.0, 2.0, 4.0};
  EXPECT_NEAR(harness::harmonic_mean(values), 3.0 / (1.0 + 0.5 + 0.25), 1e-12);
}

TEST(HarmonicMean, SingleValueIdentity) {
  const double v[] = {2.5};
  EXPECT_DOUBLE_EQ(harness::harmonic_mean(v), 2.5);
}

TEST(HarmonicMean, DominatedBySmallest) {
  const double v[] = {0.1, 10.0, 10.0, 10.0};
  EXPECT_LT(harness::harmonic_mean(v), 0.4);
}

TEST(HarmonicMean, EmptyInputYieldsZero) {
  EXPECT_DOUBLE_EQ(harness::harmonic_mean({}), 0.0);
}

TEST(HarmonicMean, ZeroValueCollapsesToZero) {
  const double v[] = {1.0, 0.0, 4.0};
  EXPECT_DOUBLE_EQ(harness::harmonic_mean(v), 0.0);
}

TEST(HarmonicMean, NegativeValueCollapsesToZero) {
  const double v[] = {1.0, -2.0};
  EXPECT_DOUBLE_EQ(harness::harmonic_mean(v), 0.0);
}

TEST(Harness, RunAllPreservesOrderAndRunsInParallel) {
  std::vector<harness::RunSpec> specs;
  specs.push_back({"li",
                   harness::experiment_config(core::PolicyKind::Conventional,
                                              48),
                   "conv", {}, {}});
  specs.push_back(
      {"li", harness::experiment_config(core::PolicyKind::Extended, 48),
       "ext", {}, {}});
  const auto results = harness::run_all(specs, 2);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].spec.tag, "conv");
  EXPECT_EQ(results[1].spec.tag, "ext");
  EXPECT_TRUE(results[0].stats.halted);
  EXPECT_TRUE(results[1].stats.halted);
  EXPECT_GE(results[1].stats.ipc(), results[0].stats.ipc() * 0.98);
}

TEST(Harness, ExperimentConfigMatchesTable2Defaults) {
  const auto config =
      harness::experiment_config(core::PolicyKind::Extended, 56);
  EXPECT_EQ(config.phys_int, 56u);
  EXPECT_EQ(config.phys_fp, 56u);
  EXPECT_EQ(config.ros_size, 128u);
  EXPECT_EQ(config.lsq_size, 64u);
  EXPECT_EQ(config.max_pending_branches, 20u);
  EXPECT_EQ(config.ghr_bits, 18u);
  EXPECT_FALSE(config.check_oracle);
}

TEST(Harness, SweepSizesMatchFigure11Axis) {
  const auto& sizes = harness::register_sweep_sizes();
  EXPECT_EQ(sizes.front(), 40u);
  EXPECT_EQ(sizes.back(), 160u);
  EXPECT_TRUE(std::is_sorted(sizes.begin(), sizes.end()));
}

TEST(TextTable, AlignsColumns) {
  TextTable t({"name", "value"});
  t.add_row({"x", "1.5"});
  t.add_row({"longer", "10.25"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("10.25"), std::string::npos);
  // Numeric cells right-align: "1.5" is padded on the left.
  EXPECT_NE(out.find("   1.5"), std::string::npos);
}

TEST(TextTable, FormattingHelpers) {
  EXPECT_EQ(TextTable::num(1.23456, 2), "1.23");
  EXPECT_EQ(TextTable::pct(0.1234, 1), "12.3%");
}

TEST(Harness, LooseTightClassification) {
  sim::SimConfig config;  // N = 128, L = 32
  EXPECT_TRUE(config.is_loose(160));
  EXPECT_FALSE(config.is_loose(159));
  EXPECT_FALSE(config.is_loose(40));
}

}  // namespace
}  // namespace erel
