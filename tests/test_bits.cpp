#include "common/bits.hpp"

#include <gtest/gtest.h>

namespace erel {
namespace {

TEST(Bits, ExtractInsertRoundTrip) {
  std::uint32_t word = 0;
  word = put_bits(word, 24, 8, 0xAB);
  word = put_bits(word, 19, 5, 0x15);
  word = put_bits(word, 0, 9, 0x1FF);
  EXPECT_EQ(bits(word, 24, 8), 0xABu);
  EXPECT_EQ(bits(word, 19, 5), 0x15u);
  EXPECT_EQ(bits(word, 0, 9), 0x1FFu);
}

TEST(Bits, PutBitsOverwritesField) {
  std::uint32_t word = ~0u;
  word = put_bits(word, 8, 4, 0x0);
  EXPECT_EQ(bits(word, 8, 4), 0u);
  EXPECT_EQ(bits(word, 0, 8), 0xFFu);
  EXPECT_EQ(bits(word, 12, 20), 0xFFFFFu);
}

TEST(Bits, SignExtension) {
  EXPECT_EQ(sext(0x3FFF, 14), -1);
  EXPECT_EQ(sext(0x1FFF, 14), 8191);
  EXPECT_EQ(sext(0x2000, 14), -8192);
  EXPECT_EQ(sext(0, 14), 0);
  EXPECT_EQ(sext(0x80000000u, 32), INT64_C(-2147483648));
}

TEST(Bits, FitsSigned) {
  EXPECT_TRUE(fits_signed(8191, 14));
  EXPECT_FALSE(fits_signed(8192, 14));
  EXPECT_TRUE(fits_signed(-8192, 14));
  EXPECT_FALSE(fits_signed(-8193, 14));
  EXPECT_TRUE(fits_signed(0, 1));
  EXPECT_TRUE(fits_signed(-1, 1));
  EXPECT_FALSE(fits_signed(1, 1));
}

TEST(Bits, Pow2Helpers) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(4096));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(96));
  EXPECT_EQ(log2_exact(4096), 12u);
}

TEST(Bits, FpBitCastRoundTrip) {
  for (const double d : {0.0, 1.5, -3.25, 1e300, -1e-300}) {
    EXPECT_EQ(u2f(f2u(d)), d);
  }
}

TEST(Xorshift, DeterministicAcrossInstances) {
  Xorshift a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xorshift, DifferentSeedsDiverge) {
  Xorshift a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 10; ++i) {
    if (a.next() != b.next()) ++differing;
  }
  EXPECT_GT(differing, 5);
}

TEST(Xorshift, RangeBounds) {
  Xorshift rng(7);
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.range(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Xorshift, Uniform01InRange) {
  Xorshift rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

}  // namespace
}  // namespace erel
