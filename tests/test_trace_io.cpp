// Binary trace format: write -> read round-trip is bit-exact, the embedded
// program image reproduces the original, and the "trace:<path>" workload
// scheme re-simulates a recorded run.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <vector>

#include "asmkit/assembler.hpp"
#include "sim/simulator.hpp"
#include "trace/capture.hpp"
#include "trace/reader.hpp"
#include "trace/writer.hpp"
#include "workloads/workloads.hpp"

namespace erel {
namespace {

using sim::SimConfig;

std::string temp_path(const std::string& name) {
  return testing::TempDir() + name;
}

std::vector<char> file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void expect_events_equal(const std::vector<sim::CommitEvent>& a,
                         const std::vector<sim::CommitEvent>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].seq, b[i].seq) << "record " << i;
    EXPECT_EQ(a[i].pc, b[i].pc) << "record " << i;
    EXPECT_EQ(a[i].encoding, b[i].encoding) << "record " << i;
    EXPECT_EQ(a[i].dispatch_cycle, b[i].dispatch_cycle) << "record " << i;
    EXPECT_EQ(a[i].issue_cycle, b[i].issue_cycle) << "record " << i;
    EXPECT_EQ(a[i].complete_cycle, b[i].complete_cycle) << "record " << i;
    EXPECT_EQ(a[i].commit_cycle, b[i].commit_cycle) << "record " << i;
  }
}

TEST(TraceIo, RoundTripIsBitExact) {
  const std::string path = temp_path("roundtrip.ertr");
  const arch::Program program = workloads::assemble_workload("li");
  SimConfig config;
  config.phys_int = config.phys_fp = 48;
  // Capture composes with other probes: record the same commit stream
  // through a second observer and compare against the decoded file.
  struct Recorder final : sim::Probe {
    std::vector<sim::CommitEvent> events;
    void on_commit(const sim::CommitEvent& ev) override {
      sim::CommitEvent copy = ev;
      copy.inst = nullptr;
      copy.rec = nullptr;
      events.push_back(copy);
    }
  } recorder;
  sim::SimStats stats;
  {
    trace::TraceWriter writer(path, program);
    trace::CaptureProbe capture(writer);
    stats = sim::Simulator(config).run(program, {&capture, &recorder});
    writer.finish();
  }
  const std::vector<sim::CommitEvent>& captured = recorder.events;
  ASSERT_GT(stats.committed, 0u);
  ASSERT_EQ(captured.size(), stats.committed);  // both probes saw every commit

  trace::TraceReader reader(path);
  EXPECT_EQ(reader.version(), trace::kFormatVersion);
  EXPECT_EQ(reader.num_records(), stats.committed);
  const auto decoded = reader.read_all();
  expect_events_equal(captured, decoded);

  // Re-encoding the decoded records reproduces the file byte for byte.
  const std::string path2 = temp_path("roundtrip2.ertr");
  {
    trace::TraceWriter rewriter(path2, reader.program());
    for (const auto& ev : decoded) rewriter.append(ev);
  }
  EXPECT_EQ(file_bytes(path), file_bytes(path2));
  std::remove(path.c_str());
  std::remove(path2.c_str());
}

TEST(TraceIo, EmbeddedProgramImageRoundTrips) {
  const std::string path = temp_path("program.ertr");
  const arch::Program program = workloads::assemble_workload("compress");
  SimConfig config;
  config.check_oracle = false;
  trace::capture(program, config, path);

  trace::TraceReader reader(path);
  ASSERT_TRUE(reader.has_program());
  const arch::Program& restored = reader.program();
  EXPECT_EQ(restored.entry, program.entry);
  EXPECT_EQ(restored.code_base, program.code_base);
  EXPECT_EQ(restored.code, program.code);
  EXPECT_EQ(restored.symbols, program.symbols);
  ASSERT_EQ(restored.data.size(), program.data.size());
  for (std::size_t i = 0; i < program.data.size(); ++i) {
    EXPECT_EQ(restored.data[i].base, program.data[i].base);
    EXPECT_EQ(restored.data[i].bytes, program.data[i].bytes);
  }
  std::remove(path.c_str());
}

TEST(TraceIo, TimingOnlyTraceHasNoProgram) {
  const std::string path = temp_path("timing_only.ertr");
  {
    trace::TraceWriter writer(path);
    sim::CommitEvent ev;
    ev.seq = 7;
    ev.pc = 0x10000;
    ev.encoding = 0xdeadbeef;
    ev.dispatch_cycle = 1;
    ev.issue_cycle = 2;
    ev.complete_cycle = 5;
    ev.commit_cycle = 9;
    writer.append(ev);
  }
  trace::TraceReader reader(path);
  EXPECT_FALSE(reader.has_program());
  ASSERT_EQ(reader.num_records(), 1u);
  const auto ev = reader.next();
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->seq, 7u);
  EXPECT_EQ(ev->pc, 0x10000u);
  EXPECT_EQ(ev->encoding, 0xdeadbeefu);
  EXPECT_EQ(ev->commit_cycle, 9u);
  EXPECT_FALSE(reader.next().has_value());
  std::remove(path.c_str());
}

TEST(TraceIo, RewindRestartsTheStream) {
  const std::string path = temp_path("rewind.ertr");
  const arch::Program program = asmkit::assemble(R"(
main:
  li r1, 10
loop:
  addi r1, r1, -1
  bnez r1, loop
  halt
)");
  SimConfig config;
  trace::capture(program, config, path);
  trace::TraceReader reader(path);
  const auto first = reader.read_all();
  reader.rewind();
  const auto second = reader.read_all();
  expect_events_equal(first, second);
  std::remove(path.c_str());
}

TEST(TraceIo, PartialReadThenRewindResyncsDeltaState) {
  // The reader streams records through a chunked file cursor; rewinding
  // mid-stream must reset both the file position and the delta-decode state,
  // even when the abandoned read stopped inside a buffered chunk.
  const std::string path = temp_path("partial_rewind.ertr");
  const arch::Program program = workloads::assemble_workload("li");
  SimConfig config;
  config.check_oracle = false;
  trace::capture(program, config, path);

  trace::TraceReader reader(path);
  ASSERT_GT(reader.num_records(), 100u);
  const auto full = reader.read_all();
  reader.rewind();
  for (int i = 0; i < 37; ++i) ASSERT_TRUE(reader.next().has_value());
  reader.rewind();
  const auto again = reader.read_all();
  expect_events_equal(full, again);
  std::remove(path.c_str());
}

TEST(TraceIo, LargeTraceStreamsAcrossChunkBoundaries) {
  // "li" commits tens of thousands of instructions, so its record section is
  // several times the reader's 64 KB chunk: every record must survive varint
  // decoding across refills.
  const std::string path = temp_path("chunked.ertr");
  const arch::Program program = workloads::assemble_workload("li");
  SimConfig config;
  config.check_oracle = false;
  const sim::SimStats stats = trace::capture(program, config, path);
  ASSERT_GT(file_bytes(path).size(), 2u * 64 * 1024);

  trace::TraceReader reader(path);
  std::uint64_t count = 0;
  std::uint64_t last_commit = 0;
  while (auto ev = reader.next()) {
    EXPECT_GE(ev->commit_cycle, last_commit);
    last_commit = ev->commit_cycle;
    ++count;
  }
  EXPECT_EQ(count, stats.committed);
  std::remove(path.c_str());
}

TEST(TraceIo, SummarizeMatchesSimulatorStats) {
  const std::string path = temp_path("summary.ertr");
  const arch::Program program = workloads::assemble_workload("li");
  SimConfig config;
  config.check_oracle = false;
  const sim::SimStats stats = trace::capture(program, config, path);
  const trace::ReplaySummary summary = trace::summarize(path);
  EXPECT_EQ(summary.instructions, stats.committed);
  EXPECT_LE(summary.cycles, stats.cycles);
  EXPECT_NEAR(summary.ipc, stats.ipc(), 0.05 * stats.ipc());
  EXPECT_GT(summary.avg_latency(), 0.0);
  std::remove(path.c_str());
}

TEST(TraceIo, TraceWorkloadSchemeReplaysRecordedRun) {
  const std::string path = temp_path("replay_workload.ertr");
  const arch::Program program = workloads::assemble_workload("li");
  SimConfig config;
  config.phys_int = config.phys_fp = 48;
  const sim::SimStats original = trace::capture(program, config, path);

  const std::string name = std::string(workloads::kTracePrefix) + path;
  ASSERT_TRUE(workloads::is_trace_workload(name));
  EXPECT_FALSE(workloads::is_trace_workload("li"));
  const arch::Program replayed = workloads::assemble_workload(name);
  const sim::SimStats rerun = sim::Simulator(config).run(replayed);
  EXPECT_EQ(rerun.committed, original.committed);
  EXPECT_EQ(rerun.cycles, original.cycles);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace erel
