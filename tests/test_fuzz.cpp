// Property-based fuzzing: structured random programs (always-terminating)
// executed under every policy with lock-step oracle checking, with and
// without injected exception flushes. Any divergence between the OoO model
// and sequential semantics — or any double-free / leak in the release
// machinery — aborts the run.
// A second corpus drives net::FrameDecoder through seeded fault schedules
// (net/fault.hpp): every truncation point, chunking, and header corruption
// must land in need-more / truncated-EOF / poisoned-error — never a crash,
// never a phantom frame.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "asmkit/assembler.hpp"
#include "common/bits.hpp"
#include "net/fault.hpp"
#include "net/frame.hpp"
#include "sim/simulator.hpp"

namespace erel {
namespace {

using core::PolicyKind;

/// Generates a random but deterministic, always-halting program:
///   - an outer counted loop (so dynamic length is controlled),
///   - blocks of random int/FP arithmetic over a rotating register pool
///     (heavy redefinition -> lots of NV/LU pairs),
///   - aligned loads/stores into a scratch buffer (forwarding traffic),
///   - short forward branches on data-dependent conditions (mispredicts),
///   - calls to a leaf function (RAS + checkpoint traffic).
std::string generate_program(std::uint64_t seed, unsigned blocks,
                             unsigned iterations) {
  Xorshift rng(seed);
  std::ostringstream os;
  os << "main:\n";
  os << "  li r2, 0x200000\n";      // stack
  os << "  la r28, buf\n";          // scratch buffer base
  os << "  li r29, " << iterations << "\n";
  os << "  li r26, " << 12345 + seed % 1000 << "\n";  // data seed
  os << "  la r27, fconsts\n";
  os << "  fld f28, 0(r27)\n";      // 1.0009765625 (keeps values tame)
  os << "  fld f29, 8(r27)\n";      // 0.999
  // Initialize the register pools so every source is defined.
  for (int r = 3; r <= 15; ++r) os << "  li r" << r << ", " << rng.range(1, 1000) << "\n";
  for (int f = 1; f <= 15; ++f) {
    os << "  cvtdi f" << f << ", r" << rng.range(3, 15) << "\n";
  }
  os << "outer:\n";

  int label = 0;
  for (unsigned b = 0; b < blocks; ++b) {
    const int kind = static_cast<int>(rng.below(10));
    const int rd = static_cast<int>(rng.range(3, 15));
    const int ra = static_cast<int>(rng.range(3, 15));
    const int rb = static_cast<int>(rng.range(3, 15));
    const int fd = static_cast<int>(rng.range(1, 15));
    const int fa = static_cast<int>(rng.range(1, 15));
    const int fb = static_cast<int>(rng.range(1, 15));
    switch (kind) {
      case 0:
      case 1: {  // int ALU burst
        static const char* ops[] = {"add", "sub", "xor", "or", "and", "sll"};
        const char* op = ops[rng.below(6)];
        if (std::string(op) == "sll") {
          os << "  andi r" << rb << ", r" << rb << ", 7\n";
        }
        os << "  " << op << " r" << rd << ", r" << ra << ", r" << rb << "\n";
        os << "  addi r" << rd << ", r" << rd << ", " << rng.range(-100, 100)
           << "\n";
        break;
      }
      case 2: {  // multiply / divide
        os << "  mul r" << rd << ", r" << ra << ", r" << rb << "\n";
        os << "  ori r" << rb << ", r" << rb << ", 1\n";  // nonzero divisor
        os << "  div r" << rd << ", r" << ra << ", r" << rb << "\n";
        break;
      }
      case 3: {  // FP chain (kept bounded by the damping constants)
        static const char* fops[] = {"fadd", "fsub", "fmul", "fmin", "fmax"};
        os << "  " << fops[rng.below(5)] << " f" << fd << ", f" << fa << ", f"
           << fb << "\n";
        os << "  fmul f" << fd << ", f" << fd << ", f29\n";
        break;
      }
      case 4: {  // FP unary + compare into int
        os << "  fabs f" << fd << ", f" << fa << "\n";
        os << "  flt r" << rd << ", f" << fa << ", f" << fb << "\n";
        break;
      }
      case 5: {  // store then (often) reload: forwarding traffic
        os << "  andi r25, r" << ra << ", 504\n";  // aligned offset in buf
        os << "  add r25, r28, r25\n";
        os << "  sd r" << rb << ", 0(r25)\n";
        if (rng.chance(0.7)) os << "  ld r" << rd << ", 0(r25)\n";
        break;
      }
      case 6: {  // FP memory round trip
        os << "  andi r25, r" << ra << ", 504\n";
        os << "  add r25, r28, r25\n";
        os << "  fsd f" << fa << ", 0(r25)\n";
        os << "  fld f" << fd << ", 0(r25)\n";
        break;
      }
      case 7: {  // data-dependent forward branch
        const int skip = label++;
        os << "  andi r25, r" << ra << ", " << (1 << rng.below(3)) << "\n";
        os << "  beqz r25, fz_skip" << skip << "\n";
        os << "  addi r" << rd << ", r" << rd << ", 13\n";
        os << "  xor r" << rb << ", r" << rb << ", r" << ra << "\n";
        os << "fz_skip" << skip << ":\n";
        break;
      }
      case 8: {  // call a leaf
        os << "  call leaf" << rng.below(2) << "\n";
        break;
      }
      case 9: {  // byte traffic (sub-word forwarding paths)
        os << "  andi r25, r" << ra << ", 255\n";
        os << "  add r25, r28, r25\n";
        os << "  sb r" << rb << ", 0(r25)\n";
        os << "  lbu r" << rd << ", 0(r25)\n";
        break;
      }
    }
  }
  // Close the outer loop.
  os << "  addi r29, r29, -1\n";
  os << "  bnez r29, outer\n";
  // Checksums.
  os << "  la r25, result\n";
  os << "  li r24, 0\n";
  for (int r = 3; r <= 15; ++r) os << "  add r24, r24, r" << r << "\n";
  os << "  sd r24, 0(r25)\n";
  os << "  cvtid r24, f1\n";
  os << "  sd r24, 8(r25)\n";
  os << "  halt\n";
  // Leaf functions.
  os << "leaf0:\n  addi r20, r20, 1\n  ret\n";
  os << "leaf1:\n  xori r21, r21, 0x3f\n  addi r21, r21, 3\n  ret\n";
  os << ".data\n";
  os << "fconsts: .double 1.0009765625, 0.999\n";
  os << "buf: .space 512\n";
  os << "result: .space 16\n";
  return os.str();
}

struct FuzzCase {
  std::uint64_t seed;
  PolicyKind policy;
  unsigned phys;
  std::uint64_t flush_period;  // 0 = no injection
};

std::string case_name(const testing::TestParamInfo<FuzzCase>& info) {
  return "s" + std::to_string(info.param.seed) + "_" +
         std::string(core::policy_name(info.param.policy)) + "_p" +
         std::to_string(info.param.phys) + "_f" +
         std::to_string(info.param.flush_period);
}

class RandomPrograms : public testing::TestWithParam<FuzzCase> {};

TEST_P(RandomPrograms, OracleExact) {
  const FuzzCase& c = GetParam();
  const std::string src =
      generate_program(c.seed, /*blocks=*/40 + c.seed % 30, /*iterations=*/800);
  const arch::Program program = asmkit::assemble(src);

  sim::SimConfig config;
  config.policy = c.policy;
  config.phys_int = c.phys;
  config.phys_fp = c.phys;
  config.check_oracle = true;
  config.flush_period = c.flush_period;
  config.max_instructions = 150'000;
  sim::Simulator simulator(config);
  auto core = simulator.make_core(program);
  const sim::SimStats stats = core->run();
  EXPECT_GT(stats.committed, 10'000u);
  EXPECT_TRUE(core->conservation_holds());
}

std::vector<FuzzCase> fuzz_cases() {
  std::vector<FuzzCase> cases;
  const PolicyKind policies[] = {PolicyKind::Conventional, PolicyKind::Basic,
                                 PolicyKind::Extended};
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const PolicyKind policy = policies[seed % 3];
    const unsigned phys = 36 + 4 * (seed % 6);  // 36..56: tight files
    const std::uint64_t flush = (seed % 2 == 0) ? 409 + 13 * seed : 0;
    cases.push_back({seed, policy, phys, flush});
    // Every seed also runs under the extended policy (the complex one).
    if (policy != PolicyKind::Extended)
      cases.push_back({seed, PolicyKind::Extended, phys, flush});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPrograms,
                         testing::ValuesIn(fuzz_cases()), case_name);

TEST(FuzzDeterminism, SameSeedSameChecksum) {
  const std::string src = generate_program(7, 40, 300);
  const arch::Program program = asmkit::assemble(src);
  sim::SimConfig config;
  config.phys_int = config.phys_fp = 48;
  config.policy = PolicyKind::Extended;
  config.check_oracle = false;
  sim::Simulator simulator(config);
  auto a = simulator.make_core(program);
  auto b = simulator.make_core(program);
  a->run();
  b->run();
  const std::uint64_t result = program.symbols.at("result");
  EXPECT_EQ(a->memory().read_u64(result), b->memory().read_u64(result));
  EXPECT_EQ(a->cycle(), b->cycle());  // timing is deterministic too
}

TEST(FuzzDeterminism, PoliciesAgreeOnArchitecture) {
  // All three policies must compute identical results (timing differs).
  const std::string src = generate_program(11, 50, 400);
  const arch::Program program = asmkit::assemble(src);
  std::uint64_t checksum[3];
  int i = 0;
  for (const PolicyKind policy :
       {PolicyKind::Conventional, PolicyKind::Basic, PolicyKind::Extended}) {
    sim::SimConfig config;
    config.policy = policy;
    config.phys_int = config.phys_fp = 40;
    config.check_oracle = false;
    sim::Simulator simulator(config);
    auto core = simulator.make_core(program);
    core->run();
    checksum[i++] = core->memory().read_u64(program.symbols.at("result"));
  }
  EXPECT_EQ(checksum[0], checksum[1]);
  EXPECT_EQ(checksum[1], checksum[2]);
}

// ---------------------------------------------------------------------------
// FrameDecoder vs seeded fault schedules.

/// A deterministic multi-frame wire image: frame count, types, payload
/// sizes and payload bytes all drawn from the plan, including empty and
/// multi-KB payloads.
std::vector<net::Frame> corpus_frames(const net::FaultPlan& plan) {
  std::vector<net::Frame> frames;
  const std::uint64_t count = 2 + plan.draw(10, 0, 4);  // 2..5 frames
  for (std::uint64_t i = 0; i < count; ++i) {
    net::Frame frame;
    frame.type = static_cast<std::uint8_t>(plan.draw(11, i, 256));
    const std::uint64_t size = plan.draw(12, i, 3) == 0
                                   ? 0  // empty payloads are legal
                                   : 1 + plan.draw(13, i, 4096);
    frame.payload.reserve(size);
    for (std::uint64_t b = 0; b < size; ++b)
      frame.payload.push_back(
          static_cast<char>(plan.draw(14, i * 131 + b, 256)));
    frames.push_back(std::move(frame));
  }
  return frames;
}

std::string wire_image(const std::vector<net::Frame>& frames) {
  std::string wire;
  for (const net::Frame& frame : frames) wire += net::encode_frame(frame);
  return wire;
}

/// Drains the decoder; appends produced frames. Returns the last status.
net::FrameDecoder::Status drain(net::FrameDecoder& decoder,
                                std::vector<net::Frame>& out) {
  net::Frame frame;
  for (;;) {
    const net::FrameDecoder::Status status = decoder.next(frame);
    if (status != net::FrameDecoder::Status::kFrame) return status;
    out.push_back(frame);
  }
}

TEST(FrameDecoderFuzz, EveryTruncationPointIsNeedMoreOrCleanBoundary) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const net::FaultPlan plan(seed);
    const std::vector<net::Frame> frames = corpus_frames(plan);
    const std::string wire = wire_image(frames);

    // Cutting the stream after `cut` bytes must yield exactly the frames
    // whose bytes fully arrived, then kNeedMore; mid_frame() must flag the
    // cut as truncation iff it landed inside a frame. Scanning every byte
    // of multi-KB frames re-tests the same interior state, so interiors
    // are sampled while every header byte and frame boundary is exact.
    std::vector<std::size_t> cuts;
    std::size_t boundary = 0;
    for (const net::Frame& frame : frames) {
      const std::size_t wire_size =
          net::kFrameHeaderSize + frame.payload.size();
      for (std::size_t h = 0; h <= net::kFrameHeaderSize; ++h)
        cuts.push_back(boundary + h);
      for (int k = 0; k < 16; ++k)
        cuts.push_back(boundary + plan.draw(15, boundary + k, wire_size));
      boundary += wire_size;
      cuts.push_back(boundary);
    }
    for (const std::size_t cut : cuts) {
      net::FrameDecoder decoder;
      decoder.feed(std::string_view(wire).substr(0, cut));
      std::vector<net::Frame> got;
      const net::FrameDecoder::Status status = drain(decoder, got);
      ASSERT_EQ(status, net::FrameDecoder::Status::kNeedMore)
          << "seed " << seed << " cut " << cut;
      // Frames entirely before the cut decode intact; nothing phantom.
      std::size_t complete = 0;
      std::size_t offset = 0;
      for (const net::Frame& frame : frames) {
        offset += net::kFrameHeaderSize + frame.payload.size();
        if (offset > cut) break;
        ++complete;
      }
      ASSERT_EQ(got.size(), complete) << "seed " << seed << " cut " << cut;
      for (std::size_t i = 0; i < complete; ++i) ASSERT_EQ(got[i], frames[i]);
      // EOF here would be truncation exactly when the cut is mid-frame.
      const bool at_boundary = [&] {
        std::size_t pos = 0;
        if (cut == 0) return true;
        for (const net::Frame& frame : frames) {
          pos += net::kFrameHeaderSize + frame.payload.size();
          if (pos == cut) return true;
        }
        return false;
      }();
      EXPECT_EQ(decoder.mid_frame(), !at_boundary)
          << "seed " << seed << " cut " << cut;
    }
  }
}

TEST(FrameDecoderFuzz, ChunkedDeliveryReassemblesBitIdentically) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const net::FaultPlan plan(seed);
    const std::vector<net::Frame> frames = corpus_frames(plan);
    const std::string wire = wire_image(frames);

    // Short-write-style delivery: the stream arrives in 1..7-byte slivers
    // (the FaultSpec::kShortWrite shape) with draining interleaved.
    net::FrameDecoder decoder;
    std::vector<net::Frame> got;
    std::size_t offset = 0;
    std::uint64_t k = 0;
    while (offset < wire.size()) {
      const std::size_t chunk = 1 + plan.draw(16, k++, 7);
      decoder.feed(std::string_view(wire).substr(offset, chunk));
      offset += chunk;
      ASSERT_EQ(drain(decoder, got), net::FrameDecoder::Status::kNeedMore);
    }
    ASSERT_EQ(got.size(), frames.size()) << "seed " << seed;
    for (std::size_t i = 0; i < frames.size(); ++i)
      EXPECT_EQ(got[i], frames[i]) << "seed " << seed << " frame " << i;
    EXPECT_FALSE(decoder.mid_frame());
  }
}

TEST(FrameDecoderFuzz, HeaderCorruptionPoisonsInsteadOfAccepting) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const net::FaultPlan plan(seed);
    const std::vector<net::Frame> frames = corpus_frames(plan);
    const std::string wire = wire_image(frames);

    // Flip one magic byte of a drawn frame: every frame before it decodes,
    // then the decoder poisons and stays poisoned even when fed the valid
    // remainder. (Type and payload bytes are opaque — only the magic and
    // the length bound are checkable — so corruption targets the magic.)
    const std::uint64_t victim = plan.draw(17, 0, frames.size());
    std::size_t victim_offset = 0;
    for (std::uint64_t i = 0; i < victim; ++i)
      victim_offset += net::kFrameHeaderSize + frames[i].payload.size();
    const std::size_t flip = victim_offset + plan.draw(17, 1, 4);
    std::string corrupt = wire;
    corrupt[flip] = static_cast<char>(corrupt[flip] + 1);

    net::FrameDecoder decoder;
    decoder.feed(corrupt);
    std::vector<net::Frame> got;
    ASSERT_EQ(drain(decoder, got), net::FrameDecoder::Status::kError)
        << "seed " << seed;
    ASSERT_EQ(got.size(), victim) << "seed " << seed;
    for (std::size_t i = 0; i < got.size(); ++i) EXPECT_EQ(got[i], frames[i]);
    EXPECT_TRUE(decoder.poisoned());
    decoder.feed(wire);  // fresh valid bytes cannot un-poison it
    net::Frame frame;
    EXPECT_EQ(decoder.next(frame), net::FrameDecoder::Status::kError);
  }
}

TEST(FrameDecoderFuzz, OversizedLengthIsAnErrorNotAnAllocation) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const net::FaultPlan plan(seed);
    // A valid magic + type followed by a length beyond kMaxFramePayload.
    const std::uint64_t over =
        net::kMaxFramePayload + 1 + plan.draw(18, 0, 1u << 30);
    std::string wire;
    wire.push_back('E');
    wire.push_back('R');
    wire.push_back('E');
    wire.push_back('L');
    wire.push_back(static_cast<char>(plan.draw(18, 1, 256)));
    for (int b = 0; b < 4; ++b)
      wire.push_back(static_cast<char>((over >> (8 * b)) & 0xff));
    net::FrameDecoder decoder;
    decoder.feed(wire);
    net::Frame frame;
    EXPECT_EQ(decoder.next(frame), net::FrameDecoder::Status::kError)
        << "seed " << seed;
    EXPECT_TRUE(decoder.poisoned());
  }
}

}  // namespace
}  // namespace erel
