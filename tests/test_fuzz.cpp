// Property-based fuzzing: structured random programs (always-terminating)
// executed under every policy with lock-step oracle checking, with and
// without injected exception flushes. Any divergence between the OoO model
// and sequential semantics — or any double-free / leak in the release
// machinery — aborts the run.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "asmkit/assembler.hpp"
#include "common/bits.hpp"
#include "sim/simulator.hpp"

namespace erel {
namespace {

using core::PolicyKind;

/// Generates a random but deterministic, always-halting program:
///   - an outer counted loop (so dynamic length is controlled),
///   - blocks of random int/FP arithmetic over a rotating register pool
///     (heavy redefinition -> lots of NV/LU pairs),
///   - aligned loads/stores into a scratch buffer (forwarding traffic),
///   - short forward branches on data-dependent conditions (mispredicts),
///   - calls to a leaf function (RAS + checkpoint traffic).
std::string generate_program(std::uint64_t seed, unsigned blocks,
                             unsigned iterations) {
  Xorshift rng(seed);
  std::ostringstream os;
  os << "main:\n";
  os << "  li r2, 0x200000\n";      // stack
  os << "  la r28, buf\n";          // scratch buffer base
  os << "  li r29, " << iterations << "\n";
  os << "  li r26, " << 12345 + seed % 1000 << "\n";  // data seed
  os << "  la r27, fconsts\n";
  os << "  fld f28, 0(r27)\n";      // 1.0009765625 (keeps values tame)
  os << "  fld f29, 8(r27)\n";      // 0.999
  // Initialize the register pools so every source is defined.
  for (int r = 3; r <= 15; ++r) os << "  li r" << r << ", " << rng.range(1, 1000) << "\n";
  for (int f = 1; f <= 15; ++f) {
    os << "  cvtdi f" << f << ", r" << rng.range(3, 15) << "\n";
  }
  os << "outer:\n";

  int label = 0;
  for (unsigned b = 0; b < blocks; ++b) {
    const int kind = static_cast<int>(rng.below(10));
    const int rd = static_cast<int>(rng.range(3, 15));
    const int ra = static_cast<int>(rng.range(3, 15));
    const int rb = static_cast<int>(rng.range(3, 15));
    const int fd = static_cast<int>(rng.range(1, 15));
    const int fa = static_cast<int>(rng.range(1, 15));
    const int fb = static_cast<int>(rng.range(1, 15));
    switch (kind) {
      case 0:
      case 1: {  // int ALU burst
        static const char* ops[] = {"add", "sub", "xor", "or", "and", "sll"};
        const char* op = ops[rng.below(6)];
        if (std::string(op) == "sll") {
          os << "  andi r" << rb << ", r" << rb << ", 7\n";
        }
        os << "  " << op << " r" << rd << ", r" << ra << ", r" << rb << "\n";
        os << "  addi r" << rd << ", r" << rd << ", " << rng.range(-100, 100)
           << "\n";
        break;
      }
      case 2: {  // multiply / divide
        os << "  mul r" << rd << ", r" << ra << ", r" << rb << "\n";
        os << "  ori r" << rb << ", r" << rb << ", 1\n";  // nonzero divisor
        os << "  div r" << rd << ", r" << ra << ", r" << rb << "\n";
        break;
      }
      case 3: {  // FP chain (kept bounded by the damping constants)
        static const char* fops[] = {"fadd", "fsub", "fmul", "fmin", "fmax"};
        os << "  " << fops[rng.below(5)] << " f" << fd << ", f" << fa << ", f"
           << fb << "\n";
        os << "  fmul f" << fd << ", f" << fd << ", f29\n";
        break;
      }
      case 4: {  // FP unary + compare into int
        os << "  fabs f" << fd << ", f" << fa << "\n";
        os << "  flt r" << rd << ", f" << fa << ", f" << fb << "\n";
        break;
      }
      case 5: {  // store then (often) reload: forwarding traffic
        os << "  andi r25, r" << ra << ", 504\n";  // aligned offset in buf
        os << "  add r25, r28, r25\n";
        os << "  sd r" << rb << ", 0(r25)\n";
        if (rng.chance(0.7)) os << "  ld r" << rd << ", 0(r25)\n";
        break;
      }
      case 6: {  // FP memory round trip
        os << "  andi r25, r" << ra << ", 504\n";
        os << "  add r25, r28, r25\n";
        os << "  fsd f" << fa << ", 0(r25)\n";
        os << "  fld f" << fd << ", 0(r25)\n";
        break;
      }
      case 7: {  // data-dependent forward branch
        const int skip = label++;
        os << "  andi r25, r" << ra << ", " << (1 << rng.below(3)) << "\n";
        os << "  beqz r25, fz_skip" << skip << "\n";
        os << "  addi r" << rd << ", r" << rd << ", 13\n";
        os << "  xor r" << rb << ", r" << rb << ", r" << ra << "\n";
        os << "fz_skip" << skip << ":\n";
        break;
      }
      case 8: {  // call a leaf
        os << "  call leaf" << rng.below(2) << "\n";
        break;
      }
      case 9: {  // byte traffic (sub-word forwarding paths)
        os << "  andi r25, r" << ra << ", 255\n";
        os << "  add r25, r28, r25\n";
        os << "  sb r" << rb << ", 0(r25)\n";
        os << "  lbu r" << rd << ", 0(r25)\n";
        break;
      }
    }
  }
  // Close the outer loop.
  os << "  addi r29, r29, -1\n";
  os << "  bnez r29, outer\n";
  // Checksums.
  os << "  la r25, result\n";
  os << "  li r24, 0\n";
  for (int r = 3; r <= 15; ++r) os << "  add r24, r24, r" << r << "\n";
  os << "  sd r24, 0(r25)\n";
  os << "  cvtid r24, f1\n";
  os << "  sd r24, 8(r25)\n";
  os << "  halt\n";
  // Leaf functions.
  os << "leaf0:\n  addi r20, r20, 1\n  ret\n";
  os << "leaf1:\n  xori r21, r21, 0x3f\n  addi r21, r21, 3\n  ret\n";
  os << ".data\n";
  os << "fconsts: .double 1.0009765625, 0.999\n";
  os << "buf: .space 512\n";
  os << "result: .space 16\n";
  return os.str();
}

struct FuzzCase {
  std::uint64_t seed;
  PolicyKind policy;
  unsigned phys;
  std::uint64_t flush_period;  // 0 = no injection
};

std::string case_name(const testing::TestParamInfo<FuzzCase>& info) {
  return "s" + std::to_string(info.param.seed) + "_" +
         std::string(core::policy_name(info.param.policy)) + "_p" +
         std::to_string(info.param.phys) + "_f" +
         std::to_string(info.param.flush_period);
}

class RandomPrograms : public testing::TestWithParam<FuzzCase> {};

TEST_P(RandomPrograms, OracleExact) {
  const FuzzCase& c = GetParam();
  const std::string src =
      generate_program(c.seed, /*blocks=*/40 + c.seed % 30, /*iterations=*/800);
  const arch::Program program = asmkit::assemble(src);

  sim::SimConfig config;
  config.policy = c.policy;
  config.phys_int = c.phys;
  config.phys_fp = c.phys;
  config.check_oracle = true;
  config.flush_period = c.flush_period;
  config.max_instructions = 150'000;
  sim::Simulator simulator(config);
  auto core = simulator.make_core(program);
  const sim::SimStats stats = core->run();
  EXPECT_GT(stats.committed, 10'000u);
  EXPECT_TRUE(core->conservation_holds());
}

std::vector<FuzzCase> fuzz_cases() {
  std::vector<FuzzCase> cases;
  const PolicyKind policies[] = {PolicyKind::Conventional, PolicyKind::Basic,
                                 PolicyKind::Extended};
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const PolicyKind policy = policies[seed % 3];
    const unsigned phys = 36 + 4 * (seed % 6);  // 36..56: tight files
    const std::uint64_t flush = (seed % 2 == 0) ? 409 + 13 * seed : 0;
    cases.push_back({seed, policy, phys, flush});
    // Every seed also runs under the extended policy (the complex one).
    if (policy != PolicyKind::Extended)
      cases.push_back({seed, PolicyKind::Extended, phys, flush});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPrograms,
                         testing::ValuesIn(fuzz_cases()), case_name);

TEST(FuzzDeterminism, SameSeedSameChecksum) {
  const std::string src = generate_program(7, 40, 300);
  const arch::Program program = asmkit::assemble(src);
  sim::SimConfig config;
  config.phys_int = config.phys_fp = 48;
  config.policy = PolicyKind::Extended;
  config.check_oracle = false;
  sim::Simulator simulator(config);
  auto a = simulator.make_core(program);
  auto b = simulator.make_core(program);
  a->run();
  b->run();
  const std::uint64_t result = program.symbols.at("result");
  EXPECT_EQ(a->memory().read_u64(result), b->memory().read_u64(result));
  EXPECT_EQ(a->cycle(), b->cycle());  // timing is deterministic too
}

TEST(FuzzDeterminism, PoliciesAgreeOnArchitecture) {
  // All three policies must compute identical results (timing differs).
  const std::string src = generate_program(11, 50, 400);
  const arch::Program program = asmkit::assemble(src);
  std::uint64_t checksum[3];
  int i = 0;
  for (const PolicyKind policy :
       {PolicyKind::Conventional, PolicyKind::Basic, PolicyKind::Extended}) {
    sim::SimConfig config;
    config.policy = policy;
    config.phys_int = config.phys_fp = 40;
    config.check_oracle = false;
    sim::Simulator simulator(config);
    auto core = simulator.make_core(program);
    core->run();
    checksum[i++] = core->memory().read_u64(program.symbols.at("result"));
  }
  EXPECT_EQ(checksum[0], checksum[1]);
  EXPECT_EQ(checksum[1], checksum[2]);
}

}  // namespace
}  // namespace erel
