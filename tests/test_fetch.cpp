// Fetch unit: width limits, taken-branch blocks, prediction plumbing,
// I-cache stalls, redirect, halt behaviour.
#include <gtest/gtest.h>

#include "arch/arch_state.hpp"
#include "asmkit/assembler.hpp"
#include "branch/btb.hpp"
#include "branch/gshare.hpp"
#include "branch/ras.hpp"
#include "mem/hierarchy.hpp"
#include "pipeline/fetch.hpp"

namespace erel::pipeline {
namespace {

class FetchTest : public testing::Test {
 protected:
  void load(const char* src) {
    program_ = asmkit::assemble(src);
    arch::load_program(program_, memory_);
    fetch_ = std::make_unique<FetchUnit>(FetchConfig{}, memory_, hierarchy_,
                                         gshare_, btb_, ras_);
    fetch_->set_pc(program_.entry);
  }

  /// Ticks until at least `n` instructions are buffered (warming the
  /// I-cache takes a few cycles) and drains them.
  std::vector<FetchedInst> drain(unsigned n, std::uint64_t max_cycles = 200) {
    std::vector<FetchedInst> out;
    for (std::uint64_t cycle = 1; cycle <= max_cycles && out.size() < n;
         ++cycle) {
      fetch_->tick(cycle);
      while (!fetch_->buffer_empty() && out.size() < n) {
        out.push_back(fetch_->front());
        fetch_->pop_front();
      }
    }
    return out;
  }

  arch::Program program_;
  arch::SparseMemory memory_;
  mem::MemoryHierarchy hierarchy_{mem::HierarchyConfig{}};
  branch::Gshare gshare_{18};
  branch::Btb btb_;
  branch::Ras ras_;
  std::unique_ptr<FetchUnit> fetch_;
};

TEST_F(FetchTest, SequentialFetchInOrder) {
  load(R"(
main:
  addi r3, r3, 1
  addi r4, r4, 2
  addi r5, r5, 3
  halt
)");
  const auto insts = drain(4);
  ASSERT_EQ(insts.size(), 4u);
  for (unsigned i = 0; i < 4; ++i)
    EXPECT_EQ(insts[i].pc, program_.entry + 4 * i);
  EXPECT_TRUE(insts[3].inst.is_halt());
}

TEST_F(FetchTest, FollowsDirectJumpSameCycle) {
  load(R"(
main:
  jal r0, target
  addi r3, r3, 1   # never fetched on the correct path
target:
  addi r4, r4, 1
  halt
)");
  const auto insts = drain(3);
  ASSERT_GE(insts.size(), 2u);
  EXPECT_TRUE(insts[0].inst.is_direct_jump());
  EXPECT_EQ(insts[1].pc, program_.symbols.at("target"));
}

TEST_F(FetchTest, StopsAtSecondTakenBranchPerCycle) {
  load(R"(
main:
  jal r0, a
a:
  jal r0, b
b:
  jal r0, c
c:
  halt
)");
  // First tick (after I-cache warm) can cross at most 2 taken branches:
  // it delivers jal(a-target path) instructions but must break before the
  // third block.
  std::uint64_t cycle = 1;
  while (fetch_->buffer_empty()) fetch_->tick(cycle++);
  // Count buffered instructions: blocks are 1 instruction each here, so a
  // single cycle buffers exactly 2 jumps (two blocks).
  std::size_t buffered = 0;
  std::vector<std::uint64_t> pcs;
  while (!fetch_->buffer_empty()) {
    pcs.push_back(fetch_->front().pc);
    fetch_->pop_front();
    ++buffered;
  }
  EXPECT_EQ(buffered, 2u);
}

TEST_F(FetchTest, PredictsReturnViaRas) {
  load(R"(
main:
  call leaf
after:
  halt
leaf:
  ret
)");
  const auto insts = drain(3);
  ASSERT_EQ(insts.size(), 3u);
  EXPECT_TRUE(insts[0].inst.is_direct_jump());  // call
  EXPECT_TRUE(insts[1].inst.is_indirect_jump());  // ret
  EXPECT_EQ(insts[1].predicted_target, program_.symbols.at("after"));
  EXPECT_EQ(insts[2].pc, program_.symbols.at("after"));
}

TEST_F(FetchTest, IndirectWithoutBtbPredictsFallthrough) {
  load(R"(
main:
  jalr r0, r5, 0
  halt
)");
  const auto insts = drain(1);
  ASSERT_EQ(insts.size(), 1u);
  EXPECT_EQ(insts[0].predicted_target, program_.entry + 4);
}

TEST_F(FetchTest, BtbSuppliesIndirectTargets) {
  load(R"(
main:
  jalr r0, r5, 0
  halt
)");
  btb_.update(program_.entry, 0x12340);
  const auto insts = drain(1);
  ASSERT_EQ(insts.size(), 1u);
  EXPECT_EQ(insts[0].predicted_target, 0x12340u);
}

TEST_F(FetchTest, HaltStopsFetching) {
  load(R"(
main:
  halt
  addi r3, r3, 1
)");
  const auto insts = drain(3, 300);  // ask for 3; only the halt arrives
  ASSERT_EQ(insts.size(), 1u);       // nothing beyond the halt
  EXPECT_TRUE(insts[0].inst.is_halt());
}

TEST_F(FetchTest, RedirectRestartsAfterHalt) {
  load(R"(
main:
  halt
elsewhere:
  addi r3, r3, 1
  halt
)");
  drain(1);
  fetch_->redirect(program_.symbols.at("elsewhere"));
  const auto insts = drain(2);
  ASSERT_EQ(insts.size(), 2u);
  EXPECT_EQ(insts[0].pc, program_.symbols.at("elsewhere"));
}

TEST_F(FetchTest, ColdICacheDelaysDelivery) {
  load(R"(
main:
  addi r3, r3, 1
  halt
)");
  fetch_->tick(1);  // cold miss: nothing delivered, stall begins
  EXPECT_TRUE(fetch_->buffer_empty());
  // After the miss latency (1 + 12 + 50 = 63 cycles) delivery resumes.
  for (std::uint64_t cycle = 2; cycle <= 70; ++cycle) fetch_->tick(cycle);
  EXPECT_FALSE(fetch_->buffer_empty());
  EXPECT_GT(fetch_->icache_stall_cycles(), 30u);
}

TEST_F(FetchTest, ConditionalBranchCarriesGhrCheckpoint) {
  load(R"(
main:
  beq r3, r4, main
  halt
)");
  const auto insts = drain(1);
  ASSERT_GE(insts.size(), 1u);
  EXPECT_TRUE(insts[0].inst.is_cond_branch());
  // The speculative GHR is the checkpoint shifted once with the prediction.
  const std::uint32_t expected =
      ((insts[0].ghr_checkpoint << 1) |
       (insts[0].predicted_taken ? 1u : 0u)) &
      ((1u << gshare_.history_bits()) - 1u);
  EXPECT_EQ(gshare_.history(), expected);
}

}  // namespace
}  // namespace erel::pipeline
