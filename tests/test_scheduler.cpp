// Event-driven issue scheduler: unit tests for the wakeup-list / ready-queue
// bookkeeping plus a bit-identity pin of whole-pipeline commit streams.
//
// The bit-identity table was captured from the pre-refactor core (full ROS
// readiness scan + unconditional completion-heap walk): all ten kernels at
// smoke scale (max_instructions = 20000) under conv/96 and extended/64,
// hashing every CommitEvent's seq/pc/encoding and all four stage cycles.
// The event-driven scheduler must observe operand readiness at the same
// instants the scan did, so the streams must match bit for bit. If this
// test fails, the scheduler changed simulated behavior; fix the regression,
// do not re-capture the table.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "harness/harness.hpp"
#include "pipeline/core.hpp"
#include "pipeline/scheduler.hpp"
#include "sim/probe.hpp"
#include "workloads/workloads.hpp"

namespace erel {
namespace {

using core::RC;
using pipeline::CompletionQueue;
using pipeline::IssueScheduler;
using pipeline::SchedTag;

std::vector<std::uint64_t> seqs(const std::vector<SchedTag>& tags) {
  std::vector<std::uint64_t> out;
  out.reserve(tags.size());
  for (const SchedTag& t : tags) out.push_back(t.seq);
  return out;
}

TEST(IssueScheduler, MultiConsumerWakeDeliversAllInParkOrder) {
  IssueScheduler sched(8, 8);
  // Three consumers of int p3, parked out of seq order; one bystander on
  // fp p3 that the wake must not touch.
  sched.park(RC::Int, 3, {7, 107});
  sched.park(RC::Int, 3, {5, 105});
  sched.park(RC::Int, 3, {9, 109});
  sched.park(RC::Fp, 3, {6, 106});
  EXPECT_EQ(sched.waiter_count(), 4u);
  EXPECT_EQ(sched.waiter_count(RC::Int, 3), 3u);

  std::vector<SchedTag> woken;
  sched.wake(RC::Int, 3, woken);
  EXPECT_EQ(seqs(woken), (std::vector<std::uint64_t>{7, 5, 9}));
  EXPECT_EQ(sched.waiter_count(RC::Int, 3), 0u);
  EXPECT_EQ(sched.waiter_count(RC::Fp, 3), 1u);

  // The list is consumed: a second wake of the same register is a no-op.
  woken.clear();
  sched.wake(RC::Int, 3, woken);
  EXPECT_TRUE(woken.empty());
}

TEST(IssueScheduler, SquashRemovesPendingWakeupsAndReadyTags) {
  IssueScheduler sched(8, 8);
  sched.park(RC::Int, 1, {4, 104});   // survives (seq <= boundary)
  sched.park(RC::Int, 1, {12, 112});  // squashed
  sched.park(RC::Fp, 2, {15, 115});   // squashed
  sched.make_ready({3, 103});         // survives
  sched.make_ready({11, 111});        // squashed

  sched.squash_after(/*boundary=*/10);

  EXPECT_EQ(sched.waiter_count(), 1u);
  EXPECT_EQ(sched.waiter_count(RC::Int, 1), 1u);
  EXPECT_EQ(sched.waiter_count(RC::Fp, 2), 0u);
  EXPECT_EQ(seqs(sched.ready()), (std::vector<std::uint64_t>{3}));

  // The surviving waiter still wakes; the squashed one never reappears.
  std::vector<SchedTag> woken;
  sched.wake(RC::Int, 1, woken);
  EXPECT_EQ(seqs(woken), (std::vector<std::uint64_t>{4}));
  EXPECT_EQ(woken.front().uid, 104u);
}

TEST(IssueScheduler, ClearDropsEverything) {
  IssueScheduler sched(4, 4);
  sched.park(RC::Int, 0, {1, 101});
  sched.park(RC::Fp, 3, {2, 102});
  sched.make_ready({3, 103});
  sched.clear();
  EXPECT_EQ(sched.waiter_count(), 0u);
  EXPECT_EQ(sched.ready_count(), 0u);
  std::vector<SchedTag> woken;
  sched.wake(RC::Int, 0, woken);
  sched.wake(RC::Fp, 3, woken);
  EXPECT_TRUE(woken.empty());
}

TEST(CompletionQueue, ZeroLatencyProducerIsDueInItsOwnCycle) {
  // A producer whose completion is scheduled for the current cycle must be
  // observable in that same cycle's writeback: the paper's zero-detect /
  // forwarding cases rely on consumers waking without a dead cycle.
  CompletionQueue cq;
  EXPECT_FALSE(cq.has_due(0));
  EXPECT_FALSE(cq.has_due(~std::uint64_t{0} - 1));

  cq.schedule(/*cycle=*/5, /*seq=*/1, /*uid=*/11);
  EXPECT_FALSE(cq.has_due(4));
  EXPECT_TRUE(cq.has_due(5));

  // Same-cycle schedule while another event is pending further out.
  cq.schedule(/*cycle=*/9, /*seq=*/2, /*uid=*/12);
  cq.schedule(/*cycle=*/5, /*seq=*/3, /*uid=*/13);
  EXPECT_TRUE(cq.has_due(5));

  // Draining cycle 5 delivers both due events before the gate closes.
  std::vector<std::uint64_t> due;
  while (cq.has_due(5)) due.push_back(cq.pop().seq);
  EXPECT_EQ(due.size(), 2u);
  EXPECT_FALSE(cq.has_due(8));
  EXPECT_TRUE(cq.has_due(9));
  EXPECT_EQ(cq.pop().seq, 2u);
  EXPECT_TRUE(cq.empty());
  EXPECT_FALSE(cq.has_due(~std::uint64_t{0} - 1));
}

// ---------------------------------------------------------------------------
// Whole-pipeline commit-stream bit-identity against the pre-refactor core.

struct HashProbe final : sim::Probe {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  }
  void on_commit(const sim::CommitEvent& ev) override {
    mix(ev.seq);
    mix(ev.pc);
    mix(ev.encoding);
    mix(ev.dispatch_cycle);
    mix(ev.issue_cycle);
    mix(ev.complete_cycle);
    mix(ev.commit_cycle);
  }
};

struct GoldenStream {
  const char* workload;
  const char* policy;
  unsigned phys;
  std::uint64_t hash;
};

// Captured from the pre-refactor (full-scan) core; see file comment.
const GoldenStream kGoldenStreams[] = {
    {"compress", "conv", 96, 0x944c412864024246ull},
    {"compress", "extended", 64, 0x7be26f4ba0bd5666ull},
    {"gcc", "conv", 96, 0xb959d846ad571238ull},
    {"gcc", "extended", 64, 0x27b74d9f9cd5bd7aull},
    {"go", "conv", 96, 0x6b87c3e96406208aull},
    {"go", "extended", 64, 0xacd5c9956b720094ull},
    {"li", "conv", 96, 0x07632a5e58868b50ull},
    {"li", "extended", 64, 0x0b7de0e1df29d6bfull},
    {"perl", "conv", 96, 0x61f636eff699ec9eull},
    {"perl", "extended", 64, 0x3c0bcfe584173e2bull},
    {"mgrid", "conv", 96, 0x41a51fe21b8c23f8ull},
    {"mgrid", "extended", 64, 0x7ae35d0e483cbf3aull},
    {"tomcatv", "conv", 96, 0x74bbd7f9806a284full},
    {"tomcatv", "extended", 64, 0xa9726926dd605d31ull},
    {"applu", "conv", 96, 0xfcc515b2b38b01edull},
    {"applu", "extended", 64, 0xc76db8bb566ac547ull},
    {"swim", "conv", 96, 0x3393f48c3cd63eadull},
    {"swim", "extended", 64, 0xed1696fccce2daabull},
    {"hydro2d", "conv", 96, 0x6ae3b01d9469e3a2ull},
    {"hydro2d", "extended", 64, 0xebf9406e5c5caf28ull},
};

TEST(CommitStreamBitIdentity, MatchesPreRefactorCore) {
  for (const GoldenStream& g : kGoldenStreams) {
    const arch::Program program = workloads::assemble_workload(g.workload);
    sim::SimConfig config =
        harness::experiment_config(core::parse_policy(g.policy), g.phys);
    config.max_instructions = 20'000;
    HashProbe probe;
    pipeline::Core core(config, program);
    core.attach_probe(&probe);
    (void)core.run();
    EXPECT_EQ(probe.h, g.hash)
        << g.workload << "/" << g.policy << "/" << g.phys
        << ": commit stream diverged from the pre-refactor core";
  }
}

}  // namespace
}  // namespace erel
