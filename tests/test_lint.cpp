// erel-lint self-tests: lexer behavior, every rule against PASS/FAIL
// fixtures (tests/lint_fixtures/), the exemption machinery, and — the
// acceptance criterion — proof that deleting a canonical-field line from
// the real src/sim/config.cpp makes the project lint fail.
//
// EREL_SOURCE_DIR (set by CMake) points at the repo root so the fixtures
// and the real sources are reachable from any build directory.

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lexer.hpp"
#include "lint/rules.hpp"

namespace erel::lint {
namespace {

std::string read_file_or_die(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return std::move(buffer).str();
}

std::string fixture_path(const std::string& name) {
  return std::string(EREL_SOURCE_DIR) + "/tests/lint_fixtures/" + name;
}

/// Loads a fixture under its bare name (findings report "coverage_fail.hpp",
/// not an absolute path).
SourceFile load_fixture(const std::string& name) {
  return tokenize(name, read_file_or_die(fixture_path(name)));
}

FileSet fixture_set(const std::vector<std::string>& names) {
  FileSet files;
  for (const std::string& name : names) files.emplace(name, load_fixture(name));
  return files;
}

std::vector<Finding> lint(const FileSet& files, const RuleConfig& rules,
                          const std::vector<AllowEntry>& allows = {}) {
  return run_rules(files, rules, allows, "test.allow");
}

std::vector<Finding> with_rule(const std::vector<Finding>& findings,
                               std::string_view rule) {
  std::vector<Finding> out;
  for (const Finding& f : findings)
    if (f.rule == rule) out.push_back(f);
  return out;
}

std::set<std::string> subjects(const std::vector<Finding>& findings) {
  std::set<std::string> out;
  for (const Finding& f : findings) out.insert(f.subject);
  return out;
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

TEST(LintLexer, SeparatesCodeCommentsAndStrings) {
  const SourceFile file = tokenize("demo.cpp",
                                   "// a comment with printf\n"
                                   "int x = 1; /* block\n"
                                   "comment */ const char* s = \"rand()\";\n");
  ASSERT_EQ(file.comments.size(), 2u);
  EXPECT_EQ(file.comments[0].text, " a comment with printf");
  EXPECT_EQ(file.comments[0].line, 1);
  EXPECT_EQ(file.comments[1].line, 2);

  // Neither the comment's `printf` nor the string's `rand` are identifier
  // tokens.
  for (const Token& t : file.tokens) {
    EXPECT_FALSE(t.is_ident("printf"));
    EXPECT_FALSE(t.is_ident("rand"));
  }
  // The string literal is one token holding the contents without quotes.
  const auto str = std::find_if(
      file.tokens.begin(), file.tokens.end(),
      [](const Token& t) { return t.kind == Token::Kind::kString; });
  ASSERT_NE(str, file.tokens.end());
  EXPECT_EQ(str->text, "rand()");
}

TEST(LintLexer, SkipsPreprocessorAndHandlesRawStrings) {
  const SourceFile file =
      tokenize("demo.cpp",
               "#include <ctime>\n"
               "#define WIDE \\\n  time(nullptr)\n"
               "auto r = R\"x(time( \"quoted\" rand())x\";\n");
  // `time` from the include and the continued #define never tokenize.
  for (const Token& t : file.tokens) EXPECT_FALSE(t.is_ident("time"));
  const auto str = std::find_if(
      file.tokens.begin(), file.tokens.end(),
      [](const Token& t) { return t.kind == Token::Kind::kString; });
  ASSERT_NE(str, file.tokens.end());
  EXPECT_EQ(str->text, "time( \"quoted\" rand()");
}

TEST(LintLexer, KeepsAccessorPunctuatorsWhole) {
  const SourceFile file = tokenize("demo.cpp", "a->b; c::d; e.f;");
  int arrows = 0, scopes = 0, dots = 0;
  for (const Token& t : file.tokens) {
    arrows += t.is_punct("->");
    scopes += t.is_punct("::");
    dots += t.is_punct(".");
  }
  EXPECT_EQ(arrows, 1);
  EXPECT_EQ(scopes, 1);
  EXPECT_EQ(dots, 1);
}

// ---------------------------------------------------------------------------
// fingerprint-coverage
// ---------------------------------------------------------------------------

RuleConfig coverage_rules(const std::string& stem) {
  RuleConfig rules;
  rules.coverage = {{"DemoConfig", stem + ".hpp", stem + ".cpp", "demo_fields",
                     "demo", "."}};
  return rules;
}

TEST(LintCoverage, PassFixtureIsClean) {
  const auto findings =
      lint(fixture_set({"coverage_pass.hpp", "coverage_pass.cpp"}),
           coverage_rules("coverage_pass"));
  EXPECT_TRUE(findings.empty()) << format_findings(findings);
}

TEST(LintCoverage, UnserializedFieldIsAFinding) {
  const auto findings =
      lint(fixture_set({"coverage_fail.hpp", "coverage_fail.cpp"}),
           coverage_rules("coverage_fail"));
  ASSERT_EQ(findings.size(), 1u) << format_findings(findings);
  EXPECT_EQ(findings[0].rule, "fingerprint-coverage");
  EXPECT_EQ(findings[0].subject, "DemoConfig::strict");
  EXPECT_EQ(findings[0].file, "coverage_fail.hpp");
  EXPECT_GT(findings[0].line, 0);
}

TEST(LintCoverage, MissingFilesAreLintErrorsNotSilence) {
  const auto findings =
      lint(fixture_set({"coverage_pass.hpp"}), coverage_rules("coverage_pass"));
  ASSERT_EQ(findings.size(), 1u) << format_findings(findings);
  EXPECT_EQ(findings[0].rule, "lint-error");
}

// ---------------------------------------------------------------------------
// protocol-complete
// ---------------------------------------------------------------------------

TEST(LintProtocol, FullyHandledEnumIsClean) {
  RuleConfig rules;
  rules.enums = {{"DemoMsg", "enum_decl.hpp", {"enum_pass_uses.cpp"}}};
  const auto findings =
      lint(fixture_set({"enum_decl.hpp", "enum_pass_uses.cpp"}), rules);
  EXPECT_TRUE(findings.empty()) << format_findings(findings);
}

TEST(LintProtocol, UnhandledEnumeratorIsAFinding) {
  RuleConfig rules;
  rules.enums = {{"DemoMsg", "enum_decl.hpp", {"enum_fail_uses.cpp"}}};
  const auto findings =
      lint(fixture_set({"enum_decl.hpp", "enum_fail_uses.cpp"}), rules);
  ASSERT_EQ(findings.size(), 1u) << format_findings(findings);
  EXPECT_EQ(findings[0].rule, "protocol-complete");
  EXPECT_EQ(findings[0].subject, "DemoMsg::kGamma");
}

TEST(LintProtocol, MentionsInsideTheEnumBodyDoNotCount) {
  // The declaration site itself must not satisfy the rule: asking for
  // mentions in the header finds none outside the enum's own body.
  RuleConfig rules;
  rules.enums = {{"DemoMsg", "enum_decl.hpp", {"enum_decl.hpp"}}};
  const auto findings = lint(fixture_set({"enum_decl.hpp"}), rules);
  EXPECT_EQ(findings.size(), 3u) << format_findings(findings);
}

TEST(LintProtocol, PairedAndExercisedCodecIsClean) {
  RuleConfig rules;
  rules.codec_pair_files = {"codec_pass.hpp"};
  rules.codec_mention_in = {"codec_uses.cpp"};
  const auto findings =
      lint(fixture_set({"codec_pass.hpp", "codec_uses.cpp"}), rules);
  EXPECT_TRUE(findings.empty()) << format_findings(findings);
}

TEST(LintProtocol, OrphanEncoderIsTwoFindings) {
  // encode_orphan lacks both its decode twin and a test mention.
  RuleConfig rules;
  rules.codec_pair_files = {"codec_fail.hpp"};
  rules.codec_mention_in = {"codec_uses.cpp"};
  const auto findings =
      lint(fixture_set({"codec_fail.hpp", "codec_uses.cpp"}), rules);
  const auto protocol = with_rule(findings, "protocol-complete");
  EXPECT_EQ(protocol.size(), 2u) << format_findings(findings);
  EXPECT_TRUE(subjects(protocol).count("decode_orphan"));
  EXPECT_TRUE(subjects(protocol).count("encode_orphan"));
}

// ---------------------------------------------------------------------------
// nondet-source / nondet-container
// ---------------------------------------------------------------------------

RuleConfig deterministic(const std::string& file) {
  RuleConfig rules;
  rules.deterministic_tus = {file};
  return rules;
}

TEST(LintNondet, SeededMixingAndLookAlikesAreClean) {
  const auto findings =
      lint(fixture_set({"nondet_pass.cpp"}), deterministic("nondet_pass.cpp"));
  EXPECT_TRUE(findings.empty()) << format_findings(findings);
}

TEST(LintNondet, RandomnessAndClockReadsAreFindings) {
  const auto findings =
      lint(fixture_set({"nondet_fail.cpp"}), deterministic("nondet_fail.cpp"));
  const auto nondet = with_rule(findings, "nondet-source");
  EXPECT_EQ(nondet.size(), 4u) << format_findings(findings);
  EXPECT_EQ(subjects(nondet),
            (std::set<std::string>{"random_device", "time", "steady_clock",
                                   "rand"}));
}

TEST(LintNondet, OrderedContainersAreClean) {
  const auto findings = lint(fixture_set({"container_pass.cpp"}),
                             deterministic("container_pass.cpp"));
  EXPECT_TRUE(findings.empty()) << format_findings(findings);
}

TEST(LintNondet, UnorderedContainersAreFindings) {
  const auto findings = lint(fixture_set({"container_fail.cpp"}),
                             deterministic("container_fail.cpp"));
  const auto nondet = with_rule(findings, "nondet-container");
  EXPECT_EQ(nondet.size(), 2u) << format_findings(findings);
  EXPECT_EQ(subjects(nondet),
            (std::set<std::string>{"unordered_map", "unordered_set"}));
}

// ---------------------------------------------------------------------------
// raw-stdio
// ---------------------------------------------------------------------------

RuleConfig library(const std::string& file) {
  RuleConfig rules;
  rules.library_files = {file};
  return rules;
}

TEST(LintStdio, StringsAndCommentsAreClean) {
  const auto findings =
      lint(fixture_set({"stdio_pass.cpp"}), library("stdio_pass.cpp"));
  EXPECT_TRUE(findings.empty()) << format_findings(findings);
}

TEST(LintStdio, DirectPrintsAreFindings) {
  const auto findings =
      lint(fixture_set({"stdio_fail.cpp"}), library("stdio_fail.cpp"));
  const auto stdio = with_rule(findings, "raw-stdio");
  EXPECT_EQ(stdio.size(), 3u) << format_findings(findings);
  EXPECT_EQ(subjects(stdio),
            (std::set<std::string>{"printf", "cout", "fputs"}));
}

// ---------------------------------------------------------------------------
// stat-path
// ---------------------------------------------------------------------------

TEST(LintStatPath, ConventionalPathsAndFreeTextConstantsAreClean) {
  const auto findings =
      lint(fixture_set({"statpath_pass.cpp"}), library("statpath_pass.cpp"));
  EXPECT_TRUE(findings.empty()) << format_findings(findings);
}

TEST(LintStatPath, BadSpellingAndDuplicatesAreFindings) {
  const auto findings =
      lint(fixture_set({"statpath_fail.cpp"}), library("statpath_fail.cpp"));
  const auto stat = with_rule(findings, "stat-path");
  EXPECT_EQ(stat.size(), 3u) << format_findings(findings);
  EXPECT_EQ(subjects(stat),
            (std::set<std::string>{"Demo/Cycles", "demo//commits",
                                   "demo/commits"}));
}

TEST(LintStatPath, DuplicatesAreDetectedAcrossFiles) {
  // Two files each registering demo/commits collide, even though each file
  // alone is (duplicate-wise) fine.
  FileSet files;
  files.emplace("a.cpp",
                tokenize("a.cpp", "void f(R& r) { r.counter(\"demo/x\"); }"));
  files.emplace("b.cpp",
                tokenize("b.cpp", "void g(R& r) { r.counter(\"demo/x\"); }"));
  RuleConfig rules;
  rules.library_files = {"a.cpp", "b.cpp"};
  const auto findings = lint(files, rules);
  ASSERT_EQ(findings.size(), 1u) << format_findings(findings);
  EXPECT_EQ(findings[0].rule, "stat-path");
  EXPECT_EQ(findings[0].file, "b.cpp");
}

// ---------------------------------------------------------------------------
// Exemptions: inline directives and the allowlist
// ---------------------------------------------------------------------------

TEST(LintExemptions, WellFormedInlineDirectivesSuppress) {
  const auto findings =
      lint(fixture_set({"allow_ok.cpp"}), deterministic("allow_ok.cpp"));
  EXPECT_TRUE(findings.empty()) << format_findings(findings);
}

TEST(LintExemptions, MalformedDirectivesAreFindingsAndDoNotSuppress) {
  const auto findings =
      lint(fixture_set({"allow_bad.cpp"}), deterministic("allow_bad.cpp"));
  EXPECT_EQ(with_rule(findings, "bad-exemption").size(), 3u)
      << format_findings(findings);
  // The decorated violations all survive.
  EXPECT_EQ(with_rule(findings, "nondet-container").size(), 3u)
      << format_findings(findings);
}

TEST(LintExemptions, AllowlistSuppressesBySubjectAndByFile) {
  FileSet files = fixture_set({"container_fail.cpp", "stdio_fail.cpp"});
  RuleConfig rules;
  rules.deterministic_tus = {"container_fail.cpp"};
  rules.library_files = {"stdio_fail.cpp"};
  const std::vector<AllowEntry> allows = {
      {"nondet-container", "unordered_map", "reason", 1},
      {"nondet-container", "unordered_set", "reason", 2},
      {"raw-stdio", "stdio_fail.cpp", "reason", 3},  // whole-file exemption
  };
  const auto findings = lint(files, rules, allows);
  EXPECT_TRUE(findings.empty()) << format_findings(findings);
}

TEST(LintExemptions, UnmatchedAllowlistEntriesAreStale) {
  const std::vector<AllowEntry> allows = {
      {"raw-stdio", "no_such_file.cpp", "reason", 7}};
  const auto findings = lint(FileSet{}, RuleConfig{}, allows);
  ASSERT_EQ(findings.size(), 1u) << format_findings(findings);
  EXPECT_EQ(findings[0].rule, "stale-allow");
  EXPECT_EQ(findings[0].file, "test.allow");
  EXPECT_EQ(findings[0].line, 7);
}

TEST(LintExemptions, MetaFindingsAreNeverSuppressible) {
  // An allowlist entry cannot excuse a bad-exemption (or any meta) finding;
  // run over allow_bad.cpp with entries naming the decorated violations.
  const std::vector<AllowEntry> allows = {
      {"nondet-container", "unordered_map", "reason", 1}};
  const auto findings = lint(fixture_set({"allow_bad.cpp"}),
                             deterministic("allow_bad.cpp"), allows);
  EXPECT_EQ(with_rule(findings, "bad-exemption").size(), 3u)
      << format_findings(findings);
  EXPECT_TRUE(with_rule(findings, "nondet-container").empty());
}

TEST(LintAllowlist, ParsesEntriesAndRejectsMalformedLines) {
  std::vector<Finding> findings;
  const auto entries = parse_allowlist(
      "test.allow",
      "# comment\n"
      "\n"
      "raw-stdio src/x.cpp -- talks to stderr by design\n"
      "no-such-rule subject -- reason\n"
      "raw-stdio missing-reason-separator\n"
      "raw-stdio subject-without-reason -- \n",
      findings);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].rule, "raw-stdio");
  EXPECT_EQ(entries[0].subject, "src/x.cpp");
  EXPECT_EQ(entries[0].line, 3);
  EXPECT_EQ(with_rule(findings, "bad-exemption").size(), 3u)
      << format_findings(findings);
}

// ---------------------------------------------------------------------------
// The real repository
// ---------------------------------------------------------------------------

TEST(LintProject, RepositoryIsClean) {
  std::string error;
  const auto findings = lint_repository(EREL_SOURCE_DIR, &error);
  ASSERT_TRUE(findings.has_value()) << error;
  EXPECT_TRUE(findings->empty()) << format_findings(*findings);
}

TEST(LintProject, DeletingACanonicalFieldLineFailsTheLint) {
  // The acceptance criterion: strip the ghr_bits line from the real
  // serializer and the coverage rule must fire.
  const std::string header_path =
      std::string(EREL_SOURCE_DIR) + "/src/sim/config.hpp";
  const std::string impl_path =
      std::string(EREL_SOURCE_DIR) + "/src/sim/config.cpp";
  std::string impl = read_file_or_die(impl_path);
  const std::size_t at = impl.find("\"ghr_bits\"");
  ASSERT_NE(at, std::string::npos);
  const std::size_t from = impl.rfind('\n', at) + 1;
  const std::size_t to = impl.find('\n', at) + 1;
  impl.erase(from, to - from);

  FileSet files;
  files.emplace("src/sim/config.hpp",
                tokenize("src/sim/config.hpp", read_file_or_die(header_path)));
  files.emplace("src/sim/config.cpp", tokenize("src/sim/config.cpp", impl));
  RuleConfig rules;
  rules.coverage = {{"SimConfig", "src/sim/config.hpp", "src/sim/config.cpp",
                     "canonical_fields", "config", "."}};
  const auto findings = lint(files, rules);
  EXPECT_TRUE(subjects(with_rule(findings, "fingerprint-coverage"))
                  .count("SimConfig::ghr_bits"))
      << format_findings(findings);

  // Control: with the untouched file the only coverage findings are the
  // documented exemptions (which the checked-in allowlist carries).
  FileSet control;
  control.emplace("src/sim/config.hpp",
                  tokenize("src/sim/config.hpp", read_file_or_die(header_path)));
  control.emplace("src/sim/config.cpp",
                  tokenize("src/sim/config.cpp", read_file_or_die(impl_path)));
  const auto clean = lint(control, rules);
  EXPECT_EQ(subjects(with_rule(clean, "fingerprint-coverage")),
            (std::set<std::string>{"SimConfig::policy_factory",
                                   "SimConfig::fast_path"}))
      << format_findings(clean);
}

}  // namespace
}  // namespace erel::lint
