// Pipeline trace ("pipeview") on the binary trace format: records each
// committed instruction's journey through the machine — dispatch, issue,
// writeback, commit cycles — into a versioned delta-encoded trace file, then
// reads it back for reporting. The human-readable table and ASCII lane
// diagram remain available behind --dump. Rename (free-list) stalls are
// directly visible as gaps between commits of redefining instructions and
// dispatches of their successors.
//
//   $ ./pipeline_trace                    # record + summarize pipeline.ertr
//   $ ./pipeline_trace --dump             # also print the per-commit table
//   $ ./pipeline_trace --dump my.ertr     # choose the trace path
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "asmkit/assembler.hpp"
#include "isa/isa.hpp"
#include "sim/simulator.hpp"
#include "trace/capture.hpp"
#include "trace/reader.hpp"

int main(int argc, char** argv) {
  using namespace erel;

  bool dump = false;
  std::string path = "pipeline.ertr";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--dump") == 0) {
      dump = true;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "unknown option '%s'\nusage: %s [--dump] [out.ertr]\n",
                   argv[i], argv[0]);
      return 2;
    } else {
      path = argv[i];
    }
  }

  const arch::Program program = asmkit::assemble(R"(
main:
  li   r3, 3
  la   r4, data
loop:
  fld  f1, 0(r4)
  fld  f2, 8(r4)
  fmul f3, f1, f2
  fadd f4, f3, f1
  fsd  f4, 16(r4)
  addi r3, r3, -1
  bnez r3, loop
  halt
.data
data: .double 1.5, 2.0, 0.0
)");

  sim::SimConfig config;
  config.policy = core::PolicyKind::Extended;
  config.phys_int = 40;
  config.phys_fp = 36;  // very tight: only 4 FP rename registers

  // Record the run straight into the binary trace format (the program image
  // embeds, so `harness` can replay this file as workload "trace:<path>").
  const sim::SimStats stats = trace::capture(program, config, path);

  // Everything below re-reads the file: the reader, not the live run, is the
  // source of truth.
  trace::TraceReader reader(path);
  std::printf("wrote %s: format v%u, %llu records, program image %s\n",
              path.c_str(), reader.version(),
              static_cast<unsigned long long>(reader.num_records()),
              reader.has_program() ? "embedded" : "absent");
  if (dump) {
    const std::vector<sim::CommitEvent> events = reader.read_all();
    std::printf("\n%-5s %-9s %-28s %9s %7s %9s %8s\n", "seq", "pc",
                "instruction", "dispatch", "issue", "complete", "commit");
    for (const auto& ev : events) {
      const auto inst = isa::decode(ev.encoding);
      std::printf("%-5llu %08llx  %-28s %9llu %7llu %9llu %8llu\n",
                  static_cast<unsigned long long>(ev.seq),
                  static_cast<unsigned long long>(ev.pc),
                  isa::disassemble(inst, ev.pc).c_str(),
                  static_cast<unsigned long long>(ev.dispatch_cycle),
                  static_cast<unsigned long long>(ev.issue_cycle),
                  static_cast<unsigned long long>(ev.complete_cycle),
                  static_cast<unsigned long long>(ev.commit_cycle));
    }

    // Lane diagram for the last loop iteration (D dispatch, I issue,
    // C complete, R retire/commit).
    std::printf("\nlane diagram (last %zu commits):\n",
                std::min<std::size_t>(events.size(), 10));
    const std::size_t first = events.size() > 10 ? events.size() - 10 : 0;
    const std::uint64_t t0 = events[first].dispatch_cycle;
    for (std::size_t i = first; i < events.size(); ++i) {
      const auto& ev = events[i];
      std::string lane(std::max<std::uint64_t>(ev.commit_cycle - t0 + 2, 2),
                       ' ');
      lane[ev.dispatch_cycle - t0] = 'D';
      lane[ev.issue_cycle - t0] = 'I';
      lane[ev.complete_cycle - t0] = 'C';
      lane[ev.commit_cycle - t0] = 'R';
      const auto inst = isa::decode(ev.encoding);
      std::printf("  %-12s |%s\n",
                  std::string(inst.info().mnemonic).c_str(), lane.c_str());
    }
  }

  const trace::ReplaySummary summary = trace::summarize(path);
  std::printf("\ntrace summary: %llu instructions, IPC %.4f, "
              "avg dispatch->commit %.1f cycles\n",
              static_cast<unsigned long long>(summary.instructions),
              summary.ipc, summary.avg_latency());
  std::printf("\n%s", sim::format_stats(stats).c_str());
  return 0;
}
