// Register-pressure study: sweep the physical register file size for one
// kernel and print IPC curves for all three release policies — a
// per-benchmark slice of the paper's Figure 11, with an ASCII plot.
// Built on the declarative harness::Experiment sweep API.
//
//   $ ./register_pressure_study [workload]     (default: swim)
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "harness/experiment.hpp"
#include "workloads/workloads.hpp"

int main(int argc, char** argv) {
  using namespace erel;
  using core::PolicyKind;

  const std::string name = argc > 1 ? argv[1] : "swim";
  const workloads::Workload& w = workloads::workload(name);
  std::printf("workload: %s — %s (%s)\n\n", w.name.c_str(),
              w.description.c_str(), w.is_fp ? "FP" : "integer");

  const auto& sizes = harness::register_sweep_sizes();
  const harness::ResultSet rs = harness::Experiment()
                                    .workloads({name})
                                    .policies(core::all_policies())
                                    .phys_regs(sizes)
                                    .run();

  TextTable t({"registers", "conv", "basic", "extended", "extended speedup"});
  double max_ipc = 0;
  for (const auto& e : rs.entries()) max_ipc = std::max(max_ipc, e.ipc());
  std::vector<std::string> plot;
  for (const unsigned p : sizes) {
    const double conv = rs.ipc({name, PolicyKind::Conventional, p, ""});
    const double basic = rs.ipc({name, PolicyKind::Basic, p, ""});
    const double ext = rs.ipc({name, PolicyKind::Extended, p, ""});
    t.add_row({std::to_string(p), TextTable::num(conv),
               TextTable::num(basic), TextTable::num(ext),
               TextTable::speedup_pct(ext, conv)});
    // ASCII curve: c = conv, e = extended (b omitted for legibility).
    std::string line(64, ' ');
    const auto col = [&](double ipc) {
      return std::min<std::size_t>(62, static_cast<std::size_t>(
                                           ipc / max_ipc * 60.0));
    };
    line[col(conv)] = 'c';
    line[col(ext)] = line[col(ext)] == 'c' ? '*' : 'e';
    char label[16];
    std::snprintf(label, sizeof label, "%4u |", p);
    plot.push_back(std::string(label) + line);
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("IPC curve (c = conventional, e = extended, * = overlap):\n");
  for (const auto& line : plot) std::printf("%s\n", line.c_str());
  std::printf("\nreading: where 'e' sits right of 'c' the early-release\n"
              "mechanism converts dead registers into usable parallelism;\n"
              "the curves merge once the file is large enough (loose).\n");
  return 0;
}
