// Register-pressure study: sweep the physical register file size for one
// kernel and print IPC curves for all three release policies — a
// per-benchmark slice of the paper's Figure 11, with an ASCII plot.
//
//   $ ./register_pressure_study [workload]     (default: swim)
#include <cstdio>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "harness/harness.hpp"
#include "workloads/workloads.hpp"

int main(int argc, char** argv) {
  using namespace erel;
  using core::PolicyKind;

  const std::string name = argc > 1 ? argv[1] : "swim";
  const workloads::Workload& w = workloads::workload(name);
  std::printf("workload: %s — %s (%s)\n\n", w.name.c_str(),
              w.description.c_str(), w.is_fp ? "FP" : "integer");

  const std::vector<PolicyKind> policies = {
      PolicyKind::Conventional, PolicyKind::Basic, PolicyKind::Extended};
  const auto& sizes = harness::register_sweep_sizes();

  std::vector<harness::RunSpec> specs;
  for (const PolicyKind policy : policies)
    for (const unsigned p : sizes)
      specs.push_back({name, harness::experiment_config(policy, p), "", {}});
  const auto results = harness::run_all(specs);

  TextTable t({"registers", "conv", "basic", "extended", "extended speedup"});
  double max_ipc = 0;
  for (const auto& r : results) max_ipc = std::max(max_ipc, r.stats.ipc());
  std::vector<std::string> plot;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const double conv = results[i].stats.ipc();
    const double basic = results[sizes.size() + i].stats.ipc();
    const double ext = results[2 * sizes.size() + i].stats.ipc();
    t.add_row({std::to_string(sizes[i]), TextTable::num(conv),
               TextTable::num(basic), TextTable::num(ext),
               TextTable::pct(ext / conv - 1.0)});
    // ASCII curve: c = conv, e = extended (b omitted for legibility).
    std::string line(64, ' ');
    const auto col = [&](double ipc) {
      return std::min<std::size_t>(62, static_cast<std::size_t>(
                                           ipc / max_ipc * 60.0));
    };
    line[col(conv)] = 'c';
    line[col(ext)] = line[col(ext)] == 'c' ? '*' : 'e';
    char label[16];
    std::snprintf(label, sizeof label, "%4u |", sizes[i]);
    plot.push_back(std::string(label) + line);
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("IPC curve (c = conventional, e = extended, * = overlap):\n");
  for (const auto& line : plot) std::printf("%s\n", line.c_str());
  std::printf("\nreading: where 'e' sits right of 'c' the early-release\n"
              "mechanism converts dead registers into usable parallelism;\n"
              "the curves merge once the file is large enough (loose).\n");
  return 0;
}
