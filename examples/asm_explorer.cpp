// Assembler / disassembler explorer: assembles a file (or a built-in demo),
// prints the encoded image with disassembly, runs it functionally and dumps
// the architectural result registers.
//
//   $ ./asm_explorer [program.s]
#include <cstdio>
#include <fstream>
#include <sstream>

#include "arch/arch_state.hpp"
#include "asmkit/assembler.hpp"
#include "common/bits.hpp"
#include "isa/isa.hpp"

namespace {

const char* kDemo = R"(# demo: sum of the first 10 squares, plus an FP mirror
main:
  li   r3, 0          # i
  li   r4, 10
  li   r5, 0          # int sum
  cvtdi f1, r0        # fp sum
loop:
  addi r3, r3, 1
  mul  r6, r3, r3
  add  r5, r5, r6
  cvtdi f2, r6
  fadd f1, f1, f2
  blt  r3, r4, loop
  la   r7, result
  sd   r5, 0(r7)
  fsd  f1, 8(r7)
  halt
.data
result: .space 16
)";

}  // namespace

int main(int argc, char** argv) {
  std::string source = kDemo;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    source = buffer.str();
  }

  erel::arch::Program program;
  try {
    program = erel::asmkit::assemble(source);
  } catch (const erel::asmkit::AsmError& e) {
    std::fprintf(stderr, "%s", e.what());
    return 1;
  }

  std::printf("entry: 0x%llx, %zu instructions, %zu data segment(s)\n\n",
              static_cast<unsigned long long>(program.entry),
              program.code.size(), program.data.size());
  for (std::size_t i = 0; i < program.code.size(); ++i) {
    const std::uint64_t pc = program.code_base + 4 * i;
    const auto inst = erel::isa::decode(program.code[i]);
    // Label this address if a symbol points here.
    for (const auto& [name, addr] : program.symbols) {
      if (addr == pc) std::printf("%s:\n", name.c_str());
    }
    std::printf("  %08llx:  %08x  %s\n", static_cast<unsigned long long>(pc),
                program.code[i], erel::isa::disassemble(inst, pc).c_str());
  }

  erel::arch::ArchState state(program);
  const std::uint64_t steps = state.run(10'000'000);
  std::printf("\nexecuted %llu instructions, %s\n",
              static_cast<unsigned long long>(steps),
              state.halted() ? "halted" : "hit step limit");

  std::printf("\nnon-zero integer registers:\n");
  for (unsigned r = 1; r < erel::isa::kNumLogicalRegs; ++r) {
    if (state.int_reg(r) != 0)
      std::printf("  r%-2u = %llu (0x%llx)\n", r,
                  static_cast<unsigned long long>(state.int_reg(r)),
                  static_cast<unsigned long long>(state.int_reg(r)));
  }
  std::printf("non-zero FP registers:\n");
  for (unsigned r = 0; r < erel::isa::kNumLogicalRegs; ++r) {
    if (state.fp_reg(r) != 0)
      std::printf("  f%-2u = %g\n", r, erel::u2f(state.fp_reg(r)));
  }
  if (const auto it = program.symbols.find("result");
      it != program.symbols.end()) {
    std::printf("result block @0x%llx: %llu, fp %g\n",
                static_cast<unsigned long long>(it->second),
                static_cast<unsigned long long>(
                    state.memory().read_u64(it->second)),
                erel::u2f(state.memory().read_u64(it->second + 8)));
  }
  return 0;
}
