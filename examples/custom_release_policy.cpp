// Plugging a custom release policy into the pipeline through the public
// PolicyFactory extension point.
//
// The policy implemented here, "SourceOnlyBasic", is an ablated variant of
// the paper's basic mechanism: it keeps only the commit-synchronized rel-bit
// path for in-flight source-read last uses, and drops the LU-already-
// committed case (register reuse / immediate release at decode). The
// comparison is instructive: on FP codes this variant schedules *more*
// rel-bit releases than full basic yet captures almost none of its win —
// the decode-time C=1 path is what relieves a rename stall at the moment it
// happens, while commit-time releases arrive rate-limited by the in-order
// commit stream (see EXPERIMENTS.md, "where the FP win comes from").
//
//   $ ./custom_release_policy
#include <cstdio>

#include "core/release_policy.hpp"
#include "harness/harness.hpp"
#include "sim/simulator.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace erel;
using core::InstSeq;
using core::LUsTable;
using core::PolicyCheckpoint;
using core::RenameRec;
using core::UseKind;

/// Basic mechanism restricted to source-operand last uses.
class SourceOnlyBasic final : public core::ReleasePolicy {
 public:
  using ReleasePolicy::ReleasePolicy;

  [[nodiscard]] core::PolicyKind kind() const override {
    return core::PolicyKind::Basic;  // reported kind; behaviour is ablated
  }

  void record_src_use(unsigned logical, InstSeq seq, UseKind kind) override {
    lus_.record_use(logical, seq, kind);
  }
  void record_dst_use(unsigned logical, InstSeq seq) override {
    lus_.record_use(logical, seq, UseKind::Dst);
  }

  [[nodiscard]] bool can_rename_dest(unsigned, InstSeq, bool) const override {
    return !rf_.free_list.empty();  // never reuses: always allocates
  }

  DestPlan plan_dest(unsigned rd, InstSeq nv_seq, RenameRec& rec,
                     std::uint64_t) override {
    const core::Mapping& old = rf_.map.get(rd);
    rec.old_pd = old.phys;
    rec.rel_old = true;  // default: conventional release
    if (old.stale) {
      rec.rel_old = false;
      return {};
    }
    const core::LUsEntry entry = lus_.lookup(rd);
    // Only Figure-4a cases (source reads), only when LU is still in flight
    // and no unverified branch separates the pair.
    if (entry.kind != UseKind::Src1 && entry.kind != UseKind::Src2) return {};
    if (entry.committed) return {};
    if (hooks_.branch_pending_between(entry.seq, nv_seq)) return {};
    RenameRec* lu = hooks_.find_inflight(entry.seq);
    if (lu == nullptr) return {};
    const std::uint8_t bit = core::rel_bit_for(entry.kind);
    if (lu->rel_bits & bit) return {};
    lu->rel_bits |= bit;
    rec.rel_old = false;
    return {};
  }

  void on_commit(const RenameRec& rec, InstSeq seq,
                 std::uint64_t cycle) override {
    lus_.on_commit(seq);
    release_rel_bits(rec, cycle);
    if (owns_dst(rec) && rec.rel_old && rec.old_pd != core::kNoReg)
      rf_.release(rec.old_pd, cycle, /*squashed=*/false);
  }

  void make_checkpoint_into(PolicyCheckpoint& cp) const override {
    cp.lus = lus_.snapshot();
    cp.has_lus = true;
  }
  void restore_checkpoint(const PolicyCheckpoint& cp) override {
    lus_.restore(cp.lus);
  }
  void commit_update_checkpoint(PolicyCheckpoint& cp,
                                InstSeq seq) const override {
    LUsTable::update_commit_in(cp.lus, seq);
  }
  void on_exception_flush() override { lus_.reset_architectural(); }

 private:
  LUsTable lus_;
};

double run_with(const arch::Program& program, sim::SimConfig config) {
  return sim::Simulator(std::move(config)).run(program).ipc();
}

}  // namespace

int main() {
  const unsigned phys = 48;
  std::printf(
      "=== custom policy: basic without the definer-last-use case (48+48) "
      "===\n");
  std::printf("%-10s %8s %12s %8s\n", "workload", "conv", "source-only",
              "basic");
  for (const char* name : {"compress", "li", "mgrid", "tomcatv", "swim"}) {
    const erel::arch::Program program =
        erel::workloads::assemble_workload(name);

    auto conv_cfg =
        erel::harness::experiment_config(erel::core::PolicyKind::Conventional,
                                         phys);
    auto basic_cfg =
        erel::harness::experiment_config(erel::core::PolicyKind::Basic, phys);
    auto custom_cfg = conv_cfg;
    custom_cfg.policy_factory = [](erel::core::RC, erel::core::RegFileState& rf,
                                   erel::core::PipelineHooks& hooks) {
      return std::make_unique<SourceOnlyBasic>(rf, hooks);
    };

    const double conv = run_with(program, conv_cfg);
    const double custom = run_with(program, custom_cfg);
    const double basic = run_with(program, basic_cfg);
    std::printf("%-10s %8.3f %12.3f %8.3f   (src-only captures %.0f%% of the "
                "basic win)\n",
                name, conv, custom, basic,
                basic > conv ? 100.0 * (custom - conv) / (basic - conv)
                             : 100.0);
  }
  std::printf(
      "\nany ReleasePolicy subclass can be injected the same way via\n"
      "SimConfig::policy_factory; the pipeline drives it through the same\n"
      "rename/commit/branch hooks as the built-in mechanisms.\n");
  return 0;
}
