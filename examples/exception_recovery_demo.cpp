// Precise-exception recovery demo (paper §4.3): inject pipeline flushes
// while the extended mechanism releases registers early, and show that
// (a) results stay exact, (b) stale architectural mappings appear and are
// suppressed rather than double-freed, (c) flushes only cost time.
//
//   $ ./exception_recovery_demo
#include <cstdio>

#include "sim/simulator.hpp"
#include "workloads/workloads.hpp"

int main() {
  using namespace erel;

  const arch::Program program = workloads::assemble_workload("tomcatv");
  const std::uint64_t result_addr = program.symbols.at("result");

  sim::SimConfig config;
  config.policy = core::PolicyKind::Extended;
  config.phys_int = 48;
  config.phys_fp = 48;
  config.check_oracle = true;  // every committed instruction is verified
  config.max_instructions = 400'000;

  // Reference run: no exceptions.
  sim::Simulator clean_sim(config);
  auto clean = clean_sim.make_core(program);
  const sim::SimStats clean_stats = clean->run();

  // Interrupt storm: flush the whole pipeline every ~300 commits. Each flush
  // restores the Map Table from the IOMT — which may point at early-released
  // (dead) registers; the stale bits keep the machine single-release.
  config.flush_period = 300;
  sim::Simulator flushed_sim(config);
  auto flushed = flushed_sim.make_core(program);
  const sim::SimStats flushed_stats = flushed->run();

  std::printf("clean run:     %8llu cycles, IPC %.3f\n",
              static_cast<unsigned long long>(clean_stats.cycles),
              clean_stats.ipc());
  std::printf("with flushes:  %8llu cycles, IPC %.3f, %llu flushes injected\n",
              static_cast<unsigned long long>(flushed_stats.cycles),
              flushed_stats.ipc(),
              static_cast<unsigned long long>(flushed_stats.flushes_injected));
  std::printf("stale-mapping suppressions: %llu int, %llu fp\n",
              static_cast<unsigned long long>(
                  flushed_stats.policy_stats[0].stale_suppressed),
              static_cast<unsigned long long>(
                  flushed_stats.policy_stats[1].stale_suppressed));

  const std::uint64_t a = clean->memory().read_u64(result_addr);
  const std::uint64_t b = flushed->memory().read_u64(result_addr);
  std::printf("result checksum: clean=%016llx flushed=%016llx -> %s\n",
              static_cast<unsigned long long>(a),
              static_cast<unsigned long long>(b),
              a == b ? "IDENTICAL" : "MISMATCH");
  std::printf(
      "\nthe saved state after a flush is not bit-exact (a logical register\n"
      "may map to a freed physical register), but the lost values are\n"
      "provably dead: their first subsequent use is a write. That is the\n"
      "paper's §4.3 precision argument, verified here by the lock-step\n"
      "oracle on every committed instruction.\n");
  return a == b ? 0 : 1;
}
