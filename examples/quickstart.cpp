// Quickstart: assemble a small program, run it under the extended
// early-release policy, and print the headline statistics.
//
//   $ ./quickstart
#include <cstdio>

#include "asmkit/assembler.hpp"
#include "sim/simulator.hpp"

int main() {
  // A dot-product-style loop: every iteration redefines f10/f11, so the
  // previous versions become releasable long before the redefining
  // instructions commit.
  const char* source = R"(
main:
  la   r3, vec_a
  la   r4, vec_b
  li   r5, 512            # elements
  cvtdi f1, r0            # accumulator = 0.0
loop:
  fld  f10, 0(r3)
  fld  f11, 0(r4)
  fmul f12, f10, f11
  fadd f1, f1, f12
  addi r3, r3, 8
  addi r4, r4, 8
  addi r5, r5, -1
  bnez r5, loop
  la   r6, result
  fsd  f1, 0(r6)
  halt

.data
vec_a:  .fill 4096, 0x3f    # bit patterns: small but nonzero doubles
vec_b:  .fill 4096, 0x40
result: .space 8
)";

  const erel::arch::Program program = erel::asmkit::assemble(source);

  erel::sim::SimConfig config;
  config.policy = erel::core::PolicyKind::Extended;
  config.phys_int = 48;
  config.phys_fp = 48;  // tight file: early release pays off here

  erel::sim::Simulator simulator(config);
  const erel::sim::SimStats stats = simulator.run(program);

  std::printf("cycles                 %llu\n",
              static_cast<unsigned long long>(stats.cycles));
  std::printf("instructions committed %llu\n",
              static_cast<unsigned long long>(stats.committed));
  std::printf("IPC                    %.3f\n", stats.ipc());
  std::printf("branch accuracy        %.2f%%\n",
              100.0 * stats.branches.cond_accuracy());
  const auto& fp = stats.policy_stats[1];
  std::printf("FP early releases      %llu at LU commit, %llu immediate, "
              "%llu at branch confirm\n",
              static_cast<unsigned long long>(fp.early_commit_releases),
              static_cast<unsigned long long>(fp.immediate_releases),
              static_cast<unsigned long long>(fp.branch_confirm_releases));
  return 0;
}
