#include "branch/gshare.hpp"

#include "common/log.hpp"

namespace erel::branch {

Gshare::Gshare(unsigned history_bits)
    : history_bits_(history_bits),
      mask_((1u << history_bits) - 1u),
      counters_(std::size_t{1} << history_bits, 1) {
  EREL_CHECK(history_bits >= 1 && history_bits <= 24);
}

std::size_t Gshare::index(std::uint64_t pc, std::uint32_t history) const {
  return (static_cast<std::uint32_t>(pc >> 2) ^ history) & mask_;
}

bool Gshare::predict(std::uint64_t pc, std::uint32_t* checkpoint) {
  EREL_CHECK(checkpoint != nullptr);
  *checkpoint = ghr_;
  const bool taken = counters_[index(pc, ghr_)] >= 2;
  ghr_ = ((ghr_ << 1) | (taken ? 1u : 0u)) & mask_;
  ++stats_.predictions;
  return taken;
}

void Gshare::resolve(std::uint64_t pc, std::uint32_t checkpoint, bool taken,
                     bool mispredicted) {
  // The counter is indexed with the history the prediction saw.
  std::uint8_t& counter = counters_[index(pc, checkpoint)];
  if (taken) {
    if (counter < 3) ++counter;
  } else {
    if (counter > 0) --counter;
  }
  if (mispredicted) ++stats_.mispredictions;
}

void Gshare::repair(std::uint32_t checkpoint, bool actual_taken) {
  ghr_ = ((checkpoint << 1) | (actual_taken ? 1u : 0u)) & mask_;
}

std::uint8_t Gshare::counter_at(std::uint64_t pc, std::uint32_t history) const {
  return counters_[index(pc, history)];
}

}  // namespace erel::branch
