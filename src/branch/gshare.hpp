// 18-bit gshare predictor with speculative global-history updates and
// per-branch history checkpoints (paper Table 2: "18-bit gshare, speculative
// updates, up to 20 pending branches").
#pragma once

#include <cstdint>
#include <vector>

namespace erel::branch {

struct GshareStats {
  std::uint64_t predictions = 0;
  std::uint64_t mispredictions = 0;

  [[nodiscard]] double accuracy() const {
    return predictions == 0
               ? 1.0
               : 1.0 - static_cast<double>(mispredictions) / predictions;
  }
};

class Gshare {
 public:
  explicit Gshare(unsigned history_bits = 18);

  /// Predicts one conditional branch and speculatively shifts the prediction
  /// into the global history. Returns the predicted direction; `*checkpoint`
  /// receives the pre-prediction history for misprediction repair.
  bool predict(std::uint64_t pc, std::uint32_t* checkpoint);

  /// Resolves a branch: trains the counter. On a misprediction the caller
  /// must also call `repair` with the checkpoint taken at predict time.
  void resolve(std::uint64_t pc, std::uint32_t checkpoint, bool taken,
               bool mispredicted);

  /// Restores history after squashing: history = checkpoint plus the actual
  /// outcome of the mispredicted branch.
  void repair(std::uint32_t checkpoint, bool actual_taken);

  /// Restores history verbatim (indirect-jump misprediction: the jump itself
  /// contributes no history bit).
  void restore_history(std::uint32_t history) { ghr_ = history & mask_; }

  [[nodiscard]] const GshareStats& stats() const { return stats_; }
  [[nodiscard]] std::uint32_t history() const { return ghr_; }
  [[nodiscard]] unsigned history_bits() const { return history_bits_; }

  /// Direct counter-table access for unit tests.
  [[nodiscard]] std::uint8_t counter_at(std::uint64_t pc,
                                        std::uint32_t history) const;

 private:
  [[nodiscard]] std::size_t index(std::uint64_t pc, std::uint32_t history) const;

  unsigned history_bits_;
  std::uint32_t mask_;
  std::uint32_t ghr_ = 0;
  std::vector<std::uint8_t> counters_;  // 2-bit saturating, init weakly taken
  GshareStats stats_;
};

}  // namespace erel::branch
