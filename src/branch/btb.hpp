// Branch target buffer for indirect jumps (JALR that is not a return). The
// simulator predecodes at fetch, so direct branch/jump targets are computed
// from the instruction; only indirect targets need prediction.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace erel::branch {

class Btb {
 public:
  /// `entries` must be a power of two; `ways` divides it.
  explicit Btb(unsigned entries = 2048, unsigned ways = 4);

  /// Last-seen target for `pc`, if any.
  [[nodiscard]] std::optional<std::uint64_t> lookup(std::uint64_t pc) const;

  /// Records the resolved target of an indirect jump.
  void update(std::uint64_t pc, std::uint64_t target);

 private:
  struct Entry {
    std::uint64_t tag = 0;
    std::uint64_t target = 0;
    std::uint64_t lru = 0;
    bool valid = false;
  };

  [[nodiscard]] std::size_t set_of(std::uint64_t pc) const;

  unsigned ways_;
  std::size_t sets_;
  std::vector<Entry> entries_;
  std::uint64_t lru_clock_ = 0;
};

}  // namespace erel::branch
