#include "branch/ras.hpp"

#include "common/log.hpp"

namespace erel::branch {

Ras::Ras(unsigned entries) : stack_(entries, 0) {
  EREL_CHECK(entries > 0);
}

void Ras::push(std::uint64_t return_address) {
  stack_[top_ % stack_.size()] = return_address;
  ++top_;
}

std::uint64_t Ras::pop() {
  if (top_ == 0) return 0;
  --top_;
  return stack_[top_ % stack_.size()];
}

Ras::Checkpoint Ras::checkpoint() const {
  Checkpoint cp;
  cp.top = top_;
  cp.top_value = top_ == 0 ? 0 : stack_[(top_ - 1) % stack_.size()];
  return cp;
}

void Ras::restore(const Checkpoint& checkpoint) {
  top_ = checkpoint.top;
  if (top_ != 0) stack_[(top_ - 1) % stack_.size()] = checkpoint.top_value;
}

}  // namespace erel::branch
