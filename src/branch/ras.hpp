// Return-address stack with single-entry checkpoint repair: each in-flight
// branch snapshots {top index, top value}; restoring both fixes the common
// corruption patterns after a squash.
#pragma once

#include <cstdint>
#include <vector>

namespace erel::branch {

class Ras {
 public:
  struct Checkpoint {
    std::uint32_t top = 0;
    std::uint64_t top_value = 0;
  };

  explicit Ras(unsigned entries = 16);

  void push(std::uint64_t return_address);

  /// Pops a predicted return address (0 if the stack never held one).
  std::uint64_t pop();

  [[nodiscard]] Checkpoint checkpoint() const;
  void restore(const Checkpoint& checkpoint);

 private:
  std::vector<std::uint64_t> stack_;
  std::uint32_t top_ = 0;  // index of the next free slot (circular)
};

}  // namespace erel::branch
