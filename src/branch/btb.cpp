#include "branch/btb.hpp"

#include "common/bits.hpp"
#include "common/log.hpp"

namespace erel::branch {

Btb::Btb(unsigned entries, unsigned ways) : ways_(ways) {
  EREL_CHECK(ways > 0 && entries % ways == 0);
  sets_ = entries / ways;
  EREL_CHECK(is_pow2(sets_));
  entries_.resize(entries);
}

std::size_t Btb::set_of(std::uint64_t pc) const {
  return (pc >> 2) & (sets_ - 1);
}

std::optional<std::uint64_t> Btb::lookup(std::uint64_t pc) const {
  const std::size_t set = set_of(pc);
  for (unsigned w = 0; w < ways_; ++w) {
    const Entry& e = entries_[set * ways_ + w];
    if (e.valid && e.tag == pc) return e.target;
  }
  return std::nullopt;
}

void Btb::update(std::uint64_t pc, std::uint64_t target) {
  const std::size_t set = set_of(pc);
  Entry* victim = nullptr;
  for (unsigned w = 0; w < ways_; ++w) {
    Entry& e = entries_[set * ways_ + w];
    if (e.valid && e.tag == pc) {
      e.target = target;
      e.lru = ++lru_clock_;
      return;
    }
    if (!e.valid) {
      if (victim == nullptr || victim->valid) victim = &e;
    } else if (victim == nullptr ||
               (victim->valid && e.lru < victim->lru)) {
      victim = &e;
    }
  }
  EREL_CHECK(victim != nullptr);
  victim->valid = true;
  victim->tag = pc;
  victim->target = target;
  victim->lru = ++lru_clock_;
}

}  // namespace erel::branch
