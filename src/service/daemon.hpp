// ExperimentDaemon: a long-lived simulation service over the framed
// protocol (service/protocol.hpp).
//
// One daemon owns an on-disk result cache and a pool of simulation workers;
// any number of sweep clients connect, ship serialized cells, and read back
// `.erelres` entries that are byte-identical to what a local cached run
// would have produced. Identical fingerprints are deduplicated at every
// level: served from disk when present, folded into the in-flight cell when
// one is already simulating (the second requester simply joins the first's
// completion), simulated exactly once otherwise.
//
// Threading (three kinds of threads, one lock):
//   loop thread    net::EventServer::run(): all socket I/O, all frame
//                  handling, all send()s. Completions arrive via post().
//   pool workers   run one cell each (harness::run_one); they touch only
//                  the in-flight table (under mu_) and the filesystem.
//   ticker         wakes every tick_ms, reads the last published registry
//                  snapshot of each watched cell (StatRegistry::snapshot())
//                  and posts incremental channel slices to subscribers.
//
// Subscriptions are EPICS-monitor-style: a client names (fingerprint,
// channel path) and receives kUpdate pushes while the cell simulates, then
// one final update flagged `final_update`. Cells nobody watches publish
// nothing (the registry's subscriber-count guard), so the daemon never
// slows an unwatched sweep. Sampled cells have no single live registry
// (per-window cores), so their subscribers receive only the final update.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.hpp"
#include "net/server.hpp"
#include "service/protocol.hpp"
#include "service/store.hpp"
#include "sim/stat_registry.hpp"

namespace erel::service {

class ExperimentDaemon : public net::EventServer::Handler {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;   // 0 = ephemeral; read back via port()
    std::string cache_dir;    // "" = no disk cache (pure compute server)
    unsigned workers = 0;     // simulation pool size; 0 = hardware

    /// Cycles between registry snapshot publishes on watched cells.
    std::uint64_t snapshot_interval_cycles = 10'000;
    /// Subscriber push cadence, milliseconds.
    unsigned tick_ms = 25;

    /// Admission control: most cells queued-or-running before a new
    /// kRunCell is refused with kBusy. 0 = unlimited. Cache hits and
    /// in-flight joins are never refused (they cost no queue slot).
    std::size_t max_queue = 0;
    /// Result-store byte budget, enforced by LRU eviction (service/
    /// store.hpp). 0 = unlimited.
    std::uint64_t max_cache_bytes = 0;
    /// Retry hint carried in kBusy replies, milliseconds.
    unsigned busy_retry_ms = 50;
  };

  explicit ExperimentDaemon(const Options& opts);
  ~ExperimentDaemon() override;

  ExperimentDaemon(const ExperimentDaemon&) = delete;
  ExperimentDaemon& operator=(const ExperimentDaemon&) = delete;

  /// False when the listening socket could not be bound (error() says why).
  [[nodiscard]] bool valid() const { return server_.valid(); }
  [[nodiscard]] const std::string& error() const { return server_.error(); }
  [[nodiscard]] std::uint16_t port() const { return server_.port(); }

  /// Serves until stop(); call from one thread (it becomes the loop
  /// thread). Outstanding simulations are drained before returning.
  void run();

  /// Thread-safe (and signal-safe: one atomic store + one pipe write).
  void stop() { server_.stop(); }

  [[nodiscard]] DaemonStats stats() const;

  // ---- net::EventServer::Handler (loop thread) ----
  void on_connect(std::uint64_t client) override;
  void on_frame(std::uint64_t client, net::Frame frame) override;
  void on_disconnect(std::uint64_t client) override;

 private:
  struct Waiter {
    std::uint64_t client = 0;
    std::uint64_t request_id = 0;
  };
  struct Subscription {
    std::uint64_t client = 0;
    std::string channel;
    std::size_t sent_points = 0;  // slice cursor into the channel
  };
  /// One cell being simulated (or queued), keyed by fingerprint hex.
  struct InFlight {
    CellRequest request;
    std::vector<Waiter> waiters;
    std::vector<Subscription> subs;
    bool running = false;  // a pool worker has picked it up
    /// Cooperative cancel flag, polled between the run's sampling batches.
    /// Set when the last waiter/subscriber leaves a running cell; cleared
    /// when a new requester joins before the worker notices.
    std::shared_ptr<std::atomic<bool>> cancel;
    sim::StatRegistry* live = nullptr;  // set while the core runs
    bool live_subscribed = false;       // we hold one snapshot subscription
    /// Captured from the live registry at run end (before core teardown)
    /// when subscribers exist: the source of the final channel slices.
    std::optional<sim::StatRegistry> final_registry;
  };

  void handle_run_cell(std::uint64_t client, const net::Frame& frame);
  void handle_cancel(std::uint64_t client, const net::Frame& frame);
  void handle_subscribe(std::uint64_t client, const net::Frame& frame);
  void send_error(std::uint64_t client, std::uint64_t id,
                  const std::string& message);
  void run_cell(const std::string& fp_hex);        // pool worker
  void complete_cell(const std::string& fp_hex,    // loop thread (posted)
                     const std::string& entry_text);
  /// Worker, after an observed cancellation: drops the cell (counting it
  /// cancelled) or resubmits it if a new requester joined meanwhile.
  void abort_cell(const std::string& fp_hex);
  /// Requires mu_. Reaps `it`'s cell if nothing waits on it anymore:
  /// erased outright when still queued, flagged for cooperative
  /// cancellation when running. Returns the next iterator.
  std::map<std::string, std::shared_ptr<InFlight>>::iterator reap_if_orphaned(
      std::map<std::string, std::shared_ptr<InFlight>>::iterator it);
  void send_update(std::uint64_t client, const UpdateMsg& msg);
  void push_updates();  // loop thread (posted by the ticker)
  void ticker_loop();

  Options opts_;
  net::EventServer server_;
  ThreadPool pool_;
  ResultStore store_;  // owns cache_dir IO when a cache dir is configured

  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<InFlight>> inflight_;
  /// Subscriptions naming fingerprints with no in-flight cell yet; attached
  /// when (if) a matching kRunCell arrives.
  std::multimap<std::string, Subscription> pending_subs_;
  DaemonStats stats_;

  std::thread ticker_;
  std::atomic<bool> ticker_stop_{false};
};

}  // namespace erel::service
