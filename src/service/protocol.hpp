// Wire protocol of the experiment daemon (ereld): message tags carried in
// net::Frame::type plus the text payload encodings.
//
// Everything rides the repo's existing canonical text formats: a sweep-cell
// request is the config/sampling canonical-field rendering (the exact text
// the result-cache fingerprint hashes, sim/config.cpp + sim/sampling.cpp),
// and a result is a verbatim `.erelres` cache entry (harness/results.hpp) —
// so a daemon-served cell is byte-identical to a locally-cached one by
// construction, and the two ends cannot disagree about what a field means
// without the strict parsers failing loudly.
//
// Conversation shape (client = one figure binary / harness::RemoteBackend):
//
//   connect  ->  kHello "ereld <version>"
//   kRunCell (id, fingerprint, cell)       -> kResult (id, cached, entry)
//                                          or kError (id, reason)
//   kSubscribe (fingerprint, channel path) -> kUpdate* (points so far),
//                                             final update flagged
//   kPing -> kPong        kStats -> kStatsReply        kShutdown -> close
//   kCancel (id)          -> kError (id, "cancelled")   [v2]
//   kRunCell when the queue is full -> kBusy (id, retry_ms)   [v2]
//
// Requests are pipelined: a client may send any number of kRunCell frames
// before reading; responses carry the request id, not an ordering promise.
// Subscriptions are EPICS-monitor-style: named channel, push on change.
//
// v2 adds flow control and cancellation: kBusy is the daemon's admission
// refusal when its bounded queue is full (the client backs off and
// resubmits — safe, because requests are content-addressed: a resubmitted
// cell is a cache hit or an in-flight join, never a second simulation),
// and kCancel withdraws a pending request by id.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "harness/results.hpp"
#include "sim/config.hpp"
#include "sim/sampling.hpp"

namespace erel::service {

/// Bump when any payload encoding changes; the client refuses to talk to a
/// daemon announcing a different version (kHello).
inline constexpr unsigned kProtocolVersion = 2;

enum class MsgType : std::uint8_t {
  kHello = 1,       // server -> client, on connect
  kRunCell = 2,     // client -> server
  kResult = 3,      // server -> client
  kError = 4,       // server -> client
  kSubscribe = 5,   // client -> server
  kUpdate = 6,      // server -> client
  kPing = 7,        // client -> server
  kPong = 8,        // server -> client
  kStats = 9,       // client -> server
  kStatsReply = 10, // server -> client
  kShutdown = 11,   // client -> server
  kCancel = 12,     // client -> server (v2): withdraw a pending kRunCell
  kBusy = 13,       // server -> client (v2): queue full, retry after backoff
};

/// Human-readable tag name for error messages and logs ("run_cell",
/// "subscribe", ...); "unknown" for values outside the enum. The switch in
/// protocol.cpp names every enumerator, so adding a message type without
/// teaching the codec about it is a compile warning and a lint finding.
std::string_view msg_type_name(MsgType type);

/// One sweep cell, as shipped to the daemon. `fingerprint_hex` is the
/// *client's* content-addressed fingerprint (harness/fingerprint.hpp); the
/// daemon recomputes its own from the decoded cell and refuses on mismatch
/// (a client and daemon built from diverged sources must never share
/// results). `stat_stride` rides outside the canonical fields (it never
/// changes results) so subscribed clients can choose their channel
/// resolution.
struct CellRequest {
  std::uint64_t id = 0;  // client-chosen; echoed in kResult / kError
  harness::ExpKey key;
  std::string workload;
  std::string fingerprint_hex;
  sim::SimConfig config;
  std::optional<sim::SamplingConfig> sampling;
  std::vector<std::string> probe_names;
  std::uint64_t stat_stride = 0;
};

std::string encode_cell_request(const CellRequest& request);
std::optional<CellRequest> decode_cell_request(std::string_view payload);

/// kResult: `entry_text` is a complete `.erelres` cache entry; the client
/// re-validates it with parse_entry against its own fingerprint and key.
/// `cached` distinguishes a warm-cache hit from a fresh simulation (for the
/// ResultSet's provenance counters).
struct ResultMsg {
  std::uint64_t id = 0;
  bool cached = false;
  std::string entry_text;
};

std::string encode_result(const ResultMsg& msg);
std::optional<ResultMsg> decode_result(std::string_view payload);

/// kError: id 0 = connection-level (not tied to one request).
struct ErrorMsg {
  std::uint64_t id = 0;
  std::string message;
};

std::string encode_error(const ErrorMsg& msg);
std::optional<ErrorMsg> decode_error(std::string_view payload);

/// kCancel: withdraw the sender's pending kRunCell with this id. The daemon
/// always answers — kError (id, "cancelled") if the request was pending or
/// running for this client, kError (id, "unknown id") otherwise — so the
/// client can account for every id it ever sent. Cancelling only detaches
/// *this client* from the cell; the simulation itself stops cooperatively
/// only when no other waiter or subscriber still wants it.
struct CancelMsg {
  std::uint64_t id = 0;
};

std::string encode_cancel(const CancelMsg& msg);
std::optional<CancelMsg> decode_cancel(std::string_view payload);

/// kBusy: admission refusal. The daemon's bounded queue (--max-queue) is
/// full, the request was NOT enqueued, and the client should retry after
/// roughly `retry_ms` (a hint; the client applies its own backoff+jitter on
/// top). Cache hits and in-flight joins are never refused — kBusy only
/// gates work that would grow the queue.
struct BusyMsg {
  std::uint64_t id = 0;
  std::uint64_t retry_ms = 0;
};

std::string encode_busy(const BusyMsg& msg);
std::optional<BusyMsg> decode_busy(std::string_view payload);

/// kSubscribe: watch one registry channel of one cell, addressed by
/// fingerprint. Snapshots of the channel are pushed as kUpdate frames while
/// the cell simulates; subscribing to a cell that is not in flight is
/// remembered until a matching kRunCell arrives (on this or any other
/// connection).
struct SubscribeMsg {
  std::string fingerprint_hex;
  std::string channel;  // e.g. "channel/commit/committed"
};

std::string encode_subscribe(const SubscribeMsg& msg);
std::optional<SubscribeMsg> decode_subscribe(std::string_view payload);

/// kUpdate: an incremental slice of the channel — `points[0]` is the
/// series' element number `first`, so the client reassembles the full
/// series without re-transmission. `final_update` marks the last push (the
/// cell completed; the slice extends to the series' end).
struct UpdateMsg {
  std::string fingerprint_hex;
  std::string channel;
  std::uint64_t stride = 0;
  std::uint64_t first = 0;
  bool final_update = false;
  std::vector<double> points;
};

std::string encode_update(const UpdateMsg& msg);
std::optional<UpdateMsg> decode_update(std::string_view payload);

/// kStatsReply: daemon-lifetime counters (also how tests assert the
/// in-flight dedupe: `simulated` counts actual simulations, so N clients
/// racing on one fingerprint leave `simulated == 1`).
struct DaemonStats {
  std::uint64_t requests = 0;      // kRunCell frames accepted
  std::uint64_t cache_hits = 0;    // served from the on-disk cache
  std::uint64_t simulated = 0;     // cells actually simulated
  std::uint64_t deduped = 0;       // requests folded into an in-flight cell
  std::uint64_t errors = 0;        // kError replies sent
  std::uint64_t subscriptions = 0; // kSubscribe frames accepted
  std::uint64_t updates = 0;       // kUpdate frames sent
  std::uint64_t inflight = 0;      // cells queued or running right now
  std::uint64_t busy = 0;          // kBusy refusals sent (queue full)
  std::uint64_t cancelled = 0;       // cells reaped by kCancel / disconnect
  std::uint64_t dropped_clients = 0; // dropped for outbound-buffer overflow
  std::uint64_t evicted = 0;         // cache entries evicted by the byte cap
  std::uint64_t quarantined = 0;     // corrupt cache entries moved to .bad

  bool operator==(const DaemonStats&) const = default;
};

std::string encode_stats(const DaemonStats& stats);
std::optional<DaemonStats> decode_stats(std::string_view payload);

}  // namespace erel::service
