#include "service/daemon.hpp"

#include <chrono>
#include <filesystem>
#include <utility>

#include "common/log.hpp"
#include "harness/fingerprint.hpp"
#include "harness/harness.hpp"
#include "harness/result_cache.hpp"
#include "power/probe.hpp"
#include "sim/probe.hpp"

namespace erel::service {

namespace {

/// The daemon's registry of probe names it knows how to instantiate. Wire
/// requests carry names only (probes are code; code does not serialize), so
/// a cell naming anything else is refused — never silently simulated
/// without its probes, which would poison the shared cache under the
/// probed fingerprint.
std::function<std::unique_ptr<sim::Probe>()> find_probe_factory(
    const std::string& name) {
  if (name == "power")
    return [] { return std::make_unique<power::RixnerProbe>(); };
  return nullptr;
}

}  // namespace

ExperimentDaemon::ExperimentDaemon(const Options& opts)
    : opts_(opts), server_(*this, opts.host, opts.port), pool_(opts.workers) {
  if (!opts_.cache_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(opts_.cache_dir, ec);
    if (ec) {
      EREL_WARN("ereld: cannot create cache dir '", opts_.cache_dir,
                "': ", ec.message(), "; serving without a disk cache");
      opts_.cache_dir.clear();
    }
  }
  if (!opts_.cache_dir.empty())
    store_.open(opts_.cache_dir, opts_.max_cache_bytes);
}

ExperimentDaemon::~ExperimentDaemon() {
  ticker_stop_.store(true, std::memory_order_release);
  if (ticker_.joinable()) ticker_.join();
}

DaemonStats ExperimentDaemon::stats() const {
  DaemonStats stats;
  {
    const std::scoped_lock lock(mu_);
    stats = stats_;
  }
  stats.dropped_clients = server_.overflow_drops();
  const ResultStore::Counters store = store_.counters();
  stats.evicted = store.evicted;
  stats.quarantined = store.quarantined;
  return stats;
}

void ExperimentDaemon::run() {
  EREL_CHECK(valid(), "ereld: cannot listen: ", error());
  ticker_ = std::thread([this] { ticker_loop(); });
  server_.run();
  // Let queued/running simulations finish (their completion closures were
  // posted after stop and are dropped — the disk cache still gets the
  // entries, so the work is not lost), then silence the ticker.
  pool_.wait_idle();
  ticker_stop_.store(true, std::memory_order_release);
  if (ticker_.joinable()) ticker_.join();
}

// ---- loop-thread frame handling ----------------------------------------

void ExperimentDaemon::on_connect(std::uint64_t client) {
  server_.send(client,
               net::Frame{static_cast<std::uint8_t>(MsgType::kHello),
                          "ereld " + std::to_string(kProtocolVersion)});
}

void ExperimentDaemon::on_frame(std::uint64_t client, net::Frame frame) {
  switch (static_cast<MsgType>(frame.type)) {
    case MsgType::kRunCell:
      handle_run_cell(client, frame);
      return;
    case MsgType::kCancel:
      handle_cancel(client, frame);
      return;
    case MsgType::kSubscribe:
      handle_subscribe(client, frame);
      return;
    case MsgType::kPing:
      server_.send(client, net::Frame{static_cast<std::uint8_t>(MsgType::kPong),
                                      frame.payload});
      return;
    case MsgType::kStats:
      server_.send(client,
                   net::Frame{static_cast<std::uint8_t>(MsgType::kStatsReply),
                              encode_stats(stats())});
      return;
    case MsgType::kShutdown:
      server_.stop();
      return;
    default:
      send_error(client, 0,
                 "unexpected message type " +
                     std::string(msg_type_name(
                         static_cast<MsgType>(frame.type))) +
                     " (" + std::to_string(unsigned{frame.type}) + ")");
      server_.close_client(client);
      return;
  }
}

auto ExperimentDaemon::reap_if_orphaned(
    std::map<std::string, std::shared_ptr<InFlight>>::iterator it)
    -> std::map<std::string, std::shared_ptr<InFlight>>::iterator {
  InFlight& cell = *it->second;
  if (!cell.waiters.empty() || !cell.subs.empty()) return std::next(it);
  if (!cell.running) {
    // Still queued: erase now; the pool closure finds nothing and no-ops.
    --stats_.inflight;
    ++stats_.cancelled;
    return inflight_.erase(it);
  }
  // Running: ask the worker to stop at its next cancellation check. The
  // worker's abort path does the reaping (or resubmits if someone rejoins).
  cell.cancel->store(true, std::memory_order_relaxed);
  return std::next(it);
}

void ExperimentDaemon::on_disconnect(std::uint64_t client) {
  const std::scoped_lock lock(mu_);
  for (auto it = inflight_.begin(); it != inflight_.end();) {
    InFlight& cell = *it->second;
    std::erase_if(cell.waiters,
                  [client](const Waiter& w) { return w.client == client; });
    std::erase_if(cell.subs, [client](const Subscription& s) {
      return s.client == client;
    });
    it = reap_if_orphaned(it);
  }
  for (auto it = pending_subs_.begin(); it != pending_subs_.end();) {
    it = it->second.client == client ? pending_subs_.erase(it) : std::next(it);
  }
}

void ExperimentDaemon::send_error(std::uint64_t client, std::uint64_t id,
                                  const std::string& message) {
  {
    const std::scoped_lock lock(mu_);
    ++stats_.errors;
  }
  server_.send(client, net::Frame{static_cast<std::uint8_t>(MsgType::kError),
                                  encode_error(ErrorMsg{id, message})});
}

void ExperimentDaemon::handle_run_cell(std::uint64_t client,
                                       const net::Frame& frame) {
  std::optional<CellRequest> request = decode_cell_request(frame.payload);
  if (!request) {
    send_error(client, 0, "malformed cell request");
    return;
  }
  for (const std::string& name : request->probe_names) {
    if (!find_probe_factory(name)) {
      send_error(client, request->id, "unknown probe '" + name + "'");
      return;
    }
  }
  // A client and daemon built from diverged sources must never share
  // results: recompute the fingerprint from the decoded cell and refuse on
  // mismatch (the canonical renderings, workload generators, or format
  // version differ).
  if (!harness::fingerprintable(request->workload, request->config)) {
    send_error(client, request->id,
               "cell is not fingerprintable on this daemon (unknown "
               "workload '" + request->workload + "'?)");
    return;
  }
  const std::string fp_hex =
      harness::fingerprint_cell(request->workload, request->config,
                                request->sampling, request->probe_names)
          .hex();
  if (fp_hex != request->fingerprint_hex) {
    send_error(client, request->id,
               "fingerprint mismatch: client " + request->fingerprint_hex +
                   " vs daemon " + fp_hex +
                   " (client and daemon builds have diverged)");
    return;
  }

  {
    const std::scoped_lock lock(mu_);
    ++stats_.requests;
  }

  // Disk first: a cached cell costs one file read.
  if (!opts_.cache_dir.empty()) {
    const std::optional<std::string> text = store_.load(fp_hex, request->key);
    if (text) {
      {
        const std::scoped_lock lock(mu_);
        ++stats_.cache_hits;
        // A subscription racing a cached cell would wait forever (nothing
        // will simulate); resolve it with an empty final update instead.
        for (auto [it, end] = pending_subs_.equal_range(fp_hex); it != end;
             it = pending_subs_.erase(it)) {
          send_update(it->second.client,
                      UpdateMsg{fp_hex, it->second.channel, 0, 0,
                                /*final_update=*/true, {}});
        }
      }
      server_.send(client,
                   net::Frame{static_cast<std::uint8_t>(MsgType::kResult),
                              encode_result(ResultMsg{request->id,
                                                      /*cached=*/true, *text})});
      return;
    }
  }

  {
    const std::scoped_lock lock(mu_);
    if (const auto it = inflight_.find(fp_hex); it != inflight_.end()) {
      // Same fingerprint already simulating: join its completion. Joining
      // also rescinds any pending cooperative cancellation — the cell is
      // wanted again (if the worker already stopped, its abort path sees
      // the new waiter and resubmits).
      it->second->waiters.push_back(Waiter{client, request->id});
      it->second->cancel->store(false, std::memory_order_relaxed);
      ++stats_.deduped;
      return;
    }
    if (opts_.max_queue == 0 || inflight_.size() < opts_.max_queue) {
      auto cell = std::make_shared<InFlight>();
      cell->request = std::move(*request);
      cell->waiters.push_back(Waiter{client, cell->request.id});
      cell->cancel = std::make_shared<std::atomic<bool>>(false);
      for (auto [it, end] = pending_subs_.equal_range(fp_hex); it != end;
           it = pending_subs_.erase(it)) {
        cell->subs.push_back(std::move(it->second));
      }
      inflight_.emplace(fp_hex, std::move(cell));
      ++stats_.inflight;
      pool_.submit([this, fp_hex] { run_cell(fp_hex); });
      return;
    }
    ++stats_.busy;
  }
  // Queue full: refuse admission. Nothing was enqueued; the client backs
  // off and resubmits (idempotent: the retry is a cache hit or a join).
  server_.send(client,
               net::Frame{static_cast<std::uint8_t>(MsgType::kBusy),
                          encode_busy(BusyMsg{request->id,
                                              opts_.busy_retry_ms})});
}

void ExperimentDaemon::handle_cancel(std::uint64_t client,
                                     const net::Frame& frame) {
  const std::optional<CancelMsg> msg = decode_cancel(frame.payload);
  if (!msg) {
    send_error(client, 0, "malformed cancel request");
    return;
  }
  bool found = false;
  {
    const std::scoped_lock lock(mu_);
    for (auto it = inflight_.begin(); it != inflight_.end();) {
      InFlight& cell = *it->second;
      const std::size_t before = cell.waiters.size();
      std::erase_if(cell.waiters, [&](const Waiter& w) {
        return w.client == client && w.request_id == msg->id;
      });
      found = found || cell.waiters.size() != before;
      it = reap_if_orphaned(it);
    }
  }
  // Always answer, so the client can retire the id: kError with the echoed
  // id, same shape as any other failed request. Not counted in
  // stats_.errors — a granted cancellation is not a failure.
  server_.send(
      client,
      net::Frame{static_cast<std::uint8_t>(MsgType::kError),
                 encode_error(ErrorMsg{
                     msg->id, found ? "cancelled" : "unknown id"})});
}

void ExperimentDaemon::handle_subscribe(std::uint64_t client,
                                        const net::Frame& frame) {
  const std::optional<SubscribeMsg> msg = decode_subscribe(frame.payload);
  if (!msg) {
    send_error(client, 0, "malformed subscribe request");
    return;
  }
  const std::scoped_lock lock(mu_);
  ++stats_.subscriptions;
  Subscription sub{client, msg->channel, 0};
  if (const auto it = inflight_.find(msg->fingerprint_hex);
      it != inflight_.end()) {
    InFlight& cell = *it->second;
    cell.subs.push_back(std::move(sub));
    if (cell.live != nullptr && !cell.live_subscribed) {
      cell.live->snapshot_subscribe();
      cell.live_subscribed = true;
    }
    return;
  }
  pending_subs_.emplace(msg->fingerprint_hex, std::move(sub));
}

// ---- worker thread ------------------------------------------------------

void ExperimentDaemon::run_cell(const std::string& fp_hex) {
  CellRequest request;
  std::shared_ptr<std::atomic<bool>> cancel;
  {
    const std::scoped_lock lock(mu_);
    const auto it = inflight_.find(fp_hex);
    if (it == inflight_.end()) return;  // reaped while queued
    it->second->running = true;
    request = it->second->request;
    cancel = it->second->cancel;
  }

  harness::RunSpec spec;
  spec.workload = request.workload;
  spec.config = request.config;
  spec.config.stat_stride = request.stat_stride;
  spec.tag = request.key.to_string();
  spec.sampling = request.sampling;
  for (const std::string& name : request.probe_names)
    spec.probes.push_back(sim::ProbeSpec{name, find_probe_factory(name)});

  // Full-detail cells get a SnapshotProbe unconditionally: with no
  // snapshot subscriber it costs one relaxed atomic load per interval, and
  // a subscription arriving mid-run starts receiving pushes immediately.
  sim::SnapshotProbe snapshot_probe(opts_.snapshot_interval_cycles);
  harness::RunHooks hooks;
  if (!spec.sampling) hooks.extra_probes.push_back(&snapshot_probe);
  hooks.live_registry = [this, &fp_hex](sim::StatRegistry* registry) {
    const std::scoped_lock lock(mu_);
    const auto it = inflight_.find(fp_hex);
    if (it == inflight_.end()) return;
    InFlight& cell = *it->second;
    if (registry != nullptr) {
      cell.live = registry;
      if (!cell.subs.empty()) {
        registry->snapshot_subscribe();
        cell.live_subscribed = true;
      }
    } else {
      // Run complete, core still alive: capture the final registry for the
      // subscribers' closing slices, then forget the pointer (the core is
      // torn down as soon as this callback returns).
      if (cell.live != nullptr && !cell.subs.empty())
        cell.final_registry = *cell.live;
      if (cell.live_subscribed) {
        cell.live->snapshot_unsubscribe();
        cell.live_subscribed = false;
      }
      cell.live = nullptr;
    }
  };

  // `observed` latches locally: once the run saw the cancel flag the result
  // is partial and must be discarded, even if a late joiner cleared the
  // shared flag afterwards (the abort path resubmits for them).
  bool observed = false;
  hooks.cancelled = [&observed, &cancel] {
    if (cancel->load(std::memory_order_relaxed)) observed = true;
    return observed;
  };

  const harness::RunResult result = harness::run_one(spec, hooks);
  if (observed) {
    abort_cell(fp_hex);
    return;
  }
  harness::ExpEntry entry{request.key, result.stats, result.sampled,
                          result.metrics, /*from_cache=*/false};
  std::string text = harness::serialize_entry(entry, fp_hex);
  if (!opts_.cache_dir.empty()) store_.store(fp_hex, text);
  server_.post([this, fp_hex, text = std::move(text)] {
    complete_cell(fp_hex, text);
  });
}

void ExperimentDaemon::abort_cell(const std::string& fp_hex) {
  const std::scoped_lock lock(mu_);
  const auto it = inflight_.find(fp_hex);
  if (it == inflight_.end()) return;
  InFlight& cell = *it->second;
  if (!cell.waiters.empty() || !cell.subs.empty()) {
    // A requester joined between the cancellation and here: the partial
    // run is discarded, but the cell is wanted again — run it afresh.
    cell.running = false;
    cell.live = nullptr;
    cell.live_subscribed = false;
    cell.cancel = std::make_shared<std::atomic<bool>>(false);
    pool_.submit([this, fp_hex] { run_cell(fp_hex); });
    return;
  }
  inflight_.erase(it);
  --stats_.inflight;
  ++stats_.cancelled;
}

// ---- loop thread: completion + pushes -----------------------------------

void ExperimentDaemon::send_update(std::uint64_t client,
                                   const UpdateMsg& msg) {
  ++stats_.updates;  // callers hold mu_
  server_.send(client, net::Frame{static_cast<std::uint8_t>(MsgType::kUpdate),
                                  encode_update(msg)});
}

void ExperimentDaemon::complete_cell(const std::string& fp_hex,
                                     const std::string& entry_text) {
  std::shared_ptr<InFlight> cell;
  {
    const std::scoped_lock lock(mu_);
    const auto it = inflight_.find(fp_hex);
    if (it == inflight_.end()) return;
    cell = std::move(it->second);
    inflight_.erase(it);
    ++stats_.simulated;
    --stats_.inflight;

    // Closing slice for every subscriber: whatever the ticker has not
    // pushed yet, flagged final. Sampled cells (no live registry, so no
    // final_registry) close with an empty final update.
    for (Subscription& sub : cell->subs) {
      UpdateMsg update{fp_hex, sub.channel, 0, sub.sent_points,
                       /*final_update=*/true, {}};
      if (cell->final_registry) {
        if (const sim::StatRegistry::TimeSeries* channel =
                cell->final_registry->find_channel(sub.channel)) {
          update.stride = channel->stride;
          if (channel->points.size() > sub.sent_points)
            update.points.assign(channel->points.begin() +
                                     static_cast<std::ptrdiff_t>(
                                         sub.sent_points),
                                 channel->points.end());
        }
      }
      send_update(sub.client, update);
    }
  }
  for (const Waiter& waiter : cell->waiters) {
    server_.send(waiter.client,
                 net::Frame{static_cast<std::uint8_t>(MsgType::kResult),
                            encode_result(ResultMsg{waiter.request_id,
                                                    /*cached=*/false,
                                                    entry_text})});
  }
}

// ---- ticker thread ------------------------------------------------------

void ExperimentDaemon::push_updates() {
  // Loop thread only. Collecting and sending here — not on the ticker
  // thread — totally orders incremental slices against complete_cell's
  // final slice on each connection: a cell that completed between the tick
  // and this closure simply is not in `inflight_` anymore, and its last
  // points went out with the final update.
  const std::scoped_lock lock(mu_);
  for (auto& [fp, cell] : inflight_) {
    if (cell->live == nullptr || cell->subs.empty()) continue;
    const sim::StatRegistry snap = cell->live->snapshot();
    for (Subscription& sub : cell->subs) {
      const sim::StatRegistry::TimeSeries* channel =
          snap.find_channel(sub.channel);
      if (channel == nullptr || channel->points.size() <= sub.sent_points)
        continue;
      UpdateMsg update{fp, sub.channel, channel->stride, sub.sent_points,
                       /*final_update=*/false, {}};
      update.points.assign(channel->points.begin() +
                               static_cast<std::ptrdiff_t>(sub.sent_points),
                           channel->points.end());
      sub.sent_points = channel->points.size();
      send_update(sub.client, update);
    }
  }
}

void ExperimentDaemon::ticker_loop() {
  while (!ticker_stop_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(opts_.tick_ms));
    bool watching = false;
    {
      const std::scoped_lock lock(mu_);
      for (const auto& [fp, cell] : inflight_) {
        if (cell->live != nullptr && !cell->subs.empty()) {
          watching = true;
          break;
        }
      }
    }
    if (watching) server_.post([this] { push_updates(); });
  }
}

}  // namespace erel::service
