// Blocking client for the experiment daemon (service/daemon.hpp): one TCP
// connection, pipelined cell requests, synchronous await with out-of-order
// response buffering.
//
// The client never throws and never aborts on network trouble: every
// failure surfaces as a false/nullopt return with the reason in error(),
// so callers (harness::RemoteBackend) can degrade to local simulation.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>

#include "net/socket.hpp"
#include "service/protocol.hpp"

namespace erel::service {

class RemoteClient {
 public:
  RemoteClient() = default;

  /// Connects to "host:port" and validates the daemon's kHello (a version
  /// mismatch is a refusal — the payload encodings may have diverged).
  [[nodiscard]] bool connect(const std::string& endpoint);

  [[nodiscard]] bool connected() const { return socket_.valid(); }
  [[nodiscard]] const std::string& error() const { return error_; }

  /// kUpdate frames are delivered here as they interleave with awaited
  /// responses (they carry no request id; they are push traffic).
  void set_update_handler(std::function<void(const UpdateMsg&)> handler) {
    on_update_ = std::move(handler);
  }

  /// Fire-and-forget sends; responses are read by await()/stats().
  [[nodiscard]] bool send_cell(const CellRequest& request);
  [[nodiscard]] bool subscribe(const std::string& fingerprint_hex,
                               const std::string& channel);

  /// Blocks until the response for `id` arrives (kResult or kError —
  /// responses to other pipelined ids are buffered). nullopt on a kError
  /// reply or connection loss; `why` (optional) receives the reason.
  [[nodiscard]] std::optional<ResultMsg> await(std::uint64_t id,
                                               std::string* why = nullptr);

  /// Round-trips kStats. nullopt on connection loss.
  [[nodiscard]] std::optional<DaemonStats> stats();

  /// Sends kShutdown and waits for the daemon to close the connection.
  [[nodiscard]] bool shutdown_server();

 private:
  enum class Pumped { kDelivered, kOther, kClosed };
  /// Reads one frame, dispatching updates/buffering responses.
  Pumped pump();

  net::Socket socket_;
  std::string error_;
  std::function<void(const UpdateMsg&)> on_update_;
  std::map<std::uint64_t, ResultMsg> results_;
  std::map<std::uint64_t, ErrorMsg> errors_;
  std::optional<DaemonStats> last_stats_;
};

}  // namespace erel::service
