// Blocking client for the experiment daemon (service/daemon.hpp): one TCP
// connection, pipelined cell requests, synchronous await with out-of-order
// response buffering.
//
// The client never throws and never aborts on network trouble: every
// failure surfaces as a false/nullopt return with the reason in error()
// and a CallStatus classification in last_status(), so callers
// (harness::RemoteBackend) can tell retryable trouble (timeout, kBusy,
// torn connection) from fatal refusals (version mismatch, fingerprint
// refusal) and degrade to local simulation only when retrying is useless.
//
// Fault tolerance (v2): every blocking call is deadline-bounded
// (ClientOptions::call_timeout_ms), connects are bounded and retried with
// capped exponential backoff + deterministic jitter, and a torn connection
// is revived transparently — outstanding requests are resubmitted on the
// new connection, which is safe by construction because requests are
// content-addressed fingerprints: the daemon answers a resubmitted cell
// from its cache or joins it to the in-flight simulation, never simulates
// it twice.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/bits.hpp"
#include "net/socket.hpp"
#include "service/protocol.hpp"

namespace erel::service {

/// Deadlines and retry shape for one RemoteClient. The defaults suit a
/// loopback daemon; sweeps over a real network raise call_timeout_ms.
struct ClientOptions {
  unsigned connect_timeout_ms = 5'000;
  /// Deadline for one await()/stats() call, covering any transparent
  /// reconnects it performs. An await that times out leaves the
  /// connection (and the pending request) intact: the result is picked up
  /// by a later await or retry.
  unsigned call_timeout_ms = 120'000;
  /// Reconnect attempts after a torn connection (per call), with capped
  /// exponential backoff + jitter between attempts.
  unsigned reconnect_attempts = 3;
  unsigned backoff_base_ms = 20;
  unsigned backoff_cap_ms = 1'000;
  /// Seed for backoff jitter: deterministic, so tests replay exactly.
  std::uint64_t jitter_seed = 0;
};

/// How the last await()/stats() call ended; the retry/degrade decision in
/// harness::RemoteBackend keys off this, not off error-message strings.
enum class CallStatus {
  kOk,
  kRefused,        // daemon answered kError for this id: fatal for the cell
  kBusy,           // daemon refused admission (kBusy): back off and retry
  kTimeout,        // call deadline expired: connection intact, retryable
  kDisconnected,   // connection torn and could not be revived: retryable
  kProtocolError,  // peer broke the protocol: connection closed
};

std::string_view call_status_name(CallStatus status);

class RemoteClient {
 public:
  RemoteClient() = default;
  explicit RemoteClient(const ClientOptions& opts)
      : opts_(opts), jitter_(opts.jitter_seed) {}

  /// Connects to "host:port" and validates the daemon's kHello (a version
  /// mismatch is a fatal refusal — the payload encodings may have
  /// diverged). Retries non-fatal failures with backoff.
  [[nodiscard]] bool connect(const std::string& endpoint);

  [[nodiscard]] bool connected() const { return socket_.valid(); }
  [[nodiscard]] const std::string& error() const { return error_; }
  [[nodiscard]] CallStatus last_status() const { return last_status_; }
  /// The daemon's retry hint from the last kBusy refusal, milliseconds.
  [[nodiscard]] std::uint64_t last_busy_retry_ms() const {
    return last_busy_retry_ms_;
  }
  /// Successful transparent reconnects performed so far (test observability).
  [[nodiscard]] std::uint64_t reconnects() const { return reconnects_; }

  /// kUpdate frames are delivered here as they interleave with awaited
  /// responses (they carry no request id; they are push traffic).
  void set_update_handler(std::function<void(const UpdateMsg&)> handler) {
    on_update_ = std::move(handler);
  }

  /// Pipelined send; the response is read by await(). The request is held
  /// for transparent resubmission until its response arrives (or the id is
  /// cancelled/forgotten). Ids must be unique per client lifetime.
  [[nodiscard]] bool send_cell(const CellRequest& request);
  [[nodiscard]] bool subscribe(const std::string& fingerprint_hex,
                               const std::string& channel);

  /// Blocks until the response for `id` arrives or the call deadline
  /// expires (responses to other pipelined ids are buffered). nullopt on
  /// anything but kResult; `why` (optional) receives the reason and
  /// last_status() the classification.
  [[nodiscard]] std::optional<ResultMsg> await(std::uint64_t id,
                                               std::string* why = nullptr);

  /// Withdraws request `id`: tells the daemon (kCancel, when connected)
  /// and drops all local state for the id. The daemon's acknowledgement
  /// and any late result are discarded silently.
  void cancel(std::uint64_t id);

  /// Drops all local state for `id` without telling the daemon (for ids
  /// that died with a torn connection).
  void forget(std::uint64_t id);

  /// Tears the connection down on purpose, keeping pending requests and
  /// subscriptions: the next call revives it and resubmits (idempotent by
  /// content addressing). For callers that judge a connection suspect —
  /// e.g. repeated await deadlines on a path that normally answers fast,
  /// the signature of a half-dead (blackholed) peer that send() cannot
  /// detect.
  void reset_connection();

  /// Round-trips kStats within the call deadline. nullopt on failure.
  [[nodiscard]] std::optional<DaemonStats> stats();

  /// Sends kShutdown and waits (bounded) for the daemon to close.
  [[nodiscard]] bool shutdown_server();

 private:
  enum class Pumped { kDelivered, kOther, kClosed, kTimeout };
  /// Reads one frame within `timeout_ms`, dispatching updates and
  /// buffering responses. Enforces the response-buffer cap and treats a
  /// duplicate response id as a protocol error (closes the connection).
  Pumped pump(int timeout_ms);
  Pumped protocol_error(std::string message);
  Pumped enforce_buffer_cap();
  [[nodiscard]] bool response_buffered(std::uint64_t id) const;

  /// One bounded connect + hello validation; sets fatal_ on refusals that
  /// retrying cannot fix.
  bool connect_once();
  /// Reconnect loop with backoff; resubmits pending requests and
  /// subscriptions on success.
  bool revive();
  bool resubmit_state();
  void backoff_sleep(unsigned attempt);

  ClientOptions opts_;
  net::Socket socket_;
  std::string endpoint_;
  std::string error_;
  bool fatal_ = false;  // refusal that reconnecting cannot fix
  CallStatus last_status_ = CallStatus::kOk;
  std::uint64_t last_busy_retry_ms_ = 0;
  std::uint64_t reconnects_ = 0;
  Xorshift jitter_{0};
  std::function<void(const UpdateMsg&)> on_update_;

  std::map<std::uint64_t, CellRequest> pending_;  // sent, not yet answered
  std::vector<SubscribeMsg> subscriptions_;       // replayed on reconnect
  std::set<std::uint64_t> discard_ids_;           // cancelled; drop replies
  std::map<std::uint64_t, ResultMsg> results_;
  std::map<std::uint64_t, ErrorMsg> errors_;
  std::map<std::uint64_t, BusyMsg> busies_;
  std::optional<DaemonStats> last_stats_;
};

}  // namespace erel::service
