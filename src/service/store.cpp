#include "service/store.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "common/log.hpp"
#include "harness/result_cache.hpp"

namespace erel::service {

namespace fs = std::filesystem;

void ResultStore::open(std::string dir, std::uint64_t max_bytes) {
  const std::scoped_lock lock(mu_);
  dir_ = std::move(dir);
  max_bytes_ = max_bytes;
  lru_.clear();
  index_.clear();
  total_bytes_ = 0;

  std::error_code ec;
  std::vector<std::pair<std::string, std::uint64_t>> found;
  for (const auto& ent : fs::directory_iterator(dir_, ec)) {
    if (!ent.is_regular_file(ec)) continue;
    const fs::path& path = ent.path();
    if (path.extension() != ".erelres") continue;
    found.emplace_back(path.stem().string(),
                       static_cast<std::uint64_t>(ent.file_size(ec)));
  }
  // directory_iterator order is filesystem-dependent; sort for a
  // reproducible cold-start LRU.
  std::sort(found.begin(), found.end());
  for (auto& [fp, bytes] : found) {
    lru_.push_front(fp);
    index_[fp] = Indexed{lru_.begin(), bytes};
    total_bytes_ += bytes;
  }
}

void ResultStore::touch(const std::string& fp_hex) {
  const auto it = index_.find(fp_hex);
  if (it == index_.end()) return;
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
}

void ResultStore::forget(const std::string& fp_hex) {
  const auto it = index_.find(fp_hex);
  if (it == index_.end()) return;
  total_bytes_ -= it->second.bytes;
  lru_.erase(it->second.lru_pos);
  index_.erase(it);
}

std::optional<std::string> ResultStore::load(std::string_view fp_hex,
                                             const harness::ExpKey& key) {
  const std::string fp(fp_hex);
  const std::string path = harness::cache_entry_path(dir_, fp_hex);
  const std::scoped_lock lock(mu_);
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    forget(fp);  // deleted behind our back (another process, manual rm)
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string text = buffer.str();
  if (!harness::parse_entry(text, fp_hex, key)) {
    // Quarantine rather than delete: repeated requests stop paying the
    // parse-and-fail cost, and the bad bytes survive for inspection.
    std::error_code ec;
    fs::rename(path, path + ".bad", ec);
    if (ec) fs::remove(path, ec);
    ++quarantined_;
    forget(fp);
    EREL_WARN("quarantined corrupt cache entry ", path, " -> ", path, ".bad");
    return std::nullopt;
  }
  if (index_.find(fp) == index_.end()) {
    // Appeared after open() (another writer); index it now.
    lru_.push_front(fp);
    index_[fp] = Indexed{lru_.begin(), text.size()};
    total_bytes_ += text.size();
  } else {
    touch(fp);
  }
  return text;
}

void ResultStore::store(std::string_view fp_hex, const std::string& text) {
  const std::string fp(fp_hex);
  const std::string path = harness::cache_entry_path(dir_, fp_hex);
  const std::scoped_lock lock(mu_);
  harness::save_cache_entry(path, text);
  forget(fp);
  lru_.push_front(fp);
  index_[fp] = Indexed{lru_.begin(), text.size()};
  total_bytes_ += text.size();
  evict_over_budget(fp);
}

void ResultStore::evict_over_budget(std::string_view keep_fp) {
  if (max_bytes_ == 0) return;
  while (total_bytes_ > max_bytes_ && !lru_.empty()) {
    const std::string victim = lru_.back();  // copy: forget() erases the node
    if (victim == keep_fp) break;  // never evict what we just stored
    std::error_code ec;
    fs::remove(harness::cache_entry_path(dir_, victim), ec);
    ++evicted_;
    forget(victim);
  }
}

ResultStore::Counters ResultStore::counters() const {
  const std::scoped_lock lock(mu_);
  return Counters{evicted_, quarantined_, total_bytes_,
                  static_cast<std::uint64_t>(index_.size())};
}

}  // namespace erel::service
