// Byte-capped LRU view over the daemon's on-disk result cache.
//
// The files themselves stay exactly what harness/result_cache.hpp writes —
// one <fingerprint>.erelres text entry, atomically published — so local
// runs, other daemons, and humans with `cat` all keep working against the
// same directory. This class adds the two properties a long-lived daemon
// needs on top: a --max-cache-bytes budget enforced by least-recently-used
// eviction, and quarantine for corrupt entries (renamed to `<path>.bad`
// instead of being re-read and re-missed on every request, preserving the
// evidence for a postmortem).
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

#include "harness/results.hpp"

namespace erel::service {

/// Thread-safe: daemon worker threads load and store concurrently. All
/// byte accounting counts entry payloads, not filesystem overhead.
class ResultStore {
 public:
  ResultStore() = default;

  /// Points the store at `dir` and scans existing *.erelres entries into
  /// the index (LRU-ordered by filename — deterministic, and as good a
  /// cold-start order as any). `max_bytes` 0 means unlimited.
  void open(std::string dir, std::uint64_t max_bytes);

  /// Validated load of one entry's verbatim text; touches the LRU on a
  /// hit. A present-but-invalid file is quarantined to `<path>.bad` and
  /// reported as a miss.
  std::optional<std::string> load(std::string_view fp_hex,
                                  const harness::ExpKey& key);

  /// Publishes `text` for `fp_hex` (atomic tmp+rename underneath), then
  /// evicts least-recently-used entries until the budget holds again. The
  /// just-stored entry is never evicted, even if it alone exceeds the cap.
  void store(std::string_view fp_hex, const std::string& text);

  struct Counters {
    std::uint64_t evicted = 0;      // entries removed by the byte cap
    std::uint64_t quarantined = 0;  // corrupt entries renamed to .bad
    std::uint64_t bytes = 0;        // payload bytes currently indexed
    std::uint64_t entries = 0;      // entries currently indexed
  };
  [[nodiscard]] Counters counters() const;

 private:
  struct Indexed {
    std::list<std::string>::iterator lru_pos;
    std::uint64_t bytes = 0;
  };

  // All require mu_ held.
  void touch(const std::string& fp_hex);
  void forget(const std::string& fp_hex);
  void evict_over_budget(std::string_view keep_fp);

  mutable std::mutex mu_;
  std::string dir_;
  std::uint64_t max_bytes_ = 0;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t evicted_ = 0;
  std::uint64_t quarantined_ = 0;
  std::list<std::string> lru_;  // front = most recently used; holds fp_hex
  std::map<std::string, Indexed, std::less<>> index_;
};

}  // namespace erel::service
