#include "service/protocol.hpp"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "core/release_policy.hpp"

namespace erel::service {

namespace {

// ---- line-oriented payload scanning ------------------------------------

/// Splits `text` into '\n'-terminated lines; a trailing unterminated line
/// counts as a line too.
class LineScanner {
 public:
  explicit LineScanner(std::string_view text) : rest_(text) {}

  bool next(std::string_view& line) {
    if (rest_.empty()) return false;
    const std::size_t nl = rest_.find('\n');
    if (nl == std::string_view::npos) {
      line = rest_;
      rest_ = {};
    } else {
      line = rest_.substr(0, nl);
      rest_ = rest_.substr(nl + 1);
    }
    return true;
  }

  [[nodiscard]] std::string_view rest() const { return rest_; }

 private:
  std::string_view rest_;
};

/// "key value" -> (key, value); "key" alone -> (key, ""). The value may
/// contain spaces (workload paths, variant labels, error messages).
void split_first_space(std::string_view line, std::string_view& key,
                       std::string_view& value) {
  const std::size_t space = line.find(' ');
  if (space == std::string_view::npos) {
    key = line;
    value = {};
  } else {
    key = line.substr(0, space);
    value = line.substr(space + 1);
  }
}

std::optional<std::uint64_t> parse_u64(std::string_view text) {
  if (text.empty() || !std::isdigit(static_cast<unsigned char>(text[0])))
    return std::nullopt;
  const std::string copy(text);
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(copy.c_str(), &end, 10);
  if (end != copy.c_str() + copy.size() || errno != 0) return std::nullopt;
  return v;
}

std::optional<bool> parse_bool(std::string_view text) {
  if (text == "0") return false;
  if (text == "1") return true;
  return std::nullopt;
}

void append_u64_line(std::string& out, std::string_view key,
                     std::uint64_t value) {
  out += key;
  out += ' ';
  out += std::to_string(value);
  out += '\n';
}

std::string render_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::optional<double> parse_double(std::string_view text) {
  if (text.empty()) return std::nullopt;
  const std::string copy(text);
  char* end = nullptr;
  const double v = std::strtod(copy.c_str(), &end);
  if (end != copy.c_str() + copy.size()) return std::nullopt;
  return v;
}

}  // namespace

// ---- message tags -------------------------------------------------------

std::string_view msg_type_name(MsgType type) {
  switch (type) {
    case MsgType::kHello: return "hello";
    case MsgType::kRunCell: return "run_cell";
    case MsgType::kResult: return "result";
    case MsgType::kError: return "error";
    case MsgType::kSubscribe: return "subscribe";
    case MsgType::kUpdate: return "update";
    case MsgType::kPing: return "ping";
    case MsgType::kPong: return "pong";
    case MsgType::kStats: return "stats";
    case MsgType::kStatsReply: return "stats_reply";
    case MsgType::kShutdown: return "shutdown";
    case MsgType::kCancel: return "cancel";
    case MsgType::kBusy: return "busy";
  }
  return "unknown";
}

// ---- CellRequest --------------------------------------------------------

std::string encode_cell_request(const CellRequest& request) {
  std::string out = "erel-cell v1\n";
  append_u64_line(out, "id", request.id);
  out += "fp ";
  out += request.fingerprint_hex;
  out += '\n';
  out += "workload ";
  out += request.workload;
  out += '\n';
  out += "key.policy ";
  out += core::policy_name(request.key.policy);
  out += '\n';
  append_u64_line(out, "key.phys", request.key.phys);
  out += "key.variant ";
  out += request.key.variant;
  out += '\n';
  append_u64_line(out, "stat_stride", request.stat_stride);
  for (const std::string& name : request.probe_names) {
    out += "probe ";
    out += name;
    out += '\n';
  }
  // The canonical renderings are reused verbatim (prefixed for config so
  // the decoder can route lines); whatever the fingerprint hashes is what
  // crosses the wire.
  std::string canon;
  sim::append_canonical_fields(request.config, canon);
  LineScanner scanner(canon);
  for (std::string_view line; scanner.next(line);) {
    out += "cfg.";
    out += line;
    out += '\n';
  }
  if (request.sampling) {
    std::string sampling_canon;
    sim::append_canonical_fields(*request.sampling, sampling_canon);
    out += sampling_canon;  // lines already namespaced "sampling.*=..."
  }
  out += "end\n";
  return out;
}

std::optional<CellRequest> decode_cell_request(std::string_view payload) {
  LineScanner scanner(payload);
  std::string_view line;
  if (!scanner.next(line) || line != "erel-cell v1") return std::nullopt;

  CellRequest request;
  std::map<std::string, std::string, std::less<>> cfg_fields;
  std::map<std::string, std::string, std::less<>> sampling_fields;
  bool saw_id = false, saw_fp = false, saw_workload = false;
  bool saw_policy = false, saw_phys = false, saw_variant = false;
  bool saw_stride = false, saw_end = false;

  while (scanner.next(line)) {
    if (line == "end") {
      saw_end = true;
      break;
    }
    // Canonical field lines are "name=value"; everything else "key value".
    if (line.substr(0, 4) == "cfg." || line.substr(0, 9) == "sampling.") {
      const std::size_t eq = line.find('=');
      if (eq == std::string_view::npos) return std::nullopt;
      const bool is_cfg = line[0] == 'c';
      std::string name(line.substr(is_cfg ? 4 : 0, eq - (is_cfg ? 4 : 0)));
      auto& fields = is_cfg ? cfg_fields : sampling_fields;
      if (!fields.emplace(std::move(name), std::string(line.substr(eq + 1)))
               .second)
        return std::nullopt;  // duplicate field
      continue;
    }
    std::string_view key, value;
    split_first_space(line, key, value);
    if (key == "id") {
      const auto v = parse_u64(value);
      if (!v || saw_id) return std::nullopt;
      request.id = *v;
      saw_id = true;
    } else if (key == "fp") {
      if (value.empty() || saw_fp) return std::nullopt;
      request.fingerprint_hex = value;
      saw_fp = true;
    } else if (key == "workload") {
      if (value.empty() || saw_workload) return std::nullopt;
      request.workload = value;
      saw_workload = true;
    } else if (key == "key.policy") {
      const auto kind = core::try_parse_policy(value);
      if (!kind || saw_policy) return std::nullopt;
      request.key.policy = *kind;
      saw_policy = true;
    } else if (key == "key.phys") {
      const auto v = parse_u64(value);
      if (!v || *v > 0xffffffffull || saw_phys) return std::nullopt;
      request.key.phys = static_cast<unsigned>(*v);
      saw_phys = true;
    } else if (key == "key.variant") {
      if (saw_variant) return std::nullopt;
      request.key.variant = value;
      saw_variant = true;
    } else if (key == "stat_stride") {
      const auto v = parse_u64(value);
      if (!v || saw_stride) return std::nullopt;
      request.stat_stride = *v;
      saw_stride = true;
    } else if (key == "probe") {
      if (value.empty() || value.find(' ') != std::string_view::npos)
        return std::nullopt;
      request.probe_names.emplace_back(value);
    } else {
      return std::nullopt;  // unknown line: reject, never skip silently
    }
  }
  if (!saw_end || !saw_id || !saw_fp || !saw_workload || !saw_policy ||
      !saw_phys || !saw_variant || !saw_stride)
    return std::nullopt;

  const std::optional<sim::SimConfig> config =
      sim::config_from_canonical_fields(cfg_fields);
  if (!config) return std::nullopt;
  request.config = *config;
  if (!sampling_fields.empty()) {
    const std::optional<sim::SamplingConfig> sampling =
        sim::sampling_from_canonical_fields(sampling_fields);
    if (!sampling) return std::nullopt;
    request.sampling = *sampling;
  }
  request.key.workload = request.workload;
  return request;
}

// ---- ResultMsg ----------------------------------------------------------

std::string encode_result(const ResultMsg& msg) {
  std::string out;
  append_u64_line(out, "id", msg.id);
  out += msg.cached ? "cached 1\n" : "cached 0\n";
  out += msg.entry_text;
  return out;
}

std::optional<ResultMsg> decode_result(std::string_view payload) {
  LineScanner scanner(payload);
  std::string_view line, key, value;
  ResultMsg msg;
  if (!scanner.next(line)) return std::nullopt;
  split_first_space(line, key, value);
  const auto id = parse_u64(value);
  if (key != "id" || !id) return std::nullopt;
  msg.id = *id;
  if (!scanner.next(line)) return std::nullopt;
  split_first_space(line, key, value);
  const auto cached = parse_bool(value);
  if (key != "cached" || !cached) return std::nullopt;
  msg.cached = *cached;
  msg.entry_text = scanner.rest();
  if (msg.entry_text.empty()) return std::nullopt;
  return msg;
}

// ---- ErrorMsg -----------------------------------------------------------

std::string encode_error(const ErrorMsg& msg) {
  std::string out;
  append_u64_line(out, "id", msg.id);
  out += msg.message;
  return out;
}

std::optional<ErrorMsg> decode_error(std::string_view payload) {
  LineScanner scanner(payload);
  std::string_view line, key, value;
  if (!scanner.next(line)) return std::nullopt;
  split_first_space(line, key, value);
  const auto id = parse_u64(value);
  if (key != "id" || !id) return std::nullopt;
  return ErrorMsg{*id, std::string(scanner.rest())};
}

// ---- CancelMsg ----------------------------------------------------------

std::string encode_cancel(const CancelMsg& msg) {
  std::string out;
  append_u64_line(out, "id", msg.id);
  return out;
}

std::optional<CancelMsg> decode_cancel(std::string_view payload) {
  LineScanner scanner(payload);
  std::string_view line, key, value;
  if (!scanner.next(line)) return std::nullopt;
  split_first_space(line, key, value);
  const auto id = parse_u64(value);
  if (key != "id" || !id) return std::nullopt;
  if (!scanner.rest().empty()) return std::nullopt;
  return CancelMsg{*id};
}

// ---- BusyMsg ------------------------------------------------------------

std::string encode_busy(const BusyMsg& msg) {
  std::string out;
  append_u64_line(out, "id", msg.id);
  append_u64_line(out, "retry_ms", msg.retry_ms);
  return out;
}

std::optional<BusyMsg> decode_busy(std::string_view payload) {
  LineScanner scanner(payload);
  std::string_view line, key, value;
  BusyMsg msg;
  if (!scanner.next(line)) return std::nullopt;
  split_first_space(line, key, value);
  const auto id = parse_u64(value);
  if (key != "id" || !id) return std::nullopt;
  msg.id = *id;
  if (!scanner.next(line)) return std::nullopt;
  split_first_space(line, key, value);
  const auto retry = parse_u64(value);
  if (key != "retry_ms" || !retry) return std::nullopt;
  msg.retry_ms = *retry;
  if (!scanner.rest().empty()) return std::nullopt;
  return msg;
}

// ---- SubscribeMsg -------------------------------------------------------

std::string encode_subscribe(const SubscribeMsg& msg) {
  std::string out = "fp ";
  out += msg.fingerprint_hex;
  out += "\nchannel ";
  out += msg.channel;
  out += '\n';
  return out;
}

std::optional<SubscribeMsg> decode_subscribe(std::string_view payload) {
  LineScanner scanner(payload);
  std::string_view line, key, value;
  SubscribeMsg msg;
  if (!scanner.next(line)) return std::nullopt;
  split_first_space(line, key, value);
  if (key != "fp" || value.empty()) return std::nullopt;
  msg.fingerprint_hex = value;
  if (!scanner.next(line)) return std::nullopt;
  split_first_space(line, key, value);
  if (key != "channel" || value.empty() ||
      value.find(' ') != std::string_view::npos)
    return std::nullopt;
  msg.channel = value;
  if (!scanner.rest().empty()) return std::nullopt;
  return msg;
}

// ---- UpdateMsg ----------------------------------------------------------

std::string encode_update(const UpdateMsg& msg) {
  std::string out = "fp ";
  out += msg.fingerprint_hex;
  out += "\nchannel ";
  out += msg.channel;
  out += '\n';
  append_u64_line(out, "stride", msg.stride);
  append_u64_line(out, "first", msg.first);
  out += msg.final_update ? "final 1\n" : "final 0\n";
  append_u64_line(out, "count", msg.points.size());
  for (const double p : msg.points) {
    out += render_double(p);
    out += '\n';
  }
  return out;
}

std::optional<UpdateMsg> decode_update(std::string_view payload) {
  LineScanner scanner(payload);
  std::string_view line, key, value;
  UpdateMsg msg;
  const auto expect = [&](std::string_view want,
                          std::string_view& out) -> bool {
    if (!scanner.next(line)) return false;
    split_first_space(line, key, value);
    if (key != want) return false;
    out = value;
    return true;
  };
  std::string_view text;
  if (!expect("fp", text) || text.empty()) return std::nullopt;
  msg.fingerprint_hex = text;
  if (!expect("channel", text) || text.empty()) return std::nullopt;
  msg.channel = text;
  if (!expect("stride", text)) return std::nullopt;
  const auto stride = parse_u64(text);
  if (!stride) return std::nullopt;
  msg.stride = *stride;
  if (!expect("first", text)) return std::nullopt;
  const auto first = parse_u64(text);
  if (!first) return std::nullopt;
  msg.first = *first;
  if (!expect("final", text)) return std::nullopt;
  const auto final_update = parse_bool(text);
  if (!final_update) return std::nullopt;
  msg.final_update = *final_update;
  if (!expect("count", text)) return std::nullopt;
  const auto count = parse_u64(text);
  if (!count) return std::nullopt;
  msg.points.reserve(*count);
  for (std::uint64_t i = 0; i < *count; ++i) {
    if (!scanner.next(line)) return std::nullopt;
    const auto p = parse_double(line);
    if (!p) return std::nullopt;
    msg.points.push_back(*p);
  }
  if (!scanner.rest().empty()) return std::nullopt;
  return msg;
}

// ---- DaemonStats --------------------------------------------------------

namespace {

template <class Stats, class Fn>
void daemon_stats_fields(Stats& stats, Fn&& f) {
  f("requests", stats.requests);
  f("cache_hits", stats.cache_hits);
  f("simulated", stats.simulated);
  f("deduped", stats.deduped);
  f("errors", stats.errors);
  f("subscriptions", stats.subscriptions);
  f("updates", stats.updates);
  f("inflight", stats.inflight);
  f("busy", stats.busy);
  f("cancelled", stats.cancelled);
  f("dropped_clients", stats.dropped_clients);
  f("evicted", stats.evicted);
  f("quarantined", stats.quarantined);
}

}  // namespace

std::string encode_stats(const DaemonStats& stats) {
  std::string out;
  daemon_stats_fields(stats, [&out](std::string_view name, std::uint64_t v) {
    append_u64_line(out, name, v);
  });
  return out;
}

std::optional<DaemonStats> decode_stats(std::string_view payload) {
  std::map<std::string, std::string, std::less<>> fields;
  LineScanner scanner(payload);
  for (std::string_view line; scanner.next(line);) {
    if (line.empty()) continue;
    std::string_view key, value;
    split_first_space(line, key, value);
    if (!fields.emplace(std::string(key), std::string(value)).second)
      return std::nullopt;
  }
  DaemonStats stats;
  bool ok = true;
  std::size_t consumed = 0;
  daemon_stats_fields(stats, [&](std::string_view name, std::uint64_t& v) {
    const auto it = fields.find(name);
    if (it == fields.end()) {
      ok = false;
      return;
    }
    ++consumed;
    const auto parsed = parse_u64(it->second);
    if (!parsed) {
      ok = false;
      return;
    }
    v = *parsed;
  });
  if (!ok || consumed != fields.size()) return std::nullopt;
  return stats;
}

}  // namespace erel::service
