#include "service/client.hpp"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

namespace erel::service {

namespace {

/// The await/stats buffers hold responses to *pipelined* requests, so
/// their size is bounded by how many requests a sane client pipelines. A
/// peer that pushes more responses than that is broken or hostile; cap the
/// buffers instead of letting it grow our heap without bound.
constexpr std::size_t kMaxBufferedResponses = 1024;

int remaining_ms(std::chrono::steady_clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - std::chrono::steady_clock::now());
  if (left.count() <= 0) return 0;
  if (left.count() > 1'000'000'000) return 1'000'000'000;
  return static_cast<int>(left.count());
}

}  // namespace

std::string_view call_status_name(CallStatus status) {
  switch (status) {
    case CallStatus::kOk: return "ok";
    case CallStatus::kRefused: return "refused";
    case CallStatus::kBusy: return "busy";
    case CallStatus::kTimeout: return "timeout";
    case CallStatus::kDisconnected: return "disconnected";
    case CallStatus::kProtocolError: return "protocol_error";
  }
  return "?";
}

// ---- connection management ----------------------------------------------

bool RemoteClient::connect_once() {
  const auto parsed = net::parse_endpoint(endpoint_);
  if (!parsed) {
    error_ = "malformed endpoint '" + endpoint_ + "' (want host:port)";
    fatal_ = true;
    return false;
  }
  socket_ = net::connect_to(parsed->first, parsed->second, &error_,
                            static_cast<int>(opts_.connect_timeout_ms));
  if (!socket_.valid()) return false;

  net::Frame hello;
  bool clean_eof = false;
  switch (socket_.recv_frame_deadline(
      hello, static_cast<int>(opts_.connect_timeout_ms), &clean_eof)) {
    case net::Socket::RecvStatus::kFrame:
      break;
    case net::Socket::RecvStatus::kTimeout:
      error_ = "timed out waiting for ereld greeting from " + endpoint_;
      socket_ = net::Socket{};
      return false;
    case net::Socket::RecvStatus::kEof:
    case net::Socket::RecvStatus::kError:
      error_ = "no ereld greeting from " + endpoint_;
      socket_ = net::Socket{};
      return false;
  }
  if (static_cast<MsgType>(hello.type) != MsgType::kHello) {
    error_ = "expected hello from " + endpoint_ + ", got " +
             std::string(msg_type_name(static_cast<MsgType>(hello.type)));
    socket_ = net::Socket{};
    fatal_ = true;  // whatever answered is not an ereld we can talk to
    return false;
  }
  const std::string expected = "ereld " + std::to_string(kProtocolVersion);
  if (hello.payload != expected) {
    error_ = "protocol mismatch: daemon says '" + hello.payload +
             "', client speaks '" + expected + "'";
    socket_ = net::Socket{};
    fatal_ = true;  // reconnecting reaches the same daemon
    return false;
  }
  return true;
}

void RemoteClient::backoff_sleep(unsigned attempt) {
  std::uint64_t backoff = opts_.backoff_base_ms;
  for (unsigned i = 0; i < attempt && backoff < opts_.backoff_cap_ms; ++i)
    backoff *= 2;
  backoff = std::min<std::uint64_t>(backoff, opts_.backoff_cap_ms);
  // Jitter in [backoff/2, backoff]: desynchronizes a fleet of clients
  // hammering one recovering daemon, deterministically per jitter_seed.
  const std::uint64_t jittered = backoff / 2 + jitter_.below(backoff / 2 + 1);
  std::this_thread::sleep_for(std::chrono::milliseconds(jittered));
}

bool RemoteClient::resubmit_state() {
  // Content-addressed requests make this resubmission idempotent: the
  // daemon serves a repeat from cache or joins it to the in-flight cell.
  for (const auto& [id, request] : pending_) {
    if (!socket_.send_frame(
            net::Frame{static_cast<std::uint8_t>(MsgType::kRunCell),
                       encode_cell_request(request)})) {
      error_ = "connection lost while resubmitting request " +
               std::to_string(id);
      socket_ = net::Socket{};
      return false;
    }
  }
  for (const SubscribeMsg& sub : subscriptions_) {
    if (!socket_.send_frame(
            net::Frame{static_cast<std::uint8_t>(MsgType::kSubscribe),
                       encode_subscribe(sub)})) {
      error_ = "connection lost while resubscribing";
      socket_ = net::Socket{};
      return false;
    }
  }
  return true;
}

bool RemoteClient::revive() {
  if (endpoint_.empty() || fatal_) return false;
  for (unsigned attempt = 0; attempt < opts_.reconnect_attempts; ++attempt) {
    backoff_sleep(attempt);
    if (connect_once()) {
      // The old connection's cancel acks died with it; the new daemon-side
      // state has no memory of them.
      discard_ids_.clear();
      if (resubmit_state()) {
        ++reconnects_;
        return true;
      }
      continue;  // torn again mid-resubmit: next attempt
    }
    if (fatal_) return false;
  }
  return false;
}

bool RemoteClient::connect(const std::string& endpoint) {
  endpoint_ = endpoint;
  fatal_ = false;
  error_.clear();
  if (connect_once()) return true;
  if (fatal_) return false;
  return revive();
}

// ---- sends ---------------------------------------------------------------

bool RemoteClient::send_cell(const CellRequest& request) {
  pending_[request.id] = request;
  if (!socket_.valid() && !revive()) {
    pending_.erase(request.id);
    last_status_ = CallStatus::kDisconnected;
    return false;
  }
  if (socket_.send_frame(
          net::Frame{static_cast<std::uint8_t>(MsgType::kRunCell),
                     encode_cell_request(request)}))
    return true;
  error_ = "connection lost while sending cell request";
  socket_ = net::Socket{};
  if (revive()) return true;  // resubmit_state() already sent it
  pending_.erase(request.id);
  last_status_ = CallStatus::kDisconnected;
  return false;
}

bool RemoteClient::subscribe(const std::string& fingerprint_hex,
                             const std::string& channel) {
  subscriptions_.push_back(SubscribeMsg{fingerprint_hex, channel});
  if (!socket_.valid() && !revive()) {
    subscriptions_.pop_back();
    last_status_ = CallStatus::kDisconnected;
    return false;
  }
  if (socket_.send_frame(
          net::Frame{static_cast<std::uint8_t>(MsgType::kSubscribe),
                     encode_subscribe(subscriptions_.back())}))
    return true;
  error_ = "connection lost while subscribing";
  socket_ = net::Socket{};
  if (revive()) return true;  // resubmit_state() already sent it
  subscriptions_.pop_back();
  last_status_ = CallStatus::kDisconnected;
  return false;
}

void RemoteClient::cancel(std::uint64_t id) {
  const bool was_pending = pending_.erase(id) != 0;
  results_.erase(id);
  errors_.erase(id);
  busies_.erase(id);
  if (was_pending && socket_.valid()) {
    // Best effort: the ack (and any racing result) is dropped by pump().
    discard_ids_.insert(id);
    if (!socket_.send_frame(
            net::Frame{static_cast<std::uint8_t>(MsgType::kCancel),
                       encode_cancel(CancelMsg{id})})) {
      socket_ = net::Socket{};
      discard_ids_.erase(id);
    }
  }
}

void RemoteClient::forget(std::uint64_t id) {
  pending_.erase(id);
  results_.erase(id);
  errors_.erase(id);
  busies_.erase(id);
  discard_ids_.erase(id);
}

void RemoteClient::reset_connection() {
  socket_ = net::Socket{};
  // Cancel acknowledgements in flight died with the connection; the ids
  // must not linger and swallow unrelated future responses.
  discard_ids_.clear();
}

// ---- receive pump --------------------------------------------------------

RemoteClient::Pumped RemoteClient::protocol_error(std::string message) {
  error_ = std::move(message);
  last_status_ = CallStatus::kProtocolError;
  socket_ = net::Socket{};
  return Pumped::kClosed;
}

bool RemoteClient::response_buffered(std::uint64_t id) const {
  return results_.count(id) != 0 || errors_.count(id) != 0 ||
         busies_.count(id) != 0;
}

RemoteClient::Pumped RemoteClient::enforce_buffer_cap() {
  if (results_.size() + errors_.size() + busies_.size() >
      kMaxBufferedResponses)
    return protocol_error("response buffer overflow (more than " +
                          std::to_string(kMaxBufferedResponses) +
                          " unclaimed responses)");
  return Pumped::kDelivered;
}

RemoteClient::Pumped RemoteClient::pump(int timeout_ms) {
  net::Frame frame;
  bool clean_eof = false;
  switch (socket_.recv_frame_deadline(frame, timeout_ms, &clean_eof)) {
    case net::Socket::RecvStatus::kFrame:
      break;
    case net::Socket::RecvStatus::kTimeout:
      return Pumped::kTimeout;
    case net::Socket::RecvStatus::kEof:
    case net::Socket::RecvStatus::kError:
      error_ = clean_eof ? "daemon closed the connection"
                         : "connection lost (corrupt frame or read error)";
      socket_ = net::Socket{};
      return Pumped::kClosed;
  }
  switch (static_cast<MsgType>(frame.type)) {
    case MsgType::kResult: {
      std::optional<ResultMsg> msg = decode_result(frame.payload);
      if (!msg) return protocol_error("malformed kResult payload");
      if (discard_ids_.erase(msg->id) != 0) return Pumped::kOther;
      if (response_buffered(msg->id))
        return protocol_error("duplicate response id " +
                              std::to_string(msg->id));
      results_.emplace(msg->id, std::move(*msg));
      return enforce_buffer_cap();
    }
    case MsgType::kError: {
      std::optional<ErrorMsg> msg = decode_error(frame.payload);
      if (!msg) return protocol_error("malformed kError payload");
      if (msg->id != 0 && discard_ids_.erase(msg->id) != 0)
        return Pumped::kOther;  // ack for a cancelled id
      if (msg->id == 0) {
        // Connection-level error: latest wins, never a duplicate.
        errors_[0] = std::move(*msg);
        return Pumped::kDelivered;
      }
      if (response_buffered(msg->id))
        return protocol_error("duplicate response id " +
                              std::to_string(msg->id));
      errors_.emplace(msg->id, std::move(*msg));
      return enforce_buffer_cap();
    }
    case MsgType::kBusy: {
      std::optional<BusyMsg> msg = decode_busy(frame.payload);
      if (!msg) return protocol_error("malformed kBusy payload");
      if (discard_ids_.erase(msg->id) != 0) return Pumped::kOther;
      if (response_buffered(msg->id))
        return protocol_error("duplicate response id " +
                              std::to_string(msg->id));
      busies_.emplace(msg->id, *msg);
      return enforce_buffer_cap();
    }
    case MsgType::kUpdate: {
      const std::optional<UpdateMsg> msg = decode_update(frame.payload);
      if (msg && on_update_) on_update_(*msg);
      return Pumped::kOther;
    }
    case MsgType::kStatsReply: {
      last_stats_ = decode_stats(frame.payload);
      return Pumped::kOther;
    }
    case MsgType::kPong:
      return Pumped::kOther;
    default:
      return Pumped::kOther;  // unknown push traffic: ignore, stay connected
  }
}

// ---- blocking calls ------------------------------------------------------

std::optional<ResultMsg> RemoteClient::await(std::uint64_t id,
                                             std::string* why) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(opts_.call_timeout_ms);
  last_status_ = CallStatus::kOk;
  for (;;) {
    if (const auto it = results_.find(id); it != results_.end()) {
      ResultMsg msg = std::move(it->second);
      results_.erase(it);
      pending_.erase(id);
      last_status_ = CallStatus::kOk;
      return msg;
    }
    if (const auto it = errors_.find(id); it != errors_.end()) {
      if (why != nullptr) *why = "daemon refused cell: " + it->second.message;
      errors_.erase(it);
      pending_.erase(id);
      last_status_ = CallStatus::kRefused;
      return std::nullopt;
    }
    if (const auto it = busies_.find(id); it != busies_.end()) {
      last_busy_retry_ms_ = it->second.retry_ms;
      if (why != nullptr)
        *why = "daemon busy (retry in " +
               std::to_string(it->second.retry_ms) + "ms)";
      busies_.erase(it);
      pending_.erase(id);  // kBusy means it was never enqueued
      last_status_ = CallStatus::kBusy;
      return std::nullopt;
    }
    // Connection-level errors (id 0) poison every pending await.
    if (const auto it = errors_.find(0); id != 0 && it != errors_.end()) {
      if (why != nullptr) *why = "daemon error: " + it->second.message;
      last_status_ = CallStatus::kRefused;
      return std::nullopt;
    }
    if (!socket_.valid() && !revive()) {
      if (why != nullptr) *why = error_;
      if (last_status_ != CallStatus::kProtocolError)
        last_status_ = CallStatus::kDisconnected;
      return std::nullopt;
    }
    const int left = remaining_ms(deadline);
    if (left <= 0) {
      error_ = "await deadline expired for request " + std::to_string(id);
      if (why != nullptr) *why = error_;
      last_status_ = CallStatus::kTimeout;
      return std::nullopt;  // connection and pending request stay intact
    }
    switch (pump(left)) {
      case Pumped::kClosed:
        if (last_status_ == CallStatus::kProtocolError) {
          // The peer broke the protocol; do not quietly reconnect over it.
          if (why != nullptr) *why = error_;
          return std::nullopt;
        }
        // Loop: the !socket_.valid() branch above revives (which also
        // resubmits the awaited request) or gives up.
        break;
      case Pumped::kTimeout:
      case Pumped::kDelivered:
      case Pumped::kOther:
        break;
    }
  }
}

std::optional<DaemonStats> RemoteClient::stats() {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(opts_.call_timeout_ms);
  last_status_ = CallStatus::kOk;
  last_stats_.reset();
  if (!socket_.valid() && !revive()) {
    last_status_ = CallStatus::kDisconnected;
    return std::nullopt;
  }
  if (!socket_.send_frame(
          net::Frame{static_cast<std::uint8_t>(MsgType::kStats), ""})) {
    error_ = "connection lost while requesting stats";
    socket_ = net::Socket{};
    last_status_ = CallStatus::kDisconnected;
    return std::nullopt;
  }
  while (!last_stats_) {
    const int left = remaining_ms(deadline);
    if (left <= 0) {
      error_ = "stats deadline expired";
      last_status_ = CallStatus::kTimeout;
      return std::nullopt;
    }
    switch (pump(left)) {
      case Pumped::kClosed:
        if (last_status_ != CallStatus::kProtocolError)
          last_status_ = CallStatus::kDisconnected;
        return std::nullopt;
      default:
        break;
    }
  }
  last_status_ = CallStatus::kOk;
  return last_stats_;
}

bool RemoteClient::shutdown_server() {
  if (!socket_.valid()) return false;
  if (!socket_.send_frame(
          net::Frame{static_cast<std::uint8_t>(MsgType::kShutdown), ""}))
    return false;
  // Drain (bounded) until the daemon closes; clean EOF acknowledges.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(opts_.call_timeout_ms);
  for (;;) {
    net::Frame frame;
    bool clean_eof = false;
    switch (socket_.recv_frame_deadline(frame, remaining_ms(deadline),
                                        &clean_eof)) {
      case net::Socket::RecvStatus::kFrame:
        continue;
      case net::Socket::RecvStatus::kTimeout:
        error_ = "daemon did not close after kShutdown within the deadline";
        socket_ = net::Socket{};
        return false;
      case net::Socket::RecvStatus::kEof:
      case net::Socket::RecvStatus::kError:
        socket_ = net::Socket{};
        return clean_eof;
    }
  }
}

}  // namespace erel::service
