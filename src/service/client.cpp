#include "service/client.hpp"

#include <utility>

namespace erel::service {

bool RemoteClient::connect(const std::string& endpoint) {
  const auto parsed = net::parse_endpoint(endpoint);
  if (!parsed) {
    error_ = "malformed endpoint '" + endpoint + "' (want host:port)";
    return false;
  }
  socket_ = net::connect_to(parsed->first, parsed->second, &error_);
  if (!socket_.valid()) return false;

  const std::optional<net::Frame> hello = socket_.recv_frame();
  if (!hello) {
    error_ = "no ereld greeting from " + endpoint;
    socket_ = net::Socket{};
    return false;
  }
  if (static_cast<MsgType>(hello->type) != MsgType::kHello) {
    error_ = "expected hello from " + endpoint + ", got " +
             std::string(msg_type_name(static_cast<MsgType>(hello->type)));
    socket_ = net::Socket{};
    return false;
  }
  const std::string expected = "ereld " + std::to_string(kProtocolVersion);
  if (hello->payload != expected) {
    error_ = "protocol mismatch: daemon says '" + hello->payload +
             "', client speaks '" + expected + "'";
    socket_ = net::Socket{};
    return false;
  }
  return true;
}

bool RemoteClient::send_cell(const CellRequest& request) {
  if (!socket_.valid()) return false;
  if (socket_.send_frame(
          net::Frame{static_cast<std::uint8_t>(MsgType::kRunCell),
                     encode_cell_request(request)}))
    return true;
  error_ = "connection lost while sending cell request";
  socket_ = net::Socket{};
  return false;
}

bool RemoteClient::subscribe(const std::string& fingerprint_hex,
                             const std::string& channel) {
  if (!socket_.valid()) return false;
  if (socket_.send_frame(
          net::Frame{static_cast<std::uint8_t>(MsgType::kSubscribe),
                     encode_subscribe(SubscribeMsg{fingerprint_hex, channel})}))
    return true;
  error_ = "connection lost while subscribing";
  socket_ = net::Socket{};
  return false;
}

RemoteClient::Pumped RemoteClient::pump() {
  bool clean_eof = false;
  const std::optional<net::Frame> frame = socket_.recv_frame(&clean_eof);
  if (!frame) {
    error_ = clean_eof ? "daemon closed the connection"
                       : "connection lost (corrupt frame or read error)";
    socket_ = net::Socket{};
    return Pumped::kClosed;
  }
  switch (static_cast<MsgType>(frame->type)) {
    case MsgType::kResult: {
      std::optional<ResultMsg> msg = decode_result(frame->payload);
      if (!msg) {
        error_ = "malformed kResult payload";
        socket_ = net::Socket{};
        return Pumped::kClosed;
      }
      results_.emplace(msg->id, std::move(*msg));
      return Pumped::kDelivered;
    }
    case MsgType::kError: {
      std::optional<ErrorMsg> msg = decode_error(frame->payload);
      if (!msg) {
        error_ = "malformed kError payload";
        socket_ = net::Socket{};
        return Pumped::kClosed;
      }
      errors_.emplace(msg->id, std::move(*msg));
      return Pumped::kDelivered;
    }
    case MsgType::kUpdate: {
      const std::optional<UpdateMsg> msg = decode_update(frame->payload);
      if (msg && on_update_) on_update_(*msg);
      return Pumped::kOther;
    }
    case MsgType::kStatsReply: {
      last_stats_ = decode_stats(frame->payload);
      return Pumped::kOther;
    }
    case MsgType::kPong:
      return Pumped::kOther;
    default:
      return Pumped::kOther;  // unknown push traffic: ignore, stay connected
  }
}

std::optional<ResultMsg> RemoteClient::await(std::uint64_t id,
                                             std::string* why) {
  for (;;) {
    if (const auto it = results_.find(id); it != results_.end()) {
      ResultMsg msg = std::move(it->second);
      results_.erase(it);
      return msg;
    }
    if (const auto it = errors_.find(id); it != errors_.end()) {
      if (why != nullptr) *why = "daemon refused cell: " + it->second.message;
      errors_.erase(it);
      return std::nullopt;
    }
    // Connection-level errors (id 0) poison every pending await.
    if (const auto it = errors_.find(0); id != 0 && it != errors_.end()) {
      if (why != nullptr) *why = "daemon error: " + it->second.message;
      return std::nullopt;
    }
    if (!socket_.valid()) {
      if (why != nullptr) *why = error_;
      return std::nullopt;
    }
    if (pump() == Pumped::kClosed) {
      if (why != nullptr) *why = error_;
      return std::nullopt;
    }
  }
}

std::optional<DaemonStats> RemoteClient::stats() {
  if (!socket_.valid()) return std::nullopt;
  last_stats_.reset();
  if (!socket_.send_frame(
          net::Frame{static_cast<std::uint8_t>(MsgType::kStats), ""})) {
    error_ = "connection lost while requesting stats";
    socket_ = net::Socket{};
    return std::nullopt;
  }
  while (!last_stats_) {
    if (pump() == Pumped::kClosed) return std::nullopt;
  }
  return last_stats_;
}

bool RemoteClient::shutdown_server() {
  if (!socket_.valid()) return false;
  if (!socket_.send_frame(
          net::Frame{static_cast<std::uint8_t>(MsgType::kShutdown), ""}))
    return false;
  // Drain until the daemon closes; a clean EOF is the acknowledgement.
  for (;;) {
    bool clean_eof = false;
    if (!socket_.recv_frame(&clean_eof)) {
      socket_ = net::Socket{};
      return clean_eof;
    }
  }
}

}  // namespace erel::service
