#include "power/rixner.hpp"

#include <cmath>

#include "common/log.hpp"

namespace erel::power {

double RixnerModel::access_time_ns(const RfGeometry& g) const {
  EREL_CHECK(g.registers > 0 && g.ports > 0 && g.word_bits > 0);
  const double bits = static_cast<double>(g.registers) * g.word_bits;
  const double ports = static_cast<double>(g.ports);
  return kDelayBase + kDelayPerPort * ports +
         kDelayArray * std::sqrt(bits * (1.0 + kDelayPortArea * ports));
}

double RixnerModel::energy_pj(const RfGeometry& g) const {
  EREL_CHECK(g.registers > 0 && g.ports > 0 && g.word_bits > 0);
  const double bits = static_cast<double>(g.registers) * g.word_bits;
  return kEnergyScale * (1.0 + kEnergyPerPort * g.ports) * bits;
}

}  // namespace erel::power
