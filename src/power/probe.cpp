#include "power/probe.hpp"

#include "sim/config.hpp"

namespace erel::power {

namespace {

constexpr std::string_view kReadsInt = "power/rf_reads/int";
constexpr std::string_view kReadsFp = "power/rf_reads/fp";
constexpr std::string_view kWritesInt = "power/rf_writes/int";
constexpr std::string_view kWritesFp = "power/rf_writes/fp";
constexpr std::string_view kLusAccesses = "power/lus_accesses";
constexpr std::string_view kWrongpathRenames = "power/wrongpath_renames";
constexpr std::string_view kWrongpathReadsInt = "power/wrongpath_rf_reads/int";
constexpr std::string_view kWrongpathReadsFp = "power/wrongpath_rf_reads/fp";
constexpr std::string_view kWrongpathWritesInt =
    "power/wrongpath_rf_writes/int";
constexpr std::string_view kWrongpathWritesFp = "power/wrongpath_rf_writes/fp";
constexpr std::string_view kWrongpathLus = "power/wrongpath_lus_accesses";

void compute(const RixnerModel& model, unsigned phys_int, unsigned phys_fp,
             std::uint64_t reads_int, std::uint64_t writes_int,
             std::uint64_t reads_fp, std::uint64_t writes_fp,
             std::uint64_t lus, std::uint64_t cycles,
             std::vector<sim::Metric>& out) {
  const double e_int = model.energy_pj(RixnerModel::int_file(phys_int));
  const double e_fp = model.energy_pj(RixnerModel::fp_file(phys_fp));
  const double e_lus = model.energy_pj(RixnerModel::lus_table());
  const double energy_nj =
      (static_cast<double>(reads_int + writes_int) * e_int +
       static_cast<double>(reads_fp + writes_fp) * e_fp +
       static_cast<double>(lus) * e_lus) /
      1000.0;
  const double t = static_cast<double>(cycles);
  out.push_back({"power/energy_nj", energy_nj});
  out.push_back({"power/ed2", energy_nj * t * t});
}

}  // namespace

void RixnerProbe::on_run_begin(const sim::SimConfig& config,
                               sim::StatRegistry& registry) {
  // A custom policy_factory is opaque; assume no LUs Table rather than
  // charging unknown machinery.
  uses_lus_table_ = !config.policy_factory &&
                    config.policy != core::PolicyKind::Conventional;
  reads_[0] = &registry.counter(kReadsInt);
  reads_[1] = &registry.counter(kReadsFp);
  writes_[0] = &registry.counter(kWritesInt);
  writes_[1] = &registry.counter(kWritesFp);
  lus_accesses_ = &registry.counter(kLusAccesses);
  wrongpath_renames_ = &registry.counter(kWrongpathRenames);
  wrongpath_reads_[0] = &registry.counter(kWrongpathReadsInt);
  wrongpath_reads_[1] = &registry.counter(kWrongpathReadsFp);
  wrongpath_writes_[0] = &registry.counter(kWrongpathWritesInt);
  wrongpath_writes_[1] = &registry.counter(kWrongpathWritesFp);
  wrongpath_lus_ = &registry.counter(kWrongpathLus);
  inflight_.clear();
}

void RixnerProbe::on_rename(const sim::RenameEvent& event) {
  // One LUs Table recording per register operand (src lookups update the
  // last-use entry; the destination write starts the new version's entry).
  const core::RenameRec& rec = *event.rec;
  Inflight f;
  f.seq = event.seq;
  if (rec.c1 != isa::RegClass::None)
    ++f.reads[static_cast<unsigned>(core::rc_from(rec.c1))];
  if (rec.c2 != isa::RegClass::None)
    ++f.reads[static_cast<unsigned>(core::rc_from(rec.c2))];
  if (rec.has_dst()) ++f.writes[static_cast<unsigned>(core::rc_from(rec.cd))];
  if (uses_lus_table_) {
    f.lus = static_cast<std::uint8_t>((rec.c1 != isa::RegClass::None) +
                                      (rec.c2 != isa::RegClass::None) +
                                      rec.has_dst());
    *lus_accesses_ += f.lus;
  }
  inflight_.push_back(f);
}

void RixnerProbe::on_commit(const sim::CommitEvent& event) {
  const core::RenameRec& rec = *event.rec;
  if (rec.c1 != isa::RegClass::None)
    ++*reads_[static_cast<unsigned>(core::rc_from(rec.c1))];
  if (rec.c2 != isa::RegClass::None)
    ++*reads_[static_cast<unsigned>(core::rc_from(rec.c2))];
  if (rec.has_dst())
    ++*writes_[static_cast<unsigned>(core::rc_from(rec.cd))];
  // Commits retire the oldest in-flight record (squashes only ever remove
  // from the young end, so the front is always this instruction).
  if (!inflight_.empty() && inflight_.front().seq == event.seq)
    inflight_.pop_front();
}

void RixnerProbe::on_squash(const sim::SquashEvent& event) {
  // Everything younger than the boundary (all of it on a full exception /
  // IRET flush, boundary == kNoSeq) was renamed — and its operands read,
  // results written, LUs entries recorded — for nothing. Fold those
  // prospective accesses into the wrong-path counters.
  while (!inflight_.empty() &&
         (event.boundary == core::kNoSeq ||
          inflight_.back().seq > event.boundary)) {
    const Inflight& f = inflight_.back();
    ++*wrongpath_renames_;
    *wrongpath_reads_[0] += f.reads[0];
    *wrongpath_reads_[1] += f.reads[1];
    *wrongpath_writes_[0] += f.writes[0];
    *wrongpath_writes_[1] += f.writes[1];
    *wrongpath_lus_ += f.lus;
    inflight_.pop_back();
  }
}

void RixnerProbe::export_metrics(const sim::SimConfig& config,
                                 const sim::StatRegistry& registry,
                                 std::vector<sim::Metric>& out) const {
  const RixnerModel model;
  compute(model, config.phys_int, config.phys_fp,
          registry.counter_value(kReadsInt),
          registry.counter_value(kWritesInt),
          registry.counter_value(kReadsFp),
          registry.counter_value(kWritesFp),
          registry.counter_value(kLusAccesses),
          registry.counter_value(sim::kStatCycles), out);
}

}  // namespace erel::power
