#include "power/storage_cost.hpp"

#include <bit>

namespace erel::power {

namespace {
unsigned ceil_log2(unsigned value) {
  unsigned bits = 0;
  while ((1u << bits) < value) ++bits;
  return bits;
}
}  // namespace

ExtendedCost extended_mechanism_cost(const ExtendedCostParams& p) {
  ExtendedCost cost;
  // PRid: the p1/p2/pd identifiers kept per ROS entry (Figure 7).
  cost.prid_bits =
      std::uint64_t{3} * p.phys_id_bits * p.ros_size;
  // RwC0 plus one RwC level per supported pending branch, 3 bits per entry.
  cost.rwc_bits =
      std::uint64_t{3} * p.ros_size * (p.max_pending_branches + 1);
  // One decoded bit-vector over all physical registers per pending branch.
  cost.rwns_bits =
      std::uint64_t{p.total_phys_regs} * p.max_pending_branches;
  // LUs Tables: ROSid + Kind (2 bits) + C (1 bit) per logical register.
  const unsigned rosid_bits = ceil_log2(p.ros_size);
  cost.lus_bits = std::uint64_t{p.num_classes} * p.logical_regs *
                  (rosid_bits + 2 + 1);
  return cost;
}

}  // namespace erel::power
