// power::RixnerProbe — the first built-in consumer of the Instrumentation
// API v2 (sim/probe.hpp): an event-driven register-file energy model on top
// of power::RixnerModel.
//
// The probe counts register-file accesses from commit events (per-class
// operand reads and destination writes, the access mix the paper's §4.4
// balance uses) plus Last-Uses-Table traffic for the basic/extended
// mechanisms (source + destination recordings per renamed instruction),
// multiplies by the per-access energies of the configured file geometries,
// and exports:
//
//   power/energy_nj   total register-file (+LUsT) energy, nanojoules
//   power/ed2         energy_nj * cycles^2 (the ED^2 figure of merit; time
//                     in cycles — relative comparisons only)
//
// Raw access counts land in the run's StatRegistry under power/rf_reads/*,
// power/rf_writes/* and power/lus_accesses.
//
// Counting at commit undercounts wrong-path accesses (squashed work reads
// and writes too); this matches the paper's committed-work accounting and
// keeps the counts deterministic under sampling.
#pragma once

#include "power/rixner.hpp"
#include "sim/probe.hpp"

namespace erel::power {

class RixnerProbe final : public sim::Probe {
 public:
  void on_run_begin(const sim::SimConfig& config,
                    sim::StatRegistry& registry) override;
  void on_rename(const sim::RenameEvent& event) override;
  void on_commit(const sim::CommitEvent& event) override;

  /// Pure function of (config, registry): works over a live core's
  /// registry and over the merged measurement registry of a sampled run
  /// alike (sampled metrics cover the measured windows, unscaled).
  void export_metrics(const sim::SimConfig& config,
                      const sim::StatRegistry& registry,
                      std::vector<sim::Metric>& out) const override;

 private:
  bool uses_lus_table_ = false;
  sim::StatRegistry::Counter* reads_[2] = {};
  sim::StatRegistry::Counter* writes_[2] = {};
  sim::StatRegistry::Counter* lus_accesses_ = nullptr;
};

}  // namespace erel::power
