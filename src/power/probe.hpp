// power::RixnerProbe — the first built-in consumer of the Instrumentation
// API v2 (sim/probe.hpp): an event-driven register-file energy model on top
// of power::RixnerModel.
//
// The probe counts register-file accesses from commit events (per-class
// operand reads and destination writes, the access mix the paper's §4.4
// balance uses) plus Last-Uses-Table traffic for the basic/extended
// mechanisms (source + destination recordings per renamed instruction),
// multiplies by the per-access energies of the configured file geometries,
// and exports:
//
//   power/energy_nj   total register-file (+LUsT) energy, nanojoules
//   power/ed2         energy_nj * cycles^2 (the ED^2 figure of merit; time
//                     in cycles — relative comparisons only)
//
// Raw access counts land in the run's StatRegistry under power/rf_reads/*,
// power/rf_writes/* and power/lus_accesses.
//
// The headline counters cover committed work only — the paper's accounting,
// and deterministic under sampling. Wrong-path traffic (squashed
// instructions renamed, read and written too, and interrupt delivery / IRET
// flushes add plenty of it) is tracked separately: every renamed
// instruction's prospective accesses are held in flight until it either
// commits (merged into the headline counters) or is squashed, in which case
// they accumulate under:
//
//   power/wrongpath_renames          squashed renamed instructions
//   power/wrongpath_rf_reads/{int,fp}   their operand reads
//   power/wrongpath_rf_writes/{int,fp}  their destination writes
//   power/wrongpath_lus_accesses     their LUs Table recordings
//
// The wrong-path counters never feed energy_nj/ed2; they exist to expose
// how much squashed register traffic each policy and flush source induces.
#pragma once

#include <deque>

#include "power/rixner.hpp"
#include "sim/probe.hpp"

namespace erel::power {

class RixnerProbe final : public sim::Probe {
 public:
  void on_run_begin(const sim::SimConfig& config,
                    sim::StatRegistry& registry) override;
  void on_rename(const sim::RenameEvent& event) override;
  void on_commit(const sim::CommitEvent& event) override;
  void on_squash(const sim::SquashEvent& event) override;

  /// Pure function of (config, registry): works over a live core's
  /// registry and over the merged measurement registry of a sampled run
  /// alike (sampled metrics cover the measured windows, unscaled).
  void export_metrics(const sim::SimConfig& config,
                      const sim::StatRegistry& registry,
                      std::vector<sim::Metric>& out) const override;

 private:
  /// Prospective accesses of one renamed, not-yet-retired instruction
  /// (captured at rename; the event's rec pointer dies with the ROS entry).
  struct Inflight {
    core::InstSeq seq = 0;
    std::uint8_t reads[2] = {};   // operand reads per class
    std::uint8_t writes[2] = {};  // destination write per class
    std::uint8_t lus = 0;         // LUs Table recordings
  };

  bool uses_lus_table_ = false;
  sim::StatRegistry::Counter* reads_[2] = {};
  sim::StatRegistry::Counter* writes_[2] = {};
  sim::StatRegistry::Counter* lus_accesses_ = nullptr;
  sim::StatRegistry::Counter* wrongpath_renames_ = nullptr;
  sim::StatRegistry::Counter* wrongpath_reads_[2] = {};
  sim::StatRegistry::Counter* wrongpath_writes_[2] = {};
  sim::StatRegistry::Counter* wrongpath_lus_ = nullptr;
  std::deque<Inflight> inflight_;  // rename order: pop front on commit,
                                   // pop back on squash
};

}  // namespace erel::power
