// Analytic register-file delay/energy model in the style of Rixner et al.,
// "Register Organization for Media Processing" (HPCA-6), for a 0.18 um
// process — the model the paper uses for Figure 9 and the §4.4 cost
// analysis.
//
// Functional form (see EXPERIMENTS.md for the calibration):
//   access time  t(P,T,w) = a + b*T + c*sqrt(P*w*(1 + d*T))   [ns]
//   energy       E(P,T,w) = e*(1 + f*T)*P*w                   [pJ/access]
// where P = registers, T = total ports, w = word bits. Constants are
// calibrated to the paper's anchors: the LUs Table (32 entries, 56 ports,
// 9 bits) at 0.98 ns / 193.2 pJ, the 40-entry integer file 26% slower than
// the LUs Table, and the §4.4 energy-balance comparison.
#pragma once

namespace erel::power {

struct RfGeometry {
  unsigned registers = 0;
  unsigned ports = 0;
  unsigned word_bits = 0;
};

class RixnerModel {
 public:
  /// Access time in nanoseconds.
  [[nodiscard]] double access_time_ns(const RfGeometry& g) const;

  /// Energy per access in picojoules.
  [[nodiscard]] double energy_pj(const RfGeometry& g) const;

  // Geometry presets used throughout the paper's evaluation (§4.4: Tint=44,
  // Tfp=50 for the 8-way processor; LUs Table 32x9b with 32R+24W ports).
  [[nodiscard]] static RfGeometry int_file(unsigned registers) {
    return {registers, 44, 64};
  }
  [[nodiscard]] static RfGeometry fp_file(unsigned registers) {
    return {registers, 50, 64};
  }
  [[nodiscard]] static RfGeometry lus_table() { return {32, 56, 9}; }

 private:
  // Delay constants (ns-domain).
  static constexpr double kDelayBase = 0.2;
  static constexpr double kDelayPerPort = 0.009151;
  static constexpr double kDelayArray = 0.006136;
  static constexpr double kDelayPortArea = 0.1;
  // Energy constants (pJ-domain).
  static constexpr double kEnergyScale = 0.2071;
  static constexpr double kEnergyPerPort = 0.04;
};

}  // namespace erel::power
