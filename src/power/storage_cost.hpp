// Storage-cost calculator for the extended mechanism (§4.4): reproduces the
// paper's Alpha 21264 example ("about 1.22 KBytes ... the int+fp LUs Tables
// will further add around 128B").
#pragma once

#include <cstdint>

namespace erel::power {

struct ExtendedCostParams {
  unsigned ros_size = 80;             // paper example: Alpha 21264
  unsigned phys_id_bits = 8;
  unsigned total_phys_regs = 152;     // 80 int + 72 fp
  unsigned max_pending_branches = 20;
  unsigned logical_regs = 32;
  unsigned num_classes = 2;           // int + fp LUs Tables
};

struct ExtendedCost {
  std::uint64_t prid_bits = 0;    // 3 physical ids per ROS entry
  std::uint64_t rwc_bits = 0;     // RwC0..RwCmax: 3 bits x ROS x (B+1)
  std::uint64_t rwns_bits = 0;    // RwNS1..RwNSmax: P bits x B
  std::uint64_t lus_bits = 0;     // LUs Tables: ROSid + Kind(2) + C(1)
  [[nodiscard]] std::uint64_t relque_total_bits() const {
    return prid_bits + rwc_bits + rwns_bits;
  }
  [[nodiscard]] double relque_kbytes() const {
    return static_cast<double>(relque_total_bits()) / 8.0 / 1024.0;
  }
  [[nodiscard]] double lus_bytes() const {
    return static_cast<double>(lus_bits) / 8.0;
  }
};

ExtendedCost extended_mechanism_cost(const ExtendedCostParams& params);

}  // namespace erel::power
