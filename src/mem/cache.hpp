// Set-associative cache with true-LRU replacement and write-back /
// write-allocate policy. Purely a timing/occupancy model: data always lives
// in SparseMemory; the cache tracks tags so the hierarchy can assign
// latencies (matching sim-outorder's cache model granularity).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace erel::mem {

struct CacheConfig {
  std::string name = "cache";
  std::uint64_t size_bytes = 32 * 1024;
  unsigned associativity = 2;
  unsigned line_bytes = 64;
  unsigned hit_latency = 1;
};

struct CacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t misses = 0;
  std::uint64_t writebacks = 0;

  [[nodiscard]] double miss_rate() const {
    return accesses == 0 ? 0.0 : static_cast<double>(misses) / accesses;
  }
};

class Cache {
 public:
  explicit Cache(const CacheConfig& config);

  /// Probes and updates the cache for one access. Returns true on hit. On a
  /// miss the line is filled (victim writeback counted if dirty).
  bool access(std::uint64_t addr, bool is_write);

  /// Probe without side effects (used by tests).
  [[nodiscard]] bool contains(std::uint64_t addr) const;

  [[nodiscard]] const CacheConfig& config() const { return config_; }
  [[nodiscard]] const CacheStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

 private:
  struct Way {
    std::uint64_t tag = 0;
    bool valid = false;
    bool dirty = false;
    std::uint64_t lru = 0;  // larger == more recently used
  };

  // Line size and set count are powers of two (checked at construction), so
  // the per-access index/tag math is a shift+mask — no divisions on the hot
  // path (every warmed instruction and pipeline memory access lands here).
  [[nodiscard]] std::uint64_t set_index(std::uint64_t addr) const {
    return (addr >> line_shift_) & set_mask_;
  }
  [[nodiscard]] std::uint64_t tag_of(std::uint64_t addr) const {
    return addr >> tag_shift_;
  }

  CacheConfig config_;
  CacheStats stats_;
  std::vector<Way> ways_;  // sets_ * associativity entries, set-contiguous
  std::uint64_t sets_ = 0;
  unsigned line_shift_ = 0;  // log2(line_bytes)
  unsigned tag_shift_ = 0;   // log2(line_bytes * sets)
  std::uint64_t set_mask_ = 0;  // sets - 1
  std::uint64_t lru_clock_ = 0;
};

}  // namespace erel::mem
