#include "mem/hierarchy.hpp"

namespace erel::mem {

MemoryHierarchy::MemoryHierarchy(const HierarchyConfig& config)
    : l1i_(config.l1i),
      l1d_(config.l1d),
      l2_(config.l2),
      memory_latency_(config.memory_latency) {}

unsigned MemoryHierarchy::ifetch(std::uint64_t addr) {
  unsigned latency = l1i_.config().hit_latency;
  if (!l1i_.access(addr, /*is_write=*/false)) {
    latency += l2_.config().hit_latency;
    if (!l2_.access(addr, /*is_write=*/false)) latency += memory_latency_;
  }
  return latency;
}

unsigned MemoryHierarchy::data_access(std::uint64_t addr, bool is_write) {
  unsigned latency = l1d_.config().hit_latency;
  if (!l1d_.access(addr, is_write)) {
    latency += l2_.config().hit_latency;
    // The L2 fill is a read regardless of the triggering access type; the
    // dirty bit lives in L1 under write-back/write-allocate.
    if (!l2_.access(addr, /*is_write=*/false)) latency += memory_latency_;
  }
  return latency;
}

unsigned MemoryHierarchy::dload(std::uint64_t addr) {
  return data_access(addr, /*is_write=*/false);
}

unsigned MemoryHierarchy::dstore(std::uint64_t addr) {
  return data_access(addr, /*is_write=*/true);
}

}  // namespace erel::mem
