// Three-level memory hierarchy matching the paper's Table 2:
//   L1 I-cache : 32 KB, 2-way, 32 B lines, 1-cycle hit
//   L1 D-cache : 32 KB, 2-way, 64 B lines, 1-cycle hit
//   L2 unified : 1 MB, 2-way, 64 B lines, 12-cycle hit
//   Memory     : unbounded, 50-cycle access
//
// The hierarchy is a latency model: each access returns the number of cycles
// until data is available. Caches are non-blocking with unbounded MSHRs
// (bandwidth is limited by the pipeline's four load/store units); writebacks
// are counted but charged no latency, as in sim-outorder's default model.
#pragma once

#include <cstdint>

#include "mem/cache.hpp"

namespace erel::mem {

struct HierarchyConfig {
  CacheConfig l1i{"L1I", 32 * 1024, 2, 32, 1};
  CacheConfig l1d{"L1D", 32 * 1024, 2, 64, 1};
  CacheConfig l2{"L2", 1024 * 1024, 2, 64, 12};
  unsigned memory_latency = 50;
};

class MemoryHierarchy {
 public:
  explicit MemoryHierarchy(const HierarchyConfig& config);

  /// Latency of an instruction fetch touching `addr`.
  unsigned ifetch(std::uint64_t addr);

  /// Latency of a data load / store touching `addr`.
  unsigned dload(std::uint64_t addr);
  unsigned dstore(std::uint64_t addr);

  [[nodiscard]] const Cache& l1i() const { return l1i_; }
  [[nodiscard]] const Cache& l1d() const { return l1d_; }
  [[nodiscard]] const Cache& l2() const { return l2_; }

  /// Zeroes all cache counters, keeping contents. Used when a pre-warmed
  /// hierarchy is handed to a measured run (sampled simulation): the tags
  /// carry over, the warming accesses must not pollute the window's stats.
  void reset_stats() {
    l1i_.reset_stats();
    l1d_.reset_stats();
    l2_.reset_stats();
  }

 private:
  unsigned data_access(std::uint64_t addr, bool is_write);

  Cache l1i_;
  Cache l1d_;
  Cache l2_;
  unsigned memory_latency_;
};

}  // namespace erel::mem
