#include "mem/cache.hpp"

#include "common/bits.hpp"
#include "common/log.hpp"

namespace erel::mem {

Cache::Cache(const CacheConfig& config) : config_(config) {
  EREL_CHECK(is_pow2(config.line_bytes), "line size must be a power of two");
  EREL_CHECK(config.associativity > 0);
  EREL_CHECK(config.size_bytes % (config.line_bytes * config.associativity) == 0,
             "cache geometry does not divide evenly");
  sets_ = config.size_bytes / (config.line_bytes * config.associativity);
  EREL_CHECK(is_pow2(sets_), "set count must be a power of two");
  line_shift_ = log2_exact(config.line_bytes);
  tag_shift_ = line_shift_ + log2_exact(sets_);
  set_mask_ = sets_ - 1;
  ways_.resize(sets_ * config.associativity);
}

bool Cache::contains(std::uint64_t addr) const {
  const std::uint64_t tag = tag_of(addr);
  const Way* set_ways = ways_.data() + set_index(addr) * config_.associativity;
  for (unsigned w = 0; w < config_.associativity; ++w) {
    if (set_ways[w].valid && set_ways[w].tag == tag) return true;
  }
  return false;
}

bool Cache::access(std::uint64_t addr, bool is_write) {
  ++stats_.accesses;
  const std::uint64_t tag = tag_of(addr);
  // The set's ways are contiguous: one base-pointer computation, then the
  // probe and victim scans walk a cache-line-friendly stretch.
  Way* const set_ways =
      ways_.data() + set_index(addr) * config_.associativity;
  for (unsigned w = 0; w < config_.associativity; ++w) {
    Way& way = set_ways[w];
    if (way.valid && way.tag == tag) {
      way.lru = ++lru_clock_;
      way.dirty = way.dirty || is_write;
      return true;
    }
  }
  ++stats_.misses;
  // Miss: pick an invalid way if any, else the least recently used.
  Way* victim = nullptr;
  for (unsigned w = 0; w < config_.associativity; ++w) {
    Way& way = set_ways[w];
    if (!way.valid) {
      victim = &way;
      break;
    }
    if (victim == nullptr || way.lru < victim->lru) victim = &way;
  }
  EREL_CHECK(victim != nullptr);
  if (victim->valid && victim->dirty) ++stats_.writebacks;
  victim->valid = true;
  victim->tag = tag;
  victim->dirty = is_write;
  victim->lru = ++lru_clock_;
  return false;
}

}  // namespace erel::mem
