#include "mem/cache.hpp"

#include "common/bits.hpp"
#include "common/log.hpp"

namespace erel::mem {

Cache::Cache(const CacheConfig& config) : config_(config) {
  EREL_CHECK(is_pow2(config.line_bytes), "line size must be a power of two");
  EREL_CHECK(config.associativity > 0);
  EREL_CHECK(config.size_bytes % (config.line_bytes * config.associativity) == 0,
             "cache geometry does not divide evenly");
  sets_ = config.size_bytes / (config.line_bytes * config.associativity);
  EREL_CHECK(is_pow2(sets_), "set count must be a power of two");
  ways_.resize(sets_ * config.associativity);
}

std::uint64_t Cache::set_index(std::uint64_t addr) const {
  return (addr / config_.line_bytes) & (sets_ - 1);
}

std::uint64_t Cache::tag_of(std::uint64_t addr) const {
  return addr / config_.line_bytes / sets_;
}

bool Cache::contains(std::uint64_t addr) const {
  const std::uint64_t set = set_index(addr);
  const std::uint64_t tag = tag_of(addr);
  for (unsigned w = 0; w < config_.associativity; ++w) {
    const Way& way = ways_[set * config_.associativity + w];
    if (way.valid && way.tag == tag) return true;
  }
  return false;
}

bool Cache::access(std::uint64_t addr, bool is_write) {
  ++stats_.accesses;
  const std::uint64_t set = set_index(addr);
  const std::uint64_t tag = tag_of(addr);
  for (unsigned w = 0; w < config_.associativity; ++w) {
    Way& way = ways_[set * config_.associativity + w];
    if (way.valid && way.tag == tag) {
      way.lru = ++lru_clock_;
      way.dirty = way.dirty || is_write;
      return true;
    }
  }
  ++stats_.misses;
  // Miss: pick an invalid way if any, else the least recently used.
  Way* victim = nullptr;
  for (unsigned w = 0; w < config_.associativity; ++w) {
    Way& way = ways_[set * config_.associativity + w];
    if (!way.valid) {
      victim = &way;
      break;
    }
    if (victim == nullptr || way.lru < victim->lru) victim = &way;
  }
  EREL_CHECK(victim != nullptr);
  if (victim->valid && victim->dirty) ++stats_.writebacks;
  victim->valid = true;
  victim->tag = tag;
  victim->dirty = is_write;
  victim->lru = ++lru_clock_;
  return false;
}

}  // namespace erel::mem
