#include "harness/results.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>

#include "common/log.hpp"

namespace erel::harness {

namespace {

std::string render_u64(std::uint64_t v) { return std::to_string(v); }

std::string render_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

// ---------------------------------------------------------------------------
// Exhaustive field visitors. `Stats` is (const) SimStats / SampledStats, so
// the same enumeration serves serialization (const ref) and parsing
// (mutable ref); a field added to the structs without a line here fails the
// round-trip test rather than silently dropping data.
// ---------------------------------------------------------------------------

template <class Stats, class Fn>
void sim_stats_fields(Stats& s, Fn&& f, const std::string& p) {
  f(p + "cycles", s.cycles);
  f(p + "committed", s.committed);
  f(p + "halted", s.halted);
  f(p + "branches.cond_branches", s.branches.cond_branches);
  f(p + "branches.cond_mispredicts", s.branches.cond_mispredicts);
  f(p + "branches.indirect_jumps", s.branches.indirect_jumps);
  f(p + "branches.indirect_mispredicts", s.branches.indirect_mispredicts);
  f(p + "stalls.ros_full", s.stalls.ros_full);
  f(p + "stalls.lsq_full", s.stalls.lsq_full);
  f(p + "stalls.checkpoints_full", s.stalls.checkpoints_full);
  f(p + "stalls.free_list_empty", s.stalls.free_list_empty);
  f(p + "flushes_injected", s.flushes_injected);
  f(p + "icache_stall_cycles", s.icache_stall_cycles);
  for (int c = 0; c < 2; ++c) {
    const std::string pc = p + (c == 0 ? "int." : "fp.");
    auto& ps = s.policy_stats[c];
    f(pc + "conventional_releases", ps.conventional_releases);
    f(pc + "early_commit_releases", ps.early_commit_releases);
    f(pc + "immediate_releases", ps.immediate_releases);
    f(pc + "reuses", ps.reuses);
    f(pc + "branch_confirm_releases", ps.branch_confirm_releases);
    f(pc + "conditional_schedulings", ps.conditional_schedulings);
    f(pc + "fallback_conventional", ps.fallback_conventional);
    f(pc + "stale_suppressed", ps.stale_suppressed);
    auto& occ = s.occupancy[c];
    f(pc + "avg_empty", occ.avg_empty);
    f(pc + "avg_ready", occ.avg_ready);
    f(pc + "avg_idle", occ.avg_idle);
    f(pc + "squash_released", s.squash_released[c]);
  }
  const auto cache = [&](const char* name, auto& cs) {
    const std::string pcache = p + name;
    f(pcache + ".accesses", cs.accesses);
    f(pcache + ".misses", cs.misses);
    f(pcache + ".writebacks", cs.writebacks);
  };
  cache("l1i", s.l1i);
  cache("l1d", s.l1d);
  cache("l2", s.l2);
}

template <class Stats, class Fn>
void sampled_moment_fields(Stats& s, Fn&& f) {
  f("sampled.cpi_mean", s.cpi_mean);
  f("sampled.cpi_stddev", s.cpi_stddev);
  f("sampled.cpi_stderr", s.cpi_stderr);
  f("sampled.ipc_mean", s.ipc_mean);
  f("sampled.ipc_stddev", s.ipc_stddev);
  f("sampled.ipc_stderr", s.ipc_stderr);
  f("sampled.ipc_ci95", s.ipc_ci95);
  f("sampled.total_instructions", s.total_instructions);
  f("sampled.measured_instructions", s.measured_instructions);
  f("sampled.detailed_instructions", s.detailed_instructions);
  f("sampled.units_planned", s.units_planned);
  f("sampled.degenerate_windows", s.degenerate_windows);
}

/// Serializing visitor: appends "name value" lines.
struct FieldWriter {
  std::string& out;
  void operator()(const std::string& name, const std::uint64_t& v) const {
    out += name + ' ' + render_u64(v) + '\n';
  }
  void operator()(const std::string& name, const bool& v) const {
    out += name + (v ? " 1\n" : " 0\n");
  }
  void operator()(const std::string& name, const double& v) const {
    out += name + ' ' + render_double(v) + '\n';
  }
};

/// Parsing visitor: assigns from a name->text map; records failures.
struct FieldReader {
  const std::map<std::string, std::string, std::less<>>& fields;
  bool ok = true;

  const std::string* get(const std::string& name) {
    const auto it = fields.find(name);
    if (it == fields.end()) {
      ok = false;
      return nullptr;
    }
    return &it->second;
  }
  // Values must parse completely: a bit-flipped "1x1857" or a truncated
  // token is a rejected entry (cache miss), never a silently-wrong number.
  void operator()(const std::string& name, std::uint64_t& v) {
    if (const std::string* s = get(name)) {
      char* end = nullptr;
      errno = 0;
      const unsigned long long parsed = std::strtoull(s->c_str(), &end, 10);
      if (s->empty() || end != s->c_str() + s->size() || errno == ERANGE) {
        ok = false;
        return;
      }
      v = parsed;
    }
  }
  void operator()(const std::string& name, bool& v) {
    if (const std::string* s = get(name)) {
      if (*s != "0" && *s != "1") {
        ok = false;
        return;
      }
      v = (*s == "1");
    }
  }
  void operator()(const std::string& name, double& v) {
    if (const std::string* s = get(name)) {
      char* end = nullptr;
      const double parsed = std::strtod(s->c_str(), &end);
      if (s->empty() || end != s->c_str() + s->size()) {
        ok = false;
        return;
      }
      v = parsed;
    }
  }
};

void csv_field(std::string& out, const std::string& value) {
  if (value.find_first_of(",\"\n") == std::string::npos) {
    out += value;
    return;
  }
  out += '"';
  for (const char c : value) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  return render_double(v);
}

void write_file_or_die(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  EREL_CHECK(out.good(), "cannot open '", path, "' for writing");
  out << content;
  out.flush();
  EREL_CHECK(out.good(), "short write to '", path, "'");
}

}  // namespace

std::string ExpKey::to_string() const {
  std::string s = workload;
  s += '/';
  s += policy_name(policy);
  s += '/';
  s += std::to_string(phys);
  if (!variant.empty()) {
    s += '/';
    s += variant;
  }
  return s;
}

std::optional<double> ExpEntry::metric(std::string_view name) const {
  for (const sim::Metric& m : metrics)
    if (m.name == name) return m.value;
  return std::nullopt;
}

void ResultSet::add(ExpEntry entry) {
  EREL_CHECK(!contains(entry.key), "duplicate experiment cell ",
             entry.key.to_string());
  entries_.push_back(std::move(entry));
}

const ExpEntry* ResultSet::find(const ExpKey& key) const {
  for (const ExpEntry& e : entries_)
    if (e.key == key) return &e;
  return nullptr;
}

bool ResultSet::contains(const ExpKey& key) const {
  return find(key) != nullptr;
}

const ExpEntry& ResultSet::at(const ExpKey& key) const {
  const ExpEntry* e = find(key);
  if (!e) EREL_FATAL("no result for cell ", key.to_string());
  return *e;
}

const sim::SimStats& ResultSet::stats(const ExpKey& key) const {
  return at(key).stats;
}

double ResultSet::ipc(const ExpKey& key) const { return at(key).stats.ipc(); }

namespace {
template <class T, class Proj>
std::vector<T> unique_in_order(const std::vector<ExpEntry>& entries,
                               Proj&& proj) {
  std::vector<T> out;
  for (const ExpEntry& e : entries) {
    const T v = proj(e);
    bool seen = false;
    for (const T& u : out) seen = seen || u == v;
    if (!seen) out.push_back(v);
  }
  return out;
}
}  // namespace

std::vector<std::string> ResultSet::workloads() const {
  return unique_in_order<std::string>(
      entries_, [](const ExpEntry& e) { return e.key.workload; });
}

std::vector<core::PolicyKind> ResultSet::policies() const {
  return unique_in_order<core::PolicyKind>(
      entries_, [](const ExpEntry& e) { return e.key.policy; });
}

std::vector<unsigned> ResultSet::phys_sizes() const {
  return unique_in_order<unsigned>(
      entries_, [](const ExpEntry& e) { return e.key.phys; });
}

std::vector<std::string> ResultSet::variants() const {
  return unique_in_order<std::string>(
      entries_, [](const ExpEntry& e) { return e.key.variant; });
}

std::vector<std::string> ResultSet::metric_names() const {
  std::vector<std::string> names;
  for (const ExpEntry& e : entries_) {
    for (const sim::Metric& m : e.metrics) {
      bool seen = false;
      for (const std::string& n : names) seen = seen || n == m.name;
      if (!seen) names.push_back(m.name);
    }
  }
  return names;
}

double ResultSet::hmean_ipc(const std::vector<std::string>& names,
                            core::PolicyKind policy, unsigned phys,
                            const std::string& variant) const {
  if (names.empty()) return 0.0;
  double inv_sum = 0.0;
  for (const std::string& w : names) {
    const double ipc = at({w, policy, phys, variant}).stats.ipc();
    if (ipc <= 0.0) return 0.0;  // harmonic-mean limit (harness::harmonic_mean)
    inv_sum += 1.0 / ipc;
  }
  return static_cast<double>(names.size()) / inv_sum;
}

double ResultSet::hmean_ipc_ci95(const std::vector<std::string>& names,
                                 core::PolicyKind policy, unsigned phys,
                                 const std::string& variant) const {
  const double h = hmean_ipc(names, policy, phys, variant);
  if (h <= 0.0 || names.empty()) return 0.0;
  const double n = static_cast<double>(names.size());
  double var = 0.0;
  for (const std::string& w : names) {
    const ExpEntry& e = at({w, policy, phys, variant});
    const double ipc = e.stats.ipc();
    const double ci = e.ipc_ci95();
    if (ci <= 0.0 || ipc <= 0.0) continue;  // exact cell: no contribution
    const double d = (h * h) / (n * ipc * ipc) * ci;
    var += d * d;
  }
  return std::sqrt(var);
}

double ResultSet::speedup_vs(const std::vector<std::string>& names,
                             core::PolicyKind policy,
                             core::PolicyKind baseline, unsigned phys,
                             const std::string& variant) const {
  const double base = hmean_ipc(names, baseline, phys, variant);
  const double val = hmean_ipc(names, policy, phys, variant);
  if (base <= 0.0 || val <= 0.0)
    return std::numeric_limits<double>::quiet_NaN();
  return val / base - 1.0;
}

std::size_t ResultSet::cache_hits() const {
  std::size_t hits = 0;
  for (const ExpEntry& e : entries_) hits += e.from_cache ? 1 : 0;
  return hits;
}

void ResultSet::write_csv(const std::string& path) const {
  std::string out =
      "workload,policy,phys,variant,kind,cached,committed,cycles,ipc,"
      "ipc_ci95,cond_accuracy,l1d_miss_rate,freelist_stalls";
  // Open named-metric columns (Instrumentation API v2): the union of probe
  // metrics across cells, first-seen order; cells without a metric leave
  // the field empty.
  const std::vector<std::string> metric_cols = metric_names();
  for (const std::string& name : metric_cols) {
    out += ',';
    csv_field(out, name);
  }
  out += '\n';
  for (const ExpEntry& e : entries_) {
    csv_field(out, e.key.workload);
    out += ',';
    out += policy_name(e.key.policy);
    out += ',';
    out += std::to_string(e.key.phys);
    out += ',';
    csv_field(out, e.key.variant);
    out += ',';
    out += e.sampled ? "sampled" : "full";
    out += ',';
    out += e.from_cache ? '1' : '0';
    out += ',';
    out += render_u64(e.stats.committed);
    out += ',';
    out += render_u64(e.stats.cycles);
    out += ',';
    out += render_double(e.stats.ipc());
    out += ',';
    out += render_double(e.ipc_ci95());
    out += ',';
    out += render_double(e.stats.branches.cond_accuracy());
    out += ',';
    out += render_double(e.stats.l1d.miss_rate());
    out += ',';
    out += render_u64(e.stats.stalls.free_list_empty);
    for (const std::string& name : metric_cols) {
      out += ',';
      if (const std::optional<double> v = e.metric(name))
        out += render_double(*v);
    }
    out += '\n';
  }
  write_file_or_die(path, out);
}

void ResultSet::write_json(const std::string& path) const {
  std::string out = "{\n  \"schema\": \"erel-resultset-v1\",\n  \"cells\": [";
  bool first_cell = true;
  for (const ExpEntry& e : entries_) {
    out += first_cell ? "\n" : ",\n";
    first_cell = false;
    out += "    {\n";
    out += "      \"workload\": \"" + json_escape(e.key.workload) + "\",\n";
    out += "      \"policy\": \"" + std::string(policy_name(e.key.policy)) +
           "\",\n";
    out += "      \"phys\": " + std::to_string(e.key.phys) + ",\n";
    out += "      \"variant\": \"" + json_escape(e.key.variant) + "\",\n";
    out += std::string("      \"kind\": ") +
           (e.sampled ? "\"sampled\"" : "\"full\"") + ",\n";
    out += std::string("      \"from_cache\": ") +
           (e.from_cache ? "true" : "false") + ",\n";
    out += "      \"ipc\": " + json_number(e.stats.ipc()) + ",\n";
    out += "      \"ipc_ci95\": " + json_number(e.ipc_ci95()) + ",\n";
    out += "      \"stats\": {";
    bool first = true;
    const auto emit = [&out, &first](const std::string& name, const auto& v) {
      out += first ? "\n" : ",\n";
      first = false;
      out += "        \"" + name + "\": ";
      using T = std::decay_t<decltype(v)>;
      if constexpr (std::is_same_v<T, bool>) {
        out += v ? "true" : "false";
      } else if constexpr (std::is_same_v<T, double>) {
        out += json_number(v);
      } else {
        out += render_u64(v);
      }
    };
    sim_stats_fields(e.stats, emit, "");
    out += "\n      }";
    if (!e.metrics.empty()) {
      out += ",\n      \"metrics\": {";
      bool first_metric = true;
      for (const sim::Metric& m : e.metrics) {
        out += first_metric ? "\n" : ",\n";
        first_metric = false;
        out += "        \"" + json_escape(m.name) +
               "\": " + json_number(m.value);
      }
      out += "\n      }";
    }
    if (e.sampled) {
      const sim::SampledStats& s = *e.sampled;
      out += ",\n      \"sampled\": {";
      first = true;
      sim_stats_fields(s.estimate, emit, "estimate.");
      sim_stats_fields(s.measured, emit, "measured.");
      sampled_moment_fields(s, [&emit](const std::string& name, const auto& v) {
        // Strip the "sampled." prefix: these live inside the object already.
        emit(name.substr(8), v);
      });
      out += ",\n        \"samples\": [";
      for (std::size_t i = 0; i < s.samples.size(); ++i) {
        if (i) out += ", ";
        out += '[' + render_u64(s.samples[i].start_instruction) + ", " +
               render_u64(s.samples[i].instructions) + ", " +
               render_u64(s.samples[i].cycles) + ']';
      }
      out += "]\n      }";
    }
    out += "\n    }";
  }
  out += "\n  ]\n}\n";
  write_file_or_die(path, out);
}

// ---------------------------------------------------------------------------
// Cache-entry serialization.
// ---------------------------------------------------------------------------

std::string serialize_entry(const ExpEntry& entry, std::string_view fp_hex) {
  std::string out = "erel-result v1\n";
  out += "fingerprint ";
  out += fp_hex;
  out += '\n';
  out += "key.workload " + entry.key.workload + '\n';
  out += "key.policy " + std::string(policy_name(entry.key.policy)) + '\n';
  out += "key.phys " + std::to_string(entry.key.phys) + '\n';
  out += "key.variant " + entry.key.variant + '\n';
  out += entry.sampled ? "kind sampled\n" : "kind full\n";
  FieldWriter writer{out};
  sim_stats_fields(entry.stats, writer, "stats.");
  if (entry.sampled) {
    const sim::SampledStats& s = *entry.sampled;
    sim_stats_fields(s.estimate, writer, "sampled.estimate.");
    sim_stats_fields(s.measured, writer, "sampled.measured.");
    sampled_moment_fields(s, writer);
    out += "samples " + std::to_string(s.samples.size()) + '\n';
    for (const sim::SampleRecord& r : s.samples) {
      out += "s " + render_u64(r.start_instruction) + ' ' +
             render_u64(r.instructions) + ' ' + render_u64(r.cycles) + '\n';
    }
  }
  for (const sim::Metric& m : entry.metrics) {
    EREL_CHECK(!m.name.empty() &&
                   m.name.find_first_of(" \n") == std::string::npos,
               "metric name '", m.name, "' is not serializable");
    out += "metric." + m.name + ' ' + render_double(m.value) + '\n';
  }
  out += "end\n";
  return out;
}

std::optional<ExpEntry> parse_entry(std::string_view text,
                                    std::string_view expect_fp_hex,
                                    const ExpKey& expect_key) {
  std::map<std::string, std::string, std::less<>> fields;
  std::vector<sim::SampleRecord> samples;
  std::vector<sim::Metric> metrics;
  std::uint64_t declared_samples = 0;
  bool have_header = false, have_end = false, sampled = false;
  ExpKey key;
  std::string fp_hex;

  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    const std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    const std::size_t sp = line.find(' ');
    const std::string_view name = line.substr(0, sp);
    const std::string_view value =
        sp == std::string_view::npos ? std::string_view{} : line.substr(sp + 1);

    if (!have_header) {
      if (name != "erel-result" || value != "v1") return std::nullopt;
      have_header = true;
    } else if (name == "fingerprint") {
      fp_hex = value;
    } else if (name == "key.workload") {
      key.workload = value;
    } else if (name == "key.policy") {
      if (value != "conv" && value != "basic" && value != "extended")
        return std::nullopt;
      key.policy = core::parse_policy(value);
    } else if (name == "key.phys") {
      key.phys = static_cast<unsigned>(
          std::strtoul(std::string(value).c_str(), nullptr, 10));
    } else if (name == "key.variant") {
      key.variant = value;
    } else if (name == "kind") {
      if (value != "full" && value != "sampled") return std::nullopt;
      sampled = (value == "sampled");
    } else if (name == "samples") {
      declared_samples =
          std::strtoull(std::string(value).c_str(), nullptr, 10);
    } else if (name == "s") {
      unsigned long long start = 0, instructions = 0, cycles = 0;
      if (std::sscanf(std::string(value).c_str(), "%llu %llu %llu", &start,
                      &instructions, &cycles) != 3)
        return std::nullopt;
      samples.push_back(sim::SampleRecord{start, instructions, cycles});
    } else if (name == "end") {
      have_end = true;
    } else if (name.starts_with("metric.")) {
      // Open probe metrics: names are free-form, values strict doubles.
      const std::string text(value);
      char* end = nullptr;
      const double parsed = std::strtod(text.c_str(), &end);
      if (name.size() <= 7 || text.empty() ||
          end != text.c_str() + text.size())
        return std::nullopt;
      metrics.push_back(sim::Metric{std::string(name.substr(7)), parsed});
    } else if (name.starts_with("stats.") || name.starts_with("sampled.")) {
      fields.emplace(std::string(name), std::string(value));
    } else {
      return std::nullopt;  // unknown line: newer format or corruption
    }
  }

  if (!have_header || !have_end) return std::nullopt;
  if (fp_hex != expect_fp_hex) return std::nullopt;
  // Equal fingerprints imply identical results (the hash covers the
  // workload's content and every config field) but not identical variant
  // labels: different vary() labelings can mutate a config into the same
  // values, and the entry must serve all of them instead of thrashing.
  // Everything the hash does pin must agree, though — a mismatch there is
  // corruption or a hash collision, never a legitimate alias.
  if (key.workload != expect_key.workload ||
      key.policy != expect_key.policy || key.phys != expect_key.phys)
    return std::nullopt;
  if (sampled && samples.size() != declared_samples) return std::nullopt;

  ExpEntry entry;
  entry.key = expect_key;
  entry.from_cache = true;
  entry.metrics = std::move(metrics);
  FieldReader reader{fields};
  sim_stats_fields(entry.stats, reader, "stats.");
  if (sampled) {
    sim::SampledStats s;
    sim_stats_fields(s.estimate, reader, "sampled.estimate.");
    sim_stats_fields(s.measured, reader, "sampled.measured.");
    sampled_moment_fields(s, reader);
    s.samples = std::move(samples);
    entry.sampled = std::move(s);
  }
  if (!reader.ok) return std::nullopt;
  return entry;
}

}  // namespace erel::harness
