// Declarative experiment builder: the sweep API behind every bench binary.
//
// An Experiment composes axes over a base SimConfig and materializes the
// cross-product into structurally-keyed cells, so a sweep's results are
// addressed by (workload, policy, phys, variant) instead of by replaying
// the construction loop a second time:
//
//   harness::ResultSet rs = harness::Experiment()
//       .workloads(workloads::workload_names())
//       .policies(core::all_policies())
//       .phys_regs(harness::register_sweep_sizes())
//       .run({.threads = 0, .cache_dir = "results-cache"});
//   double hm = rs.hmean_ipc(fp_names, core::PolicyKind::Extended, 48);
//
// Axes:
//   .workloads()  registry kernels or "trace:<path>" replays (required)
//   .policies()   release policies; defaults to the base config's policy
//   .phys_regs()  symmetric register-file sizes (phys_int = phys_fp = p);
//                 defaults to the base config's sizes
//   .vary()       arbitrary labeled SimConfig mutators; multiple vary()
//                 calls cross-multiply and their labels join into the
//                 key's `variant` string as "axis=label[,axis=label...]"
//   .sampling()   run every cell under checkpointed interval sampling
//                 (sim::SampledSimulator) instead of full detail
//
// Materialization order is deterministic and documented: workloads
// outermost, then policies, then phys sizes, then vary() axes in
// declaration order (innermost last). Tests pin this order.
//
// When RunOptions::cache_dir is set, each cell is fingerprinted
// (harness/fingerprint.hpp) and looked up in the directory before
// simulating; only missing cells run, and fresh results are written back
// atomically (tmp file + rename), so interrupted or repeated sweeps resume
// instead of recomputing. Cells that cannot be fingerprinted (user
// callbacks in the config) are transparently re-run every time.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "harness/harness.hpp"
#include "harness/remote.hpp"
#include "harness/results.hpp"

namespace erel::harness {

struct RunOptions {
  /// Harness pool workers (one simulation per worker); 0 = hardware.
  unsigned threads = 0;

  /// Result-cache directory; "" disables caching. Created on demand.
  std::string cache_dir;

  /// "host:port" of an experiment daemon (ereld, src/service/). When set,
  /// fingerprintable cells that miss the local cache are shipped to the
  /// daemon instead of the local pool; returned entries are bit-identical
  /// to local simulation (validated with the cache parser) and are written
  /// into cache_dir verbatim. An unreachable daemon or a refused cell
  /// degrades to local simulation with a warning, never an abort.
  std::string server;

  /// Deadline + retry shape for the `server` path (ignored otherwise):
  /// retryable failures (deadline timeout, kBusy admission refusal, torn
  /// connection) are re-dispatched with capped backoff up to
  /// `remote.retries` extra attempts per cell; fatal ones (version
  /// mismatch, refused cell, protocol violation) degrade immediately.
  RemoteOptions remote;
};

class Experiment {
 public:
  using Mutator = std::function<void(sim::SimConfig&)>;
  struct AxisPoint {
    std::string label;
    Mutator apply;
  };

  /// One materialized cell: the structured key plus the ready-to-run spec
  /// (config fully mutated, sampling attached, tag = key.to_string()).
  struct Cell {
    ExpKey key;
    RunSpec spec;
  };

  /// Base config defaults to Table 2 with oracle checking off (the same
  /// baseline as harness::experiment_config).
  Experiment();

  Experiment& base(sim::SimConfig config);
  Experiment& workloads(std::vector<std::string> names);
  Experiment& policies(std::vector<core::PolicyKind> kinds);
  Experiment& phys_regs(std::vector<unsigned> sizes);
  Experiment& vary(std::string axis, std::vector<AxisPoint> points);
  Experiment& sampling(sim::SamplingConfig config);

  /// Attaches a named probe to every cell (Instrumentation API v2). The
  /// factory builds a fresh instance per simulation; exported metrics
  /// become open named columns of the ResultSet (CSV/JSON sinks, cache
  /// entries). The name joins the cell fingerprint, so cached cells only
  /// serve runs declaring the same probe set.
  Experiment& probe(std::string name,
                    std::function<std::unique_ptr<sim::Probe>()> make);

  /// Expands the cross-product. Aborts when no workloads were given or an
  /// axis is empty (an accidentally-empty sweep is a bug, not a no-op).
  [[nodiscard]] std::vector<Cell> materialize() const;

  /// Materializes, serves cache hits, simulates the rest in parallel, and
  /// writes fresh results back to the cache. Entries keep materialization
  /// order.
  [[nodiscard]] ResultSet run(const RunOptions& opts = {}) const;

 private:
  struct Axis {
    std::string name;
    std::vector<AxisPoint> points;
  };

  sim::SimConfig base_;
  std::vector<std::string> workloads_;
  std::vector<core::PolicyKind> policies_;
  std::vector<unsigned> phys_;
  std::vector<Axis> axes_;
  std::optional<sim::SamplingConfig> sampling_;
  std::vector<sim::ProbeSpec> probes_;
};

}  // namespace erel::harness
