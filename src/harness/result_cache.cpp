#include "harness/result_cache.hpp"

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/log.hpp"

namespace erel::harness {

std::string cache_entry_path(const std::string& dir, std::string_view fp_hex) {
  std::string path = dir;
  path += '/';
  path += fp_hex;
  path += ".erelres";
  return path;
}

std::optional<ExpEntry> load_cache_entry(const std::string& path,
                                         std::string_view fp_hex,
                                         const ExpKey& key) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::optional<ExpEntry> entry = parse_entry(buffer.str(), fp_hex, key);
  if (!entry)
    EREL_WARN("ignoring cache entry ", path,
              " (malformed, stale, or from a different cell; treated as a "
              "miss for ", key.to_string(), ")");
  return entry;
}

std::optional<std::string> load_cache_entry_text(const std::string& path,
                                                 std::string_view fp_hex,
                                                 const ExpKey& key) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string text = buffer.str();
  if (!parse_entry(text, fp_hex, key)) {
    EREL_WARN("ignoring cache entry ", path,
              " (malformed, stale, or from a different cell; treated as a "
              "miss for ", key.to_string(), ")");
    return std::nullopt;
  }
  return text;
}

void save_cache_entry(const std::string& path, const std::string& content) {
  // The pid distinguishes processes, the counter distinguishes threads
  // within one process (daemon workers materializing different cells — or
  // even the same cell — concurrently). Without the counter, two in-process
  // writers would share one tmp path and could interleave writes before the
  // rename, publishing a corrupt entry.
  static std::atomic<std::uint64_t> seq{0};
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid())) + "." +
      std::to_string(seq.fetch_add(1, std::memory_order_relaxed));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      EREL_WARN("cannot write cache entry ", tmp);
      return;
    }
    out << content;
    out.flush();
    if (!out) {
      EREL_WARN("short write to cache entry ", tmp);
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      return;
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    EREL_WARN("cannot publish cache entry ", path, ": ", ec.message());
    std::filesystem::remove(tmp, ec);
  }
}

}  // namespace erel::harness
