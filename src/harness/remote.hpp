// harness::RemoteBackend — routes experiment cells through an
// ExperimentDaemon (src/service/) instead of the local thread pool.
//
// The backend is deliberately dumb: Experiment::run still owns cell
// materialization, fingerprinting, the local cache check and the fallback
// policy; RemoteBackend only translates (key, spec, fingerprint) into wire
// requests and wire responses back into validated ExpEntry values. Every
// failure — unreachable daemon, refused cell, malformed reply — is a
// nullopt/false with the reason in error()/the `why` out-param, never an
// abort: a dead daemon must degrade a sweep to local simulation, not kill
// it.
//
// Failure classification (v2): after a failed await() the caller asks
// last_failure_retryable(). Deadline timeouts, kBusy admission refusals and
// torn connections are retryable — re-dispatching the same cell is safe
// because requests are content-addressed (the daemon serves a cache hit or
// joins the in-flight run, never simulates twice). Version mismatches,
// refused cells and protocol violations are fatal for the daemon path and
// go straight to local simulation.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "harness/harness.hpp"
#include "harness/results.hpp"

namespace erel::service {
class RemoteClient;
}

namespace erel::harness {

/// Deadline and retry tuning for the daemon path of a sweep. The defaults
/// suit a loopback daemon; sweeps over a real network raise the deadlines.
struct RemoteOptions {
  unsigned connect_timeout_ms = 5'000;
  /// Deadline for one await of one cell's result (covers transparent
  /// reconnects the client performs inside the call).
  unsigned call_timeout_ms = 120'000;
  /// Re-dispatch attempts per cell after the first, spent only on
  /// retryable failures (timeout / kBusy / torn connection) before the
  /// cell degrades to local simulation.
  unsigned retries = 3;
  /// Backoff between re-dispatches: base doubled per attempt, capped.
  /// A kBusy retry hint from the daemon overrides a shorter backoff.
  unsigned backoff_base_ms = 50;
  unsigned backoff_cap_ms = 1'000;
  /// Seed for the client's reconnect-backoff jitter (deterministic so
  /// tests replay exactly).
  std::uint64_t jitter_seed = 0;
};

class RemoteBackend {
 public:
  /// `endpoint` is "host:port". Does not connect yet.
  explicit RemoteBackend(std::string endpoint, const RemoteOptions& opts = {});
  ~RemoteBackend();

  RemoteBackend(const RemoteBackend&) = delete;
  RemoteBackend& operator=(const RemoteBackend&) = delete;

  /// Connects and validates the protocol greeting. False (with error())
  /// when the daemon is unreachable or speaks a different version.
  [[nodiscard]] bool connect();

  [[nodiscard]] const std::string& error() const { return error_; }

  /// Ships one cell on a fresh wire id (unique per backend lifetime, so a
  /// retried cell never collides with the id of an abandoned attempt).
  /// Returns the wire id to await on, or nullopt on connection loss.
  /// The spec must be fingerprintable — the caller already computed
  /// `fp_hex` from it.
  [[nodiscard]] std::optional<std::uint64_t> dispatch(
      const ExpKey& key, const RunSpec& spec, const std::string& fp_hex);

  /// Blocks for the response to `wire_id` (bounded by the call deadline).
  /// The returned entry is re-validated against (fp_hex, key) with the same
  /// parser the disk cache uses; `raw_text` (optional) receives the
  /// daemon's verbatim `.erelres` text so the caller can populate its
  /// local cache byte-identically. nullopt (reason in `why`) means the
  /// attempt failed — consult last_failure_retryable() before falling back
  /// to local simulation.
  [[nodiscard]] std::optional<ExpEntry> await(std::uint64_t wire_id,
                                              const ExpKey& key,
                                              const std::string& fp_hex,
                                              std::string* raw_text,
                                              std::string* why);

  /// True when the last failed await() is worth re-dispatching (deadline
  /// timeout, kBusy, torn connection); false for fatal refusals (version
  /// mismatch, refused cell, protocol violation, validation failure).
  [[nodiscard]] bool last_failure_retryable() const { return retryable_; }

  /// The daemon's suggested wait from the last kBusy refusal (ms), 0
  /// otherwise.
  [[nodiscard]] std::uint64_t retry_hint_ms() const;

  /// Withdraws an outstanding request before re-dispatching it: tells the
  /// daemon (kCancel, when still connected) and drops client-side state
  /// for the id, so a late result for the old attempt is discarded instead
  /// of clashing with the retry.
  void abandon(std::uint64_t wire_id);

  /// Tears the connection down before a retry when the failure pattern
  /// suggests the connection itself is sick (an await deadline with no
  /// kBusy hint: the daemon either never saw the request or its reply is
  /// stuck in a half-dead pipe). The next dispatch revives the connection
  /// and resubmission is safe by content addressing. Without this, a
  /// blackholed connection makes every remaining cell burn its full retry
  /// budget on the same dead socket.
  void reset_connection();

  /// Successful transparent reconnects the client performed (observability).
  [[nodiscard]] std::uint64_t reconnects() const;

 private:
  std::string endpoint_;
  std::string error_;
  bool retryable_ = false;
  std::uint64_t next_id_ = 1;
  std::unique_ptr<service::RemoteClient> client_;
};

}  // namespace erel::harness
