// harness::RemoteBackend — routes experiment cells through an
// ExperimentDaemon (src/service/) instead of the local thread pool.
//
// The backend is deliberately dumb: Experiment::run still owns cell
// materialization, fingerprinting, the local cache check and the fallback
// policy; RemoteBackend only translates (key, spec, fingerprint) into wire
// requests and wire responses back into validated ExpEntry values. Every
// failure — unreachable daemon, refused cell, malformed reply — is a
// nullopt/false with the reason in error()/the `why` out-param, never an
// abort: a dead daemon must degrade a sweep to local simulation, not kill
// it.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "harness/harness.hpp"
#include "harness/results.hpp"

namespace erel::service {
class RemoteClient;
}

namespace erel::harness {

class RemoteBackend {
 public:
  /// `endpoint` is "host:port". Does not connect yet.
  explicit RemoteBackend(std::string endpoint);
  ~RemoteBackend();

  RemoteBackend(const RemoteBackend&) = delete;
  RemoteBackend& operator=(const RemoteBackend&) = delete;

  /// Connects and validates the protocol greeting. False (with error())
  /// when the daemon is unreachable or speaks a different version.
  [[nodiscard]] bool connect();

  [[nodiscard]] const std::string& error() const { return error_; }

  /// Ships one cell; `id` is the caller's correlation index (echoed by the
  /// daemon). The spec must be fingerprintable — the caller already
  /// computed `fp_hex` from it. False on connection loss.
  [[nodiscard]] bool dispatch(std::uint64_t id, const ExpKey& key,
                              const RunSpec& spec, const std::string& fp_hex);

  /// Blocks for the response to `id`. The returned entry is re-validated
  /// against (fp_hex, key) with the same parser the disk cache uses;
  /// `raw_text` (optional) receives the daemon's verbatim `.erelres` text
  /// so the caller can populate its local cache byte-identically. nullopt
  /// (reason in `why`) means: fall back to local simulation for this cell.
  [[nodiscard]] std::optional<ExpEntry> await(std::uint64_t id,
                                              const ExpKey& key,
                                              const std::string& fp_hex,
                                              std::string* raw_text,
                                              std::string* why);

 private:
  std::string endpoint_;
  std::string error_;
  std::unique_ptr<service::RemoteClient> client_;
};

}  // namespace erel::harness
