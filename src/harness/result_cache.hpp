// On-disk result-cache IO shared by Experiment::run (harness/experiment.cpp)
// and the experiment daemon (src/service/): one <fingerprint-hex>.erelres
// text file per cell (format: harness/results.hpp), published atomically so
// concurrent writers — other processes, daemon worker threads — can race on
// the same fingerprint without readers ever seeing a torn entry.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "harness/results.hpp"

namespace erel::harness {

/// "<dir>/<fp_hex>.erelres".
[[nodiscard]] std::string cache_entry_path(const std::string& dir,
                                           std::string_view fp_hex);

/// Loads and validates one cache file. Returns nullopt (with a warning) on
/// a missing, malformed, truncated or mismatching entry — always a cache
/// miss, never a wrong result.
[[nodiscard]] std::optional<ExpEntry> load_cache_entry(const std::string& path,
                                                       std::string_view fp_hex,
                                                       const ExpKey& key);

/// Same validation, but returns the file's verbatim text instead of the
/// parsed entry — what the experiment daemon forwards on the wire, so a
/// daemon-served cell is byte-identical to the on-disk entry.
[[nodiscard]] std::optional<std::string> load_cache_entry_text(
    const std::string& path, std::string_view fp_hex, const ExpKey& key);

/// Atomically publishes `content` at `path` via a tmp file + rename. The
/// tmp name is unique per writer — pid *and* a process-wide counter — so
/// two processes or two threads materializing the same cell can never
/// clobber each other's tmp file mid-write; identical fingerprints imply
/// identical contents, so whichever rename lands last is correct. IO
/// failures warn and leave the cache unpopulated (the entry is recomputed
/// next time) rather than aborting a finished sweep.
void save_cache_entry(const std::string& path, const std::string& content);

}  // namespace erel::harness
