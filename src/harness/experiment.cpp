#include "harness/experiment.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <thread>
#include <utility>

#include "common/log.hpp"
#include "harness/fingerprint.hpp"
#include "harness/remote.hpp"
#include "harness/result_cache.hpp"

namespace erel::harness {

Experiment::Experiment() { base_.check_oracle = false; }

Experiment& Experiment::base(sim::SimConfig config) {
  base_ = std::move(config);
  return *this;
}

Experiment& Experiment::workloads(std::vector<std::string> names) {
  workloads_ = std::move(names);
  return *this;
}

Experiment& Experiment::policies(std::vector<core::PolicyKind> kinds) {
  policies_ = std::move(kinds);
  return *this;
}

Experiment& Experiment::phys_regs(std::vector<unsigned> sizes) {
  phys_ = std::move(sizes);
  return *this;
}

Experiment& Experiment::vary(std::string axis, std::vector<AxisPoint> points) {
  EREL_CHECK(!points.empty(), "vary axis '", axis, "' has no points");
  axes_.push_back(Axis{std::move(axis), std::move(points)});
  return *this;
}

Experiment& Experiment::sampling(sim::SamplingConfig config) {
  sampling_ = config;
  return *this;
}

Experiment& Experiment::probe(
    std::string name, std::function<std::unique_ptr<sim::Probe>()> make) {
  EREL_CHECK(!name.empty() && name.find(' ') == std::string::npos &&
                 name.find('\n') == std::string::npos,
             "probe names must be non-empty and whitespace-free");
  EREL_CHECK(static_cast<bool>(make), "probe '", name, "' has no factory");
  for (const sim::ProbeSpec& p : probes_)
    EREL_CHECK(p.name != name, "duplicate probe '", name, "'");
  probes_.push_back(sim::ProbeSpec{std::move(name), std::move(make)});
  return *this;
}

std::vector<Experiment::Cell> Experiment::materialize() const {
  EREL_CHECK(!workloads_.empty(), "experiment has no workloads");
  const std::vector<core::PolicyKind> policies =
      policies_.empty() ? std::vector<core::PolicyKind>{base_.policy}
                        : policies_;
  // An empty phys axis keeps the base config's (possibly asymmetric) sizes;
  // the key then records phys_int as the nominal coordinate.
  const bool sweep_phys = !phys_.empty();
  const std::vector<unsigned> sizes =
      sweep_phys ? phys_ : std::vector<unsigned>{base_.phys_int};

  // Cross-multiply the vary() axes into (variant label, combined mutator)
  // pairs, declaration order, last axis fastest.
  struct Variant {
    std::string label;
    std::vector<const AxisPoint*> points;
  };
  std::vector<Variant> variants{{std::string(), {}}};
  for (const Axis& axis : axes_) {
    std::vector<Variant> next;
    next.reserve(variants.size() * axis.points.size());
    for (const Variant& v : variants) {
      for (const AxisPoint& point : axis.points) {
        Variant combined = v;
        if (!combined.label.empty()) combined.label += ',';
        combined.label += axis.name + '=' + point.label;
        combined.points.push_back(&point);
        next.push_back(std::move(combined));
      }
    }
    variants = std::move(next);
  }

  std::vector<Cell> cells;
  cells.reserve(workloads_.size() * policies.size() * sizes.size() *
                variants.size());
  for (const std::string& workload : workloads_) {
    for (const core::PolicyKind policy : policies) {
      for (const unsigned phys : sizes) {
        for (const Variant& variant : variants) {
          sim::SimConfig config = base_;
          config.policy = policy;
          if (sweep_phys) {
            config.phys_int = phys;
            config.phys_fp = phys;
          }
          for (const AxisPoint* point : variant.points)
            point->apply(config);
          Cell cell;
          cell.key = ExpKey{workload, policy, phys, variant.label};
          cell.spec = RunSpec{workload, std::move(config),
                              cell.key.to_string(), sampling_, probes_};
          cells.push_back(std::move(cell));
        }
      }
    }
  }
  return cells;
}

ResultSet Experiment::run(const RunOptions& opts) const {
  const std::vector<Cell> cells = materialize();
  const bool use_cache = !opts.cache_dir.empty();
  const bool use_server = !opts.server.empty();
  if (use_cache) {
    std::error_code ec;
    std::filesystem::create_directories(opts.cache_dir, ec);
    EREL_CHECK(!ec, "cannot create cache dir '", opts.cache_dir, "': ",
               ec.message());
  }

  std::vector<std::string> probe_names;
  probe_names.reserve(probes_.size());
  for (const sim::ProbeSpec& p : probes_) probe_names.push_back(p.name);

  std::vector<std::optional<ExpEntry>> ready(cells.size());
  std::vector<std::string> cache_path(cells.size());
  std::vector<std::string> fp_hex(cells.size());
  std::vector<std::size_t> pending;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& cell = cells[i];
    if ((use_cache || use_server) &&
        fingerprintable(cell.spec.workload, cell.spec.config)) {
      fp_hex[i] = fingerprint_cell(cell.spec.workload, cell.spec.config,
                                   cell.spec.sampling, probe_names)
                      .hex();
      if (use_cache) {
        cache_path[i] = cache_entry_path(opts.cache_dir, fp_hex[i]);
        ready[i] = load_cache_entry(cache_path[i], fp_hex[i], cell.key);
        if (ready[i]) continue;
      }
    }
    pending.push_back(i);
  }

  // Server routing: ship every fingerprintable miss to the daemon and fold
  // its replies into `ready`; anything the daemon cannot serve — including
  // all of them, when it is unreachable — falls through to the local pool.
  if (use_server && !pending.empty()) {
    RemoteBackend remote(opts.server, opts.remote);
    if (!remote.connect()) {
      EREL_WARN("experiment server ", opts.server, " unreachable (",
                remote.error(), "); simulating ", pending.size(),
                " cell(s) locally");
    } else {
      std::vector<std::size_t> local;
      struct Dispatched {
        std::size_t cell = 0;
        std::uint64_t wire_id = 0;
      };
      std::vector<Dispatched> dispatched;
      bool connection_ok = true;
      for (const std::size_t i : pending) {
        if (fp_hex[i].empty() || !connection_ok) {
          local.push_back(i);
          continue;
        }
        if (const std::optional<std::uint64_t> wire =
                remote.dispatch(cells[i].key, cells[i].spec, fp_hex[i])) {
          dispatched.push_back({i, *wire});
        } else {
          EREL_WARN("experiment server ", opts.server, " lost (",
                    remote.error(), "); simulating the rest locally");
          connection_ok = false;
          local.push_back(i);
        }
      }
      // Await failures are summarized once per sweep (like the
      // connect-failure path above): a dying daemon would otherwise emit
      // one warning per outstanding cell, which for a large sweep is
      // hundreds of identical lines.
      std::size_t await_failures = 0;
      std::string first_why;
      for (const Dispatched& d : dispatched) {
        const std::size_t i = d.cell;
        std::uint64_t wire = d.wire_id;
        std::optional<ExpEntry> entry;
        std::string raw_text;
        std::string why;
        for (unsigned attempt = 0;; ++attempt) {
          entry = remote.await(wire, cells[i].key, fp_hex[i], &raw_text, &why);
          if (entry || !remote.last_failure_retryable() ||
              attempt >= opts.remote.retries)
            break;
          // Withdraw the stale attempt (a timed-out request may still be
          // queued server-side), wait out the backoff — or the daemon's
          // kBusy hint, when longer — and re-dispatch under a fresh wire
          // id. Content addressing makes the resubmission idempotent: the
          // daemon serves a cache hit or joins the in-flight run, never
          // simulates the cell twice.
          remote.abandon(wire);
          const std::uint64_t hint = remote.retry_hint_ms();
          // A kBusy refusal means the connection is healthy — the daemon
          // answered. Anything else retryable (await deadline, torn
          // connection) marks the connection suspect: tear it down so the
          // re-dispatch revives a fresh one instead of burning every
          // remaining cell's budget on a half-dead (blackholed) socket.
          if (hint == 0) remote.reset_connection();
          const std::uint64_t backoff = std::min<std::uint64_t>(
              static_cast<std::uint64_t>(opts.remote.backoff_base_ms)
                  << std::min(attempt, 20u),
              opts.remote.backoff_cap_ms);
          const std::uint64_t wait = std::max(backoff, hint);
          if (wait > 0)
            std::this_thread::sleep_for(std::chrono::milliseconds(wait));
          const std::optional<std::uint64_t> rewire =
              remote.dispatch(cells[i].key, cells[i].spec, fp_hex[i]);
          if (!rewire) {
            why = remote.error();
            break;
          }
          wire = *rewire;
        }
        if (!entry) {
          if (await_failures == 0) first_why = why;
          ++await_failures;
          local.push_back(i);
          continue;
        }
        if (!cache_path[i].empty())
          save_cache_entry(cache_path[i], raw_text);
        ready[i] = std::move(entry);
      }
      if (await_failures > 0) {
        EREL_WARN(await_failures, " of ", dispatched.size(),
                  " dispatched cell(s) not served by ", opts.server,
                  " (first failure: ", first_why,
                  "); simulating them locally");
      }
      pending = std::move(local);
      std::sort(pending.begin(), pending.end());
    }
  }

  if (!pending.empty()) {
    std::vector<RunSpec> specs;
    specs.reserve(pending.size());
    for (const std::size_t i : pending) specs.push_back(cells[i].spec);
    const std::vector<RunResult> results = run_all(specs, opts.threads);
    for (std::size_t j = 0; j < pending.size(); ++j) {
      const std::size_t i = pending[j];
      ExpEntry entry{cells[i].key, results[j].stats, results[j].sampled,
                     results[j].metrics, /*from_cache=*/false};
      if (!cache_path[i].empty())
        save_cache_entry(cache_path[i], serialize_entry(entry, fp_hex[i]));
      ready[i] = std::move(entry);
    }
  }

  ResultSet rs;
  for (std::optional<ExpEntry>& entry : ready) rs.add(std::move(*entry));
  return rs;
}

}  // namespace erel::harness
