#include "harness/experiment.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <unistd.h>
#include <utility>

#include "common/log.hpp"
#include "harness/fingerprint.hpp"

namespace erel::harness {

Experiment::Experiment() { base_.check_oracle = false; }

Experiment& Experiment::base(sim::SimConfig config) {
  base_ = std::move(config);
  return *this;
}

Experiment& Experiment::workloads(std::vector<std::string> names) {
  workloads_ = std::move(names);
  return *this;
}

Experiment& Experiment::policies(std::vector<core::PolicyKind> kinds) {
  policies_ = std::move(kinds);
  return *this;
}

Experiment& Experiment::phys_regs(std::vector<unsigned> sizes) {
  phys_ = std::move(sizes);
  return *this;
}

Experiment& Experiment::vary(std::string axis, std::vector<AxisPoint> points) {
  EREL_CHECK(!points.empty(), "vary axis '", axis, "' has no points");
  axes_.push_back(Axis{std::move(axis), std::move(points)});
  return *this;
}

Experiment& Experiment::sampling(sim::SamplingConfig config) {
  sampling_ = config;
  return *this;
}

Experiment& Experiment::probe(
    std::string name, std::function<std::unique_ptr<sim::Probe>()> make) {
  EREL_CHECK(!name.empty() && name.find(' ') == std::string::npos &&
                 name.find('\n') == std::string::npos,
             "probe names must be non-empty and whitespace-free");
  EREL_CHECK(static_cast<bool>(make), "probe '", name, "' has no factory");
  for (const sim::ProbeSpec& p : probes_)
    EREL_CHECK(p.name != name, "duplicate probe '", name, "'");
  probes_.push_back(sim::ProbeSpec{std::move(name), std::move(make)});
  return *this;
}

std::vector<Experiment::Cell> Experiment::materialize() const {
  EREL_CHECK(!workloads_.empty(), "experiment has no workloads");
  const std::vector<core::PolicyKind> policies =
      policies_.empty() ? std::vector<core::PolicyKind>{base_.policy}
                        : policies_;
  // An empty phys axis keeps the base config's (possibly asymmetric) sizes;
  // the key then records phys_int as the nominal coordinate.
  const bool sweep_phys = !phys_.empty();
  const std::vector<unsigned> sizes =
      sweep_phys ? phys_ : std::vector<unsigned>{base_.phys_int};

  // Cross-multiply the vary() axes into (variant label, combined mutator)
  // pairs, declaration order, last axis fastest.
  struct Variant {
    std::string label;
    std::vector<const AxisPoint*> points;
  };
  std::vector<Variant> variants{{std::string(), {}}};
  for (const Axis& axis : axes_) {
    std::vector<Variant> next;
    next.reserve(variants.size() * axis.points.size());
    for (const Variant& v : variants) {
      for (const AxisPoint& point : axis.points) {
        Variant combined = v;
        if (!combined.label.empty()) combined.label += ',';
        combined.label += axis.name + '=' + point.label;
        combined.points.push_back(&point);
        next.push_back(std::move(combined));
      }
    }
    variants = std::move(next);
  }

  std::vector<Cell> cells;
  cells.reserve(workloads_.size() * policies.size() * sizes.size() *
                variants.size());
  for (const std::string& workload : workloads_) {
    for (const core::PolicyKind policy : policies) {
      for (const unsigned phys : sizes) {
        for (const Variant& variant : variants) {
          sim::SimConfig config = base_;
          config.policy = policy;
          if (sweep_phys) {
            config.phys_int = phys;
            config.phys_fp = phys;
          }
          for (const AxisPoint* point : variant.points)
            point->apply(config);
          Cell cell;
          cell.key = ExpKey{workload, policy, phys, variant.label};
          cell.spec = RunSpec{workload, std::move(config),
                              cell.key.to_string(), sampling_, probes_};
          cells.push_back(std::move(cell));
        }
      }
    }
  }
  return cells;
}

namespace {

std::optional<ExpEntry> load_cache_file(const std::string& path,
                                        std::string_view fp_hex,
                                        const ExpKey& key) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::optional<ExpEntry> entry = parse_entry(buffer.str(), fp_hex, key);
  if (!entry)
    EREL_WARN("ignoring cache entry ", path,
              " (malformed, stale, or from a different cell; treated as a "
              "miss for ", key.to_string(), ")");
  return entry;
}

void save_cache_file(const std::string& path, const std::string& content) {
  // Atomic publish: concurrent sweeps may race on the same fingerprint, but
  // rename() ensures readers only ever see complete entries (and identical
  // fingerprints imply identical contents, so last-writer-wins is fine).
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      EREL_WARN("cannot write cache entry ", tmp);
      return;
    }
    out << content;
    out.flush();
    if (!out) {
      EREL_WARN("short write to cache entry ", tmp);
      return;
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) EREL_WARN("cannot publish cache entry ", path, ": ", ec.message());
}

}  // namespace

ResultSet Experiment::run(const RunOptions& opts) const {
  const std::vector<Cell> cells = materialize();
  const bool use_cache = !opts.cache_dir.empty();
  if (use_cache) {
    std::error_code ec;
    std::filesystem::create_directories(opts.cache_dir, ec);
    EREL_CHECK(!ec, "cannot create cache dir '", opts.cache_dir, "': ",
               ec.message());
  }

  std::vector<std::string> probe_names;
  probe_names.reserve(probes_.size());
  for (const sim::ProbeSpec& p : probes_) probe_names.push_back(p.name);

  std::vector<std::optional<ExpEntry>> ready(cells.size());
  std::vector<std::string> cache_path(cells.size());
  std::vector<std::string> fp_hex(cells.size());
  std::vector<std::size_t> pending;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& cell = cells[i];
    if (use_cache && fingerprintable(cell.spec.workload, cell.spec.config)) {
      fp_hex[i] = fingerprint_cell(cell.spec.workload, cell.spec.config,
                                   cell.spec.sampling, probe_names)
                      .hex();
      cache_path[i] = opts.cache_dir + "/" + fp_hex[i] + ".erelres";
      ready[i] = load_cache_file(cache_path[i], fp_hex[i], cell.key);
      if (ready[i]) continue;
    }
    pending.push_back(i);
  }

  if (!pending.empty()) {
    std::vector<RunSpec> specs;
    specs.reserve(pending.size());
    for (const std::size_t i : pending) specs.push_back(cells[i].spec);
    const std::vector<RunResult> results = run_all(specs, opts.threads);
    for (std::size_t j = 0; j < pending.size(); ++j) {
      const std::size_t i = pending[j];
      ExpEntry entry{cells[i].key, results[j].stats, results[j].sampled,
                     results[j].metrics, /*from_cache=*/false};
      if (!cache_path[i].empty())
        save_cache_file(cache_path[i], serialize_entry(entry, fp_hex[i]));
      ready[i] = std::move(entry);
    }
  }

  ResultSet rs;
  for (std::optional<ExpEntry>& entry : ready) rs.add(std::move(*entry));
  return rs;
}

}  // namespace erel::harness
