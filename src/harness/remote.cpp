#include "harness/remote.hpp"

#include <utility>

#include "service/client.hpp"

namespace erel::harness {

RemoteBackend::RemoteBackend(std::string endpoint)
    : endpoint_(std::move(endpoint)),
      client_(std::make_unique<service::RemoteClient>()) {}

RemoteBackend::~RemoteBackend() = default;

bool RemoteBackend::connect() {
  if (client_->connect(endpoint_)) return true;
  error_ = client_->error();
  return false;
}

bool RemoteBackend::dispatch(std::uint64_t id, const ExpKey& key,
                             const RunSpec& spec, const std::string& fp_hex) {
  service::CellRequest request;
  request.id = id;
  request.key = key;
  request.workload = spec.workload;
  request.fingerprint_hex = fp_hex;
  request.config = spec.config;
  request.sampling = spec.sampling;
  for (const sim::ProbeSpec& probe : spec.probes)
    request.probe_names.push_back(probe.name);
  request.stat_stride = spec.config.stat_stride;
  if (client_->send_cell(request)) return true;
  error_ = client_->error();
  return false;
}

std::optional<ExpEntry> RemoteBackend::await(std::uint64_t id,
                                             const ExpKey& key,
                                             const std::string& fp_hex,
                                             std::string* raw_text,
                                             std::string* why) {
  const std::optional<service::ResultMsg> msg = client_->await(id, why);
  if (!msg) {
    error_ = client_->error();
    return std::nullopt;
  }
  // The daemon validated its own side; validate ours with the cache parser
  // (same fingerprint + key discipline as a local .erelres file).
  std::optional<ExpEntry> entry = parse_entry(msg->entry_text, fp_hex, key);
  if (!entry) {
    if (why != nullptr)
      *why = "daemon result failed local validation (diverged builds?)";
    return std::nullopt;
  }
  entry->from_cache = msg->cached;
  if (raw_text != nullptr) *raw_text = msg->entry_text;
  return entry;
}

}  // namespace erel::harness
