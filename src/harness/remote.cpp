#include "harness/remote.hpp"

#include <utility>

#include "service/client.hpp"

namespace erel::harness {

namespace {

service::ClientOptions to_client_options(const RemoteOptions& opts) {
  service::ClientOptions copts;
  copts.connect_timeout_ms = opts.connect_timeout_ms;
  copts.call_timeout_ms = opts.call_timeout_ms;
  copts.jitter_seed = opts.jitter_seed;
  return copts;
}

bool status_retryable(service::CallStatus status) {
  switch (status) {
    case service::CallStatus::kBusy:
    case service::CallStatus::kTimeout:
    case service::CallStatus::kDisconnected:
      return true;
    case service::CallStatus::kOk:
    case service::CallStatus::kRefused:
    case service::CallStatus::kProtocolError:
      return false;
  }
  return false;
}

}  // namespace

RemoteBackend::RemoteBackend(std::string endpoint, const RemoteOptions& opts)
    : endpoint_(std::move(endpoint)),
      client_(
          std::make_unique<service::RemoteClient>(to_client_options(opts))) {}

RemoteBackend::~RemoteBackend() = default;

bool RemoteBackend::connect() {
  if (client_->connect(endpoint_)) return true;
  error_ = client_->error();
  return false;
}

std::optional<std::uint64_t> RemoteBackend::dispatch(
    const ExpKey& key, const RunSpec& spec, const std::string& fp_hex) {
  service::CellRequest request;
  request.id = next_id_++;
  request.key = key;
  request.workload = spec.workload;
  request.fingerprint_hex = fp_hex;
  request.config = spec.config;
  request.sampling = spec.sampling;
  for (const sim::ProbeSpec& probe : spec.probes)
    request.probe_names.push_back(probe.name);
  request.stat_stride = spec.config.stat_stride;
  if (client_->send_cell(request)) return request.id;
  error_ = client_->error();
  retryable_ = status_retryable(client_->last_status());
  return std::nullopt;
}

std::optional<ExpEntry> RemoteBackend::await(std::uint64_t wire_id,
                                             const ExpKey& key,
                                             const std::string& fp_hex,
                                             std::string* raw_text,
                                             std::string* why) {
  const std::optional<service::ResultMsg> msg = client_->await(wire_id, why);
  if (!msg) {
    error_ = client_->error();
    retryable_ = status_retryable(client_->last_status());
    return std::nullopt;
  }
  // The daemon validated its own side; validate ours with the cache parser
  // (same fingerprint + key discipline as a local .erelres file).
  std::optional<ExpEntry> entry = parse_entry(msg->entry_text, fp_hex, key);
  if (!entry) {
    if (why != nullptr)
      *why = "daemon result failed local validation (diverged builds?)";
    retryable_ = false;  // the same daemon would send the same bytes again
    return std::nullopt;
  }
  entry->from_cache = msg->cached;
  if (raw_text != nullptr) *raw_text = msg->entry_text;
  return entry;
}

std::uint64_t RemoteBackend::retry_hint_ms() const {
  return client_->last_status() == service::CallStatus::kBusy
             ? client_->last_busy_retry_ms()
             : 0;
}

void RemoteBackend::abandon(std::uint64_t wire_id) {
  client_->cancel(wire_id);
}

void RemoteBackend::reset_connection() { client_->reset_connection(); }

std::uint64_t RemoteBackend::reconnects() const {
  return client_->reconnects();
}

}  // namespace erel::harness
