// Content-addressed fingerprints for experiment cells.
//
// A fingerprint is a 64-bit FNV-1a hash over a canonical text rendering of
// everything that determines a cell's simulation result:
//
//   erel-fp-v1                      format version (bump to flush caches)
//   workload=<name>
//   workload_content=<hash>         assembly source, or trace file bytes
//   <SimConfig canonical fields>    sim::append_canonical_fields
//   sampling=none | <SamplingConfig canonical fields>
//   [probe=<name>]...               declared probe names, in order
//
// Probe lines only appear when an experiment attaches probes, so every
// pre-probe fingerprint is unchanged. A probe's *name* stands in for its
// implementation (probes are user code with no hashable content): rename a
// probe when its exported metrics change meaning, exactly like vary()
// axis labels.
//
// Two cells with equal fingerprints therefore produce bit-identical
// statistics, which is what lets `Experiment::run` reuse on-disk results
// across processes: the cache file name *is* the fingerprint
// (<hex16>.erelres in the cache directory). Thread counts are excluded on
// both levels (harness pool size and SamplingConfig::threads) because they
// never change results, only wall-clock.
//
// Registry workloads hash their generated assembly text, so a kernel
// generator change invalidates exactly that kernel's entries. Trace
// workloads ("trace:<path>") hash the trace file's bytes in streaming
// 64 KB chunks, so a re-recorded trace never aliases a stale result.
//
// Configs carrying user callbacks (SimConfig::policy_factory) have no
// stable content to hash; `fingerprintable` returns false and the
// experiment layer simply re-runs those cells every time.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/config.hpp"
#include "sim/sampling.hpp"

namespace erel::harness {

/// 64-bit FNV-1a (offset 14695981039346656037, prime 1099511628211).
[[nodiscard]] std::uint64_t fnv1a64(std::string_view bytes,
                                    std::uint64_t seed = 14695981039346656037ull);

struct Fingerprint {
  std::uint64_t value = 0;

  bool operator==(const Fingerprint&) const = default;

  /// 16 lowercase hex digits, the cache file basename.
  [[nodiscard]] std::string hex() const;
};

/// True when the (workload, config) cell can be cached: the config carries
/// no user callbacks and the workload's content is resolvable (registered
/// kernel, or an existing trace file).
[[nodiscard]] bool fingerprintable(const std::string& workload,
                                   const sim::SimConfig& config);

/// Fingerprint of one experiment cell. Aborts (via the workload registry)
/// on unknown workload names; call `fingerprintable` first. `probe_names`
/// are the cell's attached probe names in declaration order ({} = none,
/// the historical hash).
[[nodiscard]] Fingerprint fingerprint_cell(
    const std::string& workload, const sim::SimConfig& config,
    const std::optional<sim::SamplingConfig>& sampling,
    const std::vector<std::string>& probe_names = {});

}  // namespace erel::harness
