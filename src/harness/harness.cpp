#include "harness/harness.hpp"

#include "asmkit/assembler.hpp"
#include "common/log.hpp"
#include "common/thread_pool.hpp"
#include "sim/simulator.hpp"
#include "workloads/workloads.hpp"

namespace erel::harness {

RunResult run_one(const RunSpec& spec, const RunHooks& hooks) {
  const arch::Program program = workloads::assemble_workload(spec.workload);
  // Metric export is a pure function of (config, registry), so a fresh
  // never-attached instance serves both the full and the sampled path.
  // Metrics with unserializable names are dropped here with a warning
  // rather than aborting a finished sweep at cache-save time.
  const auto collect_metrics = [&spec](const sim::StatRegistry& registry) {
    std::vector<sim::Metric> metrics;
    for (const sim::ProbeSpec& p : spec.probes) {
      const std::unique_ptr<sim::Probe> probe = p.make();
      EREL_CHECK(probe != nullptr, "probe factory '", p.name,
                 "' returned null");
      probe->export_metrics(spec.config, registry, metrics);
    }
    std::erase_if(metrics, [&spec](const sim::Metric& m) {
      const bool bad =
          m.name.empty() || m.name.find_first_of(" \n") != std::string::npos;
      if (bad)
        EREL_WARN("dropping metric with unserializable name '", m.name,
                  "' from a probe of spec ", spec.tag);
      return bad;
    });
    return metrics;
  };
  if (hooks.cancelled && hooks.cancelled()) {
    // Cancelled before starting: the result is partial by definition.
    return RunResult{spec, {}, std::nullopt, {}};
  }
  if (spec.sampling) {
    sim::SampledSimulator sampler(spec.config, *spec.sampling);
    sim::SampledStats sampled = sampler.run(program, spec.probes,
                                            hooks.cancelled);
    std::vector<sim::Metric> metrics = collect_metrics(sampled.registry);
    return RunResult{spec, sampled.estimate, std::move(sampled),
                     std::move(metrics)};
  }
  sim::Simulator simulator(spec.config);
  std::unique_ptr<pipeline::Core> core = simulator.make_core(program);
  const std::vector<std::unique_ptr<sim::Probe>> instances =
      core->attach_probes(spec.probes);
  for (sim::Probe* probe : hooks.extra_probes) core->attach_probe(probe);
  if (hooks.live_registry) hooks.live_registry(&core->registry());
  const sim::SimStats stats = core->run();
  if (hooks.live_registry) hooks.live_registry(nullptr);
  return RunResult{spec, stats, std::nullopt,
                   collect_metrics(core->registry())};
}

std::vector<RunResult> run_all(const std::vector<RunSpec>& specs,
                               unsigned threads) {
  std::vector<RunResult> results(specs.size());
  ThreadPool pool(threads);
  parallel_for(pool, specs.size(),
               [&](std::size_t i) { results[i] = run_one(specs[i]); });
  return results;
}

double harmonic_mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double inv_sum = 0;
  for (const double v : values) {
    if (v <= 0) return 0.0;  // limit of the harmonic mean as any value -> 0
    inv_sum += 1.0 / v;
  }
  return static_cast<double>(values.size()) / inv_sum;
}

sim::SimConfig experiment_config(core::PolicyKind policy, unsigned phys_regs) {
  sim::SimConfig config;
  config.policy = policy;
  config.phys_int = phys_regs;
  config.phys_fp = phys_regs;
  config.check_oracle = false;
  return config;
}

const std::vector<unsigned>& register_sweep_sizes() {
  static const std::vector<unsigned> sizes = {40, 48, 56, 64,  72,  80, 88,
                                              96, 104, 112, 120, 128, 160};
  return sizes;
}

}  // namespace erel::harness
