#include "harness/harness.hpp"

#include "asmkit/assembler.hpp"
#include "common/log.hpp"
#include "common/thread_pool.hpp"
#include "sim/simulator.hpp"
#include "workloads/workloads.hpp"

namespace erel::harness {

std::vector<RunResult> run_all(const std::vector<RunSpec>& specs,
                               unsigned threads) {
  std::vector<RunResult> results(specs.size());
  ThreadPool pool(threads);
  parallel_for(pool, specs.size(), [&](std::size_t i) {
    const RunSpec& spec = specs[i];
    const arch::Program program = workloads::assemble_workload(spec.workload);
    if (spec.sampling) {
      sim::SampledSimulator sampler(spec.config, *spec.sampling);
      sim::SampledStats sampled = sampler.run(program);
      results[i] = RunResult{spec, sampled.estimate, std::move(sampled)};
    } else {
      sim::Simulator simulator(spec.config);
      results[i] = RunResult{spec, simulator.run(program), std::nullopt};
    }
  });
  return results;
}

double harmonic_mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double inv_sum = 0;
  for (const double v : values) {
    if (v <= 0) return 0.0;  // limit of the harmonic mean as any value -> 0
    inv_sum += 1.0 / v;
  }
  return static_cast<double>(values.size()) / inv_sum;
}

sim::SimConfig experiment_config(core::PolicyKind policy, unsigned phys_regs) {
  sim::SimConfig config;
  config.policy = policy;
  config.phys_int = phys_regs;
  config.phys_fp = phys_regs;
  config.check_oracle = false;
  return config;
}

const std::vector<unsigned>& register_sweep_sizes() {
  static const std::vector<unsigned> sizes = {40, 48, 56, 64,  72,  80, 88,
                                              96, 104, 112, 120, 128, 160};
  return sizes;
}

}  // namespace erel::harness
