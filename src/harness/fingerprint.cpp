#include "harness/fingerprint.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>

#include "common/log.hpp"
#include "workloads/workloads.hpp"

namespace erel::harness {

std::uint64_t fnv1a64(std::string_view bytes, std::uint64_t seed) {
  std::uint64_t hash = seed;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

std::string Fingerprint::hex() const {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(value));
  return buf;
}

namespace {

/// Streaming FNV-1a over a file's bytes; nullopt when unreadable.
std::optional<std::uint64_t> hash_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::uint64_t hash = fnv1a64("");
  char chunk[64 * 1024];
  while (in.read(chunk, sizeof chunk) || in.gcount() > 0)
    hash = fnv1a64(std::string_view(chunk, static_cast<std::size_t>(in.gcount())),
                   hash);
  return hash;
}

/// Content hashes are memoized so a sweep fingerprinting dozens of cells
/// over the same workload hashes its content once, not once per cell —
/// this matters for multi-hundred-MB trace files. Registry kernels are
/// immutable within a process (static registry), so the name alone keys
/// them; trace files are keyed by (path, size, mtime) so a re-recorded
/// trace re-hashes instead of serving a stale digest.
std::optional<std::uint64_t> workload_content_hash(const std::string& name) {
  static std::mutex mutex;
  static std::map<std::string, std::uint64_t> memo;

  std::string memo_key = name;
  if (workloads::is_trace_workload(name)) {
    const std::string path = name.substr(workloads::kTracePrefix.size());
    std::error_code size_ec, time_ec;
    const auto size = std::filesystem::file_size(path, size_ec);
    const auto mtime = std::filesystem::last_write_time(path, time_ec);
    if (size_ec || time_ec) return std::nullopt;
    memo_key += '|' + std::to_string(size) + '|' +
                std::to_string(mtime.time_since_epoch().count());
  }
  {
    const std::scoped_lock lock(mutex);
    const auto it = memo.find(memo_key);
    if (it != memo.end()) return it->second;
  }

  std::optional<std::uint64_t> hash;
  if (workloads::is_trace_workload(name)) {
    hash = hash_file(name.substr(workloads::kTracePrefix.size()));
  } else if (const workloads::Workload* w = workloads::find_workload(name)) {
    hash = fnv1a64(w->source);
  }
  if (hash) {
    const std::scoped_lock lock(mutex);
    memo.emplace(memo_key, *hash);
  }
  return hash;
}

}  // namespace

bool fingerprintable(const std::string& workload,
                     const sim::SimConfig& config) {
  if (!sim::config_fingerprintable(config)) return false;
  if (workloads::is_trace_workload(workload))
    return std::filesystem::exists(
        workload.substr(workloads::kTracePrefix.size()));
  return workloads::find_workload(workload) != nullptr;
}

Fingerprint fingerprint_cell(const std::string& workload,
                             const sim::SimConfig& config,
                             const std::optional<sim::SamplingConfig>& sampling,
                             const std::vector<std::string>& probe_names) {
  std::string canon = "erel-fp-v1\n";
  canon += "workload=" + workload + "\n";
  const std::optional<std::uint64_t> content = workload_content_hash(workload);
  EREL_CHECK(content.has_value(), "cannot hash workload content for '",
             workload, "'");
  canon += "workload_content=" + std::to_string(*content) + "\n";
  sim::append_canonical_fields(config, canon);
  if (sampling) {
    sim::append_canonical_fields(*sampling, canon);
  } else {
    canon += "sampling=none\n";
  }
  for (const std::string& name : probe_names) canon += "probe=" + name + "\n";
  return Fingerprint{fnv1a64(canon)};
}

}  // namespace erel::harness
