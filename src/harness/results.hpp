// Typed experiment results: (structured key -> stats) with the aggregates
// the paper's tables and figures need, CSV/JSON sinks, and the text
// serialization the on-disk result cache stores.
//
// Keys are structural, not positional: an `ExpKey` names a cell of the
// experiment cross-product (workload x policy x register-file size x
// free-form variant), so results never depend on replaying a sweep's loop
// order — the pairing bug the old benchutil::run_sweep had by construction.
//
// Cache entry format (one file per cell, named <fingerprint-hex>.erelres,
// see harness/fingerprint.hpp):
//
//   erel-result v1
//   fingerprint <hex16>
//   key.workload <name>
//   key.policy conv|basic|extended
//   key.phys <unsigned>
//   key.variant [axis=label[,axis=label...]]
//   kind full|sampled
//   stats.<field> <value>              every SimStats field, exhaustively
//   [sampled.estimate.<field> ...]     sampled runs: full SampledStats
//   [sampled.measured.<field> ...]
//   [sampled.<moment> ...]
//   [samples <count>]
//   [s <start_instruction> <instructions> <cycles>]...
//   [metric.<name> <double>]...        open probe-exported metrics, in order
//   end
//
// Values are decimal integers or "%.17g" doubles (bit-exact round-trip for
// IEEE binary64). Unknown lines are rejected, a missing "end" marks a
// truncated write; both parse as cache misses, never as wrong results.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/release_policy.hpp"
#include "sim/probe.hpp"
#include "sim/sampling.hpp"
#include "sim/stats.hpp"

namespace erel::harness {

/// Structured coordinates of one experiment cell.
struct ExpKey {
  std::string workload;
  core::PolicyKind policy = core::PolicyKind::Conventional;
  unsigned phys = 0;       // symmetric register-file size axis
  std::string variant;     // joined extra-axis labels, "" when none

  auto operator<=>(const ExpKey&) const = default;

  /// "workload/policy/phys[/variant]" for logs and error messages.
  [[nodiscard]] std::string to_string() const;
};

/// One cell's result. `sampled` is set when the cell ran (or was cached)
/// under interval sampling; `stats` then holds the sampled estimate.
struct ExpEntry {
  ExpKey key;
  sim::SimStats stats;
  std::optional<sim::SampledStats> sampled;

  /// Open named metrics exported by the cell's probes (Instrumentation API
  /// v2). Flow through the CSV/JSON sinks as extra columns and round-trip
  /// through the cache format's `metric.` lines.
  std::vector<sim::Metric> metrics;

  bool from_cache = false;

  [[nodiscard]] double ipc() const { return stats.ipc(); }

  /// 95% CI half-width on IPC; 0 for full-detail cells (exact).
  [[nodiscard]] double ipc_ci95() const {
    return sampled ? sampled->ipc_ci95 : 0.0;
  }

  /// Metric lookup; nullopt when the cell has no metric of that name.
  [[nodiscard]] std::optional<double> metric(std::string_view name) const;
};

class ResultSet {
 public:
  void add(ExpEntry entry);

  [[nodiscard]] bool contains(const ExpKey& key) const;
  /// Aborts with the key's coordinates when the cell is missing.
  [[nodiscard]] const ExpEntry& at(const ExpKey& key) const;
  [[nodiscard]] const sim::SimStats& stats(const ExpKey& key) const;
  [[nodiscard]] double ipc(const ExpKey& key) const;

  [[nodiscard]] const std::vector<ExpEntry>& entries() const {
    return entries_;
  }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  // ---- axis slices (unique values, first-seen order) ----
  [[nodiscard]] std::vector<std::string> workloads() const;
  [[nodiscard]] std::vector<core::PolicyKind> policies() const;
  [[nodiscard]] std::vector<unsigned> phys_sizes() const;
  [[nodiscard]] std::vector<std::string> variants() const;

  // ---- aggregates (the paper reduces sweeps to harmonic-mean IPC) ----

  /// Harmonic-mean IPC over `names` at one (policy, phys, variant) point.
  [[nodiscard]] double hmean_ipc(const std::vector<std::string>& names,
                                 core::PolicyKind policy, unsigned phys,
                                 const std::string& variant = "") const;

  /// Delta-method propagation of the per-cell sampling CIs through the
  /// harmonic mean: dH/dx_i = H^2 / (n x_i^2). 0 when every cell is exact.
  [[nodiscard]] double hmean_ipc_ci95(const std::vector<std::string>& names,
                                      core::PolicyKind policy, unsigned phys,
                                      const std::string& variant = "") const;

  /// hmean(policy) / hmean(baseline) - 1; NaN when either mean collapses
  /// to 0 (TextTable::pct renders NaN as "n/a").
  [[nodiscard]] double speedup_vs(const std::vector<std::string>& names,
                                  core::PolicyKind policy,
                                  core::PolicyKind baseline, unsigned phys,
                                  const std::string& variant = "") const;

  /// Union of metric names across entries, first-seen order (the open
  /// metric columns of the CSV sink).
  [[nodiscard]] std::vector<std::string> metric_names() const;

  // ---- provenance ----
  [[nodiscard]] std::size_t cache_hits() const;
  [[nodiscard]] std::size_t simulated() const {
    return entries_.size() - cache_hits();
  }

  // ---- sinks ----
  /// One row per cell: key columns, headline stats, sampling CI.
  void write_csv(const std::string& path) const;
  /// Full dump: every SimStats field per cell, plus the sampled moments
  /// and per-sample records when present.
  void write_json(const std::string& path) const;

 private:
  [[nodiscard]] const ExpEntry* find(const ExpKey& key) const;

  std::vector<ExpEntry> entries_;
};

// ---- cache-entry text serialization (format documented above) ----

std::string serialize_entry(const ExpEntry& entry, std::string_view fp_hex);

/// Parses one cache file's contents. Returns nullopt on any malformed,
/// truncated or version-mismatched input (treated as a cache miss), or when
/// the stored fingerprint — or any key coordinate the fingerprint pins
/// (workload, policy, phys) — disagrees with the expected ones (a
/// collision or a stale rename — never silently returns the wrong cell).
/// A differing `variant` label alone is a legitimate alias (two vary()
/// labelings mutating a config into identical values share one entry); the
/// returned entry carries `expect_key`.
std::optional<ExpEntry> parse_entry(std::string_view text,
                                    std::string_view expect_fp_hex,
                                    const ExpKey& expect_key);

}  // namespace erel::harness
