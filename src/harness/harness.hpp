// Experiment harness: runs batches of independent simulations across a
// thread pool and aggregates the series the paper's tables/figures report.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "sim/config.hpp"
#include "sim/stats.hpp"

namespace erel::harness {

struct RunSpec {
  std::string workload;   // registry name
  sim::SimConfig config;
  std::string tag;        // free-form label for table assembly
};

struct RunResult {
  RunSpec spec;
  sim::SimStats stats;
};

/// Runs every spec (each on its own worker thread; simulations share no
/// state). Results keep the input order. `threads` 0 = hardware default.
std::vector<RunResult> run_all(const std::vector<RunSpec>& specs,
                               unsigned threads = 0);

/// Harmonic mean, the aggregate the paper uses for IPC (Figures 10/11).
double harmonic_mean(std::span<const double> values);

/// Builds a config with the paper's Table 2 defaults, the given policy and
/// symmetric register file size. Oracle checking is disabled for speed
/// (benchmarks); tests construct configs directly with it enabled.
sim::SimConfig experiment_config(core::PolicyKind policy, unsigned phys_regs);

/// The Figure 11 sweep axis.
const std::vector<unsigned>& register_sweep_sizes();

}  // namespace erel::harness
