// Experiment harness: runs batches of independent simulations across a
// thread pool and aggregates the series the paper's tables/figures report.
//
// This is the flat runner layer. Sweeps should normally be declared through
// harness::Experiment (harness/experiment.hpp), which materializes axis
// cross-products into structurally-keyed RunSpecs, serves cells from the
// on-disk result cache, and returns a typed harness::ResultSet.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "sim/config.hpp"
#include "sim/probe.hpp"
#include "sim/sampling.hpp"
#include "sim/stats.hpp"

namespace erel::harness {

struct RunSpec {
  /// Workload registry name, or "trace:<path>" to replay the program image
  /// embedded in a recorded binary trace (src/trace/).
  std::string workload;
  sim::SimConfig config;
  std::string tag;        // free-form label for table assembly

  /// When set, the run uses checkpointed interval sampling instead of full
  /// detailed simulation; `RunResult::stats` then holds the sampled
  /// estimate and `RunResult::sampled` the per-sample detail. The whole
  /// SamplingConfig rides along: placement mode + seed, `target_ci`
  /// confidence-driven stopping, and `threads` (keep the default of 1 when
  /// a sweep already saturates the harness pool with one spec per worker;
  /// raise it to shard a single long workload's units instead).
  std::optional<sim::SamplingConfig> sampling;

  /// Named probes attached to the run (Instrumentation API v2): fresh
  /// instances are built per simulation (and per sampling window), their
  /// registry entries land in the run's StatRegistry, and their
  /// export_metrics output becomes RunResult::metrics.
  std::vector<sim::ProbeSpec> probes;
};

struct RunResult {
  RunSpec spec;
  sim::SimStats stats;
  std::optional<sim::SampledStats> sampled;

  /// Named scalars exported by the spec's probes (full runs: over the
  /// run's registry; sampled runs: over the merged measurement registry).
  std::vector<sim::Metric> metrics;
};

/// Observation hooks for a single run, used by the experiment daemon to
/// watch a simulation in progress (src/service/). Both are no-ops by
/// default and never change simulation results.
struct RunHooks {
  /// Extra observers attached after the spec's own probes (caller keeps
  /// ownership). Full-detail runs only: sampled runs build fresh per-window
  /// probe instances from ProbeSpec factories, so raw pointers cannot ride
  /// along — pass a ProbeSpec in the spec instead.
  std::vector<sim::Probe*> extra_probes;

  /// Called with the core's live registry right before the run starts, and
  /// with nullptr right after it completes — *before* the core is torn
  /// down, so the callback is the exact window in which the pointer may be
  /// retained (e.g. for StatRegistry::snapshot() readers on other threads).
  /// Full-detail runs only (a sampled run has no single live registry); for
  /// sampled specs the callback never fires.
  std::function<void(sim::StatRegistry*)> live_registry;

  /// Cooperative cancellation: polled at coarse boundaries (before the run
  /// starts; between a sampled run's planning steps and measurement
  /// batches). Once it returns true the run stops early and the RunResult
  /// is PARTIAL — callers that cancel must discard it, never cache or
  /// serve it. Full-detail runs only honor the pre-start check (the
  /// detailed core has no safe interior stopping point).
  std::function<bool()> cancelled;
};

/// Runs one spec on the calling thread: the unit of work shared by run_all
/// workers and the experiment daemon's pool.
RunResult run_one(const RunSpec& spec, const RunHooks& hooks = {});

/// Runs every spec (each on its own worker thread; simulations share no
/// state). Results keep the input order. `threads` 0 = hardware default.
std::vector<RunResult> run_all(const std::vector<RunSpec>& specs,
                               unsigned threads = 0);

/// Harmonic mean, the aggregate the paper uses for IPC (Figures 10/11).
/// Degenerate inputs are defined rather than fatal: an empty series yields
/// 0, and any non-positive value collapses the mean to 0 (its limit).
double harmonic_mean(std::span<const double> values);

/// Builds a config with the paper's Table 2 defaults, the given policy and
/// symmetric register file size. Oracle checking is disabled for speed
/// (benchmarks); tests construct configs directly with it enabled.
sim::SimConfig experiment_config(core::PolicyKind policy, unsigned phys_regs);

/// The Figure 11 sweep axis.
const std::vector<unsigned>& register_sweep_sizes();

}  // namespace erel::harness
