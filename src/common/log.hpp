// Lightweight assertion / fatal-error support for the simulator.
//
// EREL_CHECK is always on (even in release builds): simulator correctness
// bugs must not silently corrupt experiment results. The cost is negligible
// next to the per-cycle work of the pipeline model.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>

namespace erel {

/// Aborts the process after printing `msg` with source location.
[[noreturn]] void fatal(std::string_view file, int line, const std::string& msg);

/// Prints a non-fatal diagnostic to stderr (one atomic write per message, so
/// warnings from pool workers do not interleave mid-line).
void warn(std::string_view file, int line, const std::string& msg);

namespace detail {
// Builds the failure message lazily only on the failing path.
template <typename... Ts>
std::string format_parts(Ts&&... parts) {
  std::ostringstream os;
  (os << ... << parts);
  return os.str();
}
}  // namespace detail

}  // namespace erel

#define EREL_CHECK(cond, ...)                                                \
  do {                                                                       \
    if (!(cond)) [[unlikely]] {                                              \
      ::erel::fatal(__FILE__, __LINE__,                                      \
                    ::erel::detail::format_parts("check failed: " #cond " ", \
                                                 ##__VA_ARGS__));            \
    }                                                                        \
  } while (0)

#define EREL_FATAL(...)                                                    \
  ::erel::fatal(__FILE__, __LINE__,                                        \
                ::erel::detail::format_parts("fatal: ", ##__VA_ARGS__))

#define EREL_WARN(...)                                                     \
  ::erel::warn(__FILE__, __LINE__,                                         \
               ::erel::detail::format_parts("warning: ", ##__VA_ARGS__))
