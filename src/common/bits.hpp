// Bit-field extraction/insertion helpers used by the ISA encoding and the
// cache index math. All field positions are [lo, lo+width).
#pragma once

#include <bit>
#include <cstdint>
#include <type_traits>

#include "common/log.hpp"

namespace erel {

/// Extracts an unsigned bit-field of `width` bits starting at `lo`.
constexpr std::uint32_t bits(std::uint32_t value, unsigned lo, unsigned width) {
  return (value >> lo) & ((width >= 32u) ? ~0u : ((1u << width) - 1u));
}

/// Inserts `field` (must fit) into a word at [lo, lo+width).
constexpr std::uint32_t put_bits(std::uint32_t word, unsigned lo, unsigned width,
                                 std::uint32_t field) {
  const std::uint32_t mask = (width >= 32u) ? ~0u : ((1u << width) - 1u);
  return (word & ~(mask << lo)) | ((field & mask) << lo);
}

/// Sign-extends the low `width` bits of `value` to 64 bits.
constexpr std::int64_t sext(std::uint64_t value, unsigned width) {
  const unsigned shift = 64u - width;
  return static_cast<std::int64_t>(value << shift) >> shift;
}

/// True if `value` fits in a signed field of `width` bits.
constexpr bool fits_signed(std::int64_t value, unsigned width) {
  const std::int64_t lo = -(std::int64_t{1} << (width - 1));
  const std::int64_t hi = (std::int64_t{1} << (width - 1)) - 1;
  return value >= lo && value <= hi;
}

/// log2 of a power of two.
constexpr unsigned log2_exact(std::uint64_t value) {
  return static_cast<unsigned>(std::countr_zero(value));
}

constexpr bool is_pow2(std::uint64_t value) {
  return value != 0 && (value & (value - 1)) == 0;
}

/// Bit-casts between double and its IEEE-754 bit pattern; the simulator keeps
/// FP register values as uint64 so that state is trivially comparable.
inline std::uint64_t f2u(double d) { return std::bit_cast<std::uint64_t>(d); }
inline double u2f(std::uint64_t u) { return std::bit_cast<double>(u); }

/// xorshift128+ deterministic RNG: reproducible across platforms, fast enough
/// to sit inside workload generation and fuzz tests.
class Xorshift {
 public:
  explicit Xorshift(std::uint64_t seed = 0x9e3779b97f4a7c15ull) {
    // SplitMix64 seeding so nearby seeds give uncorrelated streams.
    auto next = [&seed] {
      seed += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      return z ^ (z >> 31);
    };
    s0_ = next();
    s1_ = next();
    if (s0_ == 0 && s1_ == 0) s1_ = 1;
  }

  std::uint64_t next() {
    std::uint64_t x = s0_;
    const std::uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform in [0, bound). bound must be nonzero.
  std::uint64_t below(std::uint64_t bound) {
    EREL_CHECK(bound != 0);
    return next() % bound;
  }

  /// Uniform in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    EREL_CHECK(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  double uniform01() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Bernoulli with probability p.
  bool chance(double p) { return uniform01() < p; }

 private:
  std::uint64_t s0_;
  std::uint64_t s1_;
};

}  // namespace erel
