// Plain-text table formatting for bench binaries: fixed-width columns with
// right-aligned numerics, matching the row/series layout of the paper's
// tables and figures.
#pragma once

#include <string>
#include <vector>

namespace erel {

/// Column-aligned text table. Rows are added as vectors of pre-formatted
/// cells; `to_string` pads every column to its widest cell.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with `precision` digits after the point.
  static std::string num(double value, int precision = 3);
  static std::string pct(double fraction, int precision = 1);

  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::vector<std::string>> rows_;
  std::size_t columns_;
};

}  // namespace erel
