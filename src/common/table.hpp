// Plain-text table formatting for bench binaries: fixed-width columns with
// right-aligned numerics, matching the row/series layout of the paper's
// tables and figures.
#pragma once

#include <string>
#include <vector>

namespace erel {

/// Column-aligned text table. Rows are added as vectors of pre-formatted
/// cells; `to_string` pads every column to its widest cell.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with `precision` digits after the point.
  /// Non-finite inputs (a ratio over a zero denominator, e.g. a harmonic
  /// mean that collapsed to 0) render as "n/a" instead of inf/nan.
  static std::string num(double value, int precision = 3);
  static std::string pct(double fraction, int precision = 1);

  /// Speedup column: (value / baseline - 1) as a percentage, "n/a" when
  /// either side is non-positive (degenerate series).
  static std::string speedup_pct(double value, double baseline,
                                 int precision = 1);

  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::vector<std::string>> rows_;
  std::size_t columns_;
};

}  // namespace erel
