#include "common/log.hpp"

#include <cstdio>
#include <cstdlib>

namespace erel {

void fatal(std::string_view file, int line, const std::string& msg) {
  std::fprintf(stderr, "[erel] %.*s:%d: %s\n", static_cast<int>(file.size()),
               file.data(), line, msg.c_str());
  std::fflush(stderr);
  std::abort();
}

void warn(std::string_view file, int line, const std::string& msg) {
  std::string out = "[erel] ";
  out.append(file);
  out += ':';
  out += std::to_string(line);
  out += ": ";
  out += msg;
  out += '\n';
  std::fwrite(out.data(), 1, out.size(), stderr);
  std::fflush(stderr);
}

}  // namespace erel
