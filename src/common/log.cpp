#include "common/log.hpp"

#include <cstdio>
#include <cstdlib>

namespace erel {

void fatal(std::string_view file, int line, const std::string& msg) {
  std::fprintf(stderr, "[erel] %.*s:%d: %s\n", static_cast<int>(file.size()),
               file.data(), line, msg.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace erel
