// Fixed-size worker pool used by the experiment harness to run independent
// simulations in parallel (one simulation == one task; simulations share no
// mutable state).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace erel {

class ThreadPool {
 public:
  /// Spawns `threads` workers (0 means std::thread::hardware_concurrency()).
  explicit ThreadPool(unsigned threads = 0);

  /// Drains outstanding tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution on some worker.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished running.
  void wait_idle();

  [[nodiscard]] unsigned size() const { return static_cast<unsigned>(workers_.size()); }

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

/// Runs `fn(i)` for i in [0, count) across the pool and waits for completion.
void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& fn);

}  // namespace erel
