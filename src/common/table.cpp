#include "common/table.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/log.hpp"

namespace erel {

TextTable::TextTable(std::vector<std::string> header)
    : columns_(header.size()) {
  EREL_CHECK(columns_ > 0);
  rows_.push_back(std::move(header));
}

void TextTable::add_row(std::vector<std::string> cells) {
  EREL_CHECK(cells.size() == columns_, "row width ", cells.size(),
             " != header width ", columns_);
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double value, int precision) {
  if (!std::isfinite(value)) return "n/a";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

std::string TextTable::pct(double fraction, int precision) {
  if (!std::isfinite(fraction)) return "n/a";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string TextTable::speedup_pct(double value, double baseline,
                                   int precision) {
  if (!(value > 0.0) || !(baseline > 0.0)) return "n/a";
  return pct(value / baseline - 1.0, precision);
}

namespace {
bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.' && c != '-' &&
        c != '+' && c != '%' && c != 'e' && c != 'x')
      return false;
  }
  return true;
}
}  // namespace

std::string TextTable::to_string() const {
  std::vector<std::size_t> width(columns_, 0);
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < columns_; ++c)
      width[c] = std::max(width[c], row[c].size());

  std::ostringstream os;
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    for (std::size_t c = 0; c < columns_; ++c) {
      const std::string& cell = rows_[r][c];
      const std::size_t pad = width[c] - cell.size();
      // Header and text cells left-align; numeric cells right-align.
      const bool right = r > 0 && looks_numeric(cell);
      if (c > 0) os << "  ";
      if (right) os << std::string(pad, ' ') << cell;
      else os << cell << std::string(pad, ' ');
    }
    os << '\n';
    if (r == 0) {
      for (std::size_t c = 0; c < columns_; ++c) {
        if (c > 0) os << "  ";
        os << std::string(width[c], '-');
      }
      os << '\n';
    }
  }
  return os.str();
}

}  // namespace erel
