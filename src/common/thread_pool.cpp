#include "common/thread_pool.hpp"

#include "common/log.hpp"

namespace erel {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock lock(mu_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  EREL_CHECK(task != nullptr);
  {
    std::unique_lock lock(mu_);
    EREL_CHECK(!stopping_, "submit after shutdown");
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      work_available_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::unique_lock lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& fn) {
  for (std::size_t i = 0; i < count; ++i) pool.submit([&fn, i] { fn(i); });
  pool.wait_idle();
}

}  // namespace erel
