#include "trace/checkpoint_io.hpp"

#include <fstream>

#include "arch/memory.hpp"
#include "common/log.hpp"
#include "trace/format.hpp"

namespace erel::trace {

void save_checkpoint(const std::string& path, const arch::Checkpoint& ckpt) {
  std::vector<std::uint8_t> buf;
  buf.insert(buf.end(), kCheckpointMagic.begin(), kCheckpointMagic.end());
  put_fixed32(buf, kCheckpointVersion);
  put_uvarint(buf, ckpt.pc);
  put_uvarint(buf, ckpt.icount);
  buf.push_back(ckpt.halted ? 1 : 0);
  for (const std::uint64_t v : ckpt.int_regs) put_uvarint(buf, v);
  for (const std::uint64_t v : ckpt.fp_regs) put_uvarint(buf, v);
  put_uvarint(buf, ckpt.dev.size());
  for (const std::uint64_t v : ckpt.dev) put_uvarint(buf, v);
  put_uvarint(buf, ckpt.pages.size());
  for (const arch::Checkpoint::PageImage& page : ckpt.pages) {
    EREL_CHECK(page.bytes.size() == arch::SparseMemory::kPageBytes);
    put_uvarint(buf, page.base);
    buf.insert(buf.end(), page.bytes.begin(), page.bytes.end());
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  EREL_CHECK(out.is_open(), "cannot open checkpoint file for writing: ", path);
  out.write(reinterpret_cast<const char*>(buf.data()),
            static_cast<std::streamsize>(buf.size()));
  out.close();
  EREL_CHECK(out.good(), "checkpoint file write failed: ", path);
}

arch::Checkpoint load_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  EREL_CHECK(in.is_open(), "cannot open checkpoint file: ", path);
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<std::uint8_t> buf(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(buf.data()), size);
  EREL_CHECK(in.good(), "checkpoint file read failed: ", path);

  ByteCursor c{buf.data(), buf.data() + buf.size()};
  std::array<std::uint8_t, 4> magic{};
  c.raw(magic.data(), magic.size());
  EREL_CHECK(c.ok && magic == kCheckpointMagic, "not a checkpoint file: ",
             path);
  const std::uint32_t version = c.fixed32();
  EREL_CHECK(c.ok && (version == 1 || version == kCheckpointVersion),
             "unsupported checkpoint version ", version, " in ", path);

  arch::Checkpoint ckpt;
  ckpt.pc = c.uvarint();
  ckpt.icount = c.uvarint();
  ckpt.halted = c.u8() != 0;
  for (std::uint64_t& v : ckpt.int_regs) v = c.uvarint();
  for (std::uint64_t& v : ckpt.fp_regs) v = c.uvarint();
  if (version >= 2) {
    // v2: device state words (v1 files predate the device model; an empty
    // vector restores the reset state).
    const std::uint64_t dev_words = c.uvarint();
    for (std::uint64_t i = 0; c.ok && i < dev_words; ++i)
      ckpt.dev.push_back(c.uvarint());
  }
  const std::uint64_t page_count = c.uvarint();
  for (std::uint64_t i = 0; c.ok && i < page_count; ++i) {
    arch::Checkpoint::PageImage page;
    page.base = c.uvarint();
    page.bytes.resize(arch::SparseMemory::kPageBytes);
    c.raw(page.bytes.data(), page.bytes.size());
    ckpt.pages.push_back(std::move(page));
  }
  EREL_CHECK(c.ok, "truncated checkpoint file: ", path);
  return ckpt;
}

}  // namespace erel::trace
