#include "trace/writer.hpp"

#include "common/log.hpp"
#include "trace/format.hpp"

namespace erel::trace {

TraceWriter::TraceWriter(const std::string& path)
    : out_(path, std::ios::binary | std::ios::trunc) {
  EREL_CHECK(out_.is_open(), "cannot open trace file for writing: ", path);
  write_header(nullptr);
}

TraceWriter::TraceWriter(const std::string& path, const arch::Program& program)
    : out_(path, std::ios::binary | std::ios::trunc) {
  EREL_CHECK(out_.is_open(), "cannot open trace file for writing: ", path);
  write_header(&program);
}

TraceWriter::~TraceWriter() { finish(); }

void TraceWriter::write_header(const arch::Program* program) {
  std::vector<std::uint8_t> buf;
  buf.insert(buf.end(), kTraceMagic.begin(), kTraceMagic.end());
  put_fixed32(buf, kFormatVersion);
  buf.push_back(program != nullptr ? 1 : 0);
  if (program != nullptr) {
    put_uvarint(buf, program->entry);
    put_uvarint(buf, program->code_base);
    put_uvarint(buf, program->code.size());
    for (const std::uint32_t word : program->code) put_fixed32(buf, word);
    put_uvarint(buf, program->data.size());
    for (const arch::DataSegment& seg : program->data) {
      put_uvarint(buf, seg.base);
      put_uvarint(buf, seg.bytes.size());
      buf.insert(buf.end(), seg.bytes.begin(), seg.bytes.end());
    }
    put_uvarint(buf, program->symbols.size());
    for (const auto& [name, addr] : program->symbols) {
      put_uvarint(buf, name.size());
      buf.insert(buf.end(), name.begin(), name.end());
      put_uvarint(buf, addr);
    }
  }
  out_.write(reinterpret_cast<const char*>(buf.data()),
             static_cast<std::streamsize>(buf.size()));
  count_pos_ = out_.tellp();
  std::vector<std::uint8_t> count_bytes;
  put_fixed64(count_bytes, 0);  // patched by finish()
  out_.write(reinterpret_cast<const char*>(count_bytes.data()), 8);
}

void TraceWriter::append(const sim::CommitEvent& event) {
  EREL_CHECK(!finished_, "append after finish");
  // Per-instruction stage stamps are strictly increasing (the pipeline
  // dispatches before it issues, issues before it completes, ...); encode
  // them as unsigned gaps so corruption shows up as a decode failure.
  EREL_CHECK(event.dispatch_cycle < event.issue_cycle &&
                 event.issue_cycle < event.complete_cycle &&
                 event.complete_cycle < event.commit_cycle,
             "non-monotone stage cycles in trace event at pc ", event.pc);
  std::uint8_t buf[70];  // 7 varints, <= 10 bytes each
  std::size_t n = 0;
  n += put_uvarint(buf + n,
                   zigzag(static_cast<std::int64_t>(event.seq - prev_.seq)));
  n += put_uvarint(buf + n,
                   zigzag(static_cast<std::int64_t>(event.pc - prev_.pc)));
  n += put_uvarint(buf + n, event.encoding);
  n += put_uvarint(buf + n, zigzag(static_cast<std::int64_t>(
                                event.dispatch_cycle - prev_.dispatch_cycle)));
  n += put_uvarint(buf + n, event.issue_cycle - event.dispatch_cycle);
  n += put_uvarint(buf + n, event.complete_cycle - event.issue_cycle);
  n += put_uvarint(buf + n, event.commit_cycle - event.complete_cycle);
  out_.write(reinterpret_cast<const char*>(buf),
             static_cast<std::streamsize>(n));
  prev_ = event;
  // The inst/rec pointers are only valid during the probe callback; never
  // retain them past this call.
  prev_.inst = nullptr;
  prev_.rec = nullptr;
  ++count_;
}

void TraceWriter::finish() {
  if (finished_) return;
  finished_ = true;
  out_.seekp(count_pos_);
  std::vector<std::uint8_t> count_bytes;
  put_fixed64(count_bytes, count_);
  out_.write(reinterpret_cast<const char*>(count_bytes.data()), 8);
  out_.close();
  EREL_CHECK(out_.good(), "trace file write failed");
}

}  // namespace erel::trace
