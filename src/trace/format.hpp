// Binary trace / checkpoint container format (version 1).
//
// Traces hold the committed instruction stream of a detailed simulation —
// one delta-encoded record per committed instruction (sequence number, PC,
// raw encoding, and the dispatch/issue/complete/commit cycle stamps) — plus
// an optional embedded program image, which makes a trace file a
// self-contained workload: `workloads::assemble_workload("trace:<path>")`
// re-simulates it under any configuration without the original assembly.
//
// Layout (all multi-byte scalars are LEB128 varints unless noted):
//
//   bytes 'E' 'R' 'T' 'R'          magic
//   u32 (fixed, LE)                version
//   u8                             has_program
//   [program image]                entry, code_base, code words (fixed u32),
//                                  data segments, symbol table
//   u64 (fixed, LE)                record count (patched by finish())
//   records...                     delta-encoded, see TraceWriter
//
// Deltas use zigzag encoding where a field is not provably monotone; the
// strictly increasing per-instruction stage stamps (dispatch < issue <
// complete < commit) are stored as unsigned gaps.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <vector>

namespace erel::trace {

inline constexpr std::array<std::uint8_t, 4> kTraceMagic = {'E', 'R', 'T', 'R'};
inline constexpr std::array<std::uint8_t, 4> kCheckpointMagic = {'E', 'R', 'C',
                                                                 'K'};
inline constexpr std::uint32_t kFormatVersion = 1;

/// Checkpoint files version independently of traces: v2 appends the device
/// state section (dev::Machine words); v1 files (no device section) still
/// load, resuming with a reset device.
inline constexpr std::uint32_t kCheckpointVersion = 2;

// --- encoding helpers -----------------------------------------------------

inline void put_uvarint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

/// Allocation-free variant for hot paths (trace capture encodes one record
/// per committed instruction). Returns the number of bytes written; the
/// caller guarantees >= 10 bytes of space per varint.
inline std::size_t put_uvarint(std::uint8_t* out, std::uint64_t v) {
  std::size_t n = 0;
  while (v >= 0x80) {
    out[n++] = static_cast<std::uint8_t>(v) | 0x80;
    v >>= 7;
  }
  out[n++] = static_cast<std::uint8_t>(v);
  return n;
}

inline std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

inline std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

inline void put_svarint(std::vector<std::uint8_t>& out, std::int64_t v) {
  put_uvarint(out, zigzag(v));
}

inline void put_fixed32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  std::uint8_t bytes[4];
  std::memcpy(bytes, &v, 4);  // little-endian host
  out.insert(out.end(), bytes, bytes + 4);
}

inline void put_fixed64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  std::uint8_t bytes[8];
  std::memcpy(bytes, &v, 8);
  out.insert(out.end(), bytes, bytes + 8);
}

/// Bounds-checked sequential decoder over an in-memory buffer. Every getter
/// sets `ok = false` (and returns 0) on truncated input instead of reading
/// out of bounds; callers check `ok` once per logical unit.
struct ByteCursor {
  const std::uint8_t* p = nullptr;
  const std::uint8_t* end = nullptr;
  bool ok = true;

  [[nodiscard]] std::size_t remaining() const {
    return static_cast<std::size_t>(end - p);
  }

  std::uint8_t u8() {
    if (p >= end) {
      ok = false;
      return 0;
    }
    return *p++;
  }

  std::uint64_t uvarint() {
    std::uint64_t v = 0;
    unsigned shift = 0;
    while (shift < 64) {
      if (p >= end) {
        ok = false;
        return 0;
      }
      const std::uint8_t byte = *p++;
      v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) return v;
      shift += 7;
    }
    ok = false;  // over-long varint
    return 0;
  }

  std::int64_t svarint() { return unzigzag(uvarint()); }

  std::uint32_t fixed32() {
    if (remaining() < 4) {
      ok = false;
      return 0;
    }
    std::uint32_t v = 0;
    std::memcpy(&v, p, 4);
    p += 4;
    return v;
  }

  std::uint64_t fixed64() {
    if (remaining() < 8) {
      ok = false;
      return 0;
    }
    std::uint64_t v = 0;
    std::memcpy(&v, p, 8);
    p += 8;
    return v;
  }

  /// Copies `n` raw bytes into `dst`; zero-fills on truncation.
  void raw(void* dst, std::size_t n) {
    if (remaining() < n) {
      ok = false;
      std::memset(dst, 0, n);
      return;
    }
    std::memcpy(dst, p, n);
    p += n;
  }
};

}  // namespace erel::trace
