// One-call trace capture and replay helpers on top of TraceWriter/
// TraceReader.
//
//   trace::capture(program, config, "li.ertr");      // record a run
//   arch::Program p = trace::replay_program("li.ertr");  // workload family
//   trace::ReplaySummary s = trace::summarize("li.ertr");
#pragma once

#include <cstdint>
#include <string>

#include "arch/program.hpp"
#include "sim/config.hpp"
#include "sim/stats.hpp"

namespace erel::trace {

/// Runs `program` under `config` recording every committed instruction to
/// `path` (the program image is embedded so the trace is replayable). Any
/// user trace hook already present in `config` still fires.
sim::SimStats capture(const arch::Program& program, sim::SimConfig config,
                      const std::string& path);

/// The embedded program image of a recorded trace; aborts if the trace was
/// captured without one.
arch::Program replay_program(const std::string& path);

/// Timing summary recomputed from a trace's records alone (no simulation).
struct ReplaySummary {
  std::uint64_t instructions = 0;
  std::uint64_t cycles = 0;  // last commit cycle observed
  double ipc = 0.0;

  std::uint64_t total_dispatch_to_commit = 0;  // summed per-instruction

  [[nodiscard]] double avg_latency() const {
    return instructions == 0
               ? 0.0
               : static_cast<double>(total_dispatch_to_commit) / instructions;
  }
};

ReplaySummary summarize(const std::string& path);

}  // namespace erel::trace
