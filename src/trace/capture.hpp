// One-call trace capture and replay helpers on top of TraceWriter/
// TraceReader, plus the probe that records commits (Instrumentation API
// v2: capture is an ordinary sim::Probe, not a bespoke pipeline hook).
//
//   trace::capture(program, config, "li.ertr");      // record a run
//   arch::Program p = trace::replay_program("li.ertr");  // workload family
//   trace::ReplaySummary s = trace::summarize("li.ertr");
//
// To compose capture with other observers, attach a CaptureProbe yourself:
//
//   trace::TraceWriter writer(path, program);
//   trace::CaptureProbe capture(writer);
//   sim::Simulator(config).run(program, {&capture, &my_probe});
//   writer.finish();
#pragma once

#include <cstdint>
#include <string>

#include "arch/program.hpp"
#include "sim/config.hpp"
#include "sim/probe.hpp"
#include "sim/stats.hpp"
#include "trace/writer.hpp"

namespace erel::trace {

/// Streams every committed instruction into a TraceWriter. The writer must
/// outlive the run; call writer.finish() after it.
///
/// Full-detail runs only: under sampled simulation, measurement windows
/// run concurrently and replay disjoint slices of the program, so a
/// CaptureProbe factory sharing one writer across windows would interleave
/// (and race on) the record stream. Record traces from a plain
/// sim::Simulator / pipeline::Core run.
class CaptureProbe final : public sim::Probe {
 public:
  explicit CaptureProbe(TraceWriter& writer) : writer_(writer) {}

  void on_commit(const sim::CommitEvent& event) override {
    writer_.append(event);
  }

 private:
  TraceWriter& writer_;
};

/// Runs `program` under `config` recording every committed instruction to
/// `path` (the program image is embedded so the trace is replayable).
sim::SimStats capture(const arch::Program& program,
                      const sim::SimConfig& config, const std::string& path);

/// The embedded program image of a recorded trace; aborts if the trace was
/// captured without one.
arch::Program replay_program(const std::string& path);

/// Timing summary recomputed from a trace's records alone (no simulation).
struct ReplaySummary {
  std::uint64_t instructions = 0;
  std::uint64_t cycles = 0;  // last commit cycle observed
  double ipc = 0.0;

  std::uint64_t total_dispatch_to_commit = 0;  // summed per-instruction

  [[nodiscard]] double avg_latency() const {
    return instructions == 0
               ? 0.0
               : static_cast<double>(total_dispatch_to_commit) / instructions;
  }
};

ReplaySummary summarize(const std::string& path);

}  // namespace erel::trace
