#include "trace/capture.hpp"

#include "sim/simulator.hpp"
#include "trace/reader.hpp"

namespace erel::trace {

sim::SimStats capture(const arch::Program& program,
                      const sim::SimConfig& config, const std::string& path) {
  TraceWriter writer(path, program);
  CaptureProbe probe(writer);
  const sim::SimStats stats = sim::Simulator(config).run(program, {&probe});
  writer.finish();
  return stats;
}

arch::Program replay_program(const std::string& path) {
  return TraceReader(path).program();
}

ReplaySummary summarize(const std::string& path) {
  TraceReader reader(path);
  ReplaySummary summary;
  while (auto ev = reader.next()) {
    ++summary.instructions;
    summary.cycles = ev->commit_cycle;
    summary.total_dispatch_to_commit += ev->commit_cycle - ev->dispatch_cycle;
  }
  summary.ipc = summary.cycles == 0
                    ? 0.0
                    : static_cast<double>(summary.instructions) / summary.cycles;
  return summary;
}

}  // namespace erel::trace
