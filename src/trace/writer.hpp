// Streaming writer for the version-1 binary trace format (trace/format.hpp).
//
//   trace::TraceWriter writer(path, program);   // program embeds for replay
//   config.trace = writer.hook();
//   sim::Simulator(config).run(program);
//   writer.finish();
//
// Records are delta-encoded against the previous committed instruction and
// streamed straight to disk; the record count is patched into the header at
// finish() so capture never buffers the whole trace in memory.
#pragma once

#include <cstdint>
#include <fstream>
#include <functional>
#include <string>

#include "arch/program.hpp"
#include "sim/config.hpp"

namespace erel::trace {

class TraceWriter {
 public:
  /// Opens `path` for writing (truncates). Aborts if the file cannot be
  /// created. Without a program the trace is timing-only (not replayable).
  explicit TraceWriter(const std::string& path);
  TraceWriter(const std::string& path, const arch::Program& program);
  ~TraceWriter();

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  /// Appends one committed-instruction record. Events must arrive in commit
  /// order (the order the pipeline's trace hook produces them in).
  void append(const sim::SimConfig::TraceEvent& event);

  /// Patches the record count into the header and closes the file. Called
  /// automatically by the destructor; idempotent.
  void finish();

  [[nodiscard]] std::uint64_t records_written() const { return count_; }

  /// A SimConfig::trace hook bound to this writer. The writer must outlive
  /// the simulation it is recording.
  [[nodiscard]] std::function<void(const sim::SimConfig::TraceEvent&)> hook() {
    return [this](const sim::SimConfig::TraceEvent& ev) { append(ev); };
  }

 private:
  void write_header(const arch::Program* program);

  std::ofstream out_;
  std::streampos count_pos_{};
  std::uint64_t count_ = 0;
  sim::SimConfig::TraceEvent prev_{};
  bool finished_ = false;
};

}  // namespace erel::trace
