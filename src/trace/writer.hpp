// Streaming writer for the version-1 binary trace format (trace/format.hpp).
//
//   trace::TraceWriter writer(path, program);   // program embeds for replay
//   trace::CaptureProbe probe(writer);          // trace/capture.hpp
//   sim::Simulator(config).run(program, {&probe});
//   writer.finish();
//
// Records are delta-encoded against the previous committed instruction and
// streamed straight to disk; the record count is patched into the header at
// finish() so capture never buffers the whole trace in memory.
#pragma once

#include <cstdint>
#include <fstream>
#include <functional>
#include <string>

#include "arch/program.hpp"
#include "sim/probe.hpp"

namespace erel::trace {

class TraceWriter {
 public:
  /// Opens `path` for writing (truncates). Aborts if the file cannot be
  /// created. Without a program the trace is timing-only (not replayable).
  explicit TraceWriter(const std::string& path);
  TraceWriter(const std::string& path, const arch::Program& program);
  ~TraceWriter();

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  /// Appends one committed-instruction record. Events must arrive in commit
  /// order (the order CaptureProbe::on_commit receives them in). Only the
  /// POD prefix of the event is serialized; the inst/rec pointers are not.
  void append(const sim::CommitEvent& event);

  /// Patches the record count into the header and closes the file. Called
  /// automatically by the destructor; idempotent.
  void finish();

  [[nodiscard]] std::uint64_t records_written() const { return count_; }

 private:
  void write_header(const arch::Program* program);

  std::ofstream out_;
  std::streampos count_pos_{};
  std::uint64_t count_ = 0;
  sim::CommitEvent prev_{};
  bool finished_ = false;
};

}  // namespace erel::trace
