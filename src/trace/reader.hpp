// Reader for the version-1 binary trace format. The header (and embedded
// program image, when present) is decoded eagerly by streaming only its
// bytes from the file; records are then decoded on demand through a small
// fixed-size read buffer, so a multi-gigabyte trace never has to fit in
// memory — `trace::replay_program` on a large trace costs only the program
// image:
//
//   trace::TraceReader reader(path);
//   while (auto ev = reader.next()) { ... }
//
// Malformed or truncated input aborts with a diagnostic (EREL_CHECK) —
// trace files are experiment artifacts, not untrusted input.
#pragma once

#include <cstdint>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "arch/program.hpp"
#include "sim/probe.hpp"
#include "trace/format.hpp"

namespace erel::trace {

/// ByteCursor's interface over a file instead of an in-memory buffer:
/// sequential bounds-checked decoding through a chunked read buffer.
/// `remaining()` counts to end-of-file, and every getter sets `ok = false`
/// (returning 0 / zero-fill) on truncated input.
class FileCursor {
 public:
  explicit FileCursor(const std::string& path);

  [[nodiscard]] bool is_open() const { return in_.is_open(); }
  [[nodiscard]] std::uint64_t position() const { return pos_; }
  [[nodiscard]] std::uint64_t remaining() const { return size_ - pos_; }

  /// Repositions the stream to absolute byte `offset` and clears `ok`.
  void seek(std::uint64_t offset);

  std::uint8_t u8();
  std::uint64_t uvarint();
  std::int64_t svarint() { return unzigzag(uvarint()); }
  std::uint32_t fixed32();
  std::uint64_t fixed64();

  /// Copies `n` raw bytes into `dst`; zero-fills on truncation.
  void raw(void* dst, std::size_t n);

  bool ok = true;

 private:
  /// Bytes buffered but not yet consumed; refills from the file when empty.
  [[nodiscard]] std::size_t buffered() const { return buf_len_ - buf_pos_; }
  void refill();

  static constexpr std::size_t kChunkBytes = 64 * 1024;

  std::ifstream in_;
  std::uint64_t size_ = 0;  // total file bytes
  std::uint64_t pos_ = 0;   // logical read position in the file
  std::vector<std::uint8_t> buf_;
  std::size_t buf_pos_ = 0;
  std::size_t buf_len_ = 0;
};

class TraceReader {
 public:
  explicit TraceReader(const std::string& path);

  [[nodiscard]] std::uint32_t version() const { return version_; }
  [[nodiscard]] std::uint64_t num_records() const { return num_records_; }
  [[nodiscard]] bool has_program() const { return has_program_; }

  /// The embedded program image; aborts unless has_program().
  [[nodiscard]] const arch::Program& program() const;

  /// Decodes the next record; std::nullopt after the last one.
  std::optional<sim::CommitEvent> next();

  /// Resets the record stream to the beginning.
  void rewind();

  /// All remaining records (convenience for tests and small traces).
  std::vector<sim::CommitEvent> read_all();

 private:
  FileCursor cursor_;
  std::uint64_t records_offset_ = 0;  // byte offset of the first record
  std::uint32_t version_ = 0;
  std::uint64_t num_records_ = 0;
  std::uint64_t records_read_ = 0;
  bool has_program_ = false;
  arch::Program program_;
  sim::CommitEvent prev_{};
};

}  // namespace erel::trace
