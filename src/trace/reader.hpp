// Reader for the version-1 binary trace format. Loads the file into memory,
// decodes the header (and embedded program image, when present) eagerly, and
// streams records on demand:
//
//   trace::TraceReader reader(path);
//   while (auto ev = reader.next()) { ... }
//
// Malformed or truncated input aborts with a diagnostic (EREL_CHECK) —
// trace files are experiment artifacts, not untrusted input.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "arch/program.hpp"
#include "sim/config.hpp"
#include "trace/format.hpp"

namespace erel::trace {

class TraceReader {
 public:
  explicit TraceReader(const std::string& path);

  [[nodiscard]] std::uint32_t version() const { return version_; }
  [[nodiscard]] std::uint64_t num_records() const { return num_records_; }
  [[nodiscard]] bool has_program() const { return has_program_; }

  /// The embedded program image; aborts unless has_program().
  [[nodiscard]] const arch::Program& program() const;

  /// Decodes the next record; std::nullopt after the last one.
  std::optional<sim::SimConfig::TraceEvent> next();

  /// Resets the record stream to the beginning.
  void rewind();

  /// All remaining records (convenience for tests and small traces).
  std::vector<sim::SimConfig::TraceEvent> read_all();

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t records_offset_ = 0;  // byte offset of the first record
  ByteCursor cursor_{};
  std::uint32_t version_ = 0;
  std::uint64_t num_records_ = 0;
  std::uint64_t records_read_ = 0;
  bool has_program_ = false;
  arch::Program program_;
  sim::SimConfig::TraceEvent prev_{};
};

}  // namespace erel::trace
