#include "trace/reader.hpp"

#include <fstream>

#include "common/log.hpp"

namespace erel::trace {

TraceReader::TraceReader(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  EREL_CHECK(in.is_open(), "cannot open trace file: ", path);
  const std::streamsize size = in.tellg();
  in.seekg(0);
  buf_.resize(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(buf_.data()), size);
  EREL_CHECK(in.good(), "trace file read failed: ", path);

  ByteCursor c{buf_.data(), buf_.data() + buf_.size()};
  std::array<std::uint8_t, 4> magic{};
  c.raw(magic.data(), magic.size());
  EREL_CHECK(c.ok && magic == kTraceMagic, "not a trace file: ", path);
  version_ = c.fixed32();
  EREL_CHECK(c.ok && version_ == kFormatVersion,
             "unsupported trace format version ", version_, " in ", path);
  has_program_ = c.u8() != 0;
  if (has_program_) {
    program_.entry = c.uvarint();
    program_.code_base = c.uvarint();
    const std::uint64_t code_count = c.uvarint();
    EREL_CHECK(c.ok && code_count <= c.remaining() / 4,
               "truncated code section in ", path);
    program_.code.resize(code_count);
    for (std::uint64_t i = 0; i < code_count; ++i)
      program_.code[i] = c.fixed32();
    const std::uint64_t seg_count = c.uvarint();
    for (std::uint64_t s = 0; c.ok && s < seg_count; ++s) {
      arch::DataSegment seg;
      seg.base = c.uvarint();
      const std::uint64_t bytes = c.uvarint();
      EREL_CHECK(c.ok && bytes <= c.remaining(), "truncated data segment in ",
                 path);
      seg.bytes.resize(bytes);
      c.raw(seg.bytes.data(), bytes);
      program_.data.push_back(std::move(seg));
    }
    const std::uint64_t sym_count = c.uvarint();
    for (std::uint64_t s = 0; c.ok && s < sym_count; ++s) {
      const std::uint64_t len = c.uvarint();
      EREL_CHECK(c.ok && len <= c.remaining(), "truncated symbol table in ",
                 path);
      std::string name(len, '\0');
      c.raw(name.data(), len);
      program_.symbols[name] = c.uvarint();
    }
  }
  num_records_ = c.fixed64();
  EREL_CHECK(c.ok, "truncated trace header in ", path);
  records_offset_ = static_cast<std::size_t>(c.p - buf_.data());
  // A capture that died before TraceWriter::finish() leaves the header's
  // count placeholder at 0 with record bytes still following — reject it
  // rather than presenting an apparently-valid empty trace.
  EREL_CHECK(num_records_ != 0 || c.remaining() == 0,
             "unfinished trace (record count never patched): ", path);
  rewind();
}

const arch::Program& TraceReader::program() const {
  EREL_CHECK(has_program_, "trace has no embedded program");
  return program_;
}

void TraceReader::rewind() {
  cursor_ = ByteCursor{buf_.data() + records_offset_,
                       buf_.data() + buf_.size()};
  records_read_ = 0;
  prev_ = sim::SimConfig::TraceEvent{};
}

std::optional<sim::SimConfig::TraceEvent> TraceReader::next() {
  if (records_read_ >= num_records_) {
    EREL_CHECK(cursor_.remaining() == 0,
               "trailing bytes after final trace record");
    return std::nullopt;
  }
  sim::SimConfig::TraceEvent ev;
  ev.seq = prev_.seq + static_cast<std::uint64_t>(cursor_.svarint());
  ev.pc = prev_.pc + static_cast<std::uint64_t>(cursor_.svarint());
  ev.encoding = static_cast<std::uint32_t>(cursor_.uvarint());
  ev.dispatch_cycle =
      prev_.dispatch_cycle + static_cast<std::uint64_t>(cursor_.svarint());
  ev.issue_cycle = ev.dispatch_cycle + cursor_.uvarint();
  ev.complete_cycle = ev.issue_cycle + cursor_.uvarint();
  ev.commit_cycle = ev.complete_cycle + cursor_.uvarint();
  EREL_CHECK(cursor_.ok, "truncated trace record ", records_read_);
  prev_ = ev;
  ++records_read_;
  return ev;
}

std::vector<sim::SimConfig::TraceEvent> TraceReader::read_all() {
  std::vector<sim::SimConfig::TraceEvent> events;
  events.reserve(static_cast<std::size_t>(num_records_ - records_read_));
  while (auto ev = next()) events.push_back(*ev);
  return events;
}

}  // namespace erel::trace
