#include "trace/reader.hpp"

#include <algorithm>
#include <cstring>

#include "common/log.hpp"

namespace erel::trace {

// --- FileCursor -----------------------------------------------------------

FileCursor::FileCursor(const std::string& path)
    : in_(path, std::ios::binary | std::ios::ate) {
  if (!in_.is_open()) return;
  size_ = static_cast<std::uint64_t>(in_.tellg());
  in_.seekg(0);
  buf_.resize(kChunkBytes);
}

void FileCursor::seek(std::uint64_t offset) {
  EREL_CHECK(offset <= size_, "seek past end of trace file");
  in_.clear();
  in_.seekg(static_cast<std::streamoff>(offset));
  pos_ = offset;
  buf_pos_ = buf_len_ = 0;
  ok = true;
}

void FileCursor::refill() {
  buf_pos_ = 0;
  buf_len_ = 0;
  const std::uint64_t want =
      std::min<std::uint64_t>(kChunkBytes, remaining());
  if (want == 0) return;
  in_.read(reinterpret_cast<char*>(buf_.data()),
           static_cast<std::streamsize>(want));
  EREL_CHECK(in_.gcount() == static_cast<std::streamsize>(want),
             "trace file read failed");
  buf_len_ = static_cast<std::size_t>(want);
}

std::uint8_t FileCursor::u8() {
  if (buffered() == 0) refill();
  if (buffered() == 0) {
    ok = false;
    return 0;
  }
  ++pos_;
  return buf_[buf_pos_++];
}

std::uint64_t FileCursor::uvarint() {
  std::uint64_t v = 0;
  unsigned shift = 0;
  while (shift < 64) {
    if (buffered() == 0) refill();
    if (buffered() == 0) {
      ok = false;
      return 0;
    }
    const std::uint8_t byte = buf_[buf_pos_++];
    ++pos_;
    v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return v;
    shift += 7;
  }
  ok = false;  // over-long varint
  return 0;
}

std::uint32_t FileCursor::fixed32() {
  std::uint8_t bytes[4];
  raw(bytes, 4);
  std::uint32_t v = 0;
  std::memcpy(&v, bytes, 4);
  return v;
}

std::uint64_t FileCursor::fixed64() {
  std::uint8_t bytes[8];
  raw(bytes, 8);
  std::uint64_t v = 0;
  std::memcpy(&v, bytes, 8);
  return v;
}

void FileCursor::raw(void* dst, std::size_t n) {
  if (remaining() < n) {
    ok = false;
    std::memset(dst, 0, n);
    return;
  }
  auto* out = static_cast<std::uint8_t*>(dst);
  while (n > 0) {
    if (buffered() == 0) refill();
    const std::size_t take = std::min(n, buffered());
    std::memcpy(out, buf_.data() + buf_pos_, take);
    buf_pos_ += take;
    pos_ += take;
    out += take;
    n -= take;
  }
}

// --- TraceReader ----------------------------------------------------------

TraceReader::TraceReader(const std::string& path) : cursor_(path) {
  EREL_CHECK(cursor_.is_open(), "cannot open trace file: ", path);

  std::array<std::uint8_t, 4> magic{};
  cursor_.raw(magic.data(), magic.size());
  EREL_CHECK(cursor_.ok && magic == kTraceMagic, "not a trace file: ", path);
  version_ = cursor_.fixed32();
  EREL_CHECK(cursor_.ok && version_ == kFormatVersion,
             "unsupported trace format version ", version_, " in ", path);
  has_program_ = cursor_.u8() != 0;
  if (has_program_) {
    program_.entry = cursor_.uvarint();
    program_.code_base = cursor_.uvarint();
    const std::uint64_t code_count = cursor_.uvarint();
    EREL_CHECK(cursor_.ok && code_count <= cursor_.remaining() / 4,
               "truncated code section in ", path);
    program_.code.resize(code_count);
    for (std::uint64_t i = 0; i < code_count; ++i)
      program_.code[i] = cursor_.fixed32();
    const std::uint64_t seg_count = cursor_.uvarint();
    for (std::uint64_t s = 0; cursor_.ok && s < seg_count; ++s) {
      arch::DataSegment seg;
      seg.base = cursor_.uvarint();
      const std::uint64_t bytes = cursor_.uvarint();
      EREL_CHECK(cursor_.ok && bytes <= cursor_.remaining(),
                 "truncated data segment in ", path);
      seg.bytes.resize(bytes);
      cursor_.raw(seg.bytes.data(), bytes);
      program_.data.push_back(std::move(seg));
    }
    const std::uint64_t sym_count = cursor_.uvarint();
    for (std::uint64_t s = 0; cursor_.ok && s < sym_count; ++s) {
      const std::uint64_t len = cursor_.uvarint();
      EREL_CHECK(cursor_.ok && len <= cursor_.remaining(),
                 "truncated symbol table in ", path);
      std::string name(len, '\0');
      cursor_.raw(name.data(), len);
      program_.symbols[name] = cursor_.uvarint();
    }
  }
  num_records_ = cursor_.fixed64();
  EREL_CHECK(cursor_.ok, "truncated trace header in ", path);
  records_offset_ = cursor_.position();
  // A capture that died before TraceWriter::finish() leaves the header's
  // count placeholder at 0 with record bytes still following — reject it
  // rather than presenting an apparently-valid empty trace.
  EREL_CHECK(num_records_ != 0 || cursor_.remaining() == 0,
             "unfinished trace (record count never patched): ", path);
}

const arch::Program& TraceReader::program() const {
  EREL_CHECK(has_program_, "trace has no embedded program");
  return program_;
}

void TraceReader::rewind() {
  cursor_.seek(records_offset_);
  records_read_ = 0;
  prev_ = sim::CommitEvent{};
}

std::optional<sim::CommitEvent> TraceReader::next() {
  if (records_read_ >= num_records_) {
    EREL_CHECK(cursor_.remaining() == 0,
               "trailing bytes after final trace record");
    return std::nullopt;
  }
  sim::CommitEvent ev;
  ev.seq = prev_.seq + static_cast<std::uint64_t>(cursor_.svarint());
  ev.pc = prev_.pc + static_cast<std::uint64_t>(cursor_.svarint());
  ev.encoding = static_cast<std::uint32_t>(cursor_.uvarint());
  ev.dispatch_cycle =
      prev_.dispatch_cycle + static_cast<std::uint64_t>(cursor_.svarint());
  ev.issue_cycle = ev.dispatch_cycle + cursor_.uvarint();
  ev.complete_cycle = ev.issue_cycle + cursor_.uvarint();
  ev.commit_cycle = ev.complete_cycle + cursor_.uvarint();
  EREL_CHECK(cursor_.ok, "truncated trace record ", records_read_);
  prev_ = ev;
  ++records_read_;
  return ev;
}

std::vector<sim::CommitEvent> TraceReader::read_all() {
  std::vector<sim::CommitEvent> events;
  events.reserve(static_cast<std::size_t>(num_records_ - records_read_));
  while (auto ev = next()) events.push_back(*ev);
  return events;
}

}  // namespace erel::trace
