// Binary serialization for arch::Checkpoint ('ERCK' container, version 1).
// Long functional fast-forwards are paid once, saved, and reused: a saved
// checkpoint plus the program is everything a detailed run needs to resume
// mid-program (pipeline::Core's checkpoint constructor).
#pragma once

#include <string>

#include "arch/checkpoint.hpp"

namespace erel::trace {

void save_checkpoint(const std::string& path, const arch::Checkpoint& ckpt);

arch::Checkpoint load_checkpoint(const std::string& path);

}  // namespace erel::trace
