#include "dev/machine.hpp"

#include "common/log.hpp"

namespace erel::dev {

namespace {

/// Deterministic RX byte stream: a synthetic "typist" cycling the lowercase
/// alphabet with a stride, so echoed checksums are nontrivial.
std::uint8_t rx_byte(std::uint64_t seq) {
  return static_cast<std::uint8_t>('a' + (seq * 7 + 3) % 26);
}

}  // namespace

void Machine::sync(std::uint64_t now) {
  if (pit_period_ != 0 && pit_next_ <= now) {
    // Closed form instead of a loop: long fast-forwards (sampled planning)
    // can cross many periods between syncs.
    const std::uint64_t fires = (now - pit_next_) / pit_period_ + 1;
    pit_ticks_ += fires;
    pit_next_ += fires * pit_period_;
    pending_ |= kIrqPit;
  }
  if (rx_period_ != 0) {
    while (rx_next_ <= now) {
      if (rx_fifo_.size() < kRxFifoCapacity) {
        rx_fifo_.push_back(rx_byte(rx_seq_));
      } else {
        ++rx_dropped_;
      }
      ++rx_seq_;
      rx_next_ += rx_period_;
      pending_ |= kIrqRx;
    }
  }
}

std::uint64_t Machine::deliver(std::uint64_t interrupted_pc) {
  EREL_CHECK(deliverable(), "deliver() with no deliverable interrupt");
  const std::uint64_t takeable = pending_ & mask_;
  const std::uint64_t line = takeable & (~takeable + 1);  // lowest set bit
  pending_ &= ~line;
  std::uint64_t index = 0;
  for (std::uint64_t bit = line; bit > 1; bit >>= 1) ++index;
  cause_ = index;
  epc_ = interrupted_pc;
  prev_mie_ = mie_;
  mie_ = false;
  return vector_;
}

std::uint64_t Machine::iret() {
  mie_ = prev_mie_;
  return epc_;
}

std::uint64_t Machine::next_event() const {
  std::uint64_t next = ~std::uint64_t{0};
  if (pit_period_ != 0 && pit_next_ < next) next = pit_next_;
  if (rx_period_ != 0 && rx_next_ < next) next = rx_next_;
  return next;
}

std::uint64_t Machine::reg_value(std::uint64_t offset) const {
  switch (offset) {
    case kIntcStatus: return pending_;
    case kIntcEnable: return mie_ ? 1 : 0;
    case kIntcMask: return mask_;
    case kIntcVector: return vector_;
    case kIntcEpc: return epc_;
    case kIntcCause: return cause_;
    case kPitReload: return pit_period_;
    case kPitCount:
      return pit_period_ == 0 ? 0 : pit_next_;  // absolute next deadline
    case kPitTicks: return pit_ticks_;
    case kConTxCount: return tx_count_;
    case kConTxSum: return tx_sum_;
    case kConRxPeriod: return rx_period_;
    case kConRxHead:
      return rx_fifo_.empty() ? ~std::uint64_t{0} : rx_fifo_.front();
    case kConRxCount: return rx_fifo_.size();
    case kConRxDropped: return rx_dropped_;
    default:
      return 0;  // unmapped / write-only offsets read as zero
  }
}

std::uint64_t Machine::read(std::uint64_t addr, unsigned size,
                            std::uint64_t now) {
  EREL_CHECK(is_mmio(addr) && addr % size == 0,
             "misaligned device read at ", addr);
  sync(now);
  const std::uint64_t word = reg_value((addr - kMmioBase) & ~std::uint64_t{7});
  if (size == 8) return word;
  const unsigned shift = 8 * static_cast<unsigned>(addr & 7);
  const std::uint64_t mask = (std::uint64_t{1} << (8 * size)) - 1;
  return (word >> shift) & mask;
}

void Machine::write(std::uint64_t addr, std::uint64_t value, unsigned size,
                    std::uint64_t now) {
  EREL_CHECK(is_mmio(addr), "device write outside the MMIO window: ", addr);
  EREL_CHECK(size == 8 && addr % 8 == 0,
             "device registers are 64-bit: use an aligned sd (pc-agnostic "
             "program bug) at address ", addr);
  armed_ = true;
  sync(now);
  switch (addr - kMmioBase) {
    case kIntcEnable:
      mie_ = (value & 1) != 0;
      break;
    case kIntcMask:
      mask_ = value;
      break;
    case kIntcVector:
      vector_ = value;
      break;
    case kIntcEpc:
      epc_ = value;
      break;
    case kIntcAck:
      pending_ &= ~value;
      break;
    case kPitReload:
      pit_period_ = value;
      pit_next_ = value == 0 ? 0 : now + value;
      break;
    case kConTx:
      ++tx_count_;
      tx_sum_ = tx_sum_ * 31 + (value & 0xFF);
      break;
    case kConRxPeriod:
      rx_period_ = value;
      rx_next_ = value == 0 ? 0 : now + value;
      break;
    case kConRxPop:
      if (!rx_fifo_.empty()) rx_fifo_.pop_front();
      break;
    default:
      break;  // read-only / unmapped offsets ignore writes
  }
}

std::vector<std::uint64_t> Machine::save() const {
  std::vector<std::uint64_t> words;
  words.reserve(18 + rx_fifo_.size());
  words.push_back(armed_ ? 1 : 0);
  words.push_back(mie_ ? 1 : 0);
  words.push_back(prev_mie_ ? 1 : 0);
  words.push_back(mask_);
  words.push_back(vector_);
  words.push_back(epc_);
  words.push_back(cause_);
  words.push_back(pending_);
  words.push_back(pit_period_);
  words.push_back(pit_next_);
  words.push_back(pit_ticks_);
  words.push_back(tx_count_);
  words.push_back(tx_sum_);
  words.push_back(rx_period_);
  words.push_back(rx_next_);
  words.push_back(rx_seq_);
  words.push_back(rx_dropped_);
  words.push_back(rx_fifo_.size());
  for (const std::uint8_t b : rx_fifo_) words.push_back(b);
  return words;
}

void Machine::load(const std::vector<std::uint64_t>& words) {
  *this = Machine{};
  if (words.empty()) return;  // pre-device checkpoint: reset state
  EREL_CHECK(words.size() >= 18, "malformed device checkpoint section");
  std::size_t i = 0;
  armed_ = words[i++] != 0;
  mie_ = words[i++] != 0;
  prev_mie_ = words[i++] != 0;
  mask_ = words[i++];
  vector_ = words[i++];
  epc_ = words[i++];
  cause_ = words[i++];
  pending_ = words[i++];
  pit_period_ = words[i++];
  pit_next_ = words[i++];
  pit_ticks_ = words[i++];
  tx_count_ = words[i++];
  tx_sum_ = words[i++];
  rx_period_ = words[i++];
  rx_next_ = words[i++];
  rx_seq_ = words[i++];
  rx_dropped_ = words[i++];
  const std::uint64_t fifo_size = words[i++];
  EREL_CHECK(fifo_size <= kRxFifoCapacity && words.size() == i + fifo_size,
             "malformed device checkpoint section");
  for (std::uint64_t k = 0; k < fifo_size; ++k)
    rx_fifo_.push_back(static_cast<std::uint8_t>(words[i + k]));
}

}  // namespace erel::dev
