// Memory-mapped device model: a programmable interval timer (PIT/RTC
// style), a console (TX sink + paced RX source), and a small interrupt
// controller — the machine's source of asynchronous control flow.
//
// Determinism contract (docs/interrupts.md): device time is the count of
// architecturally retired instructions, never cycles. Every engine — the
// byte-accurate functional path, the decode-once fast path, the pipeline's
// commit stage, sampled windows resumed from checkpoints — calls sync() at
// the same retirement boundaries and performs MMIO accesses with the same
// `now`, so interrupts are latched and delivered at identical instruction
// boundaries everywhere and commit streams stay bit-identical.
//
// `now` convention: every method taking `now` receives the number of
// instructions retired *before* the current one (the retirement boundary).
// sync(now) latches all timer/RX events with deadline <= now; an MMIO
// access performed by instruction N+1 therefore passes now = N and never
// observes events the delivery check at boundary N could not.
//
// MMIO reads are side-effect-free by design: consuming an RX byte is an
// explicit store to kConRxPop, never a read side effect. A flushed
// at-head load can thus be re-executed (or discarded) without the device
// double-stepping — the one hazard that would break replay determinism.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

namespace erel::dev {

class Machine {
 public:
  /// MMIO window (4 KB at the top of the 32-bit range; workloads reach it
  /// with a single `li`). Device registers are 64-bit, 8-byte aligned.
  static constexpr std::uint64_t kMmioBase = 0xFFFF0000ull;
  static constexpr std::uint64_t kMmioBytes = 0x1000ull;

  /// Pipeline access latency for device loads (uncached, fixed).
  static constexpr unsigned kMmioLatency = 6;

  // Register offsets from kMmioBase.
  static constexpr std::uint64_t kIntcStatus = 0x00;  // R: pending lines
  static constexpr std::uint64_t kIntcEnable = 0x08;  // RW: bit0 = MIE
  static constexpr std::uint64_t kIntcMask = 0x10;    // RW: per-line enable
  static constexpr std::uint64_t kIntcVector = 0x18;  // RW: handler pc, 0=off
  static constexpr std::uint64_t kIntcEpc = 0x20;     // RW: interrupted pc
  static constexpr std::uint64_t kIntcCause = 0x28;   // R: last line index
  static constexpr std::uint64_t kIntcAck = 0x30;     // W: clear pending bits
  static constexpr std::uint64_t kPitReload = 0x40;   // RW: period, 0 = off
  static constexpr std::uint64_t kPitCount = 0x48;    // R: next fire deadline
  static constexpr std::uint64_t kPitTicks = 0x50;    // R: total fires
  static constexpr std::uint64_t kConTx = 0x80;       // W: emit byte
  static constexpr std::uint64_t kConTxCount = 0x88;  // R: bytes emitted
  static constexpr std::uint64_t kConTxSum = 0x90;    // R: rolling checksum
  static constexpr std::uint64_t kConRxPeriod = 0x98; // RW: arrival pace, 0=off
  static constexpr std::uint64_t kConRxHead = 0xA0;   // R: next byte, ~0=empty
  static constexpr std::uint64_t kConRxPop = 0xA8;    // W: consume head byte
  static constexpr std::uint64_t kConRxCount = 0xB0;  // R: bytes queued
  static constexpr std::uint64_t kConRxDropped = 0xB8;  // R: overrun count

  // Interrupt lines (bit positions in STATUS/MASK).
  static constexpr std::uint64_t kIrqPit = 1ull << 0;
  static constexpr std::uint64_t kIrqRx = 1ull << 1;

  static constexpr std::size_t kRxFifoCapacity = 64;

  [[nodiscard]] static bool is_mmio(std::uint64_t addr) {
    return addr - kMmioBase < kMmioBytes;
  }

  /// True until the program touches the device: the engines' per-boundary
  /// delivery checks are gated on this, so device-free workloads pay one
  /// branch per retirement boundary and nothing else.
  [[nodiscard]] bool quiet() const { return !armed_; }

  /// Latches every timer fire / RX arrival with deadline <= now into the
  /// pending lines. Idempotent; `now` must be non-decreasing across calls.
  void sync(std::uint64_t now);

  /// True when a latched, unmasked line can be taken (vector installed and
  /// master enable set). Callers sync() first.
  [[nodiscard]] bool deliverable() const {
    return vector_ != 0 && mie_ && (pending_ & mask_) != 0;
  }

  /// Takes the highest-priority (lowest-numbered) deliverable line: records
  /// EPC/CAUSE, auto-acks the line, saves and clears the master enable.
  /// Returns the handler vector. Single-level: nesting resumes only after
  /// IRET (or an explicit ENABLE write from the handler).
  std::uint64_t deliver(std::uint64_t interrupted_pc);

  /// IRET semantics: restores the pre-interrupt master enable and returns
  /// the EPC to resume at.
  std::uint64_t iret();

  [[nodiscard]] std::uint64_t epc() const { return epc_; }
  [[nodiscard]] std::uint64_t vector() const { return vector_; }

  /// Absolute boundary of the next timer/RX deadline, or ~0 when none is
  /// armed. The fast path caps its uninterrupted dispatch window here so it
  /// re-checks delivery at exactly the right boundary.
  [[nodiscard]] std::uint64_t next_event() const;

  /// MMIO load by the instruction retiring at boundary `now`+1. Reads are
  /// pure: no FIFO pop, no ack, no latch beyond sync(now). Sizes 1/2/4/8;
  /// `addr` must be size-aligned (callers fault misaligned accesses first).
  std::uint64_t read(std::uint64_t addr, unsigned size, std::uint64_t now);

  /// MMIO store (commit-time in the pipeline). Registers are 64-bit: only
  /// 8-byte aligned `sd` stores are architecturally valid.
  void write(std::uint64_t addr, std::uint64_t value, unsigned size,
             std::uint64_t now);

  /// Checkpoint serialization: the full device state as words (FIFO bytes
  /// widened). load() accepts save() output or an empty vector (reset
  /// state — pre-device checkpoint files decode to that).
  [[nodiscard]] std::vector<std::uint64_t> save() const;
  void load(const std::vector<std::uint64_t>& words);

  bool operator==(const Machine&) const = default;

 private:
  [[nodiscard]] std::uint64_t reg_value(std::uint64_t offset) const;

  bool armed_ = false;
  // Interrupt controller.
  bool mie_ = false;       // master interrupt enable
  bool prev_mie_ = false;  // MIE at delivery, restored by IRET
  std::uint64_t mask_ = 0;
  std::uint64_t vector_ = 0;
  std::uint64_t epc_ = 0;
  std::uint64_t cause_ = 0;
  std::uint64_t pending_ = 0;
  // Programmable interval timer.
  std::uint64_t pit_period_ = 0;
  std::uint64_t pit_next_ = 0;  // absolute deadline, valid when period > 0
  std::uint64_t pit_ticks_ = 0;
  // Console.
  std::uint64_t tx_count_ = 0;
  std::uint64_t tx_sum_ = 0;
  std::uint64_t rx_period_ = 0;
  std::uint64_t rx_next_ = 0;  // absolute deadline, valid when period > 0
  std::uint64_t rx_seq_ = 0;
  std::uint64_t rx_dropped_ = 0;
  std::deque<std::uint8_t> rx_fifo_;
};

}  // namespace erel::dev
