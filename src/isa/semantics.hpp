// Pure execution semantics, shared by the in-order functional oracle and the
// out-of-order timing pipeline so the two can never diverge on arithmetic.
//
// Values are passed as raw 64-bit patterns; FP opcodes reinterpret them as
// IEEE-754 doubles. All operations are fully defined (no UB): divides by
// zero, INT64_MIN/-1, NaN propagation and out-of-range conversions all have
// fixed results (documented next to each case).
#pragma once

#include <cstdint>

#include "isa/isa.hpp"

namespace erel::isa {

/// Computes the destination value for every non-memory, non-control opcode
/// (and the link value is handled by the caller for JAL/JALR).
/// `a` = first source value, `b` = second source value, `imm` = immediate.
std::uint64_t exec_alu(Opcode op, std::uint64_t a, std::uint64_t b,
                       std::int32_t imm);

/// Branch condition for conditional branches.
bool branch_taken(Opcode op, std::uint64_t a, std::uint64_t b);

/// Effective address for loads/stores: base + byte offset.
inline std::uint64_t effective_address(std::uint64_t base, std::int32_t imm) {
  return base + static_cast<std::uint64_t>(static_cast<std::int64_t>(imm));
}

/// Canonicalizes NaNs so FP results are bit-deterministic across platforms.
std::uint64_t canonical_fp(double value);

}  // namespace erel::isa
