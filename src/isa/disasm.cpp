#include <cstdio>
#include <string>

#include "isa/isa.hpp"

namespace erel::isa {

namespace {

std::string reg_name(RegClass cls, unsigned idx) {
  char buf[8];
  std::snprintf(buf, sizeof buf, "%c%u", cls == RegClass::Fp ? 'f' : 'r', idx);
  return buf;
}

std::string hex_target(std::uint64_t pc, std::int64_t offset_insts) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "0x%llx",
                static_cast<unsigned long long>(
                    pc + static_cast<std::uint64_t>(offset_insts * 4)));
  return buf;
}

}  // namespace

std::string disassemble(const DecodedInst& inst, std::uint64_t pc) {
  const OpInfo& info = inst.info();
  const std::string m{info.mnemonic};
  switch (info.format) {
    case Format::R: {
      std::string out = m + " " + reg_name(info.dst, inst.rd) + ", " +
                        reg_name(info.src1, inst.rs1);
      if (info.src2 != RegClass::None)
        out += ", " + reg_name(info.src2, inst.rs2);
      return out;
    }
    case Format::I:
      if (inst.is_load()) {
        return m + " " + reg_name(info.dst, inst.rd) + ", " +
               std::to_string(inst.imm) + "(" + reg_name(info.src1, inst.rs1) +
               ")";
      }
      if (inst.is_indirect_jump()) {
        return m + " " + reg_name(info.dst, inst.rd) + ", " +
               reg_name(info.src1, inst.rs1) + ", " + std::to_string(inst.imm);
      }
      return m + " " + reg_name(info.dst, inst.rd) + ", " +
             reg_name(info.src1, inst.rs1) + ", " + std::to_string(inst.imm);
    case Format::U:
      return m + " " + reg_name(info.dst, inst.rd) + ", " +
             std::to_string(inst.imm);
    case Format::B:
      return m + " " + reg_name(info.src1, inst.rs1) + ", " +
             reg_name(info.src2, inst.rs2) + ", " + hex_target(pc, inst.imm);
    case Format::S:
      return m + " " + reg_name(info.src2, inst.rs2) + ", " +
             std::to_string(inst.imm) + "(" + reg_name(info.src1, inst.rs1) +
             ")";
    case Format::J:
      return m + " " + reg_name(info.dst, inst.rd) + ", " +
             hex_target(pc, inst.imm);
    case Format::N:
      return m;
  }
  return m;
}

}  // namespace erel::isa
