// ISA definition for the erelsim target machine.
//
// The simulated ISA is a 64-bit RISC with 32 integer (r0..r31, r0 == 0) and
// 32 floating-point (f0..f31) logical registers — the L=32+32 configuration
// assumed throughout the paper. Instructions are 32 bits wide with four
// formats (R/I/U and the split-immediate B/S/J forms, see decode.cpp).
//
// A single OpInfo table describes every opcode (operand classes, immediate
// format, functional-unit class, latency, behavioural flags); the decoder,
// disassembler, assembler and execution semantics are all driven from it.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string_view>

namespace erel::isa {

/// Number of logical registers per class (the paper's L).
inline constexpr unsigned kNumLogicalRegs = 32;

/// Register class of an operand slot.
enum class RegClass : std::uint8_t { None, Int, Fp };

/// Functional-unit classes, matching the paper's Table 2 FU mix.
enum class FuClass : std::uint8_t {
  None,    // control-only ops that occupy no FU result slot (HALT)
  IntAlu,  // 8 units, latency 1
  IntMul,  // 4 units, latency 7 (int divide shares this unit, see DESIGN.md)
  FpAlu,   // 6 units, latency 4 ("simple FP")
  FpMul,   // 4 units, latency 4
  FpDiv,   // 4 units, latency 16, unpipelined
  LdSt,    // 4 load/store ports; latency comes from the cache model
};
inline constexpr unsigned kNumFuClasses = 7;

/// Instruction encoding formats.
enum class Format : std::uint8_t {
  R,  // op rd, rs1, rs2
  I,  // op rd, rs1, imm14      (also loads: op rd, imm14(rs1); JALR)
  U,  // op rd, imm19           (LUI)
  B,  // op rs1, rs2, imm14     (conditional branches; imm in instructions)
  S,  // op rs2, imm14(rs1)     (stores; imm in bytes)
  J,  // op rd, imm19           (JAL; imm in instructions)
  N,  // op                     (no operands: HALT, ILLEGAL)
};

enum class Opcode : std::uint8_t {
  ILLEGAL = 0,  // opcode 0 so that zero-filled memory decodes as illegal
  // Integer ALU, latency 1.
  ADD, SUB, AND, OR, XOR, SLL, SRL, SRA, SLT, SLTU,
  ADDI, ANDI, ORI, XORI, SLLI, SRLI, SRAI, SLTI, SLTIU, LUI,
  // Integer multiply/divide (IntMul unit).
  MUL, DIV, REM,
  // FP simple (FpAlu unit).
  FADD, FSUB, FMIN, FMAX, FABS, FNEG, FMOV,
  FEQ, FLT, FLE,      // FP compare, integer destination
  CVTDI,              // int -> double   (fp dest, int src1)
  CVTID,              // double -> int   (int dest, fp src1), truncating
  // FP multiply / divide.
  FMUL, FDIV, FSQRT,
  // Memory.
  LD, LW, LBU,        // int loads: 64-bit, 32-bit sign-extended, byte zero-ext
  SD, SW, SB,         // int stores
  FLD, FSD,           // FP 64-bit load/store
  // Control.
  BEQ, BNE, BLT, BGE, BLTU, BGEU,
  JAL, JALR,
  HALT,
  IRET,  // return from interrupt: resume at the device EPC, restore enable
  kCount,
};
inline constexpr unsigned kNumOpcodes = static_cast<unsigned>(Opcode::kCount);

/// Behavioural flags (bitmask).
enum : std::uint32_t {
  kFlagLoad = 1u << 0,
  kFlagStore = 1u << 1,
  kFlagCondBranch = 1u << 2,
  kFlagDirectJump = 1u << 3,   // JAL: target known at decode
  kFlagIndirectJump = 1u << 4, // JALR: target known at execute
  kFlagHalt = 1u << 5,
  kFlagCall = 1u << 6,         // pushes return address (JAL/JALR with rd=ra)
  kFlagIret = 1u << 7,         // interrupt return (serializing, redirects pc)
};

/// Static description of one opcode.
struct OpInfo {
  std::string_view mnemonic;
  Format format;
  FuClass fu;
  std::uint8_t latency;      // execution latency in cycles (LdSt: address calc)
  RegClass dst;              // class of rd (None if no destination)
  RegClass src1;             // class of rs1
  RegClass src2;             // class of rs2
  std::uint32_t flags;
  std::uint8_t mem_bytes;    // access size for loads/stores, else 0
};

namespace detail {
/// Static opcode descriptor table (built in isa.cpp).
extern const std::array<OpInfo, kNumOpcodes> kOpTable;
}  // namespace detail

/// Table lookup. Inline: the flag/class/latency helpers below sit on every
/// hot path of both engines (tens of queries per simulated instruction), so
/// each must collapse to a load+mask rather than a function call. Bounds are
/// the caller's contract; decode() never produces an out-of-range opcode.
inline const OpInfo& op_info(Opcode op) {
  return detail::kOpTable[static_cast<unsigned>(op)];
}

/// Decoded instruction: architectural fields only (no microarchitectural
/// state). `imm` is already sign/zero-extended per the opcode's convention.
struct DecodedInst {
  Opcode op = Opcode::ILLEGAL;
  std::uint8_t rd = 0;
  std::uint8_t rs1 = 0;
  std::uint8_t rs2 = 0;
  std::int32_t imm = 0;

  [[nodiscard]] const OpInfo& info() const { return op_info(op); }
  [[nodiscard]] RegClass dst_class() const { return info().dst; }
  [[nodiscard]] RegClass src1_class() const { return info().src1; }
  [[nodiscard]] RegClass src2_class() const { return info().src2; }
  [[nodiscard]] bool has_dst() const {
    // Writes to integer r0 are architecturally discarded; they allocate no
    // rename register (the assembler only emits rd=0 for genuine discards).
    return info().dst != RegClass::None &&
           !(info().dst == RegClass::Int && rd == 0);
  }
  [[nodiscard]] bool is_load() const { return info().flags & kFlagLoad; }
  [[nodiscard]] bool is_store() const { return info().flags & kFlagStore; }
  [[nodiscard]] bool is_mem() const { return is_load() || is_store(); }
  [[nodiscard]] bool is_cond_branch() const {
    return info().flags & kFlagCondBranch;
  }
  [[nodiscard]] bool is_direct_jump() const {
    return info().flags & kFlagDirectJump;
  }
  [[nodiscard]] bool is_indirect_jump() const {
    return info().flags & kFlagIndirectJump;
  }
  /// Any control-transfer instruction.
  [[nodiscard]] bool is_control() const {
    return is_cond_branch() || is_direct_jump() || is_indirect_jump();
  }
  [[nodiscard]] bool is_halt() const { return info().flags & kFlagHalt; }
  [[nodiscard]] bool is_iret() const { return info().flags & kFlagIret; }
  [[nodiscard]] unsigned mem_bytes() const { return info().mem_bytes; }
};

/// Encodes a decoded instruction into its 32-bit machine form. Immediates
/// out of field range abort (the assembler range-checks beforehand).
std::uint32_t encode(const DecodedInst& inst);

/// Decodes a 32-bit word. Unknown opcodes decode as ILLEGAL (which raises a
/// fault only if the instruction commits — wrong-path garbage is harmless).
DecodedInst decode(std::uint32_t word);

/// Parses a mnemonic; nullopt when unknown.
std::optional<Opcode> opcode_from_mnemonic(std::string_view mnemonic);

/// Renders one instruction as assembly text (PC needed for branch targets).
std::string disassemble(const DecodedInst& inst, std::uint64_t pc);

/// Immediate field widths (bits) per format, exposed for the assembler's
/// range diagnostics and for encoding tests.
inline constexpr unsigned kImmBitsI = 14;
inline constexpr unsigned kImmBitsB = 14;  // instruction-granular offset
inline constexpr unsigned kImmBitsS = 14;  // byte-granular offset
inline constexpr unsigned kImmBitsU = 19;
inline constexpr unsigned kImmBitsJ = 19;  // instruction-granular offset

}  // namespace erel::isa
