#include "isa/semantics.hpp"

#include <cmath>
#include <limits>

#include "common/bits.hpp"
#include "common/log.hpp"

namespace erel::isa {

namespace {

constexpr std::uint64_t kCanonicalNan = 0x7ff8000000000000ull;

std::int64_t s(std::uint64_t v) { return static_cast<std::int64_t>(v); }
std::uint64_t u(std::int64_t v) { return static_cast<std::uint64_t>(v); }

/// Signed division with fixed edge cases: x/0 == -1, INT64_MIN/-1 == INT64_MIN
/// (matching the common RISC convention and avoiding C++ UB).
std::int64_t safe_div(std::int64_t a, std::int64_t b) {
  if (b == 0) return -1;
  if (a == std::numeric_limits<std::int64_t>::min() && b == -1) return a;
  return a / b;
}

/// Remainder with matching conventions: x%0 == x, INT64_MIN%-1 == 0.
std::int64_t safe_rem(std::int64_t a, std::int64_t b) {
  if (b == 0) return a;
  if (a == std::numeric_limits<std::int64_t>::min() && b == -1) return 0;
  return a % b;
}

/// double -> int64 without UB: NaN -> 0, out-of-range saturates.
std::int64_t fp_to_int(double d) {
  if (std::isnan(d)) return 0;
  constexpr double kMax = 9.2233720368547758e18;  // ~INT64_MAX
  if (d >= kMax) return std::numeric_limits<std::int64_t>::max();
  if (d <= -kMax) return std::numeric_limits<std::int64_t>::min();
  return static_cast<std::int64_t>(d);
}

}  // namespace

std::uint64_t canonical_fp(double value) {
  if (std::isnan(value)) return kCanonicalNan;
  return f2u(value);
}

std::uint64_t exec_alu(Opcode op, std::uint64_t a, std::uint64_t b,
                       std::int32_t imm) {
  const std::uint64_t uimm = static_cast<std::uint32_t>(imm);  // zero-extended
  const std::int64_t simm = imm;                               // sign value
  switch (op) {
    case Opcode::ADD: return a + b;
    case Opcode::SUB: return a - b;
    case Opcode::AND: return a & b;
    case Opcode::OR: return a | b;
    case Opcode::XOR: return a ^ b;
    case Opcode::SLL: return a << (b & 63);
    case Opcode::SRL: return a >> (b & 63);
    case Opcode::SRA: return u(s(a) >> (b & 63));
    case Opcode::SLT: return s(a) < s(b) ? 1 : 0;
    case Opcode::SLTU: return a < b ? 1 : 0;

    case Opcode::ADDI: return a + u(simm);
    // Logical immediates zero-extend (MIPS convention); arithmetic ones sign-
    // extend. The assembler's `li` expansion relies on ORI zero-extension.
    case Opcode::ANDI: return a & uimm;
    case Opcode::ORI: return a | uimm;
    case Opcode::XORI: return a ^ uimm;
    case Opcode::SLLI: return a << (imm & 63);
    case Opcode::SRLI: return a >> (imm & 63);
    case Opcode::SRAI: return u(s(a) >> (imm & 63));
    case Opcode::SLTI: return s(a) < simm ? 1 : 0;
    case Opcode::SLTIU: return a < u(simm) ? 1 : 0;
    // LUI materializes imm19 << 13 (sign-extended), the assembler pairs it
    // with ORI to synthesize 32-bit constants.
    case Opcode::LUI: return u(simm << 13);

    case Opcode::MUL: return a * b;
    case Opcode::DIV: return u(safe_div(s(a), s(b)));
    case Opcode::REM: return u(safe_rem(s(a), s(b)));

    case Opcode::FADD: return canonical_fp(u2f(a) + u2f(b));
    case Opcode::FSUB: return canonical_fp(u2f(a) - u2f(b));
    case Opcode::FMUL: return canonical_fp(u2f(a) * u2f(b));
    case Opcode::FDIV: return canonical_fp(u2f(a) / u2f(b));
    case Opcode::FSQRT:
      // sqrt of a negative operand yields the canonical NaN.
      return u2f(a) < 0.0 ? kCanonicalNan : canonical_fp(std::sqrt(u2f(a)));
    case Opcode::FMIN:
      return canonical_fp(std::fmin(u2f(a), u2f(b)));
    case Opcode::FMAX:
      return canonical_fp(std::fmax(u2f(a), u2f(b)));
    case Opcode::FABS: return canonical_fp(std::fabs(u2f(a)));
    case Opcode::FNEG: return canonical_fp(-u2f(a));
    case Opcode::FMOV: return a;
    case Opcode::FEQ: return u2f(a) == u2f(b) ? 1 : 0;
    case Opcode::FLT: return u2f(a) < u2f(b) ? 1 : 0;
    case Opcode::FLE: return u2f(a) <= u2f(b) ? 1 : 0;
    case Opcode::CVTDI: return canonical_fp(static_cast<double>(s(a)));
    case Opcode::CVTID: return u(fp_to_int(u2f(a)));

    default:
      EREL_FATAL("exec_alu on non-ALU opcode ",
                 std::string(op_info(op).mnemonic));
  }
}

bool branch_taken(Opcode op, std::uint64_t a, std::uint64_t b) {
  switch (op) {
    case Opcode::BEQ: return a == b;
    case Opcode::BNE: return a != b;
    case Opcode::BLT: return s(a) < s(b);
    case Opcode::BGE: return s(a) >= s(b);
    case Opcode::BLTU: return a < b;
    case Opcode::BGEU: return a >= b;
    default:
      EREL_FATAL("branch_taken on non-branch opcode ",
                 std::string(op_info(op).mnemonic));
  }
}

}  // namespace erel::isa
