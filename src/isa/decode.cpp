// Binary encoding / decoding.
//
// Word layout (bit 31 .. bit 0):
//   [31:24] opcode
//   [23:19] a-field   (rd for R/I/U/J; imm[13:9] for B/S)
//   [18:14] b-field   (rs1 for R/I/B/S; imm[18:14] for U/J)
//   [13:9]  c-field   (rs2 for R/B/S; imm[13:9] for I/U/J)
//   [8:0]   d-field   (imm[8:0] for all immediate-bearing formats)
//
// Immediates:
//   I: imm14 = {c,d} sign-extended, bytes (loads/JALR) or raw (ALU).
//   U: imm19 = {b,c,d} sign-extended (LUI shifts it left by 13 at execute).
//   B: imm14 = {a,d} sign-extended, in 4-byte instruction units.
//   S: imm14 = {a,d} sign-extended, in bytes.
//   J: imm19 = {b,c,d} sign-extended, in 4-byte instruction units.
#include "common/bits.hpp"
#include "common/log.hpp"
#include "isa/isa.hpp"

namespace erel::isa {

namespace {

constexpr unsigned kOpLo = 24, kALo = 19, kBLo = 14, kCLo = 9, kDLo = 0;

std::uint32_t pack_imm14_cd(std::int32_t imm) {
  EREL_CHECK(fits_signed(imm, 14), "imm14 out of range: ", imm);
  const auto u = static_cast<std::uint32_t>(imm) & 0x3fffu;
  return put_bits(put_bits(0, kCLo, 5, u >> 9), kDLo, 9, u & 0x1ffu);
}

std::uint32_t pack_imm14_ad(std::int32_t imm) {
  EREL_CHECK(fits_signed(imm, 14), "imm14 out of range: ", imm);
  const auto u = static_cast<std::uint32_t>(imm) & 0x3fffu;
  return put_bits(put_bits(0, kALo, 5, u >> 9), kDLo, 9, u & 0x1ffu);
}

std::uint32_t pack_imm19_bcd(std::int32_t imm) {
  EREL_CHECK(fits_signed(imm, 19), "imm19 out of range: ", imm);
  const auto u = static_cast<std::uint32_t>(imm) & 0x7ffffu;
  std::uint32_t w = 0;
  w = put_bits(w, kBLo, 5, u >> 14);
  w = put_bits(w, kCLo, 5, (u >> 9) & 0x1fu);
  w = put_bits(w, kDLo, 9, u & 0x1ffu);
  return w;
}

std::int32_t unpack_imm14_cd(std::uint32_t w) {
  const std::uint32_t u = (bits(w, kCLo, 5) << 9) | bits(w, kDLo, 9);
  return static_cast<std::int32_t>(sext(u, 14));
}

std::int32_t unpack_imm14_ad(std::uint32_t w) {
  const std::uint32_t u = (bits(w, kALo, 5) << 9) | bits(w, kDLo, 9);
  return static_cast<std::int32_t>(sext(u, 14));
}

std::int32_t unpack_imm19_bcd(std::uint32_t w) {
  const std::uint32_t u =
      (bits(w, kBLo, 5) << 14) | (bits(w, kCLo, 5) << 9) | bits(w, kDLo, 9);
  return static_cast<std::int32_t>(sext(u, 19));
}

}  // namespace

std::uint32_t encode(const DecodedInst& inst) {
  const OpInfo& info = inst.info();
  std::uint32_t w = put_bits(0, kOpLo, 8, static_cast<std::uint32_t>(inst.op));
  switch (info.format) {
    case Format::R:
      w = put_bits(w, kALo, 5, inst.rd);
      w = put_bits(w, kBLo, 5, inst.rs1);
      w = put_bits(w, kCLo, 5, inst.rs2);
      break;
    case Format::I:
      w = put_bits(w, kALo, 5, inst.rd);
      w = put_bits(w, kBLo, 5, inst.rs1);
      w |= pack_imm14_cd(inst.imm);
      break;
    case Format::U:
      w = put_bits(w, kALo, 5, inst.rd);
      w |= pack_imm19_bcd(inst.imm);
      break;
    case Format::B:
      w = put_bits(w, kBLo, 5, inst.rs1);
      w = put_bits(w, kCLo, 5, inst.rs2);
      w |= pack_imm14_ad(inst.imm);
      break;
    case Format::S:
      w = put_bits(w, kBLo, 5, inst.rs1);
      w = put_bits(w, kCLo, 5, inst.rs2);
      w |= pack_imm14_ad(inst.imm);
      break;
    case Format::J:
      w = put_bits(w, kALo, 5, inst.rd);
      w |= pack_imm19_bcd(inst.imm);
      break;
    case Format::N:
      break;
  }
  return w;
}

DecodedInst decode(std::uint32_t word) {
  DecodedInst inst;
  const std::uint32_t opfield = bits(word, kOpLo, 8);
  if (opfield >= kNumOpcodes) {
    inst.op = Opcode::ILLEGAL;
    return inst;
  }
  inst.op = static_cast<Opcode>(opfield);
  const OpInfo& info = inst.info();
  switch (info.format) {
    case Format::R:
      inst.rd = static_cast<std::uint8_t>(bits(word, kALo, 5));
      inst.rs1 = static_cast<std::uint8_t>(bits(word, kBLo, 5));
      inst.rs2 = static_cast<std::uint8_t>(bits(word, kCLo, 5));
      break;
    case Format::I:
      inst.rd = static_cast<std::uint8_t>(bits(word, kALo, 5));
      inst.rs1 = static_cast<std::uint8_t>(bits(word, kBLo, 5));
      inst.imm = unpack_imm14_cd(word);
      break;
    case Format::U:
      inst.rd = static_cast<std::uint8_t>(bits(word, kALo, 5));
      inst.imm = unpack_imm19_bcd(word);
      break;
    case Format::B:
      inst.rs1 = static_cast<std::uint8_t>(bits(word, kBLo, 5));
      inst.rs2 = static_cast<std::uint8_t>(bits(word, kCLo, 5));
      inst.imm = unpack_imm14_ad(word);
      break;
    case Format::S:
      inst.rs1 = static_cast<std::uint8_t>(bits(word, kBLo, 5));
      inst.rs2 = static_cast<std::uint8_t>(bits(word, kCLo, 5));
      inst.imm = unpack_imm14_ad(word);
      break;
    case Format::J:
      inst.rd = static_cast<std::uint8_t>(bits(word, kALo, 5));
      inst.imm = unpack_imm19_bcd(word);
      break;
    case Format::N:
      break;
  }
  return inst;
}

}  // namespace erel::isa
