#include "isa/isa.hpp"

#include <array>
#include <string>
#include <unordered_map>

#include "common/log.hpp"

namespace erel::isa {

namespace {

using enum RegClass;
using enum Format;
using F = FuClass;

constexpr std::uint8_t kLatIntAlu = 1;
constexpr std::uint8_t kLatIntMul = 7;
constexpr std::uint8_t kLatIntDiv = 12;
constexpr std::uint8_t kLatFpAlu = 4;
constexpr std::uint8_t kLatFpMul = 4;
constexpr std::uint8_t kLatFpDiv = 16;
constexpr std::uint8_t kLatAgen = 1;  // address generation before cache access

constexpr std::array<OpInfo, kNumOpcodes> build_table() {
  std::array<OpInfo, kNumOpcodes> t{};
  auto set = [&t](Opcode op, OpInfo info) {
    t[static_cast<unsigned>(op)] = info;
  };
  set(Opcode::ILLEGAL, {"illegal", N, F::IntAlu, 1, None, None, None, 0, 0});

  // Integer ALU register forms.
  set(Opcode::ADD,  {"add",  R, F::IntAlu, kLatIntAlu, Int, Int, Int, 0, 0});
  set(Opcode::SUB,  {"sub",  R, F::IntAlu, kLatIntAlu, Int, Int, Int, 0, 0});
  set(Opcode::AND,  {"and",  R, F::IntAlu, kLatIntAlu, Int, Int, Int, 0, 0});
  set(Opcode::OR,   {"or",   R, F::IntAlu, kLatIntAlu, Int, Int, Int, 0, 0});
  set(Opcode::XOR,  {"xor",  R, F::IntAlu, kLatIntAlu, Int, Int, Int, 0, 0});
  set(Opcode::SLL,  {"sll",  R, F::IntAlu, kLatIntAlu, Int, Int, Int, 0, 0});
  set(Opcode::SRL,  {"srl",  R, F::IntAlu, kLatIntAlu, Int, Int, Int, 0, 0});
  set(Opcode::SRA,  {"sra",  R, F::IntAlu, kLatIntAlu, Int, Int, Int, 0, 0});
  set(Opcode::SLT,  {"slt",  R, F::IntAlu, kLatIntAlu, Int, Int, Int, 0, 0});
  set(Opcode::SLTU, {"sltu", R, F::IntAlu, kLatIntAlu, Int, Int, Int, 0, 0});

  // Integer ALU immediate forms.
  set(Opcode::ADDI,  {"addi",  I, F::IntAlu, kLatIntAlu, Int, Int, None, 0, 0});
  set(Opcode::ANDI,  {"andi",  I, F::IntAlu, kLatIntAlu, Int, Int, None, 0, 0});
  set(Opcode::ORI,   {"ori",   I, F::IntAlu, kLatIntAlu, Int, Int, None, 0, 0});
  set(Opcode::XORI,  {"xori",  I, F::IntAlu, kLatIntAlu, Int, Int, None, 0, 0});
  set(Opcode::SLLI,  {"slli",  I, F::IntAlu, kLatIntAlu, Int, Int, None, 0, 0});
  set(Opcode::SRLI,  {"srli",  I, F::IntAlu, kLatIntAlu, Int, Int, None, 0, 0});
  set(Opcode::SRAI,  {"srai",  I, F::IntAlu, kLatIntAlu, Int, Int, None, 0, 0});
  set(Opcode::SLTI,  {"slti",  I, F::IntAlu, kLatIntAlu, Int, Int, None, 0, 0});
  set(Opcode::SLTIU, {"sltiu", I, F::IntAlu, kLatIntAlu, Int, Int, None, 0, 0});
  set(Opcode::LUI,   {"lui",   U, F::IntAlu, kLatIntAlu, Int, None, None, 0, 0});

  // Integer multiply / divide (shared IntMul unit).
  set(Opcode::MUL, {"mul", R, F::IntMul, kLatIntMul, Int, Int, Int, 0, 0});
  set(Opcode::DIV, {"div", R, F::IntMul, kLatIntDiv, Int, Int, Int, 0, 0});
  set(Opcode::REM, {"rem", R, F::IntMul, kLatIntDiv, Int, Int, Int, 0, 0});

  // FP simple.
  set(Opcode::FADD, {"fadd", R, F::FpAlu, kLatFpAlu, Fp, Fp, Fp, 0, 0});
  set(Opcode::FSUB, {"fsub", R, F::FpAlu, kLatFpAlu, Fp, Fp, Fp, 0, 0});
  set(Opcode::FMIN, {"fmin", R, F::FpAlu, kLatFpAlu, Fp, Fp, Fp, 0, 0});
  set(Opcode::FMAX, {"fmax", R, F::FpAlu, kLatFpAlu, Fp, Fp, Fp, 0, 0});
  set(Opcode::FABS, {"fabs", R, F::FpAlu, kLatFpAlu, Fp, Fp, None, 0, 0});
  set(Opcode::FNEG, {"fneg", R, F::FpAlu, kLatFpAlu, Fp, Fp, None, 0, 0});
  set(Opcode::FMOV, {"fmov", R, F::FpAlu, kLatFpAlu, Fp, Fp, None, 0, 0});
  set(Opcode::FEQ,  {"feq",  R, F::FpAlu, kLatFpAlu, Int, Fp, Fp, 0, 0});
  set(Opcode::FLT,  {"flt",  R, F::FpAlu, kLatFpAlu, Int, Fp, Fp, 0, 0});
  set(Opcode::FLE,  {"fle",  R, F::FpAlu, kLatFpAlu, Int, Fp, Fp, 0, 0});
  set(Opcode::CVTDI, {"cvtdi", R, F::FpAlu, kLatFpAlu, Fp, Int, None, 0, 0});
  set(Opcode::CVTID, {"cvtid", R, F::FpAlu, kLatFpAlu, Int, Fp, None, 0, 0});

  // FP multiply / divide.
  set(Opcode::FMUL,  {"fmul",  R, F::FpMul, kLatFpMul, Fp, Fp, Fp, 0, 0});
  set(Opcode::FDIV,  {"fdiv",  R, F::FpDiv, kLatFpDiv, Fp, Fp, Fp, 0, 0});
  set(Opcode::FSQRT, {"fsqrt", R, F::FpDiv, kLatFpDiv, Fp, Fp, None, 0, 0});

  // Memory. Loads use the I format (rd, imm(rs1)); stores the S format
  // (rs2 holds the data, rs1 the base).
  set(Opcode::LD,  {"ld",  I, F::LdSt, kLatAgen, Int, Int, None, kFlagLoad, 8});
  set(Opcode::LW,  {"lw",  I, F::LdSt, kLatAgen, Int, Int, None, kFlagLoad, 4});
  set(Opcode::LBU, {"lbu", I, F::LdSt, kLatAgen, Int, Int, None, kFlagLoad, 1});
  set(Opcode::SD,  {"sd",  S, F::LdSt, kLatAgen, None, Int, Int, kFlagStore, 8});
  set(Opcode::SW,  {"sw",  S, F::LdSt, kLatAgen, None, Int, Int, kFlagStore, 4});
  set(Opcode::SB,  {"sb",  S, F::LdSt, kLatAgen, None, Int, Int, kFlagStore, 1});
  set(Opcode::FLD, {"fld", I, F::LdSt, kLatAgen, Fp, Int, None, kFlagLoad, 8});
  set(Opcode::FSD, {"fsd", S, F::LdSt, kLatAgen, None, Int, Fp, kFlagStore, 8});

  // Control.
  set(Opcode::BEQ,  {"beq",  B, F::IntAlu, 1, None, Int, Int, kFlagCondBranch, 0});
  set(Opcode::BNE,  {"bne",  B, F::IntAlu, 1, None, Int, Int, kFlagCondBranch, 0});
  set(Opcode::BLT,  {"blt",  B, F::IntAlu, 1, None, Int, Int, kFlagCondBranch, 0});
  set(Opcode::BGE,  {"bge",  B, F::IntAlu, 1, None, Int, Int, kFlagCondBranch, 0});
  set(Opcode::BLTU, {"bltu", B, F::IntAlu, 1, None, Int, Int, kFlagCondBranch, 0});
  set(Opcode::BGEU, {"bgeu", B, F::IntAlu, 1, None, Int, Int, kFlagCondBranch, 0});
  set(Opcode::JAL,  {"jal",  J, F::IntAlu, 1, Int, None, None,
                     kFlagDirectJump | kFlagCall, 0});
  set(Opcode::JALR, {"jalr", I, F::IntAlu, 1, Int, Int, None,
                     kFlagIndirectJump | kFlagCall, 0});
  set(Opcode::HALT, {"halt", N, F::None, 1, None, None, None, kFlagHalt, 0});
  set(Opcode::IRET, {"iret", N, F::None, 1, None, None, None, kFlagIret, 0});
  return t;
}

}  // namespace

namespace detail {
constinit const std::array<OpInfo, kNumOpcodes> kOpTable = build_table();
}  // namespace detail

std::optional<Opcode> opcode_from_mnemonic(std::string_view mnemonic) {
  static const std::unordered_map<std::string_view, Opcode> map = [] {
    std::unordered_map<std::string_view, Opcode> m;
    for (unsigned i = 1; i < kNumOpcodes; ++i) {
      const auto op = static_cast<Opcode>(i);
      m.emplace(op_info(op).mnemonic, op);
    }
    return m;
  }();
  const auto it = map.find(mnemonic);
  if (it == map.end()) return std::nullopt;
  return it->second;
}

}  // namespace erel::isa
