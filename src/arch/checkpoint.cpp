#include "arch/checkpoint.hpp"

#include "arch/arch_state.hpp"
#include "arch/memory.hpp"
#include "common/log.hpp"

namespace erel::arch {

void capture_memory(const SparseMemory& mem, Checkpoint& out) {
  // Bulk path: one sorted sweep over the resident set instead of a page-map
  // lookup per page (sampled planning captures a checkpoint per unit, so
  // this runs thousands of times on long programs).
  out.pages.clear();
  out.pages.reserve(mem.resident_pages());
  for (const auto& [base, data] : mem.pages_snapshot()) {
    EREL_CHECK(data != nullptr);
    out.pages.push_back(
        {base, std::vector<std::uint8_t>(data, data + SparseMemory::kPageBytes)});
  }
}

void restore_memory(const Checkpoint& ckpt, SparseMemory& mem) {
  mem.clear();
  for (const Checkpoint::PageImage& page : ckpt.pages) {
    EREL_CHECK(page.bytes.size() == SparseMemory::kPageBytes,
               "malformed checkpoint page at base ", page.base);
    mem.write_block(page.base, page.bytes);
  }
}

Checkpoint capture(const ArchState& state) {
  Checkpoint ckpt;
  ckpt.pc = state.pc();
  ckpt.icount = state.instructions_executed();
  ckpt.halted = state.halted();
  for (unsigned r = 0; r < isa::kNumLogicalRegs; ++r) {
    ckpt.int_regs[r] = state.int_reg(r);
    ckpt.fp_regs[r] = state.fp_reg(r);
  }
  ckpt.dev = state.device().save();
  capture_memory(state.memory(), ckpt);
  return ckpt;
}

void restore(const Checkpoint& ckpt, ArchState& state) {
  for (unsigned r = 0; r < isa::kNumLogicalRegs; ++r) {
    state.set_int_reg(r, ckpt.int_regs[r]);
    state.set_fp_reg(r, ckpt.fp_regs[r]);
  }
  state.device().load(ckpt.dev);
  restore_memory(ckpt, state.memory());
  state.set_pc(ckpt.pc);
  state.set_resume_point(ckpt.icount, ckpt.halted);
}

}  // namespace erel::arch
