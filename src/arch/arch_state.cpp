#include "arch/arch_state.hpp"

#include <cstring>

#include "common/bits.hpp"
#include "common/log.hpp"
#include "isa/semantics.hpp"

namespace erel::arch {

using isa::DecodedInst;
using isa::Opcode;
using isa::RegClass;

void load_program(const Program& program, SparseMemory& mem) {
  std::vector<std::uint8_t> code_bytes(program.code.size() * 4);
  for (std::size_t i = 0; i < program.code.size(); ++i)
    std::memcpy(code_bytes.data() + 4 * i, &program.code[i], 4);
  mem.write_block(program.code_base, code_bytes);
  for (const DataSegment& seg : program.data) mem.write_block(seg.base, seg.bytes);
}

ArchState::ArchState(const Program& program) : pc_(program.entry) {
  load_program(program, mem_);
}

std::uint64_t ArchState::int_reg(unsigned idx) const {
  EREL_CHECK(idx < isa::kNumLogicalRegs);
  return x_[idx];
}

std::uint64_t ArchState::fp_reg(unsigned idx) const {
  EREL_CHECK(idx < isa::kNumLogicalRegs);
  return f_[idx];
}

void ArchState::set_int_reg(unsigned idx, std::uint64_t value) {
  EREL_CHECK(idx < isa::kNumLogicalRegs);
  if (idx != 0) x_[idx] = value;
}

void ArchState::set_fp_reg(unsigned idx, std::uint64_t value) {
  EREL_CHECK(idx < isa::kNumLogicalRegs);
  f_[idx] = value;
}

StepInfo ArchState::step() {
  StepInfo info;
  info.pc = pc_;
  if (halted_) {
    info.halted = true;
    info.next_pc = pc_;
    return info;
  }

  const std::uint32_t word = mem_.read_u32(pc_);
  const DecodedInst inst = isa::decode(word);
  info.inst = inst;
  ++icount_;

  auto src = [this](RegClass cls, unsigned idx) -> std::uint64_t {
    switch (cls) {
      case RegClass::Int: return x_[idx];
      case RegClass::Fp: return f_[idx];
      case RegClass::None: return 0;
    }
    return 0;
  };
  const std::uint64_t a = src(inst.src1_class(), inst.rs1);
  const std::uint64_t b = src(inst.src2_class(), inst.rs2);

  std::uint64_t next_pc = pc_ + 4;

  if (inst.op == Opcode::ILLEGAL) {
    // An architecturally-executed illegal instruction is a program bug; halt
    // and flag it so tests catch runaway control flow.
    info.illegal = true;
    info.halted = true;
    halted_ = true;
    info.next_pc = pc_;
    return info;
  }

  if (inst.is_halt()) {
    halted_ = true;
    info.halted = true;
    info.next_pc = pc_;
    return info;
  }

  if (inst.is_load()) {
    const std::uint64_t addr = isa::effective_address(a, inst.imm);
    std::uint64_t value = mem_.read(addr, inst.mem_bytes());
    if (inst.op == Opcode::LW) value = static_cast<std::uint64_t>(sext(value, 32));
    info.is_load = true;
    info.mem_addr = addr;
    info.mem_bytes = inst.mem_bytes();
    info.has_dst = inst.has_dst();
    info.dst_class = inst.dst_class();
    info.dst_reg = inst.rd;
    info.dst_value = value;
    if (info.has_dst) {
      if (info.dst_class == RegClass::Int) set_int_reg(inst.rd, value);
      else set_fp_reg(inst.rd, value);
    }
  } else if (inst.is_store()) {
    const std::uint64_t addr = isa::effective_address(a, inst.imm);
    info.is_store = true;
    info.mem_addr = addr;
    info.mem_bytes = inst.mem_bytes();
    info.store_value = b;
    mem_.write(addr, b, inst.mem_bytes());
  } else if (inst.is_cond_branch()) {
    if (isa::branch_taken(inst.op, a, b))
      next_pc = pc_ + static_cast<std::uint64_t>(std::int64_t{inst.imm} * 4);
  } else if (inst.is_direct_jump()) {
    info.has_dst = inst.has_dst();
    info.dst_class = RegClass::Int;
    info.dst_reg = inst.rd;
    info.dst_value = pc_ + 4;
    if (info.has_dst) set_int_reg(inst.rd, pc_ + 4);
    next_pc = pc_ + static_cast<std::uint64_t>(std::int64_t{inst.imm} * 4);
  } else if (inst.is_indirect_jump()) {
    // Link value is read before the target in case rd == rs1.
    const std::uint64_t target =
        (a + static_cast<std::uint64_t>(std::int64_t{inst.imm})) & ~std::uint64_t{3};
    info.has_dst = inst.has_dst();
    info.dst_class = RegClass::Int;
    info.dst_reg = inst.rd;
    info.dst_value = pc_ + 4;
    if (info.has_dst) set_int_reg(inst.rd, pc_ + 4);
    next_pc = target;
  } else {
    // Plain ALU / FPU operation.
    const std::uint64_t value = isa::exec_alu(inst.op, a, b, inst.imm);
    info.has_dst = inst.has_dst();
    info.dst_class = inst.dst_class();
    info.dst_reg = inst.rd;
    info.dst_value = value;
    if (info.has_dst) {
      if (info.dst_class == RegClass::Int) set_int_reg(inst.rd, value);
      else set_fp_reg(inst.rd, value);
    }
  }

  pc_ = next_pc;
  info.next_pc = next_pc;
  return info;
}

std::uint64_t ArchState::run(std::uint64_t max_steps) {
  std::uint64_t steps = 0;
  while (!halted_ && steps < max_steps) {
    step();
    ++steps;
  }
  return steps;
}

}  // namespace erel::arch
