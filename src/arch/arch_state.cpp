#include "arch/arch_state.hpp"

#include <cstring>

#include "common/bits.hpp"
#include "common/log.hpp"
#include "isa/semantics.hpp"

namespace erel::arch {

using isa::DecodedInst;
using isa::Opcode;
using isa::RegClass;

void load_program(const Program& program, SparseMemory& mem) {
  std::vector<std::uint8_t> code_bytes(program.code.size() * 4);
  for (std::size_t i = 0; i < program.code.size(); ++i)
    std::memcpy(code_bytes.data() + 4 * i, &program.code[i], 4);
  mem.write_block(program.code_base, code_bytes);
  for (const DataSegment& seg : program.data) mem.write_block(seg.base, seg.bytes);
}

ArchState::ArchState(const Program& program, const DecodedProgram* decoded)
    : pc_(program.entry), decoded_(decoded) {
  load_program(program, mem_);
}

std::uint64_t ArchState::int_reg(unsigned idx) const {
  EREL_CHECK(idx < isa::kNumLogicalRegs);
  return x_[idx];
}

std::uint64_t ArchState::fp_reg(unsigned idx) const {
  EREL_CHECK(idx < isa::kNumLogicalRegs);
  return f_[idx];
}

void ArchState::set_int_reg(unsigned idx, std::uint64_t value) {
  EREL_CHECK(idx < isa::kNumLogicalRegs);
  if (idx != 0) x_[idx] = value;
}

void ArchState::set_fp_reg(unsigned idx, std::uint64_t value) {
  EREL_CHECK(idx < isa::kNumLogicalRegs);
  f_[idx] = value;
}

StepInfo ArchState::step() {
  StepInfo info;
  info.pc = pc_;
  if (halted_) {
    info.halted = true;
    info.next_pc = pc_;
    info.kind = MicroKind::kHalt;
    return info;
  }
  if (decoded_ != nullptr && !code_dirty_ && decoded_->contains(pc_)) {
    step_decoded(decoded_->at(pc_), info);
  } else {
    step_bytes(info);
  }
  return info;
}

void ArchState::step_decoded(const MicroOp& mop, StepInfo& info) {
  info.inst = mop.inst;
  info.kind = mop.kind;
  ++icount_;

  const std::uint64_t a = src_value(mop.src1, mop.inst.rs1);
  const std::uint64_t b = src_value(mop.src2, mop.inst.rs2);
  std::uint64_t next_pc = pc_ + 4;

  switch (mop.kind) {
    case MicroKind::kIllegal:
      info.illegal = true;
      info.halted = true;
      halted_ = true;
      info.next_pc = pc_;
      return;
    case MicroKind::kHalt:
      halted_ = true;
      info.halted = true;
      info.next_pc = pc_;
      return;
    case MicroKind::kLoad: {
      const std::uint64_t addr = a + static_cast<std::uint64_t>(mop.simm);
      std::uint64_t value = mem_.read(addr, mop.mem_bytes);
      if (mop.sext32) value = static_cast<std::uint64_t>(sext(value, 32));
      info.is_load = true;
      info.mem_addr = addr;
      info.mem_bytes = mop.mem_bytes;
      info.has_dst = mop.has_dst;
      info.dst_class = mop.dst;
      info.dst_reg = mop.inst.rd;
      info.dst_value = value;
      if (mop.has_dst) {
        if (mop.dst == RegClass::Int) set_int_reg(mop.inst.rd, value);
        else set_fp_reg(mop.inst.rd, value);
      }
      break;
    }
    case MicroKind::kStore: {
      const std::uint64_t addr = a + static_cast<std::uint64_t>(mop.simm);
      info.is_store = true;
      info.mem_addr = addr;
      info.mem_bytes = mop.mem_bytes;
      info.store_value = b;
      note_store(addr, mop.mem_bytes);
      mem_.write(addr, b, mop.mem_bytes);
      break;
    }
    case MicroKind::kCondBranch:
      if (isa::branch_taken(mop.inst.op, a, b))
        next_pc = pc_ + static_cast<std::uint64_t>(mop.disp);
      break;
    case MicroKind::kDirectJump:
      info.has_dst = mop.has_dst;
      info.dst_class = RegClass::Int;
      info.dst_reg = mop.inst.rd;
      info.dst_value = pc_ + 4;
      if (mop.has_dst) set_int_reg(mop.inst.rd, pc_ + 4);
      next_pc = pc_ + static_cast<std::uint64_t>(mop.disp);
      break;
    case MicroKind::kIndirectJump: {
      // Link value is read before the target in case rd == rs1.
      const std::uint64_t target =
          (a + static_cast<std::uint64_t>(mop.simm)) & ~std::uint64_t{3};
      info.has_dst = mop.has_dst;
      info.dst_class = RegClass::Int;
      info.dst_reg = mop.inst.rd;
      info.dst_value = pc_ + 4;
      if (mop.has_dst) set_int_reg(mop.inst.rd, pc_ + 4);
      next_pc = target;
      break;
    }
    case MicroKind::kAlu: {
      const std::uint64_t value = isa::exec_alu(mop.inst.op, a, b, mop.inst.imm);
      info.has_dst = mop.has_dst;
      info.dst_class = mop.dst;
      info.dst_reg = mop.inst.rd;
      info.dst_value = value;
      if (mop.has_dst) {
        if (mop.dst == RegClass::Int) set_int_reg(mop.inst.rd, value);
        else set_fp_reg(mop.inst.rd, value);
      }
      break;
    }
  }

  pc_ = next_pc;
  info.next_pc = next_pc;
}

void ArchState::step_bytes(StepInfo& info) {
  const std::uint32_t word = mem_.read_u32(pc_);
  const DecodedInst inst = isa::decode(word);
  info.inst = inst;
  info.kind = DecodedProgram::kind_of(inst);
  ++icount_;

  const std::uint64_t a = src_value(inst.src1_class(), inst.rs1);
  const std::uint64_t b = src_value(inst.src2_class(), inst.rs2);

  std::uint64_t next_pc = pc_ + 4;

  if (inst.op == Opcode::ILLEGAL) {
    // An architecturally-executed illegal instruction is a program bug; halt
    // and flag it so tests catch runaway control flow.
    info.illegal = true;
    info.halted = true;
    halted_ = true;
    info.next_pc = pc_;
    return;
  }

  if (inst.is_halt()) {
    halted_ = true;
    info.halted = true;
    info.next_pc = pc_;
    return;
  }

  if (inst.is_load()) {
    const std::uint64_t addr = isa::effective_address(a, inst.imm);
    std::uint64_t value = mem_.read(addr, inst.mem_bytes());
    if (inst.op == Opcode::LW) value = static_cast<std::uint64_t>(sext(value, 32));
    info.is_load = true;
    info.mem_addr = addr;
    info.mem_bytes = inst.mem_bytes();
    info.has_dst = inst.has_dst();
    info.dst_class = inst.dst_class();
    info.dst_reg = inst.rd;
    info.dst_value = value;
    if (info.has_dst) {
      if (info.dst_class == RegClass::Int) set_int_reg(inst.rd, value);
      else set_fp_reg(inst.rd, value);
    }
  } else if (inst.is_store()) {
    const std::uint64_t addr = isa::effective_address(a, inst.imm);
    info.is_store = true;
    info.mem_addr = addr;
    info.mem_bytes = inst.mem_bytes();
    info.store_value = b;
    note_store(addr, inst.mem_bytes());
    mem_.write(addr, b, inst.mem_bytes());
  } else if (inst.is_cond_branch()) {
    if (isa::branch_taken(inst.op, a, b))
      next_pc = pc_ + static_cast<std::uint64_t>(std::int64_t{inst.imm} * 4);
  } else if (inst.is_direct_jump()) {
    info.has_dst = inst.has_dst();
    info.dst_class = RegClass::Int;
    info.dst_reg = inst.rd;
    info.dst_value = pc_ + 4;
    if (info.has_dst) set_int_reg(inst.rd, pc_ + 4);
    next_pc = pc_ + static_cast<std::uint64_t>(std::int64_t{inst.imm} * 4);
  } else if (inst.is_indirect_jump()) {
    // Link value is read before the target in case rd == rs1.
    const std::uint64_t target =
        (a + static_cast<std::uint64_t>(std::int64_t{inst.imm})) & ~std::uint64_t{3};
    info.has_dst = inst.has_dst();
    info.dst_class = RegClass::Int;
    info.dst_reg = inst.rd;
    info.dst_value = pc_ + 4;
    if (info.has_dst) set_int_reg(inst.rd, pc_ + 4);
    next_pc = target;
  } else {
    // Plain ALU / FPU operation.
    const std::uint64_t value = isa::exec_alu(inst.op, a, b, inst.imm);
    info.has_dst = inst.has_dst();
    info.dst_class = inst.dst_class();
    info.dst_reg = inst.rd;
    info.dst_value = value;
    if (info.has_dst) {
      if (info.dst_class == RegClass::Int) set_int_reg(inst.rd, value);
      else set_fp_reg(inst.rd, value);
    }
  }

  pc_ = next_pc;
  info.next_pc = next_pc;
}

std::uint64_t ArchState::run(std::uint64_t max_steps) {
  std::uint64_t steps = 0;
  while (!halted_ && steps < max_steps) {
    step();
    ++steps;
  }
  return steps;
}

}  // namespace erel::arch
