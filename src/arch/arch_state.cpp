#include "arch/arch_state.hpp"

#include <cstring>

#include "common/bits.hpp"
#include "common/log.hpp"
#include "isa/semantics.hpp"

// Threaded dispatch for the run() interpreter loop: on GCC/Clang each
// micro-op body jumps through a computed-goto label table, giving the branch
// predictor one indirect-branch site per *successor* op instead of a single
// shared switch dispatch. Define EREL_NO_COMPUTED_GOTO to force the portable
// switch loop (also the path non-GNU compilers take).
#if !defined(EREL_NO_COMPUTED_GOTO) && (defined(__GNUC__) || defined(__clang__))
#define EREL_COMPUTED_GOTO 1
#else
#define EREL_COMPUTED_GOTO 0
#endif

namespace erel::arch {

using isa::DecodedInst;
using isa::Opcode;
using isa::RegClass;

void load_program(const Program& program, SparseMemory& mem) {
  std::vector<std::uint8_t> code_bytes(program.code.size() * 4);
  for (std::size_t i = 0; i < program.code.size(); ++i)
    std::memcpy(code_bytes.data() + 4 * i, &program.code[i], 4);
  mem.write_block(program.code_base, code_bytes);
  for (const DataSegment& seg : program.data) mem.write_block(seg.base, seg.bytes);
}

ArchState::ArchState(const Program& program, const DecodedProgram* decoded)
    : pc_(program.entry), decoded_(decoded) {
  load_program(program, mem_);
}

std::uint64_t ArchState::int_reg(unsigned idx) const {
  EREL_CHECK(idx < isa::kNumLogicalRegs);
  return x_[idx];
}

std::uint64_t ArchState::fp_reg(unsigned idx) const {
  EREL_CHECK(idx < isa::kNumLogicalRegs);
  return f_[idx];
}

void ArchState::set_int_reg(unsigned idx, std::uint64_t value) {
  EREL_CHECK(idx < isa::kNumLogicalRegs);
  if (idx != 0) x_[idx] = value;
}

void ArchState::set_fp_reg(unsigned idx, std::uint64_t value) {
  EREL_CHECK(idx < isa::kNumLogicalRegs);
  f_[idx] = value;
}

StepInfo ArchState::step() {
  StepInfo info;
  if (halted_) {
    info.pc = pc_;
    info.halted = true;
    info.next_pc = pc_;
    info.kind = MicroKind::kHalt;
    return info;
  }
  // Retirement-boundary interrupt delivery: icount_ instructions have
  // retired, the one about to execute has not. The pipeline's commit stage
  // performs the same check at the same boundary (head of the ROS), so both
  // engines redirect to the handler before the same instruction.
  if (!dev_.quiet()) {
    dev_.sync(icount_);
    if (dev_.deliverable()) pc_ = dev_.deliver(pc_);
  }
  info.pc = pc_;
  if (decoded_ != nullptr && !code_dirty_ && decoded_->contains(pc_)) {
    step_decoded(decoded_->at(pc_), info);
  } else {
    step_bytes(info);
  }
  return info;
}

void ArchState::step_decoded(const MicroOp& mop, StepInfo& info) {
  info.inst = mop.inst;
  info.kind = mop.kind;
  ++icount_;

  const std::uint64_t a = src_value(mop.src1, mop.inst.rs1);
  const std::uint64_t b = src_value(mop.src2, mop.inst.rs2);
  std::uint64_t next_pc = pc_ + 4;

  switch (mop.kind) {
    case MicroKind::kIllegal:
      info.illegal = true;
      info.halted = true;
      halted_ = true;
      info.next_pc = pc_;
      return;
    case MicroKind::kHalt:
      halted_ = true;
      info.halted = true;
      info.next_pc = pc_;
      return;
    case MicroKind::kIret:
      next_pc = dev_.iret();
      break;
    case MicroKind::kLoad: {
      const std::uint64_t addr = a + static_cast<std::uint64_t>(mop.simm);
      // MMIO accesses pass the retirement boundary (icount_ was already
      // incremented for this instruction, hence the -1).
      std::uint64_t value = dev::Machine::is_mmio(addr)
                                ? dev_.read(addr, mop.mem_bytes, icount_ - 1)
                                : mem_.read(addr, mop.mem_bytes);
      if (mop.sext32) value = static_cast<std::uint64_t>(sext(value, 32));
      info.is_load = true;
      info.mem_addr = addr;
      info.mem_bytes = mop.mem_bytes;
      info.has_dst = mop.has_dst;
      info.dst_class = mop.dst;
      info.dst_reg = mop.inst.rd;
      info.dst_value = value;
      if (mop.has_dst) {
        if (mop.dst == RegClass::Int) set_int_reg(mop.inst.rd, value);
        else set_fp_reg(mop.inst.rd, value);
      }
      break;
    }
    case MicroKind::kStore: {
      const std::uint64_t addr = a + static_cast<std::uint64_t>(mop.simm);
      info.is_store = true;
      info.mem_addr = addr;
      info.mem_bytes = mop.mem_bytes;
      info.store_value = b;
      if (dev::Machine::is_mmio(addr)) {
        dev_.write(addr, b, mop.mem_bytes, icount_ - 1);
      } else {
        note_store(addr, mop.mem_bytes);
        mem_.write(addr, b, mop.mem_bytes);
      }
      break;
    }
    case MicroKind::kCondBranch:
      if (isa::branch_taken(mop.inst.op, a, b))
        next_pc = pc_ + static_cast<std::uint64_t>(mop.disp);
      break;
    case MicroKind::kDirectJump:
      info.has_dst = mop.has_dst;
      info.dst_class = RegClass::Int;
      info.dst_reg = mop.inst.rd;
      info.dst_value = pc_ + 4;
      if (mop.has_dst) set_int_reg(mop.inst.rd, pc_ + 4);
      next_pc = pc_ + static_cast<std::uint64_t>(mop.disp);
      break;
    case MicroKind::kIndirectJump: {
      // Link value is read before the target in case rd == rs1.
      const std::uint64_t target =
          (a + static_cast<std::uint64_t>(mop.simm)) & ~std::uint64_t{3};
      info.has_dst = mop.has_dst;
      info.dst_class = RegClass::Int;
      info.dst_reg = mop.inst.rd;
      info.dst_value = pc_ + 4;
      if (mop.has_dst) set_int_reg(mop.inst.rd, pc_ + 4);
      next_pc = target;
      break;
    }
    case MicroKind::kAlu: {
      const std::uint64_t value = isa::exec_alu(mop.inst.op, a, b, mop.inst.imm);
      info.has_dst = mop.has_dst;
      info.dst_class = mop.dst;
      info.dst_reg = mop.inst.rd;
      info.dst_value = value;
      if (mop.has_dst) {
        if (mop.dst == RegClass::Int) set_int_reg(mop.inst.rd, value);
        else set_fp_reg(mop.inst.rd, value);
      }
      break;
    }
  }

  pc_ = next_pc;
  info.next_pc = next_pc;
}

void ArchState::step_bytes(StepInfo& info) {
  const std::uint32_t word = mem_.read_u32(pc_);
  const DecodedInst inst = isa::decode(word);
  info.inst = inst;
  info.kind = DecodedProgram::kind_of(inst);
  ++icount_;

  const std::uint64_t a = src_value(inst.src1_class(), inst.rs1);
  const std::uint64_t b = src_value(inst.src2_class(), inst.rs2);

  std::uint64_t next_pc = pc_ + 4;

  if (inst.op == Opcode::ILLEGAL) {
    // An architecturally-executed illegal instruction is a program bug; halt
    // and flag it so tests catch runaway control flow.
    info.illegal = true;
    info.halted = true;
    halted_ = true;
    info.next_pc = pc_;
    return;
  }

  if (inst.is_halt()) {
    halted_ = true;
    info.halted = true;
    info.next_pc = pc_;
    return;
  }

  if (inst.is_iret()) {
    next_pc = dev_.iret();
    pc_ = next_pc;
    info.next_pc = next_pc;
    return;
  }

  if (inst.is_load()) {
    const std::uint64_t addr = isa::effective_address(a, inst.imm);
    std::uint64_t value = dev::Machine::is_mmio(addr)
                              ? dev_.read(addr, inst.mem_bytes(), icount_ - 1)
                              : mem_.read(addr, inst.mem_bytes());
    if (inst.op == Opcode::LW) value = static_cast<std::uint64_t>(sext(value, 32));
    info.is_load = true;
    info.mem_addr = addr;
    info.mem_bytes = inst.mem_bytes();
    info.has_dst = inst.has_dst();
    info.dst_class = inst.dst_class();
    info.dst_reg = inst.rd;
    info.dst_value = value;
    if (info.has_dst) {
      if (info.dst_class == RegClass::Int) set_int_reg(inst.rd, value);
      else set_fp_reg(inst.rd, value);
    }
  } else if (inst.is_store()) {
    const std::uint64_t addr = isa::effective_address(a, inst.imm);
    info.is_store = true;
    info.mem_addr = addr;
    info.mem_bytes = inst.mem_bytes();
    info.store_value = b;
    if (dev::Machine::is_mmio(addr)) {
      dev_.write(addr, b, inst.mem_bytes(), icount_ - 1);
    } else {
      note_store(addr, inst.mem_bytes());
      mem_.write(addr, b, inst.mem_bytes());
    }
  } else if (inst.is_cond_branch()) {
    if (isa::branch_taken(inst.op, a, b))
      next_pc = pc_ + static_cast<std::uint64_t>(std::int64_t{inst.imm} * 4);
  } else if (inst.is_direct_jump()) {
    info.has_dst = inst.has_dst();
    info.dst_class = RegClass::Int;
    info.dst_reg = inst.rd;
    info.dst_value = pc_ + 4;
    if (info.has_dst) set_int_reg(inst.rd, pc_ + 4);
    next_pc = pc_ + static_cast<std::uint64_t>(std::int64_t{inst.imm} * 4);
  } else if (inst.is_indirect_jump()) {
    // Link value is read before the target in case rd == rs1.
    const std::uint64_t target =
        (a + static_cast<std::uint64_t>(std::int64_t{inst.imm})) & ~std::uint64_t{3};
    info.has_dst = inst.has_dst();
    info.dst_class = RegClass::Int;
    info.dst_reg = inst.rd;
    info.dst_value = pc_ + 4;
    if (info.has_dst) set_int_reg(inst.rd, pc_ + 4);
    next_pc = target;
  } else {
    // Plain ALU / FPU operation.
    const std::uint64_t value = isa::exec_alu(inst.op, a, b, inst.imm);
    info.has_dst = inst.has_dst();
    info.dst_class = inst.dst_class();
    info.dst_reg = inst.rd;
    info.dst_value = value;
    if (info.has_dst) {
      if (info.dst_class == RegClass::Int) set_int_reg(inst.rd, value);
      else set_fp_reg(inst.rd, value);
    }
  }

  pc_ = next_pc;
  info.next_pc = next_pc;
}

std::uint64_t ArchState::run_decoded(std::uint64_t max_steps) {
  // Mirrors step_decoded() op for op — same evaluation order, same memory
  // and register effects, same icount accounting (the halting step itself
  // counts) — but with no StepInfo construction and the PC kept in a local.
  // Destination writes go straight to x_/f_: has_dst is already false for
  // integer rd==0, so x_[0] is never written.
  const MicroOp* const ops = decoded_->ops();
  const std::uint64_t base = decoded_->code_base();
  const std::uint64_t bytes = decoded_->code_end() - base;
  std::uint64_t pc = pc_;
  std::uint64_t executed = 0;
  const MicroOp* mop = nullptr;

  // EREL_DISPATCH fetches the next micro-op and jumps to its handler; it
  // falls out to `done` when the step budget is exhausted or the PC leaves
  // the image (wrong-path targets, returns past code_end). Entry PC
  // alignment is the caller's contains() check; every transition below
  // preserves it (+4, disp = imm*4, indirect targets masked to ~3).
#if EREL_COMPUTED_GOTO
  static const void* const kDispatch[] = {
      &&lbl_kAlu,        &&lbl_kLoad,         &&lbl_kStore,
      &&lbl_kCondBranch, &&lbl_kDirectJump,   &&lbl_kIndirectJump,
      &&lbl_kHalt,       &&lbl_kIllegal,      &&lbl_kIret};
#define EREL_CASE(k) lbl_##k:
#define EREL_DISPATCH()                                    \
  {                                                        \
    if (executed == max_steps) goto done;                  \
    const std::uint64_t off = pc - base;                   \
    if (off >= bytes) goto done;                           \
    mop = ops + (off >> 2);                                \
    ++executed;                                            \
    goto* kDispatch[static_cast<unsigned>(mop->kind)];     \
  }
  EREL_DISPATCH()
#else
#define EREL_CASE(k) case MicroKind::k:
#define EREL_DISPATCH() \
  { continue; }
  for (;;) {
    if (executed == max_steps) break;
    const std::uint64_t off = pc - base;
    if (off >= bytes) break;
    mop = ops + (off >> 2);
    ++executed;
    switch (mop->kind) {
#endif

      EREL_CASE(kAlu) {
        const std::uint64_t a = src_value(mop->src1, mop->inst.rs1);
        const std::uint64_t b = src_value(mop->src2, mop->inst.rs2);
        const std::uint64_t value =
            isa::exec_alu(mop->inst.op, a, b, mop->inst.imm);
        if (mop->has_dst) {
          if (mop->dst == RegClass::Int) x_[mop->inst.rd] = value;
          else f_[mop->inst.rd] = value;
        }
        pc += 4;
        EREL_DISPATCH()
      }
      EREL_CASE(kLoad) {
        const std::uint64_t addr = src_value(mop->src1, mop->inst.rs1) +
                                   static_cast<std::uint64_t>(mop->simm);
        // Device reads are pure and never change deliverability mid-window
        // (the run() budget already stops at the next timer/RX deadline),
        // so the dispatch loop continues inline. The boundary is the count
        // of instructions retired before this one.
        std::uint64_t value =
            dev::Machine::is_mmio(addr)
                ? dev_.read(addr, mop->mem_bytes, icount_ + executed - 1)
                : mem_.read(addr, mop->mem_bytes);
        if (mop->sext32) value = static_cast<std::uint64_t>(sext(value, 32));
        if (mop->has_dst) {
          if (mop->dst == RegClass::Int) x_[mop->inst.rd] = value;
          else f_[mop->inst.rd] = value;
        }
        pc += 4;
        EREL_DISPATCH()
      }
      EREL_CASE(kStore) {
        const std::uint64_t addr = src_value(mop->src1, mop->inst.rs1) +
                                   static_cast<std::uint64_t>(mop->simm);
        const std::uint64_t b = src_value(mop->src2, mop->inst.rs2);
        if (dev::Machine::is_mmio(addr)) {
          // A device write can arm timers or re-enable delivery: hand
          // control back so run() re-evaluates its deadline budget and the
          // pending lines at this boundary.
          dev_.write(addr, b, mop->mem_bytes, icount_ + executed - 1);
          pc += 4;
          goto done;
        }
        note_store(addr, mop->mem_bytes);
        mem_.write(addr, b, mop->mem_bytes);
        pc += 4;
        // A store into the code image finishes architecturally, then hands
        // control back so further fetches re-decode from memory.
        if (code_dirty_) goto done;
        EREL_DISPATCH()
      }
      EREL_CASE(kCondBranch) {
        const std::uint64_t a = src_value(mop->src1, mop->inst.rs1);
        const std::uint64_t b = src_value(mop->src2, mop->inst.rs2);
        pc += isa::branch_taken(mop->inst.op, a, b)
                  ? static_cast<std::uint64_t>(mop->disp)
                  : 4;
        EREL_DISPATCH()
      }
      EREL_CASE(kDirectJump) {
        if (mop->has_dst) x_[mop->inst.rd] = pc + 4;
        pc += static_cast<std::uint64_t>(mop->disp);
        EREL_DISPATCH()
      }
      EREL_CASE(kIndirectJump) {
        // Target read before the link write in case rd == rs1.
        const std::uint64_t target =
            (src_value(mop->src1, mop->inst.rs1) +
             static_cast<std::uint64_t>(mop->simm)) &
            ~std::uint64_t{3};
        if (mop->has_dst) x_[mop->inst.rd] = pc + 4;
        pc = target;
        EREL_DISPATCH()
      }
      EREL_CASE(kHalt) {
        halted_ = true;  // PC frozen on the HALT itself; the step counts
        goto done;
      }
      EREL_CASE(kIllegal) {
        halted_ = true;
        goto done;
      }
      EREL_CASE(kIret) {
        // Returning from the handler restores the master enable: hand
        // control back so run() delivers any interrupt latched meanwhile
        // before the resumed instruction executes.
        pc = dev_.iret();
        goto done;
      }

#if !EREL_COMPUTED_GOTO
    }
  }
#endif
#undef EREL_CASE
#undef EREL_DISPATCH

done:
  pc_ = pc;
  icount_ += executed;
  return executed;
}

std::uint64_t ArchState::run(std::uint64_t max_steps) {
  std::uint64_t steps = 0;
  while (!halted_ && steps < max_steps) {
    std::uint64_t budget = max_steps - steps;
    if (!dev_.quiet()) {
      // Deliver at this retirement boundary, then cap the uninterrupted
      // dispatch window at the next timer/RX deadline: after sync() every
      // armed deadline is strictly in the future, so the budget stays >= 1
      // and the loop re-checks delivery exactly when an event can fire.
      dev_.sync(icount_);
      if (dev_.deliverable()) pc_ = dev_.deliver(pc_);
      const std::uint64_t next = dev_.next_event();
      if (next != ~std::uint64_t{0} && next - icount_ < budget)
        budget = next - icount_;
    }
    if (decoded_ != nullptr && !code_dirty_ && decoded_->contains(pc_)) {
      steps += run_decoded(budget);
    } else {
      step();
      ++steps;
    }
  }
  return steps;
}

}  // namespace erel::arch
