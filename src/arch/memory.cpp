#include "arch/memory.hpp"

#include <algorithm>
#include <cstring>

#include "common/log.hpp"

namespace erel::arch {

const SparseMemory::Page* SparseMemory::find_page(std::uint64_t addr) const {
  const auto it = pages_.find(addr / kPageBytes);
  return it == pages_.end() ? nullptr : it->second.get();
}

SparseMemory::Page* SparseMemory::lookup_page(std::uint64_t addr) const {
  const std::uint64_t page = addr / kPageBytes;
  TlbEntry& slot = tlb_[page & (kTlbSlots - 1)];
  if (slot.page == page) return slot.data;
  const auto it = pages_.find(page);
  if (it == pages_.end()) return nullptr;  // absence is never cached
  Page* data = it->second.get();
  if (tlb_enabled_) slot = {page, data};
  return data;
}

SparseMemory::Page& SparseMemory::touch_page(std::uint64_t addr) {
  const std::uint64_t page = addr / kPageBytes;
  auto& slot = pages_[page];
  if (!slot) {
    slot = std::make_unique<Page>();
    slot->fill(0);
  }
  if (tlb_enabled_) tlb_[page & (kTlbSlots - 1)] = {page, slot.get()};
  return *slot;
}

std::uint64_t SparseMemory::read(std::uint64_t addr, unsigned size) const {
  EREL_CHECK(size == 1 || size == 2 || size == 4 || size == 8);
  EREL_CHECK(addr % size == 0, "unaligned read of ", size, " at ", addr);
  const Page* page = lookup_page(addr);
  if (page == nullptr) return 0;
  std::uint64_t value = 0;
  std::memcpy(&value, page->data() + addr % kPageBytes, size);
  return value;  // little-endian host ensures zero-extension semantics
}

void SparseMemory::write(std::uint64_t addr, std::uint64_t value,
                         unsigned size) {
  EREL_CHECK(size == 1 || size == 2 || size == 4 || size == 8);
  EREL_CHECK(addr % size == 0, "unaligned write of ", size, " at ", addr);
  Page* page = lookup_page(addr);
  if (page == nullptr) page = &touch_page(addr);
  std::memcpy(page->data() + addr % kPageBytes, &value, size);
}

std::vector<std::uint64_t> SparseMemory::page_bases() const {
  std::vector<std::uint64_t> bases;
  bases.reserve(pages_.size());
  for (const auto& [index, page] : pages_) bases.push_back(index * kPageBytes);
  std::sort(bases.begin(), bases.end());
  return bases;
}

const std::uint8_t* SparseMemory::page_data(std::uint64_t addr) const {
  const Page* page = find_page(addr);
  return page == nullptr ? nullptr : page->data();
}

std::vector<std::pair<std::uint64_t, const std::uint8_t*>>
SparseMemory::pages_snapshot() const {
  std::vector<std::pair<std::uint64_t, const std::uint8_t*>> snapshot;
  snapshot.reserve(pages_.size());
  for (const auto& [index, page] : pages_)
    snapshot.emplace_back(index * kPageBytes, page->data());
  std::sort(snapshot.begin(), snapshot.end());
  return snapshot;
}

void SparseMemory::write_block(std::uint64_t addr,
                               std::span<const std::uint8_t> bytes) {
  for (std::size_t i = 0; i < bytes.size();) {
    Page& page = touch_page(addr + i);
    const std::uint64_t off = (addr + i) % kPageBytes;
    const std::size_t chunk =
        std::min<std::size_t>(bytes.size() - i, kPageBytes - off);
    std::memcpy(page.data() + off, bytes.data() + i, chunk);
    i += chunk;
  }
}

}  // namespace erel::arch
