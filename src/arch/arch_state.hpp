// Architectural (in-order, functional) simulator.
//
// This is the oracle the timing pipeline is checked against: it executes one
// instruction at a time with precise sequential semantics. It is also used
// standalone to validate workload checksums and to count dynamic
// instructions (Table 3 reproduction).
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "arch/memory.hpp"
#include "arch/program.hpp"
#include "isa/isa.hpp"

namespace erel::arch {

/// Outcome of one architectural step, rich enough for co-simulation: the
/// timing model's commit stage compares pc / destination / memory effects
/// against this record.
struct StepInfo {
  std::uint64_t pc = 0;
  std::uint64_t next_pc = 0;
  isa::DecodedInst inst;
  bool has_dst = false;
  isa::RegClass dst_class = isa::RegClass::None;
  std::uint8_t dst_reg = 0;
  std::uint64_t dst_value = 0;
  bool is_store = false;
  bool is_load = false;
  std::uint64_t mem_addr = 0;
  unsigned mem_bytes = 0;
  std::uint64_t store_value = 0;
  bool halted = false;
  bool illegal = false;  // committed an ILLEGAL opcode (a program bug)
};

class ArchState {
 public:
  /// Loads a program: copies code + data into memory and sets the PC.
  explicit ArchState(const Program& program);

  /// Executes exactly one instruction. Returns the step record; after a HALT
  /// the state is frozen and further steps keep returning halted records.
  StepInfo step();

  /// Runs until HALT or `max_steps`; returns executed instruction count.
  std::uint64_t run(std::uint64_t max_steps = ~0ull);

  [[nodiscard]] bool halted() const { return halted_; }
  [[nodiscard]] std::uint64_t pc() const { return pc_; }
  [[nodiscard]] std::uint64_t instructions_executed() const { return icount_; }

  [[nodiscard]] std::uint64_t int_reg(unsigned idx) const;
  [[nodiscard]] std::uint64_t fp_reg(unsigned idx) const;
  void set_int_reg(unsigned idx, std::uint64_t value);
  void set_fp_reg(unsigned idx, std::uint64_t value);

  SparseMemory& memory() { return mem_; }
  const SparseMemory& memory() const { return mem_; }

  /// Forces the PC (used by exception-replay tests).
  void set_pc(std::uint64_t pc) { pc_ = pc; }

  /// Checkpoint restore: rebases the instruction counter and halt flag
  /// (registers, memory and PC are restored through their own setters; see
  /// arch/checkpoint.hpp).
  void set_resume_point(std::uint64_t icount, bool halted) {
    icount_ = icount;
    halted_ = halted;
  }

 private:
  std::array<std::uint64_t, isa::kNumLogicalRegs> x_{};  // x_[0] stays 0
  std::array<std::uint64_t, isa::kNumLogicalRegs> f_{};
  SparseMemory mem_;
  std::uint64_t pc_ = 0;
  std::uint64_t icount_ = 0;
  bool halted_ = false;
};

/// Loads `program` into `mem` (shared by ArchState and the timing simulator).
void load_program(const Program& program, SparseMemory& mem);

}  // namespace erel::arch
