// Architectural (in-order, functional) simulator.
//
// This is the oracle the timing pipeline is checked against: it executes one
// instruction at a time with precise sequential semantics. It is also used
// standalone to validate workload checksums and to count dynamic
// instructions (Table 3 reproduction).
//
// Fast path: when constructed with a DecodedProgram, step() executes from
// the pre-decoded micro-op array (one enum dispatch, no byte fetch or
// re-decode) whenever the PC is inside the cached code image; any store
// into the image flips it back to the byte-accurate path permanently, so
// results are bit-identical with or without the cache.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "arch/decoded_program.hpp"
#include "arch/memory.hpp"
#include "arch/program.hpp"
#include "dev/machine.hpp"
#include "isa/isa.hpp"

namespace erel::arch {

/// Outcome of one architectural step, rich enough for co-simulation: the
/// timing model's commit stage compares pc / destination / memory effects
/// against this record.
struct StepInfo {
  std::uint64_t pc = 0;
  std::uint64_t next_pc = 0;
  isa::DecodedInst inst;
  MicroKind kind = MicroKind::kIllegal;  // dispatch class of `inst`
  bool has_dst = false;
  isa::RegClass dst_class = isa::RegClass::None;
  std::uint8_t dst_reg = 0;
  std::uint64_t dst_value = 0;
  bool is_store = false;
  bool is_load = false;
  std::uint64_t mem_addr = 0;
  unsigned mem_bytes = 0;
  std::uint64_t store_value = 0;
  bool halted = false;
  bool illegal = false;  // committed an ILLEGAL opcode (a program bug)
};

class ArchState {
 public:
  /// Loads a program: copies code + data into memory and sets the PC.
  /// `decoded` (optional, non-owning, caller keeps it alive) enables the
  /// decode-once fast path; it must have been built from the same program.
  explicit ArchState(const Program& program,
                     const DecodedProgram* decoded = nullptr);

  /// Executes exactly one instruction. Returns the step record; after a HALT
  /// the state is frozen and further steps keep returning halted records.
  StepInfo step();

  /// Runs until HALT or `max_steps`; returns executed instruction count.
  ///
  /// While the PC stays inside a clean decoded image this executes a
  /// threaded-dispatch interpreter loop over the packed MicroOp array
  /// (computed goto on GCC/Clang, a switch loop when EREL_NO_COMPUTED_GOTO
  /// is defined) with no per-step StepInfo construction; out-of-image PCs,
  /// self-modifying stores and the byte-accurate configuration fall back to
  /// step(). Architectural results are bit-identical either way.
  std::uint64_t run(std::uint64_t max_steps = ~0ull);

  [[nodiscard]] bool halted() const { return halted_; }
  [[nodiscard]] std::uint64_t pc() const { return pc_; }
  [[nodiscard]] std::uint64_t instructions_executed() const { return icount_; }

  /// True once a store has landed inside the decoded code image: the
  /// pre-decoded records no longer match memory, so this machine (and any
  /// checkpoint taken from it) must execute byte-accurately from here on.
  [[nodiscard]] bool code_dirtied() const { return code_dirty_; }

  /// Drops the decode cache: every further step is byte-accurate. Used by
  /// resume paths that restore memory behind this machine's back (the
  /// restored image may not match the static program the cache was built
  /// from — note_store cannot see such writes).
  void detach_decoded() { decoded_ = nullptr; }

  [[nodiscard]] std::uint64_t int_reg(unsigned idx) const;
  [[nodiscard]] std::uint64_t fp_reg(unsigned idx) const;
  void set_int_reg(unsigned idx, std::uint64_t value);
  void set_fp_reg(unsigned idx, std::uint64_t value);

  SparseMemory& memory() { return mem_; }
  const SparseMemory& memory() const { return mem_; }

  /// The memory-mapped device model (timer + console + interrupt
  /// controller). Loads/stores into its window route here instead of
  /// memory; pending interrupts are delivered at retirement boundaries
  /// (before the next instruction executes), identically on the
  /// byte-accurate, decoded and pipelined engines.
  dev::Machine& device() { return dev_; }
  const dev::Machine& device() const { return dev_; }

  /// Forces the PC (used by exception-replay tests).
  void set_pc(std::uint64_t pc) { pc_ = pc; }

  /// Checkpoint restore: rebases the instruction counter and halt flag
  /// (registers, memory and PC are restored through their own setters; see
  /// arch/checkpoint.hpp).
  void set_resume_point(std::uint64_t icount, bool halted) {
    icount_ = icount;
    halted_ = halted;
  }

 private:
  /// run()'s hot loop: threaded dispatch over decoded_->ops() starting at
  /// pc_, which the caller has verified is inside the clean decoded image.
  /// Executes until halt, a code-dirtying store, the PC leaving the image,
  /// or `max_steps`; returns the number of instructions executed (>= 1).
  std::uint64_t run_decoded(std::uint64_t max_steps);

  /// Executes one instruction from the pre-decoded record (pc_ verified to
  /// be inside the decoded image by the caller).
  void step_decoded(const MicroOp& mop, StepInfo& info);

  /// Byte-accurate path: fetches and decodes from memory (original engine).
  void step_bytes(StepInfo& info);

  [[nodiscard]] std::uint64_t src_value(isa::RegClass cls,
                                        unsigned idx) const {
    switch (cls) {
      case isa::RegClass::Int: return x_[idx];
      case isa::RegClass::Fp: return f_[idx];
      case isa::RegClass::None: return 0;
    }
    return 0;
  }

  /// Marks the decode cache stale when a store overlaps the code image.
  void note_store(std::uint64_t addr, unsigned size) {
    if (decoded_ != nullptr && decoded_->covers(addr, size))
      code_dirty_ = true;
  }

  std::array<std::uint64_t, isa::kNumLogicalRegs> x_{};  // x_[0] stays 0
  std::array<std::uint64_t, isa::kNumLogicalRegs> f_{};
  SparseMemory mem_;
  std::uint64_t pc_ = 0;
  std::uint64_t icount_ = 0;
  bool halted_ = false;
  const DecodedProgram* decoded_ = nullptr;  // non-owning
  bool code_dirty_ = false;
  dev::Machine dev_;
};

/// Loads `program` into `mem` (shared by ArchState and the timing simulator).
void load_program(const Program& program, SparseMemory& mem);

}  // namespace erel::arch
