// Architectural checkpoints: a complete snapshot of functional machine state
// (PC, logical registers, every dirty memory page) that a run can be resumed
// from. Checkpoints are what make sampled simulation work — the functional
// oracle fast-forwards between sampling intervals and the detailed pipeline
// is re-seeded from a checkpoint at each interval boundary — and they
// serialize to disk (trace/checkpoint_io.hpp) so long fast-forwards can be
// paid once and reused across experiments.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "isa/isa.hpp"

namespace erel::arch {

class ArchState;
class SparseMemory;

struct Checkpoint {
  /// One dirty (resident) page image; `base` is page-aligned.
  struct PageImage {
    std::uint64_t base = 0;
    std::vector<std::uint8_t> bytes;  // exactly SparseMemory::kPageBytes

    bool operator==(const PageImage&) const = default;
  };

  std::uint64_t pc = 0;
  std::uint64_t icount = 0;  // instructions executed before the checkpoint
  bool halted = false;
  std::array<std::uint64_t, isa::kNumLogicalRegs> int_regs{};
  std::array<std::uint64_t, isa::kNumLogicalRegs> fp_regs{};
  /// Device state words (dev::Machine::save): interrupt-controller, timer
  /// and console state are architectural — a run resumed mid-handler must
  /// deliver the same interrupts at the same boundaries as the full run.
  /// Empty means reset state (checkpoints from pre-device files).
  std::vector<std::uint64_t> dev;
  std::vector<PageImage> pages;  // sorted by base address

  bool operator==(const Checkpoint&) const = default;
};

/// Captures every resident page of `mem` into `out.pages` (sorted by base).
void capture_memory(const SparseMemory& mem, Checkpoint& out);

/// Replaces the contents of `mem` with the checkpoint's pages.
void restore_memory(const Checkpoint& ckpt, SparseMemory& mem);

/// Captures the full architectural state of `state`.
Checkpoint capture(const ArchState& state);

/// Restores `state` to the checkpoint (registers, memory, PC, icount).
void restore(const Checkpoint& ckpt, ArchState& state);

}  // namespace erel::arch
