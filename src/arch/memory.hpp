// Sparse byte-addressable memory backing both the functional oracle and the
// timing simulator's committed state. Pages materialize on first touch;
// reads of untouched memory return zero (wrong-path accesses must never
// fault or allocate).
//
// Hot-path front end: a small direct-mapped page-pointer cache (a software
// TLB) sits in front of the page map, so the common read/write resolves with
// one tag compare + pointer arithmetic instead of a hash lookup. The TLB is
// purely an accelerator — it only ever caches pointers to materialized
// pages (node-based map storage keeps them stable), absent-page reads are
// never cached (the page may materialize later via a write), and clear()
// drops it wholesale — so observable behaviour is bit-identical with the
// TLB on or off. `set_tlb_enabled(false)` exists for A/B throughput
// measurements (bench/sim_throughput), not for correctness.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

namespace erel::arch {

class SparseMemory {
 public:
  static constexpr std::uint64_t kPageBytes = 4096;

  /// Naturally-aligned scalar accessors. `size` in {1, 2, 4, 8}; loads
  /// zero-extend into the 64-bit result.
  [[nodiscard]] std::uint64_t read(std::uint64_t addr, unsigned size) const;
  void write(std::uint64_t addr, std::uint64_t value, unsigned size);

  [[nodiscard]] std::uint8_t read_u8(std::uint64_t addr) const {
    return static_cast<std::uint8_t>(read(addr, 1));
  }
  [[nodiscard]] std::uint32_t read_u32(std::uint64_t addr) const {
    return static_cast<std::uint32_t>(read(addr, 4));
  }
  [[nodiscard]] std::uint64_t read_u64(std::uint64_t addr) const {
    return read(addr, 8);
  }

  /// Bulk copy-in used by the program loader and checkpoint restore: touches
  /// each covered page once and memcpys page-sized chunks.
  void write_block(std::uint64_t addr, std::span<const std::uint8_t> bytes);

  /// Number of pages materialized so far (observability for tests).
  [[nodiscard]] std::size_t resident_pages() const { return pages_.size(); }

  // -- checkpoint support --------------------------------------------------
  // Pages materialize only on writes, so the resident set is exactly the
  // dirty set: enumerating it captures full memory state.

  /// Base addresses of all resident pages, sorted ascending.
  [[nodiscard]] std::vector<std::uint64_t> page_bases() const;

  /// Raw bytes of the resident page containing `addr` (nullptr if absent).
  [[nodiscard]] const std::uint8_t* page_data(std::uint64_t addr) const;

  /// Every resident page as (base address, raw bytes), sorted by base: one
  /// map sweep instead of a lookup per page (checkpoint capture's bulk
  /// path). Pointers are valid until the next clear().
  [[nodiscard]] std::vector<std::pair<std::uint64_t, const std::uint8_t*>>
  pages_snapshot() const;

  /// Drops every page (restore starts from a blank address space).
  void clear() {
    pages_.clear();
    flush_tlb();
  }

  /// Disables (or re-enables) the page-pointer cache. Results are identical
  /// either way; the switch exists so throughput benchmarks can report the
  /// map-lookup baseline honestly.
  void set_tlb_enabled(bool enabled) {
    tlb_enabled_ = enabled;
    flush_tlb();
  }

 private:
  using Page = std::array<std::uint8_t, kPageBytes>;

  /// Direct-mapped page-pointer cache. kNoPage tags empty slots (page index
  /// ~0 would need addr >= 2^64 - 4096, unreachable).
  struct TlbEntry {
    std::uint64_t page = kNoPage;
    Page* data = nullptr;
  };
  static constexpr std::uint64_t kNoPage = ~std::uint64_t{0};
  static constexpr std::size_t kTlbSlots = 64;  // power of two

  void flush_tlb() const {
    for (TlbEntry& e : tlb_) e = TlbEntry{};
  }

  /// Resolves `addr` to its materialized page via the TLB, filling the slot
  /// on a map hit; nullptr when the page is absent. Const because resolving
  /// is logically read-only (the TLB is a mutable accelerator).
  Page* lookup_page(std::uint64_t addr) const;

  [[nodiscard]] const Page* find_page(std::uint64_t addr) const;
  Page& touch_page(std::uint64_t addr);

  std::unordered_map<std::uint64_t, std::unique_ptr<Page>> pages_;
  mutable std::array<TlbEntry, kTlbSlots> tlb_{};
  bool tlb_enabled_ = true;
};

}  // namespace erel::arch
