// Sparse byte-addressable memory backing both the functional oracle and the
// timing simulator's committed state. Pages materialize on first touch;
// reads of untouched memory return zero (wrong-path accesses must never
// fault or allocate).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

namespace erel::arch {

class SparseMemory {
 public:
  static constexpr std::uint64_t kPageBytes = 4096;

  /// Naturally-aligned scalar accessors. `size` in {1, 2, 4, 8}; loads
  /// zero-extend into the 64-bit result.
  [[nodiscard]] std::uint64_t read(std::uint64_t addr, unsigned size) const;
  void write(std::uint64_t addr, std::uint64_t value, unsigned size);

  [[nodiscard]] std::uint8_t read_u8(std::uint64_t addr) const {
    return static_cast<std::uint8_t>(read(addr, 1));
  }
  [[nodiscard]] std::uint32_t read_u32(std::uint64_t addr) const {
    return static_cast<std::uint32_t>(read(addr, 4));
  }
  [[nodiscard]] std::uint64_t read_u64(std::uint64_t addr) const {
    return read(addr, 8);
  }

  /// Bulk copy-in used by the program loader.
  void write_block(std::uint64_t addr, std::span<const std::uint8_t> bytes);

  /// Number of pages materialized so far (observability for tests).
  [[nodiscard]] std::size_t resident_pages() const { return pages_.size(); }

  // -- checkpoint support --------------------------------------------------
  // Pages materialize only on writes, so the resident set is exactly the
  // dirty set: enumerating it captures full memory state.

  /// Base addresses of all resident pages, sorted ascending.
  [[nodiscard]] std::vector<std::uint64_t> page_bases() const;

  /// Raw bytes of the resident page containing `addr` (nullptr if absent).
  [[nodiscard]] const std::uint8_t* page_data(std::uint64_t addr) const;

  /// Drops every page (restore starts from a blank address space).
  void clear() { pages_.clear(); }

 private:
  using Page = std::array<std::uint8_t, kPageBytes>;

  [[nodiscard]] const Page* find_page(std::uint64_t addr) const;
  Page& touch_page(std::uint64_t addr);

  std::unordered_map<std::uint64_t, std::unique_ptr<Page>> pages_;
};

}  // namespace erel::arch
