#include "arch/decoded_program.hpp"

namespace erel::arch {

MicroKind DecodedProgram::kind_of(const isa::DecodedInst& inst) {
  if (inst.op == isa::Opcode::ILLEGAL) return MicroKind::kIllegal;
  const isa::OpInfo& info = inst.info();
  if (info.flags & isa::kFlagHalt) return MicroKind::kHalt;
  if (info.flags & isa::kFlagIret) return MicroKind::kIret;
  if (info.flags & isa::kFlagLoad) return MicroKind::kLoad;
  if (info.flags & isa::kFlagStore) return MicroKind::kStore;
  if (info.flags & isa::kFlagCondBranch) return MicroKind::kCondBranch;
  if (info.flags & isa::kFlagDirectJump) return MicroKind::kDirectJump;
  if (info.flags & isa::kFlagIndirectJump) return MicroKind::kIndirectJump;
  return MicroKind::kAlu;
}

MicroOp DecodedProgram::make_op(std::uint32_t word) {
  MicroOp op;
  op.inst = isa::decode(word);
  op.kind = kind_of(op.inst);
  const isa::OpInfo& info = op.inst.info();
  op.src1 = info.src1;
  op.src2 = info.src2;
  op.dst = info.dst;
  op.mem_bytes = info.mem_bytes;
  op.has_dst = op.inst.has_dst();
  op.sext32 = op.inst.op == isa::Opcode::LW;
  op.simm = std::int64_t{op.inst.imm};
  op.disp = std::int64_t{op.inst.imm} * 4;
  return op;
}

DecodedProgram::DecodedProgram(const Program& program)
    : code_base_(program.code_base),
      code_bytes_(4 * program.code.size()) {
  ops_.reserve(program.code.size());
  for (const std::uint32_t word : program.code) ops_.push_back(make_op(word));
}

}  // namespace erel::arch
