// Decode-once program cache: the functional fast-path engine's static side.
//
// Every simulation mode — full pipeline runs, the commit-time oracle,
// sampled planning/warming passes and trace replay — ultimately executes the
// same static program image over and over. Decoding the 32-bit words on
// every dynamic execution (and fetching them through SparseMemory's page
// map) dominates the functional path, so a DecodedProgram pre-decodes the
// whole image exactly once into a flat array of MicroOp records indexed by
// PC. Executors then dispatch on a small `kind` enum over a packed record:
// no byte fetch, no OpInfo table walks, immediates and branch displacements
// already extended and scaled.
//
// The cache is immutable and position-keyed, so one instance is safely
// shared by any number of cores / oracles / threads (sampled measurement
// shards all read the same DecodedProgram). Self-modifying programs are
// handled by the executors, not here: any store into [code_base, code_end)
// flips them back to the byte-accurate decode path (see
// ArchState::code_dirtied and pipeline::Core), so semantics never depend on
// the cache being fresh.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "arch/program.hpp"
#include "isa/isa.hpp"

namespace erel::arch {

/// Dispatch class of one micro-op: everything an executor switches on. The
/// flag-mask queries of isa::OpInfo collapse to this single enum.
enum class MicroKind : std::uint8_t {
  kAlu,           // plain integer/FP computation (exec_alu)
  kLoad,          // memory read into rd
  kStore,         // memory write of rs2
  kCondBranch,    // BEQ..BGEU
  kDirectJump,    // JAL
  kIndirectJump,  // JALR
  kHalt,
  kIllegal,
  kIret,          // interrupt return (redirects to the device EPC)
};

/// One pre-decoded instruction. `inst` is the exact isa::decode() result
/// (StepInfo and the pipeline carry it on); the remaining fields cache every
/// OpInfo-derived property the hot execution loop would otherwise look up
/// per dynamic instance.
struct MicroOp {
  isa::DecodedInst inst;
  MicroKind kind = MicroKind::kIllegal;
  isa::RegClass src1 = isa::RegClass::None;
  isa::RegClass src2 = isa::RegClass::None;
  isa::RegClass dst = isa::RegClass::None;
  std::uint8_t mem_bytes = 0;
  bool has_dst = false;    // isa::DecodedInst::has_dst() (rd==0 discards)
  bool sext32 = false;     // LW: sign-extend the loaded 32-bit value
  std::int64_t simm = 0;   // sign-extended immediate (bytes for mem ops)
  std::int64_t disp = 0;   // imm * 4: code displacement of branches/JAL
};

class DecodedProgram {
 public:
  explicit DecodedProgram(const Program& program);

  /// True when `pc` indexes a pre-decoded slot (inside the code image and
  /// 4-byte aligned). Wrong-path fetches outside the image fall back to the
  /// byte-accurate decode path.
  [[nodiscard]] bool contains(std::uint64_t pc) const {
    return (pc - code_base_) < code_bytes_ && (pc & 3) == 0;
  }

  [[nodiscard]] const MicroOp& at(std::uint64_t pc) const {
    return ops_[(pc - code_base_) >> 2];
  }

  [[nodiscard]] std::uint64_t code_base() const { return code_base_; }
  [[nodiscard]] std::uint64_t code_end() const {
    return code_base_ + code_bytes_;
  }

  /// True when a `size`-byte access at `addr` overlaps the cached code
  /// image — a store there makes the cache stale for the storing machine.
  /// Both endpoints are tested so a wide store straddling the image start
  /// (possible when code_base is not 8-byte aligned) is caught too.
  [[nodiscard]] bool covers(std::uint64_t addr, unsigned size = 1) const {
    return (addr - code_base_) < code_bytes_ ||
           (addr + size - 1 - code_base_) < code_bytes_;
  }

  [[nodiscard]] std::size_t size() const { return ops_.size(); }

  /// The packed record array (ops()[i] decodes code_base + 4*i). The
  /// threaded-dispatch interpreter loop indexes it directly instead of
  /// paying contains()/at() per instruction.
  [[nodiscard]] const MicroOp* ops() const { return ops_.data(); }

  /// Decodes and classifies one instruction word (also the slow path's
  /// classifier: kind_of(decode(word)) == make_op(word).kind).
  static MicroOp make_op(std::uint32_t word);

  /// Dispatch class of an already-decoded instruction.
  static MicroKind kind_of(const isa::DecodedInst& inst);

 private:
  std::uint64_t code_base_ = 0;
  std::uint64_t code_bytes_ = 0;
  std::vector<MicroOp> ops_;
};

}  // namespace erel::arch
