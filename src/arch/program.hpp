// A loadable program image: the assembler's output and the simulators' input.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace erel::arch {

/// Default load addresses. Code and data live far apart so kernels can use
/// 32-bit address constants built with lui/ori.
inline constexpr std::uint64_t kDefaultCodeBase = 0x10000;
inline constexpr std::uint64_t kDefaultDataBase = 0x100000;

struct DataSegment {
  std::uint64_t base = 0;
  std::vector<std::uint8_t> bytes;
};

struct Program {
  std::uint64_t entry = kDefaultCodeBase;
  std::uint64_t code_base = kDefaultCodeBase;
  std::vector<std::uint32_t> code;       // encoded instructions, 4 bytes each
  std::vector<DataSegment> data;         // initialized data
  std::map<std::string, std::uint64_t> symbols;  // label -> address

  [[nodiscard]] std::uint64_t code_end() const {
    return code_base + 4 * code.size();
  }
  [[nodiscard]] std::size_t num_instructions() const { return code.size(); }
};

}  // namespace erel::arch
