// Floating-point kernels (mgrid / tomcatv / applu / swim / hydro2d
// analogues). All are unrolled or chain-interleaved so that many FP register
// versions are in flight at once — the high-register-pressure regime the
// paper's FP results depend on.
#include <string>

#include "workloads/workloads.hpp"

namespace erel::workloads {

namespace {

std::string subst1(std::string text, const std::string& key,
                   unsigned long long value) {
  const std::string pattern = "{" + key + "}";
  const std::string repl = std::to_string(value);
  for (std::size_t pos = text.find(pattern); pos != std::string::npos;
       pos = text.find(pattern, pos)) {
    text.replace(pos, pattern.size(), repl);
    pos += repl.size();
  }
  return text;
}

struct Subst {
  std::string key;
  unsigned long long value;
};

std::string subst(std::string text, std::initializer_list<Subst> pairs) {
  for (const Subst& s : pairs) text = subst1(std::move(text), s.key, s.value);
  return text;
}

/// Shared preamble: fills `count` doubles at label `dst` with pseudo-random
/// values in [0,1) + 0.5, using f3 = 1/65536. Clobbers r5, r6, r9, r10, f4.
/// The caller must have loaded f3 (inv65536) and f9 (half) already.
std::string fill_random(unsigned long long count) {
  return subst(R"(  la   r6, {DST}
  li   r10, {COUNT}
  slli r10, r10, 3
  add  r10, r6, r10       # end pointer
fill_{TAG}:
  mul  r5, r5, r20
  addi r5, r5, 4321
  slli r5, r5, 32
  srli r5, r5, 32
  slli r9, r5, 40
  srli r9, r9, 48         # 16-bit field
  cvtdi f4, r9
  fmul f4, f4, f3         # scale to [0,1)
  fadd f4, f4, f9         # shift to [0.5,1.5): keeps divisors away from 0
  fsd  f4, 0(r6)
  addi r6, r6, 8
  blt  r6, r10, fill_{TAG}
)",
               {{"COUNT", count}});
  // {DST} and {TAG} are textual; substitute below.
}

std::string fill_random_at(const std::string& dst, unsigned long long count,
                           const std::string& tag) {
  std::string body = fill_random(count);
  // Textual substitutions (subst() only handles numbers).
  auto replace_all = [](std::string text, const std::string& pattern,
                        const std::string& repl) {
    for (std::size_t pos = text.find(pattern); pos != std::string::npos;
         pos = text.find(pattern, pos)) {
      text.replace(pos, pattern.size(), repl);
      pos += repl.size();
    }
    return text;
  };
  body = replace_all(body, "{DST}", dst);
  body = replace_all(body, "{TAG}", tag);
  return body;
}

}  // namespace

// ---------------------------------------------------------------------------
// mgrid: 3-D 7-point stencil relaxation (multigrid smoother), ping-pong
// buffers, inner loop unrolled x2 with ~22 live FP registers.
// ---------------------------------------------------------------------------
std::string kernel_mgrid(unsigned dim, unsigned sweeps) {
  const unsigned long long d = dim;
  const unsigned long long cells = d * d * d;
  std::string src = R"(# mgrid analogue: 7-point stencil relaxation on a {D}^3 grid
main:
  li   r20, 1103515245
  li   r5, 31337
  la   r8, consts
  fld  f3, 0(r8)          # 1/65536
  fld  f9, 8(r8)          # 0.5
  fld  f1, 16(r8)         # w0 (center weight)
  fld  f2, 24(r8)         # w1 (neighbour weight)
)" + fill_random_at("gridA", cells, "a") +
                    R"(
  li   r11, 0             # sweep counter
  li   r12, {SWEEPS}
  la   r3, gridA
  la   r4, gridB
  li   r21, {D}
  addi r22, r21, -1       # interior bound
sweep:
  li   r25, 1             # i
i_loop:
  li   r26, 1             # j
j_loop:
  mul  r14, r25, r21
  add  r14, r14, r26
  mul  r14, r14, r21
  addi r14, r14, 1
  slli r14, r14, 3
  add  r8, r3, r14        # &in[i][j][1]
  add  r9, r4, r14        # &out[i][j][1]
  li   r7, {INTERIOR}     # k iterations (even)
k_loop:
  fld  f10, 0(r8)
  fld  f11, -8(r8)
  fld  f12, 8(r8)
  fld  f13, -{DB}(r8)
  fld  f14, {DB}(r8)
  fld  f15, -{D2B}(r8)
  fld  f16, {D2B}(r8)
  fadd f17, f11, f12
  fadd f18, f13, f14
  fadd f19, f15, f16
  fadd f17, f17, f18
  fadd f17, f17, f19
  fmul f18, f10, f1
  fmul f19, f17, f2
  fadd f20, f18, f19
  fsd  f20, 0(r9)
  fld  f21, 8(r8)
  fld  f22, 0(r8)
  fld  f23, 16(r8)
  fld  f24, -{DBm8}(r8)
  fld  f25, {DBp8}(r8)
  fld  f26, -{D2Bm8}(r8)
  fld  f27, {D2Bp8}(r8)
  fadd f28, f22, f23
  fadd f29, f24, f25
  fadd f30, f26, f27
  fadd f28, f28, f29
  fadd f28, f28, f30
  fmul f29, f21, f1
  fmul f30, f28, f2
  fadd f31, f29, f30
  fsd  f31, 8(r9)
  addi r8, r8, 16
  addi r9, r9, 16
  addi r7, r7, -2
  bnez r7, k_loop
  addi r26, r26, 1
  blt  r26, r22, j_loop
  addi r25, r25, 1
  blt  r25, r22, i_loop
  mv   r14, r3            # ping-pong swap
  mv   r3, r4
  mv   r4, r14
  addi r11, r11, 1
  blt  r11, r12, sweep

  # checksum over the final grid (in r3 after the swap)
  cvtdi f5, r0
  li   r7, {CELLS}
  slli r7, r7, 3
  add  r7, r3, r7
check:
  fld  f6, 0(r3)
  fadd f5, f5, f6
  addi r3, r3, 8
  blt  r3, r7, check
  la   r9, result
  fsd  f5, 0(r9)
  cvtid r10, f5
  sd   r10, 8(r9)
  halt

.data
consts: .double 0.0000152587890625, 0.5, 0.5, 0.08333333333333333
gridA:  .space {CELLSB}
gridB:  .space {CELLSB}
result: .space 16
)";
  return subst(std::move(src),
               {{"D", d},
                {"SWEEPS", sweeps},
                {"INTERIOR", d - 2},
                {"DB", d * 8},
                {"DBm8", d * 8 - 8},
                {"DBp8", d * 8 + 8},
                {"D2B", d * d * 8},
                {"D2Bm8", d * d * 8 - 8},
                {"D2Bp8", d * d * 8 + 8},
                {"CELLS", cells},
                {"CELLSB", cells * 8}});
}

// ---------------------------------------------------------------------------
// tomcatv: 2-D mesh smoothing over two coordinate arrays X and Y with
// interleaved independent dependence chains and residual tracking (fabs +
// fmax), one divide per row.
// ---------------------------------------------------------------------------
std::string kernel_tomcatv(unsigned dim, unsigned iters) {
  const unsigned long long d = dim;
  std::string src = R"(# tomcatv analogue: mesh smoothing on two {D}x{D} coordinate arrays
main:
  li   r20, 1103515245
  li   r5, 424242
  la   r8, consts
  fld  f3, 0(r8)          # 1/65536
  fld  f9, 8(r8)          # 0.5
  fld  f1, 16(r8)         # 0.25
  fld  f2, 24(r8)         # relaxation 0.9
)" + fill_random_at("meshX", d * d, "x") +
                    fill_random_at("meshY", d * d, "y") +
                    R"(
  li   r11, 0             # iteration counter
  li   r12, {ITERS}
  la   r3, meshX
  la   r4, meshY
  li   r21, {D}
  addi r22, r21, -1
  cvtdi f30, r0           # running residual (fmax accumulator)
iter:
  li   r25, 1             # i (row)
row:
  # row scale = 1 / (1 + i/D): one fdiv per row, as in the original's RX/RY
  cvtdi f20, r25
  cvtdi f21, r21
  fdiv f20, f20, f21
  fld  f22, 32(r8)        # 1.0
  fadd f20, f20, f22
  fdiv f28, f22, f20      # row scale
  mul  r14, r25, r21
  addi r14, r14, 1
  slli r14, r14, 3
  add  r9, r3, r14        # &X[i][1]
  add  r10, r4, r14       # &Y[i][1]
  li   r7, {INTERIOR}
col:
  # X chain
  fld  f10, -8(r9)
  fld  f11, 8(r9)
  fld  f12, -{DB}(r9)
  fld  f13, {DB}(r9)
  fld  f14, 0(r9)
  fadd f15, f10, f11
  fadd f16, f12, f13
  fadd f15, f15, f16
  fmul f15, f15, f1       # neighbour average
  fmul f15, f15, f28      # row scaling
  fsub f17, f15, f14      # correction
  fmul f17, f17, f2
  fadd f18, f14, f17
  fsd  f18, 0(r9)
  fabs f17, f17
  fmax f30, f30, f17      # residual
  # Y chain (independent of X chain: doubles in-flight pressure)
  fld  f19, -8(r10)
  fld  f23, 8(r10)
  fld  f24, -{DB}(r10)
  fld  f25, {DB}(r10)
  fld  f26, 0(r10)
  fadd f27, f19, f23
  fadd f29, f24, f25
  fadd f27, f27, f29
  fmul f27, f27, f1
  fmul f27, f27, f28
  fsub f31, f27, f26
  fmul f31, f31, f2
  fadd f6, f26, f31
  fsd  f6, 0(r10)
  fabs f31, f31
  fmax f30, f30, f31
  addi r9, r9, 8
  addi r10, r10, 8
  addi r7, r7, -1
  bnez r7, col
  addi r25, r25, 1
  blt  r25, r22, row
  addi r11, r11, 1
  blt  r11, r12, iter

  # checksum: residual + X[D/2][D/2] + Y[D/2][D/2]
  la   r9, result
  fsd  f30, 0(r9)
  li   r14, {MID}
  slli r14, r14, 3
  add  r15, r3, r14
  fld  f10, 0(r15)
  add  r15, r4, r14
  fld  f11, 0(r15)
  fadd f10, f10, f11
  fsd  f10, 8(r9)
  halt

.data
consts: .double 0.0000152587890625, 0.5, 0.25, 0.9, 1.0
meshX:  .space {AREAB}
meshY:  .space {AREAB}
result: .space 16
)";
  return subst(std::move(src), {{"D", d},
                                {"ITERS", iters},
                                {"INTERIOR", d - 2},
                                {"DB", d * 8},
                                {"MID", (d / 2) * d + d / 2},
                                {"AREAB", d * d * 8}});
}

// ---------------------------------------------------------------------------
// applu: batched dense 5x5 LU factorization + forward/backward triangular
// solves on diagonally-dominant systems regenerated per batch.
// ---------------------------------------------------------------------------
std::string kernel_applu(unsigned systems) {
  std::string src = R"(# applu analogue: {SYS} dense 5x5 LU factorizations + solves
main:
  li   r20, 1103515245
  li   r5, 271828
  la   r8, consts
  fld  f3, 0(r8)          # 1/65536
  fld  f9, 8(r8)          # 0.5
  fld  f1, 16(r8)         # 10.0 (diagonal boost)
  cvtdi f29, r0           # solution checksum
  li   r11, 0             # system counter
  li   r12, {SYS}
system:
  # Regenerate A (5x5) and b (5) with values in [0.5, 1.5); A[i][i] += 10.
  la   r6, matA
  li   r10, 30            # 25 + 5 entries
  slli r10, r10, 3
  add  r10, r6, r10
gen:
  mul  r5, r5, r20
  addi r5, r5, 4321
  slli r5, r5, 32
  srli r5, r5, 32
  slli r9, r5, 40
  srli r9, r9, 48
  cvtdi f4, r9
  fmul f4, f4, f3
  fadd f4, f4, f9
  fsd  f4, 0(r6)
  addi r6, r6, 8
  blt  r6, r10, gen
  la   r6, matA
  li   r9, 0
diag:
  li   r14, 48            # (5*8)+8 bytes: stride between diagonal elements
  mul  r14, r14, r9
  add  r14, r6, r14
  fld  f4, 0(r14)
  fadd f4, f4, f1
  fsd  f4, 0(r14)
  addi r9, r9, 1
  slti r10, r9, 5
  bnez r10, diag

  # LU factorization, k = 0..4 (no pivoting: diagonally dominant).
  li   r9, 0              # k
lu_k:
  li   r14, 48
  mul  r14, r14, r9
  add  r14, r6, r14       # &A[k][k]
  fld  f10, 0(r14)
  fld  f11, 40(r8)        # 1.0
  fdiv f12, f11, f10      # inv pivot
  addi r10, r9, 1         # i
lu_i:
  slti r15, r10, 5
  beqz r15, lu_k_next
  # A[i][k] *= inv
  li   r15, 40
  mul  r15, r15, r10
  slli r16, r9, 3
  add  r15, r15, r16
  add  r15, r6, r15       # &A[i][k]
  fld  f13, 0(r15)
  fmul f13, f13, f12
  fsd  f13, 0(r15)
  # row update: A[i][j] -= A[i][k] * A[k][j], j = k+1..4
  addi r16, r9, 1         # j
lu_j:
  slti r17, r16, 5
  beqz r17, lu_i_next
  li   r17, 40
  mul  r17, r17, r10
  slli r18, r16, 3
  add  r17, r17, r18
  add  r17, r6, r17       # &A[i][j]
  li   r18, 40
  mul  r18, r18, r9
  slli r19, r16, 3
  add  r18, r18, r19
  add  r18, r6, r18       # &A[k][j]
  fld  f14, 0(r17)
  fld  f15, 0(r18)
  fmul f15, f15, f13
  fsub f14, f14, f15
  fsd  f14, 0(r17)
  addi r16, r16, 1
  b    lu_j
lu_i_next:
  addi r10, r10, 1
  b    lu_i
lu_k_next:
  addi r9, r9, 1
  slti r10, r9, 5
  bnez r10, lu_k

  # Forward solve Ly = b (unit diagonal), then backward solve Ux = y.
  la   r7, matA
  li   r14, 200           # b starts at offset 25*8
  add  r7, r7, r14        # &b[0]
  li   r9, 1              # i
fwd:
  li   r14, 40
  mul  r14, r14, r9
  add  r14, r6, r14       # &A[i][0]
  slli r15, r9, 3
  la   r16, matA
  li   r17, 200
  add  r16, r16, r17
  add  r15, r16, r15      # &b[i]
  fld  f16, 0(r15)
  li   r16, 0             # j
fwd_j:
  slli r17, r16, 3
  add  r17, r14, r17      # &A[i][j]
  fld  f17, 0(r17)
  la   r18, matA
  li   r19, 200
  add  r18, r18, r19
  slli r19, r16, 3
  add  r18, r18, r19      # &b[j]
  fld  f18, 0(r18)
  fmul f17, f17, f18
  fsub f16, f16, f17
  addi r16, r16, 1
  blt  r16, r9, fwd_j
  fsd  f16, 0(r15)
  addi r9, r9, 1
  slti r10, r9, 5
  bnez r10, fwd

  li   r9, 4              # backward: i = 4..0
bwd:
  li   r14, 40
  mul  r14, r14, r9
  add  r14, r6, r14       # &A[i][0]
  la   r16, matA
  li   r17, 200
  add  r16, r16, r17
  slli r15, r9, 3
  add  r15, r16, r15      # &b[i] (holds y, becomes x)
  fld  f16, 0(r15)
  addi r16, r9, 1         # j
bwd_j:
  slti r17, r16, 5
  beqz r17, bwd_div
  slli r17, r16, 3
  add  r17, r14, r17      # &A[i][j]
  fld  f17, 0(r17)
  la   r18, matA
  li   r19, 200
  add  r18, r18, r19
  slli r19, r16, 3
  add  r18, r18, r19
  fld  f18, 0(r18)        # x[j]
  fmul f17, f17, f18
  fsub f16, f16, f17
  addi r16, r16, 1
  b    bwd_j
bwd_div:
  slli r17, r9, 3
  add  r17, r14, r17      # &A[i][i]
  fld  f17, 0(r17)
  fdiv f16, f16, f17
  fsd  f16, 0(r15)
  fadd f29, f29, f16      # checksum accumulates every solution component
  addi r9, r9, -1
  bge  r9, r0, bwd

  addi r11, r11, 1
  blt  r11, r12, system

  la   r9, result
  fsd  f29, 0(r9)
  cvtid r10, f29
  sd   r10, 8(r9)
  halt

.data
consts: .double 0.0000152587890625, 0.5, 10.0, 0.0, 0.0, 1.0
matA:   .space 240
result: .space 16
)";
  return subst(std::move(src), {{"SYS", systems}});
}

// ---------------------------------------------------------------------------
// swim: shallow-water finite differences over three fields (U, V, P) with
// separate old/new arrays — a streaming, memory-bound FP kernel.
// ---------------------------------------------------------------------------
std::string kernel_swim(unsigned dim, unsigned steps) {
  const unsigned long long d = dim;
  std::string src = R"(# swim analogue: shallow-water update on three {D}x{D} fields
main:
  li   r20, 1103515245
  li   r5, 161803
  la   r8, consts
  fld  f3, 0(r8)          # 1/65536
  fld  f9, 8(r8)          # 0.5
  fld  f1, 16(r8)         # dt/dx = 0.1
  fld  f2, 24(r8)         # damping 0.99
)" + fill_random_at("fieldU", d * d, "u") +
                    fill_random_at("fieldV", d * d, "v") +
                    fill_random_at("fieldP", d * d, "p") +
                    R"(
  li   r11, 0
  li   r12, {STEPS}
step:
  la   r3, fieldU
  la   r4, fieldV
  la   r6, fieldP
  la   r13, newU
  la   r14, newV
  la   r15, newP
  li   r21, {D}
  addi r22, r21, -1
  li   r25, 1             # i
srow:
  mul  r16, r25, r21
  addi r16, r16, 1
  slli r16, r16, 3        # byte offset of (i,1)
  li   r7, {INTERIOR}
scol:
  add  r9, r6, r16        # &P[i][j]
  fld  f10, 8(r9)         # P east
  fld  f11, -8(r9)        # P west
  fld  f12, {DB}(r9)      # P south
  fld  f13, -{DB}(r9)     # P north
  add  r9, r3, r16
  fld  f14, 0(r9)         # U
  add  r10, r4, r16
  fld  f15, 0(r10)        # V
  fsub f16, f10, f11      # dP/dx
  fsub f17, f12, f13      # dP/dy
  fmul f16, f16, f1
  fmul f17, f17, f1
  fsub f18, f14, f16      # U' = U - dt*dP/dx
  fsub f19, f15, f17      # V' = V - dt*dP/dy
  fmul f18, f18, f2
  fmul f19, f19, f2
  add  r9, r13, r16
  fsd  f18, 0(r9)
  add  r9, r14, r16
  fsd  f19, 0(r9)
  # P' = P - dt*(dU/dx + dV/dy)
  add  r9, r3, r16
  fld  f20, 8(r9)
  fld  f21, -8(r9)
  add  r10, r4, r16
  fld  f22, {DB}(r10)
  fld  f23, -{DB}(r10)
  fsub f24, f20, f21
  fsub f25, f22, f23
  fadd f24, f24, f25
  fmul f24, f24, f1
  add  r9, r6, r16
  fld  f26, 0(r9)
  fsub f26, f26, f24
  add  r9, r15, r16
  fsd  f26, 0(r9)
  addi r16, r16, 8
  addi r7, r7, -1
  bnez r7, scol
  addi r25, r25, 1
  blt  r25, r22, srow
  # copy new -> old (interior only would leave borders; copy all cells)
  la   r3, fieldU
  la   r13, newU
  li   r7, {CELLS3}
  slli r7, r7, 3
  add  r7, r3, r7         # U,V,P are contiguous: one bulk copy
copy:
  fld  f10, 0(r13)
  fsd  f10, 0(r3)
  addi r3, r3, 8
  addi r13, r13, 8
  blt  r3, r7, copy
  addi r11, r11, 1
  blt  r11, r12, step

  # checksum: sum of P
  la   r6, fieldP
  li   r7, {CELLS}
  slli r7, r7, 3
  add  r7, r6, r7
  cvtdi f5, r0
scheck:
  fld  f6, 0(r6)
  fadd f5, f5, f6
  addi r6, r6, 8
  blt  r6, r7, scheck
  la   r9, result
  fsd  f5, 0(r9)
  halt

.data
consts: .double 0.0000152587890625, 0.5, 0.1, 0.99
fieldU: .space {AREAB}
fieldV: .space {AREAB}
fieldP: .space {AREAB}
newU:   .space {AREAB}
newV:   .space {AREAB}
newP:   .space {AREAB}
result: .space 16
)";
  return subst(std::move(src), {{"D", d},
                                {"STEPS", steps},
                                {"INTERIOR", d - 2},
                                {"DB", d * 8},
                                {"CELLS", d * d},
                                {"CELLS3", d * d * 3},
                                {"AREAB", d * d * 8}});
}

// ---------------------------------------------------------------------------
// hydro2d: directional flux sweeps with upwind limiters (fabs, fmin, fmax)
// over density/momentum fields.
// ---------------------------------------------------------------------------
std::string kernel_hydro2d(unsigned dim, unsigned steps) {
  const unsigned long long d = dim;
  std::string src = R"(# hydro2d analogue: limiter-based flux sweeps on {D}x{D} fields
main:
  li   r20, 1103515245
  li   r5, 141421
  la   r8, consts
  fld  f3, 0(r8)          # 1/65536
  fld  f9, 8(r8)          # 0.5
  fld  f1, 16(r8)         # courant 0.4
  fld  f2, 24(r8)         # floor 0.05
)" + fill_random_at("rho", d * d, "r") +
                    fill_random_at("mom", d * d, "m") +
                    R"(
  li   r11, 0
  li   r12, {STEPS}
hstep:
  la   r3, rho
  la   r4, mom
  li   r21, {D}
  addi r22, r21, -1
  # --- horizontal sweep ---
  li   r25, 1
hrow:
  mul  r16, r25, r21
  addi r16, r16, 1
  slli r16, r16, 3
  add  r9, r3, r16        # &rho[i][1]
  add  r10, r4, r16       # &mom[i][1]
  li   r7, {INTERIOR}
hcol:
  fld  f10, -8(r9)        # q west
  fld  f11, 0(r9)         # q
  fld  f12, 8(r9)         # q east
  fld  f13, 0(r10)        # velocity proxy
  fabs f14, f13
  fmax f14, f14, f2       # |v| floored
  fsub f15, f12, f11      # right slope
  fsub f16, f11, f10      # left slope
  fmin f17, f15, f16      # minmod-ish limiter
  fmax f18, f15, f16
  fabs f19, f17
  fabs f20, f18
  fmin f21, f19, f20
  fadd f22, f10, f12
  fmul f22, f22, f9       # centred average
  fmul f23, f14, f21      # dissipation
  fsub f24, f22, f23
  fsub f24, f24, f11      # correction
  fmul f24, f24, f1
  fadd f25, f11, f24
  fsd  f25, 0(r9)
  # momentum advects with the limited flux
  fmul f26, f24, f13
  fadd f27, f13, f26
  fmul f27, f27, f9
  fadd f27, f27, f13
  fmul f27, f27, f9
  fsd  f27, 0(r10)
  addi r9, r9, 8
  addi r10, r10, 8
  addi r7, r7, -1
  bnez r7, hcol
  addi r25, r25, 1
  blt  r25, r22, hrow
  # --- vertical sweep (stride D) ---
  li   r26, 1             # column
vcol_outer:
  addi r16, r21, 0
  add  r16, r16, r26      # index (1, j)
  slli r16, r16, 3
  add  r9, r3, r16
  add  r10, r4, r16
  li   r7, {INTERIOR}
vrow:
  fld  f10, -{DB}(r9)
  fld  f11, 0(r9)
  fld  f12, {DB}(r9)
  fld  f13, 0(r10)
  fabs f14, f13
  fmax f14, f14, f2
  fsub f15, f12, f11
  fsub f16, f11, f10
  fmin f17, f15, f16
  fmax f18, f15, f16
  fabs f19, f17
  fabs f20, f18
  fmin f21, f19, f20
  fadd f22, f10, f12
  fmul f22, f22, f9
  fmul f23, f14, f21
  fsub f24, f22, f23
  fsub f24, f24, f11
  fmul f24, f24, f1
  fadd f25, f11, f24
  fsd  f25, 0(r9)
  fmul f26, f24, f13
  fadd f27, f13, f26
  fmul f27, f27, f9
  fadd f27, f27, f13
  fmul f27, f27, f9
  fsd  f27, 0(r10)
  addi r9, r9, {DB}
  addi r10, r10, {DB}
  addi r7, r7, -1
  bnez r7, vrow
  addi r26, r26, 1
  blt  r26, r22, vcol_outer
  addi r11, r11, 1
  blt  r11, r12, hstep

  # checksum: sum of rho + max |mom|
  la   r6, rho
  li   r7, {CELLS}
  slli r7, r7, 3
  add  r7, r6, r7
  cvtdi f5, r0
  cvtdi f6, r0
hcheck:
  fld  f7, 0(r6)
  fadd f5, f5, f7
  addi r6, r6, 8
  blt  r6, r7, hcheck
  la   r6, mom
  li   r7, {CELLS}
  slli r7, r7, 3
  add  r7, r6, r7
mcheck:
  fld  f7, 0(r6)
  fabs f7, f7
  fmax f6, f6, f7
  addi r6, r6, 8
  blt  r6, r7, mcheck
  la   r9, result
  fsd  f5, 0(r9)
  fsd  f6, 8(r9)
  halt

.data
consts: .double 0.0000152587890625, 0.5, 0.4, 0.05
rho:    .space {AREAB}
mom:    .space {AREAB}
result: .space 16
)";
  return subst(std::move(src), {{"D", d},
                                {"STEPS", steps},
                                {"INTERIOR", d - 2},
                                {"DB", d * 8},
                                {"CELLS", d * d},
                                {"AREAB", d * d * 8}});
}

}  // namespace erel::workloads
