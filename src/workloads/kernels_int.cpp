// Integer kernels (compress / gcc / go / li / perl analogues).
//
// Register conventions inside kernels: r1 = ra (link), r2 = sp (stack, grows
// down from 0x200000), r3..r30 scratch. All data lives in the .data section
// reached via `la`.
#include <string>

#include "workloads/workloads.hpp"

namespace erel::workloads {

namespace {

/// Replaces every "{KEY}" in `text` with `value`.
std::string subst(std::string text, const std::string& key,
                  unsigned long long value) {
  const std::string pattern = "{" + key + "}";
  const std::string repl = std::to_string(value);
  for (std::size_t pos = text.find(pattern); pos != std::string::npos;
       pos = text.find(pattern, pos)) {
    text.replace(pos, pattern.size(), repl);
    pos += repl.size();
  }
  return text;
}

}  // namespace

// ---------------------------------------------------------------------------
// compress: LZW over a run-biased pseudo-random byte stream. Hash probing,
// byte loads, unpredictable branches — the classic compress profile.
// ---------------------------------------------------------------------------
std::string kernel_compress(unsigned bytes) {
  return subst(R"(# compress analogue: LZW with a 4096-entry chained hash dictionary
main:
  la   r3, inbuf
  li   r5, 12345          # LCG state
  li   r6, 0              # previous byte (run bias)
  li   r4, 0
  li   r7, {N}            # input length
  li   r20, 1103515245    # LCG multiplier
gen_loop:
  mul  r5, r5, r20
  addi r5, r5, 6789
  slli r5, r5, 32         # keep 32 bits of state
  srli r5, r5, 32
  srli r8, r5, 16
  andi r8, r8, 63         # candidate byte, 64-symbol alphabet
  srli r9, r5, 22
  andi r9, r9, 7
  slti r9, r9, 5          # 5/8 probability: repeat previous byte
  beqz r9, gen_store
  mv   r8, r6
gen_store:
  add  r10, r3, r4
  sb   r8, 0(r10)
  mv   r6, r8
  addi r4, r4, 1
  blt  r4, r7, gen_loop

  # ---- LZW encode ----
  la   r13, htab_keys
  la   r14, htab_vals
  li   r10, 0             # emitted-code checksum
  li   r11, 0             # emitted-code count
  li   r12, 64            # next dictionary code
  li   r21, 0x9E3779B1    # Fibonacci hash multiplier
  li   r22, 3072          # dictionary cap: 75% load keeps probes short
  lbu  r5, 0(r3)          # w = buf[0]
  li   r4, 1
lzw_loop:
  add  r15, r3, r4
  lbu  r6, 0(r15)         # c = buf[i]
  slli r8, r5, 8
  or   r8, r8, r6
  addi r8, r8, 1          # key = (w<<8|c)+1, 0 means empty slot
  mul  r9, r8, r21
  srli r9, r9, 16
  andi r9, r9, 4095
probe:
  slli r15, r9, 2
  add  r15, r13, r15
  lw   r17, 0(r15)
  beqz r17, miss
  beq  r17, r8, hit
  addi r9, r9, 1
  andi r9, r9, 4095
  b    probe
hit:
  slli r15, r9, 2
  add  r15, r14, r15
  lw   r5, 0(r15)         # w = dict code, keep extending
  b    lzw_next
miss:
  slli r17, r10, 5        # emit w: sum = sum*31 + w
  sub  r10, r17, r10
  add  r10, r10, r5
  addi r11, r11, 1
  bge  r12, r22, noinsert # dictionary full
  slli r15, r9, 2
  add  r17, r13, r15
  sw   r8, 0(r17)
  add  r17, r14, r15
  sw   r12, 0(r17)
  addi r12, r12, 1
noinsert:
  mv   r5, r6             # restart from c
lzw_next:
  addi r4, r4, 1
  blt  r4, r7, lzw_loop
  slli r17, r10, 5        # final emit of w
  sub  r10, r17, r10
  add  r10, r10, r5
  addi r11, r11, 1
  la   r15, result
  sd   r10, 0(r15)
  sd   r11, 8(r15)
  sd   r12, 16(r15)
  halt

.data
inbuf:     .space {N}
.align 8
htab_keys: .space 16384
htab_vals: .space 16384
result:    .space 32
)",
               "N", bytes);
}

// ---------------------------------------------------------------------------
// gcc: a compiler-ish pass — a synthetic token stream dispatched through a
// jump table of handlers (indirect jumps), with an operand stack and a
// symbol hash. Branchy, pointer-heavy, irregular.
// ---------------------------------------------------------------------------
std::string kernel_gcc(unsigned tokens) {
  return subst(R"(# gcc analogue: token dispatch through a jump table + symbol hashing
main:
  # Build the jump table (8 handlers, 8-byte slots).
  la   r3, jumptab
  la   r4, op_push
  sd   r4, 0(r3)
  la   r4, op_add
  sd   r4, 8(r3)
  la   r4, op_sub
  sd   r4, 16(r3)
  la   r4, op_dup
  sd   r4, 24(r3)
  la   r4, op_hash
  sd   r4, 32(r3)
  la   r4, op_load
  sd   r4, 40(r3)
  la   r4, op_store
  sd   r4, 48(r3)
  la   r4, op_nopop
  sd   r4, 56(r3)

  la   r5, stackbuf       # operand stack base
  li   r6, 0              # stack depth
  la   r7, symtab         # 256-entry symbol table
  li   r8, 99991          # token LCG state
  li   r9, 0              # token counter
  li   r10, {N}           # total tokens
  li   r11, 0             # checksum
  li   r20, 1103515245
dispatch:
  mul  r8, r8, r20
  addi r8, r8, 6789
  slli r8, r8, 32
  srli r8, r8, 32
  srli r12, r8, 13
  andi r12, r12, 7        # opcode 0..7
  slli r13, r12, 3
  la   r3, jumptab
  add  r13, r3, r13
  ld   r13, 0(r13)
  jalr r1, r13, 0         # indirect dispatch (BTB workout)
  addi r9, r9, 1
  blt  r9, r10, dispatch
  b    finish

op_push:                  # push a token-derived value
  srli r14, r8, 5
  andi r14, r14, 1023
  slli r15, r6, 3
  add  r15, r5, r15
  sd   r14, 0(r15)
  addi r6, r6, 1
  andi r6, r6, 63         # wrap depth (bounded stack)
  ret
op_add:
  beqz r6, under1
  addi r6, r6, -1
  slli r15, r6, 3
  add  r15, r5, r15
  ld   r14, 0(r15)
  add  r11, r11, r14
under1:
  ret
op_sub:
  beqz r6, under2
  addi r6, r6, -1
  slli r15, r6, 3
  add  r15, r5, r15
  ld   r14, 0(r15)
  sub  r11, r11, r14
under2:
  ret
op_dup:
  beqz r6, under3
  addi r15, r6, -1
  slli r15, r15, 3
  add  r15, r5, r15
  ld   r14, 0(r15)
  slli r16, r6, 3
  add  r16, r5, r16
  sd   r14, 0(r16)
  addi r6, r6, 1
  andi r6, r6, 63
under3:
  ret
op_hash:                  # intern a symbol: open-addressed byte table
  srli r14, r8, 7
  andi r14, r14, 255
  li   r17, 16            # probe cap so a full table cannot spin
hash_probe:
  add  r15, r7, r14
  lbu  r16, 0(r15)
  beqz r16, hash_insert
  addi r14, r14, 1
  andi r14, r14, 255
  addi r17, r17, -1
  bnez r17, hash_probe
  ret
hash_insert:
  li   r16, 1
  sb   r16, 0(r15)
  addi r11, r11, 1
  ret
op_load:
  srli r14, r8, 9
  andi r14, r14, 255
  add  r15, r7, r14
  lbu  r16, 0(r15)
  add  r11, r11, r16
  ret
op_store:
  srli r14, r8, 11
  andi r14, r14, 255
  add  r15, r7, r14
  andi r16, r11, 1
  sb   r16, 0(r15)
  ret
op_nopop:
  xori r11, r11, 0x55
  ret

finish:
  la   r15, result
  sd   r11, 0(r15)
  sd   r6, 8(r15)
  halt

.data
jumptab:  .space 64
stackbuf: .space 512
symtab:   .space 256
result:   .space 16
)",
               "N", tokens);
}

// ---------------------------------------------------------------------------
// go: board-scanning sweeps over a 19x19 byte board with data-dependent
// neighbour comparisons (liberty counting style) and board mutation.
// ---------------------------------------------------------------------------
std::string kernel_go(unsigned sweeps) {
  return subst(R"(# go analogue: influence sweeps over a 19x19 board
main:
  # Fill the board with pseudo-random stones: 0 empty, 1 black, 2 white.
  la   r3, board
  li   r4, 0
  li   r5, 361            # 19*19
  li   r6, 777
  li   r20, 1103515245
fill:
  mul  r6, r6, r20
  addi r6, r6, 999
  slli r6, r6, 32
  srli r6, r6, 32
  srli r7, r6, 17
  andi r7, r7, 3
  slti r8, r7, 3          # value 3 maps to 0 (bias toward empty points)
  bnez r8, fill_put
  li   r7, 0
fill_put:
  add  r8, r3, r4
  sb   r7, 0(r8)
  addi r4, r4, 1
  blt  r4, r5, fill

  li   r9, 0              # sweep counter
  li   r10, {SWEEPS}
  li   r11, 0             # global influence checksum
sweep:
  li   r4, 20             # skip top row: start at (1,1)
inner:
  # cell index r4; neighbours at +-1, +-19
  add  r8, r3, r4
  lbu  r12, 0(r8)
  beqz r12, next_cell     # empty: nothing to do
  li   r13, 0             # liberty count
  lbu  r14, -1(r8)
  bnez r14, n1
  addi r13, r13, 1
n1:
  lbu  r14, 1(r8)
  bnez r14, n2
  addi r13, r13, 1
n2:
  lbu  r14, -19(r8)
  bnez r14, n3
  addi r13, r13, 1
n3:
  lbu  r14, 19(r8)
  bnez r14, n4
  addi r13, r13, 1
n4:
  # stones with no liberties flip colour (toy capture rule)
  bnez r13, alive
  li   r14, 3
  sub  r14, r14, r12      # 1<->2
  add  r8, r3, r4
  sb   r14, 0(r8)
  addi r11, r11, 7
  b    next_cell
alive:
  slli r14, r12, 1
  add  r14, r14, r13
  add  r11, r11, r14
next_cell:
  addi r4, r4, 1
  li   r14, 340           # last interior cell (17*19+18 < 341)
  blt  r4, r14, inner
  addi r9, r9, 1
  blt  r9, r10, sweep

  la   r15, result
  sd   r11, 0(r15)
  halt

.data
board:  .space 368
result: .space 16
)",
               "SWEEPS", sweeps);
}

// ---------------------------------------------------------------------------
// li: N-queens by recursive backtracking — the paper's lisp benchmark ran
// "7 queens". Deep call trees, stack traffic, short data-dependent branches.
// The solution count lands in result (92 for the default 8 queens).
// ---------------------------------------------------------------------------
std::string kernel_li(unsigned queens) {
  return subst(R"(# li analogue: {Q}-queens recursive backtracking
main:
  li   r2, 0x200000       # stack pointer
  li   r3, 0              # solution count
  la   r4, cols           # attack arrays
  la   r5, diag1
  la   r6, diag2
  li   r7, {Q}            # board size
  li   r8, 0              # current row
  call place
  la   r15, result
  sd   r3, 0(r15)
  halt

# place(row=r8): tries every column; r3 accumulates solutions.
place:
  beq  r8, r7, solution
  addi r2, r2, -16
  sd   r1, 0(r2)
  sd   r9, 8(r2)          # save column iterator
  li   r9, 0              # column
try_col:
  add  r10, r4, r9
  lbu  r11, 0(r10)
  bnez r11, skip          # column attacked
  add  r12, r8, r9        # diag1 index
  add  r13, r5, r12
  lbu  r11, 0(r13)
  bnez r11, skip
  sub  r14, r8, r9        # diag2 index (+Q to stay positive)
  add  r14, r14, r7
  add  r15, r6, r14
  lbu  r11, 0(r15)
  bnez r11, skip
  # mark
  li   r11, 1
  sb   r11, 0(r10)
  sb   r11, 0(r13)
  sb   r11, 0(r15)
  addi r8, r8, 1
  call place
  addi r8, r8, -1
  # unmark (recompute addresses: callee clobbered temps)
  add  r10, r4, r9
  sb   r0, 0(r10)
  add  r12, r8, r9
  add  r13, r5, r12
  sb   r0, 0(r13)
  sub  r14, r8, r9
  add  r14, r14, r7
  add  r15, r6, r14
  sb   r0, 0(r15)
skip:
  addi r9, r9, 1
  blt  r9, r7, try_col
  ld   r1, 0(r2)
  ld   r9, 8(r2)
  addi r2, r2, 16
  ret
solution:
  addi r3, r3, 1
  ret

.data
cols:   .space 32
diag1:  .space 64
diag2:  .space 64
result: .space 16
)",
               "Q", queens);
}

// ---------------------------------------------------------------------------
// perl: string scoring — walk a generated dictionary, score each word with a
// letter-value table (scrabble style), and count prefix-hash hits.
// ---------------------------------------------------------------------------
std::string kernel_perl(unsigned passes) {
  return subst(R"(# perl analogue: word scoring + prefix hashing over a generated dictionary
main:
  # Letter values 1..10 for a 26-letter alphabet.
  la   r3, lettertab
  li   r4, 0
lv_loop:
  mul  r5, r4, r4
  addi r5, r5, 3
  li   r6, 10
  rem  r5, r5, r6
  addi r5, r5, 1
  add  r6, r3, r4
  sb   r5, 0(r6)
  addi r4, r4, 1
  slti r5, r4, 26
  bnez r5, lv_loop

  # Generate 512 words of 3..10 letters, NUL-terminated, 12-byte slots.
  la   r7, words
  li   r8, 4242           # LCG state
  li   r9, 0              # word index
  li   r20, 1103515245
gen_words:
  mul  r8, r8, r20
  addi r8, r8, 321
  slli r8, r8, 32
  srli r8, r8, 32
  srli r10, r8, 9
  andi r10, r10, 7
  addi r10, r10, 3        # length 3..10
  slli r11, r9, 3
  slli r12, r9, 2
  add  r11, r11, r12      # word base = words + 12*i
  add  r11, r7, r11
  li   r12, 0             # letter position
gen_letters:
  mul  r8, r8, r20
  addi r8, r8, 321
  slli r8, r8, 32
  srli r8, r8, 32
  srli r13, r8, 11
  li   r14, 26
  rem  r13, r13, r14
  add  r14, r11, r12
  sb   r13, 0(r14)
  addi r12, r12, 1
  blt  r12, r10, gen_letters
  add  r14, r11, r12
  li   r13, 255           # terminator (letters are 0..25)
  sb   r13, 0(r14)
  addi r9, r9, 1
  slti r10, r9, 512
  bnez r10, gen_words

  # Score every word, PASSES times; hash 3-letter prefixes into a set.
  li   r15, 0             # pass counter
  li   r16, {PASSES}
  li   r17, 0             # total score
  li   r18, 0             # prefix-set insert count
  la   r19, prefixset
score_pass:
  li   r9, 0
score_word:
  slli r11, r9, 3
  slli r12, r9, 2
  add  r11, r11, r12
  add  r11, r7, r11       # word base
  li   r12, 0             # position
  li   r13, 0             # word score
  li   r21, 0             # prefix hash
score_letter:
  add  r14, r11, r12
  lbu  r10, 0(r14)
  li   r14, 255
  beq  r10, r14, word_done
  add  r14, r3, r10
  lbu  r14, 0(r14)        # letter value
  add  r13, r13, r14
  slti r14, r12, 3        # first 3 letters feed the prefix hash
  beqz r14, no_prefix
  slli r21, r21, 5
  add  r21, r21, r10
no_prefix:
  addi r12, r12, 1
  b    score_letter
word_done:
  # double-letter-score if length is even
  andi r14, r12, 1
  bnez r14, odd_len
  slli r13, r13, 1
odd_len:
  add  r17, r17, r13
  # prefix set membership (1024 buckets)
  andi r21, r21, 1023
  add  r14, r19, r21
  lbu  r10, 0(r14)
  bnez r10, seen
  li   r10, 1
  sb   r10, 0(r14)
  addi r18, r18, 1
seen:
  addi r9, r9, 1
  slti r10, r9, 512
  bnez r10, score_word
  addi r15, r15, 1
  blt  r15, r16, score_pass

  la   r14, result
  sd   r17, 0(r14)
  sd   r18, 8(r14)
  halt

.data
lettertab: .space 32
words:     .space 6144
prefixset: .space 1024
result:    .space 16
)",
               "PASSES", passes);
}

}  // namespace erel::workloads
