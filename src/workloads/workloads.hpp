// Workload registry: ten kernels mirroring the paper's Table 3 SPEC95
// subset (five integer, five floating-point). SPEC binaries and the Compaq
// compilers are not available, so each kernel is a from-scratch assembly
// program exercising the same behavioural regime as its namesake:
//
//   compress - LZW dictionary compression of a synthetic run-biased stream
//   gcc      - token stream dispatch through a jump table + symbol hashing
//   go       - board scanning with data-dependent neighbour tests
//   li       - 8-queens recursive backtracking (the paper ran "7 queens")
//   perl     - string scoring with letter tables and prefix hashing
//   mgrid    - 3-D 7-point stencil relaxation (multigrid smoother)
//   tomcatv  - 2-D mesh smoothing with long FP dependence chains
//   applu    - batched dense 5x5 LU factorization + triangular solves
//   swim     - shallow-water finite differences over three 2-D fields
//   hydro2d  - 2-D hydrodynamics flux sweeps with min/max limiters
//
// Two interrupt-driven kernels (no SPEC95 namesake) round out the set,
// exercising the src/dev/ device model and asynchronous trap delivery:
//
//   timer    - LCG checksum loop under a periodic timer interrupt
//   echo     - console echo server driven by RX interrupts
//
// "timer@N" / "echo@N" resolve the same kernels at device period N.
//
// Each kernel self-checks by storing checksums at its `result` label; the
// functional oracle validates every committed instruction during simulation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "arch/program.hpp"

namespace erel::workloads {

struct Workload {
  std::string name;         // SPEC95 analogue name
  std::string description;  // what the kernel computes
  std::string input;        // Table 3 "inputs" analogue (scale description)
  bool is_fp = false;
  std::string source;       // assembly text
};

/// All twelve kernels at their default (benchmark) scale.
const std::vector<Workload>& registry();

/// Lookup by name; aborts on unknown names.
const Workload& workload(const std::string& name);

/// Lookup by name; nullptr on unknown names (CLI validation paths that
/// want a usage message instead of an abort). Besides the registry names,
/// resolves the parameterized interrupt kernels "timer@N" / "echo@N"
/// (device period N retired instructions, N >= 32) on demand; resolved
/// instances are cached with stable addresses.
const Workload* find_workload(const std::string& name);

/// Name scheme for the trace-replay workload family: "trace:<path>" resolves
/// to the program image embedded in a recorded binary trace (src/trace/),
/// so recorded runs re-simulate under any configuration without their
/// original assembly source.
inline constexpr std::string_view kTracePrefix = "trace:";
bool is_trace_workload(const std::string& name);

/// Assembles a workload: registry kernels by name, recorded traces via the
/// "trace:<path>" scheme.
arch::Program assemble_workload(const std::string& name);

/// Integer kernel generators (scale >= 1; default scales in workloads.cpp).
std::string kernel_compress(unsigned bytes);
std::string kernel_gcc(unsigned tokens);
std::string kernel_go(unsigned sweeps);
std::string kernel_li(unsigned queens);
std::string kernel_perl(unsigned passes);

/// Interrupt-driven kernel generators (src/dev/ device model): a periodic
/// timer tick counter and a console RX echo handler. `period` is in retired
/// instructions and must be >= 32 so the handler returns before the next
/// event fires. Resolvable at any period via the "timer@N" / "echo@N" name
/// scheme in find_workload().
std::string kernel_timer(unsigned iters, unsigned period);
std::string kernel_echo(unsigned echoes, unsigned period);

/// Floating-point kernel generators.
std::string kernel_mgrid(unsigned dim, unsigned sweeps);
std::string kernel_tomcatv(unsigned dim, unsigned iters);
std::string kernel_applu(unsigned systems);
std::string kernel_swim(unsigned dim, unsigned steps);
std::string kernel_hydro2d(unsigned dim, unsigned steps);

/// Names in Table 3 order (int then FP).
const std::vector<std::string>& workload_names();

}  // namespace erel::workloads
