// Interrupt-driven kernels (timer / echo): the device-model workloads.
//
// Unlike the Table 3 analogues these are built around the memory-mapped
// device page (src/dev/): a programmable interval timer and a console with
// a synthetic RX source. Interrupt delivery squashes the speculative path
// at the head of the ROS, so these kernels stress exactly the rollback
// machinery the release policies differ on.
//
// Handler register convention: asynchronous delivery can land between any
// two instructions, and there is no banked register file, so the handler
// may only touch registers the main loop never reads after the device is
// enabled. These kernels reserve r25..r30 for the handler (r30 = device
// base, kept live by main as well) and keep all main-loop state in
// r3..r12.
#include <string>

#include "common/log.hpp"
#include "workloads/workloads.hpp"

namespace erel::workloads {

namespace {

/// Replaces every "{KEY}" in `text` with `value` (local copy of the
/// kernels_int.cpp helper; both TUs keep their generators self-contained).
std::string subst(std::string text, const std::string& key,
                  unsigned long long value) {
  const std::string pattern = "{" + key + "}";
  const std::string repl = std::to_string(value);
  for (std::size_t pos = text.find(pattern); pos != std::string::npos;
       pos = text.find(pattern, pos)) {
    text.replace(pos, pattern.size(), repl);
    pos += repl.size();
  }
  return text;
}

}  // namespace

// ---------------------------------------------------------------------------
// timer: a fixed-length LCG checksum loop with a PIT firing every {P}
// retired instructions. The handler counts ticks and folds the interrupt
// cause into a sum; the main loop's result is deterministic regardless of
// where the ticks land, which is exactly what the bit-identity tests pin.
// ---------------------------------------------------------------------------
std::string kernel_timer(unsigned iters, unsigned period) {
  EREL_CHECK(iters >= 1 && period >= 32,
             "timer kernel: iters >= 1 and period >= 32 required (shorter "
             "periods re-enter the handler before it returns)");
  std::string text = subst(R"(# timer analogue: LCG compute loop under a periodic interrupt
main:
  li   r30, 0xFFFF0000    # device base (kept live for the handler)
  li   r25, 0             # handler: tick count
  li   r26, 0             # handler: cause accumulator
  la   r3, timer_isr
  sd   r3, 0x18(r30)      # INTC_VECTOR
  li   r3, 1
  sd   r3, 0x10(r30)      # INTC_MASK = PIT line
  li   r3, {P}
  sd   r3, 0x40(r30)      # PIT_RELOAD: fire every {P} retired insts
  li   r3, 1
  sd   r3, 0x08(r30)      # INTC_ENABLE: MIE on (armed last)

  li   r4, 0              # i
  li   r5, 987654321      # LCG state
  li   r6, {M}            # iterations
  li   r7, 1103515245
  li   r8, 0              # checksum
loop:
  mul  r5, r5, r7
  addi r5, r5, 6789
  slli r5, r5, 32
  srli r5, r5, 32
  xor  r8, r8, r5
  addi r4, r4, 1
  blt  r4, r6, loop

  sd   r0, 0x08(r30)      # MIE off: results below are read atomically
  ld   r9, 0x50(r30)      # PIT_TICKS (device-side fire count)
  la   r10, result
  slli r11, r8, 1
  ori  r11, r11, 1        # result0 = checksum<<1|1 (provably nonzero)
  sd   r11, 0(r10)
  sd   r25, 8(r10)        # result8 = handler tick count
  sd   r9, 16(r10)        # result16 = device tick count
  sd   r26, 24(r10)       # result24 = cause accumulator
  halt

timer_isr:
  addi r25, r25, 1
  ld   r27, 0x28(r30)     # INTC_CAUSE
  add  r26, r26, r27
  addi r26, r26, 1
  iret

.data
.align 8
result: .space 32
)",
                           "M", iters);
  return subst(std::move(text), "P", period);
}

// ---------------------------------------------------------------------------
// echo: a console echo server. The RX source deposits one byte every {Q}
// retired instructions; each byte raises the RX line, the handler pops it,
// transmits byte+1, and returns. The main loop spins on an LCG hash until
// {K} bytes have been echoed, so the dynamic length is set by the device
// clock rather than the loop bound.
// ---------------------------------------------------------------------------
std::string kernel_echo(unsigned echoes, unsigned period) {
  EREL_CHECK(echoes >= 1 && period >= 32,
             "echo kernel: echoes >= 1 and period >= 32 required (shorter "
             "periods re-enter the handler before it returns)");
  std::string text = subst(R"(# echo analogue: interrupt-driven console echo
main:
  li   r30, 0xFFFF0000    # device base (kept live for the handler)
  li   r25, 0             # handler: echoed-byte count
  la   r3, rx_isr
  sd   r3, 0x18(r30)      # INTC_VECTOR
  li   r3, 2
  sd   r3, 0x10(r30)      # INTC_MASK = RX line
  li   r3, {Q}
  sd   r3, 0x98(r30)      # CON_RX_PERIOD: one byte every {Q} insts
  li   r3, 1
  sd   r3, 0x08(r30)      # INTC_ENABLE: MIE on (armed last)

  li   r4, 424242         # spin-loop LCG state
  li   r5, 1103515245
  li   r6, {K}            # target echo count
spin:
  mul  r4, r4, r5
  addi r4, r4, 7919
  slli r4, r4, 32
  srli r4, r4, 32
  blt  r25, r6, spin

  sd   r0, 0x08(r30)      # MIE off: results below are read atomically
  ld   r7, 0x90(r30)      # CON_TX_SUM
  ld   r8, 0x88(r30)      # CON_TX_COUNT
  la   r9, result
  slli r10, r7, 1
  ori  r10, r10, 1        # result0 = tx checksum<<1|1 (provably nonzero)
  sd   r10, 0(r9)
  sd   r8, 8(r9)          # result8 = transmitted-byte count
  sd   r25, 16(r9)        # result16 = handler echo count
  halt

rx_isr:
  ld   r26, 0xA0(r30)     # CON_RX_HEAD (~0 when empty)
  addi r27, r26, 1
  beqz r27, rx_done       # spurious: FIFO drained already
  sd   r26, 0xA8(r30)     # CON_RX_POP (consume the byte)
  addi r28, r26, 1
  sd   r28, 0x80(r30)     # CON_TX: echo byte+1
  addi r25, r25, 1
rx_done:
  iret

.data
.align 8
result: .space 32
)",
                           "K", echoes);
  return subst(std::move(text), "Q", period);
}

}  // namespace erel::workloads
