#include "workloads/workloads.hpp"

#include <map>
#include <mutex>

#include "asmkit/assembler.hpp"
#include "common/log.hpp"
#include "trace/capture.hpp"

namespace erel::workloads {

namespace {

std::vector<Workload> build_registry() {
  std::vector<Workload> w;
  // Default scales target a few hundred thousand dynamic instructions per
  // kernel: roughly 300-1000x smaller than the paper's Table 3 runs, which
  // keeps the full Figure 11 sweep (390 simulations) tractable while staying
  // far above the pipeline's warm-up transient.
  w.push_back({"compress", "LZW over a run-biased 16 KB stream",
               "16384 bytes, 64-symbol alphabet", false,
               kernel_compress(16384)});
  w.push_back({"gcc", "token dispatch via jump table + symbol hashing",
               "20000 tokens, 8 handlers", false, kernel_gcc(20000)});
  w.push_back({"go", "19x19 board influence sweeps",
               "120 sweeps with toy captures", false, kernel_go(120)});
  w.push_back({"li", "recursive N-queens backtracking (paper input: queens)",
               "8 queens (92 solutions)", false, kernel_li(8)});
  w.push_back({"perl", "word scoring + prefix hashing",
               "512 words x 40 passes", false, kernel_perl(40)});
  w.push_back({"mgrid", "3-D 7-point stencil relaxation",
               "18^3 grid, 4 sweeps", true, kernel_mgrid(18, 4)});
  w.push_back({"tomcatv", "2-D mesh smoothing, dual coordinate arrays",
               "48x48 mesh, 6 iterations", true, kernel_tomcatv(48, 6)});
  w.push_back({"applu", "batched dense 5x5 LU + triangular solves",
               "1200 systems", true, kernel_applu(1200)});
  w.push_back({"swim", "shallow-water finite differences",
               "80x80 fields, 3 steps", true, kernel_swim(80, 3)});
  w.push_back({"hydro2d", "limiter-based directional flux sweeps",
               "64x64 fields, 5 steps", true, kernel_hydro2d(64, 5)});
  // Interrupt-driven kernels (no SPEC95 namesake): src/dev/ device-model
  // workloads whose handlers run off asynchronous timer / console-RX
  // interrupts. Other periods resolve via "timer@N" / "echo@N".
  w.push_back({"timer", "LCG checksum loop under a periodic timer interrupt",
               "28000 iterations, tick every 400 insts", false,
               kernel_timer(28000, 400)});
  w.push_back({"echo", "interrupt-driven console echo server",
               "256 bytes, RX byte every 700 insts", false,
               kernel_echo(256, 700)});
  return w;
}

/// "timer@N" / "echo@N": the interrupt kernels at a caller-chosen device
/// period (the fig11 --irq-period sweep axis). Returns nullptr unless the
/// suffix is a plain decimal N >= 32 (shorter periods would re-enter the
/// handler before it returns). Resolved workloads are cached with
/// node-stable addresses so the usual registry pointer contract holds.
const Workload* find_parameterized(const std::string& name) {
  const std::size_t at = name.find('@');
  if (at == std::string::npos) return nullptr;
  const std::string base = name.substr(0, at);
  if (base != "timer" && base != "echo") return nullptr;
  const std::string digits = name.substr(at + 1);
  if (digits.empty() || digits.size() > 9) return nullptr;
  unsigned period = 0;
  for (const char ch : digits) {
    if (ch < '0' || ch > '9') return nullptr;
    period = period * 10 + static_cast<unsigned>(ch - '0');
  }
  if (period < 32) return nullptr;

  static std::mutex mu;
  static std::map<std::string, Workload>& cache =
      *new std::map<std::string, Workload>;  // leaked: node-stable forever
  const std::scoped_lock lock(mu);
  const auto it = cache.find(name);
  if (it != cache.end()) return &it->second;
  Workload w;
  w.name = name;
  w.is_fp = false;
  if (base == "timer") {
    w.description = "LCG checksum loop under a periodic timer interrupt";
    w.input = "28000 iterations, tick every " + digits + " insts";
    w.source = kernel_timer(28000, period);
  } else {
    w.description = "interrupt-driven console echo server";
    w.input = "256 bytes, RX byte every " + digits + " insts";
    w.source = kernel_echo(256, period);
  }
  return &cache.emplace(name, std::move(w)).first->second;
}

}  // namespace

const std::vector<Workload>& registry() {
  static const std::vector<Workload> workloads = build_registry();
  return workloads;
}

const Workload* find_workload(const std::string& name) {
  for (const Workload& w : registry()) {
    if (w.name == name) return &w;
  }
  return find_parameterized(name);
}

const Workload& workload(const std::string& name) {
  const Workload* w = find_workload(name);
  if (w == nullptr) EREL_FATAL("unknown workload '", name, "'");
  return *w;
}

bool is_trace_workload(const std::string& name) {
  return std::string_view(name).starts_with(kTracePrefix);
}

arch::Program assemble_workload(const std::string& name) {
  if (is_trace_workload(name))
    return trace::replay_program(name.substr(kTracePrefix.size()));
  return asmkit::assemble(workload(name).source);
}

const std::vector<std::string>& workload_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> n;
    for (const Workload& w : registry()) n.push_back(w.name);
    return n;
  }();
  return names;
}

}  // namespace erel::workloads
