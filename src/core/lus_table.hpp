// Last-Uses Table (paper §3.1, Figure 5).
//
// One entry per logical register, recording the instruction that used the
// register most recently in decode order (`ROSid` — here a monotone sequence
// number), the role of that use (`Kind`: src1/src2/dst) and whether that
// instruction has already committed (`C`).
//
// Like the Map Table, the LUs Table is checkpointed at every branch and
// restored on misprediction; commit-time C-bit updates are applied to the
// working copy *and* to every live checkpoint (paper §3.2: "this action on
// bit C has to be extended to all LUs Table copies").
//
// After an exception flush the table resets to the `Arch` state: every entry
// says "the architectural version's last use has committed", which lets the
// next redefinition release the mapped version immediately (unless the
// mapping is stale).
#pragma once

#include <array>
#include <cstdint>

#include "core/types.hpp"

namespace erel::core {

struct LUsEntry {
  InstSeq seq = kNoSeq;            // paper: ROSid (kNoSeq in the Arch state)
  UseKind kind = UseKind::Arch;    // paper: Kind
  bool committed = true;           // paper: C
};

class LUsTable {
 public:
  using Snapshot = std::array<LUsEntry, isa::kNumLogicalRegs>;

  LUsTable() { reset_architectural(); }

  [[nodiscard]] const LUsEntry& lookup(unsigned logical) const;

  /// Records instruction `seq` as the new last use of `logical` (Renaming
  /// step 1 / step 3 of §3.2).
  void record_use(unsigned logical, InstSeq seq, UseKind kind);

  /// Commit-time C-bit update for one committing instruction: any entry
  /// still pointing at `seq` is marked committed. Must also be applied to
  /// checkpoints — see update_commit_in().
  void on_commit(InstSeq seq);

  /// Same update applied to a snapshot (checkpoint copy).
  static void update_commit_in(Snapshot& snapshot, InstSeq seq);

  /// Exception flush: every entry becomes {Arch, committed}.
  void reset_architectural();

  [[nodiscard]] Snapshot snapshot() const { return table_; }
  void restore(const Snapshot& snapshot) { table_ = snapshot; }

 private:
  Snapshot table_;
};

}  // namespace erel::core
