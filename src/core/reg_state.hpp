// Per-physical-register lifecycle tracking.
//
// RegTracker serves three purposes:
//  1. Occupancy statistics for the paper's Figure 3: every version's
//     lifetime is attributed to the Empty / Ready / Idle spans of Figure 2
//     at release time (Empty: allocation -> value written; Ready: written ->
//     last-use commit; Idle: last-use commit -> release).
//  2. Safety: version tokens catch any committed read of a register that was
//     released (and possibly reallocated) — the fatal hazard of early
//     release. Double release / double alloc are caught by the FreeList.
//  3. Conservation: allocated + free == P at all times (asserted by tests).
//
// RegFileState bundles the tracker with the free list, map tables, value
// array and ready (scoreboard) bits for one register class.
#pragma once

#include <cstdint>
#include <vector>

#include "core/free_list.hpp"
#include "core/map_table.hpp"
#include "core/types.hpp"

namespace erel::core {

/// Occupancy averages over the run (Figure 3's three bars).
struct Occupancy {
  double avg_empty = 0;
  double avg_ready = 0;
  double avg_idle = 0;

  [[nodiscard]] double avg_allocated() const {
    return avg_empty + avg_ready + avg_idle;
  }
};

class RegTracker {
 public:
  explicit RegTracker(unsigned num_phys);

  /// Enables fixed-stride occupancy channels: every attributed span is also
  /// binned into per-stride buckets (register-cycles per state), giving the
  /// exact time-resolved decomposition of the Figure 3 averages. Cost:
  /// O(span/stride) extra work per release and 3 doubles of memory per
  /// stride window. Call before simulation starts.
  void enable_channels(std::uint64_t stride);

  /// Marks registers [0, logical_count) as the initial architectural
  /// versions: allocated, written, definers committed at cycle 0.
  void init_architectural(unsigned logical_count);

  void on_alloc(PhysReg p, std::uint8_t logical, std::uint64_t cycle);
  void on_write(PhysReg p, std::uint64_t cycle);
  void on_definer_commit(PhysReg p, std::uint64_t cycle);
  /// A committed instruction read `p`; `token` was captured at rename.
  void on_consumer_commit(PhysReg p, std::uint32_t token, std::uint64_t cycle);
  /// Version ends; spans are attributed. `squashed` marks wrong-path frees.
  void on_release(PhysReg p, std::uint64_t cycle, bool squashed);
  /// Basic-mechanism reuse: the old version in `p` ends and a new version
  /// (same logical register) begins without visiting the free list.
  void on_reuse(PhysReg p, std::uint8_t logical, std::uint64_t cycle);

  [[nodiscard]] std::uint32_t token(PhysReg p) const;
  [[nodiscard]] std::uint8_t logical_of(PhysReg p) const;
  [[nodiscard]] bool is_allocated(PhysReg p) const;
  [[nodiscard]] unsigned allocated_count() const { return allocated_count_; }

  /// Attributes spans of still-allocated versions up to `cycle` (call once,
  /// at end of simulation, before reading occupancy()).
  void finalize(std::uint64_t cycle);

  [[nodiscard]] Occupancy occupancy(std::uint64_t total_cycles) const;

  // Raw occupancy integrals (register-cycles per state): the additive form
  // published into the StatRegistry, from which the Occupancy averages are
  // materialized (and which merge correctly across sampled windows).
  [[nodiscard]] double empty_integral() const { return empty_integral_; }
  [[nodiscard]] double ready_integral() const { return ready_integral_; }
  [[nodiscard]] double idle_integral() const { return idle_integral_; }

  /// Per-stride occupancy bins (register-cycles; divide by the covered
  /// cycles for averages). Empty unless enable_channels() was called.
  [[nodiscard]] std::uint64_t channel_stride() const { return stride_; }
  [[nodiscard]] const std::vector<double>& channel_empty() const {
    return bins_[0];
  }
  [[nodiscard]] const std::vector<double>& channel_ready() const {
    return bins_[1];
  }
  [[nodiscard]] const std::vector<double>& channel_idle() const {
    return bins_[2];
  }

 private:
  struct Version {
    std::uint64_t alloc_cycle = 0;
    std::uint64_t write_cycle = 0;
    std::uint64_t last_use_commit = 0;  // max over definer/consumer commits
    std::uint32_t token = 0;
    std::uint8_t logical = 0;
    bool allocated = false;
    bool written = false;
    bool definer_committed = false;
  };

  void attribute(Version& v, std::uint64_t end_cycle, bool squashed);
  void add_span(unsigned state, std::uint64_t begin, std::uint64_t end);

  std::vector<Version> regs_;
  unsigned allocated_count_ = 0;
  double empty_integral_ = 0;
  double ready_integral_ = 0;
  double idle_integral_ = 0;
  bool finalized_ = false;
  std::uint64_t stride_ = 0;            // 0 = channels disabled
  std::vector<double> bins_[3];         // per-stride register-cycles
};

/// All rename state for one register class.
struct RegFileState {
  RegFileState(RC cls, unsigned num_phys);

  /// Allocates a fresh version for `logical` (caller checked the free list).
  PhysReg alloc(std::uint8_t logical, std::uint64_t cycle);

  /// Ends the version in `p`: returns it to the free list, attributes its
  /// spans, and sets the IOMT stale bit if `p` is still architectural (the
  /// early-release-before-NV-commit case of §4.3).
  void release(PhysReg p, std::uint64_t cycle, bool squashed);

  /// Produces the value of `p` (writeback).
  void write_value(PhysReg p, std::uint64_t value, std::uint64_t cycle);

  /// Instrumentation seam: when non-null, alloc()/release() report
  /// register-lifecycle events through PipelineHooks::on_reg_alloc/
  /// on_reg_release. Armed by the pipeline only while probes are attached,
  /// so the unprobed path pays one predictable null check.
  PipelineHooks* hooks = nullptr;

  RC cls;
  unsigned num_phys;
  FreeList free_list;
  MapTable map;
  InOrderMapTable iomt;
  RegTracker tracker;
  std::vector<std::uint64_t> value;
  std::vector<bool> ready;  // scoreboard: value available for consumers
};

}  // namespace erel::core
