// Map Table (speculative logical->physical mapping) and In-Order Map Table
// (IOMT, the architectural mapping updated at commit) — Figure 1 of the
// paper. Both carry a per-logical-register `stale` bit: set when the mapped
// version was released early while still architectural (the §4.3 situation),
// so that the next redefinition must not release or reuse it again. The
// paper's precise-exception argument relies on such versions being dead; the
// stale bit is the bookkeeping that makes the hardware single-release.
#pragma once

#include <array>
#include <cstdint>

#include "core/types.hpp"

namespace erel::core {

/// One logical->physical mapping with the stale (dead-version) bit.
struct Mapping {
  PhysReg phys = kNoReg;
  bool stale = false;
};

class MapTable {
 public:
  using Snapshot = std::array<Mapping, isa::kNumLogicalRegs>;

  /// Identity-initializes: logical r -> physical r (the conventional reset
  /// state; requires at least kNumLogicalRegs physical registers).
  MapTable();

  [[nodiscard]] const Mapping& get(unsigned logical) const;

  /// Installs a new mapping; a fresh version is never stale.
  void set(unsigned logical, PhysReg phys);

  void mark_stale(unsigned logical);

  [[nodiscard]] Snapshot snapshot() const { return map_; }
  void restore(const Snapshot& snapshot) { map_ = snapshot; }

 private:
  Snapshot map_;
};

/// The IOMT is structurally a MapTable updated in commit order.
using InOrderMapTable = MapTable;

}  // namespace erel::core
