#include "core/rename_unit.hpp"

#include "common/log.hpp"

namespace erel::core {

using isa::RegClass;

RenameUnit::RenameUnit(const RenameConfig& config, PipelineHooks& hooks)
    : config_(config) {
  slots_.resize(config.max_pending_branches);
  order_.reserve(config.max_pending_branches);
  free_.reserve(config.max_pending_branches);
  for (std::uint32_t id = config.max_pending_branches; id-- > 0;)
    free_.push_back(id);
  state_[0] = std::make_unique<RegFileState>(RC::Int, config.phys_int);
  state_[1] = std::make_unique<RegFileState>(RC::Fp, config.phys_fp);
  for (unsigned c = 0; c < kNumClasses; ++c) {
    if (config.policy_factory) {
      policy_[c] =
          config.policy_factory(static_cast<RC>(c), *state_[c], hooks);
      EREL_CHECK(policy_[c] != nullptr, "policy factory returned null");
    } else {
      policy_[c] = make_policy(config.policy, *state_[c], hooks);
    }
  }
}

bool RenameUnit::try_rename(const isa::DecodedInst& inst, InstSeq seq,
                            RenameRec& rec, std::uint64_t cycle) {
  // Stall check first: no side effects on failure.
  if (inst.has_dst()) {
    const RC cd = rc_from(inst.dst_class());
    const bool self_src_use =
        (inst.src1_class() == inst.dst_class() && inst.rs1 == inst.rd) ||
        (inst.src2_class() == inst.dst_class() && inst.rs2 == inst.rd);
    if (!policy(cd).can_rename_dest(inst.rd, seq, self_src_use)) {
      ++rename_stalls_[static_cast<unsigned>(cd)];
      return false;
    }
  }

  rec.r1 = inst.rs1;
  rec.r2 = inst.rs2;
  rec.rd = inst.rd;
  rec.c1 = inst.src1_class();
  rec.c2 = inst.src2_class();
  rec.cd = inst.has_dst() ? inst.dst_class() : RegClass::None;

  // Source lookup + LUs Table recording (renaming step 1 — before the
  // destination lookup so an instruction can be its own previous-version LU,
  // e.g. `add r1, r1, r2`).
  if (rec.c1 != RegClass::None) {
    RegFileState& rfs = rf(rc_from(rec.c1));
    rec.p1 = rfs.map.get(rec.r1).phys;
    rec.p1_token = rfs.tracker.token(rec.p1);
    policy(rc_from(rec.c1)).record_src_use(rec.r1, seq, UseKind::Src1);
  }
  if (rec.c2 != RegClass::None) {
    RegFileState& rfs = rf(rc_from(rec.c2));
    rec.p2 = rfs.map.get(rec.r2).phys;
    rec.p2_token = rfs.tracker.token(rec.p2);
    policy(rc_from(rec.c2)).record_src_use(rec.r2, seq, UseKind::Src2);
  }

  if (rec.cd != RegClass::None) {
    const RC cd = rc_from(rec.cd);
    RegFileState& rfs = rf(cd);
    const ReleasePolicy::DestPlan plan =
        policy(cd).plan_dest(rec.rd, seq, rec, cycle);
    if (plan.reuse) {
      // Basic mechanism, LU-committed case: the old version's storage is
      // recycled in place; the map does not change.
      rec.pd = rec.old_pd;
      rec.reused_prev = true;
      rfs.tracker.on_reuse(rec.pd, rec.rd, cycle);
      rfs.ready[rec.pd] = false;  // new version is Empty until written
      if (rfs.hooks != nullptr) {
        rfs.hooks->on_reg_release(cd, rec.pd, cycle, /*squashed=*/false,
                                  /*reused=*/true);
        rfs.hooks->on_reg_alloc(cd, rec.pd, cycle, /*reused=*/true);
      }
    } else {
      rec.pd = rfs.alloc(rec.rd, cycle);
    }
    rfs.map.set(rec.rd, rec.pd);  // also clears a stale bit on rd
    policy(cd).record_dst_use(rec.rd, seq);
  }
  return true;
}

void RenameUnit::note_branch_decoded(InstSeq seq) {
  EREL_CHECK(can_checkpoint(), "checkpoint stack overflow");
  EREL_CHECK(order_.empty() || slots_[order_.back()].branch_seq < seq);
  // Built in place inside a recycled slot: no allocation, no copy of the
  // ~1 KB snapshot arrays beyond the snapshots themselves.
  const std::uint32_t id = free_.back();
  free_.pop_back();
  order_.push_back(id);
  Checkpoint& cp = slots_[id];
  cp.branch_seq = seq;
  for (unsigned c = 0; c < kNumClasses; ++c) {
    cp.map[c] = state_[c]->map.snapshot();
    policy_[c]->make_checkpoint_into(cp.aux[c]);
    policy_[c]->on_branch_decoded(seq);
  }
}

void RenameUnit::on_branch_confirmed(InstSeq seq, std::uint64_t cycle) {
  // Branches verify out of order: retire the matching checkpoint wherever
  // it sits in the stack (only its 4-byte slot id moves).
  bool found = false;
  for (auto it = order_.begin(); it != order_.end(); ++it) {
    if (slots_[*it].branch_seq == seq) {
      free_.push_back(*it);
      order_.erase(it);
      found = true;
      break;
    }
  }
  EREL_CHECK(found, "confirm of unknown branch ", seq);
  for (unsigned c = 0; c < kNumClasses; ++c)
    policy_[c]->on_branch_confirmed(seq, cycle);
}

void RenameUnit::on_branch_mispredicted(InstSeq seq) {
  // Find the checkpoint; restore it; drop it and everything younger.
  std::size_t idx = order_.size();
  for (std::size_t i = 0; i < order_.size(); ++i) {
    if (slots_[order_[i]].branch_seq == seq) {
      idx = i;
      break;
    }
  }
  EREL_CHECK(idx != order_.size(), "mispredict of unknown branch ", seq);
  Checkpoint& cp = slots_[order_[idx]];
  for (unsigned c = 0; c < kNumClasses; ++c) {
    state_[c]->map.restore(cp.map[c]);
    policy_[c]->restore_checkpoint(cp.aux[c]);
    policy_[c]->on_branch_mispredicted(seq);
  }
  for (std::size_t i = idx; i < order_.size(); ++i) free_.push_back(order_[i]);
  order_.resize(idx);
}

void RenameUnit::on_commit(const RenameRec& rec, InstSeq seq,
                           std::uint64_t cycle) {
  // 1. Committed reads: the safety check that early release never frees a
  //    register a committed instruction still needs.
  if (rec.c1 != RegClass::None)
    rf(rc_from(rec.c1)).tracker.on_consumer_commit(rec.p1, rec.p1_token, cycle);
  if (rec.c2 != RegClass::None)
    rf(rc_from(rec.c2)).tracker.on_consumer_commit(rec.p2, rec.p2_token, cycle);

  // 2. Architectural mapping update *before* any release so the stale-bit
  //    logic sees the post-commit IOMT.
  if (rec.cd != RegClass::None) {
    RegFileState& rfs = rf(rc_from(rec.cd));
    rfs.tracker.on_definer_commit(rec.pd, cycle);
    rfs.iomt.set(rec.rd, rec.pd);
  }

  // 3. Policy actions: C-bit updates, rel-bit releases, old_pd release,
  //    RelQue migration.
  for (unsigned c = 0; c < kNumClasses; ++c)
    policy_[c]->on_commit(rec, seq, cycle);

  // 4. The C-bit update must reach every live checkpoint copy (§3.2).
  // Checkpoints without policy aux state (has_lus clear) have nothing to
  // update; skipping them spares conventional-policy runs two virtual
  // no-op calls per live checkpoint per commit.
  for (const std::uint32_t id : order_) {
    Checkpoint& cp = slots_[id];
    for (unsigned c = 0; c < kNumClasses; ++c) {
      if (cp.aux[c].has_lus)
        policy_[c]->commit_update_checkpoint(cp.aux[c], seq);
    }
  }
}

void RenameUnit::on_squash_entry(const RenameRec& rec, std::uint64_t cycle) {
  if (rec.cd == RegClass::None) return;
  RegFileState& rfs = rf(rc_from(rec.cd));
  if (rec.reused_prev) {
    // A squashed reuse: the storage still backs the (restored) architectural
    // mapping, so it must stay allocated. Start a replacement version that
    // stands in for the old one; its value is dead by the §4.3 argument.
    rfs.tracker.on_reuse(rec.pd, rec.rd, cycle);
    rfs.ready[rec.pd] = true;
    if (rfs.hooks != nullptr) {
      rfs.hooks->on_reg_release(rc_from(rec.cd), rec.pd, cycle,
                                /*squashed=*/true, /*reused=*/true);
      rfs.hooks->on_reg_alloc(rc_from(rec.cd), rec.pd, cycle,
                              /*reused=*/true);
    }
    return;
  }
  rfs.release(rec.pd, cycle, /*squashed=*/true);
}

void RenameUnit::on_exception_flush(std::uint64_t cycle) {
  (void)cycle;
  for (unsigned c = 0; c < kNumClasses; ++c) {
    // The IOMT (with its stale bits) is the precise architectural mapping.
    state_[c]->map.restore(state_[c]->iomt.snapshot());
    policy_[c]->on_exception_flush();
  }
  for (const std::uint32_t id : order_) free_.push_back(id);
  order_.clear();
}

}  // namespace erel::core
