// Register rename unit: Map Tables, Free Lists, IOMT, branch checkpoint
// stack and the release policy instances for both register classes
// (Figure 1 of the paper plus the §3/§4 extensions).
//
// The pipeline drives it through five entry points:
//   try_rename()            - decode/rename stage, per instruction
//   note_branch_decoded()   - after taking a checkpoint slot for a branch
//   on_branch_confirmed() / on_branch_mispredicted()
//   on_commit()             - per committing instruction, in order
//   on_squash_entry() + on_exception_flush() - recovery
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/release_policy.hpp"
#include "core/reg_state.hpp"
#include "core/types.hpp"
#include "isa/isa.hpp"

namespace erel::core {

/// Builds a policy instance for one register class. Custom factories let
/// users plug their own ReleasePolicy subclasses into the pipeline (see
/// examples/custom_release_policy.cpp).
using PolicyFactory = std::function<std::unique_ptr<ReleasePolicy>(
    RC cls, RegFileState&, PipelineHooks&)>;

struct RenameConfig {
  unsigned phys_int = 96;
  unsigned phys_fp = 96;
  PolicyKind policy = PolicyKind::Conventional;
  unsigned max_pending_branches = 20;  // checkpoint stack depth (Table 2)
  PolicyFactory policy_factory;        // overrides `policy` when set
};

class RenameUnit {
 public:
  RenameUnit(const RenameConfig& config, PipelineHooks& hooks);

  RegFileState& rf(RC cls) { return *state_[static_cast<unsigned>(cls)]; }
  const RegFileState& rf(RC cls) const {
    return *state_[static_cast<unsigned>(cls)];
  }
  ReleasePolicy& policy(RC cls) {
    return *policy_[static_cast<unsigned>(cls)];
  }
  const ReleasePolicy& policy(RC cls) const {
    return *policy_[static_cast<unsigned>(cls)];
  }

  /// True if a conditional/indirect branch can take a checkpoint now.
  [[nodiscard]] bool can_checkpoint() const {
    return order_.size() < config_.max_pending_branches;
  }

  /// Renames one instruction into `rec` (which must already be registered so
  /// PipelineHooks::find_inflight(seq) resolves to it). Returns false and
  /// leaves all state untouched when a destination register cannot be
  /// obtained (free-list stall — the stall this paper attacks).
  bool try_rename(const isa::DecodedInst& inst, InstSeq seq, RenameRec& rec,
                  std::uint64_t cycle);

  /// Takes Map Table + LUs Table checkpoints for branch `seq` (paper §3.1:
  /// "an LUs Table copy is made at each branch prediction").
  void note_branch_decoded(InstSeq seq);

  void on_branch_confirmed(InstSeq seq, std::uint64_t cycle);

  /// Restores the checkpoint of `seq` and drops it plus all younger ones.
  /// The pipeline must free the squashed instructions' destinations via
  /// on_squash_entry() separately.
  void on_branch_mispredicted(InstSeq seq);

  /// Commit processing for one instruction, in program order: consumer/
  /// definer tracking, IOMT update, then the policy's release actions.
  void on_commit(const RenameRec& rec, InstSeq seq, std::uint64_t cycle);

  /// Returns the destination register of a squashed in-flight instruction.
  void on_squash_entry(const RenameRec& rec, std::uint64_t cycle);

  /// Exception recovery: pipeline already squashed everything; restore the
  /// speculative map from the IOMT and reset policy state.
  void on_exception_flush(std::uint64_t cycle);

  [[nodiscard]] unsigned pending_checkpoints() const {
    return static_cast<unsigned>(order_.size());
  }

  /// Free-list-empty rename stalls observed (per class).
  [[nodiscard]] std::uint64_t rename_stalls(RC cls) const {
    return rename_stalls_[static_cast<unsigned>(cls)];
  }

 private:
  struct Checkpoint {
    InstSeq branch_seq = kNoSeq;
    std::array<MapTable::Snapshot, kNumClasses> map;
    std::array<PolicyCheckpoint, kNumClasses> aux;
  };

  RenameConfig config_;
  std::array<std::unique_ptr<RegFileState>, kNumClasses> state_;
  std::array<std::unique_ptr<ReleasePolicy>, kNumClasses> policy_;
  // Branch checkpoints live in a slot pool preallocated to the stack depth:
  // a Checkpoint is ~1 KB of snapshot arrays, so container push/erase would
  // pay a heap allocation per decoded branch and a multi-KB element shift
  // per out-of-order confirm. Slots never move or reallocate; `order_`
  // (alive slot ids, oldest first) carries all per-branch bookkeeping and
  // `free_` recycles slots of confirmed/squashed branches.
  std::vector<Checkpoint> slots_;
  std::vector<std::uint32_t> order_;
  std::vector<std::uint32_t> free_;
  std::array<std::uint64_t, kNumClasses> rename_stalls_{};
};

}  // namespace erel::core
