// Physical-register free list (FIFO, as in the MIPS R10K) with a shadow
// bitmap that makes double-release and double-allocate hard failures.
// Catching those is essential here: the early-release schemes' main hazard
// is releasing a register twice (once early, once conventionally).
#pragma once

#include <cstdint>
#include <vector>

#include "core/types.hpp"

namespace erel::core {

class FreeList {
 public:
  /// `total` physical registers exist; those in [first_free, total) start
  /// free (lower ids hold the initial architectural mappings).
  FreeList(unsigned total, unsigned first_free);

  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] unsigned capacity() const { return total_; }

  /// Pops the oldest free register. Aborts when empty (callers must check
  /// `empty()` and stall instead).
  PhysReg allocate();

  /// Returns a register to the free list. Aborts on double-release.
  void release(PhysReg reg);

  /// True if `reg` is currently free (observability for tests/invariants).
  [[nodiscard]] bool is_free(PhysReg reg) const;

 private:
  unsigned total_;
  std::vector<PhysReg> queue_;  // ring buffer
  std::size_t head_ = 0;        // queue_[head_ % cap] is the oldest entry
  std::size_t count_ = 0;
  std::vector<bool> free_map_;
};

}  // namespace erel::core
