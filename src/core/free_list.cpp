#include "core/free_list.hpp"

#include "common/log.hpp"

namespace erel::core {

FreeList::FreeList(unsigned total, unsigned first_free)
    : total_(total), queue_(total), free_map_(total, false) {
  EREL_CHECK(first_free <= total);
  for (unsigned r = first_free; r < total; ++r) {
    queue_[count_++] = static_cast<PhysReg>(r);
    free_map_[r] = true;
  }
}

PhysReg FreeList::allocate() {
  EREL_CHECK(count_ > 0, "allocate from empty free list");
  const PhysReg reg = queue_[head_];
  head_ = (head_ + 1) % queue_.size();
  --count_;
  EREL_CHECK(free_map_[reg], "allocating non-free register ", reg);
  free_map_[reg] = false;
  return reg;
}

void FreeList::release(PhysReg reg) {
  EREL_CHECK(reg < total_, "release of bogus register ", reg);
  EREL_CHECK(!free_map_[reg], "double release of register ", reg);
  free_map_[reg] = true;
  EREL_CHECK(count_ < queue_.size());
  queue_[(head_ + count_) % queue_.size()] = reg;
  ++count_;
}

bool FreeList::is_free(PhysReg reg) const {
  EREL_CHECK(reg < total_);
  return free_map_[reg];
}

}  // namespace erel::core
