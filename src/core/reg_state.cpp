#include "core/reg_state.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace erel::core {

RegTracker::RegTracker(unsigned num_phys) : regs_(num_phys) {}

void RegTracker::init_architectural(unsigned logical_count) {
  EREL_CHECK(logical_count <= regs_.size());
  for (unsigned r = 0; r < logical_count; ++r) {
    Version& v = regs_[r];
    v.allocated = true;
    v.written = true;
    v.definer_committed = true;
    v.logical = static_cast<std::uint8_t>(r);
    ++allocated_count_;
  }
}

void RegTracker::on_alloc(PhysReg p, std::uint8_t logical, std::uint64_t cycle) {
  Version& v = regs_.at(p);
  EREL_CHECK(!v.allocated, "alloc of live register ", p);
  const std::uint32_t token = v.token + 1;
  v = Version{};
  v.allocated = true;
  v.alloc_cycle = cycle;
  v.logical = logical;
  v.token = token;
  ++allocated_count_;
}

void RegTracker::on_write(PhysReg p, std::uint64_t cycle) {
  Version& v = regs_.at(p);
  // Wrong-path writes to a version that was squash-released already are
  // filtered by the pipeline; a write here must land on a live version.
  EREL_CHECK(v.allocated, "write to free register ", p);
  if (!v.written) {
    v.written = true;
    v.write_cycle = cycle;
  }
}

void RegTracker::on_definer_commit(PhysReg p, std::uint64_t cycle) {
  Version& v = regs_.at(p);
  EREL_CHECK(v.allocated && v.written);
  v.definer_committed = true;
  v.last_use_commit = std::max(v.last_use_commit, cycle);
}

void RegTracker::on_consumer_commit(PhysReg p, std::uint32_t token,
                                    std::uint64_t cycle) {
  Version& v = regs_.at(p);
  // The safety property of the whole paper: a committed consumer must find
  // the exact version it renamed to still live.
  EREL_CHECK(v.allocated && v.token == token,
             "committed read of released register ", p);
  v.last_use_commit = std::max(v.last_use_commit, cycle);
}

void RegTracker::enable_channels(std::uint64_t stride) {
  EREL_CHECK(stride > 0, "occupancy channel stride must be positive");
  stride_ = stride;
}

void RegTracker::add_span(unsigned state, std::uint64_t begin,
                          std::uint64_t end) {
  double* const integral =
      state == 0 ? &empty_integral_ : state == 1 ? &ready_integral_
                                                 : &idle_integral_;
  *integral += static_cast<double>(end - begin);
  if (stride_ == 0 || end <= begin) return;
  std::vector<double>& bins = bins_[state];
  const std::uint64_t last_bucket = (end - 1) / stride_;
  if (bins.size() <= last_bucket) bins.resize(last_bucket + 1, 0.0);
  for (std::uint64_t k = begin / stride_; k <= last_bucket; ++k) {
    const std::uint64_t lo = std::max(begin, k * stride_);
    const std::uint64_t hi = std::min(end, (k + 1) * stride_);
    bins[k] += static_cast<double>(hi - lo);
  }
}

void RegTracker::attribute(Version& v, std::uint64_t end_cycle, bool squashed) {
  const std::uint64_t t0 = v.alloc_cycle;
  if (!v.written) {
    add_span(0, t0, end_cycle);
    return;
  }
  const std::uint64_t tw = std::min(std::max(v.write_cycle, t0), end_cycle);
  add_span(0, t0, tw);
  if (!v.definer_committed || squashed) {
    // Speculative version that never became architectural: it held a value
    // but no committed last use exists; count the whole span as Ready.
    add_span(1, tw, end_cycle);
    return;
  }
  const std::uint64_t lu =
      std::min(std::max(v.last_use_commit, tw), end_cycle);
  add_span(1, tw, lu);
  add_span(2, lu, end_cycle);
}

void RegTracker::on_release(PhysReg p, std::uint64_t cycle, bool squashed) {
  Version& v = regs_.at(p);
  EREL_CHECK(v.allocated, "release of free register ", p);
  attribute(v, cycle, squashed);
  v.allocated = false;
  EREL_CHECK(allocated_count_ > 0);
  --allocated_count_;
}

void RegTracker::on_reuse(PhysReg p, std::uint8_t logical, std::uint64_t cycle) {
  Version& v = regs_.at(p);
  EREL_CHECK(v.allocated, "reuse of free register ", p);
  attribute(v, cycle, /*squashed=*/false);
  const std::uint32_t token = v.token + 1;
  v = Version{};
  v.allocated = true;
  v.alloc_cycle = cycle;
  v.logical = logical;
  v.token = token;
  // allocated_count_ unchanged: one version ends, another begins.
}

std::uint32_t RegTracker::token(PhysReg p) const { return regs_.at(p).token; }

std::uint8_t RegTracker::logical_of(PhysReg p) const {
  return regs_.at(p).logical;
}

bool RegTracker::is_allocated(PhysReg p) const { return regs_.at(p).allocated; }

void RegTracker::finalize(std::uint64_t cycle) {
  EREL_CHECK(!finalized_, "finalize called twice");
  finalized_ = true;
  for (Version& v : regs_) {
    if (v.allocated) attribute(v, cycle, /*squashed=*/false);
  }
}

Occupancy RegTracker::occupancy(std::uint64_t total_cycles) const {
  EREL_CHECK(finalized_, "occupancy read before finalize");
  Occupancy occ;
  if (total_cycles == 0) return occ;
  const auto cycles = static_cast<double>(total_cycles);
  occ.avg_empty = empty_integral_ / cycles;
  occ.avg_ready = ready_integral_ / cycles;
  occ.avg_idle = idle_integral_ / cycles;
  return occ;
}

RegFileState::RegFileState(RC cls_in, unsigned num_phys_in)
    : cls(cls_in),
      num_phys(num_phys_in),
      free_list(num_phys_in, isa::kNumLogicalRegs),
      tracker(num_phys_in),
      value(num_phys_in, 0),
      ready(num_phys_in, true) {
  EREL_CHECK(num_phys >= isa::kNumLogicalRegs + 1,
             "need at least L+1 physical registers, got ", num_phys);
  tracker.init_architectural(isa::kNumLogicalRegs);
}

PhysReg RegFileState::alloc(std::uint8_t logical, std::uint64_t cycle) {
  const PhysReg p = free_list.allocate();
  tracker.on_alloc(p, logical, cycle);
  ready[p] = false;
  if (hooks != nullptr) hooks->on_reg_alloc(cls, p, cycle, /*reused=*/false);
  return p;
}

void RegFileState::release(PhysReg p, std::uint64_t cycle, bool squashed) {
  // If the released version is still the architectural mapping of its
  // logical register, an exception flush would restore a mapping to a freed
  // register: flag it stale so the next redefinition does not release it a
  // second time (DESIGN.md, "stale-mapping bit").
  const std::uint8_t logical = tracker.logical_of(p);
  if (iomt.get(logical).phys == p && !iomt.get(logical).stale)
    iomt.mark_stale(logical);
  tracker.on_release(p, cycle, squashed);
  free_list.release(p);
  if (hooks != nullptr)
    hooks->on_reg_release(cls, p, cycle, squashed, /*reused=*/false);
}

void RegFileState::write_value(PhysReg p, std::uint64_t v, std::uint64_t cycle) {
  value.at(p) = v;
  ready[p] = true;
  tracker.on_write(p, cycle);
}

}  // namespace erel::core
