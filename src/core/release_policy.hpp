// The three register-release policies evaluated in the paper:
//
//   Conventional — release the previous version (old_pd) when the
//     redefining instruction (NV) commits (§2, Figure 1).
//   Basic — a Last-Uses Table identifies the LU instruction at NV decode;
//     when no unverified branch lies between LU and NV, the release is tied
//     to LU's commit via rel1/rel2/reld bits in the ROS, or performed
//     immediately (reusing the register) when LU has already committed (§3).
//   Extended — additionally handles speculative NVs through the Release
//     Queue: releases conditional on pending branches migrate toward the
//     unconditional level as branches confirm (§4).
//
// A policy instance manages one register class; it owns the class's LUs
// Table (and Release Queue for Extended) and performs every release through
// the shared RegFileState so the free list / tracker invariants hold for all
// policies identically.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "core/lus_table.hpp"
#include "core/reg_state.hpp"
#include "core/release_queue.hpp"
#include "core/types.hpp"

namespace erel::core {

enum class PolicyKind : std::uint8_t { Conventional, Basic, Extended };

/// Stable short name: "conv" / "basic" / "extended" (tables, CSV/JSON
/// sinks, CLI flags). Round-trips through parse_policy.
[[nodiscard]] std::string_view policy_name(PolicyKind kind);

/// Inverse of policy_name; also accepts the long aliases "conventional"
/// and "ext". Aborts on an unknown name.
[[nodiscard]] PolicyKind parse_policy(std::string_view name);

/// Non-aborting parse_policy: nullopt on an unknown name (CLI validation
/// paths that want a usage message instead of an abort).
[[nodiscard]] std::optional<PolicyKind> try_parse_policy(
    std::string_view name);

/// The three paper policies in presentation order (conv, basic, extended).
[[nodiscard]] const std::vector<PolicyKind>& all_policies();

/// Release-event counters, reported per class in the simulation results.
struct PolicyStats {
  std::uint64_t conventional_releases = 0;   // old_pd at NV commit
  std::uint64_t early_commit_releases = 0;   // rel bits at LU commit (RwC0)
  std::uint64_t immediate_releases = 0;      // at NV decode, LU committed
  std::uint64_t reuses = 0;                  // basic: pd := old_pd, no alloc
  std::uint64_t branch_confirm_releases = 0; // extended: RwNS1 drain
  std::uint64_t conditional_schedulings = 0; // placed into the RelQue
  std::uint64_t fallback_conventional = 0;   // basic: Case-2 NVs
  std::uint64_t stale_suppressed = 0;        // releases suppressed (dead map)
};

/// Aux state stored inside every branch checkpoint next to the Map Table
/// snapshot (the paper's "LUs Table copy at each branch prediction").
struct PolicyCheckpoint {
  LUsTable::Snapshot lus{};
  bool has_lus = false;
};

class ReleasePolicy {
 public:
  ReleasePolicy(RegFileState& rf, PipelineHooks& hooks)
      : rf_(rf), hooks_(hooks) {}
  virtual ~ReleasePolicy() = default;

  [[nodiscard]] virtual PolicyKind kind() const = 0;

  /// Outcome of plan_dest.
  struct DestPlan {
    bool reuse = false;  // pd := old_pd without allocating (basic, C=1)
  };

  // ---- rename-time hooks (called in this order per instruction) ----

  /// Renaming step 1: a source operand of this class was read.
  virtual void record_src_use(unsigned logical, InstSeq seq, UseKind kind);

  /// Pure resource check: can an instruction redefining `rd` rename now?
  /// `self_src_use` marks instructions that also read rd (e.g. add r1,r1,r2):
  /// their own source read will become the last use of the previous version,
  /// which rules the register-free reuse/immediate-release cases out.
  [[nodiscard]] virtual bool can_rename_dest(unsigned rd, InstSeq nv_seq,
                                             bool self_src_use) const;

  /// Renaming step 2: decide the fate of the previous version of `rd`.
  /// Fills rec.old_pd / rec.rel_old, may set rel bits in the LU's record,
  /// schedule in the RelQue, or release immediately. Only called when
  /// can_rename_dest() returned true in the same cycle.
  virtual DestPlan plan_dest(unsigned rd, InstSeq nv_seq, RenameRec& rec,
                             std::uint64_t cycle) = 0;

  /// Renaming step 3: the destination write is now the last use of the new
  /// version.
  virtual void record_dst_use(unsigned logical, InstSeq seq);

  // ---- commit-time hook (in program order) ----

  /// Updates C bits, performs commit-synchronized releases (rel bits /
  /// old_pd), and migrates RelQue schedulings.
  virtual void on_commit(const RenameRec& rec, InstSeq seq,
                         std::uint64_t cycle);

  // ---- branch lifecycle ----

  virtual void on_branch_decoded(InstSeq branch_seq);
  virtual void on_branch_confirmed(InstSeq branch_seq, std::uint64_t cycle);
  virtual void on_branch_mispredicted(InstSeq branch_seq);

  // ---- checkpointing of policy-private state (the LUs Table) ----

  /// Fills `cp` in place (policies without aux state only clear has_lus, so
  /// checkpoint-heavy paths never copy an unused LUs snapshot around).
  virtual void make_checkpoint_into(PolicyCheckpoint& cp) const;
  [[nodiscard]] PolicyCheckpoint make_checkpoint() const {
    PolicyCheckpoint cp;
    make_checkpoint_into(cp);
    return cp;
  }
  virtual void restore_checkpoint(const PolicyCheckpoint& cp);
  /// Applies a committing instruction's C-bit update to a checkpoint copy.
  virtual void commit_update_checkpoint(PolicyCheckpoint& cp,
                                        InstSeq seq) const;

  /// Exception flush: pipeline emptied, map restored from the IOMT.
  virtual void on_exception_flush();

  [[nodiscard]] const PolicyStats& stats() const { return stats_; }

  /// Extended only: scheduled-release population (invariant tests).
  [[nodiscard]] virtual std::size_t relque_population() const { return 0; }

 protected:
  /// Releases the registers named by rec.rel_bits (the RwC0 action shared by
  /// Basic and Extended), restricted to operands of this policy's class.
  void release_rel_bits(const RenameRec& rec, std::uint64_t cycle);

  /// True if the instruction's destination belongs to this policy's class.
  [[nodiscard]] bool owns_dst(const RenameRec& rec) const;

  RegFileState& rf_;
  PipelineHooks& hooks_;
  PolicyStats stats_;
};

/// Factory keyed by the experiment configuration.
std::unique_ptr<ReleasePolicy> make_policy(PolicyKind kind, RegFileState& rf,
                                           PipelineHooks& hooks);

}  // namespace erel::core
