#include "core/map_table.hpp"

#include "common/log.hpp"

namespace erel::core {

MapTable::MapTable() {
  for (unsigned r = 0; r < isa::kNumLogicalRegs; ++r)
    map_[r] = Mapping{static_cast<PhysReg>(r), false};
}

const Mapping& MapTable::get(unsigned logical) const {
  EREL_CHECK(logical < isa::kNumLogicalRegs);
  return map_[logical];
}

void MapTable::set(unsigned logical, PhysReg phys) {
  EREL_CHECK(logical < isa::kNumLogicalRegs);
  map_[logical] = Mapping{phys, false};
}

void MapTable::mark_stale(unsigned logical) {
  EREL_CHECK(logical < isa::kNumLogicalRegs);
  map_[logical].stale = true;
}

}  // namespace erel::core
