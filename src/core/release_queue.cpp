#include "core/release_queue.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace erel::core {

void ReleaseQueue::push_level(InstSeq branch_seq) {
  EREL_CHECK(levels_.empty() || levels_.back().branch_seq < branch_seq,
             "levels must be pushed in decode order");
  Level level;
  level.branch_seq = branch_seq;
  levels_.push_back(std::move(level));
}

void ReleaseQueue::schedule_committed(PhysReg p) {
  EREL_CHECK(!levels_.empty(), "conditional scheduling with no pending branch");
  levels_.back().rwns.push_back(p);
}

void ReleaseQueue::schedule_inflight(InstSeq lu_seq, std::uint8_t bits) {
  EREL_CHECK(!levels_.empty(), "conditional scheduling with no pending branch");
  EREL_CHECK(bits != 0);
  auto& slot = levels_.back().rwc[lu_seq];
  EREL_CHECK((slot & bits) == 0, "duplicate scheduling for LU ", lu_seq);
  slot |= bits;
}

void ReleaseQueue::on_lu_commit(InstSeq lu_seq, PhysReg p1, PhysReg p2,
                                PhysReg pd) {
  for (Level& level : levels_) {
    const auto it = level.rwc.find(lu_seq);
    if (it == level.rwc.end()) continue;
    const std::uint8_t bits = it->second;
    if (bits & kRel1) level.rwns.push_back(p1);
    if (bits & kRel2) level.rwns.push_back(p2);
    if (bits & kRelD) level.rwns.push_back(pd);
    level.rwc.erase(it);
  }
}

std::size_t ReleaseQueue::level_index(InstSeq branch_seq) const {
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    if (levels_[i].branch_seq == branch_seq) return i;
  }
  return levels_.size();
}

bool ReleaseQueue::has_level(InstSeq branch_seq) const {
  return level_index(branch_seq) != levels_.size();
}

ReleaseQueue::ConfirmResult ReleaseQueue::confirm(InstSeq branch_seq) {
  ConfirmResult result;
  const std::size_t idx = level_index(branch_seq);
  EREL_CHECK(idx != levels_.size(), "confirm of unknown branch ", branch_seq);
  Level& level = levels_[idx];
  if (idx == 0) {
    // Oldest pending branch: its releases become final (Step 6,
    // "Branch-Confirm Release") and its RwC bits merge into RwC0.
    result.release_now = std::move(level.rwns);
    result.to_rwc0.assign(level.rwc.begin(), level.rwc.end());
    // rwc is a hash map; sort the copy so downstream consumers see a
    // stdlib-independent order (the RwC0 merge only ORs bits, but any
    // future consumer that iterates must not inherit hash order).
    std::sort(result.to_rwc0.begin(), result.to_rwc0.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
  } else {
    // Middle level: OR into the next older level (Step 4, Figure 8a).
    Level& older = levels_[idx - 1];
    older.rwns.insert(older.rwns.end(), level.rwns.begin(), level.rwns.end());
    for (const auto& [seq, bits] : level.rwc) older.rwc[seq] |= bits;
  }
  levels_.erase(levels_.begin() + static_cast<std::ptrdiff_t>(idx));
  return result;
}

void ReleaseQueue::mispredict(InstSeq branch_seq) {
  const std::size_t idx = level_index(branch_seq);
  EREL_CHECK(idx != levels_.size(), "mispredict of unknown branch ", branch_seq);
  levels_.erase(levels_.begin() + static_cast<std::ptrdiff_t>(idx),
                levels_.end());
}

void ReleaseQueue::clear() { levels_.clear(); }

std::size_t ReleaseQueue::total_scheduled() const {
  std::size_t total = 0;
  for (const Level& level : levels_) {
    total += level.rwns.size();
    for (const auto& [seq, bits] : level.rwc) {
      total += static_cast<unsigned>(__builtin_popcount(bits));
    }
  }
  return total;
}

}  // namespace erel::core
