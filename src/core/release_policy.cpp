#include "core/release_policy.hpp"

#include <bit>

#include "common/log.hpp"

namespace erel::core {

std::string_view policy_name(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::Conventional: return "conv";
    case PolicyKind::Basic: return "basic";
    case PolicyKind::Extended: return "extended";
  }
  return "?";
}

std::optional<PolicyKind> try_parse_policy(std::string_view name) {
  if (name == "conv" || name == "conventional") return PolicyKind::Conventional;
  if (name == "basic") return PolicyKind::Basic;
  if (name == "extended" || name == "ext") return PolicyKind::Extended;
  return std::nullopt;
}

PolicyKind parse_policy(std::string_view name) {
  const std::optional<PolicyKind> kind = try_parse_policy(name);
  if (!kind)
    EREL_FATAL("unknown release policy '", name,
               "' (expected conv|basic|extended)");
  return *kind;
}

const std::vector<PolicyKind>& all_policies() {
  static const std::vector<PolicyKind> kinds = {
      PolicyKind::Conventional, PolicyKind::Basic, PolicyKind::Extended};
  return kinds;
}

// ---------------------------------------------------------------------------
// Base-class defaults (the conventional scheme uses most of them directly).
// ---------------------------------------------------------------------------

void ReleasePolicy::record_src_use(unsigned, InstSeq, UseKind) {}
void ReleasePolicy::record_dst_use(unsigned, InstSeq) {}

bool ReleasePolicy::can_rename_dest(unsigned, InstSeq, bool) const {
  return !rf_.free_list.empty();
}

void ReleasePolicy::on_commit(const RenameRec&, InstSeq, std::uint64_t) {}
void ReleasePolicy::on_branch_decoded(InstSeq) {}
void ReleasePolicy::on_branch_confirmed(InstSeq, std::uint64_t) {}
void ReleasePolicy::on_branch_mispredicted(InstSeq) {}

void ReleasePolicy::make_checkpoint_into(PolicyCheckpoint& cp) const {
  cp.has_lus = false;
}
void ReleasePolicy::restore_checkpoint(const PolicyCheckpoint&) {}
void ReleasePolicy::commit_update_checkpoint(PolicyCheckpoint&, InstSeq) const {}
void ReleasePolicy::on_exception_flush() {}

void ReleasePolicy::release_rel_bits(const RenameRec& rec, std::uint64_t cycle) {
  // An instruction's operand slots can span both register classes (e.g. fsd
  // reads an int base and an fp value); each class's policy releases only
  // the bits whose operand belongs to its own class.
  if (rec.rel_bits == 0) return;
  const auto mine = [this](isa::RegClass cls) {
    return cls != isa::RegClass::None && rc_from(cls) == rf_.cls;
  };
  if ((rec.rel_bits & kRel1) && mine(rec.c1)) {
    rf_.release(rec.p1, cycle, /*squashed=*/false);
    ++stats_.early_commit_releases;
  }
  if ((rec.rel_bits & kRel2) && mine(rec.c2)) {
    rf_.release(rec.p2, cycle, /*squashed=*/false);
    ++stats_.early_commit_releases;
  }
  if ((rec.rel_bits & kRelD) && mine(rec.cd)) {
    rf_.release(rec.pd, cycle, /*squashed=*/false);
    ++stats_.early_commit_releases;
  }
}

bool ReleasePolicy::owns_dst(const RenameRec& rec) const {
  return rec.cd != isa::RegClass::None && rc_from(rec.cd) == rf_.cls;
}

// ---------------------------------------------------------------------------
// Conventional release (§2): old_pd freed when NV commits.
// ---------------------------------------------------------------------------

namespace {

class ConventionalPolicy final : public ReleasePolicy {
 public:
  using ReleasePolicy::ReleasePolicy;

  [[nodiscard]] PolicyKind kind() const override {
    return PolicyKind::Conventional;
  }

  DestPlan plan_dest(unsigned rd, InstSeq, RenameRec& rec,
                     std::uint64_t) override {
    const Mapping& old = rf_.map.get(rd);
    rec.old_pd = old.phys;
    if (old.stale) {
      // The previous version was already freed (early release + exception
      // flush in a prior policy life; unreachable for pure conventional but
      // kept for uniformity): never release it again.
      rec.rel_old = false;
      ++stats_.stale_suppressed;
    } else {
      rec.rel_old = true;
    }
    return {};
  }

  void on_commit(const RenameRec& rec, InstSeq, std::uint64_t cycle) override {
    if (owns_dst(rec) && rec.rel_old && rec.old_pd != kNoReg) {
      rf_.release(rec.old_pd, cycle, /*squashed=*/false);
      ++stats_.conventional_releases;
    }
  }
};

// ---------------------------------------------------------------------------
// Basic mechanism (§3).
// ---------------------------------------------------------------------------

class BasicPolicy : public ReleasePolicy {
 public:
  using ReleasePolicy::ReleasePolicy;

  [[nodiscard]] PolicyKind kind() const override { return PolicyKind::Basic; }

  void record_src_use(unsigned logical, InstSeq seq, UseKind kind) override {
    lus_.record_use(logical, seq, kind);
  }

  void record_dst_use(unsigned logical, InstSeq seq) override {
    lus_.record_use(logical, seq, UseKind::Dst);
  }

  [[nodiscard]] bool can_rename_dest(unsigned rd, InstSeq nv_seq,
                                     bool self_src_use) const override {
    // The reuse case consumes no free register. An instruction that reads
    // its own destination becomes the LU of the previous version (C=0), so
    // reuse is impossible for it.
    if (!self_src_use && classify(rd, nv_seq) == Case::Reuse) return true;
    return !rf_.free_list.empty();
  }

  DestPlan plan_dest(unsigned rd, InstSeq nv_seq, RenameRec& rec,
                     std::uint64_t) override {
    const Mapping& old = rf_.map.get(rd);
    rec.old_pd = old.phys;
    switch (classify(rd, nv_seq)) {
      case Case::StaleSuppressed:
        rec.rel_old = false;
        ++stats_.stale_suppressed;
        return {};
      case Case::Fallback:
        // Case 2 of §3: an unverified branch sits between LU and NV; the
        // basic mechanism falls back to conventional release.
        rec.rel_old = true;
        ++stats_.fallback_conventional;
        return {};
      case Case::ScheduleAtLu: {
        // Case 1, LU in flight: set the matching early-release bit in LU's
        // ROS entry and disconnect NV's conventional release (Figure 6b).
        const LUsEntry entry = lus_.lookup(rd);
        RenameRec* lu = hooks_.find_inflight(entry.seq);
        EREL_CHECK(lu != nullptr, "uncommitted LU ", entry.seq,
                   " not in flight");
        const std::uint8_t bit = rel_bit_for(entry.kind);
        EREL_CHECK((lu->rel_bits & bit) == 0, "double scheduling on LU ",
                   entry.seq);
        lu->rel_bits |= bit;
        rec.rel_old = false;
        return {};
      }
      case Case::Reuse:
        // Case 1, LU committed: reuse old_pd as NV's destination, leaving
        // the mapping untouched and reclaiming no register (§3.2).
        rec.rel_old = false;
        ++stats_.reuses;
        return {.reuse = true};
    }
    return {};
  }

  void on_commit(const RenameRec& rec, InstSeq seq,
                 std::uint64_t cycle) override {
    // C-bit update: any LUs entry naming this instruction is now committed.
    lus_.on_commit(seq);
    // Early releases synchronized with this (LU) commit.
    release_rel_bits(rec, cycle);
    // Conventional path for NVs that could not schedule early.
    if (owns_dst(rec) && rec.rel_old && rec.old_pd != kNoReg) {
      rf_.release(rec.old_pd, cycle, /*squashed=*/false);
      ++stats_.conventional_releases;
    }
  }

  void make_checkpoint_into(PolicyCheckpoint& cp) const override {
    cp.lus = lus_.snapshot();
    cp.has_lus = true;
  }

  void restore_checkpoint(const PolicyCheckpoint& cp) override {
    EREL_CHECK(cp.has_lus);
    lus_.restore(cp.lus);
  }

  void commit_update_checkpoint(PolicyCheckpoint& cp,
                                InstSeq seq) const override {
    LUsTable::update_commit_in(cp.lus, seq);
  }

  void on_exception_flush() override { lus_.reset_architectural(); }

 protected:
  enum class Case { StaleSuppressed, Fallback, ScheduleAtLu, Reuse };

  /// Shared decision logic for can_rename_dest / plan_dest; pure.
  [[nodiscard]] Case classify(unsigned rd, InstSeq nv_seq) const {
    const Mapping& old = rf_.map.get(rd);
    if (old.stale) return Case::StaleSuppressed;
    const LUsEntry& entry = lus_.lookup(rd);
    // Arch entries (post-flush / program start) behave as an LU committed at
    // sequence 0: any pending branch older than NV blocks Case 1.
    const InstSeq lu_seq = entry.seq == kNoSeq ? 0 : entry.seq;
    if (hooks_.branch_pending_between(lu_seq, nv_seq)) return Case::Fallback;
    return entry.committed ? Case::Reuse : Case::ScheduleAtLu;
  }

  LUsTable lus_;
};

// ---------------------------------------------------------------------------
// Extended mechanism (§4).
// ---------------------------------------------------------------------------

class ExtendedPolicy final : public BasicPolicy {
 public:
  using BasicPolicy::BasicPolicy;

  [[nodiscard]] PolicyKind kind() const override {
    return PolicyKind::Extended;
  }

  [[nodiscard]] bool can_rename_dest(unsigned rd, InstSeq nv_seq,
                                     bool self_src_use) const override {
    // The immediate-release case frees old_pd before allocation, so it can
    // proceed even with an empty free list. Every other case needs a free
    // register (the extended mechanism never reuses, see §4.2). Self-use
    // forces the commit-synchronized path, which allocates.
    if (!rf_.free_list.empty()) return true;
    return !self_src_use &&
           classify_ext(rd, nv_seq) == ExtCase::ImmediateRelease;
  }

  DestPlan plan_dest(unsigned rd, InstSeq nv_seq, RenameRec& rec,
                     std::uint64_t cycle) override {
    const Mapping& old = rf_.map.get(rd);
    rec.old_pd = old.phys;
    rec.rel_old = false;  // the extended ROS has no old_pd/rel_old release
    switch (classify_ext(rd, nv_seq)) {
      case ExtCase::StaleSuppressed:
        ++stats_.stale_suppressed;
        return {};
      case ExtCase::ImmediateRelease:
        // Non-speculative NV, LU already committed: release right now.
        rf_.release(old.phys, cycle, /*squashed=*/false);
        ++stats_.immediate_releases;
        return {};
      case ExtCase::ScheduleRwc0: {
        // Non-speculative NV, LU in flight: unconditional rel bit (RwC0).
        const LUsEntry entry = lus_.lookup(rd);
        RenameRec* lu = hooks_.find_inflight(entry.seq);
        EREL_CHECK(lu != nullptr, "uncommitted LU ", entry.seq,
                   " not in flight");
        const std::uint8_t bit = rel_bit_for(entry.kind);
        EREL_CHECK((lu->rel_bits & bit) == 0, "double scheduling on LU ",
                   entry.seq);
        lu->rel_bits |= bit;
        return {};
      }
      case ExtCase::ScheduleRwns: {
        // Speculative NV, LU committed: decoded conditional release at TAIL.
        relque_.schedule_committed(old.phys);
        ++stats_.conditional_schedulings;
        return {};
      }
      case ExtCase::ScheduleRwc: {
        // Speculative NV, LU in flight: commit-synchronized conditional
        // release at TAIL.
        const LUsEntry entry = lus_.lookup(rd);
        relque_.schedule_inflight(entry.seq, rel_bit_for(entry.kind));
        ++stats_.conditional_schedulings;
        return {};
      }
    }
    return {};
  }

  void on_commit(const RenameRec& rec, InstSeq seq,
                 std::uint64_t cycle) override {
    lus_.on_commit(seq);
    // Conditional schedulings synchronized with this commit migrate from
    // RwCn to RwNSn (Step 5; the register ids come from the ROS PRid filed).
    relque_.on_lu_commit(seq, rec.p1, rec.p2, rec.pd);
    // RwC0: unconditional commit-synchronized releases.
    release_rel_bits(rec, cycle);
    EREL_CHECK(!(owns_dst(rec) && rec.rel_old),
               "extended mechanism must never use conventional release");
  }

  void on_branch_decoded(InstSeq branch_seq) override {
    relque_.push_level(branch_seq);
  }

  void on_branch_confirmed(InstSeq branch_seq, std::uint64_t cycle) override {
    ReleaseQueue::ConfirmResult result = relque_.confirm(branch_seq);
    for (const PhysReg p : result.release_now) {
      rf_.release(p, cycle, /*squashed=*/false);
      ++stats_.branch_confirm_releases;
    }
    for (const auto& [lu_seq, bits] : result.to_rwc0) {
      RenameRec* lu = hooks_.find_inflight(lu_seq);
      EREL_CHECK(lu != nullptr, "RwC1 entry for vanished LU ", lu_seq);
      EREL_CHECK((lu->rel_bits & bits) == 0);
      lu->rel_bits |= bits;
    }
  }

  void on_branch_mispredicted(InstSeq branch_seq) override {
    relque_.mispredict(branch_seq);
  }

  void on_exception_flush() override {
    BasicPolicy::on_exception_flush();
    relque_.clear();
  }

  [[nodiscard]] std::size_t relque_population() const override {
    return relque_.total_scheduled();
  }

 private:
  enum class ExtCase {
    StaleSuppressed,
    ImmediateRelease,
    ScheduleRwc0,
    ScheduleRwns,
    ScheduleRwc,
  };

  ReleaseQueue relque_;

  [[nodiscard]] ExtCase classify_ext(unsigned rd, InstSeq) const {
    const Mapping& old = rf_.map.get(rd);
    if (old.stale) return ExtCase::StaleSuppressed;
    const LUsEntry& entry = lus_.lookup(rd);
    // The release must survive only if NV survives, so it is conditional on
    // *every* pending branch older than NV — i.e. all of them (Step 2).
    const bool speculative = hooks_.pending_branch_count() > 0;
    if (!speculative)
      return entry.committed ? ExtCase::ImmediateRelease : ExtCase::ScheduleRwc0;
    return entry.committed ? ExtCase::ScheduleRwns : ExtCase::ScheduleRwc;
  }
};

}  // namespace

std::unique_ptr<ReleasePolicy> make_policy(PolicyKind kind, RegFileState& rf,
                                           PipelineHooks& hooks) {
  switch (kind) {
    case PolicyKind::Conventional:
      return std::make_unique<ConventionalPolicy>(rf, hooks);
    case PolicyKind::Basic:
      return std::make_unique<BasicPolicy>(rf, hooks);
    case PolicyKind::Extended:
      return std::make_unique<ExtendedPolicy>(rf, hooks);
  }
  EREL_FATAL("unknown policy kind");
}

}  // namespace erel::core
