// Shared types for the register-management core (the paper's contribution).
#pragma once

#include <cstdint>

#include "isa/isa.hpp"

namespace erel::core {

/// Physical register identifier within one class (int or FP).
using PhysReg = std::uint16_t;
inline constexpr PhysReg kNoReg = 0xffff;

/// Monotone dynamic instruction sequence number. The paper uses ROS
/// addresses as unique instruction identifiers; a monotone sequence is the
/// software equivalent that survives ROS wrap-around (ROS slot == seq % N).
using InstSeq = std::uint64_t;
inline constexpr InstSeq kNoSeq = ~std::uint64_t{0};

/// Register class index used for the per-class rename structures.
enum class RC : std::uint8_t { Int = 0, Fp = 1 };
inline constexpr unsigned kNumClasses = 2;

inline RC rc_from(isa::RegClass cls) {
  return cls == isa::RegClass::Fp ? RC::Fp : RC::Int;
}

/// Operand roles, matching the paper's LUs Table `Kind` field.
enum class UseKind : std::uint8_t { Src1 = 0, Src2 = 1, Dst = 2, Arch = 3 };

/// Early-release bit positions within RenameRec::rel_bits (paper: rel1, rel2,
/// reld in the extended ROS).
inline constexpr std::uint8_t kRel1 = 1u << 0;
inline constexpr std::uint8_t kRel2 = 1u << 1;
inline constexpr std::uint8_t kRelD = 1u << 2;

inline std::uint8_t rel_bit_for(UseKind kind) {
  switch (kind) {
    case UseKind::Src1: return kRel1;
    case UseKind::Src2: return kRel2;
    case UseKind::Dst: return kRelD;
    case UseKind::Arch: return 0;
  }
  return 0;
}

/// Per-instruction rename record: the fields the paper adds to the ROS
/// (Figure 5) plus the plumbing the simulator needs. One operand slot per
/// source; classes are those of the *architectural* operands.
struct RenameRec {
  // Logical register identifiers (paper: r1, r2, rd).
  std::uint8_t r1 = 0, r2 = 0, rd = 0;
  isa::RegClass c1 = isa::RegClass::None;
  isa::RegClass c2 = isa::RegClass::None;
  isa::RegClass cd = isa::RegClass::None;
  // Physical register identifiers (paper: p1, p2, pd, old_pd).
  PhysReg p1 = kNoReg, p2 = kNoReg, pd = kNoReg, old_pd = kNoReg;
  // Version tokens for the read-after-release safety check (see RegTracker).
  std::uint32_t p1_token = 0, p2_token = 0;
  // Previous-version release bit (paper: rel_old). Conventional release of
  // old_pd at commit happens only when set.
  bool rel_old = false;
  // Early-release bits (paper: rel1/rel2/reld, also the RwC0 level of the
  // extended mechanism's Release Queue).
  std::uint8_t rel_bits = 0;
  // Basic mechanism, LU-already-committed case: NV reuses old_pd as its
  // destination without allocating from the free list.
  bool reused_prev = false;

  [[nodiscard]] bool has_dst() const { return cd != isa::RegClass::None; }
  [[nodiscard]] PhysReg phys_for(UseKind kind) const {
    switch (kind) {
      case UseKind::Src1: return p1;
      case UseKind::Src2: return p2;
      case UseKind::Dst: return pd;
      case UseKind::Arch: return kNoReg;
    }
    return kNoReg;
  }
};

/// View of the pipeline state the release policies need. Implemented by the
/// OoO core — and by lightweight fixtures in the policy unit tests.
class PipelineHooks {
 public:
  virtual ~PipelineHooks() = default;

  /// Rename record of an in-flight (renamed, not yet committed/squashed)
  /// instruction; nullptr otherwise.
  virtual RenameRec* find_inflight(InstSeq seq) = 0;

  /// True if any *unverified* branch b satisfies lo < b.seq < hi.
  /// This is the basic mechanism's Case-1 test (paper §3).
  virtual bool branch_pending_between(InstSeq lo, InstSeq hi) const = 0;

  /// Sequence number of the newest unverified branch (kNoSeq if none). The
  /// extended mechanism schedules conditional releases under this level
  /// (paper §4.2, Step 2: "the RelQue level pointed by TAIL").
  virtual InstSeq newest_pending_branch() const = 0;

  /// Number of unverified branches currently in flight.
  virtual unsigned pending_branch_count() const = 0;

  // ---- instrumentation seam (Instrumentation API v2) ----
  // Register-lifecycle notifications flowing *up* from the rename core to
  // the pipeline, which fans them out to attached sim::Probe observers.
  // Default no-ops keep test fixtures and custom-policy hosts source
  // compatible; RegFileState only routes through its hooks pointer when the
  // pipeline armed it (a probe is attached), so the unprobed hot path pays
  // a null check, not a virtual call.

  /// A physical register was allocated (`reused` = in-place recycle that
  /// bypassed the free list).
  virtual void on_reg_alloc(RC cls, PhysReg p, std::uint64_t cycle,
                            bool reused) {
    (void)cls, (void)p, (void)cycle, (void)reused;
  }

  /// A physical-register version ended (`squashed` = wrong-path free,
  /// `reused` = in-place recycle).
  virtual void on_reg_release(RC cls, PhysReg p, std::uint64_t cycle,
                              bool squashed, bool reused) {
    (void)cls, (void)p, (void)cycle, (void)squashed, (void)reused;
  }
};

}  // namespace erel::core
