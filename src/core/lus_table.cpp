#include "core/lus_table.hpp"

#include "common/log.hpp"

namespace erel::core {

const LUsEntry& LUsTable::lookup(unsigned logical) const {
  EREL_CHECK(logical < isa::kNumLogicalRegs);
  return table_[logical];
}

void LUsTable::record_use(unsigned logical, InstSeq seq, UseKind kind) {
  EREL_CHECK(logical < isa::kNumLogicalRegs);
  EREL_CHECK(kind != UseKind::Arch);
  table_[logical] = LUsEntry{seq, kind, false};
}

void LUsTable::on_commit(InstSeq seq) { update_commit_in(table_, seq); }

void LUsTable::update_commit_in(Snapshot& snapshot, InstSeq seq) {
  for (LUsEntry& entry : snapshot) {
    if (entry.seq == seq) entry.committed = true;
  }
}

void LUsTable::reset_architectural() {
  table_.fill(LUsEntry{kNoSeq, UseKind::Arch, true});
}

}  // namespace erel::core
