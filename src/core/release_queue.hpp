// Release Queue (RelQue) of the extended mechanism (paper §4, Figure 7).
//
// One level per *pending* (unverified) branch, in decode order. A level
// holds the conditional release schedulings made by NV instructions decoded
// while that branch was the newest pending one:
//   - RwNS ("Release when Non-Speculative"): physical registers whose LU
//     instruction has already committed; they release as soon as the level
//     reaches the bottom of the queue (oldest branch confirms).
//   - RwC ("Release when Commit"): rel1/rel2/reld bits keyed by the LU
//     instruction, to be synchronized with its commit. When the LU commits
//     while the scheduling is still conditional, the bits decode into
//     physical registers and move to the same level's RwNS (paper Step 5).
//
// Branch confirmation merges a level into the next-older one; confirming the
// *oldest* level releases its RwNS set and merges its RwC bits into the
// unconditional RwC0 (the ROS rel bits, owned by the caller). Misprediction
// of branch n drops level n and every younger level (paper Step 3).
//
// The paper implements levels as a physical two-dimensional shift register;
// here each level is a sparse set, which is behaviourally identical (the
// paper itself notes the population is bounded by the ROS size, §4.2).
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/types.hpp"

namespace erel::core {

class ReleaseQueue {
 public:
  struct ConfirmResult {
    /// Registers to free right now (RwNS of the confirmed oldest level).
    std::vector<PhysReg> release_now;
    /// RwC schedulings that became unconditional: the caller must OR these
    /// bits into the ROS rel-bit fields (RwC0) of the LU instructions.
    std::vector<std::pair<InstSeq, std::uint8_t>> to_rwc0;
  };

  /// Step 1: a conditional branch was decoded; append an empty level.
  void push_level(InstSeq branch_seq);

  /// Step 2 (LU already committed): schedule `p` in the newest level's RwNS.
  void schedule_committed(PhysReg p);

  /// Step 2 (LU in flight): schedule rel bits for `lu_seq` in the newest
  /// level's RwC.
  void schedule_inflight(InstSeq lu_seq, std::uint8_t bits);

  /// Step 5: `lu_seq` committed; convert its RwC bits in every level into
  /// RwNS entries using the physical ids from its ROS record.
  void on_lu_commit(InstSeq lu_seq, PhysReg p1, PhysReg p2, PhysReg pd);

  /// Step 4 / Step 6: branch verified correct. Merges its level downward;
  /// when it was the oldest level the result carries the releases.
  ConfirmResult confirm(InstSeq branch_seq);

  /// Step 3: branch mispredicted; drops its level and all younger ones.
  void mispredict(InstSeq branch_seq);

  /// Exception flush: every scheduling is dropped.
  void clear();

  [[nodiscard]] std::size_t num_levels() const { return levels_.size(); }
  [[nodiscard]] bool has_level(InstSeq branch_seq) const;

  /// Total number of schedulings across all levels (paper §4.2 bounds this
  /// by the number of in-flight instructions with destinations).
  [[nodiscard]] std::size_t total_scheduled() const;

 private:
  struct Level {
    InstSeq branch_seq = kNoSeq;
    std::vector<PhysReg> rwns;
    std::unordered_map<InstSeq, std::uint8_t> rwc;
  };

  /// Index of the level attached to `branch_seq`; size() when absent.
  [[nodiscard]] std::size_t level_index(InstSeq branch_seq) const;

  std::deque<Level> levels_;  // front == oldest pending branch
};

}  // namespace erel::core
