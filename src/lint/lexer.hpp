// Token-level C++ source scanner for erel-lint (src/lint/README: the
// project-specific invariant checker, see docs/lint.md).
//
// This is deliberately NOT a parser: every rule the linter enforces is
// expressible over the token stream (identifier adjacency, brace depth,
// string-literal contents), which keeps the checker dependency-free — no
// libclang, no compile database — and fast enough to run on every build.
// The scanner understands exactly as much C++ lexing as the rules need:
// comments (kept separately, they carry exemption directives), string /
// char / raw-string literals, preprocessor lines (skipped, so `#include
// <ctime>` never looks like a call to `time(`), and identifiers vs.
// punctuation.
#pragma once

#include <string>
#include <vector>

namespace erel::lint {

struct Token {
  enum class Kind {
    kIdent,   // identifiers and keywords
    kString,  // string literal; `text` holds the *contents* (no quotes)
    kNumber,  // numeric literal (incl. suffixes)
    kPunct,   // one operator/punctuator character sequence, e.g. "::", "->"
  };

  Kind kind = Kind::kPunct;
  std::string text;
  int line = 1;

  [[nodiscard]] bool is_ident(std::string_view name) const {
    return kind == Kind::kIdent && text == name;
  }
  [[nodiscard]] bool is_punct(std::string_view p) const {
    return kind == Kind::kPunct && text == p;
  }
};

/// A comment, verbatim without its delimiters. Inline exemption
/// directives (see docs/lint.md) are extracted from these.
struct Comment {
  std::string text;
  int line = 1;  // line the comment *starts* on
};

/// One scanned source file. `path` is the repo-relative, '/'-separated
/// name rules report findings under.
struct SourceFile {
  std::string path;
  std::vector<Token> tokens;
  std::vector<Comment> comments;
};

/// Tokenizes `content`. Never fails: unterminated constructs consume to
/// end-of-input (the linter scans its own repo, which compiles; garbage in
/// fixtures still terminates).
[[nodiscard]] SourceFile tokenize(std::string path, std::string_view content);

}  // namespace erel::lint
